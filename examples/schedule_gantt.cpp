/**
 * @file
 * Schedule visualiser: run one Mobius step on a small configuration,
 * print the executed schedule as an ASCII Gantt chart (compare with
 * the paper's Figure 4), and write a Chrome-tracing JSON file you
 * can open in chrome://tracing or https://ui.perfetto.dev.
 *
 * Usage: schedule_gantt [stages] [out.json]
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "runtime/api.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    int stages = argc > 1 ? std::atoi(argv[1]) : 8;
    const char *out = argc > 2 ? argv[2] : "mobius_trace.json";
    if (stages < 4) {
        std::fprintf(stderr, "usage: %s [stages>=4] [out.json]\n",
                     argv[0]);
        return 1;
    }

    // Small setup so the chart stays readable: 4 GPUs, a coarse
    // partition (Figure 4 uses S = 8, N = 4, M = 4).
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt15b(), server, 2);
    Partition partition =
        uniformPartition(work.cost().numLayers(), stages);
    Mapping mapping =
        crossMapping(server.topo, stages).mapping;

    RunContext ctx(server);
    MobiusExecutor exec(ctx, work.cost(), partition, mapping);
    StepStats stats = exec.run();

    std::printf("Mobius step on %s: %d stages over %d GPUs, "
                "%d microbatches -> %.2f s\n\n",
                server.name.c_str(), stages, ctx.numGpus(),
                work.train().numMicrobatches, stats.stepTime);
    std::printf("%s\n", ctx.trace().toAsciiGantt(96).c_str());

    std::ofstream os(out);
    os << ctx.trace().toChromeJson();
    std::printf("full trace written to %s (open in "
                "chrome://tracing)\n", out);
    return 0;
}
