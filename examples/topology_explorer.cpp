/**
 * @file
 * Topology explorer: how does the GPU topology of a shared server
 * affect fine-tuning throughput?
 *
 * Sweeps root-complex groupings of a commodity box for a chosen
 * model, runs Mobius (with cross and with sequential mapping) and
 * DeepSpeed on each, and prints a comparison — the §2.2/§3.3 story
 * in one table.
 *
 * Usage: topology_explorer [8b|15b|51b]
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "runtime/api.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    GptConfig cfg = gpt15b();
    if (argc > 1) {
        if (!std::strcmp(argv[1], "8b"))
            cfg = gpt8b();
        else if (!std::strcmp(argv[1], "15b"))
            cfg = gpt15b();
        else if (!std::strcmp(argv[1], "51b"))
            cfg = gpt51b();
        else {
            std::fprintf(stderr,
                         "usage: %s [8b|15b|51b]\n", argv[0]);
            return 1;
        }
    }

    std::printf("model: %s\n\n", cfg.name.c_str());
    std::printf("%-12s %12s %14s %14s %12s\n", "topology",
                "DeepSpeed", "Mobius(seq)", "Mobius(cross)",
                "speedup");

    const std::vector<std::vector<int>> groupings{
        {4}, {1, 3}, {2, 2}, {1, 1, 2}, {1, 1, 1, 1},
        {4, 4}, {2, 2, 2, 2}};
    for (const auto &groups : groupings) {
        Server server = makeCommodityServer(groups);
        Workload work(cfg, server);

        StepStats ds = runZeroStep(server, work.cost());

        PlanOptions seq;
        seq.mapping = MappingAlgo::Sequential;
        MobiusPlan seq_plan = planMobius(server, work.cost(), seq);
        StepStats mob_seq =
            runMobiusStep(server, work.cost(), seq_plan);

        MobiusPlan cross_plan = planMobius(server, work.cost());
        StepStats mob_cross =
            runMobiusStep(server, work.cost(), cross_plan);

        std::string name;
        for (std::size_t i = 0; i < groups.size(); ++i) {
            if (i)
                name += "+";
            name += std::to_string(groups[i]);
        }
        std::printf("%-12s %11.2fs %13.2fs %13.2fs %11.2fx\n",
                    ("Topo " + name).c_str(), ds.stepTime,
                    mob_seq.stepTime, mob_cross.stepTime,
                    ds.stepTime / mob_cross.stepTime);
    }

    std::printf("\nNotes: every group of GPUs shares one CPU root "
                "complex; more GPUs per\ngroup means more "
                "contention. Cross mapping recovers throughput by\n"
                "spreading adjacent stages across root complexes "
                "(§3.3).\n");
    return 0;
}
