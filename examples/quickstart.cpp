/**
 * @file
 * Quickstart: fine-tune a 15-billion-parameter GPT on a commodity
 * 4x 3090-Ti server with Mobius, and compare against the DeepSpeed
 * (ZeRO-3 + heterogeneous memory) baseline.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "runtime/api.hh"

using namespace mobius;

int
main()
{
    // 1. Describe the server: four 3090-Ti GPUs, two per CPU root
    //    complex (the paper's Topo 2+2), PCIe 3.0, no GPUDirect P2P.
    Server server = makeCommodityServer({2, 2});
    std::printf("server: %s, DRAM %s\n", server.name.c_str(),
                formatBytes(server.dramBytes).c_str());

    // 2. Describe the workload: the Table 3 15B model with its
    //    default microbatch size; one microbatch per GPU (M = N).
    Workload work(gpt15b(), server);
    std::printf("model:  %s (%.1fB parameters, %s FP32)\n",
                work.model().name.c_str(),
                work.model().totalParams() / 1e9,
                formatBytes(work.model().totalParamBytesFp32())
                    .c_str());

    // 3. Plan: profile (with layer similarity), solve the MIP
    //    partition, search the cross mapping.
    MobiusPlan plan = planMobius(server, work.cost());
    std::printf("\nplan:   %d stages (%s)\n", plan.stageCount(),
                partitionToString(plan.partition).c_str());
    std::printf("        GPU order:");
    for (int g : plan.mapping.gpuOrder)
        std::printf(" %d", g);
    std::printf("  (contention degree %.2f)\n",
                plan.mapping.contention);
    std::printf("        overheads: profiling %.2fs, MIP %.3fs, "
                "mapping %.4fs\n",
                plan.profilingSeconds, plan.solveSeconds,
                plan.mappingSeconds);

    // 4. Execute one training step on the event-driven simulator.
    StepStats mobius = runMobiusStep(server, work.cost(), plan);
    StepStats deepspeed = runZeroStep(server, work.cost());

    Bytes p32 = work.model().totalParamBytesFp32();
    std::printf("\n%-12s %12s %14s %18s\n", "system", "step time",
                "traffic", "exposed comm");
    auto row = [&](const StepStats &s) {
        std::printf("%-12s %11.2fs %13.2fx %17.1f%%\n",
                    s.system.c_str(), s.stepTime,
                    s.trafficRatio(p32),
                    100 * s.exposedCommFraction());
    };
    row(mobius);
    row(deepspeed);
    std::printf("\nMobius speedup over DeepSpeed: %.2fx\n",
                deepspeed.stepTime / mobius.stepTime);
    return 0;
}
