/**
 * @file
 * Partition playground: inspect what the partition algorithms
 * (§3.2, §4.3) produce for a custom GPT-like model, with the Eq. 3
 * objective and the executed step time side by side. The exact-MIP
 * row runs the faithful Eq. 3-11 branch-and-bound, which requires a
 * uniform layer stack; on models with distinct embedding/head layers
 * it reports why it cannot run instead of a partition.
 *
 * Usage: partition_playground [hidden] [blocks] [microbatch] [gpus]
 *                             [mip-max-nodes] [mip-threads]
 * e.g.:  partition_playground 4096 40 2 4 50000 0
 *
 * The last two arguments budget the exact Eq. 3-11 branch-and-bound
 * row: node limit per stage count (default 50000) and stage-sweep
 * worker threads (0 = one per core, default 1).
 */

#include <cstdio>
#include <cstdlib>

#include "runtime/api.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    GptConfig cfg;
    cfg.name = "custom";
    cfg.hidden = argc > 1 ? std::atoi(argv[1]) : 4096;
    cfg.numBlocks = argc > 2 ? std::atoi(argv[2]) : 40;
    cfg.microbatchSize = argc > 3 ? std::atoi(argv[3]) : 2;
    int gpus = argc > 4 ? std::atoi(argv[4]) : 4;
    int mip_max_nodes = argc > 5 ? std::atoi(argv[5]) : 50000;
    int mip_threads = argc > 6 ? std::atoi(argv[6]) : 1;
    cfg.heads = cfg.hidden / 128;
    if (cfg.hidden <= 0 || cfg.numBlocks <= 0 ||
        cfg.microbatchSize <= 0 || gpus <= 0 || cfg.heads <= 0 ||
        mip_max_nodes <= 0 || mip_threads < 0) {
        std::fprintf(stderr,
                     "usage: %s [hidden] [blocks] [microbatch] "
                     "[gpus] [mip-max-nodes] [mip-threads]\n",
                     argv[0]);
        return 1;
    }

    Server server = makeCommodityServer({gpus / 2 + gpus % 2,
                                         gpus / 2 == 0 ? 1
                                                       : gpus / 2});
    if (gpus == 1)
        server = makeCommodityServer({1});
    Workload work(cfg, server);
    std::printf("model: hidden %d, %d blocks, %.2fB params; "
                "mbs %d; %d GPUs\n\n",
                cfg.hidden, cfg.numBlocks,
                work.model().totalParams() / 1e9,
                cfg.microbatchSize, gpus);

    PipelineEnv env;
    env.numGpus = gpus;
    env.gpuMemBytes = server.topo.gpuSpec(0).memBytes;
    env.avgBandwidth = kPcie3x16Bw;
    PipelineCostEvaluator eval(work.cost(), env);

    struct Algo
    {
        const char *name;
        PartitionAlgo algo;
    };
    for (const Algo &a :
         {Algo{"MIP", PartitionAlgo::Mip},
          Algo{"exact MIP", PartitionAlgo::ExactMip},
          Algo{"maximum-stage", PartitionAlgo::MaxStage},
          Algo{"minimum-stage", PartitionAlgo::MinStage}}) {
        PlanOptions opts;
        opts.partition = a.algo;
        opts.mip.maxNodes =
            static_cast<std::uint64_t>(mip_max_nodes);
        opts.mip.threads = mip_threads;
        try {
            MobiusPlan plan = planMobius(server, work.cost(), opts);
            StepStats run =
                runMobiusStep(server, work.cost(), plan);
            std::printf("%-14s %3d stages  est %6.2fs  "
                        "executed %6.2fs\n",
                        a.name, plan.stageCount(),
                        plan.estimate.stepTime, run.stepTime);
            std::printf("               sizes: %s\n",
                        partitionToString(plan.partition).c_str());
        } catch (const FatalError &e) {
            std::printf("%-14s infeasible: %s\n", a.name, e.what());
        }
    }

    std::printf("\nThe MIP partition balances stage compute against "
                "prefetch headroom\n(Eq. 4-11); maximum-stage fills "
                "GPU memory and loses all overlap;\nminimum-stage "
                "pays maximal activation traffic.\n");
    return 0;
}
