/**
 * @file
 * Tiny fine-tune: really train a mini GPT (real tensors, real
 * gradients) on the synthetic corpus under a Mobius-style pipeline
 * schedule, and verify the updates match plain training exactly —
 * the Fig. 13 convergence property as a runnable demo.
 *
 * Usage: tiny_finetune [steps]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "train/trainer.hh"

using namespace mobius;

int
main(int argc, char **argv)
{
    int steps = argc > 1 ? std::atoi(argv[1]) : 80;
    if (steps <= 0) {
        std::fprintf(stderr, "usage: %s [steps]\n", argv[0]);
        return 1;
    }

    MiniGptConfig mcfg;
    mcfg.vocab = 64;
    mcfg.width = 32;
    mcfg.heads = 4;
    mcfg.blocks = 6;
    mcfg.seqLen = 32;
    CorpusConfig ccfg;
    ccfg.vocab = 64;
    ccfg.numTokens = 20000;
    SyntheticCorpus corpus(ccfg);

    std::printf("mini GPT: %d blocks, width %d (%lld params); "
                "corpus: %d tokens, unigram entropy %.3f nats\n\n",
                mcfg.blocks, mcfg.width,
                static_cast<long long>(
                    MiniGpt(mcfg).parameterCount()),
                ccfg.numTokens, corpus.unigramEntropy());

    // Pipeline-partitioned training: 8 pipeline layers, 4 stages,
    // exactly how Mobius would stage this model on 4 GPUs.
    MiniGpt pipe_model(mcfg);
    PipelineTrainer pipeline(pipe_model,
                             partitionFromSizes({2, 2, 2, 2}),
                             AdamConfig{2e-3f});
    // Reference: plain microbatch accumulation.
    MiniGpt ref_model(mcfg);
    MonolithicTrainer reference(ref_model, AdamConfig{2e-3f});

    LossCurve pc = runTraining(pipe_model, corpus, &pipeline,
                               nullptr, steps, 4, 5);
    LossCurve rc = runTraining(ref_model, corpus, nullptr,
                               &reference, steps, 4, 5);

    std::printf("%6s %14s %14s\n", "step", "Mobius pipeline",
                "reference");
    for (int s = 0; s < steps; s += std::max(1, steps / 12)) {
        std::printf("%6d %14.4f %14.4f\n", s, pc.losses[s],
                    rc.losses[s]);
    }

    double max_delta = 0;
    for (int s = 0; s < steps; ++s) {
        max_delta = std::max(
            max_delta, std::fabs(pc.losses[s] - rc.losses[s]));
    }
    std::printf("\nfinal loss %.4f (from %.4f); max deviation from "
                "reference: %.1e\n",
                pc.losses.back(), pc.losses.front(), max_delta);
    std::printf("synchronous pipeline updates match plain training "
                "%s\n",
                max_delta == 0.0 ? "bit for bit" : "approximately");
    return 0;
}
