/**
 * @file
 * Unit tests for GPU specs, topology construction, routing and
 * root-complex queries.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "hw/server.hh"
#include "hw/topology.hh"

namespace mobius
{
namespace
{

TEST(GpuSpec, Table1Values)
{
    // Table 1 of the paper.
    EXPECT_DOUBLE_EQ(rtx3090Ti().priceUsd, 2000.0);
    EXPECT_DOUBLE_EQ(a100().priceUsd, 14000.0);
    EXPECT_DOUBLE_EQ(rtx3090Ti().fp32Flops, 40.0 * TFLOPS);
    EXPECT_DOUBLE_EQ(a100().fp32Flops, 19.0 * TFLOPS);
    EXPECT_EQ(rtx3090Ti().tensorCores, 336);
    EXPECT_EQ(a100().tensorCores, 432);
    EXPECT_FALSE(rtx3090Ti().gpudirectP2p);
    EXPECT_FALSE(rtx3090Ti().nvlink);
    EXPECT_TRUE(a100().gpudirectP2p);
    EXPECT_TRUE(a100().nvlink);
    EXPECT_EQ(rtx3090Ti().memBytes, 24 * GiB);
}

TEST(Topology, CommodityTopo22Structure)
{
    Server s = makeCommodityServer({2, 2});
    const Topology &t = s.topo;
    EXPECT_EQ(t.numGpus(), 4);
    EXPECT_FALSE(t.gpudirectP2p());
    // 2 RCs + 2 switches + 4 GPUs = 8 links.
    EXPECT_EQ(t.numLinks(), 8);
    EXPECT_EQ(t.rootComplexes().size(), 2u);

    // GPUs 0,1 under rc0; GPUs 2,3 under rc1.
    EXPECT_EQ(t.rootComplexOf(0), t.rootComplexOf(1));
    EXPECT_EQ(t.rootComplexOf(2), t.rootComplexOf(3));
    EXPECT_NE(t.rootComplexOf(0), t.rootComplexOf(2));
}

TEST(Topology, Topo13Grouping)
{
    Server s = makeCommodityServer({1, 3});
    const Topology &t = s.topo;
    EXPECT_EQ(t.gpusUnderRootComplex(t.rootComplexOf(0)).size(), 1u);
    EXPECT_EQ(t.gpusUnderRootComplex(t.rootComplexOf(1)).size(), 3u);
}

TEST(Topology, SharedRootComplexDegreeMatchesEq12)
{
    Server s = makeCommodityServer({1, 3});
    const Topology &t = s.topo;
    // shared(i, j) = #GPUs under the common RC, or 0 if separated.
    EXPECT_EQ(t.sharedRootComplexDegree(0, 1), 0);
    EXPECT_EQ(t.sharedRootComplexDegree(1, 2), 3);
    EXPECT_EQ(t.sharedRootComplexDegree(2, 3), 3);
}

TEST(Topology, RouteDramToGpuTraversesThreeHops)
{
    Server s = makeCommodityServer({2, 2});
    auto hops = s.topo.route(Endpoint::dram(), Endpoint::gpuAt(0));
    // dram->rc, rc->switch, switch->gpu.
    ASSERT_EQ(hops.size(), 3u);
    for (const auto &h : hops)
        EXPECT_TRUE(h.forward);

    auto up = s.topo.route(Endpoint::gpuAt(0), Endpoint::dram());
    ASSERT_EQ(up.size(), 3u);
    for (const auto &h : up)
        EXPECT_FALSE(h.forward);

    // Opposite directions use distinct capacity pools.
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NE(hops[i].poolId(), up[2 - i].poolId());
}

TEST(Topology, GpuToGpuWithoutP2pIsFatal)
{
    Server s = makeCommodityServer({2, 2});
    EXPECT_THROW(
        s.topo.route(Endpoint::gpuAt(0), Endpoint::gpuAt(1)),
        FatalError);
    EXPECT_FALSE(s.topo.routable(Endpoint::gpuAt(0),
                                 Endpoint::gpuAt(1)));
    EXPECT_TRUE(s.topo.routable(Endpoint::gpuAt(0),
                                Endpoint::dram()));
}

TEST(Topology, DataCenterUsesNvlinkPeerRoute)
{
    Server s = makeDataCenterServer(4);
    EXPECT_TRUE(s.topo.gpudirectP2p());
    auto hops = s.topo.route(Endpoint::gpuAt(0), Endpoint::gpuAt(3));
    ASSERT_EQ(hops.size(), 1u);
    EXPECT_TRUE(s.topo.link(hops[0].link).peer);
    EXPECT_DOUBLE_EQ(s.topo.link(hops[0].link).capacity,
                     kNvlinkPairBw);
}

TEST(Topology, P2pFabricRouteWithoutPeerLink)
{
    // P2P-capable GPUs but no NVLink: route over the PCIe fabric.
    Server s = makeCommodityServer({2, 2}, a100());
    EXPECT_TRUE(s.topo.gpudirectP2p());
    // Same switch: up one hop, down one hop.
    auto near = s.topo.route(Endpoint::gpuAt(0), Endpoint::gpuAt(1));
    EXPECT_EQ(near.size(), 2u);
    // Across root complexes: 3 up through DRAM + 3 down.
    auto far = s.topo.route(Endpoint::gpuAt(0), Endpoint::gpuAt(2));
    EXPECT_EQ(far.size(), 6u);
}

TEST(Topology, ParseTopoGroups)
{
    EXPECT_EQ(parseTopoGroups("4"), (std::vector<int>{4}));
    EXPECT_EQ(parseTopoGroups("2+2"), (std::vector<int>{2, 2}));
    EXPECT_EQ(parseTopoGroups("1+3"), (std::vector<int>{1, 3}));
    EXPECT_EQ(parseTopoGroups("4+4"), (std::vector<int>{4, 4}));
}

TEST(Topology, ServerNamesDescribeTopology)
{
    EXPECT_NE(makeCommodityServer({2, 2}).name.find("Topo 2+2"),
              std::string::npos);
    EXPECT_NE(makeDataCenterServer(4).name.find("V100"),
              std::string::npos);
}

TEST(Topology, LinkCapacitiesAreEffectivePcie)
{
    Server s = makeCommodityServer({4});
    for (int l = 0; l < s.topo.numLinks(); ++l)
        EXPECT_DOUBLE_EQ(s.topo.link(l).capacity, kPcie3x16Bw);
}

} // namespace
} // namespace mobius
