/**
 * @file
 * Tests for partitioning, the pipeline schedule evaluator, the
 * partition algorithms and the stage mapping.
 */

#include <gtest/gtest.h>

#include <functional>

#include "base/logging.hh"
#include "hw/server.hh"
#include "plan/mapping.hh"
#include "plan/partition_algos.hh"
#include "plan/partition_mip.hh"
#include "plan/pipeline_cost.hh"

namespace mobius
{
namespace
{

/** Uniform toy model: @p layers identical blocks. */
ModelDesc
toyModel(int layers, std::uint64_t params_per_layer = 100'000'000,
         Bytes act = 8 * MiB, double flops = 3e12)
{
    ModelDesc m;
    m.name = "toy";
    m.seqLen = 512;
    m.hidden = 1024;
    m.heads = 8;
    for (int i = 0; i < layers; ++i) {
        LayerDesc l;
        l.name = "l" + std::to_string(i);
        l.type = LayerType::TransformerBlock;
        l.paramCount = params_per_layer;
        l.fwdFlopsPerSample = flops;
        l.actBytesPerSample = act;
        l.workBytesPerSample = 32 * MiB;
        l.similarityClass = 0;
        m.layers.push_back(l);
    }
    return m;
}

/** Owns the model/cost/evaluator chain (they hold pointers). */
struct ToyEnv
{
    ToyEnv(int layers, int gpus, int microbatches, Bytes gpu_mem)
        : model(toyModel(layers)),
          cost(model, rtx3090Ti(),
               TrainConfig{1, microbatches, true, 0.45, 30e-6}),
          eval(cost, PipelineEnv{gpus, gpu_mem, 13.1e9, true})
    {}

    ModelDesc model;
    CostModel cost;
    PipelineCostEvaluator eval;
};

ToyEnv *
makeToy(int layers, int gpus, int microbatches, Bytes gpu_mem)
{
    return new ToyEnv(layers, gpus, microbatches, gpu_mem);
}

TEST(Partition, ValidityChecks)
{
    EXPECT_TRUE(partitionValid({{0, 3}, {3, 5}}, 5));
    EXPECT_FALSE(partitionValid({{0, 3}, {3, 5}}, 6)); // not covering
    EXPECT_FALSE(partitionValid({{0, 3}, {4, 5}}, 5)); // gap
    EXPECT_FALSE(partitionValid({{0, 3}, {2, 5}}, 5)); // overlap
    EXPECT_FALSE(partitionValid({{0, 0}, {0, 5}}, 5)); // empty stage
    EXPECT_FALSE(partitionValid({}, 0));
}

TEST(Partition, UniformSplitsEvenly)
{
    Partition p = uniformPartition(10, 4);
    EXPECT_EQ(partitionToString(p), "3|3|2|2");
    EXPECT_TRUE(partitionValid(p, 10));
    EXPECT_EQ(uniformPartition(8, 4).size(), 4u);
    EXPECT_EQ(partitionToString(uniformPartition(8, 4)), "2|2|2|2");
}

TEST(Partition, FromSizesRoundTrips)
{
    Partition p = partitionFromSizes({2, 5, 1});
    EXPECT_TRUE(partitionValid(p, 8));
    EXPECT_EQ(p[1].lo, 2);
    EXPECT_EQ(p[1].hi, 7);
    EXPECT_EQ(partitionToString(p), "2|5|1");
}

class EvaluatorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // 8 layers, 2 GPUs, 2 microbatches, roomy memory.
        env_.reset(makeToy(8, 2, 2, 4 * GiB));
    }

    std::unique_ptr<ToyEnv> env_;
};

TEST_F(EvaluatorTest, FeasibleUniformPartition)
{
    auto est = env_->eval.evaluate(uniformPartition(8, 4));
    ASSERT_TRUE(est.feasible) << est.infeasibleReason;
    EXPECT_GT(est.stepTime, 0.0);
    ASSERT_EQ(est.stages.size(), 4u);

    // Pipeline-order invariants (Eq. 8/10/11).
    for (std::size_t j = 1; j < est.stages.size(); ++j) {
        EXPECT_GE(est.stages[j].fwdStart, est.stages[j - 1].fwdStart);
        EXPECT_LE(est.stages[j].bwdEnd, est.stages[j - 1].bwdEnd);
    }
    EXPECT_GE(est.stages.back().bwdStart,
              est.stages.back().fwdEnd - 1e-12);
    EXPECT_GE(est.stepTime, est.stages.front().bwdEnd);
}

TEST_F(EvaluatorTest, OversizedStageInfeasible)
{
    ToyEnv *tight = makeToy(8, 2, 2, 1 * GiB);
    // One 8-layer stage needs ~1.6 GiB of weights alone.
    auto est = tight->eval.evaluate(uniformPartition(8, 2));
    EXPECT_FALSE(est.feasible);
    EXPECT_FALSE(est.infeasibleReason.empty());
    delete tight;
}

TEST_F(EvaluatorTest, MoreMemoryNeverHurts)
{
    ToyEnv *small = makeToy(8, 2, 2, 2 * GiB);
    ToyEnv *big = makeToy(8, 2, 2, 8 * GiB);
    Partition p = uniformPartition(8, 4);
    auto est_small = small->eval.evaluate(p);
    auto est_big = big->eval.evaluate(p);
    ASSERT_TRUE(est_small.feasible);
    ASSERT_TRUE(est_big.feasible);
    EXPECT_LE(est_big.stepTime, est_small.stepTime + 1e-12);
    delete small;
    delete big;
}

TEST_F(EvaluatorTest, PrefetchReportedWithinLimits)
{
    auto est = env_->eval.evaluate(uniformPartition(8, 8));
    ASSERT_TRUE(est.feasible);
    const auto &cm = env_->eval.cost();
    for (int j = 2; j < 8; ++j) {
        Bytes w = cm.rangeParamBytes(j, j + 1);
        EXPECT_LE(est.stages[j].prefetchedFwd, w);
    }
}

TEST_F(EvaluatorTest, CommBytesTracksParameters)
{
    auto est = env_->eval.evaluate(uniformPartition(8, 4));
    ASSERT_TRUE(est.feasible);
    Bytes fp16 = env_->eval.cost().model().totalParamBytesFp16();
    // At least weights once + most of them twice + grads.
    EXPECT_GT(est.commBytes, fp16);
    EXPECT_LT(est.commBytes,
              3 * fp16 + 100 * MiB * 8ULL * 4ULL);
}

TEST_F(EvaluatorTest, ResidentTailSkipsReload)
{
    // keepResidentTail=false must not be faster.
    ToyEnv *nores = makeToy(8, 2, 2, 4 * GiB);
    PipelineEnv env = nores->eval.env();
    env.keepResidentTail = false;
    PipelineCostEvaluator ev2(nores->eval.cost(), env);
    Partition p = uniformPartition(8, 4);
    auto with = env_->eval.evaluate(p);
    auto without = ev2.evaluate(p);
    EXPECT_LE(with.stepTime, without.stepTime + 1e-12);
    EXPECT_TRUE(with.stages[3].residentForBwd);
    EXPECT_FALSE(without.stages[3].residentForBwd);
    delete nores;
}

TEST(PartitionAlgos, MipMatchesBruteForceOnToys)
{
    struct Case
    {
        int layers, gpus, microbatches;
        Bytes mem;
    };
    for (const Case &c : {Case{6, 2, 2, 2 * GiB},
                          Case{8, 2, 4, 2 * GiB},
                          Case{9, 3, 3, 1 * GiB},
                          Case{10, 2, 2, 1 * GiB}}) {
        std::unique_ptr<ToyEnv> t(
            makeToy(c.layers, c.gpus, c.microbatches, c.mem));
        auto brute = bruteForcePartition(t->eval);
        auto mip = mipPartition(t->eval);
        ASSERT_TRUE(mip.estimate.feasible);
        // The search must find the true optimum step time (partitions
        // may differ when tied).
        EXPECT_NEAR(mip.estimate.stepTime, brute.estimate.stepTime,
                    1e-9 + brute.estimate.stepTime * 1e-6)
            << "L=" << c.layers << " N=" << c.gpus;
        EXPECT_LT(mip.evaluated, brute.evaluated);
    }
}

TEST(PartitionAlgos, MinStageOneBlockPerStage)
{
    ModelDesc m = makeGptModel(gpt8b());
    TrainConfig tc;
    tc.microbatchSize = 2;
    CostModel cost(m, rtx3090Ti(), tc);
    PipelineCostEvaluator eval(
        cost, PipelineEnv{4, rtx3090Ti().memBytes, 13.1e9, true});
    auto r = minStagePartition(eval);
    // 40 blocks -> 40 stages; embedding/norm/head folded in.
    EXPECT_EQ(r.partition.size(), 40u);
    EXPECT_TRUE(partitionValid(r.partition, m.numLayers()));
    // First stage holds embedding + block0.
    EXPECT_EQ(r.partition.front().size(), 2);
    // Last stage holds block39 + norm + head.
    EXPECT_EQ(r.partition.back().size(), 3);
}

TEST(PartitionAlgos, MaxStageFillsMemory)
{
    ModelDesc m = makeGptModel(gpt15b());
    TrainConfig tc;
    tc.microbatchSize = 1;
    CostModel cost(m, rtx3090Ti(), tc);
    Bytes g = rtx3090Ti().memBytes;
    PipelineCostEvaluator eval(cost, PipelineEnv{4, g, 13.1e9, true});
    auto r = maxStagePartition(eval);
    EXPECT_TRUE(partitionValid(r.partition, m.numLayers()));
    for (std::size_t j = 0; j < r.partition.size(); ++j) {
        const auto &s = r.partition[j];
        EXPECT_LE(cost.stageMemBwd(s.lo, s.hi), g);
        // Maximality: the next layer would not have fit.
        if (s.hi < m.numLayers()) {
            EXPECT_TRUE(cost.stageMemFwd(s.lo, s.hi + 1) > g ||
                        cost.stageMemBwd(s.lo, s.hi + 1) > g);
        }
    }
}

TEST(PartitionAlgos, MipBeatsOrMatchesBaselines)
{
    // The §4.3 claim: MIP partition is never worse than either
    // baseline under the shared objective.
    for (auto cfg : {gpt8b(), gpt15b()}) {
        ModelDesc m = makeGptModel(cfg);
        TrainConfig tc;
        tc.microbatchSize = cfg.microbatchSize;
        CostModel cost(m, rtx3090Ti(), tc);
        PipelineCostEvaluator eval(
            cost,
            PipelineEnv{4, rtx3090Ti().memBytes, 13.1e9, true});
        auto mip = mipPartition(eval);
        auto mins = minStagePartition(eval);
        auto maxs = maxStagePartition(eval);
        ASSERT_TRUE(mip.estimate.feasible);
        if (mins.estimate.feasible) {
            EXPECT_LE(mip.estimate.stepTime,
                      mins.estimate.stepTime + 1e-9);
        }
        if (maxs.estimate.feasible) {
            EXPECT_LE(mip.estimate.stepTime,
                      maxs.estimate.stepTime + 1e-9);
        }
    }
}

TEST(PartitionMip, FaithfulMipAgreesWithBruteForce)
{
    // Small uniform model; evaluator without the resident-tail
    // optimisation (the literal Eq. 3-11 system reloads weights).
    std::unique_ptr<ToyEnv> t(makeToy(4, 2, 2, 2 * GiB));
    PipelineEnv env = t->eval.env();
    env.keepResidentTail = false;
    PipelineCostEvaluator eval(t->eval.cost(), env);

    auto brute = bruteForcePartition(eval);
    MipOptions opts;
    opts.maxNodes = 60000;
    auto exact = exactMipPartition(eval, 4, opts);
    ASSERT_TRUE(exact.solved);
    EXPECT_TRUE(partitionValid(exact.partition, 4));

    // The MIP can exploit schedule slack the greedy evaluator does
    // not (delaying a stage to lengthen a prefetch window), so its
    // makespan is at most the brute-force one, and close to it.
    EXPECT_LE(exact.objective, brute.estimate.stepTime + 1e-6);
    EXPECT_GT(exact.objective, brute.estimate.stepTime * 0.8);

    // And the evaluator agrees the decoded partition is good.
    auto est = eval.evaluate(exact.partition);
    ASSERT_TRUE(est.feasible);
    EXPECT_LE(est.stepTime, brute.estimate.stepTime * 1.1);
}

TEST(Mapping, ContentionDegreeHandComputed)
{
    Server s = makeCommodityServer({2, 2});
    // Sequential order, 4 stages: stages 0,1 on GPUs 0,1 (shared=2,
    // distance 1) and stages 2,3 on GPUs 2,3 -> degree 4.
    EXPECT_NEAR(contentionDegree(s.topo, {0, 1, 2, 3}, 4), 4.0,
                1e-12);
    // Alternating order: shared pairs at distance 2 -> degree 2.
    EXPECT_NEAR(contentionDegree(s.topo, {0, 2, 1, 3}, 4), 2.0,
                1e-12);
}

TEST(Mapping, CrossMappingBeatsSequentialOn22)
{
    Server s = makeCommodityServer({2, 2});
    const int stages = 8;
    Mapping seq = sequentialMapping(s.topo, stages);
    MappingResult cross = crossMapping(s.topo, stages);
    EXPECT_LT(cross.mapping.contention, seq.contention);
    EXPECT_EQ(cross.evaluated, 24); // 4! permutations
    // Adjacent stages land under different root complexes.
    for (int j = 0; j + 1 < stages; ++j) {
        int a = cross.mapping.gpuOf(j);
        int b = cross.mapping.gpuOf(j + 1);
        EXPECT_EQ(s.topo.sharedRootComplexDegree(a, b), 0);
    }
}

TEST(Mapping, CrossMappingIndifferentOnTopo4)
{
    // All GPUs share one root complex: every order scores equally,
    // search returns the identity.
    Server s = makeCommodityServer({4});
    MappingResult cross = crossMapping(s.topo, 8);
    Mapping seq = sequentialMapping(s.topo, 8);
    EXPECT_NEAR(cross.mapping.contention, seq.contention, 1e-12);
    EXPECT_EQ(cross.mapping.gpuOrder, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Mapping, RoundRobinAssignment)
{
    Mapping m;
    m.gpuOrder = {2, 0, 3, 1};
    EXPECT_EQ(m.gpuOf(0), 2);
    EXPECT_EQ(m.gpuOf(3), 1);
    EXPECT_EQ(m.gpuOf(4), 2);
    EXPECT_EQ(m.gpuOf(7), 1);
}

TEST(PartitionAlgos, BalancedComputePartitionMinimisesMax)
{
    // DP result must match brute force on a small model.
    std::unique_ptr<ToyEnv> t(makeToy(9, 3, 2, 4 * GiB));
    const CostModel &cm = t->cost;
    for (int stages : {2, 3, 4}) {
        Partition p = balancedComputePartition(cm, stages);
        EXPECT_TRUE(partitionValid(p, 9));
        EXPECT_EQ(static_cast<int>(p.size()), stages);
        auto max_time = [&](const Partition &q) {
            double worst = 0;
            for (const auto &s : q) {
                worst = std::max(worst,
                                 cm.rangeFwdTime(s.lo, s.hi) +
                                     cm.rangeBwdTime(s.lo, s.hi));
            }
            return worst;
        };
        double dp = max_time(p);
        // Exhaustive check over all compositions with this count.
        double best = 1e100;
        std::vector<int> sizes(static_cast<std::size_t>(stages), 1);
        std::function<void(int, int)> rec = [&](int idx, int left) {
            if (idx == stages - 1) {
                sizes[idx] = left;
                best = std::min(best,
                                max_time(partitionFromSizes(sizes)));
                return;
            }
            for (int k = 1; left - k >= stages - idx - 1; ++k) {
                sizes[idx] = k;
                rec(idx + 1, left - k);
            }
        };
        rec(0, 9);
        EXPECT_NEAR(dp, best, best * 1e-9) << stages << " stages";
    }
}

TEST(PartitionAlgos, BalancedPartitionHandlesUnevenLayers)
{
    // GPT models have cheap edge layers; the DP should not give
    // them whole stages when blocks dominate.
    ModelDesc m = makeGptModel(gpt8b());
    CostModel cost(m, rtx3090Ti(), TrainConfig{});
    Partition p = balancedComputePartition(cost, 4);
    EXPECT_TRUE(partitionValid(p, m.numLayers()));
    double worst = 0, sum = 0;
    for (const auto &s : p) {
        double t = cost.rangeFwdTime(s.lo, s.hi) +
            cost.rangeBwdTime(s.lo, s.hi);
        worst = std::max(worst, t);
        sum += t;
    }
    // Near-perfect balance: worst stage within 15% of the mean.
    EXPECT_LT(worst, sum / 4 * 1.15);
}

TEST(Mapping, EightGpuCrossMappingImproves)
{
    Server s = makeCommodityServer({4, 4});
    const int stages = 16;
    Mapping seq = sequentialMapping(s.topo, stages);
    MappingResult cross = crossMapping(s.topo, stages);
    EXPECT_EQ(cross.evaluated, 40320); // 8!
    EXPECT_LT(cross.mapping.contention, seq.contention * 0.9);
}

} // namespace
} // namespace mobius
