/**
 * @file
 * Integration tests for the executors: Mobius, ZeRO (DeepSpeed) and
 * the all-in-GPU-memory pipelines, plus the high-level API. These
 * assert the paper's qualitative results hold on the simulator.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "runtime/api.hh"

namespace mobius
{
namespace
{

/** Plan + run Mobius for a Table 3 config on a commodity topology. */
StepStats
mobiusStep(const GptConfig &cfg, const std::vector<int> &groups,
           MobiusPlan *plan_out = nullptr,
           PlanOptions opts = {})
{
    Server server = makeCommodityServer(groups);
    Workload work(cfg, server);
    MobiusPlan plan = planMobius(server, work.cost(), opts);
    StepStats stats = runMobiusStep(server, work.cost(), plan);
    if (plan_out)
        *plan_out = plan;
    return stats;
}

TEST(MobiusExecutor, CompletesAndIsDeterministic)
{
    StepStats a = mobiusStep(gpt8b(), {2, 2});
    StepStats b = mobiusStep(gpt8b(), {2, 2});
    EXPECT_GT(a.stepTime, 0.0);
    EXPECT_DOUBLE_EQ(a.stepTime, b.stepTime);
    EXPECT_EQ(a.traffic.totalBytes(), b.traffic.totalBytes());
}

TEST(MobiusExecutor, TrafficMatchesEq1)
{
    // Eq. 1: ~1.5x model size; with boundary activations and
    // checkpoints the paper measures ~1.8x (Fig. 6).
    for (auto cfg : {gpt8b(), gpt15b()}) {
        Server server = makeCommodityServer({2, 2});
        Workload work(cfg, server);
        MobiusPlan plan = planMobius(server, work.cost());
        StepStats s = runMobiusStep(server, work.cost(), plan);
        double ratio =
            s.trafficRatio(work.model().totalParamBytesFp32());
        EXPECT_GT(ratio, 1.2) << cfg.name;
        EXPECT_LT(ratio, 2.2) << cfg.name;
    }
}

TEST(MobiusExecutor, ParameterTrafficTwoCopiesMinusResidentTail)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt8b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    StepStats s = runMobiusStep(server, work.cost(), plan);

    Bytes fp16 = work.model().totalParamBytesFp16();
    Bytes params = s.traffic.bytesOf(TrafficKind::Parameter);
    EXPECT_GT(params, fp16);        // more than one copy
    EXPECT_LE(params, 2 * fp16);    // at most two copies
    // Gradients land exactly once.
    EXPECT_EQ(s.traffic.bytesOf(TrafficKind::Gradient), fp16);
}

TEST(MobiusExecutor, EstimateTracksExecution)
{
    // The MIP objective ignores contention, so it may be optimistic,
    // but it must be within ~3x of the event-driven execution.
    MobiusPlan plan;
    StepStats s = mobiusStep(gpt15b(), {2, 2}, &plan);
    EXPECT_GT(s.stepTime, plan.estimate.stepTime * 0.9);
    EXPECT_LT(s.stepTime, plan.estimate.stepTime * 3.0);
}

TEST(MobiusExecutor, SingleGpuWorks)
{
    Server server = makeCommodityServer({1});
    Workload work(gpt8b(), server, -1, 2);
    MobiusPlan plan = planMobius(server, work.cost());
    StepStats s = runMobiusStep(server, work.cost(), plan);
    EXPECT_GT(s.stepTime, 0.0);
}

TEST(MobiusExecutor, EightGpusWork)
{
    StepStats s = mobiusStep(gpt15b(), {4, 4});
    EXPECT_GT(s.stepTime, 0.0);
    EXPECT_EQ(s.numGpus, 8);
}

TEST(ZeroExecutor, TrafficMatchesEq2)
{
    // Eq. 2: ~1.5N x model size (~6x at N = 4; the paper measures
    // 7.3x with framework overheads).
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt15b(), server);
    StepStats s = runZeroStep(server, work.cost());
    double ratio =
        s.trafficRatio(work.model().totalParamBytesFp32());
    EXPECT_GT(ratio, 5.0);
    EXPECT_LT(ratio, 8.0);
}

TEST(ZeroExecutor, ContentionHalvesObservedBandwidth)
{
    // Fig. 2: most DeepSpeed bytes move at <= half the root-complex
    // bandwidth on Topo 2+2.
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt15b(), server);
    StepStats s = runZeroStep(server, work.cost());
    BandwidthCdf cdf(s.traffic.samples());
    EXPECT_LT(cdf.quantile(0.5), 0.55 * kPcie3x16Bw);
}

TEST(ZeroExecutor, LayerSyncOffStillCompletes)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt8b(), server);
    ZeroExecutorConfig cfg;
    cfg.layerSync = false;
    StepStats s = runZeroStep(server, work.cost(), cfg);
    EXPECT_GT(s.stepTime, 0.0);
}

TEST(Headline, MobiusBeatsDeepSpeedOnCommodity)
{
    // The paper's main result (Fig. 5): 3.8-5.1x on commodity
    // topologies. Allow a generous band around it.
    for (auto cfg : {gpt8b(), gpt15b()}) {
        for (const auto &groups :
             {std::vector<int>{2, 2}, std::vector<int>{1, 3},
              std::vector<int>{4}}) {
            Server server = makeCommodityServer(groups);
            Workload work(cfg, server);
            MobiusPlan plan = planMobius(server, work.cost());
            StepStats mob = runMobiusStep(server, work.cost(), plan);
            StepStats ds = runZeroStep(server, work.cost());
            double speedup = ds.stepTime / mob.stepTime;
            EXPECT_GT(speedup, 2.5)
                << cfg.name << " groups=" << groups.size();
            EXPECT_LT(speedup, 8.0) << cfg.name;
        }
    }
}

TEST(Headline, MobiusReducesExposedCommunication)
{
    // Fig. 8: Mobius's non-overlapped communication share is well
    // below DeepSpeed's.
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt15b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    StepStats mob = runMobiusStep(server, work.cost(), plan);
    StepStats ds = runZeroStep(server, work.cost());
    EXPECT_LT(mob.exposedCommFraction(),
              ds.exposedCommFraction() - 0.1);
}

TEST(Headline, MobiusBandwidthNearLinkPeak)
{
    // Fig. 7: more than half of Mobius's bytes move at > 12 GB/s.
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt8b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    StepStats s = runMobiusStep(server, work.cost(), plan);
    BandwidthCdf cdf(s.traffic.samples());
    EXPECT_LT(cdf.fractionAtOrBelow(12e9), 0.5);
    EXPECT_NEAR(cdf.maxBandwidth(), kPcie3x16Bw, 0.05 * kPcie3x16Bw);
}

TEST(Pipeline, GPipeTrains3bOnly)
{
    Server server = makeCommodityServer({2, 2});
    Workload w3(gpt3b(), server);
    StepStats s = runPipelineStep(server, w3.cost(),
                                  PipelineSchedule::GPipe);
    EXPECT_GT(s.stepTime, 0.0);
    // Only activations cross the wire: tiny traffic.
    EXPECT_LT(s.trafficRatio(w3.model().totalParamBytesFp32()),
              0.05);

    for (auto cfg : {gpt8b(), gpt15b(), gpt51b()}) {
        Workload w(cfg, server);
        EXPECT_THROW(runPipelineStep(server, w.cost(),
                                     PipelineSchedule::GPipe),
                     FatalError)
            << cfg.name;
    }
}

TEST(Pipeline, OneFOneBNoSlowerThanGPipe)
{
    Server server = makeCommodityServer({2, 2});
    Workload w(gpt3b(), server);
    StepStats gpipe = runPipelineStep(server, w.cost(),
                                      PipelineSchedule::GPipe);
    StepStats ofob = runPipelineStep(server, w.cost(),
                                     PipelineSchedule::OneFOneB);
    EXPECT_LE(ofob.stepTime, gpipe.stepTime * 1.01);
}

TEST(Mapping, CrossMappingNoSlowerOnEightGpus)
{
    // Fig. 10: cross mapping reduces per-step time on the 8-GPU box
    // (four GPUs per root complex).
    Server server = makeCommodityServer({4, 4});
    Workload work(gpt8b(), server);
    PlanOptions cross_opts;
    cross_opts.mapping = MappingAlgo::Cross;
    PlanOptions seq_opts;
    seq_opts.mapping = MappingAlgo::Sequential;
    MobiusPlan cross = planMobius(server, work.cost(), cross_opts);
    MobiusPlan seq = planMobius(server, work.cost(), seq_opts);
    StepStats sc = runMobiusStep(server, work.cost(), cross);
    StepStats ss = runMobiusStep(server, work.cost(), seq);
    EXPECT_LE(sc.stepTime, ss.stepTime * 1.001);
}

TEST(PartitionAblation, MipNoSlowerThanBaselinesExecuted)
{
    // Fig. 9 direction: MIP partition executes no slower than the
    // min/max-stage baselines (checked on the event simulator, not
    // just the analytic objective).
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt8b(), server);
    auto run = [&](PartitionAlgo algo) {
        PlanOptions opts;
        opts.partition = algo;
        MobiusPlan plan = planMobius(server, work.cost(), opts);
        return runMobiusStep(server, work.cost(), plan).stepTime;
    };
    double mip = run(PartitionAlgo::Mip);
    double maxs = run(PartitionAlgo::MaxStage);
    EXPECT_LE(mip, maxs * 1.05);
}

TEST(DataCenter, DeepSpeedCompetitiveWithNvlink)
{
    // §4.8: with NVLink + P2P, DeepSpeed improves dramatically and
    // beats Mobius (which still streams stages over PCIe).
    Server dc = makeDataCenterServer(4);
    Workload work(gpt8b(), dc, 2);
    MobiusPlan plan = planMobius(dc, work.cost());
    StepStats mob = runMobiusStep(dc, work.cost(), plan);
    StepStats ds = runZeroStep(dc, work.cost());
    EXPECT_LT(ds.stepTime, mob.stepTime);

    // And both beat the commodity box in absolute time.
    Server c = makeCommodityServer({2, 2});
    Workload cw(gpt8b(), c, 2);
    StepStats cds = runZeroStep(c, cw.cost());
    EXPECT_LT(ds.stepTime, cds.stepTime);
}

TEST(DataCenter, PricePerStepFavoursCommodity)
{
    // Fig. 15b: Mobius on the commodity box costs less per step than
    // DeepSpeed on the data-center server.
    Server dc = makeDataCenterServer(4);
    Workload dwork(gpt15b(), dc, 2);
    StepStats ds_dc = runZeroStep(dc, dwork.cost());
    double dc_price = ds_dc.stepTime / 3600.0 * dc.dollarsPerHour;

    Server c = makeCommodityServer({2, 2});
    Workload cwork(gpt15b(), c, 2);
    MobiusPlan plan = planMobius(c, cwork.cost());
    StepStats mob_c = runMobiusStep(c, cwork.cost(), plan);
    double c_price = mob_c.stepTime / 3600.0 * c.dollarsPerHour;

    EXPECT_LT(c_price, dc_price);
}

TEST(Scalability, ThroughputScalesWithGpus)
{
    // Fig. 14: batch grows with GPU count (M = N), throughput
    // (samples/s) scales at least linearly from 2 to 8 GPUs.
    auto throughput = [&](int gpus) {
        Server server =
            makeCommodityServer({gpus / 2, gpus - gpus / 2});
        Workload work(gpt15b(), server, 1, gpus);
        MobiusPlan plan = planMobius(server, work.cost());
        StepStats s = runMobiusStep(server, work.cost(), plan);
        return gpus * 1.0 / s.stepTime;
    };
    double t2 = throughput(2);
    double t4 = throughput(4);
    double t8 = throughput(8);
    EXPECT_GT(t4, t2 * 1.6);
    EXPECT_GT(t8, t4 * 1.6);
}

TEST(GpuMemoryLedger, BasicInvariants)
{
    GpuMemory mem(1000);
    EXPECT_TRUE(mem.tryAlloc(600));
    EXPECT_FALSE(mem.tryAlloc(500));
    EXPECT_EQ(mem.available(), 400u);
    mem.free(100);
    EXPECT_EQ(mem.used(), 500u);
    EXPECT_EQ(mem.peak(), 600u);
    EXPECT_THROW(mem.alloc(600), FatalError);
}

TEST(GpuMemoryLedger, PeaksStayWithinCapacityDuringRun)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt15b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    RunContext ctx(server);
    MobiusExecutor exec(ctx, work.cost(), plan.partition,
                        plan.mapping);
    exec.run();
    for (int g = 0; g < ctx.numGpus(); ++g) {
        EXPECT_LE(ctx.memory(g).peak(), ctx.memory(g).capacity());
        EXPECT_EQ(ctx.memory(g).used(), 0u); // everything freed
    }
}

TEST(Workload, DefaultsFollowTable3AndServer)
{
    Server server = makeCommodityServer({2, 2});
    Workload w(gpt15b(), server);
    EXPECT_EQ(w.train().microbatchSize, 1);
    EXPECT_EQ(w.train().numMicrobatches, 4);
    Workload w2(gpt8b(), server, 4, 8);
    EXPECT_EQ(w2.train().microbatchSize, 4);
    EXPECT_EQ(w2.train().numMicrobatches, 8);
}

TEST(Plan, OverheadFieldsPopulated)
{
    Server server = makeCommodityServer({1, 3});
    Workload work(gpt8b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    EXPECT_GT(plan.profilingSeconds, 0.0);
    EXPECT_GE(plan.solveSeconds, 0.0);
    EXPECT_GE(plan.mappingSeconds, 0.0);
    EXPECT_EQ(plan.profiledLayers, 4); // layer similarity
}

TEST(Plan, Gpt51bPlansAndRuns)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt51b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    StepStats s = runMobiusStep(server, work.cost(), plan);
    EXPECT_GT(s.stepTime, 0.0);
}

} // namespace
} // namespace mobius
