/**
 * @file
 * Tests for the deterministic parallel replica runner and the
 * JobPump it is built on: thread-count invariance of full simulated
 * runs (span for span), complete coverage of the index space,
 * deterministic exception propagation, and the dynamic ready-set
 * contract (FIFO claim order, per-index errors, inline mode).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "runtime/api.hh"
#include "simcore/job_pump.hh"
#include "simcore/replica_runner.hh"

namespace mobius
{
namespace
{

TEST(ReplicaRunner, RunsEveryIndexOnce)
{
    const int n = 37;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h = 0;
    ReplicaRunnerOptions opts;
    opts.threads = 4;
    ReplicaRunStats rs =
        runReplicas(n, [&](int i) { ++hits[i]; }, opts);
    EXPECT_EQ(rs.threadsUsed, 4);
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ReplicaRunner, ClampsThreadsToCount)
{
    ReplicaRunnerOptions opts;
    opts.threads = 16;
    ReplicaRunStats rs = runReplicas(3, [](int) {}, opts);
    EXPECT_EQ(rs.threadsUsed, 3);
    EXPECT_EQ(runReplicas(0, [](int) {}, opts).threadsUsed, 1);
}

TEST(ReplicaRunner, SingleThreadRunsInline)
{
    std::vector<int> order;
    ReplicaRunnerOptions opts;
    opts.threads = 1;
    runReplicas(5, [&](int i) { order.push_back(i); }, opts);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ReplicaRunner, LowestIndexExceptionWinsAndRestStillRun)
{
    const int n = 12;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h = 0;
    ReplicaRunnerOptions opts;
    opts.threads = 4;
    try {
        runReplicas(
            n,
            [&](int i) {
                ++hits[i];
                if (i == 3 || i == 9)
                    throw std::runtime_error(
                        "replica " + std::to_string(i));
            },
            opts);
        FAIL() << "expected runReplicas to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "replica 3");
    }
    // A throwing replica never silently skips the others.
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

/**
 * The contract the parallel benches lean on, checked on the real
 * simulator: a batch of faulted Mobius steps (distinct seeds per
 * index) produces byte-identical traces — every span, every
 * dependency edge, every counter — no matter how many worker
 * threads dispatch the batch.
 */
TEST(ReplicaRunner, FaultedRunsSpanForSpanIdenticalAcrossThreads)
{
    Server plan_server = makeCommodityServer({2, 2});
    Workload plan_work(gpt8b(), plan_server);
    MobiusPlan plan = planMobius(plan_server, plan_work.cost());

    const int replicas = 6;
    auto batch = [&](int threads) {
        std::vector<std::string> traces(replicas);
        ReplicaRunnerOptions opts;
        opts.threads = threads;
        runReplicas(
            replicas,
            [&](int i) {
                Server server = makeCommodityServer({2, 2});
                Workload work(gpt8b(), server);
                FaultPlan fp;
                fp.xfailProb = 0.02;
                fp.retryBudget = 10;
                fp.retryBackoff = 1e-4;
                RunContext ctx(server, {}, 0.0, nullptr, {}, &fp,
                               100 + static_cast<std::uint64_t>(i));
                MobiusExecutor exec(ctx, work.cost(),
                                    plan.partition, plan.mapping);
                exec.run();
                traces[static_cast<std::size_t>(i)] =
                    ctx.trace().toChromeJson();
            },
            opts);
        return traces;
    };

    std::vector<std::string> serial = batch(1);
    std::vector<std::string> parallel = batch(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (int i = 0; i < replicas; ++i) {
        EXPECT_FALSE(serial[static_cast<std::size_t>(i)].empty());
        EXPECT_EQ(serial[static_cast<std::size_t>(i)],
                  parallel[static_cast<std::size_t>(i)])
            << "replica " << i;
    }
}

TEST(JobPump, InlineModeRunsPendingJobsInEnqueueOrderOnWait)
{
    std::vector<std::size_t> order;
    JobPump pump(4, [&](std::size_t i) { order.push_back(i); }, 1);
    EXPECT_EQ(pump.threadsUsed(), 1);
    pump.enqueue(2);
    pump.enqueue(0);
    pump.enqueue(3);
    // Inline mode defers the bodies until the consumer waits...
    EXPECT_TRUE(order.empty());
    // ...then runs the FIFO in enqueue order up to the waited index.
    pump.wait(0);
    EXPECT_EQ(order, (std::vector<std::size_t>{2, 0}));
    pump.enqueue(1);
    pump.drain();
    EXPECT_EQ(order, (std::vector<std::size_t>{2, 0, 3, 1}));
}

TEST(JobPump, ThreadedDynamicEnqueueRunsEveryIndexOnce)
{
    const std::size_t n = 24;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h = 0;
    JobPump pump(n, [&](std::size_t i) { ++hits[i]; }, 4);
    EXPECT_EQ(pump.threadsUsed(), 4);
    // Grow the ready-set while results are already being consumed —
    // the fleet's arrival-then-admission pattern.
    for (std::size_t i = 0; i < n / 2; ++i)
        pump.enqueue(i);
    pump.wait(3);
    for (std::size_t i = n / 2; i < n; ++i)
        pump.enqueue(i);
    pump.drain();
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(JobPump, CapturesErrorsPerIndexWithoutTearingDown)
{
    const std::size_t n = 8;
    std::atomic<int> ran{0};
    JobPump pump(
        n,
        [&](std::size_t i) {
            ++ran;
            if (i == 2 || i == 5)
                throw std::runtime_error("job " + std::to_string(i));
        },
        3);
    for (std::size_t i = 0; i < n; ++i)
        pump.enqueue(i);
    pump.drain();
    EXPECT_EQ(ran, static_cast<int>(n));
    for (std::size_t i = 0; i < n; ++i) {
        std::exception_ptr err = pump.error(i);
        if (i == 2 || i == 5) {
            ASSERT_TRUE(err) << "index " << i;
            try {
                std::rethrow_exception(err);
            } catch (const std::runtime_error &e) {
                EXPECT_EQ(std::string(e.what()),
                          "job " + std::to_string(i));
            }
        } else {
            EXPECT_FALSE(err) << "index " << i;
        }
    }
}

TEST(JobPump, ClampsThreadsToIndexSpace)
{
    std::atomic<int> ran{0};
    JobPump pump(3, [&](std::size_t) { ++ran; }, 16);
    EXPECT_EQ(pump.threadsUsed(), 3);
    pump.enqueue(0);
    pump.enqueue(1);
    pump.enqueue(2);
    pump.drain();
    EXPECT_EQ(ran, 3);
}

TEST(JobPump, DestructorCompletesEnqueuedButUnwaitedJobs)
{
    std::vector<std::atomic<int>> hits(6);
    for (auto &h : hits)
        h = 0;
    {
        JobPump pump(6, [&](std::size_t i) { ++hits[i]; }, 2);
        for (std::size_t i = 0; i < 6; ++i)
            pump.enqueue(i);
        // No wait/drain: the destructor must still deliver them all.
    }
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(JobPumpDeathTest, MisusePanics)
{
    // Earlier tests in this binary spawn threads; fork from a clean
    // re-exec instead of the fast in-process fork.
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    // Waiting on a never-enqueued index could never return.
    EXPECT_DEATH(
        {
            JobPump pump(2, [](std::size_t) {}, 1);
            pump.wait(0);
        },
        "never enqueued");
    // Each index may be enqueued at most once.
    EXPECT_DEATH(
        {
            JobPump pump(2, [](std::size_t) {}, 1);
            pump.enqueue(1);
            pump.enqueue(1);
        },
        "");
    // Out-of-range indices are a caller bug, not a silent no-op.
    EXPECT_DEATH(
        {
            JobPump pump(2, [](std::size_t) {}, 1);
            pump.enqueue(2);
        },
        "");
}

} // namespace
} // namespace mobius
