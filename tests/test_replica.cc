/**
 * @file
 * Tests for the deterministic parallel replica runner: thread-count
 * invariance of full simulated runs (span for span), complete
 * coverage of the index space, and deterministic exception
 * propagation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "runtime/api.hh"
#include "simcore/replica_runner.hh"

namespace mobius
{
namespace
{

TEST(ReplicaRunner, RunsEveryIndexOnce)
{
    const int n = 37;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h = 0;
    ReplicaRunnerOptions opts;
    opts.threads = 4;
    ReplicaRunStats rs =
        runReplicas(n, [&](int i) { ++hits[i]; }, opts);
    EXPECT_EQ(rs.threadsUsed, 4);
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ReplicaRunner, ClampsThreadsToCount)
{
    ReplicaRunnerOptions opts;
    opts.threads = 16;
    ReplicaRunStats rs = runReplicas(3, [](int) {}, opts);
    EXPECT_EQ(rs.threadsUsed, 3);
    EXPECT_EQ(runReplicas(0, [](int) {}, opts).threadsUsed, 1);
}

TEST(ReplicaRunner, SingleThreadRunsInline)
{
    std::vector<int> order;
    ReplicaRunnerOptions opts;
    opts.threads = 1;
    runReplicas(5, [&](int i) { order.push_back(i); }, opts);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ReplicaRunner, LowestIndexExceptionWinsAndRestStillRun)
{
    const int n = 12;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h = 0;
    ReplicaRunnerOptions opts;
    opts.threads = 4;
    try {
        runReplicas(
            n,
            [&](int i) {
                ++hits[i];
                if (i == 3 || i == 9)
                    throw std::runtime_error(
                        "replica " + std::to_string(i));
            },
            opts);
        FAIL() << "expected runReplicas to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "replica 3");
    }
    // A throwing replica never silently skips the others.
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

/**
 * The contract the parallel benches lean on, checked on the real
 * simulator: a batch of faulted Mobius steps (distinct seeds per
 * index) produces byte-identical traces — every span, every
 * dependency edge, every counter — no matter how many worker
 * threads dispatch the batch.
 */
TEST(ReplicaRunner, FaultedRunsSpanForSpanIdenticalAcrossThreads)
{
    Server plan_server = makeCommodityServer({2, 2});
    Workload plan_work(gpt8b(), plan_server);
    MobiusPlan plan = planMobius(plan_server, plan_work.cost());

    const int replicas = 6;
    auto batch = [&](int threads) {
        std::vector<std::string> traces(replicas);
        ReplicaRunnerOptions opts;
        opts.threads = threads;
        runReplicas(
            replicas,
            [&](int i) {
                Server server = makeCommodityServer({2, 2});
                Workload work(gpt8b(), server);
                FaultPlan fp;
                fp.xfailProb = 0.02;
                fp.retryBudget = 10;
                fp.retryBackoff = 1e-4;
                RunContext ctx(server, {}, 0.0, nullptr, {}, &fp,
                               100 + static_cast<std::uint64_t>(i));
                MobiusExecutor exec(ctx, work.cost(),
                                    plan.partition, plan.mapping);
                exec.run();
                traces[static_cast<std::size_t>(i)] =
                    ctx.trace().toChromeJson();
            },
            opts);
        return traces;
    };

    std::vector<std::string> serial = batch(1);
    std::vector<std::string> parallel = batch(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (int i = 0; i < replicas; ++i) {
        EXPECT_FALSE(serial[static_cast<std::size_t>(i)].empty());
        EXPECT_EQ(serial[static_cast<std::size_t>(i)],
                  parallel[static_cast<std::size_t>(i)])
            << "replica " << i;
    }
}

} // namespace
} // namespace mobius
