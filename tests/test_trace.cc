/**
 * @file
 * Trace recorder tests, plus trace-driven verification that the
 * *executed* Mobius and 1F1B schedules satisfy the paper's
 * pipeline-order constraints (Eq. 8-11) — both on span timestamps
 * and causally, as reachability over the recorded `deps` DAG.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "base/logging.hh"
#include "json_test_util.hh"
#include "runtime/api.hh"
#include "simcore/trace.hh"

namespace mobius
{
namespace
{

/** Build a span field-by-field (aggregate init would warn). */
TraceSpan
mkSpan(const std::string &track, const std::string &name,
       const std::string &category, double start, double end)
{
    TraceSpan s;
    s.track = track;
    s.name = name;
    s.category = category;
    s.start = start;
    s.end = end;
    return s;
}

/** Reachability queries over a recorded span DAG. */
class DagView
{
  public:
    explicit DagView(const TraceRecorder &trace)
    {
        for (TraceSpan &s : trace.spans())
            byId_.emplace(s.id, std::move(s));
    }

    /** @return whether @p from transitively depends on @p to. */
    bool
    reaches(SpanId from, SpanId to) const
    {
        std::vector<SpanId> stack{from};
        std::set<SpanId> seen;
        while (!stack.empty()) {
            SpanId id = stack.back();
            stack.pop_back();
            if (id == to)
                return true;
            if (!seen.insert(id).second)
                continue;
            auto it = byId_.find(id);
            if (it == byId_.end())
                continue;
            for (SpanId d : it->second.deps)
                stack.push_back(d);
        }
        return false;
    }

  private:
    std::map<SpanId, TraceSpan> byId_;
};

TEST(TraceRecorder, TrackAndNameQueries)
{
    TraceRecorder rec;
    rec.record(mkSpan("gpu0.compute", "F1,0", "compute", 2.0, 3.0));
    rec.record(mkSpan("gpu0.compute", "F0,0", "compute", 0.0, 1.0));
    rec.record(mkSpan("gpu1.compute", "F1,1", "compute", 1.5, 2.5));

    auto t0 = rec.onTrack("gpu0.compute");
    ASSERT_EQ(t0.size(), 2u);
    EXPECT_EQ(t0[0].name, "F0,0"); // sorted by start
    EXPECT_EQ(t0[1].name, "F1,0");

    auto f11 = rec.named("F1,1");
    ASSERT_EQ(f11.size(), 1u);
    EXPECT_DOUBLE_EQ(f11[0].duration(), 1.0);
}

TEST(TraceRecorder, SetEnabledDropsRecording)
{
    TraceRecorder rec;
    EXPECT_TRUE(rec.enabled());
    rec.setEnabled(false);
    EXPECT_EQ(rec.record(mkSpan("gpu0.compute", "F0,0", "compute",
                                0.0, 1.0)),
              kNoSpan);
    TraceCounter c;
    c.name = "mem";
    c.time = 0.5;
    c.value = 1.0;
    rec.recordCounter(c);
    EXPECT_EQ(rec.spanCount(), 0u);
    rec.setEnabled(true);
    EXPECT_NE(rec.record(mkSpan("gpu0.compute", "F1,0", "compute",
                                1.0, 2.0)),
              kNoSpan);
    EXPECT_EQ(rec.spanCount(), 1u);
}

TEST(TraceRecorder, ChromeJsonWellFormed)
{
    TraceRecorder rec;
    rec.record(mkSpan("gpu0.compute", "F0,0", "compute", 0.0, 0.5));
    rec.record(mkSpan("gpu0.h2d", "S1.fwd", "transfer", 0.1, 0.4));
    std::string json = rec.toChromeJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"F0,0\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    // Balanced braces/brackets.
    int depth = 0;
    for (char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(TraceRecorder, AsciiGanttRendersEveryTrack)
{
    TraceRecorder rec;
    rec.record(mkSpan("gpu0.compute", "F0,0", "compute", 0.0, 0.5));
    rec.record(mkSpan("gpu1.compute", "F1,0", "compute", 0.5, 1.0));
    std::string g = rec.toAsciiGantt(40);
    EXPECT_NE(g.find("gpu0.compute"), std::string::npos);
    EXPECT_NE(g.find("gpu1.compute"), std::string::npos);
    EXPECT_NE(g.find("F"), std::string::npos);
}

TEST(TraceRecorder, AssignsStableIdsAndDropsNullDeps)
{
    TraceRecorder rec;
    SpanId a = rec.record(
        mkSpan("gpu0.compute", "A", "compute", 0.0, 1.0));
    TraceSpan b = mkSpan("gpu0.compute", "B", "compute", 1.0, 2.0);
    b.deps = {a, kNoSpan, a};
    SpanId bid = rec.record(b);
    EXPECT_NE(a, kNoSpan);
    EXPECT_NE(bid, a);

    TraceSpan out;
    ASSERT_TRUE(rec.findSpan(bid, out));
    ASSERT_EQ(out.deps.size(), 2u); // kNoSpan dropped
    EXPECT_EQ(out.deps[0], a);
    EXPECT_FALSE(rec.findSpan(kNoSpan, out));
}

TEST(TraceRecorder, QueueWaitAndStretchDerivations)
{
    TraceSpan s = mkSpan("gpu0.h2d", "S0.fwd", "transfer", 2.0, 5.0);
    EXPECT_DOUBLE_EQ(s.queueWait(), 0.0); // unset => "at start"
    EXPECT_DOUBLE_EQ(s.stretch(), 0.0);   // unset => all work
    s.queuedAt = 1.0;
    s.work = 2.0;
    EXPECT_DOUBLE_EQ(s.queueWait(), 1.0);
    EXPECT_DOUBLE_EQ(s.stretch(), 1.0);
    // Out-of-range markers clamp instead of going negative.
    s.queuedAt = 9.0;
    s.work = 99.0;
    EXPECT_DOUBLE_EQ(s.queueWait(), 0.0);
    EXPECT_DOUBLE_EQ(s.stretch(), 0.0);
}

TEST(TraceRecorder, ChromeJsonParsesAndRoundTripsEscapes)
{
    TraceRecorder rec;
    SpanId a = rec.record(mkSpan("gpu0.compute", "quote\" back\\sl",
                                 "compute", 0.0, 0.5));
    TraceSpan b =
        mkSpan("track\"x\\y", "B", "transfer", 0.5, 1.0);
    b.deps = {a};
    rec.record(b);
    rec.recordCounter({"depth\"q", 0.1, 2.0});

    testjson::JsonValue doc;
    ASSERT_NO_THROW(doc = testjson::parseJson(rec.toChromeJson()));
    const auto &events = doc.at("traceEvents");
    ASSERT_TRUE(events.isArray());

    bool name_ok = false, track_ok = false, counter_ok = false;
    int flow_s = 0, flow_f = 0;
    for (const auto &e : events.array) {
        const std::string &ph = e.at("ph").string;
        const std::string &name = e.at("name").string;
        if (ph == "X" && name == "quote\" back\\sl")
            name_ok = true;
        if (ph == "M" &&
            e.at("args").at("name").string == "track\"x\\y") {
            track_ok = true;
        }
        if (ph == "C" && name == "depth\"q") {
            counter_ok = true;
            EXPECT_DOUBLE_EQ(e.at("args").at("value").number, 2.0);
        }
        if (ph == "s")
            ++flow_s;
        if (ph == "f")
            ++flow_f;
    }
    EXPECT_TRUE(name_ok);    // '"' and '\' survive the round trip
    EXPECT_TRUE(track_ok);
    EXPECT_TRUE(counter_ok);
    // One flow pair per dependency edge.
    EXPECT_EQ(flow_s, 1);
    EXPECT_EQ(flow_f, 1);
}

/** Runs one Mobius step and exposes the trace. */
class MobiusTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        server_ = std::make_unique<Server>(
            makeCommodityServer({2, 2}));
        work_ = std::make_unique<Workload>(gpt8b(), *server_);
        plan_ = planMobius(*server_, work_->cost());
        ctx_ = std::make_unique<RunContext>(*server_);
        MobiusExecutor exec(*ctx_, work_->cost(), plan_.partition,
                            plan_.mapping);
        stats_ = exec.run();
        S_ = plan_.stageCount();
        M_ = work_->cost().cfg().numMicrobatches;
    }

    /** The unique span named @p name; fails the test if absent. */
    TraceSpan
    span(const std::string &name)
    {
        auto v = ctx_->trace().named(name);
        EXPECT_EQ(v.size(), 1u) << name;
        return v.empty() ? TraceSpan{} : v[0];
    }

    std::unique_ptr<Server> server_;
    std::unique_ptr<Workload> work_;
    MobiusPlan plan_;
    std::unique_ptr<RunContext> ctx_;
    StepStats stats_;
    int S_ = 0;
    int M_ = 0;
};

TEST_F(MobiusTraceTest, EveryMicrobatchExecutesOnce)
{
    for (int j = 0; j < S_; ++j) {
        for (int m = 0; m < M_; ++m) {
            EXPECT_EQ(
                ctx_->trace().named(strfmt("F%d,%d", j, m)).size(),
                1u);
            EXPECT_EQ(
                ctx_->trace().named(strfmt("B%d,%d", j, m)).size(),
                1u);
        }
    }
}

TEST_F(MobiusTraceTest, Eq8ActivationOrder)
{
    // A stage cannot start a microbatch before its predecessor
    // finished that microbatch (plus transfer, which only adds).
    for (int j = 1; j < S_; ++j) {
        for (int m = 0; m < M_; ++m) {
            EXPECT_GE(span(strfmt("F%d,%d", j, m)).start,
                      span(strfmt("F%d,%d", j - 1, m)).end - 1e-9);
            EXPECT_GE(span(strfmt("B%d,%d", j - 1, m)).start,
                      span(strfmt("B%d,%d", j, m)).end - 1e-9);
        }
    }
}

TEST_F(MobiusTraceTest, Eq10MicrobatchesSequentialPerStage)
{
    for (int j = 0; j < S_; ++j) {
        for (int m = 1; m < M_; ++m) {
            EXPECT_GE(span(strfmt("F%d,%d", j, m)).start,
                      span(strfmt("F%d,%d", j, m - 1)).end - 1e-9);
            EXPECT_GE(span(strfmt("B%d,%d", j, m)).start,
                      span(strfmt("B%d,%d", j, m - 1)).end - 1e-9);
        }
    }
}

TEST_F(MobiusTraceTest, Eq11BackwardAfterForward)
{
    EXPECT_GE(span(strfmt("B%d,0", S_ - 1)).start,
              span(strfmt("F%d,%d", S_ - 1, M_ - 1)).end - 1e-9);
}

TEST_F(MobiusTraceTest, Eq9WeightsBeforeCompute)
{
    // A stage's first forward starts only after its weight load
    // finished (the load may be split into chunks; take the last).
    for (int j = 0; j < S_; ++j) {
        auto loads = ctx_->trace().named(strfmt("S%d.fwd", j));
        ASSERT_FALSE(loads.empty()) << "stage " << j;
        double load_end = 0;
        for (const auto &l : loads)
            load_end = std::max(load_end, l.end);
        EXPECT_GE(span(strfmt("F%d,0", j)).start, load_end - 1e-9);
    }
}

TEST_F(MobiusTraceTest, Eq8DagEdges)
{
    // Causal version of Eq. 8: the DAG itself must encode *why* a
    // stage waited — F(j,m) transitively depends on F(j-1,m)
    // (through the activation handoff), and B(j-1,m) on B(j,m)
    // (through the gradient handoff), not merely start later.
    DagView dag(ctx_->trace());
    for (int j = 1; j < S_; ++j) {
        for (int m = 0; m < M_; ++m) {
            EXPECT_TRUE(dag.reaches(span(strfmt("F%d,%d", j, m)).id,
                                    span(strfmt("F%d,%d", j - 1, m))
                                        .id))
                << "F" << j << "," << m;
            EXPECT_TRUE(
                dag.reaches(span(strfmt("B%d,%d", j - 1, m)).id,
                            span(strfmt("B%d,%d", j, m)).id))
                << "B" << j - 1 << "," << m;
        }
    }
}

TEST_F(MobiusTraceTest, Eq10DagEdges)
{
    // Causal version of Eq. 10: a stage's microbatches chain
    // through its compute engine in order.
    DagView dag(ctx_->trace());
    for (int j = 0; j < S_; ++j) {
        for (int m = 1; m < M_; ++m) {
            EXPECT_TRUE(dag.reaches(span(strfmt("F%d,%d", j, m)).id,
                                    span(strfmt("F%d,%d", j, m - 1))
                                        .id))
                << "F" << j << "," << m;
            EXPECT_TRUE(dag.reaches(span(strfmt("B%d,%d", j, m)).id,
                                    span(strfmt("B%d,%d", j, m - 1))
                                        .id))
                << "B" << j << "," << m;
        }
    }
}

TEST_F(MobiusTraceTest, Eq11DagEdge)
{
    // Causal version of Eq. 11: the first backward of the last
    // stage depends on that stage's final forward.
    DagView dag(ctx_->trace());
    EXPECT_TRUE(dag.reaches(span(strfmt("B%d,0", S_ - 1)).id,
                            span(strfmt("F%d,%d", S_ - 1, M_ - 1))
                                .id));
}

TEST_F(MobiusTraceTest, Eq9DagWeightEdges)
{
    // Causal version of Eq. 9: a stage's first forward depends on
    // its weight-load chunks (every stage loads from DRAM).
    DagView dag(ctx_->trace());
    for (int j = 0; j < S_; ++j) {
        auto loads = ctx_->trace().named(strfmt("S%d.fwd", j));
        ASSERT_FALSE(loads.empty()) << "stage " << j;
        SpanId f = span(strfmt("F%d,0", j)).id;
        for (const auto &l : loads) {
            EXPECT_TRUE(dag.reaches(f, l.id))
                << "F" << j << ",0 <- " << l.name;
        }
    }
}

TEST_F(MobiusTraceTest, ComputeSpansNeverOverlapPerGpu)
{
    for (int g = 0; g < ctx_->numGpus(); ++g) {
        auto spans = ctx_->trace().onTrack(
            "gpu" + std::to_string(g) + ".compute");
        for (std::size_t i = 1; i < spans.size(); ++i) {
            EXPECT_GE(spans[i].start, spans[i - 1].end - 1e-9)
                << "gpu " << g << " span " << i;
        }
    }
}

TEST_F(MobiusTraceTest, PrefetchOverlapsPredecessorCompute)
{
    // The point of §3.1: at least one stage's forward weight load
    // overlaps some earlier compute span on the same GPU.
    bool overlapped = false;
    for (int j = ctx_->numGpus(); j < S_ && !overlapped; ++j) {
        auto loads = ctx_->trace().named(strfmt("S%d.fwd", j));
        if (loads.empty())
            continue;
        int gpu = plan_.mapping.gpuOf(j);
        auto computes = ctx_->trace().onTrack(
            "gpu" + std::to_string(gpu) + ".compute");
        for (const auto &l : loads) {
            for (const auto &c : computes) {
                if (l.start < c.end - 1e-9 &&
                    c.start < l.end - 1e-9) {
                    overlapped = true;
                    break;
                }
            }
        }
    }
    EXPECT_TRUE(overlapped);
}

TEST_F(MobiusTraceTest, GanttAndJsonExportWork)
{
    EXPECT_FALSE(ctx_->trace().empty());
    std::string json = ctx_->trace().toChromeJson();
    EXPECT_GT(json.size(), 1000u);
    std::string gantt = ctx_->trace().toAsciiGantt();
    EXPECT_NE(gantt.find("gpu0.compute"), std::string::npos);
}

/** Runs one 1F1B pipeline step and exposes the trace. */
class OneFOneBTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        server_ = std::make_unique<Server>(
            makeCommodityServer({2, 2}));
        work_ = std::make_unique<Workload>(gpt3b(), *server_);
        S_ = server_->topo.numGpus();
        Partition p =
            balancedComputePartition(work_->cost(), S_);
        Mapping m = sequentialMapping(server_->topo, S_);
        ctx_ = std::make_unique<RunContext>(*server_);
        PipelineExecutor exec(*ctx_, work_->cost(), p, m,
                              PipelineSchedule::OneFOneB);
        exec.run();
        M_ = work_->cost().cfg().numMicrobatches;
    }

    /** The unique span named @p name; fails the test if absent. */
    TraceSpan
    span(const std::string &name)
    {
        auto v = ctx_->trace().named(name);
        EXPECT_EQ(v.size(), 1u) << name;
        return v.empty() ? TraceSpan{} : v[0];
    }

    std::unique_ptr<Server> server_;
    std::unique_ptr<Workload> work_;
    std::unique_ptr<RunContext> ctx_;
    int S_ = 0;
    int M_ = 0;
};

TEST_F(OneFOneBTraceTest, Eq8DagEdges)
{
    DagView dag(ctx_->trace());
    for (int j = 1; j < S_; ++j) {
        for (int m = 0; m < M_; ++m) {
            EXPECT_TRUE(dag.reaches(span(strfmt("F%d,%d", j, m)).id,
                                    span(strfmt("F%d,%d", j - 1, m))
                                        .id))
                << "F" << j << "," << m;
            EXPECT_TRUE(
                dag.reaches(span(strfmt("B%d,%d", j - 1, m)).id,
                            span(strfmt("B%d,%d", j, m)).id))
                << "B" << j - 1 << "," << m;
        }
    }
}

TEST_F(OneFOneBTraceTest, Eq10DagEdges)
{
    DagView dag(ctx_->trace());
    for (int j = 0; j < S_; ++j) {
        for (int m = 1; m < M_; ++m) {
            EXPECT_TRUE(dag.reaches(span(strfmt("F%d,%d", j, m)).id,
                                    span(strfmt("F%d,%d", j, m - 1))
                                        .id))
                << "F" << j << "," << m;
            EXPECT_TRUE(dag.reaches(span(strfmt("B%d,%d", j, m)).id,
                                    span(strfmt("B%d,%d", j, m - 1))
                                        .id))
                << "B" << j << "," << m;
        }
    }
}

TEST_F(OneFOneBTraceTest, BackwardGatedByOwnForward)
{
    // The 1F1B pivot: the last stage turns each microbatch around
    // immediately, so B(S-1,m) hangs off F(S-1,m) — not off the
    // final forward as in a GPipe-style flush (Eq. 11).
    DagView dag(ctx_->trace());
    for (int m = 0; m < M_; ++m) {
        EXPECT_TRUE(
            dag.reaches(span(strfmt("B%d,%d", S_ - 1, m)).id,
                        span(strfmt("F%d,%d", S_ - 1, m)).id))
            << m;
    }
}

TEST(PrefetchAblation, PrefetchHelpsWhenLoadsAreCoarse)
{
    // Prefetch matters most for coarse stages on uncontended links
    // (under a shared root complex, prefetch flows fair-share
    // bandwidth away from other GPUs' critical loads and the net
    // gain shrinks — see EXPERIMENTS.md). The pipeline also absorbs
    // single blocking stalls, so the gain is a few percent, not the
    // full load time.
    Server server = makeCommodityServer({1, 1, 1, 1});
    Workload work(gpt15b(), server, 4);
    Partition p = uniformPartition(work.cost().numLayers(), 11);
    Mapping map = crossMapping(server.topo, 11).mapping;

    auto run = [&](int lookahead) {
        MobiusExecutorConfig cfg;
        cfg.prefetchLookahead = lookahead;
        RunContext ctx(server);
        MobiusExecutor exec(ctx, work.cost(), p, map, cfg);
        return exec.run().stepTime;
    };
    double without = run(0);
    double with = run(1);
    EXPECT_LT(with, without * 0.99);
}

TEST(SsdTierAblation, NvmeRateCapSlowsWeightLoads)
{
    // §3.1's rationale for DRAM-only offload: an SSD-rate source
    // bottlenecks the pipeline.
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt15b(), server);
    MobiusPlan plan = planMobius(server, work.cost());

    MobiusExecutorConfig dram;
    MobiusExecutorConfig ssd;
    ssd.weightSourceRateCap = 3.0e9; // NVMe-class read bandwidth
    StepStats a = runMobiusStep(server, work.cost(), plan, dram);
    StepStats b = runMobiusStep(server, work.cost(), plan, ssd);
    EXPECT_GT(b.stepTime, a.stepTime * 1.5);
}

} // namespace
} // namespace mobius
