/**
 * @file
 * Tests for the statistics utilities: byte-weighted bandwidth CDFs,
 * traffic accounting, and the StepStats derived metrics.
 */

#include <gtest/gtest.h>

#include "runtime/step_stats.hh"
#include "xfer/stats.hh"

namespace mobius
{
namespace
{

BandwidthSample
sample(Bytes bytes, double bw,
       TrafficKind kind = TrafficKind::Parameter)
{
    BandwidthSample s;
    s.bytes = bytes;
    s.bandwidth = bw;
    s.kind = kind;
    return s;
}

TEST(BandwidthCdf, EmptyIsWellBehaved)
{
    BandwidthCdf cdf({});
    EXPECT_TRUE(cdf.empty());
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.maxBandwidth(), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(1e9), 0.0);
}

TEST(BandwidthCdf, ByteWeighting)
{
    // 900 bytes at 1 GB/s, 100 bytes at 10 GB/s: the median is the
    // slow rate, the p95 the fast one.
    BandwidthCdf cdf({sample(900, 1e9), sample(100, 10e9)});
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 1e9);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.95), 10e9);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(1e9), 0.9);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(0.5e9), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(20e9), 1.0);
    EXPECT_DOUBLE_EQ(cdf.maxBandwidth(), 10e9);
}

TEST(BandwidthCdf, DuplicateBandwidthsCollapse)
{
    BandwidthCdf cdf({sample(100, 2e9), sample(100, 2e9),
                      sample(200, 4e9)});
    ASSERT_EQ(cdf.points().size(), 2u);
    EXPECT_DOUBLE_EQ(cdf.points()[0].second, 0.5);
    EXPECT_DOUBLE_EQ(cdf.points()[1].second, 1.0);
}

TEST(BandwidthCdf, ZeroByteSamplesIgnoredInWeight)
{
    BandwidthCdf cdf({sample(0, 5e9), sample(100, 1e9)});
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 1e9);
}

TEST(TrafficStats, AccumulatesByKind)
{
    TrafficStats stats;
    stats.record(sample(100, 1e9, TrafficKind::Parameter));
    stats.record(sample(50, 1e9, TrafficKind::Gradient));
    stats.record(sample(25, 1e9, TrafficKind::Parameter));
    EXPECT_EQ(stats.totalBytes(), 175u);
    EXPECT_EQ(stats.bytesOf(TrafficKind::Parameter), 125u);
    EXPECT_EQ(stats.bytesOf(TrafficKind::Gradient), 50u);
    EXPECT_EQ(stats.bytesOf(TrafficKind::Activation), 0u);
    EXPECT_EQ(stats.samples().size(), 3u);
    stats.clear();
    EXPECT_EQ(stats.totalBytes(), 0u);
    EXPECT_TRUE(stats.samples().empty());
}

TEST(TrafficStats, KindNamesArePrintable)
{
    EXPECT_STREQ(trafficKindName(TrafficKind::Parameter),
                 "parameter");
    EXPECT_STREQ(trafficKindName(TrafficKind::ActivationGrad),
                 "activation-grad");
    EXPECT_STREQ(trafficKindName(TrafficKind::OptimizerState),
                 "optimizer-state");
}

TEST(StepStats, DerivedMetrics)
{
    StepStats s;
    s.stepTime = 10.0;
    s.numGpus = 4;
    s.exposedCommTime = 8.0;
    EXPECT_DOUBLE_EQ(s.exposedCommFraction(), 0.2);

    s.traffic.record(sample(300, 1e9));
    EXPECT_DOUBLE_EQ(s.trafficRatio(100), 3.0);
    EXPECT_DOUBLE_EQ(s.trafficRatio(0), 0.0);

    StepStats zero;
    EXPECT_DOUBLE_EQ(zero.exposedCommFraction(), 0.0);
}

TEST(UsageTracker, NestedDepthsIntegrateCorrectly)
{
    EventQueue q;
    UsageTracker usage(q, 1);
    // comm [0, 4); compute [1, 3): exposed = [0,1) + [3,4) = 2 s.
    usage.commBegin(0);
    q.runUntil(1.0);
    usage.computeBegin(0);
    q.runUntil(3.0);
    usage.computeEnd(0);
    q.runUntil(4.0);
    usage.commEnd(0);
    EXPECT_DOUBLE_EQ(usage.computeTime(0), 2.0);
    EXPECT_DOUBLE_EQ(usage.exposedCommTime(0), 2.0);
    EXPECT_DOUBLE_EQ(usage.overlappedCommTime(0), 2.0);
}

TEST(UsageTracker, OverlappingCommFlowsCountOnce)
{
    EventQueue q;
    UsageTracker usage(q, 1);
    // Two concurrent flows on the same GPU: the indicator is binary,
    // so exposure is wall time, not flow-seconds.
    usage.commBegin(0);
    q.runUntil(1.0);
    usage.commBegin(0);
    q.runUntil(2.0);
    usage.commEnd(0);
    q.runUntil(3.0);
    usage.commEnd(0);
    EXPECT_DOUBLE_EQ(usage.exposedCommTime(0), 3.0);
}

TEST(UsageTracker, IgnoresUnattributedGpu)
{
    EventQueue q;
    UsageTracker usage(q, 2);
    usage.commBegin(-1); // DRAM-to-DRAM style, no GPU
    q.runUntil(1.0);
    usage.commEnd(-1);
    EXPECT_DOUBLE_EQ(usage.exposedCommTime(0), 0.0);
    EXPECT_DOUBLE_EQ(usage.exposedCommTime(1), 0.0);
}

TEST(UsageTracker, ClearResets)
{
    EventQueue q;
    UsageTracker usage(q, 1);
    usage.commBegin(0);
    q.runUntil(2.0);
    usage.commEnd(0);
    EXPECT_GT(usage.exposedCommTime(0), 0.0);
    usage.clear();
    EXPECT_DOUBLE_EQ(usage.exposedCommTime(0), 0.0);
    EXPECT_DOUBLE_EQ(usage.computeTime(0), 0.0);
}

} // namespace
} // namespace mobius
