/**
 * @file
 * Tests for fleet observability (obs/fleet_trace.hh + the FleetSim
 * integration): the decision-log golden sequences on the PR 7
 * backfill and preemption scenarios, per-job event rings with
 * counted (never silent) truncation, byte-identity of the report
 * JSONL and Chrome timeline across thread widths and plan-cache
 * settings, per-job attribution summing to the JCT, and the
 * fatal-without-tracing accessor contract.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "base/json.hh"
#include "base/logging.hh"
#include "fleet/fleet_sim.hh"
#include "obs/fleet_trace.hh"

namespace mobius
{
namespace
{

/** Small Mobius job used throughout: gpt3b on a 2+2 commodity box. */
JobSpec
smallJob()
{
    JobSpec spec;
    spec.model = gpt3b();
    spec.groups = {2, 2};
    spec.steps = 1;
    return spec;
}

/** Tracing config with an effectively unbounded per-job ring. */
FleetTraceConfig
tracing(int max_events_per_job = 0)
{
    FleetTraceConfig cfg;
    cfg.enabled = true;
    cfg.maxEventsPerJob = max_events_per_job;
    return cfg;
}

/**
 * The PR 7 preemption scenario, traced: a low-priority 3-step job
 * is evicted mid-first-step by a high-priority arrival at t=0.25,
 * docks to zero whole steps, and resumes after the preemptor
 * finishes.
 */
std::unique_ptr<FleetSim>
preemptionFleet(FleetTraceConfig trace)
{
    FleetOptions opts;
    opts.threads = 1;
    opts.preemption = true;
    opts.trace = trace;
    auto fleet = std::make_unique<FleetSim>(opts);
    JobSpec low = smallJob();
    low.steps = 3;
    low.priority = 5;
    fleet->submit(low);
    JobSpec high = smallJob();
    high.steps = 1;
    high.priority = 0;
    high.arrival = 0.25;
    fleet->submit(high);
    return fleet;
}

/**
 * The PR 7 backfill scenario, traced: job 0 occupies the only
 * commodity server, job 1 (same class) blocks at the head, and
 * job 2 backfills onto the idle dc server at its own arrival.
 */
std::unique_ptr<FleetSim>
backfillFleet(FleetTraceConfig trace)
{
    FleetOptions opts;
    opts.threads = 1;
    opts.backfill = true;
    opts.servers.push_back({"commodity", {2, 2}, false, 1});
    opts.servers.push_back({"dc", {4}, true, 1});
    opts.trace = trace;
    auto fleet = std::make_unique<FleetSim>(opts);
    JobSpec a = smallJob();
    fleet->submit(a); // job 0: starts at 0
    a.arrival = 0.5;
    fleet->submit(a); // job 1: blocked behind job 0
    JobSpec b = smallJob();
    b.serverClass = "dc";
    b.arrival = 0.6;
    fleet->submit(b); // job 2: idle dc server available
    return fleet;
}

/** A mixed preempting+backfilling fleet (PR 7's identity fixture). */
std::unique_ptr<FleetSim>
mixedFleet(int threads, bool plan_cache, FleetTraceConfig trace = {})
{
    FleetOptions opts;
    opts.threads = threads;
    opts.planCache = plan_cache;
    opts.preemption = true;
    opts.backfill = true;
    opts.servers.push_back({"commodity", {2, 2}, false, 2});
    opts.trace = trace;
    auto fleet = std::make_unique<FleetSim>(opts);
    JobSpec proto = smallJob();
    proto.steps = 2;
    fleet->submitPoisson(proto, 8, 2.0, 42);
    JobSpec vip = smallJob();
    vip.priority = -1;
    vip.arrival = 1.0;
    fleet->submit(vip);
    vip.arrival = 1.0;
    fleet->submit(vip);
    return fleet;
}

TEST(FleetTrace, DecisionLogGoldenOnPreemption)
{
    auto fleet = preemptionFleet(tracing());
    FleetMetrics m = fleet->run();
    EXPECT_EQ(m.sched.preemptions, 1u);
    double step = fleet->records()[0].stepTime;
    ASSERT_GT(step, 0.25);

    // Exactly four decisions, in event order: job 0 admitted, the
    // VIP preempts it, the VIP takes the vacated server, job 0
    // resumes once the VIP finishes.
    const auto &ds = fleet->fleetTrace().decisions();
    ASSERT_EQ(ds.size(), 4u);
    EXPECT_EQ(ds[0].kind, FleetDecision::Kind::Admit);
    EXPECT_EQ(ds[0].job, 0);
    EXPECT_EQ(ds[0].server, 0);
    EXPECT_EQ(ds[0].freeInClass, 1);
    EXPECT_DOUBLE_EQ(ds[0].time, 0.0);

    EXPECT_EQ(ds[1].kind, FleetDecision::Kind::Preempt);
    EXPECT_DOUBLE_EQ(ds[1].time, 0.25);
    EXPECT_EQ(ds[1].job, 1);
    EXPECT_EQ(ds[1].priority, 0);
    EXPECT_EQ(ds[1].victim, 0);
    EXPECT_EQ(ds[1].victimPriority, 5);
    EXPECT_DOUBLE_EQ(ds[1].victimStart, 0.0);
    EXPECT_EQ(ds[1].freeInClass, 0);
    EXPECT_EQ(ds[1].klass, "commodity");
    EXPECT_NE(ds[1].why.find("preempted job 0"), std::string::npos);
    EXPECT_NE(ds[1].why.find("for job 1 (prio 0)"),
              std::string::npos);

    EXPECT_EQ(ds[2].kind, FleetDecision::Kind::Admit);
    EXPECT_EQ(ds[2].job, 1);
    EXPECT_EQ(ds[2].freeInClass, 0); // took the vacated server

    EXPECT_EQ(ds[3].kind, FleetDecision::Kind::Admit);
    EXPECT_EQ(ds[3].job, 0); // the resume placement
    EXPECT_DOUBLE_EQ(ds[3].time, 0.25 + step);

    // The victim's full event story, oldest first.
    std::vector<FleetEvent> ev = fleet->fleetTrace().events(0);
    ASSERT_EQ(ev.size(), 7u);
    EXPECT_EQ(ev[0].type, FleetEventType::Submit);
    EXPECT_EQ(ev[1].type, FleetEventType::Admit);
    EXPECT_DOUBLE_EQ(ev[1].value, 5.0); // its priority
    EXPECT_EQ(ev[2].type, FleetEventType::Preempt);
    EXPECT_DOUBLE_EQ(ev[2].time, 0.25);
    EXPECT_EQ(ev[2].other, 1); // the preemptor
    EXPECT_EQ(ev[3].type, FleetEventType::Dock);
    EXPECT_EQ(ev[3].other, 0); // zero whole steps kept
    EXPECT_DOUBLE_EQ(ev[3].value, 0.25); // seconds docked away
    EXPECT_EQ(ev[4].type, FleetEventType::Resume);
    EXPECT_DOUBLE_EQ(ev[4].time, 0.25 + step);
    EXPECT_EQ(ev[5].type, FleetEventType::Finish);
    EXPECT_EQ(ev[6].type, FleetEventType::ServerFree);

    // And the preemptor's: it never waits, never resumes.
    ev = fleet->fleetTrace().events(1);
    ASSERT_EQ(ev.size(), 4u);
    EXPECT_EQ(ev[0].type, FleetEventType::Submit);
    EXPECT_EQ(ev[1].type, FleetEventType::Admit);
    EXPECT_EQ(ev[2].type, FleetEventType::Finish);
    EXPECT_EQ(ev[3].type, FleetEventType::ServerFree);

    // Two stints for the victim plus one for the preemptor.
    EXPECT_EQ(fleet->fleetTrace().stintCount(), 3u);
    EXPECT_EQ(m.traceEvents, 11u);
    EXPECT_EQ(m.traceTruncated, 0u);
}

TEST(FleetTrace, DecisionLogGoldenOnBackfill)
{
    auto fleet = backfillFleet(tracing());
    FleetMetrics m = fleet->run();
    EXPECT_EQ(m.sched.backfills, 1u);

    const auto &ds = fleet->fleetTrace().decisions();
    ASSERT_EQ(ds.size(), 3u);
    EXPECT_EQ(ds[0].kind, FleetDecision::Kind::Admit);
    EXPECT_EQ(ds[0].job, 0);

    // The backfill decision names the blocked head it jumped and
    // explains why jumping was safe.
    EXPECT_EQ(ds[1].kind, FleetDecision::Kind::Backfill);
    EXPECT_DOUBLE_EQ(ds[1].time, 0.6);
    EXPECT_EQ(ds[1].job, 2);
    EXPECT_EQ(ds[1].server, 1);
    EXPECT_EQ(ds[1].klass, "dc");
    EXPECT_EQ(ds[1].freeInClass, 1);
    EXPECT_EQ(ds[1].blockedHead, 1);
    EXPECT_EQ(ds[1].blockedHeadKlass, "commodity");
    EXPECT_EQ(ds[1].pending, 1u); // job 1 still waiting
    EXPECT_EQ(ds[1].why,
              "backfilled job 2 onto server 1 (dc) past blocked "
              "head 1: head needs 1xcommodity, 0 free");

    EXPECT_EQ(ds[2].kind, FleetDecision::Kind::Admit);
    EXPECT_EQ(ds[2].job, 1); // unblocked when job 0 finishes

    // The backfilled job's placement event carries the jumped head.
    std::vector<FleetEvent> ev = fleet->fleetTrace().events(2);
    ASSERT_GE(ev.size(), 2u);
    EXPECT_EQ(ev[1].type, FleetEventType::Backfill);
    EXPECT_EQ(ev[1].other, 1);

    // The JSONL log serialises one decision per line, wire-named.
    std::string log = fleet->fleetTrace().decisionLogJsonl();
    EXPECT_EQ(std::count(log.begin(), log.end(), '\n'), 3);
    EXPECT_NE(log.find("\"type\":\"backfill\""), std::string::npos);
    EXPECT_NE(log.find("\"blocked_head\":1"), std::string::npos);
}

TEST(FleetTrace, RingBudgetTruncatesOldestAndCountsDrops)
{
    auto bounded = preemptionFleet(tracing(2));
    FleetMetrics m = bounded->run();

    // Recording still counts every event; only retention shrinks.
    EXPECT_EQ(m.traceEvents, 11u);
    // Job 0 emitted 7 events and kept 2; job 1 emitted 4, kept 2.
    EXPECT_EQ(bounded->fleetTrace().truncated(0), 5u);
    EXPECT_EQ(bounded->fleetTrace().truncated(1), 2u);
    EXPECT_EQ(m.traceTruncated, 7u);
    EXPECT_EQ(bounded->fleetTrace().truncated(), 7u);

    // The ring keeps the *newest* events, oldest first.
    std::vector<FleetEvent> ev = bounded->fleetTrace().events(0);
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_EQ(ev[0].type, FleetEventType::Finish);
    EXPECT_EQ(ev[1].type, FleetEventType::ServerFree);

    // Truncation must not perturb the run itself.
    auto unbounded = preemptionFleet(tracing());
    EXPECT_EQ(unbounded->run().fingerprint, m.fingerprint);
}

TEST(FleetTrace, ReportBytesIdenticalAcrossThreadsAndCache)
{
    auto serial = mixedFleet(1, true, tracing());
    auto wide = mixedFleet(4, true, tracing());
    auto uncached = mixedFleet(4, false, tracing());
    FleetMetrics ms = serial->run();
    FleetMetrics mw = wide->run();
    FleetMetrics mu = uncached->run();
    EXPECT_GT(ms.sched.preemptions, 0u);

    // The decision log is emitted on the fleet event loop, never
    // from pump workers: bytes identical at any width, cache on or
    // off — and so is the whole report and the Chrome timeline.
    std::string report = serial->reportJsonl();
    EXPECT_EQ(report, wide->reportJsonl());
    EXPECT_EQ(report, uncached->reportJsonl());
    EXPECT_EQ(serial->timelineJson(), wide->timelineJson());
    EXPECT_EQ(ms.fingerprint, mw.fingerprint);
    EXPECT_EQ(ms.fingerprint, mu.fingerprint);
    EXPECT_EQ(ms.decisionFingerprint, mw.decisionFingerprint);
    ASSERT_NE(ms.decisionFingerprint, 0u);

    // Tracing must not perturb the simulation: the fingerprint
    // matches an untraced run bit for bit.
    auto untraced = mixedFleet(1, true);
    EXPECT_EQ(untraced->run().fingerprint, ms.fingerprint);
}

TEST(FleetTrace, AttributionSumsToJctPerJob)
{
    auto fleet = mixedFleet(2, true, tracing());
    FleetMetrics m = fleet->run();
    const FleetAttribution &a = fleet->attribution();
    ASSERT_EQ(a.jobs.size(), m.completed);
    EXPECT_EQ(a.total.jobs, m.completed);

    // Every job's categories sum to its JCT — the invariant the
    // fleet bench gates at 1e-9; the implementation holds ~1e-13.
    for (const FleetJobAttribution &ja : a.jobs) {
        double drift = std::abs(ja.t.total() - ja.jct) /
            std::max(1.0, ja.jct);
        EXPECT_LE(drift, 1e-9) << "job " << ja.job;
        EXPECT_DOUBLE_EQ(ja.jct,
                         fleet->records()
                             [static_cast<std::size_t>(ja.job)]
                                 .jct());
    }

    // Roll-up consistency: class and priority cells repartition the
    // same seconds as the fleet total.
    double byClass = 0.0, byPrio = 0.0;
    for (const auto &[klass, cell] : a.byClass)
        byClass += cell.total();
    for (const auto &[prio, cell] : a.byPriority)
        byPrio += cell.total();
    EXPECT_NEAR(byClass, a.total.total(), 1e-9);
    EXPECT_NEAR(byPrio, a.total.total(), 1e-9);

    // The rendered table names every grouping and the drill-down.
    std::string table = fleetAttributionTable(a, 3);
    EXPECT_NE(table.find("where did fleet time go"),
              std::string::npos);
    EXPECT_NE(table.find("commodity"), std::string::npos);
    EXPECT_NE(table.find("TOTAL"), std::string::npos);
    EXPECT_NE(table.find("worst 3 JCTs"), std::string::npos);
}

TEST(FleetTrace, AttributionSeparatesQueueWaitFromPreemptionLoss)
{
    auto fleet = preemptionFleet(tracing());
    fleet->run();
    const FleetAttribution &a = fleet->attribution();
    ASSERT_EQ(a.jobs.size(), 2u);

    // The victim lost exactly the 0.25 s of partial-step progress
    // that docking discarded, and queued exactly while the VIP ran.
    const FleetJobAttribution &victim = a.jobs[0];
    double step = fleet->records()[0].stepTime;
    EXPECT_EQ(victim.preemptions, 1);
    EXPECT_NEAR(victim.t.preemptionLost, 0.25, 1e-9);
    EXPECT_NEAR(victim.t.queueWait, step, 1e-9);

    // The VIP neither queued nor lost progress.
    const FleetJobAttribution &vip = a.jobs[1];
    EXPECT_NEAR(vip.t.queueWait, 0.0, 1e-9);
    EXPECT_NEAR(vip.t.preemptionLost, 0.0, 1e-9);

    // worstJobs ranks the victim (longer JCT) first.
    std::vector<std::size_t> worst = a.worstJobs(2);
    ASSERT_EQ(worst.size(), 2u);
    EXPECT_EQ(a.jobs[worst[0]].job, 0);
}

TEST(FleetTrace, ChromeTimelineHasTracksCountersAndFlowArrows)
{
    auto fleet = preemptionFleet(tracing());
    fleet->run();
    json::JsonValue doc = json::parse(fleet->timelineJson());
    ASSERT_TRUE(doc.isObject());
    const json::JsonValue *events = doc.find("traceEvents");
    ASSERT_TRUE(events && events->isArray());

    std::size_t occupancy = 0, counters = 0, flows = 0;
    for (const auto &e : events->array) {
        std::string ph = e.stringOr("ph", "");
        if (ph == "X" &&
            e.stringOr("cat", "").rfind("occupancy", 0) == 0)
            ++occupancy;
        else if (ph == "C")
            ++counters;
        else if (ph == "s" || ph == "f")
            ++flows;
    }
    // Three stints (victim's two + the VIP's), counter samples for
    // every gauge, one s/f arrow pair for the preemption->resume.
    EXPECT_EQ(occupancy, 3u);
    EXPECT_GE(counters, 4u);
    EXPECT_EQ(flows, 2u);

    const json::JsonValue *meta = doc.find("metadata");
    ASSERT_TRUE(meta && meta->isObject());
    EXPECT_EQ(meta->stringOr("kind", ""), "fleet-timeline");
    EXPECT_EQ(meta->numberOr("jobs", 0), 2.0);
}

TEST(FleetTrace, ObservabilityAccessorsAreFatalWithoutTracing)
{
    // Tracing off: the run succeeds but there is nothing to read.
    FleetOptions opts;
    opts.threads = 1;
    FleetSim fleet(opts);
    fleet.submit(smallJob());
    fleet.run();
    EXPECT_THROW(fleet.fleetTrace(), FatalError);
    EXPECT_THROW(fleet.attribution(), FatalError);
    EXPECT_THROW(fleet.timelineJson(), FatalError);
    EXPECT_THROW(fleet.reportJsonl(), FatalError);

    // Tracing on but run() not yet called: equally fatal.
    FleetOptions topts;
    topts.threads = 1;
    topts.trace = tracing();
    FleetSim unrun(topts);
    unrun.submit(smallJob());
    EXPECT_THROW(unrun.fleetTrace(), FatalError);
    EXPECT_THROW(unrun.reportJsonl(), FatalError);
}

TEST(FleetTrace, BreakdownDominantAndDecisionWireNames)
{
    FleetTimeBreakdown t;
    EXPECT_STREQ(t.dominant(), "none");
    t.compute = 2.0;
    t.queueWait = 1.0;
    EXPECT_STREQ(t.dominant(), "compute");
    t.queueWait = 3.0;
    EXPECT_STREQ(t.dominant(), "queue-wait");
    EXPECT_DOUBLE_EQ(t.total(), 5.0);

    EXPECT_STREQ(fleetEventName(FleetEventType::ServerFree),
                 "server-free");
    EXPECT_STREQ(fleetEventName(FleetEventType::Backfill),
                 "backfill");
    EXPECT_STREQ(fleetDecisionName(FleetDecision::Kind::Preempt),
                 "preempt");
}

} // namespace
} // namespace mobius
