/**
 * @file
 * Serving-simulator tests: open-loop arrival determinism, continuous
 * batching invariants (FIFO, occupancy), exact latency accounting,
 * placement-policy behaviour (swap vs all-in-GPU vs ZeRO-gather vs
 * adaptive), SLO accounting, and fingerprint identity across
 * parallel replica widths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "base/logging.hh"
#include "base/rng.hh"
#include "model/model.hh"
#include "serve/serve_sim.hh"
#include "simcore/arrival.hh"
#include "simcore/replica_runner.hh"

using namespace mobius;

namespace
{

/** A small, fast MobiusSwap serving config on the 2+2 box. */
ServeOptions
smallOptions()
{
    ServeOptions opts;
    opts.model = gpt3b();
    opts.placement.policy = ServePlacement::MobiusSwap;
    opts.batch.maxBatch = 8;
    return opts;
}

ServeRequest
proto(int prompt = 64, int gen = 6)
{
    ServeRequest r;
    r.promptTokens = prompt;
    r.maxNewTokens = gen;
    return r;
}

} // namespace

TEST(Arrival, PoissonMatchesHistoricRecurrence)
{
    // The extracted helper must reproduce the fleet's inline loop
    // bit for bit: t += -log1p(-U) / rate on one seeded stream.
    const double rate = 3.5;
    const std::uint64_t seed = 99;
    Rng rng(seed);
    double t = 2.0;
    std::vector<double> want;
    for (int i = 0; i < 64; ++i) {
        t += -std::log1p(-rng.uniform()) / rate;
        want.push_back(t);
    }
    const std::vector<double> got =
        poissonArrivalTimes(64, rate, seed, 2.0);
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i)
        EXPECT_EQ(want[i], got[i]) << "arrival " << i;
}

TEST(Arrival, SinglePhaseProcessMatchesHelper)
{
    ArrivalProcess proc({{2.0, 123.0}}, 7, 0.0);
    const std::vector<double> a = proc.take(32);
    const std::vector<double> b = poissonArrivalTimes(32, 2.0, 7);
    EXPECT_EQ(a, b);
}

TEST(Arrival, PhasedBurstsConcentrateArrivals)
{
    // Cycle: 10 s at 0.5/s then 10 s at 8/s. Arrivals must pile
    // into the burst segments of each 20 s period.
    ArrivalProcess proc({{0.5, 10.0}, {8.0, 10.0}}, 11, 0.0);
    int base = 0, burst = 0;
    double last = 0.0;
    for (int i = 0; i < 200; ++i) {
        const double t = proc.next();
        EXPECT_GT(t, last); // strictly increasing
        last = t;
        const double ph = std::fmod(t, 20.0);
        (ph < 10.0 ? base : burst) += 1;
    }
    EXPECT_GT(burst, 4 * base);
}

TEST(Arrival, DeterministicAcrossInstances)
{
    ArrivalProcess a({{1.0, 5.0}, {6.0, 2.0}}, 42, 1.0);
    ArrivalProcess b({{1.0, 5.0}, {6.0, 2.0}}, 42, 1.0);
    EXPECT_EQ(a.take(100), b.take(100));
}

TEST(ServeSim, LatencyCategoriesSumToEndToEnd)
{
    ServeSim sim(smallOptions());
    sim.submitOpenLoop(proto(), 12, {{2.0, 1.0}}, 5);
    const ServeMetrics m = sim.run();
    EXPECT_EQ(m.completed, 12u);
    EXPECT_LE(m.worstSumDrift, 1e-9);
    for (const RequestRecord &r : sim.records()) {
        ASSERT_GE(r.finish, 0.0);
        EXPECT_NEAR(r.lat.total(), r.e2e(), 1e-9)
            << "request " << r.spec.id;
        EXPECT_GE(r.lat.queue, 0.0);
        EXPECT_GT(r.lat.prefill, 0.0);
        EXPECT_GT(r.lat.decode, 0.0);
        EXPECT_GE(r.lat.swapStall, 0.0);
    }
}

TEST(ServeSim, FifoAdmissionNoStarvation)
{
    ServeOptions opts = smallOptions();
    opts.batch.maxBatch = 2; // force a backlog
    opts.batch.minBatch = 1;
    ServeSim sim(opts);
    sim.submitOpenLoop(proto(), 16, {{50.0, 1.0}}, 3);
    sim.run();
    // Arrival order == id order (open loop); admissions must be
    // monotone in that order: nobody is overtaken.
    const auto &recs = sim.records();
    for (std::size_t i = 1; i < recs.size(); ++i) {
        EXPECT_LE(recs[i - 1].spec.arrival, recs[i].spec.arrival);
        EXPECT_LE(recs[i - 1].admit, recs[i].admit)
            << "request " << i << " overtook its predecessor";
    }
}

TEST(ServeSim, OccupancyNeverExceedsCapacity)
{
    ServeOptions opts = smallOptions();
    opts.batch.maxBatch = 5;
    ServeSim sim(opts);
    sim.submitOpenLoop(proto(), 20, {{40.0, 1.0}}, 9);
    const ServeMetrics m = sim.run();
    EXPECT_LE(m.maxOccupancy, 5);
    EXPECT_GE(m.maxOccupancy, 2); // the backlog did batch
}

TEST(ServeSim, SwapPolicyMovesWeightsEachIteration)
{
    ServeSim sim(smallOptions());
    sim.submitOpenLoop(proto(), 8, {{4.0, 1.0}}, 5);
    const ServeMetrics m = sim.run();
    EXPECT_GT(m.swapLoads, 0u);
    EXPECT_GT(m.swapBytes, 0u);
    EXPECT_GT(m.stallSeconds, 0.0);
}

TEST(ServeSim, AllInGpuAvoidsSwapTrafficWhenModelFits)
{
    ServeOptions opts = smallOptions();
    opts.placement.policy = ServePlacement::AllInGpu;
    ServeSim sim(opts);
    sim.submitOpenLoop(proto(), 8, {{4.0, 1.0}}, 5);
    const ServeMetrics m = sim.run();
    EXPECT_EQ(m.swapLoads, 0u);
    EXPECT_EQ(m.swapBytes, 0u);
}

TEST(ServeSim, AllInGpuOomsOnDramSizedModel)
{
    // GPT-51B is ~102 GB FP16 against 4 x 24 GB GPUs: the fully
    // resident pipeline cannot seat its carve-out.
    ServeOptions opts;
    opts.model = gpt51b();
    opts.placement.policy = ServePlacement::AllInGpu;
    ServeSim sim(opts);
    sim.submit(proto(16, 2));
    EXPECT_THROW(sim.run(), FatalError);
}

TEST(ServeSim, MobiusSwapServesDramSizedModel)
{
    ServeOptions opts;
    opts.model = gpt51b();
    opts.placement.policy = ServePlacement::MobiusSwap;
    ServeSim sim(opts);
    sim.submitOpenLoop(proto(32, 3), 4, {{1.0, 1.0}}, 13);
    const ServeMetrics m = sim.run();
    EXPECT_EQ(m.completed, 4u);
    EXPECT_GT(m.swapBytes, 0u);
    EXPECT_LE(m.worstSumDrift, 1e-9);
}

TEST(ServeSim, MobiusBeatsZeroGatherOnDramSizedModel)
{
    // Same arrivals, same SLO: per-iteration gather traffic is N x
    // Mobius's swap traffic, so goodput must be strictly lower.
    auto makeSim = [](ServePlacement policy, double slo) {
        ServeOptions opts;
        opts.model = gpt51b();
        opts.placement.policy = policy;
        opts.batch.maxBatch = 8;
        opts.slo.e2eSeconds = slo;
        auto sim = std::make_unique<ServeSim>(opts);
        sim->submitOpenLoop(proto(32, 3), 8, {{0.05, 1.0}}, 21);
        return sim;
    };
    // Calibrate the deadline from an unloaded Mobius request.
    ServeOptions probe;
    probe.model = gpt51b();
    ServeSim lone(probe);
    lone.submit(proto(32, 3));
    const double slo = 5.0 * lone.run().e2eMax;

    auto mobiusSim = makeSim(ServePlacement::MobiusSwap, slo);
    auto zeroSim = makeSim(ServePlacement::ZeroGather, slo);
    const ServeMetrics mobius = mobiusSim->run();
    const ServeMetrics zero = zeroSim->run();
    EXPECT_GT(mobius.sloGoodputTokensPerSec,
              zero.sloGoodputTokensPerSec);
    EXPECT_GT(mobius.sloAttainment, zero.sloAttainment);
    EXPECT_LE(zero.worstSumDrift, 1e-9);
    for (const RequestRecord &r : zeroSim->records())
        EXPECT_GE(r.gpu, 0); // data-parallel home GPU assigned
    for (const RequestRecord &r : mobiusSim->records())
        EXPECT_EQ(r.gpu, -1); // pipelined requests have none
}

TEST(ServeSim, AdaptiveSwitchesPlacementUnderBurst)
{
    ServeOptions opts = smallOptions();
    opts.placement.policy = ServePlacement::Adaptive;
    opts.placement.switchHigh = 6;
    opts.batch.maxBatch = 8;
    ServeSim sim(opts);
    // Quiet start, hard burst, quiet drain.
    sim.submitOpenLoop(proto(), 40,
                       {{0.5, 20.0}, {30.0, 2.0}, {0.5, 40.0}},
                       17);
    const ServeMetrics m = sim.run();
    EXPECT_EQ(m.completed, 40u);
    EXPECT_GE(m.switches, 2u); // up into all-in-GPU, back down
    EXPECT_LE(m.worstSumDrift, 1e-9);

    // And it must not lose to never switching at the same load.
    ServeOptions still = opts;
    still.placement.policy = ServePlacement::MobiusSwap;
    ServeSim fixed(still);
    fixed.submitOpenLoop(proto(), 40,
                         {{0.5, 20.0}, {30.0, 2.0}, {0.5, 40.0}},
                         17);
    const ServeMetrics f = fixed.run();
    EXPECT_LE(m.e2eP99, f.e2eP99 + 1e-9);
}

TEST(ServeSim, KvDramStreamingTradesMemoryForStall)
{
    ServeOptions opts = smallOptions();
    opts.placement.kvDram = true;
    ServeSim sim(opts);
    sim.submitOpenLoop(proto(), 10, {{4.0, 1.0}}, 5);
    const ServeMetrics m = sim.run();
    EXPECT_EQ(m.completed, 10u);
    EXPECT_LE(m.worstSumDrift, 1e-9);
    EXPECT_GT(m.stallSeconds, 0.0);
}

TEST(ServeSim, SloAccounting)
{
    ServeOptions opts = smallOptions();
    opts.slo.e2eSeconds = 3600.0; // everyone makes an hour
    ServeSim sim(opts);
    sim.submit(proto());
    ServeRequest tight = proto();
    tight.arrival = 0.1;
    tight.sloSeconds = 1e-9; // nobody makes a nanosecond
    sim.submit(tight);
    const ServeMetrics m = sim.run();
    EXPECT_EQ(m.completed, 2u);
    EXPECT_EQ(m.sloMet, 1u);
    EXPECT_TRUE(sim.records()[0].sloMet);
    EXPECT_FALSE(sim.records()[1].sloMet);
    EXPECT_NEAR(m.sloAttainment, 0.5, 1e-12);
}

TEST(ServeSim, SpanRecordingIsOptIn)
{
    ServeOptions off = smallOptions();
    ServeSim quiet(off);
    quiet.submitOpenLoop(proto(), 4, {{4.0, 1.0}}, 5);
    quiet.run();
    EXPECT_EQ(quiet.ctx().trace().spanCount(), 0u);

    ServeOptions on = smallOptions();
    on.recordSpans = true;
    ServeSim traced(on);
    traced.submitOpenLoop(proto(), 4, {{4.0, 1.0}}, 5);
    traced.run();
    EXPECT_GT(traced.ctx().trace().spanCount(), 0u);
    EXPECT_FALSE(
        traced.ctx().trace().onTrack("serve.batcher").empty());
}

TEST(ServeSim, FingerprintIdenticalAcrossReplicaWidths)
{
    // The bench's determinism gate in miniature: the same seeded
    // serving sim, fanned out on worker pools of different widths,
    // must reduce to byte-identical fingerprints in every slot.
    auto cell = [](int slot) {
        (void)slot;
        ServeSim sim(smallOptions());
        sim.submitOpenLoop(proto(), 10, {{3.0, 1.0}}, 31);
        return sim.run().fingerprint;
    };
    const std::uint64_t want = cell(0);
    for (int threads : {1, 4, 0}) {
        std::vector<std::uint64_t> got(6, 0);
        ReplicaRunnerOptions ropts;
        ropts.threads = threads;
        runReplicas(
            6, [&](int i) { got[static_cast<std::size_t>(i)] =
                                cell(i); },
            ropts);
        for (std::uint64_t fp : got)
            EXPECT_EQ(fp, want) << "width " << threads;
    }
}

TEST(ServeSim, FaultsDegradeServiceButAccountingHolds)
{
    ServeOptions opts = smallOptions();
    ServeSim clean(opts);
    clean.submitOpenLoop(proto(), 10, {{3.0, 1.0}}, 8);
    const ServeMetrics base = clean.run();

    opts.faults.xfailProb = 0.05;
    opts.faults.retryBudget = 16;
    opts.faultSeed = 4;
    ServeSim faulty(opts);
    faulty.submitOpenLoop(proto(), 10, {{3.0, 1.0}}, 8);
    const ServeMetrics hurt = faulty.run();

    EXPECT_EQ(hurt.completed, 10u);
    EXPECT_GT(hurt.faultFailures, 0u);
    EXPECT_GE(hurt.faultRetries, hurt.faultFailures);
    EXPECT_LE(hurt.worstSumDrift, 1e-9);
    // Retried transfers stretch iterations: tail latency suffers.
    EXPECT_GE(hurt.e2eP99, base.e2eP99);
    EXPECT_GT(hurt.stallSeconds, base.stallSeconds);
}
