/**
 * @file
 * Cross-cutting integration tests: unusual server configurations
 * (P2P-capable commodity boxes, the DC server), evaluator/executor
 * agreement across every Table 3 model, and end-to-end consistency
 * of the high-level API.
 */

#include <gtest/gtest.h>

#include "runtime/api.hh"

namespace mobius
{
namespace
{

TEST(Integration, A100CommodityUsesP2pFabric)
{
    // A P2P-capable GPU on a PCIe-only box routes GPU-GPU transfers
    // over the fabric (no DRAM staging). The executor must run and
    // activations must flow.
    Server server = makeCommodityServer({2, 2}, a100());
    ASSERT_TRUE(server.topo.gpudirectP2p());
    Workload work(gpt15b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    StepStats s = runMobiusStep(server, work.cost(), plan);
    EXPECT_GT(s.stepTime, 0.0);
    EXPECT_GT(s.traffic.bytesOf(TrafficKind::Activation), 0u);
}

TEST(Integration, A100NoFasterLinksButMoreMemory)
{
    // Same PCIe, so Mobius is similar; but 40 GB GPUs let GPipe
    // train the 8B model that OOMs on 24 GB 3090-Tis.
    Server a = makeCommodityServer({2, 2}, a100());
    Workload w8(gpt8b(), a);
    StepStats s = runPipelineStep(a, w8.cost(),
                                  PipelineSchedule::GPipe);
    EXPECT_GT(s.stepTime, 0.0);
}

TEST(Integration, MappingIrrelevantOnDcServer)
{
    // With NVLink P2P, activations bypass the root complexes, so
    // cross vs sequential mapping makes little difference.
    Server dc = makeDataCenterServer(4);
    Workload work(gpt8b(), dc, 2);
    PlanOptions cross;
    cross.mapping = MappingAlgo::Cross;
    PlanOptions seq;
    seq.mapping = MappingAlgo::Sequential;
    StepStats sc = runMobiusStep(
        dc, work.cost(), planMobius(dc, work.cost(), cross));
    StepStats ss = runMobiusStep(
        dc, work.cost(), planMobius(dc, work.cost(), seq));
    EXPECT_NEAR(sc.stepTime, ss.stepTime, ss.stepTime * 0.1);
}

class Table3Models : public ::testing::TestWithParam<int>
{
  protected:
    GptConfig cfg() const { return table3Models()[GetParam()]; }
};

TEST_P(Table3Models, EstimateTracksExecution)
{
    // The Eq. 3-11 evaluator must stay within a constant factor of
    // the event-driven execution for every model (it ignores
    // contention, so it is optimistic but bounded).
    Server server = makeCommodityServer({2, 2});
    Workload work(cfg(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    StepStats s = runMobiusStep(server, work.cost(), plan);
    EXPECT_GE(s.stepTime, plan.estimate.stepTime * 0.95);
    EXPECT_LE(s.stepTime, plan.estimate.stepTime * 3.0);
}

TEST_P(Table3Models, SpeedupInPaperBand)
{
    // Fig. 5 headline on Topo 2+2, generous bounds.
    Server server = makeCommodityServer({2, 2});
    Workload work(cfg(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    StepStats mob = runMobiusStep(server, work.cost(), plan);
    StepStats ds = runZeroStep(server, work.cost());
    double speedup = ds.stepTime / mob.stepTime;
    EXPECT_GT(speedup, 3.0) << cfg().name;
    EXPECT_LT(speedup, 7.0) << cfg().name;
}

TEST_P(Table3Models, MobiusTrafficNearEq1)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(cfg(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    StepStats s = runMobiusStep(server, work.cost(), plan);
    double ratio =
        s.trafficRatio(work.model().totalParamBytesFp32());
    EXPECT_GT(ratio, 1.2) << cfg().name;
    EXPECT_LT(ratio, 2.2) << cfg().name;
}

INSTANTIATE_TEST_SUITE_P(All, Table3Models,
                         ::testing::Range(0, 4));

TEST(Integration, ThreeRootComplexTopologies)
{
    // Odd groupings (e.g. 1+1+2) must plan and run.
    for (const auto &groups :
         {std::vector<int>{1, 1, 2}, std::vector<int>{2, 1, 1},
          std::vector<int>{1, 2, 3}}) {
        Server server = makeCommodityServer(groups);
        Workload work(gpt8b(), server);
        MobiusPlan plan = planMobius(server, work.cost());
        StepStats s = runMobiusStep(server, work.cost(), plan);
        EXPECT_GT(s.stepTime, 0.0);
    }
}

TEST(Integration, MoreMicrobatchesScaleStepTimeSublinearly)
{
    // Doubling M doubles the compute but amortises stage loads:
    // step time must grow by less than 2x.
    Server server = makeCommodityServer({2, 2});
    Workload w4(gpt15b(), server, 1, 4);
    Workload w8(gpt15b(), server, 1, 8);
    StepStats s4 = runMobiusStep(server, w4.cost(),
                                 planMobius(server, w4.cost()));
    StepStats s8 = runMobiusStep(server, w8.cost(),
                                 planMobius(server, w8.cost()));
    EXPECT_GT(s8.stepTime, s4.stepTime);
    EXPECT_LT(s8.stepTime, s4.stepTime * 2.0);
}

TEST(Integration, DcServerPipelineModeWorks)
{
    // GPipe on the DC box with the 3B model (fits in 16 GB V100s?
    // — if not, the memory ledger throws and the test documents it).
    Server dc = makeDataCenterServer(4);
    Workload work(gpt3b(), dc);
    try {
        StepStats s = runPipelineStep(dc, work.cost(),
                                      PipelineSchedule::GPipe);
        EXPECT_GT(s.stepTime, 0.0);
    } catch (const FatalError &e) {
        // 16 GB per V100 is indeed tight for 3B with optimizer
        // states resident; either outcome is acceptable, but it
        // must be an explicit OOM, not a crash.
        EXPECT_NE(std::string(e.what()).find("memory"),
                  std::string::npos);
    }
}

} // namespace
} // namespace mobius
