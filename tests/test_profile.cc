/**
 * @file
 * Unit tests for the layer profiler and layer-similarity compression.
 */

#include <gtest/gtest.h>

#include "model/cost_model.hh"
#include "profile/profiler.hh"

namespace mobius
{
namespace
{

CostModel
makeCost(const GptConfig &cfg)
{
    static std::vector<ModelDesc> keep;
    keep.push_back(makeGptModel(cfg));
    TrainConfig tc;
    tc.microbatchSize = cfg.microbatchSize;
    return CostModel(keep.back(), rtx3090Ti(), tc);
}

TEST(Profiler, ProfilesEveryLayer)
{
    auto cost = makeCost(gpt8b());
    auto result = profileModel(cost);
    EXPECT_EQ(static_cast<int>(result.layers.size()),
              cost.numLayers());
    for (const auto &p : result.layers) {
        EXPECT_GT(p.fwdTime, 0.0);
        EXPECT_GT(p.bwdTime, p.fwdTime);
    }
}

TEST(Profiler, SimilarityMeasuresOncePerClass)
{
    auto cost = makeCost(gpt51b());
    ProfilerConfig cfg;
    cfg.useLayerSimilarity = true;
    auto result = profileModel(cost, cfg);
    // 4 similarity classes -> only 4 layers measured for a 53-layer
    // model.
    EXPECT_EQ(result.profiledLayers, 4);

    cfg.useLayerSimilarity = false;
    auto full = profileModel(cost, cfg);
    EXPECT_EQ(full.profiledLayers, cost.numLayers());
    EXPECT_GT(full.profilingTime, result.profilingTime * 5);
}

TEST(Profiler, ExactWhenNoiseDisabled)
{
    auto cost = makeCost(gpt8b());
    ProfilerConfig cfg;
    cfg.measurementNoise = 0.0;
    auto result = profileModel(cost, cfg);
    for (int i = 0; i < cost.numLayers(); ++i) {
        EXPECT_DOUBLE_EQ(result.layers[i].fwdTime, cost.fwdTime(i));
        EXPECT_DOUBLE_EQ(result.layers[i].bwdTime, cost.bwdTime(i));
        EXPECT_EQ(result.layers[i].paramBytes, cost.paramBytes(i));
    }
}

TEST(Profiler, NoiseIsDeterministicPerSeed)
{
    auto cost = makeCost(gpt8b());
    ProfilerConfig cfg;
    cfg.measurementNoise = 0.05;
    cfg.seed = 42;
    auto a = profileModel(cost, cfg);
    auto b = profileModel(cost, cfg);
    for (std::size_t i = 0; i < a.layers.size(); ++i)
        EXPECT_DOUBLE_EQ(a.layers[i].fwdTime, b.layers[i].fwdTime);
}

TEST(Profiler, SimilarModelsHaveCloseProfilingTime)
{
    // Fig. 12 observation 2: the 8B and 15B models profile in
    // similar time because only distinct layers are measured.
    auto c8 = makeCost(gpt8b());
    auto c15 = makeCost(gpt15b());
    auto p8 = profileModel(c8);
    auto p15 = profileModel(c15);
    EXPECT_LT(p15.profilingTime, p8.profilingTime * 4.0);
    EXPECT_GT(p15.profilingTime, p8.profilingTime * 0.25);
}

} // namespace
} // namespace mobius
