/**
 * @file
 * What-if profiler tests: spec/sweep parsing against a real server,
 * hand-computed counterfactuals on synthetic span DAGs (chain
 * speedups, bottleneck shifts, stretch error bars, pool saturation,
 * engine serialisation), server/engine perturbation extraction, the
 * JSON/ASCII render paths, and a predicted-vs-resimulated sanity run
 * on a real workload.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "json_test_util.hh"
#include "obs/whatif.hh"
#include "runtime/api.hh"

namespace mobius
{
namespace
{

/** Build a span field-by-field (aggregate init would warn). */
TraceSpan
mkSpan(const std::string &track, const std::string &name,
       const std::string &category, double start, double end,
       int gpu = -1, double work = -1.0)
{
    TraceSpan s;
    s.track = track;
    s.name = name;
    s.category = category;
    s.start = start;
    s.end = end;
    s.gpu = gpu;
    s.work = work;
    return s;
}

/** The 2+2 commodity box: gpu0/gpu1 behind rc0, gpu2/gpu3 rc1. */
Server
testServer()
{
    return makeCommodityServer({2, 2});
}

WhatIfSpec
spec(const Server &srv, const std::string &text)
{
    return parseWhatIfSpec(text, srv);
}

// ---------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------

TEST(WhatIfParse, RecognisesEveryResourceForm)
{
    Server srv = testServer();
    WhatIfSpec s = spec(srv, "rc1=2.5");
    EXPECT_EQ(s.kind, WhatIfKind::RootComplex);
    EXPECT_EQ(s.index, 1);
    EXPECT_DOUBLE_EQ(s.factor, 2.5);

    s = spec(srv, "gpu3=0.5");
    EXPECT_EQ(s.kind, WhatIfKind::GpuCompute);
    EXPECT_EQ(s.index, 3);
    EXPECT_DOUBLE_EQ(s.factor, 0.5);

    s = spec(srv, "cpu=4");
    EXPECT_EQ(s.kind, WhatIfKind::CpuOptimizer);

    for (const char *cat : {"compute", "transfer", "optimizer"}) {
        s = spec(srv, std::string(cat) + "=2");
        EXPECT_EQ(s.kind, WhatIfKind::Category);
        EXPECT_EQ(s.resource, cat);
    }

    s = spec(srv, "link:dram<->rc0=3");
    EXPECT_EQ(s.kind, WhatIfKind::Link);
    EXPECT_EQ(s.index, srv.topo.findLinkByName("dram<->rc0"));
    EXPECT_GE(s.index, 0);
}

TEST(WhatIfParse, RejectsMalformedSpecs)
{
    Server srv = testServer();
    for (const char *bad :
         {"gpu0", "=2", "gpu0=", "gpu0=0", "gpu0=-1", "gpu0=2x",
          "gpu0=nan", "gpu0=inf", "gpuX=2", "rc=2", "foo=2"}) {
        EXPECT_THROW(parseWhatIfSpec(bad, srv), FatalError)
            << "accepted '" << bad << "'";
    }
}

TEST(WhatIfParse, RejectsResourcesAbsentFromServer)
{
    Server srv = testServer(); // 4 GPUs, 2 root complexes
    EXPECT_THROW(parseWhatIfSpec("gpu4=2", srv), FatalError);
    EXPECT_THROW(parseWhatIfSpec("rc2=2", srv), FatalError);
    EXPECT_THROW(parseWhatIfSpec("link:no-such=2", srv),
                 FatalError);
}

TEST(WhatIfParse, SweepGridIsInclusiveAndLinear)
{
    WhatIfSweepSpec s = parseWhatIfSweepSpec("rc0=0.5:2:4");
    EXPECT_EQ(s.resource, "rc0");
    EXPECT_DOUBLE_EQ(s.lo, 0.5);
    EXPECT_DOUBLE_EQ(s.hi, 2.0);
    EXPECT_EQ(s.steps, 4);
    std::vector<double> f = s.factors();
    ASSERT_EQ(f.size(), 4u);
    EXPECT_DOUBLE_EQ(f[0], 0.5);
    EXPECT_DOUBLE_EQ(f[1], 1.0);
    EXPECT_DOUBLE_EQ(f[2], 1.5);
    EXPECT_DOUBLE_EQ(f[3], 2.0);
}

TEST(WhatIfParse, RejectsMalformedSweeps)
{
    for (const char *bad :
         {"rc0", "rc0=1:2", "rc0=1:2:3:4", "rc0=2:1:3", "rc0=1:2:1",
          "rc0=1:2:20000", "rc0=0:2:3", "rc0=1:2:x"}) {
        EXPECT_THROW(parseWhatIfSweepSpec(bad), FatalError)
            << "accepted '" << bad << "'";
    }
}

// ---------------------------------------------------------------
// Hand-computed counterfactuals on synthetic DAGs
// ---------------------------------------------------------------

TEST(WhatIfEval, EmptyDagIsAllZero)
{
    TraceRecorder rec;
    Server srv = testServer();
    WhatIfResult r =
        evaluateWhatIf(rec, srv, {spec(srv, "gpu0=2")});
    EXPECT_EQ(r.baseStepTime, 0.0);
    EXPECT_EQ(r.predicted, 0.0);
    EXPECT_EQ(r.matchedSpans, 0u);
    EXPECT_EQ(r.speedup(), 0.0);
    EXPECT_EQ(r.drift(), -1.0);
}

TEST(WhatIfEval, FactorOneReproducesBaselineExactly)
{
    // The re-schedule compacts the untraced [1, 2) gap (modelBase
    // 2 s vs measured 3 s); calibration must stretch it back so a
    // factor-1.0 what-if is the identity.
    TraceRecorder rec;
    SpanId a =
        rec.record(mkSpan("gpu0.compute", "A", "compute", 0, 1, 0));
    TraceSpan b = mkSpan("gpu0.compute", "B", "compute", 2, 3, 0);
    b.deps = {a};
    rec.record(b);
    Server srv = testServer();
    WhatIfResult r =
        evaluateWhatIf(rec, srv, {spec(srv, "compute=1")});
    EXPECT_DOUBLE_EQ(r.baseStepTime, 3.0);
    EXPECT_DOUBLE_EQ(r.modelBase, 2.0);
    EXPECT_DOUBLE_EQ(r.predicted, 3.0);
    EXPECT_DOUBLE_EQ(r.predictedLow, 3.0);
    EXPECT_DOUBLE_EQ(r.predictedHigh, 3.0);
    EXPECT_DOUBLE_EQ(r.speedup(), 1.0);
}

TEST(WhatIfEval, ChainSpeedupHalvesEverySpan)
{
    TraceRecorder rec;
    SpanId a =
        rec.record(mkSpan("gpu0.compute", "A", "compute", 0, 2, 0));
    TraceSpan b = mkSpan("gpu0.compute", "B", "compute", 2, 5, 0);
    b.deps = {a};
    rec.record(b);
    Server srv = testServer();
    WhatIfResult r =
        evaluateWhatIf(rec, srv, {spec(srv, "gpu0=2")});
    EXPECT_DOUBLE_EQ(r.baseStepTime, 5.0);
    EXPECT_DOUBLE_EQ(r.predicted, 2.5);
    EXPECT_DOUBLE_EQ(r.speedup(), 2.0);
    EXPECT_EQ(r.matchedSpans, 2u);
}

TEST(WhatIfEval, SpeedupShiftsBottleneckToOtherBranch)
{
    // C joins a 4 s branch on gpu0 and a 3 s branch on gpu1.
    // Doubling gpu0 does NOT halve the step: the gpu1 branch
    // becomes critical, so 5 s -> 3.5 s, not 2.5 s.
    TraceRecorder rec;
    SpanId a =
        rec.record(mkSpan("gpu0.compute", "A", "compute", 0, 4, 0));
    SpanId b =
        rec.record(mkSpan("gpu1.compute", "B", "compute", 0, 3, 1));
    TraceSpan c = mkSpan("gpu0.compute", "C", "compute", 4, 5, 0);
    c.deps = {a, b};
    rec.record(c);
    Server srv = testServer();
    WhatIfResult r =
        evaluateWhatIf(rec, srv, {spec(srv, "gpu0=2")});
    EXPECT_DOUBLE_EQ(r.predicted, 3.5);
    EXPECT_EQ(r.matchedSpans, 2u); // A and C, not B
}

TEST(WhatIfEval, SharedSpeedupScalesStretchIntoErrorBar)
{
    // Transfer: 2 s intrinsic work + 1 s fair-share stretch. A 2x
    // root-complex speedup keeps the work (private PCIe bottleneck)
    // but the stretch either halves (coupled) or persists
    // (invariant); the point estimate is the midpoint.
    TraceRecorder rec;
    rec.record(
        mkSpan("gpu0.h2d", "S0.fwd", "transfer", 0, 3, 0, 2.0));
    Server srv = testServer();
    WhatIfResult r =
        evaluateWhatIf(rec, srv, {spec(srv, "rc0=2")});
    EXPECT_DOUBLE_EQ(r.predictedLow, 2.5);  // 2 + 1/2
    EXPECT_DOUBLE_EQ(r.predictedHigh, 3.0); // 2 + 1
    EXPECT_DOUBLE_EQ(r.predicted, 2.75);    // midpoint
    EXPECT_EQ(r.matchedSpans, 1u);
}

TEST(WhatIfEval, SharedSlowdownScalesWorkAndStretch)
{
    // Halving rc0 makes the pool the route bottleneck: work 2 -> 4,
    // stretch 1 -> 2 (coupled) or 1 (invariant).
    TraceRecorder rec;
    rec.record(
        mkSpan("gpu0.h2d", "S0.fwd", "transfer", 0, 3, 0, 2.0));
    Server srv = testServer();
    WhatIfResult r =
        evaluateWhatIf(rec, srv, {spec(srv, "rc0=0.5")});
    EXPECT_DOUBLE_EQ(r.predictedLow, 5.0);  // 4 + 1
    EXPECT_DOUBLE_EQ(r.predictedHigh, 6.0); // 4 + 2
    EXPECT_DOUBLE_EQ(r.predicted, 5.5);
}

TEST(WhatIfEval, SharedSpeedupCannotBeatPrivateBottleneck)
{
    // No stretch to reclaim: a 4x faster root complex leaves a
    // PCIe-bound transfer exactly where it was.
    TraceRecorder rec;
    rec.record(
        mkSpan("gpu0.h2d", "S0.fwd", "transfer", 0, 2, 0, 2.0));
    Server srv = testServer();
    WhatIfResult r =
        evaluateWhatIf(rec, srv, {spec(srv, "rc0=4")});
    EXPECT_DOUBLE_EQ(r.predicted, 2.0);
    EXPECT_DOUBLE_EQ(r.speedup(), 1.0);
}

TEST(WhatIfEval, PoolSaturationBoundsSlowdown)
{
    // Two 1 s transfers on different GPUs behind rc0 that ran in
    // parallel. At rc0 x0.5 the list-scheduler alone would predict
    // 2 s (each span doubles, still parallel) — but 2 s of work
    // must cross the halved pool one direction at a time: >= 4 s.
    TraceRecorder rec;
    rec.record(
        mkSpan("gpu0.h2d", "S0", "transfer", 0, 1, 0, 1.0));
    rec.record(
        mkSpan("gpu1.h2d", "S1", "transfer", 0, 1, 1, 1.0));
    Server srv = testServer();
    WhatIfResult r =
        evaluateWhatIf(rec, srv, {spec(srv, "rc0=0.5")});
    EXPECT_DOUBLE_EQ(r.predicted, 4.0);
    EXPECT_DOUBLE_EQ(r.predictedLow, 4.0);
    EXPECT_DOUBLE_EQ(r.predictedHigh, 4.0);
}

TEST(WhatIfEval, RootComplexMatchesOnlyItsGpus)
{
    TraceRecorder rec;
    rec.record(mkSpan("gpu0.h2d", "S0", "transfer", 0, 1, 0));
    rec.record(mkSpan("gpu2.h2d", "S2", "transfer", 0, 1, 2));
    Server srv = testServer();
    WhatIfResult r =
        evaluateWhatIf(rec, srv, {spec(srv, "rc0=2")});
    EXPECT_EQ(r.matchedSpans, 1u); // gpu2 sits behind rc1
}

TEST(WhatIfEval, TreeLinksIgnoreNvlinkTraffic)
{
    TraceRecorder rec;
    rec.record(mkSpan("gpu0.nvlink", "P", "transfer", 0, 1, 0));
    Server srv = testServer();
    WhatIfResult r =
        evaluateWhatIf(rec, srv, {spec(srv, "rc0=2")});
    EXPECT_EQ(r.matchedSpans, 0u);
    EXPECT_DOUBLE_EQ(r.predicted, r.baseStepTime);
}

TEST(WhatIfEval, CpuSpeedupScalesOptimizerSpans)
{
    TraceRecorder rec;
    rec.record(mkSpan("cpu.adam", "U0", "optimizer", 0, 4));
    Server srv = testServer();
    WhatIfResult r =
        evaluateWhatIf(rec, srv, {spec(srv, "cpu=2")});
    EXPECT_DOUBLE_EQ(r.predicted, 2.0);
    EXPECT_EQ(r.matchedSpans, 1u);
}

TEST(WhatIfEval, EngineSerialisationPreserved)
{
    // Independent spans on one compute stream may not overlap after
    // a speedup: 2x on two 2 s spans gives 2 s, not 1 s.
    TraceRecorder rec;
    rec.record(mkSpan("gpu0.compute", "A", "compute", 0, 2, 0));
    rec.record(mkSpan("gpu0.compute", "B", "compute", 2, 4, 0));
    Server srv = testServer();
    WhatIfResult r =
        evaluateWhatIf(rec, srv, {spec(srv, "gpu0=2")});
    EXPECT_DOUBLE_EQ(r.predicted, 2.0);
}

TEST(WhatIfEval, CombinedSpecsMultiplyAndCountOnce)
{
    TraceRecorder rec;
    rec.record(mkSpan("gpu0.compute", "A", "compute", 0, 4, 0));
    Server srv = testServer();
    WhatIfResult r = evaluateWhatIf(
        rec, srv, {spec(srv, "gpu0=2"), spec(srv, "compute=2")});
    EXPECT_DOUBLE_EQ(r.predicted, 1.0);
    EXPECT_EQ(r.matchedSpans, 1u);
}

// ---------------------------------------------------------------
// Sweeps
// ---------------------------------------------------------------

TEST(WhatIfSweepEval, GridValuesAndSensitivity)
{
    TraceRecorder rec;
    rec.record(mkSpan("gpu0.compute", "A", "compute", 0, 2, 0));
    Server srv = testServer();
    WhatIfSweep s = sweepWhatIf(buildSpanDag(rec), srv,
                                parseWhatIfSweepSpec("gpu0=1:2:3"));
    ASSERT_EQ(s.points.size(), 3u);
    EXPECT_DOUBLE_EQ(s.points[0].predicted, 2.0);
    EXPECT_NEAR(s.points[1].predicted, 4.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.points[2].predicted, 1.0);
    // (max - min) / value at factor 1 = (2 - 1) / 2.
    EXPECT_NEAR(s.sensitivity(), 0.5, 1e-12);
}

TEST(WhatIfSweepEval, SensitivityPrefersExactWhenComplete)
{
    TraceRecorder rec;
    rec.record(mkSpan("gpu0.compute", "A", "compute", 0, 2, 0));
    Server srv = testServer();
    WhatIfSweep s = sweepWhatIf(buildSpanDag(rec), srv,
                                parseWhatIfSweepSpec("gpu0=1:2:3"));
    s.points[0].exact = 4.0;
    s.points[1].exact = 3.0;
    s.points[2].exact = 2.0;
    // Exact replaces predicted: (4 - 2) / 4 at the factor-1 ref.
    EXPECT_NEAR(s.sensitivity(), 0.5, 1e-12);
}

// ---------------------------------------------------------------
// Ground-truth perturbation plumbing
// ---------------------------------------------------------------

TEST(WhatIfPerturb, ServerScalesNamedLinkCapacities)
{
    Server srv = testServer();
    int rc0_link = srv.topo.findLinkByName("dram<->rc0");
    int rc1_link = srv.topo.findLinkByName("dram<->rc1");
    ASSERT_GE(rc0_link, 0);
    ASSERT_GE(rc1_link, 0);
    double cap0 = srv.topo.link(rc0_link).capacity;
    double cap1 = srv.topo.link(rc1_link).capacity;

    Server p = perturbServer(srv, {spec(srv, "rc0=2")});
    EXPECT_DOUBLE_EQ(p.topo.link(rc0_link).capacity, 2 * cap0);
    EXPECT_DOUBLE_EQ(p.topo.link(rc1_link).capacity, cap1);
    // The original is untouched.
    EXPECT_DOUBLE_EQ(srv.topo.link(rc0_link).capacity, cap0);

    p = perturbServer(srv, {spec(srv, "link:dram<->rc1=0.5")});
    EXPECT_DOUBLE_EQ(p.topo.link(rc0_link).capacity, cap0);
    EXPECT_DOUBLE_EQ(p.topo.link(rc1_link).capacity, 0.5 * cap1);

    p = perturbServer(srv, {spec(srv, "transfer=2")});
    for (int l = 0; l < srv.topo.numLinks(); ++l) {
        EXPECT_DOUBLE_EQ(p.topo.link(l).capacity,
                         2 * srv.topo.link(l).capacity);
    }
}

TEST(WhatIfPerturb, EngineSpecsLeaveTopologyAlone)
{
    Server srv = testServer();
    Server p = perturbServer(
        srv, {spec(srv, "gpu0=2"), spec(srv, "cpu=0.5")});
    for (int l = 0; l < srv.topo.numLinks(); ++l) {
        EXPECT_DOUBLE_EQ(p.topo.link(l).capacity,
                         srv.topo.link(l).capacity);
    }
}

TEST(WhatIfPerturb, RunPerturbationExtractsEngineFactors)
{
    Server srv = testServer();
    RunPerturbation p = runPerturbation(
        {spec(srv, "gpu1=2"), spec(srv, "cpu=0.5")}, 4);
    ASSERT_EQ(p.gpuComputeFactor.size(), 4u);
    EXPECT_DOUBLE_EQ(p.computeFactor(0), 1.0);
    EXPECT_DOUBLE_EQ(p.computeFactor(1), 2.0);
    EXPECT_DOUBLE_EQ(p.cpuOptimizerFactor, 0.5);
    EXPECT_FALSE(p.identity());
    // Out-of-range GPUs read as unperturbed.
    EXPECT_DOUBLE_EQ(p.computeFactor(-1), 1.0);
    EXPECT_DOUBLE_EQ(p.computeFactor(9), 1.0);

    p = runPerturbation({spec(srv, "compute=3")}, 2);
    EXPECT_DOUBLE_EQ(p.computeFactor(0), 3.0);
    EXPECT_DOUBLE_EQ(p.computeFactor(1), 3.0);

    p = runPerturbation({spec(srv, "optimizer=2")}, 2);
    EXPECT_DOUBLE_EQ(p.cpuOptimizerFactor, 2.0);

    // Link specs live on the topology side only.
    p = runPerturbation({spec(srv, "rc0=2")}, 2);
    EXPECT_TRUE(p.identity());
    EXPECT_TRUE(RunPerturbation{}.identity());
}

// ---------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------

TEST(WhatIfRender, ResultJsonParsesWithAllFields)
{
    TraceRecorder rec;
    rec.record(mkSpan("gpu0.compute", "A", "compute", 0, 2, 0));
    Server srv = testServer();
    WhatIfResult r =
        evaluateWhatIf(rec, srv, {spec(srv, "gpu0=2")});
    testjson::JsonValue v = testjson::parseJson(whatIfResultJson(r));
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.at("base_step_time").number, 2.0);
    EXPECT_DOUBLE_EQ(v.at("predicted").number, 1.0);
    EXPECT_DOUBLE_EQ(v.at("speedup").number, 2.0);
    EXPECT_DOUBLE_EQ(v.at("matched_spans").number, 1.0);
    EXPECT_FALSE(v.has("exact")); // not validated
    ASSERT_EQ(v.at("specs").array.size(), 1u);
    EXPECT_EQ(v.at("specs").array[0].at("resource").string, "gpu0");
    EXPECT_EQ(v.at("specs").array[0].at("kind").string,
              "gpuCompute");

    r.exact = 1.05;
    v = testjson::parseJson(whatIfResultJson(r));
    EXPECT_TRUE(v.has("exact"));
    EXPECT_TRUE(v.has("drift"));
    EXPECT_NEAR(v.at("drift").number, 0.05 / 1.05, 1e-12);
}

TEST(WhatIfRender, SweepJsonAsciiAndReport)
{
    TraceRecorder rec;
    rec.record(mkSpan("gpu0.compute", "A", "compute", 0, 2, 0));
    Server srv = testServer();
    WhatIfSweep s = sweepWhatIf(buildSpanDag(rec), srv,
                                parseWhatIfSweepSpec("gpu0=1:2:3"));
    testjson::JsonValue v = testjson::parseJson(whatIfSweepJson(s));
    EXPECT_EQ(v.at("resource").string, "gpu0");
    EXPECT_DOUBLE_EQ(v.at("steps").number, 3.0);
    ASSERT_EQ(v.at("points").array.size(), 3u);
    EXPECT_NEAR(v.at("sensitivity").number, 0.5, 1e-12);

    std::string ascii = whatIfSweepAscii(s);
    EXPECT_NE(ascii.find('#'), std::string::npos);
    EXPECT_NE(ascii.find("sensitivity"), std::string::npos);

    std::string report = whatIfReport(s.points);
    EXPECT_NE(report.find("gpu0=1"), std::string::npos);
    EXPECT_NE(report.find("speedup"), std::string::npos);
}

// ---------------------------------------------------------------
// Predicted vs re-simulated on a real workload
// ---------------------------------------------------------------

TEST(WhatIfEndToEnd, PredictionTracksResimulationOnRealRun)
{
    Server srv = testServer();
    Workload work(gpt3b(), srv);
    MobiusPlan plan = planMobius(srv, work.cost());

    auto step = [&](const Server &s, const RunPerturbation &rp,
                    SpanDag *dag_out) {
        RunContext ctx(s, {}, 0.0, nullptr, rp);
        MobiusExecutor exec(ctx, work.cost(), plan.partition,
                            plan.mapping);
        StepStats stats = exec.run();
        if (dag_out)
            *dag_out = buildSpanDag(ctx.trace());
        return stats.stepTime;
    };

    SpanDag dag;
    double base = step(srv, {}, &dag);
    ASSERT_GT(base, 0.0);

    // Doubling every GPU's compute must help, and the DAG
    // prediction must land near the re-simulated truth.
    std::vector<WhatIfSpec> specs = {spec(srv, "compute=2")};
    WhatIfResult r = evaluateWhatIf(dag, srv, specs);
    r.exact = step(perturbServer(srv, specs),
                   runPerturbation(specs, srv.topo.numGpus()),
                   nullptr);
    EXPECT_LT(r.exact, base);
    EXPECT_LT(r.predicted, base);
    EXPECT_GE(r.drift(), 0.0);
    EXPECT_LE(r.drift(), 0.15);

    // Halving rc0 bandwidth cannot speed the step up.
    specs = {spec(srv, "rc0=0.5")};
    double slow = step(perturbServer(srv, specs), {}, nullptr);
    EXPECT_GE(slow, base * 0.999);
}

} // namespace
} // namespace mobius
