/**
 * @file
 * Convergence-equivalence tests (the Fig. 13 claim): the pipeline
 * trainer's synchronous updates are numerically identical to plain
 * gradient accumulation, for any stage partition.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "train/trainer.hh"

namespace mobius
{
namespace
{

MiniGptConfig
tinyCfg()
{
    MiniGptConfig cfg;
    cfg.vocab = 24;
    cfg.width = 16;
    cfg.heads = 2;
    cfg.blocks = 4;
    cfg.seqLen = 12;
    cfg.seed = 77;
    return cfg;
}

CorpusConfig
tinyCorpus()
{
    CorpusConfig cfg;
    cfg.vocab = 24;
    cfg.numTokens = 4000;
    return cfg;
}

TEST(Train, MonolithicLossDecreases)
{
    MiniGpt model(tinyCfg());
    SyntheticCorpus corpus(tinyCorpus());
    MonolithicTrainer trainer(model, AdamConfig{3e-3f});
    LossCurve curve = runTraining(model, corpus, nullptr, &trainer,
                                  150, 2, 11);
    double head = (curve.losses[0] + curve.losses[1]) / 2;
    double tail = (curve.losses[148] + curve.losses[149]) / 2;
    EXPECT_LT(tail, head * 0.75);
}

/** Parameterised over stage partitions of the 6 pipeline layers. */
class PipelineEquivalence
    : public ::testing::TestWithParam<std::vector<int>>
{
};

TEST_P(PipelineEquivalence, BitIdenticalToMonolithic)
{
    // Same init (seeded), same data stream, two different execution
    // schedules: parameter trajectories must match bit for bit.
    MiniGpt mono_model(tinyCfg());
    MiniGpt pipe_model(tinyCfg());
    SyntheticCorpus corpus(tinyCorpus());

    MonolithicTrainer mono(mono_model, AdamConfig{1e-3f});
    PipelineTrainer pipe(pipe_model,
                         partitionFromSizes(GetParam()),
                         AdamConfig{1e-3f});

    LossCurve cm = runTraining(mono_model, corpus, nullptr, &mono,
                               6, 4, 21);
    LossCurve cp = runTraining(pipe_model, corpus, &pipe, nullptr,
                               6, 4, 21);

    for (int s = 0; s < 6; ++s)
        EXPECT_DOUBLE_EQ(cm.losses[s], cp.losses[s]) << "step " << s;

    auto pm = mono_model.parameters();
    auto pp = pipe_model.parameters();
    ASSERT_EQ(pm.size(), pp.size());
    for (std::size_t i = 0; i < pm.size(); ++i) {
        for (std::size_t j = 0; j < pm[i].data().size(); ++j) {
            ASSERT_EQ(pm[i].data()[j], pp[i].data()[j])
                << "param " << i << " elem " << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Partitions, PipelineEquivalence,
    ::testing::Values(std::vector<int>{6},          // one stage
                      std::vector<int>{3, 3},       // two stages
                      std::vector<int>{1, 2, 2, 1}, // Mobius-like
                      std::vector<int>{1, 1, 1, 1, 1, 1})); // min

TEST(Train, DifferentMicrobatchCountsDivergeSlightly)
{
    // Fig. 13's footnote: 8-GPU GPipe vs 4-GPU Mobius differ only by
    // batch composition randomness; curves are close, not equal.
    MiniGpt a(tinyCfg());
    MiniGpt b(tinyCfg());
    SyntheticCorpus corpus(tinyCorpus());
    MonolithicTrainer ta(a, AdamConfig{1e-3f});
    MonolithicTrainer tb(b, AdamConfig{1e-3f});
    LossCurve ca = runTraining(a, corpus, nullptr, &ta, 10, 4, 33);
    LossCurve cb = runTraining(b, corpus, nullptr, &tb, 10, 8, 33);
    double diff = 0, base = 0;
    for (int s = 0; s < 10; ++s) {
        diff += std::fabs(ca.losses[s] - cb.losses[s]);
        base += ca.losses[s];
    }
    EXPECT_GT(diff, 0.0);          // not identical
    EXPECT_LT(diff, base * 0.15);  // but close
}

TEST(Train, PipelineTrainerRejectsBadPartition)
{
    MiniGpt model(tinyCfg());
    // 6 pipeline layers; partition covering only 5 is invalid.
    EXPECT_DEATH(
        {
            PipelineTrainer t(model, partitionFromSizes({2, 3}));
        },
        "invalid partition");
}

} // namespace
} // namespace mobius
