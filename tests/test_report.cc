/**
 * @file
 * Tests for the argument parser and JSON reporting.
 */

#include <gtest/gtest.h>

#include "base/args.hh"
#include "base/logging.hh"
#include "runtime/report.hh"

namespace mobius
{
namespace
{

Args
makeArgs(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "prog");
    return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, KeyValueAndFlags)
{
    Args args = makeArgs({"--model", "15b", "--json", "--mbs", "2"});
    EXPECT_EQ(args.get("model", "x"), "15b");
    EXPECT_TRUE(args.has("json"));
    EXPECT_EQ(args.getInt("mbs", -1), 2);
    EXPECT_EQ(args.getInt("absent", 7), 7);
    EXPECT_FALSE(args.has("absent"));
}

TEST(Args, EqualsSyntaxAndPositionals)
{
    Args args = makeArgs({"--topo=4+4", "file.txt", "--x=1.5"});
    EXPECT_EQ(args.get("topo", ""), "4+4");
    EXPECT_DOUBLE_EQ(args.getDouble("x", 0.0), 1.5);
    ASSERT_EQ(args.positionals().size(), 1u);
    EXPECT_EQ(args.positionals()[0], "file.txt");
}

TEST(Args, MalformedNumbersAreFatal)
{
    Args args = makeArgs({"--n", "abc"});
    EXPECT_THROW(args.getInt("n", 0), FatalError);
    Args args2 = makeArgs({"--x", "1.2.3"});
    EXPECT_THROW(args2.getDouble("x", 0.0), FatalError);
}

TEST(Args, UnusedDetection)
{
    Args args = makeArgs({"--used", "1", "--typo", "2"});
    EXPECT_EQ(args.getInt("used", 0), 1);
    auto unused = args.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "typo");
    EXPECT_THROW(args.rejectUnused(), FatalError);
    EXPECT_EQ(args.getInt("typo", 0), 2);
    EXPECT_NO_THROW(args.rejectUnused());
}

TEST(Args, DuplicateSingleValueOptionIsFatal)
{
    Args args = makeArgs({"--model", "8b", "--model", "15b"});
    EXPECT_THROW(args.get("model", ""), FatalError);
    Args args2 = makeArgs({"--n", "1", "--n", "2"});
    EXPECT_THROW(args2.getInt("n", 0), FatalError);
    Args args3 = makeArgs({"--x", "1.0", "--x=2.0"});
    EXPECT_THROW(args3.getDouble("x", 0.0), FatalError);
}

TEST(Args, GetStringsCollectsRepeatsInOrder)
{
    Args args = makeArgs(
        {"--whatif", "rc0=2", "--other", "1", "--whatif=gpu1=0.5"});
    auto vals = args.getStrings("whatif");
    ASSERT_EQ(vals.size(), 2u);
    EXPECT_EQ(vals[0], "rc0=2");
    EXPECT_EQ(vals[1], "gpu1=0.5");
    EXPECT_TRUE(args.getStrings("absent").empty());
    // getStrings consumes the key for rejectUnused purposes.
    EXPECT_EQ(args.getInt("other", 0), 1);
    EXPECT_NO_THROW(args.rejectUnused());
}

TEST(Args, RangeCheckedAccessorsAreFatalOutOfRange)
{
    Args args = makeArgs({"--top", "0", "--interval", "-0.5"});
    EXPECT_THROW(args.getIntIn("top", 1, 1, 100), FatalError);
    EXPECT_THROW(args.getDoubleIn("interval", 0.01, 1e-9, 1e9),
                 FatalError);
    Args ok = makeArgs({"--top", "7", "--interval", "0.25"});
    EXPECT_EQ(ok.getIntIn("top", 1, 1, 100), 7);
    EXPECT_DOUBLE_EQ(
        ok.getDoubleIn("interval", 0.01, 1e-9, 1e9), 0.25);
    // Range boundaries are inclusive.
    Args edge = makeArgs({"--top", "100"});
    EXPECT_EQ(edge.getIntIn("top", 1, 1, 100), 100);
}

TEST(Report, ManifestJsonHasStableFields)
{
    RunManifest m;
    m.model = "gpt8b";
    m.topo = "2+2";
    m.system = "mobius";
    m.partition = "heuristic";
    m.mapping = "cross";
    m.microbatchSize = 2;
    m.numMicrobatches = 8;
    m.steps = 3;
    m.traceFile = "out.json";
    std::string json = manifestToJson(m);
    EXPECT_NE(json.find("\"model\":\"gpt8b\""), std::string::npos);
    EXPECT_NE(json.find("\"topo\":\"2+2\""), std::string::npos);
    EXPECT_NE(json.find("\"system\":\"mobius\""),
              std::string::npos);
    EXPECT_NE(json.find("\"partition\":\"heuristic\""),
              std::string::npos);
    EXPECT_NE(json.find("\"mapping\":\"cross\""),
              std::string::npos);
    EXPECT_NE(json.find("\"microbatch_size\":2"),
              std::string::npos);
    EXPECT_NE(json.find("\"num_microbatches\":8"),
              std::string::npos);
    EXPECT_NE(json.find("\"steps\":3"), std::string::npos);
    EXPECT_NE(json.find("\"trace_file\":\"out.json\""),
              std::string::npos);
}

TEST(Report, StepStatsJsonFields)
{
    StepStats stats;
    stats.system = "Mobius";
    stats.stepTime = 2.5;
    stats.numGpus = 4;
    BandwidthSample s;
    s.bytes = 1000;
    s.kind = TrafficKind::Parameter;
    stats.traffic.record(s);

    std::string json = stepStatsToJson(stats, 4000);
    EXPECT_NE(json.find("\"system\":\"Mobius\""),
              std::string::npos);
    EXPECT_NE(json.find("\"step_seconds\":2.5"), std::string::npos);
    EXPECT_NE(json.find("\"traffic_bytes\":1000"),
              std::string::npos);
    EXPECT_NE(json.find("\"traffic_ratio\":0.25"),
              std::string::npos);
    EXPECT_NE(json.find("\"parameter\":1000"), std::string::npos);

    // Balanced braces.
    int depth = 0;
    for (char c : json) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Report, PlanJsonRoundTripsStructure)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt8b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    std::string json = planToJson(plan);
    EXPECT_NE(json.find("\"stages\":["), std::string::npos);
    EXPECT_NE(json.find("\"gpu_order\":["), std::string::npos);
    EXPECT_NE(json.find("\"contention_degree\":"),
              std::string::npos);
    // One "lo" per stage.
    std::size_t count = 0, pos = 0;
    while ((pos = json.find("\"lo\":", pos)) != std::string::npos) {
        ++count;
        pos += 4;
    }
    EXPECT_EQ(count, plan.partition.size());
}

TEST(Report, FineTuneEstimateArithmetic)
{
    Server server = makeCommodityServer({2, 2});
    auto est = estimateFineTune(server, 3.6, 1000);
    EXPECT_NEAR(est.hours, 1.0, 1e-12);
    EXPECT_NEAR(est.dollars, server.dollarsPerHour, 1e-9);
}

} // namespace
} // namespace mobius
