/**
 * @file
 * Tests for the tensor-parallel comparator and the CPU-optimizer
 * model.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "runtime/api.hh"

namespace mobius
{
namespace
{

TEST(TensorParallel, CompletesAndIsDeterministic)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt8b(), server);
    StepStats a = runTensorParallelStep(server, work.cost());
    StepStats b = runTensorParallelStep(server, work.cost());
    EXPECT_GT(a.stepTime, 0.0);
    EXPECT_DOUBLE_EQ(a.stepTime, b.stepTime);
}

TEST(TensorParallel, SingleGpuDegenerates)
{
    Server server = makeCommodityServer({1});
    Workload work(gpt3b(), server, 1, 2);
    StepStats s = runTensorParallelStep(server, work.cost());
    EXPECT_GT(s.stepTime, 0.0);
    // No collectives on one GPU: traffic is just gradient flushes.
    EXPECT_EQ(s.traffic.bytesOf(TrafficKind::Activation), 0u);
}

TEST(TensorParallel, OomAtScale)
{
    // The §5 argument: resident shards bound the trainable scale.
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt51b(), server);
    EXPECT_THROW(runTensorParallelStep(server, work.cost()),
                 FatalError);
}

TEST(TensorParallel, CollectiveTrafficScalesWithMicrobatch)
{
    Server server = makeCommodityServer({2, 2});
    Workload w1(gpt8b(), server, 1);
    Workload w4(gpt8b(), server, 4);
    StepStats s1 = runTensorParallelStep(server, w1.cost());
    StepStats s4 = runTensorParallelStep(server, w4.cost());
    Bytes act1 = s1.traffic.bytesOf(TrafficKind::Activation) +
        s1.traffic.bytesOf(TrafficKind::ActivationGrad);
    Bytes act4 = s4.traffic.bytesOf(TrafficKind::Activation) +
        s4.traffic.bytesOf(TrafficKind::ActivationGrad);
    EXPECT_NEAR(static_cast<double>(act4),
                4.0 * static_cast<double>(act1),
                0.01 * static_cast<double>(act4));
}

TEST(TensorParallel, MobiusWinsAtLargerBatch)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt8b(), server, 8);
    MobiusPlan plan = planMobius(server, work.cost());
    StepStats mob = runMobiusStep(server, work.cost(), plan);
    StepStats tp = runTensorParallelStep(server, work.cost());
    EXPECT_GT(tp.stepTime, mob.stepTime * 1.2);
}

TEST(TensorParallel, GradientShardsSumToModel)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt8b(), server);
    StepStats s = runTensorParallelStep(server, work.cost());
    Bytes fp16 = work.model().totalParamBytesFp16();
    double ratio =
        static_cast<double>(s.traffic.bytesOf(
            TrafficKind::Gradient)) /
        static_cast<double>(fp16);
    EXPECT_NEAR(ratio, 1.0, 0.01);
}

TEST(CpuOptimizer, DisabledByDefaultIsFree)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt8b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    StepStats off =
        runMobiusStep(server, work.cost(), plan, {}, {}, 0.0);
    StepStats fast = runMobiusStep(server, work.cost(), plan, {},
                                   {}, 1e18);
    EXPECT_NEAR(off.stepTime, fast.stepTime,
                off.stepTime * 1e-6);
}

TEST(CpuOptimizer, SlowCpuLengthensStepTail)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt8b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    StepStats off =
        runMobiusStep(server, work.cost(), plan, {}, {}, 0.0);
    // 1G params/s over ~8B params = ~8 s of CPU Adam, partially
    // overlapped with the step.
    StepStats on =
        runMobiusStep(server, work.cost(), plan, {}, {}, 1e9);
    EXPECT_GT(on.stepTime, off.stepTime);
    double adam_serial =
        static_cast<double>(work.model().totalParams()) / 1e9;
    EXPECT_LT(on.stepTime, off.stepTime + adam_serial + 0.1);
    // Overlap: the tail added is less than the full Adam time.
    EXPECT_LT(on.stepTime - off.stepTime, adam_serial);
}

TEST(CpuOptimizer, AppliesToZeroExecutorToo)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt8b(), server);
    StepStats off = runZeroStep(server, work.cost(), {}, {}, 0.0);
    StepStats on = runZeroStep(server, work.cost(), {}, {}, 1e9);
    EXPECT_GT(on.stepTime, off.stepTime);
}

} // namespace
} // namespace mobius
