/**
 * @file
 * Property/fuzz tests: random workloads, topologies and partitions
 * pushed through the executors and solvers, with invariants checked
 * on every run — determinism, memory safety, schedule completeness,
 * traffic accounting, and LP optimality.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "runtime/api.hh"
#include "solver/lp.hh"

namespace mobius
{
namespace
{

/** Random-but-valid commodity server (1-8 GPUs, 1-4 groups). */
Server
randomServer(Rng &rng)
{
    int groups = 1 + static_cast<int>(rng.below(4));
    std::vector<int> sizes;
    for (int i = 0; i < groups; ++i)
        sizes.push_back(1 + static_cast<int>(rng.below(3)));
    return makeCommodityServer(sizes);
}

/** Random GPT-ish config small enough to always be feasible. */
GptConfig
randomModel(Rng &rng)
{
    GptConfig cfg;
    cfg.name = "fuzz";
    cfg.hidden = 512 * (1 + static_cast<int>(rng.below(6)));
    cfg.heads = cfg.hidden / 128;
    cfg.numBlocks = 4 + static_cast<int>(rng.below(24));
    cfg.microbatchSize = 1 + static_cast<int>(rng.below(4));
    return cfg;
}

class ExecutorFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(ExecutorFuzz, MobiusInvariantsHold)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    Server server = randomServer(rng);
    GptConfig cfg = randomModel(rng);
    Workload work(cfg, server);

    PlanOptions opts;
    // Exercise all partition/mapping algorithms across seeds.
    switch (rng.below(3)) {
      case 0: opts.partition = PartitionAlgo::Mip; break;
      case 1: opts.partition = PartitionAlgo::MinStage; break;
      default: opts.partition = PartitionAlgo::MaxStage; break;
    }
    opts.mapping = rng.below(2) ? MappingAlgo::Cross
                                : MappingAlgo::Sequential;

    MobiusPlan plan;
    try {
        plan = planMobius(server, work.cost(), opts);
    } catch (const FatalError &) {
        GTEST_SKIP() << "partition infeasible for this draw";
    }

    RunContext ctx(server);
    MobiusExecutor exec(ctx, work.cost(), plan.partition,
                        plan.mapping);
    StepStats stats = exec.run(); // panics internally on deadlock

    // 1. Time is positive and finite.
    ASSERT_TRUE(std::isfinite(stats.stepTime));
    ASSERT_GT(stats.stepTime, 0.0);

    // 2. Memory: never exceeded, fully reclaimed.
    for (int g = 0; g < ctx.numGpus(); ++g) {
        EXPECT_LE(ctx.memory(g).peak(), ctx.memory(g).capacity());
        EXPECT_EQ(ctx.memory(g).used(), 0u);
    }

    // 3. Traffic closed forms: params in (1, 2] copies of FP16
    //    weights; gradients exactly once.
    Bytes fp16 = work.model().totalParamBytesFp16();
    Bytes params = stats.traffic.bytesOf(TrafficKind::Parameter);
    EXPECT_GT(params, fp16 - 1);
    EXPECT_LE(params, 2 * fp16);
    EXPECT_EQ(stats.traffic.bytesOf(TrafficKind::Gradient), fp16);

    // 4. Transfer engine fully drained.
    EXPECT_TRUE(ctx.xfer().idle());

    // 5. Every compute span recorded; per-GPU spans are disjoint.
    int m = work.train().numMicrobatches;
    std::size_t expect_spans =
        2 * plan.partition.size() * static_cast<std::size_t>(m);
    std::size_t got = 0;
    for (int g = 0; g < ctx.numGpus(); ++g) {
        auto spans = ctx.trace().onTrack(
            "gpu" + std::to_string(g) + ".compute");
        got += spans.size();
        for (std::size_t i = 1; i < spans.size(); ++i)
            ASSERT_GE(spans[i].start, spans[i - 1].end - 1e-9);
    }
    EXPECT_EQ(got, expect_spans);

    // 6. Determinism: an identical run reproduces the step time.
    RunContext ctx2(server);
    MobiusExecutor exec2(ctx2, work.cost(), plan.partition,
                         plan.mapping);
    EXPECT_DOUBLE_EQ(exec2.run().stepTime, stats.stepTime);
}

TEST_P(ExecutorFuzz, ZeroInvariantsHold)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
    Server server = randomServer(rng);
    GptConfig cfg = randomModel(rng);
    Workload work(cfg, server);

    ZeroExecutorConfig zcfg;
    zcfg.layerSync = rng.below(2) == 0;
    zcfg.lookahead = 1 + static_cast<int>(rng.below(2));

    RunContext ctx(server);
    ZeroHeteroExecutor exec(ctx, work.cost(), zcfg);
    StepStats stats = exec.run();

    ASSERT_TRUE(std::isfinite(stats.stepTime));
    for (int g = 0; g < ctx.numGpus(); ++g) {
        EXPECT_LE(ctx.memory(g).peak(), ctx.memory(g).capacity());
        EXPECT_EQ(ctx.memory(g).used(), 0u);
    }
    EXPECT_TRUE(ctx.xfer().idle());

    // ZeRO param traffic ~ 2 FP16 copies per GPU (shards + peer
    // pieces; integer division of shards may lose a few bytes).
    Bytes fp16 = work.model().totalParamBytesFp16();
    double copies =
        static_cast<double>(
            stats.traffic.bytesOf(TrafficKind::Parameter)) /
        static_cast<double>(fp16);
    EXPECT_NEAR(copies, 2.0 * ctx.numGpus(),
                0.01 * 2.0 * ctx.numGpus());
}

TEST_P(ExecutorFuzz, MobiusNeverSlowerThanGenerousBound)
{
    // Sanity bound: the step cannot beat compute-only time, nor be
    // slower than fully-serialised compute + communication.
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
    Server server = randomServer(rng);
    GptConfig cfg = randomModel(rng);
    Workload work(cfg, server);
    MobiusPlan plan;
    try {
        plan = planMobius(server, work.cost());
    } catch (const FatalError &) {
        GTEST_SKIP();
    }
    StepStats stats = runMobiusStep(server, work.cost(), plan);

    const CostModel &cm = work.cost();
    int m = work.train().numMicrobatches;
    double total_compute = 0.0;
    for (int i = 0; i < cm.numLayers(); ++i)
        total_compute += m * (cm.fwdTime(i) + cm.bwdTime(i));
    double comm_serial =
        static_cast<double>(stats.traffic.totalBytes()) /
        kPcie3x16Bw;
    double lower = total_compute / server.topo.numGpus();
    // Loose upper bound: everything serialised twice over.
    double upper = 2.0 * (total_compute + comm_serial) + 1.0;
    EXPECT_GE(stats.stepTime, lower * 0.99);
    EXPECT_LE(stats.stepTime, upper);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzz,
                         ::testing::Range(0, 20));

class LpFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(LpFuzz, OptimalBeatsSampledFeasiblePoints)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL +
            99);
    const int nv = 2 + static_cast<int>(rng.below(4));
    const int nr = 1 + static_cast<int>(rng.below(5));

    LpProblem p;
    for (int j = 0; j < nv; ++j)
        p.addVar(rng.uniform(-2.0, 2.0), 0.0, 10.0);
    std::vector<LpRow> rows;
    for (int r = 0; r < nr; ++r) {
        std::vector<std::pair<int, double>> coeffs;
        for (int j = 0; j < nv; ++j) {
            if (rng.below(2))
                coeffs.push_back({j, rng.uniform(-1.0, 1.0)});
        }
        if (coeffs.empty())
            coeffs.push_back({0, 1.0});
        p.addRow(coeffs, rng.below(2) ? Sense::Le : Sense::Ge,
                 rng.uniform(-5.0, 5.0));
    }

    LpSolution sol = solveLp(p);
    if (sol.status != LpSolution::Status::Optimal)
        return; // infeasible/unbounded draws are fine

    // 1. The reported solution satisfies every constraint.
    auto feasible = [&](const std::vector<double> &x) {
        for (int j = 0; j < nv; ++j) {
            if (x[j] < -1e-6 || x[j] > 10.0 + 1e-6)
                return false;
        }
        for (const auto &row : p.rows) {
            double lhs = 0.0;
            for (const auto &[j, c] : row.coeffs)
                lhs += c * x[j];
            if (row.sense == Sense::Le && lhs > row.rhs + 1e-6)
                return false;
            if (row.sense == Sense::Ge && lhs < row.rhs - 1e-6)
                return false;
        }
        return true;
    };
    EXPECT_TRUE(feasible(sol.x));

    // 2. No sampled feasible point does better.
    for (int trial = 0; trial < 300; ++trial) {
        std::vector<double> x(static_cast<std::size_t>(nv));
        for (auto &v : x)
            v = rng.uniform(0.0, 10.0);
        if (!feasible(x))
            continue;
        double obj = 0.0;
        for (int j = 0; j < nv; ++j)
            obj += p.objective[j] * x[j];
        EXPECT_GE(obj, sol.objective - 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpFuzz, ::testing::Range(0, 40));

} // namespace
} // namespace mobius
