/**
 * @file
 * Tests for the synthetic corpus generator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/logging.hh"
#include "data/corpus.hh"

namespace mobius
{
namespace
{

TEST(Corpus, GeneratesRequestedTokens)
{
    CorpusConfig cfg;
    cfg.numTokens = 5000;
    SyntheticCorpus corpus(cfg);
    EXPECT_EQ(corpus.tokens().size(), 5000u);
    for (int t : corpus.tokens()) {
        ASSERT_GE(t, 0);
        ASSERT_LT(t, cfg.vocab);
    }
}

TEST(Corpus, DeterministicPerSeed)
{
    CorpusConfig cfg;
    cfg.numTokens = 2000;
    SyntheticCorpus a(cfg), b(cfg);
    EXPECT_EQ(a.tokens(), b.tokens());
    cfg.seed = 8;
    SyntheticCorpus c(cfg);
    EXPECT_NE(a.tokens(), c.tokens());
}

TEST(Corpus, ZipfSkewsFrequencies)
{
    CorpusConfig cfg;
    cfg.numTokens = 50000;
    cfg.bigramProb = 0.0; // pure unigram draw
    SyntheticCorpus corpus(cfg);
    std::vector<int> counts(cfg.vocab, 0);
    for (int t : corpus.tokens())
        ++counts[t];
    // Token 0 is the most frequent by a wide margin.
    int max_other = 0;
    for (int i = 1; i < cfg.vocab; ++i)
        max_other = std::max(max_other, counts[i]);
    EXPECT_GT(counts[0], max_other);
    EXPECT_GT(counts[0], cfg.numTokens / 20);
}

TEST(Corpus, BigramStructureIsLearnable)
{
    // With the bigram rule, conditional entropy is well below the
    // unigram entropy — that's what the model learns in Fig. 13.
    CorpusConfig cfg;
    cfg.numTokens = 80000;
    SyntheticCorpus corpus(cfg);
    double h1 = corpus.unigramEntropy();

    // Estimate conditional entropy H(next | prev).
    std::vector<std::vector<double>> big(
        cfg.vocab, std::vector<double>(cfg.vocab, 0.0));
    std::vector<double> prev_count(cfg.vocab, 0.0);
    const auto &t = corpus.tokens();
    for (std::size_t i = 1; i < t.size(); ++i) {
        big[t[i - 1]][t[i]] += 1.0;
        prev_count[t[i - 1]] += 1.0;
    }
    double h2 = 0.0;
    for (int a = 0; a < cfg.vocab; ++a) {
        if (prev_count[a] == 0)
            continue;
        double pa = prev_count[a] / (t.size() - 1);
        for (int b = 0; b < cfg.vocab; ++b) {
            if (big[a][b] == 0)
                continue;
            double pba = big[a][b] / prev_count[a];
            h2 -= pa * pba * std::log(pba);
        }
    }
    EXPECT_LT(h2, h1 * 0.75);
}

TEST(Corpus, SampleWindowsAreShifted)
{
    SyntheticCorpus corpus;
    Rng rng(3);
    auto s = corpus.sample(16, rng);
    ASSERT_EQ(s.input.size(), 16u);
    ASSERT_EQ(s.target.size(), 16u);
    for (int i = 0; i < 15; ++i)
        EXPECT_EQ(s.target[i], s.input[i + 1]);
}

TEST(Corpus, SampleRejectsOversizedWindow)
{
    CorpusConfig cfg;
    cfg.numTokens = 10;
    SyntheticCorpus corpus(cfg);
    Rng rng(1);
    EXPECT_THROW(corpus.sample(64, rng), FatalError);
}

} // namespace
} // namespace mobius
