/**
 * @file
 * Unit tests for the discrete-event queue, including a randomized
 * schedule/cancel/run fuzz that holds the indexed-heap EventQueue to
 * the frozen std::map reference implementation, interleaving for
 * interleaving.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "simcore/arrival.hh"
#include "simcore/event_queue.hh"
#include "simcore/event_queue_reference.hh"

namespace mobius
{
namespace
{

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesFireInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] { order.push_back(0); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(1.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id)); // second cancel is a no-op
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    std::vector<double> times;
    q.schedule(1.0, [&] {
        times.push_back(q.now());
        q.scheduleAfter(0.5, [&] { times.push_back(q.now()); });
    });
    q.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock)
{
    EventQueue q;
    int count = 0;
    q.schedule(1.0, [&] { ++count; });
    q.schedule(5.0, [&] { ++count; });
    q.runUntil(2.0);
    EXPECT_EQ(count, 1);
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, RunUntilPastEmptyAdvancesClock)
{
    EventQueue q;
    q.runUntil(7.5);
    EXPECT_DOUBLE_EQ(q.now(), 7.5);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    double fired_at = -1.0;
    q.schedule(2.0, [&] {
        q.scheduleAfter(3.0, [&] { fired_at = q.now(); });
    });
    q.run();
    EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueue, ExecutedCounts)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(i, [] {});
    q.run();
    EXPECT_EQ(q.executed(), 5u);
}

TEST(EventQueue, CancelInsideEvent)
{
    EventQueue q;
    bool late_fired = false;
    EventId late = q.schedule(2.0, [&] { late_fired = true; });
    q.schedule(1.0, [&] { q.cancel(late); });
    q.run();
    EXPECT_FALSE(late_fired);
}

TEST(EventQueue, ToleratesTinyBackslide)
{
    EventQueue q;
    q.schedule(1.0, [&] {
        // Floating-point jitter: schedule "now - tiny"; should clamp.
        q.schedule(q.now() - 1e-12, [] {});
    });
    EXPECT_NO_FATAL_FAILURE(q.run());
}

TEST(EventQueue, StaleIdCannotCancelRecycledSlot)
{
    EventQueue q;
    bool b_fired = false;
    EventId a = q.schedule(1.0, [] {});
    ASSERT_TRUE(q.cancel(a));
    // The freed handle slot is recycled immediately (LIFO free
    // list), so b gets a's low bits with a bumped generation.
    EventId b = q.schedule(2.0, [&] { b_fired = true; });
    EXPECT_NE(a, b);
    EXPECT_FALSE(q.cancel(a)); // stale id must not kill b
    q.run();
    EXPECT_TRUE(b_fired);
}

TEST(EventQueue, FiredIdIsStale)
{
    EventQueue q;
    bool b_fired = false;
    EventId a = q.schedule(1.0, [] {});
    q.run();
    EventId b = q.schedule(2.0, [&] { b_fired = true; });
    EXPECT_NE(a, b);
    EXPECT_FALSE(q.cancel(a));
    q.run();
    EXPECT_TRUE(b_fired);
}

TEST(EventQueue, ReserveKeepsSemantics)
{
    EventQueue q;
    q.reserve(64);
    std::vector<int> order;
    q.schedule(2.0, [&] { order.push_back(2); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

/**
 * Everything the fuzz driver can observe from one queue: the firing
 * sequence (time, payload), each cancel's return value, and the
 * telemetry counters. Two conforming queues fed the identical script
 * must produce identical logs.
 */
struct FuzzLog
{
    std::vector<std::pair<SimTime, int>> fired;
    std::vector<bool> cancels;
    std::uint64_t executed = 0;
    std::uint64_t clamped = 0;
    SimTime maxDrift = 0.0;
    SimTime finalNow = 0.0;

    bool
    operator==(const FuzzLog &o) const
    {
        return fired == o.fired && cancels == o.cancels &&
            executed == o.executed && clamped == o.clamped &&
            maxDrift == o.maxDrift && finalNow == o.finalNow;
    }
};

/**
 * One randomized script: bursts of schedules on a coarse time grid
 * (so exact ties are common and the (time, schedule order) tie-break
 * actually bites), cancels drawn from *all* ids ever issued (stale
 * ones included), a tiny deliberate backslide to exercise clamping,
 * and partial drains via runUntil between bursts. The RNG is
 * consumed identically for both queue types because every draw
 * happens in this driver, never in a callback.
 */
template <typename Queue>
FuzzLog
runFuzzScript(std::uint64_t seed)
{
    Queue q;
    std::mt19937_64 rng(seed);
    FuzzLog log;
    std::vector<EventId> ids;
    int payload = 0;
    for (int phase = 0; phase < 16; ++phase) {
        for (int k = 0; k < 64; ++k) {
            SimTime when =
                q.now() + 1e-3 * static_cast<double>(rng() % 40);
            int p = payload++;
            ids.push_back(q.schedule(when, [&log, &q, p] {
                log.fired.emplace_back(q.now(), p);
            }));
        }
        if (phase == 7) {
            // One knowingly-late schedule: must clamp, not panic.
            q.schedule(1.0, [&q] {
                q.schedule(q.now() - 1e-12, [] {});
            });
        }
        for (int k = 0; k < 24; ++k)
            log.cancels.push_back(
                q.cancel(ids[rng() % ids.size()]));
        q.runUntil(q.now() +
                   1e-3 * static_cast<double>(rng() % 25));
    }
    q.run();
    log.executed = q.executed();
    log.clamped = q.clamped();
    log.maxDrift = q.maxDrift();
    log.finalNow = q.now();
    return log;
}

TEST(EventQueue, FuzzMatchesReferenceQueue)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        FuzzLog heap = runFuzzScript<EventQueue>(seed);
        FuzzLog ref = runFuzzScript<ReferenceEventQueue>(seed);
        EXPECT_EQ(heap, ref) << "diverged at seed " << seed;
        EXPECT_GT(heap.executed, 0u);
    }
}

TEST(ArrivalProcess, HelperIsDeterministicAndIncreasing)
{
    const std::vector<double> a = poissonArrivalTimes(256, 2.0, 9);
    const std::vector<double> b = poissonArrivalTimes(256, 2.0, 9);
    EXPECT_EQ(a, b);
    double last = 0.0;
    double sum = 0.0;
    for (double t : a) {
        EXPECT_GT(t, last);
        sum += t - last;
        last = t;
    }
    // Mean inter-arrival gap within 3 sigma of 1/rate.
    EXPECT_NEAR(sum / 256.0, 0.5, 3.0 * 0.5 / 16.0);
}

TEST(ArrivalProcess, SeedAndPhaseChangesMatter)
{
    const std::vector<double> a = poissonArrivalTimes(32, 2.0, 9);
    const std::vector<double> b = poissonArrivalTimes(32, 2.0, 10);
    EXPECT_NE(a, b);
    ArrivalProcess phased({{2.0, 0.5}, {8.0, 0.5}}, 9, 0.0);
    EXPECT_NE(a, phased.take(32));
}

TEST(ArrivalProcess, RejectsBadPhases)
{
    EXPECT_THROW(ArrivalProcess({}, 1), FatalError);
    EXPECT_THROW(ArrivalProcess({{0.0, 1.0}}, 1), FatalError);
    EXPECT_THROW(ArrivalProcess({{1.0, -1.0}, {2.0, 1.0}}, 1),
                 FatalError);
    EXPECT_THROW(poissonArrivalTimes(4, -2.0, 1), FatalError);
}

} // namespace
} // namespace mobius
