/**
 * @file
 * Unit tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "simcore/event_queue.hh"

namespace mobius
{
namespace
{

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesFireInScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(1.0, [&] { order.push_back(0); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(1.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id)); // second cancel is a no-op
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    std::vector<double> times;
    q.schedule(1.0, [&] {
        times.push_back(q.now());
        q.scheduleAfter(0.5, [&] { times.push_back(q.now()); });
    });
    q.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_DOUBLE_EQ(times[0], 1.0);
    EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock)
{
    EventQueue q;
    int count = 0;
    q.schedule(1.0, [&] { ++count; });
    q.schedule(5.0, [&] { ++count; });
    q.runUntil(2.0);
    EXPECT_EQ(count, 1);
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, RunUntilPastEmptyAdvancesClock)
{
    EventQueue q;
    q.runUntil(7.5);
    EXPECT_DOUBLE_EQ(q.now(), 7.5);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    double fired_at = -1.0;
    q.schedule(2.0, [&] {
        q.scheduleAfter(3.0, [&] { fired_at = q.now(); });
    });
    q.run();
    EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueue, ExecutedCounts)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(i, [] {});
    q.run();
    EXPECT_EQ(q.executed(), 5u);
}

TEST(EventQueue, CancelInsideEvent)
{
    EventQueue q;
    bool late_fired = false;
    EventId late = q.schedule(2.0, [&] { late_fired = true; });
    q.schedule(1.0, [&] { q.cancel(late); });
    q.run();
    EXPECT_FALSE(late_fired);
}

TEST(EventQueue, ToleratesTinyBackslide)
{
    EventQueue q;
    q.schedule(1.0, [&] {
        // Floating-point jitter: schedule "now - tiny"; should clamp.
        q.schedule(q.now() - 1e-12, [] {});
    });
    EXPECT_NO_FATAL_FAILURE(q.run());
}

} // namespace
} // namespace mobius
