/**
 * @file
 * Unit tests for model descriptions and the cost model.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "model/cost_model.hh"
#include "model/model.hh"

namespace mobius
{
namespace
{

TEST(Model, Table3Configs)
{
    auto models = table3Models();
    ASSERT_EQ(models.size(), 4u);
    EXPECT_EQ(models[0].hidden, 2048);
    EXPECT_EQ(models[0].numBlocks, 64);
    EXPECT_EQ(models[0].heads, 32);
    EXPECT_EQ(models[0].microbatchSize, 2);
    EXPECT_EQ(models[1].hidden, 4096);
    EXPECT_EQ(models[1].numBlocks, 40);
    EXPECT_EQ(models[2].hidden, 5120);
    EXPECT_EQ(models[2].heads, 64);
    EXPECT_EQ(models[2].microbatchSize, 1);
    EXPECT_EQ(models[3].hidden, 9216);
    EXPECT_EQ(models[3].numBlocks, 50);
    for (const auto &m : models)
        EXPECT_EQ(m.seqLen, 512);
}

TEST(Model, ParameterCountsMatchNominalSizes)
{
    // Nominal sizes are approximate; require right ballpark.
    auto check = [](const GptConfig &cfg, double billions) {
        ModelDesc m = makeGptModel(cfg);
        double params = static_cast<double>(m.totalParams()) / 1e9;
        EXPECT_GT(params, billions * 0.8) << cfg.name;
        EXPECT_LT(params, billions * 1.25) << cfg.name;
    };
    check(gpt3b(), 3.0);
    check(gpt8b(), 8.0);
    check(gpt15b(), 13.0);  // 64x5120 blocks give ~12.9B nominal "15B"
    check(gpt51b(), 51.0);
}

TEST(Model, LayerStackStructure)
{
    ModelDesc m = makeGptModel(gpt8b());
    // embedding + 40 blocks + final norm + lm head.
    ASSERT_EQ(m.numLayers(), 43);
    EXPECT_EQ(m.layers.front().type, LayerType::Embedding);
    EXPECT_EQ(m.layers[1].type, LayerType::TransformerBlock);
    EXPECT_EQ(m.layers[41].type, LayerType::FinalNorm);
    EXPECT_EQ(m.layers.back().type, LayerType::LmHead);
}

TEST(Model, SimilarityClassesCollapseBlocks)
{
    ModelDesc m = makeGptModel(gpt51b());
    // 4 classes regardless of depth: embed, block, norm, head.
    EXPECT_EQ(m.numSimilarityClasses(), 4);
    EXPECT_EQ(m.layers[1].similarityClass,
              m.layers[40].similarityClass);
}

TEST(Model, ByteAccountingConventions)
{
    ModelDesc m = makeGptModel(gpt8b());
    const LayerDesc &block = m.layers[1];
    EXPECT_EQ(block.paramBytesFp16(), 2 * block.paramCount);
    EXPECT_EQ(block.paramBytesFp32(), 4 * block.paramCount);
    EXPECT_EQ(block.gradBytesFp16(), block.paramBytesFp32() / 2);
    EXPECT_EQ(m.totalParamBytesFp32(), 2 * m.totalParamBytesFp16());
}

TEST(Model, BoundaryActivationIsSeqHiddenFp16)
{
    ModelDesc m = makeGptModel(gpt15b());
    EXPECT_EQ(m.layers[1].actBytesPerSample,
              static_cast<Bytes>(2) * 512 * 5120);
}

TEST(CostModel, ForwardTimeScalesWithFlops)
{
    ModelDesc m = makeGptModel(gpt8b());
    TrainConfig cfg;
    cfg.microbatchSize = 2;
    cfg.kernelLatency = 0.0;
    CostModel cost(m, rtx3090Ti(), cfg);
    double t = cost.fwdTime(1);
    double flops = m.layers[1].fwdFlopsPerSample * 2;
    EXPECT_NEAR(t, flops / (rtx3090Ti().fp16Flops * cfg.mfu), 1e-12);
}

TEST(CostModel, BackwardIsThriceForwardWithCheckpointing)
{
    ModelDesc m = makeGptModel(gpt8b());
    TrainConfig cfg;
    cfg.kernelLatency = 0.0;
    cfg.activationCheckpointing = true;
    CostModel cost(m, rtx3090Ti(), cfg);
    EXPECT_NEAR(cost.bwdTime(5), 3.0 * cost.fwdTime(5), 1e-12);

    cfg.activationCheckpointing = false;
    CostModel cost2(m, rtx3090Ti(), cfg);
    EXPECT_NEAR(cost2.bwdTime(5), 2.0 * cost2.fwdTime(5), 1e-12);
}

TEST(CostModel, RangeAggregatesSum)
{
    ModelDesc m = makeGptModel(gpt3b());
    CostModel cost(m, rtx3090Ti(), TrainConfig{});
    double sum = 0;
    Bytes bytes = 0;
    for (int i = 2; i < 7; ++i) {
        sum += cost.fwdTime(i);
        bytes += cost.paramBytes(i);
    }
    EXPECT_NEAR(cost.rangeFwdTime(2, 7), sum, 1e-12);
    EXPECT_EQ(cost.rangeParamBytes(2, 7), bytes);
}

TEST(CostModel, StageMemoryMonotoneInRange)
{
    ModelDesc m = makeGptModel(gpt15b());
    CostModel cost(m, rtx3090Ti(), TrainConfig{});
    EXPECT_LT(cost.stageMemFwd(1, 3), cost.stageMemFwd(1, 6));
    EXPECT_LT(cost.stageMemFwd(1, 6), cost.stageMemBwd(1, 6));
}

TEST(CostModel, SingleBlockOf51bFitsSingleGpu)
{
    // §4 workloads: "the Transformer block with a 9216 hidden
    // dimension is the largest block a single GPU can hold during
    // training" — one block must fit, with little room to spare.
    ModelDesc m = makeGptModel(gpt51b());
    TrainConfig cfg;
    cfg.microbatchSize = 1;
    CostModel cost(m, rtx3090Ti(), cfg);
    EXPECT_LT(cost.stageMemBwd(1, 2), rtx3090Ti().memBytes);
}

TEST(CostModel, ResidentPipelinesOomBeyond3b)
{
    // Fig. 5: the 3B model is the largest GPipe (all-in-GPU-memory,
    // optimizer states resident) can train on 4x 3090-Ti; 8B+ OOM.
    auto resident = [](const GptConfig &cfg) {
        ModelDesc m = makeGptModel(cfg);
        TrainConfig tc;
        tc.microbatchSize = cfg.microbatchSize;
        tc.numMicrobatches = 4;
        CostModel cost(m, rtx3090Ti(), tc);
        return cost.stageMemResident(0, m.numLayers(), 4);
    };
    EXPECT_LT(resident(gpt3b()), 4 * rtx3090Ti().memBytes);
    EXPECT_GT(resident(gpt8b()), 4 * rtx3090Ti().memBytes);
    EXPECT_GT(resident(gpt15b()), 4 * rtx3090Ti().memBytes);
    EXPECT_GT(resident(gpt51b()), 4 * rtx3090Ti().memBytes);
}

TEST(CostModel, OptimizerBytesConvention)
{
    ModelDesc m = makeGptModel(gpt8b());
    CostModel cost(m, rtx3090Ti(), TrainConfig{});
    EXPECT_EQ(cost.optimizerBytes(1),
              12 * m.layers[1].paramCount);
}

TEST(CostModel, InputActivationChains)
{
    ModelDesc m = makeGptModel(gpt8b());
    TrainConfig cfg;
    cfg.microbatchSize = 2;
    CostModel cost(m, rtx3090Ti(), cfg);
    EXPECT_EQ(cost.inActBytes(3), cost.actBytes(2));
    // Layer 0 consumes token ids (4 B each).
    EXPECT_EQ(cost.inActBytes(0), static_cast<Bytes>(512 * 4 * 2));
}

TEST(CostModel, RejectsBadConfig)
{
    ModelDesc m = makeGptModel(gpt3b());
    TrainConfig bad;
    bad.microbatchSize = 0;
    EXPECT_THROW(CostModel(m, rtx3090Ti(), bad), FatalError);
    TrainConfig bad2;
    bad2.mfu = 1.5;
    EXPECT_THROW(CostModel(m, rtx3090Ti(), bad2), FatalError);
}

} // namespace
} // namespace mobius
