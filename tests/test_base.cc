/**
 * @file
 * Unit tests for base utilities: logging, unit formatting, RNG, and
 * the JSON reader the analysis tools parse simulator output with.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/json.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/units.hh"

namespace mobius
{
namespace
{

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 7, "abc"), "x=7 y=abc");
    EXPECT_EQ(strfmt("%0.2f", 1.239), "1.24");
    EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config %d", 42), FatalError);
    try {
        fatal("value=%d", 5);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=5");
    }
}

TEST(Logging, QuietFlagRoundTrips)
{
    EXPECT_FALSE(quiet());
    setQuiet(true);
    EXPECT_TRUE(quiet());
    setQuiet(false);
    EXPECT_FALSE(quiet());
}

TEST(Units, FormatBytesPicksScale)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2 * KiB), "2.00 KiB");
    EXPECT_EQ(formatBytes(3 * MiB), "3.00 MiB");
    EXPECT_EQ(formatBytes(24 * GiB), "24.00 GiB");
}

TEST(Units, FormatBandwidthPicksScale)
{
    EXPECT_EQ(formatBandwidth(13.1e9), "13.10 GB/s");
    EXPECT_EQ(formatBandwidth(2.5e6), "2.50 MB/s");
}

TEST(Units, FormatSecondsPicksScale)
{
    EXPECT_EQ(formatSeconds(2.5), "2.500 s");
    EXPECT_EQ(formatSeconds(0.0125), "12.500 ms");
    EXPECT_EQ(formatSeconds(42e-6), "42.0 us");
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(rng.below(5));
    EXPECT_EQ(seen.size(), 5u);
    for (auto v : seen)
        EXPECT_LT(v, 5u);
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Json, ParsesScalarsObjectsAndArrays)
{
    json::JsonValue v = json::parse(
        " {\"a\": 1.5, \"b\": [1, 2, 3], \"c\": {\"d\": true}, "
        "\"e\": null, \"f\": -2e3} ");
    ASSERT_TRUE(v.isObject());
    EXPECT_DOUBLE_EQ(v.at("a").number, 1.5);
    ASSERT_TRUE(v.at("b").isArray());
    ASSERT_EQ(v.at("b").array.size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("b")[2].number, 3.0);
    EXPECT_TRUE(v.at("c").at("d").boolean);
    EXPECT_TRUE(v.at("e").isNull());
    EXPECT_DOUBLE_EQ(v.at("f").number, -2000.0);
    EXPECT_TRUE(v.has("a"));
    EXPECT_FALSE(v.has("z"));
    EXPECT_EQ(v.find("z"), nullptr);
    EXPECT_DOUBLE_EQ(v.numberOr("a", -1.0), 1.5);
    EXPECT_DOUBLE_EQ(v.numberOr("z", -1.0), -1.0);
}

TEST(Json, StringEscapesRoundTrip)
{
    std::string raw = "a\"b\\c\n\t<->";
    json::JsonValue v =
        json::parse("{\"s\": \"" + json::escape(raw) + "\"}");
    EXPECT_EQ(v.at("s").string, raw);
    EXPECT_EQ(v.stringOr("s", ""), raw);
    EXPECT_EQ(v.stringOr("t", "dflt"), "dflt");
    // \uXXXX decodes as UTF-8.
    EXPECT_EQ(json::parse("\"\\u0041\"").string, "A");
}

TEST(Json, MalformedInputThrowsJsonError)
{
    for (const char *bad :
         {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru",
          "\"unterminated", "{\"a\":1} trailing", "[1 2]",
          "{'a':1}"}) {
        EXPECT_THROW(json::parse(bad), json::JsonError)
            << "accepted '" << bad << "'";
    }
}

TEST(Json, AccessorsThrowOnKindMismatch)
{
    json::JsonValue v = json::parse("{\"a\": [0]}");
    EXPECT_THROW(v.at("missing"), json::JsonError);
    EXPECT_THROW(v.at("a").at("x"), json::JsonError);
    EXPECT_THROW(v.at("a")[5], json::JsonError);
}

} // namespace
} // namespace mobius
