/**
 * @file
 * Unit tests for base utilities: logging, unit formatting, RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/logging.hh"
#include "base/rng.hh"
#include "base/units.hh"

namespace mobius
{
namespace
{

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 7, "abc"), "x=7 y=abc");
    EXPECT_EQ(strfmt("%0.2f", 1.239), "1.24");
    EXPECT_EQ(strfmt("plain"), "plain");
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config %d", 42), FatalError);
    try {
        fatal("value=%d", 5);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "value=5");
    }
}

TEST(Logging, QuietFlagRoundTrips)
{
    EXPECT_FALSE(quiet());
    setQuiet(true);
    EXPECT_TRUE(quiet());
    setQuiet(false);
    EXPECT_FALSE(quiet());
}

TEST(Units, FormatBytesPicksScale)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2 * KiB), "2.00 KiB");
    EXPECT_EQ(formatBytes(3 * MiB), "3.00 MiB");
    EXPECT_EQ(formatBytes(24 * GiB), "24.00 GiB");
}

TEST(Units, FormatBandwidthPicksScale)
{
    EXPECT_EQ(formatBandwidth(13.1e9), "13.10 GB/s");
    EXPECT_EQ(formatBandwidth(2.5e6), "2.50 MB/s");
}

TEST(Units, FormatSecondsPicksScale)
{
    EXPECT_EQ(formatSeconds(2.5), "2.500 s");
    EXPECT_EQ(formatSeconds(0.0125), "12.500 ms");
    EXPECT_EQ(formatSeconds(42e-6), "42.0 us");
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(rng.below(5));
    EXPECT_EQ(seen.size(), 5u);
    for (auto v : seen)
        EXPECT_LT(v, 5u);
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

} // namespace
} // namespace mobius
