/**
 * @file
 * Unit tests for the simplex LP solver and the branch-and-bound MIP.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "solver/lp.hh"
#include "solver/mip.hh"

namespace mobius
{
namespace
{

TEST(Lp, TextbookMaximisation)
{
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => (2, 6), 36.
    LpProblem p;
    int x = p.addVar(-3.0);
    int y = p.addVar(-5.0);
    p.addRow({{x, 1.0}}, Sense::Le, 4.0);
    p.addRow({{y, 2.0}}, Sense::Le, 12.0);
    p.addRow({{x, 3.0}, {y, 2.0}}, Sense::Le, 18.0);
    auto sol = solveLp(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.objective, -36.0, 1e-6);
    EXPECT_NEAR(sol.x[x], 2.0, 1e-6);
    EXPECT_NEAR(sol.x[y], 6.0, 1e-6);
}

TEST(Lp, GreaterEqualAndEquality)
{
    // min 2x + 3y s.t. x + y = 10, x >= 4: substituting y = 10 - x
    // gives 30 - x, so x is pushed to 10 and the optimum is 20.
    LpProblem p;
    int x = p.addVar(2.0);
    int y = p.addVar(3.0);
    p.addRow({{x, 1.0}, {y, 1.0}}, Sense::Eq, 10.0);
    p.addRow({{x, 1.0}}, Sense::Ge, 4.0);
    auto sol = solveLp(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.objective, 20.0, 1e-6);
    EXPECT_NEAR(sol.x[x], 10.0, 1e-6); // x as large as possible
    EXPECT_NEAR(sol.x[y], 0.0, 1e-6);
}

TEST(Lp, InfeasibleDetected)
{
    LpProblem p;
    int x = p.addVar(1.0);
    p.addRow({{x, 1.0}}, Sense::Ge, 5.0);
    p.addRow({{x, 1.0}}, Sense::Le, 3.0);
    auto sol = solveLp(p);
    EXPECT_EQ(sol.status, LpSolution::Status::Infeasible);
}

TEST(Lp, UnboundedDetected)
{
    LpProblem p;
    int x = p.addVar(-1.0); // maximise x with no constraint
    (void)x;
    auto sol = solveLp(p);
    EXPECT_EQ(sol.status, LpSolution::Status::Unbounded);
}

TEST(Lp, VariableBoundsRespected)
{
    LpProblem p;
    int x = p.addVar(-1.0, 1.0, 7.0); // min -x, 1 <= x <= 7
    auto sol = solveLp(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.x[x], 7.0, 1e-6);
    EXPECT_NEAR(sol.objective, -7.0, 1e-6);
}

TEST(Lp, FreeVariableHandled)
{
    // min x s.t. x >= -5 with x free below: x = -5 via a row.
    LpProblem p;
    int x = p.addVar(1.0, -kLpInf, kLpInf);
    p.addRow({{x, 1.0}}, Sense::Ge, -5.0);
    auto sol = solveLp(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.x[x], -5.0, 1e-6);
}

TEST(Lp, DegenerateProblemTerminates)
{
    // Classic degeneracy; Bland's rule must terminate.
    LpProblem p;
    int x1 = p.addVar(-0.75);
    int x2 = p.addVar(150.0);
    int x3 = p.addVar(-0.02);
    int x4 = p.addVar(6.0);
    p.addRow({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
             Sense::Le, 0.0);
    p.addRow({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
             Sense::Le, 0.0);
    p.addRow({{x3, 1.0}}, Sense::Le, 1.0);
    auto sol = solveLp(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.objective, -0.05, 1e-6);
}

TEST(Lp, EqualityWithNegativeRhs)
{
    LpProblem p;
    int x = p.addVar(1.0, -kLpInf, kLpInf);
    p.addRow({{x, 1.0}}, Sense::Eq, -4.0);
    auto sol = solveLp(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.x[x], -4.0, 1e-6);
}

TEST(Mip, KnapsackSmall)
{
    // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary  => a+c = 17? vs
    // b+c = 20 (weight 6). Optimal: b + c = 20.
    MipProblem p;
    int a = p.addBoolVar(-10.0);
    int b = p.addBoolVar(-13.0);
    int c = p.addBoolVar(-7.0);
    p.lp.addRow({{a, 3.0}, {b, 4.0}, {c, 2.0}}, Sense::Le, 6.0);
    auto sol = solveMip(p);
    ASSERT_EQ(sol.status, MipSolution::Status::Optimal);
    EXPECT_NEAR(sol.objective, -20.0, 1e-6);
    EXPECT_NEAR(sol.x[a], 0.0, 1e-6);
    EXPECT_NEAR(sol.x[b], 1.0, 1e-6);
    EXPECT_NEAR(sol.x[c], 1.0, 1e-6);
}

TEST(Mip, IntegerRounding)
{
    // min -x, x <= 3.7, x integer => 3.
    MipProblem p;
    int x = p.addIntVar(-1.0, 0.0, 100.0);
    p.lp.addRow({{x, 1.0}}, Sense::Le, 3.7);
    auto sol = solveMip(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.x[x], 3.0, 1e-9);
}

TEST(Mip, AssignmentProblem)
{
    // 3x3 assignment, cost matrix; optimal = 5 (1 + 3 + 1).
    const double cost[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 1}};
    MipProblem p;
    int v[3][3];
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j)
            v[i][j] = p.addBoolVar(cost[i][j]);
    }
    for (int i = 0; i < 3; ++i) {
        std::vector<std::pair<int, double>> row, col;
        for (int j = 0; j < 3; ++j) {
            row.push_back({v[i][j], 1.0});
            col.push_back({v[j][i], 1.0});
        }
        p.lp.addRow(row, Sense::Eq, 1.0);
        p.lp.addRow(col, Sense::Eq, 1.0);
    }
    auto sol = solveMip(p);
    ASSERT_EQ(sol.status, MipSolution::Status::Optimal);
    EXPECT_NEAR(sol.objective, 4.0, 1e-6); // 1 + 2 + 1
}

TEST(Mip, MixedContinuousAndInteger)
{
    // min y s.t. y >= 1.5 n, n >= 2, n integer; y continuous.
    MipProblem p;
    int n = p.addIntVar(0.0, 0.0, 10.0);
    int y = p.addVar(1.0);
    p.lp.addRow({{y, 1.0}, {n, -1.5}}, Sense::Ge, 0.0);
    p.lp.addRow({{n, 1.0}}, Sense::Ge, 2.0);
    auto sol = solveMip(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.x[n], 2.0, 1e-9);
    EXPECT_NEAR(sol.x[y], 3.0, 1e-6);
}

TEST(Mip, InfeasibleIntegerBox)
{
    // 0.4 <= x <= 0.6, x integer: no integer point.
    MipProblem p;
    int x = p.addIntVar(1.0, 0.4, 0.6);
    (void)x;
    auto sol = solveMip(p);
    EXPECT_EQ(sol.status, MipSolution::Status::Infeasible);
}

TEST(Mip, RandomKnapsacksMatchBruteForce)
{
    // Property: B&B equals exhaustive enumeration on random 0/1
    // knapsacks.
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Rng rng(seed);
        const int n = 8;
        std::vector<double> value(n), weight(n);
        for (int i = 0; i < n; ++i) {
            value[i] = 1.0 + static_cast<double>(rng.below(20));
            weight[i] = 1.0 + static_cast<double>(rng.below(10));
        }
        double cap = 15.0;

        MipProblem p;
        std::vector<std::pair<int, double>> row;
        for (int i = 0; i < n; ++i) {
            int v = p.addBoolVar(-value[i]);
            row.push_back({v, weight[i]});
        }
        p.lp.addRow(row, Sense::Le, cap);
        auto sol = solveMip(p);
        ASSERT_TRUE(sol.ok());

        double best = 0.0;
        for (int mask = 0; mask < (1 << n); ++mask) {
            double tv = 0, tw = 0;
            for (int i = 0; i < n; ++i) {
                if (mask & (1 << i)) {
                    tv += value[i];
                    tw += weight[i];
                }
            }
            if (tw <= cap)
                best = std::max(best, tv);
        }
        EXPECT_NEAR(-sol.objective, best, 1e-6) << "seed " << seed;
    }
}

} // namespace
} // namespace mobius
