/**
 * @file
 * Unit tests for the simplex LP solver and the branch-and-bound MIP:
 * textbook instances, randomized fuzz against the frozen reference
 * implementation (lp_reference.hh), warm-start equivalence, and
 * thread-count determinism of the exact partition sweep.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "hw/server.hh"
#include "plan/partition_algos.hh"
#include "plan/partition_mip.hh"
#include "plan/pipeline_cost.hh"
#include "solver/lp.hh"
#include "solver/lp_reference.hh"
#include "solver/mip.hh"

namespace mobius
{
namespace
{

TEST(Lp, TextbookMaximisation)
{
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => (2, 6), 36.
    LpProblem p;
    int x = p.addVar(-3.0);
    int y = p.addVar(-5.0);
    p.addRow({{x, 1.0}}, Sense::Le, 4.0);
    p.addRow({{y, 2.0}}, Sense::Le, 12.0);
    p.addRow({{x, 3.0}, {y, 2.0}}, Sense::Le, 18.0);
    auto sol = solveLp(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.objective, -36.0, 1e-6);
    EXPECT_NEAR(sol.x[x], 2.0, 1e-6);
    EXPECT_NEAR(sol.x[y], 6.0, 1e-6);
}

TEST(Lp, GreaterEqualAndEquality)
{
    // min 2x + 3y s.t. x + y = 10, x >= 4: substituting y = 10 - x
    // gives 30 - x, so x is pushed to 10 and the optimum is 20.
    LpProblem p;
    int x = p.addVar(2.0);
    int y = p.addVar(3.0);
    p.addRow({{x, 1.0}, {y, 1.0}}, Sense::Eq, 10.0);
    p.addRow({{x, 1.0}}, Sense::Ge, 4.0);
    auto sol = solveLp(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.objective, 20.0, 1e-6);
    EXPECT_NEAR(sol.x[x], 10.0, 1e-6); // x as large as possible
    EXPECT_NEAR(sol.x[y], 0.0, 1e-6);
}

TEST(Lp, InfeasibleDetected)
{
    LpProblem p;
    int x = p.addVar(1.0);
    p.addRow({{x, 1.0}}, Sense::Ge, 5.0);
    p.addRow({{x, 1.0}}, Sense::Le, 3.0);
    auto sol = solveLp(p);
    EXPECT_EQ(sol.status, LpSolution::Status::Infeasible);
}

TEST(Lp, UnboundedDetected)
{
    LpProblem p;
    int x = p.addVar(-1.0); // maximise x with no constraint
    (void)x;
    auto sol = solveLp(p);
    EXPECT_EQ(sol.status, LpSolution::Status::Unbounded);
}

TEST(Lp, VariableBoundsRespected)
{
    LpProblem p;
    int x = p.addVar(-1.0, 1.0, 7.0); // min -x, 1 <= x <= 7
    auto sol = solveLp(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.x[x], 7.0, 1e-6);
    EXPECT_NEAR(sol.objective, -7.0, 1e-6);
}

TEST(Lp, FreeVariableHandled)
{
    // min x s.t. x >= -5 with x free below: x = -5 via a row.
    LpProblem p;
    int x = p.addVar(1.0, -kLpInf, kLpInf);
    p.addRow({{x, 1.0}}, Sense::Ge, -5.0);
    auto sol = solveLp(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.x[x], -5.0, 1e-6);
}

TEST(Lp, DegenerateProblemTerminates)
{
    // Classic degeneracy; Bland's rule must terminate.
    LpProblem p;
    int x1 = p.addVar(-0.75);
    int x2 = p.addVar(150.0);
    int x3 = p.addVar(-0.02);
    int x4 = p.addVar(6.0);
    p.addRow({{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
             Sense::Le, 0.0);
    p.addRow({{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
             Sense::Le, 0.0);
    p.addRow({{x3, 1.0}}, Sense::Le, 1.0);
    auto sol = solveLp(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.objective, -0.05, 1e-6);
}

TEST(Lp, EqualityWithNegativeRhs)
{
    LpProblem p;
    int x = p.addVar(1.0, -kLpInf, kLpInf);
    p.addRow({{x, 1.0}}, Sense::Eq, -4.0);
    auto sol = solveLp(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.x[x], -4.0, 1e-6);
}

TEST(Mip, KnapsackSmall)
{
    // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary  => a+c = 17? vs
    // b+c = 20 (weight 6). Optimal: b + c = 20.
    MipProblem p;
    int a = p.addBoolVar(-10.0);
    int b = p.addBoolVar(-13.0);
    int c = p.addBoolVar(-7.0);
    p.lp.addRow({{a, 3.0}, {b, 4.0}, {c, 2.0}}, Sense::Le, 6.0);
    auto sol = solveMip(p);
    ASSERT_EQ(sol.status, MipSolution::Status::Optimal);
    EXPECT_NEAR(sol.objective, -20.0, 1e-6);
    EXPECT_NEAR(sol.x[a], 0.0, 1e-6);
    EXPECT_NEAR(sol.x[b], 1.0, 1e-6);
    EXPECT_NEAR(sol.x[c], 1.0, 1e-6);
}

TEST(Mip, IntegerRounding)
{
    // min -x, x <= 3.7, x integer => 3.
    MipProblem p;
    int x = p.addIntVar(-1.0, 0.0, 100.0);
    p.lp.addRow({{x, 1.0}}, Sense::Le, 3.7);
    auto sol = solveMip(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.x[x], 3.0, 1e-9);
}

TEST(Mip, AssignmentProblem)
{
    // 3x3 assignment, cost matrix; optimal = 5 (1 + 3 + 1).
    const double cost[3][3] = {{4, 1, 3}, {2, 0, 5}, {3, 2, 1}};
    MipProblem p;
    int v[3][3];
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j)
            v[i][j] = p.addBoolVar(cost[i][j]);
    }
    for (int i = 0; i < 3; ++i) {
        std::vector<std::pair<int, double>> row, col;
        for (int j = 0; j < 3; ++j) {
            row.push_back({v[i][j], 1.0});
            col.push_back({v[j][i], 1.0});
        }
        p.lp.addRow(row, Sense::Eq, 1.0);
        p.lp.addRow(col, Sense::Eq, 1.0);
    }
    auto sol = solveMip(p);
    ASSERT_EQ(sol.status, MipSolution::Status::Optimal);
    EXPECT_NEAR(sol.objective, 4.0, 1e-6); // 1 + 2 + 1
}

TEST(Mip, MixedContinuousAndInteger)
{
    // min y s.t. y >= 1.5 n, n >= 2, n integer; y continuous.
    MipProblem p;
    int n = p.addIntVar(0.0, 0.0, 10.0);
    int y = p.addVar(1.0);
    p.lp.addRow({{y, 1.0}, {n, -1.5}}, Sense::Ge, 0.0);
    p.lp.addRow({{n, 1.0}}, Sense::Ge, 2.0);
    auto sol = solveMip(p);
    ASSERT_TRUE(sol.ok());
    EXPECT_NEAR(sol.x[n], 2.0, 1e-9);
    EXPECT_NEAR(sol.x[y], 3.0, 1e-6);
}

TEST(Mip, InfeasibleIntegerBox)
{
    // 0.4 <= x <= 0.6, x integer: no integer point.
    MipProblem p;
    int x = p.addIntVar(1.0, 0.4, 0.6);
    (void)x;
    auto sol = solveMip(p);
    EXPECT_EQ(sol.status, MipSolution::Status::Infeasible);
}

TEST(Mip, RandomKnapsacksMatchBruteForce)
{
    // Property: B&B equals exhaustive enumeration on random 0/1
    // knapsacks.
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Rng rng(seed);
        const int n = 8;
        std::vector<double> value(n), weight(n);
        for (int i = 0; i < n; ++i) {
            value[i] = 1.0 + static_cast<double>(rng.below(20));
            weight[i] = 1.0 + static_cast<double>(rng.below(10));
        }
        double cap = 15.0;

        MipProblem p;
        std::vector<std::pair<int, double>> row;
        for (int i = 0; i < n; ++i) {
            int v = p.addBoolVar(-value[i]);
            row.push_back({v, weight[i]});
        }
        p.lp.addRow(row, Sense::Le, cap);
        auto sol = solveMip(p);
        ASSERT_TRUE(sol.ok());

        double best = 0.0;
        for (int mask = 0; mask < (1 << n); ++mask) {
            double tv = 0, tw = 0;
            for (int i = 0; i < n; ++i) {
                if (mask & (1 << i)) {
                    tv += value[i];
                    tw += weight[i];
                }
            }
            if (tw <= cap)
                best = std::max(best, tv);
        }
        EXPECT_NEAR(-sol.objective, best, 1e-6) << "seed " << seed;
    }
}

/** Random box-bounded LP used by the fuzz tests below. */
LpProblem
randomBoundedLp(Rng &rng)
{
    LpProblem p;
    int n = 2 + static_cast<int>(rng.below(6));
    for (int i = 0; i < n; ++i) {
        double lo = rng.uniform(-4.0, 0.0);
        double up = rng.uniform(0.5, 8.0);
        p.addVar(rng.uniform(-10.0, 10.0), lo, up);
    }
    int m = 1 + static_cast<int>(rng.below(7));
    for (int r = 0; r < m; ++r) {
        int k = 1 + static_cast<int>(rng.below(n));
        std::vector<std::pair<int, double>> terms;
        for (int t = 0; t < k; ++t)
            terms.push_back({static_cast<int>(rng.below(n)),
                             rng.uniform(-5.0, 5.0)});
        Sense sense = rng.below(4) == 0
                          ? Sense::Eq
                          : (rng.below(2) == 0 ? Sense::Le
                                               : Sense::Ge);
        p.addRow(terms, sense, rng.uniform(-10.0, 10.0));
    }
    return p;
}

TEST(Lp, FuzzMatchesReference)
{
    // Property: the bounded-variable simplex agrees with the frozen
    // reference implementation (Bland + bound rows + big-M) on
    // status and optimal objective for random box-bounded LPs.
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        Rng rng(seed);
        LpProblem p = randomBoundedLp(rng);
        auto cur = solveLp(p);
        auto ref = solveLpReference(p);
        ASSERT_EQ(cur.status, ref.status) << "seed " << seed;
        if (cur.ok()) {
            double tol =
                1e-5 * std::max(1.0, std::abs(ref.objective));
            EXPECT_NEAR(cur.objective, ref.objective, tol)
                << "seed " << seed;
        }
    }
}

TEST(Lp, WarmMatchesColdAfterBoundChanges)
{
    // Property: after arbitrary bound tightenings the dual-simplex
    // warm restart reaches the same optimum as a from-scratch solve.
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
        Rng rng(seed);
        LpProblem p = randomBoundedLp(rng);
        int n = p.numVars;
        BoundedSimplex warm(p);
        (void)warm.solveCold();
        std::vector<double> lo = p.lower, up = p.upper;
        for (int step = 0; step < 8; ++step) {
            int j = static_cast<int>(rng.below(n));
            if (rng.below(2) == 0)
                lo[j] = rng.uniform(lo[j], up[j]);
            else
                up[j] = rng.uniform(lo[j], up[j]);
            warm.setBounds(lo, up);
            auto ws = warm.solveWarm();

            LpProblem q = p;
            q.lower = lo;
            q.upper = up;
            auto cs = solveLp(q);
            ASSERT_EQ(ws.status, cs.status)
                << "seed " << seed << " step " << step;
            if (ws.ok()) {
                double tol =
                    1e-5 * std::max(1.0, std::abs(cs.objective));
                EXPECT_NEAR(ws.objective, cs.objective, tol)
                    << "seed " << seed << " step " << step;
            }
        }
    }
}

TEST(Mip, FuzzWarmEqualsColdSearch)
{
    // Property: warm-started B&B and cold-started B&B prove the same
    // status and optimal objective on random bounded MIPs.
    for (std::uint64_t seed = 100; seed < 140; ++seed) {
        Rng rng(seed);
        MipProblem p;
        p.lp = randomBoundedLp(rng);
        int n = p.lp.numVars;
        p.integer.assign(static_cast<std::size_t>(n), false);
        for (int j = 0; j < n; ++j)
            p.integer[static_cast<std::size_t>(j)] =
                rng.below(2) == 0;
        MipOptions warm_opts;
        MipOptions cold_opts;
        cold_opts.warmStart = false;
        auto ws = solveMip(p, warm_opts);
        auto cs = solveMip(p, cold_opts);
        ASSERT_EQ(ws.status, cs.status) << "seed " << seed;
        if (ws.ok()) {
            double tol =
                1e-5 * std::max(1.0, std::abs(cs.objective));
            EXPECT_NEAR(ws.objective, cs.objective, tol)
                << "seed " << seed;
        }
    }
}

TEST(Mip, NodeLimitDistinctFromInfeasible)
{
    // A fractional root with a one-node budget exhausts the search
    // before any incumbent exists: that is NodeLimit, not the
    // Infeasible the pre-fix dead conditional used to report.
    MipProblem p;
    int a = p.addBoolVar(-10.0);
    int b = p.addBoolVar(-13.0);
    int c = p.addBoolVar(-7.0);
    p.lp.addRow({{a, 3.0}, {b, 4.0}, {c, 2.0}}, Sense::Le, 6.0);
    MipOptions opts;
    opts.warmStart = false;
    opts.maxNodes = 1;
    auto sol = solveMip(p, opts);
    EXPECT_EQ(sol.status, MipSolution::Status::NodeLimit);
    EXPECT_FALSE(sol.ok());

    // Sanity: an adequate budget proves the optimum on the same
    // instance, so the limit really was the only obstacle.
    opts.maxNodes = 100000;
    auto full = solveMip(p, opts);
    EXPECT_EQ(full.status, MipSolution::Status::Optimal);
}

TEST(Mip, StartSeedsIncumbent)
{
    MipProblem p;
    int a = p.addBoolVar(-10.0);
    int b = p.addBoolVar(-13.0);
    int c = p.addBoolVar(-7.0);
    p.lp.addRow({{a, 3.0}, {b, 4.0}, {c, 2.0}}, Sense::Le, 6.0);

    // Seeding the known optimum must not change the proved result.
    MipOptions opts;
    opts.start = {0.0, 1.0, 1.0};
    auto sol = solveMip(p, opts);
    ASSERT_EQ(sol.status, MipSolution::Status::Optimal);
    EXPECT_NEAR(sol.objective, -20.0, 1e-6);

    // Under a budget too small to finish the proof, the seed still
    // guarantees a Feasible incumbent at the seeded objective.
    opts.maxNodes = 1;
    auto seeded = solveMip(p, opts);
    ASSERT_TRUE(seeded.ok());
    EXPECT_EQ(seeded.status, MipSolution::Status::Feasible);
    EXPECT_NEAR(seeded.objective, -20.0, 1e-6);
}

/** Owns the model/cost/evaluator chain (they hold pointers). */
struct ToyEnv
{
    ToyEnv(int layers, int gpus, int microbatches, Bytes gpu_mem)
        : model(toyModel(layers)),
          cost(model, rtx3090Ti(),
               TrainConfig{1, microbatches, true, 0.45, 30e-6}),
          eval(cost, PipelineEnv{gpus, gpu_mem, 13.1e9, true})
    {}

    /** Uniform toy model: @p layers identical transformer blocks. */
    static ModelDesc
    toyModel(int layers)
    {
        ModelDesc m;
        m.name = "toy";
        m.seqLen = 512;
        m.hidden = 1024;
        m.heads = 8;
        for (int i = 0; i < layers; ++i) {
            LayerDesc l;
            l.name = "l" + std::to_string(i);
            l.type = LayerType::TransformerBlock;
            l.paramCount = 100'000'000;
            l.fwdFlopsPerSample = 3e12;
            l.actBytesPerSample = 8 * MiB;
            l.workBytesPerSample = 32 * MiB;
            l.similarityClass = 0;
            m.layers.push_back(l);
        }
        return m;
    }

    ModelDesc model;
    CostModel cost;
    PipelineCostEvaluator eval;
};

TEST(MipPartition, ThreadCountDoesNotChangeResult)
{
    // The parallel stage-count sweep must reduce deterministically:
    // any worker count returns the bit-identical partition, node
    // count and objective.
    ToyEnv env(8, 2, 2, 4 * GiB);
    MipOptions base;
    base.maxNodes = 60000;

    MipOptions one = base;
    one.threads = 1;
    auto r1 = exactMipPartition(env.eval, 4, one);
    ASSERT_TRUE(r1.solved);

    for (int threads : {2, 4}) {
        MipOptions many = base;
        many.threads = threads;
        auto rn = exactMipPartition(env.eval, 4, many);
        ASSERT_TRUE(rn.solved) << "threads " << threads;
        EXPECT_EQ(partitionToString(r1.partition),
                  partitionToString(rn.partition))
            << "threads " << threads;
        EXPECT_EQ(r1.objective, rn.objective)
            << "threads " << threads;
        EXPECT_EQ(r1.nodes, rn.nodes) << "threads " << threads;
    }
}

TEST(MipPartition, WarmStartMatchesColdPartition)
{
    // The warm-started, seeded solve must pick the same partition as
    // a cold, unseeded one -- warm restarts change the path, never
    // the optimum.
    ToyEnv env(8, 2, 2, 4 * GiB);
    MipOptions warm;
    warm.maxNodes = 60000;
    MipOptions cold = warm;
    cold.warmStart = false;
    auto rw = exactMipPartition(env.eval, 4, warm);
    auto rc = exactMipPartition(env.eval, 4, cold);
    ASSERT_TRUE(rw.solved);
    ASSERT_TRUE(rc.solved);
    EXPECT_EQ(partitionToString(rw.partition),
              partitionToString(rc.partition));
    EXPECT_NEAR(rw.objective, rc.objective, 1e-9);
    EXPECT_GT(rw.lpWarmSolves, 0u);
}

} // namespace
} // namespace mobius
