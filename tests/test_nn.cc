/**
 * @file
 * Tests for the NN modules and the Adam optimizer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.hh"
#include "nn/module.hh"

namespace mobius
{
namespace
{

TEST(Linear, ForwardShapeAndDeterminism)
{
    Rng rng1(5), rng2(5);
    Linear l1(4, 3, rng1), l2(4, 3, rng2);
    Tensor x(Shape{2, 4}, {1, 2, 3, 4, 5, 6, 7, 8});
    Tensor y1 = l1.forward(x);
    Tensor y2 = l2.forward(x);
    EXPECT_EQ(y1.shape(), (Shape{2, 3}));
    for (std::size_t i = 0; i < y1.data().size(); ++i)
        EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
}

TEST(Block, ForwardPreservesShape)
{
    Rng rng(7);
    TransformerBlockModule block(8, 2, rng);
    Tensor x(Shape{5, 8}, true);
    initUniform(x, 0.5f, rng);
    Tensor y = block.forward(x);
    EXPECT_EQ(y.shape(), x.shape());
    EXPECT_EQ(block.parameters().size(), 12u);
}

TEST(Block, GradientsFlowToAllParameters)
{
    Rng rng(8);
    TransformerBlockModule block(8, 2, rng);
    Tensor x(Shape{4, 8}, true);
    initUniform(x, 0.5f, rng);
    Tensor loss = meanAll(block.forward(x));
    loss.backward();
    for (auto &p : block.parameters()) {
        double norm = 0;
        for (float g : p.grad())
            norm += std::fabs(g);
        EXPECT_GT(norm, 0.0);
    }
}

TEST(MiniGpt, ForwardShapesAndLayerCount)
{
    MiniGptConfig cfg;
    cfg.vocab = 20;
    cfg.width = 16;
    cfg.heads = 2;
    cfg.blocks = 3;
    cfg.seqLen = 8;
    MiniGpt model(cfg);
    EXPECT_EQ(model.numPipelineLayers(), 5);

    std::vector<int> ids{1, 2, 3, 4, 5, 6, 7, 8};
    Tensor logits = model.forward(ids);
    EXPECT_EQ(logits.shape(), (Shape{8, 20}));
}

TEST(MiniGpt, LayerwiseForwardEqualsMonolithic)
{
    MiniGptConfig cfg;
    cfg.vocab = 20;
    cfg.width = 16;
    cfg.heads = 2;
    cfg.blocks = 2;
    cfg.seqLen = 6;
    MiniGpt model(cfg);
    std::vector<int> ids{3, 1, 4, 1, 5, 9};
    Tensor direct = model.forward(ids);
    Tensor x = model.forwardLayer(0, Tensor(), ids);
    for (int l = 1; l < model.numPipelineLayers(); ++l)
        x = model.forwardLayer(l, x, ids);
    for (std::size_t i = 0; i < direct.data().size(); ++i)
        EXPECT_FLOAT_EQ(direct.data()[i], x.data()[i]);
}

TEST(MiniGpt, ParameterPartitionIsComplete)
{
    MiniGptConfig cfg;
    cfg.blocks = 3;
    MiniGpt model(cfg);
    std::size_t layered = 0;
    for (int l = 0; l < model.numPipelineLayers(); ++l)
        layered += model.layerParameters(l).size();
    EXPECT_EQ(layered, model.parameters().size());
}

TEST(Adam, MinimisesQuadratic)
{
    // f(x) = (x - 3)^2 per coordinate: Adam should approach 3.
    Tensor x(Shape{4}, {0, 1, -2, 10}, true);
    AdamConfig cfg;
    cfg.lr = 0.1f;
    Adam opt({x}, cfg);
    for (int it = 0; it < 400; ++it) {
        opt.zeroGrad();
        for (int i = 0; i < 4; ++i)
            x.grad()[i] = 2.0f * (x.data()[i] - 3.0f);
        opt.step();
    }
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(x.data()[i], 3.0f, 0.05f);
    EXPECT_EQ(opt.stepsTaken(), 400);
}

TEST(Adam, BiasCorrectionFirstStep)
{
    // First step moves by ~lr regardless of gradient magnitude.
    Tensor x(Shape{1}, {0.0f}, true);
    AdamConfig cfg;
    cfg.lr = 0.01f;
    Adam opt({x}, cfg);
    x.grad()[0] = 1e-4f;
    opt.step();
    EXPECT_NEAR(x.data()[0], -0.01f, 1e-4f);
}

TEST(MiniGpt, LossDecreasesOnTinyOverfit)
{
    // Overfit a single sequence: loss must fall sharply.
    MiniGptConfig cfg;
    cfg.vocab = 12;
    cfg.width = 16;
    cfg.heads = 2;
    cfg.blocks = 2;
    cfg.seqLen = 8;
    MiniGpt model(cfg);
    Adam opt(model.parameters(), AdamConfig{3e-3f});
    std::vector<int> ids{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> tgt{2, 3, 4, 5, 6, 7, 8, 9};
    double first = 0, last = 0;
    for (int it = 0; it < 60; ++it) {
        opt.zeroGrad();
        Tensor loss = crossEntropy(model.forward(ids), tgt);
        if (it == 0)
            first = loss.data()[0];
        last = loss.data()[0];
        loss.backward();
        opt.step();
    }
    EXPECT_LT(last, first * 0.3);
}

} // namespace
} // namespace mobius
