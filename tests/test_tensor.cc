/**
 * @file
 * Tensor/autograd tests: every operator is gradient-checked against
 * central finite differences.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "base/rng.hh"
#include "tensor/tensor.hh"

namespace mobius
{
namespace
{

Tensor
randomTensor(Shape shape, Rng &rng, float scale = 1.0f)
{
    Tensor t(shape, true);
    for (auto &v : t.data())
        v = static_cast<float>(rng.uniform(-scale, scale));
    return t;
}

/** Deterministic weights turning a tensor into a scalar loss. */
std::vector<float>
lossWeights(std::int64_t n, Rng &rng)
{
    std::vector<float> w(static_cast<std::size_t>(n));
    for (auto &v : w)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return w;
}

double
weightedSum(const Tensor &t, const std::vector<float> &w)
{
    double s = 0.0;
    for (std::size_t i = 0; i < t.data().size(); ++i)
        s += static_cast<double>(t.data()[i]) * w[i];
    return s;
}

/**
 * Gradient-check @p fn: builds the op output from inputs, reduces it
 * with fixed weights, compares autograd input gradients against
 * central differences.
 */
void
gradCheck(const std::function<Tensor()> &fn,
          std::vector<Tensor> inputs, double tol = 2e-2,
          float eps = 1e-3f)
{
    Rng rng(99);
    Tensor out = fn();
    auto w = lossWeights(out.numel(), rng);

    // Autograd gradients.
    for (auto &in : inputs)
        in.zeroGrad();
    out.backward(&w);

    for (auto &in : inputs) {
        for (std::size_t i = 0; i < in.data().size(); ++i) {
            float keep = in.data()[i];
            in.data()[i] = keep + eps;
            double up = weightedSum(fn(), w);
            in.data()[i] = keep - eps;
            double down = weightedSum(fn(), w);
            in.data()[i] = keep;
            double numeric = (up - down) / (2.0 * eps);
            double analytic = in.grad()[i];
            double denom =
                std::max({1.0, std::fabs(numeric),
                          std::fabs(analytic)});
            ASSERT_NEAR(analytic / denom, numeric / denom, tol)
                << "element " << i;
        }
    }
}

TEST(Tensor, ShapeHelpers)
{
    EXPECT_EQ(shapeNumel({2, 3, 4}), 24);
    EXPECT_EQ(shapeToString({2, 3}), "[2, 3]");
    Tensor t(Shape{2, 3});
    EXPECT_EQ(t.numel(), 6);
    EXPECT_EQ(t.rank(), 2);
}

TEST(Tensor, AddForwardAndGrad)
{
    Rng rng(1);
    Tensor a = randomTensor({3, 4}, rng);
    Tensor b = randomTensor({3, 4}, rng);
    gradCheck([&] { return add(a, b); }, {a, b});
}

TEST(Tensor, SubMulScale)
{
    Rng rng(2);
    Tensor a = randomTensor({2, 5}, rng);
    Tensor b = randomTensor({2, 5}, rng);
    gradCheck([&] { return sub(a, b); }, {a, b});
    gradCheck([&] { return mul(a, b); }, {a, b});
    gradCheck([&] { return scale(a, -2.5f); }, {a});
}

TEST(Tensor, AddRowBroadcast)
{
    Rng rng(3);
    Tensor a = randomTensor({4, 3}, rng);
    Tensor bias = randomTensor({3}, rng);
    gradCheck([&] { return addRowBroadcast(a, bias); }, {a, bias});
}

TEST(Tensor, GeluAndRelu)
{
    Rng rng(4);
    Tensor a = randomTensor({3, 3}, rng, 2.0f);
    gradCheck([&] { return gelu(a); }, {a});
    // Keep relu inputs away from the kink.
    for (auto &v : a.data()) {
        if (std::fabs(v) < 0.05f)
            v = 0.5f;
    }
    gradCheck([&] { return relu(a); }, {a});
}

TEST(Tensor, MatmulForward)
{
    Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
    Tensor c = matmul(a, b);
    EXPECT_EQ(c.shape(), (Shape{2, 2}));
    EXPECT_FLOAT_EQ(c.data()[0], 58);
    EXPECT_FLOAT_EQ(c.data()[1], 64);
    EXPECT_FLOAT_EQ(c.data()[2], 139);
    EXPECT_FLOAT_EQ(c.data()[3], 154);
}

TEST(Tensor, MatmulGrad)
{
    Rng rng(5);
    Tensor a = randomTensor({4, 3}, rng);
    Tensor b = randomTensor({3, 5}, rng);
    gradCheck([&] { return matmul(a, b); }, {a, b});
}

TEST(Tensor, ReshapeAndMean)
{
    Rng rng(6);
    Tensor a = randomTensor({2, 6}, rng);
    gradCheck([&] { return reshape(a, {3, 4}); }, {a});
    gradCheck([&] { return meanAll(a); }, {a});
}

TEST(Tensor, EmbeddingGrad)
{
    Rng rng(7);
    Tensor table = randomTensor({5, 4}, rng);
    std::vector<int> ids{0, 3, 3, 1};
    gradCheck([&] { return embedding(table, ids); }, {table});
}

TEST(Tensor, LayerNormForwardNormalises)
{
    Rng rng(8);
    Tensor x = randomTensor({3, 8}, rng, 3.0f);
    Tensor g(Shape{8}, std::vector<float>(8, 1.0f), true);
    Tensor b(Shape{8}, true);
    Tensor out = layerNorm(x, g, b);
    for (int r = 0; r < 3; ++r) {
        double mu = 0, var = 0;
        for (int j = 0; j < 8; ++j)
            mu += out.data()[r * 8 + j];
        mu /= 8;
        for (int j = 0; j < 8; ++j) {
            double d = out.data()[r * 8 + j] - mu;
            var += d * d;
        }
        var /= 8;
        EXPECT_NEAR(mu, 0.0, 1e-5);
        EXPECT_NEAR(var, 1.0, 1e-3);
    }
}

TEST(Tensor, LayerNormGrad)
{
    Rng rng(9);
    Tensor x = randomTensor({2, 6}, rng, 2.0f);
    Tensor g = randomTensor({6}, rng);
    Tensor b = randomTensor({6}, rng);
    gradCheck([&] { return layerNorm(x, g, b); }, {x, g, b},
              3e-2);
}

TEST(Tensor, AttentionIsCausal)
{
    // Changing a future token must not change earlier outputs.
    Rng rng(10);
    Tensor q = randomTensor({4, 6}, rng);
    Tensor k = randomTensor({4, 6}, rng);
    Tensor v = randomTensor({4, 6}, rng);
    Tensor out1 = causalSelfAttention(q, k, v, 2);
    // Perturb the last row of k and v.
    for (int j = 0; j < 6; ++j) {
        k.data()[3 * 6 + j] += 1.0f;
        v.data()[3 * 6 + j] -= 1.0f;
    }
    Tensor out2 = causalSelfAttention(q, k, v, 2);
    for (int i = 0; i < 3 * 6; ++i)
        EXPECT_FLOAT_EQ(out1.data()[i], out2.data()[i]);
    bool last_changed = false;
    for (int j = 0; j < 6; ++j) {
        last_changed |= out1.data()[3 * 6 + j] !=
            out2.data()[3 * 6 + j];
    }
    EXPECT_TRUE(last_changed);
}

TEST(Tensor, AttentionGrad)
{
    Rng rng(11);
    Tensor q = randomTensor({3, 4}, rng);
    Tensor k = randomTensor({3, 4}, rng);
    Tensor v = randomTensor({3, 4}, rng);
    gradCheck([&] { return causalSelfAttention(q, k, v, 2); },
              {q, k, v}, 3e-2);
}

TEST(Tensor, CrossEntropyForward)
{
    // Uniform logits -> loss = log(vocab).
    Tensor logits(Shape{2, 4}, std::vector<float>(8, 0.0f), true);
    Tensor loss = crossEntropy(logits, {1, 2});
    EXPECT_NEAR(loss.data()[0], std::log(4.0), 1e-6);
}

TEST(Tensor, CrossEntropyIgnoresNegativeTargets)
{
    Tensor logits(Shape{2, 4}, std::vector<float>(8, 0.0f), true);
    Tensor loss = crossEntropy(logits, {1, -1});
    EXPECT_NEAR(loss.data()[0], std::log(4.0), 1e-6);
    loss.backward();
    // Ignored row contributes no gradient.
    for (int j = 0; j < 4; ++j)
        EXPECT_FLOAT_EQ(logits.grad()[4 + j], 0.0f);
}

TEST(Tensor, CrossEntropyGrad)
{
    Rng rng(12);
    Tensor logits = randomTensor({3, 5}, rng);
    gradCheck([&] { return crossEntropy(logits, {0, 4, 2}); },
              {logits});
}

TEST(Tensor, BackwardAccumulatesThroughSharedNodes)
{
    // y = x + x: dy/dx = 2.
    Tensor x(Shape{2}, {1.0f, 2.0f}, true);
    Tensor y = add(x, x);
    y.backward();
    EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
    EXPECT_FLOAT_EQ(x.grad()[1], 2.0f);
}

TEST(Tensor, DetachCutsTheGraph)
{
    Tensor x(Shape{2}, {3.0f, 4.0f}, true);
    Tensor y = scale(x, 2.0f);
    Tensor leaf = y.detachAsLeaf();
    EXPECT_EQ(leaf.data(), y.data());
    Tensor z = scale(leaf, 5.0f);
    z.backward();
    EXPECT_FLOAT_EQ(leaf.grad()[0], 5.0f);
    // x is unaffected: the graph was cut.
    EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(Tensor, ChainedGraphGradCheck)
{
    // A composite expression exercising several ops end to end.
    Rng rng(13);
    Tensor x = randomTensor({3, 4}, rng);
    Tensor w = randomTensor({4, 4}, rng);
    Tensor b = randomTensor({4}, rng);
    gradCheck(
        [&] {
            return meanAll(
                gelu(addRowBroadcast(matmul(x, w), b)));
        },
        {x, w, b});
}

} // namespace
} // namespace mobius
