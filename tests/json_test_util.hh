/**
 * @file
 * Minimal recursive-descent JSON parser for tests.
 *
 * The simulator hand-serialises several JSON documents (Chrome
 * traces, the metrics registry, attribution reports, bench outputs);
 * these helpers let tests assert the output actually *parses* and
 * that strings survive escaping, instead of substring-matching.
 *
 * Deliberately small: numbers become double, object member order is
 * preserved but duplicate keys are not rejected, and \uXXXX escapes
 * decode the code point as UTF-8. parseJson() throws
 * std::runtime_error with a byte offset on malformed input, which
 * gtest reports as the test failure.
 */

#ifndef MOBIUS_TESTS_JSON_TEST_UTIL_HH
#define MOBIUS_TESTS_JSON_TEST_UTIL_HH

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace mobius::testjson
{

/** One parsed JSON value (a tagged union over the six kinds). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** @return whether this object has a member named @p key. */
    bool
    has(const std::string &key) const
    {
        for (const auto &[k, v] : members) {
            if (k == key)
                return true;
        }
        return false;
    }

    /** @return member @p key; throws when absent or not an object. */
    const JsonValue &
    at(const std::string &key) const
    {
        if (kind != Kind::Object)
            throw std::runtime_error("json: at(\"" + key +
                                     "\") on a non-object");
        for (const auto &[k, v] : members) {
            if (k == key)
                return v;
        }
        throw std::runtime_error("json: no member \"" + key + "\"");
    }

    /** @return array element @p i; throws when out of range. */
    const JsonValue &
    operator[](std::size_t i) const
    {
        if (kind != Kind::Array || i >= array.size())
            throw std::runtime_error("json: bad array index");
        return array[i];
    }
};

namespace detail
{

/** Recursive-descent parser over one input string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw std::runtime_error("json: " + what + " at byte " +
                                 std::to_string(pos_));
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(const std::string &word)
    {
        if (text_.compare(pos_, word.size(), word) != 0)
            return false;
        pos_ += word.size();
        return true;
    }

    JsonValue
    value()
    {
        skipWs();
        char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return arrayValue();
        if (c == '"') {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.string = stringLiteral();
            return v;
        }
        if (consume("true")) {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = true;
            return v;
        }
        if (consume("false")) {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            v.boolean = false;
            return v;
        }
        if (consume("null"))
            return JsonValue{};
        if (c == '-' || (c >= '0' && c <= '9'))
            return numberValue();
        fail("unexpected character");
    }

    JsonValue
    object()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            std::string key = stringLiteral();
            skipWs();
            expect(':');
            v.members.emplace_back(std::move(key), value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    arrayValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    stringLiteral()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': out += unicodeEscape(); break;
              default: fail("bad escape");
            }
        }
    }

    std::string
    unicodeEscape()
    {
        if (pos_ + 4 > text_.size())
            fail("truncated \\u escape");
        unsigned cp = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_++];
            cp <<= 4;
            if (c >= '0' && c <= '9')
                cp |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                cp |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                cp |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("bad \\u digit");
        }
        // Encode the BMP code point as UTF-8 (surrogate pairs are
        // not recombined; the exporters never emit them).
        std::string out;
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        return out;
    }

    JsonValue
    numberValue()
    {
        const char *begin = text_.c_str() + pos_;
        char *end = nullptr;
        double d = std::strtod(begin, &end);
        if (end == begin)
            fail("bad number");
        pos_ += static_cast<std::size_t>(end - begin);
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number = d;
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace detail

/** Parse @p text; throws std::runtime_error on malformed input. */
inline JsonValue
parseJson(const std::string &text)
{
    return detail::Parser(text).parse();
}

} // namespace mobius::testjson

#endif // MOBIUS_TESTS_JSON_TEST_UTIL_HH
