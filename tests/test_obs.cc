/**
 * @file
 * Observability-layer tests: counter/gauge/histogram semantics,
 * streaming-percentile accuracy on known distributions, JSON/CSV
 * export, Chrome-tracing counter events, sampler termination, and an
 * end-to-end Mobius run exercising the instrumented hot paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "json_test_util.hh"
#include "obs/metrics.hh"
#include "runtime/api.hh"
#include "runtime/mobius_executor.hh"
#include "runtime/run_context.hh"
#include "obs/sampler.hh"
#include "simcore/trace.hh"

namespace mobius
{
namespace
{

TEST(Counter, AccumulatesAndNames)
{
    MetricsRegistry reg;
    Counter &c = reg.counter("xfer.flows.submitted");
    EXPECT_EQ(c.value(), 0.0);
    c.add();
    c.add();
    c.add(3.5);
    EXPECT_DOUBLE_EQ(c.value(), 5.5);
    EXPECT_EQ(c.name(), "xfer.flows.submitted");
}

TEST(Gauge, TracksMinMaxOverTime)
{
    MetricsRegistry reg;
    Gauge &g = reg.gauge("xfer.queue.depth");
    // Before any set() the extremes read 0.
    EXPECT_EQ(g.min(), 0.0);
    EXPECT_EQ(g.max(), 0.0);
    g.set(4.0);
    g.set(-2.0);
    g.add(10.0);
    EXPECT_DOUBLE_EQ(g.value(), 8.0);
    EXPECT_DOUBLE_EQ(g.min(), -2.0);
    EXPECT_DOUBLE_EQ(g.max(), 8.0);
}

TEST(Registry, ReturnsStableRefsAndFinds)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("a");
    Counter &b = reg.counter("a");
    EXPECT_EQ(&a, &b); // create-on-first-use, stable thereafter
    a.add(7.0);
    const Counter *found = reg.findCounter("a");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->value(), 7.0);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
    EXPECT_EQ(reg.findGauge("a"), nullptr); // separate namespaces

    reg.gauge("g");
    reg.histogram("h");
    EXPECT_EQ(reg.size(), 3u);
    reg.clear();
    EXPECT_EQ(reg.size(), 0u);
}

TEST(Registry, EnableDisable)
{
    MetricsRegistry on;
    EXPECT_TRUE(on.enabled());
    on.setEnabled(false);
    EXPECT_FALSE(on.enabled());

    MetricsRegistry off(false);
    EXPECT_FALSE(off.enabled());
}

TEST(Registry, VisitsInNameOrder)
{
    MetricsRegistry reg;
    reg.counter("zeta");
    reg.counter("alpha");
    reg.counter("mid");
    std::vector<std::string> names;
    reg.visitCounters(
        [&](const Counter &c) { names.push_back(c.name()); });
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "alpha");
    EXPECT_EQ(names[1], "mid");
    EXPECT_EQ(names[2], "zeta");
}

TEST(Histogram, ExactMoments)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("h");
    h.record(1.0);
    h.record(2.0);
    h.record(4.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 4.0);
    EXPECT_DOUBLE_EQ(h.sum(), 7.0);
    EXPECT_NEAR(h.mean(), 7.0 / 3.0, 1e-12);
}

TEST(Histogram, PercentileAccuracyUniform)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("h");
    for (int i = 1; i <= 10000; ++i)
        h.record(static_cast<double>(i));
    // Bucketing is log-linear with 32 sub-buckets per octave:
    // relative quantile error is bounded by 1/(2*32) ~ 1.6%.
    for (double q : {0.50, 0.90, 0.95, 0.99}) {
        double exact = q * 10000.0;
        EXPECT_NEAR(h.quantile(q), exact, exact * 0.02)
            << "q=" << q;
    }
    // Extreme quantiles clamp to the exact observed range.
    EXPECT_GE(h.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10000.0);
}

TEST(Histogram, PercentileAccuracyWideRange)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("h");
    // Samples spanning twelve decades must keep relative accuracy.
    std::vector<double> vals;
    for (int d = -6; d <= 6; ++d)
        for (int k = 1; k <= 9; ++k)
            vals.push_back(k * std::pow(10.0, d));
    for (double v : vals)
        h.record(v);
    double prev = 0.0;
    for (double q = 0.05; q <= 1.0; q += 0.05) {
        double est = h.quantile(q);
        EXPECT_GE(est, prev); // monotone in q
        EXPECT_GE(est, h.min());
        EXPECT_LE(est, h.max());
        prev = est;
    }
}

TEST(Histogram, ZeroAndNegativeSortFirst)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("h");
    h.record(-1.0);
    h.record(0.0);
    h.record(5.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.min(), -1.0);
    EXPECT_DOUBLE_EQ(h.max(), 5.0);
    // Ranks 1-2 fall in the underflow bucket -> exact minimum.
    EXPECT_DOUBLE_EQ(h.quantile(0.3), -1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.6), -1.0);
    EXPECT_NEAR(h.quantile(1.0), 5.0, 5.0 * 0.02);
}

TEST(Histogram, IgnoresNonFinite)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("h");
    h.record(std::numeric_limits<double>::quiet_NaN());
    h.record(std::numeric_limits<double>::infinity());
    h.record(-std::numeric_limits<double>::infinity());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

/** Assert every brace/bracket in @p json closes in order. */
void
expectBalanced(const std::string &json)
{
    int depth = 0;
    for (char c : json) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Export, JsonContainsAllMetrics)
{
    MetricsRegistry reg;
    reg.counter("link.a.bytes").add(42.0);
    reg.gauge("depth").set(3.0);
    Histogram &h = reg.histogram("step.time");
    h.record(0.5);
    h.record(1.5);

    std::string json = reg.toJson();
    expectBalanced(json);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    // Integral values print without a decimal point.
    EXPECT_NE(json.find("\"link.a.bytes\": 42"), std::string::npos);
    EXPECT_NE(json.find("\"depth\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
}

TEST(Export, JsonEscapesNames)
{
    MetricsRegistry reg;
    reg.counter("weird\"name\\here").add();
    std::string json = reg.toJson();
    expectBalanced(json);
    EXPECT_NE(json.find("weird\\\"name\\\\here"),
              std::string::npos);
}

TEST(Export, JsonParsesAndRoundTripsEscapedNames)
{
    // Stronger than substring checks: the registry export must be
    // *valid* JSON and names with '"' and '\' must survive a full
    // serialise -> parse round trip.
    MetricsRegistry reg;
    reg.counter("weird\"name\\here").add(42.0);
    reg.gauge("plain").set(2.5);
    reg.histogram("h").record(1.0);

    testjson::JsonValue doc;
    ASSERT_NO_THROW(doc = testjson::parseJson(reg.toJson()));
    const auto &counters = doc.at("counters");
    ASSERT_TRUE(counters.has("weird\"name\\here"));
    EXPECT_DOUBLE_EQ(counters.at("weird\"name\\here").number,
                     42.0);
    EXPECT_DOUBLE_EQ(doc.at("gauges").at("plain").at("value")
                         .number,
                     2.5);
    const auto &h = doc.at("histograms").at("h");
    EXPECT_DOUBLE_EQ(h.at("count").number, 1.0);
    EXPECT_TRUE(h.has("p99"));
}

TEST(Export, CsvOneRowPerMetric)
{
    MetricsRegistry reg;
    reg.counter("c1").add(10.0);
    reg.gauge("g1").set(2.5);
    reg.histogram("h1").record(1.0);

    std::string csv = reg.toCsv();
    std::istringstream is(csv);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(is, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u); // header + 3 rows
    EXPECT_EQ(lines[0],
              "type,name,value,count,min,max,mean,p50,p90,p95,p99");
    EXPECT_EQ(lines[1].rfind("counter,c1,10", 0), 0u);
    EXPECT_EQ(lines[2].rfind("gauge,g1,2.5", 0), 0u);
    EXPECT_EQ(lines[3].rfind("histogram,h1,", 0), 0u);
    // Every row has the full column count.
    for (const auto &l : lines) {
        long commas = std::count(l.begin(), l.end(), ',');
        EXPECT_EQ(commas, 10) << l;
    }
}

TEST(TraceCounters, ChromeJsonEmitsCounterEvents)
{
    TraceRecorder rec;
    TraceSpan s;
    s.track = "gpu0.compute";
    s.name = "F0,0";
    s.category = "compute";
    s.end = 0.5;
    rec.record(s);
    rec.recordCounter({"xfer.queue.depth", 0.0, 1.0});
    rec.recordCounter({"xfer.queue.depth", 0.1, 3.0});

    std::string json = rec.toChromeJson();
    expectBalanced(json);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"xfer.queue.depth\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"value\":3}"),
              std::string::npos);
}

TEST(TraceCounters, CountersOnlyTraceIsWellFormed)
{
    TraceRecorder rec;
    rec.recordCounter({"q", 0.0, 1.0});
    EXPECT_FALSE(rec.empty());
    expectBalanced(rec.toChromeJson());
    rec.clear();
    EXPECT_TRUE(rec.empty());
}

TEST(Sampler, CapturesTimelineAndTerminates)
{
    EventQueue queue;
    MetricsRegistry reg;
    Counter &c = reg.counter("work.done");
    // Simulated work: bump the counter at t = 0.025 and t = 0.055.
    queue.scheduleAfter(0.025, [&] { c.add(); });
    queue.scheduleAfter(0.055, [&] { c.add(); });

    MetricsSampler sampler(queue, reg, nullptr, 0.01);
    sampler.start();
    queue.run(); // must terminate: ticks stop once the queue drains

    EXPECT_GE(sampler.ticks(), 6u);
    const auto &samples = sampler.samples();
    ASSERT_FALSE(samples.empty());
    // Samples arrive in time order and end with the final total.
    double last_time = -1.0;
    for (const auto &s : samples) {
        EXPECT_EQ(s.name, "work.done");
        EXPECT_GE(s.time, last_time);
        last_time = s.time;
    }
    EXPECT_DOUBLE_EQ(samples.front().value, 0.0);
    EXPECT_DOUBLE_EQ(samples.back().value, 2.0);
}

TEST(Sampler, FeedsTraceCounterTrack)
{
    EventQueue queue;
    MetricsRegistry reg;
    TraceRecorder trace;
    reg.gauge("depth").set(5.0);
    queue.scheduleAfter(0.02, [] {});

    MetricsSampler sampler(queue, reg, &trace, 0.01);
    sampler.start();
    queue.run();

    ASSERT_FALSE(trace.counters().empty());
    EXPECT_EQ(trace.counters().front().name, "depth");
    EXPECT_DOUBLE_EQ(trace.counters().front().value, 5.0);
    EXPECT_NE(trace.toChromeJson().find("\"ph\":\"C\""),
              std::string::npos);
}

TEST(EndToEnd, MobiusRunPopulatesRegistry)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt3b(), server);
    MobiusPlan plan = planMobius(server, work.cost());

    MetricsRegistry reg;
    RunContext ctx(server, {}, 0.0, &reg);
    MobiusExecutor exec(ctx, work.cost(), plan.partition,
                        plan.mapping);
    StepStats stats = exec.run();
    ASSERT_GT(stats.stepTime, 0.0);

    // Step-time percentile stream.
    const Histogram *step = reg.findHistogram("step.time");
    ASSERT_NE(step, nullptr);
    EXPECT_EQ(step->count(), 1u);
    EXPECT_NEAR(step->quantile(0.5), stats.stepTime,
                stats.stepTime * 0.02);

    // Per-GPU phase accounting matches the usage tracker.
    const Counter *compute = reg.findCounter("gpu0.compute.seconds");
    ASSERT_NE(compute, nullptr);
    EXPECT_NEAR(compute->value(), ctx.usage().computeTime(0), 1e-9);

    // Per-link byte counters cover the recorded traffic.
    double link_bytes = 0.0;
    reg.visitCounters([&](const Counter &c) {
        if (c.name().rfind("link.", 0) == 0)
            link_bytes += c.value();
    });
    EXPECT_GT(link_bytes, 0.0);

    // Every submitted flow completed.
    const Counter *sub = reg.findCounter("xfer.flows.submitted");
    const Counter *done = reg.findCounter("xfer.flows.completed");
    ASSERT_NE(sub, nullptr);
    ASSERT_NE(done, nullptr);
    EXPECT_GT(sub->value(), 0.0);
    EXPECT_DOUBLE_EQ(sub->value(), done->value());

    // Event-queue health counters.
    const Counter *events = reg.findCounter("sim.events.executed");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->value(), 0.0);
}

TEST(EndToEnd, DisabledRegistryStaysEmpty)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt3b(), server);
    MobiusPlan plan = planMobius(server, work.cost());

    MetricsRegistry reg(false);
    RunContext ctx(server, {}, 0.0, &reg);
    MobiusExecutor exec(ctx, work.cost(), plan.partition,
                        plan.mapping);
    StepStats stats = exec.run();
    EXPECT_GT(stats.stepTime, 0.0);
    // Components gate handle creation on enabled(): a disabled
    // registry must see zero metrics after a full run.
    EXPECT_EQ(reg.size(), 0u);
}

TEST(SamplerEdge, NonPositiveIntervalIsAPanic)
{
    EventQueue queue;
    MetricsRegistry reg;
    EXPECT_DEATH(MetricsSampler(queue, reg, nullptr, 0.0),
                 "interval");
    EXPECT_DEATH(MetricsSampler(queue, reg, nullptr, -0.5),
                 "interval");
}

TEST(SamplerEdge, EmptyRegistryStillTicksAndTerminates)
{
    // No metrics to snapshot: the sampler must still follow the
    // queue's lifetime and stop when the simulation drains.
    EventQueue queue;
    MetricsRegistry reg;
    queue.scheduleAfter(0.05, [] {});
    MetricsSampler sampler(queue, reg, nullptr, 0.01);
    sampler.start();
    queue.run();
    EXPECT_GE(sampler.ticks(), 5u);
    EXPECT_TRUE(sampler.samples().empty());
}

TEST(SamplerEdge, LateRegisteredMetricsAppearInLaterSamples)
{
    EventQueue queue;
    MetricsRegistry reg;
    queue.scheduleAfter(0.025,
                        [&] { reg.gauge("late").set(7.0); });
    queue.scheduleAfter(0.06, [] {});
    MetricsSampler sampler(queue, reg, nullptr, 0.01);
    sampler.start();
    queue.run();
    // Samples before 0.025 do not know the gauge; samples after
    // must carry it with the registered value.
    bool before = false, after = false;
    for (const MetricSample &s : sampler.samples()) {
        if (s.name != "late")
            continue;
        if (s.time < 0.025)
            before = true;
        else {
            after = true;
            EXPECT_DOUBLE_EQ(s.value, 7.0);
        }
    }
    EXPECT_FALSE(before);
    EXPECT_TRUE(after);
}

} // namespace
} // namespace mobius
