/**
 * @file
 * Critical-path attribution tests: synthetic span DAGs with known
 * blame tables, the categories-sum-to-step-time invariant on every
 * executor, and the JSON/table render paths.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "json_test_util.hh"
#include "obs/critical_path.hh"
#include "runtime/api.hh"

namespace mobius
{
namespace
{

/** Build a span field-by-field (aggregate init would warn). */
TraceSpan
mkSpan(const std::string &track, const std::string &name,
       const std::string &category, double start, double end)
{
    TraceSpan s;
    s.track = track;
    s.name = name;
    s.category = category;
    s.start = start;
    s.end = end;
    return s;
}

TEST(Attribution, EmptyTraceIsAllZero)
{
    TraceRecorder rec;
    StepAttribution a = attributeStep(rec);
    EXPECT_EQ(a.stepTime, 0.0);
    EXPECT_EQ(a.spanCount, 0u);
    EXPECT_EQ(a.critical.total(), 0.0);
    EXPECT_TRUE(a.path.empty());
}

TEST(Attribution, SingleSpanPlusLeadingIdle)
{
    TraceRecorder rec;
    rec.record(mkSpan("gpu0.compute", "F0,0", "compute", 1.0, 3.0));
    StepAttribution a = attributeStep(rec);
    EXPECT_DOUBLE_EQ(a.stepTime, 3.0);
    EXPECT_DOUBLE_EQ(a.critical.compute, 2.0);
    // The un-caused [0, 1) lead-in is a bubble.
    EXPECT_DOUBLE_EQ(a.critical.bubble, 1.0);
    EXPECT_DOUBLE_EQ(a.critical.total(), a.stepTime);
    ASSERT_EQ(a.path.size(), 1u);
    EXPECT_EQ(a.path[0].name, "F0,0");
}

TEST(Attribution, GapBetweenChainedSpansIsBubble)
{
    TraceRecorder rec;
    SpanId a0 =
        rec.record(mkSpan("gpu0.compute", "A", "compute", 0.0, 1.0));
    TraceSpan b = mkSpan("gpu0.compute", "B", "compute", 2.0, 3.0);
    b.deps = {a0};
    rec.record(b);
    StepAttribution a = attributeStep(rec);
    EXPECT_DOUBLE_EQ(a.stepTime, 3.0);
    EXPECT_DOUBLE_EQ(a.critical.compute, 2.0);
    EXPECT_DOUBLE_EQ(a.critical.bubble, 1.0);
    EXPECT_DOUBLE_EQ(a.critical.total(), a.stepTime);
    ASSERT_EQ(a.path.size(), 2u);
    EXPECT_EQ(a.path[0].name, "B"); // step-end first
    EXPECT_EQ(a.path[1].name, "A");
}

TEST(Attribution, QueueWaitIsContentionNotBubble)
{
    // B was ready at 1.0 (when A ended) but only started at 1.5:
    // the 0.5 s gap has a recorded cause — queueing.
    TraceRecorder rec;
    SpanId a0 =
        rec.record(mkSpan("gpu0.h2d", "A", "transfer", 0.0, 1.0));
    TraceSpan b = mkSpan("gpu0.compute", "B", "compute", 1.5, 2.5);
    b.deps = {a0};
    b.queuedAt = 1.0;
    rec.record(b);
    StepAttribution a = attributeStep(rec);
    EXPECT_DOUBLE_EQ(a.stepTime, 2.5);
    EXPECT_DOUBLE_EQ(a.critical.compute, 1.0);
    EXPECT_DOUBLE_EQ(a.critical.transfer, 1.0);
    EXPECT_DOUBLE_EQ(a.critical.queue, 0.5);
    EXPECT_DOUBLE_EQ(a.critical.bubble, 0.0);
    EXPECT_DOUBLE_EQ(a.critical.total(), a.stepTime);
    EXPECT_DOUBLE_EQ(a.totalQueueWait, 0.5);
}

TEST(Attribution, FairShareStretchCountsAsQueue)
{
    // A transfer that moved bytes worth 1 s at its bottleneck but
    // took 2 s was throttled by fair sharing: 1 s of contention.
    TraceRecorder rec;
    TraceSpan t = mkSpan("gpu0.h2d", "S0.fwd", "transfer", 0.0, 2.0);
    t.work = 1.0;
    rec.record(t);
    StepAttribution a = attributeStep(rec);
    EXPECT_DOUBLE_EQ(a.critical.transfer, 1.0);
    EXPECT_DOUBLE_EQ(a.critical.queue, 1.0);
    EXPECT_DOUBLE_EQ(a.critical.total(), a.stepTime);
    EXPECT_DOUBLE_EQ(a.totalQueueWait, 1.0);
}

TEST(Attribution, BindingDependencyIsLatestEnding)
{
    TraceRecorder rec;
    SpanId a0 =
        rec.record(mkSpan("gpu0.compute", "A", "compute", 0.0, 1.0));
    SpanId b0 =
        rec.record(mkSpan("gpu1.compute", "B", "compute", 0.0, 2.0));
    TraceSpan c = mkSpan("gpu0.compute", "C", "compute", 2.0, 3.0);
    c.deps = {a0, b0};
    rec.record(c);
    StepAttribution a = attributeStep(rec);
    ASSERT_EQ(a.path.size(), 2u);
    EXPECT_EQ(a.path[0].name, "C");
    EXPECT_EQ(a.path[1].name, "B"); // ends later than A
    EXPECT_DOUBLE_EQ(a.critical.total(), a.stepTime);
}

TEST(Attribution, OptimizerAndUnknownCategories)
{
    TraceRecorder rec;
    SpanId a0 = rec.record(
        mkSpan("cpu.optim", "adam l0", "optimizer", 0.0, 1.0));
    TraceSpan b = mkSpan("misc", "X", "mystery", 1.0, 2.0);
    b.deps = {a0};
    rec.record(b);
    StepAttribution a = attributeStep(rec);
    EXPECT_DOUBLE_EQ(a.critical.optimizer, 1.0);
    EXPECT_DOUBLE_EQ(a.critical.other, 1.0);
    EXPECT_DOUBLE_EQ(a.critical.total(), a.stepTime);
}

TEST(Attribution, PerStageAndPerGpuSplits)
{
    TraceRecorder rec;
    TraceSpan f0 =
        mkSpan("gpu0.compute", "F0,0", "compute", 0.0, 1.0);
    f0.gpu = 0;
    f0.stage = 0;
    SpanId id0 = rec.record(f0);
    TraceSpan f1 =
        mkSpan("gpu1.compute", "F1,0", "compute", 1.0, 2.0);
    f1.gpu = 1;
    f1.stage = 1;
    f1.deps = {id0};
    rec.record(f1);
    StepAttribution a = attributeStep(rec);
    ASSERT_TRUE(a.stages.count(0));
    ASSERT_TRUE(a.stages.count(1));
    EXPECT_DOUBLE_EQ(a.stages.at(0).compute, 1.0);
    EXPECT_DOUBLE_EQ(a.stages.at(1).compute, 1.0);
    ASSERT_EQ(a.gpus.size(), 2u);
    // Each GPU computes half the step and idles the other half.
    for (const auto &g : a.gpus) {
        EXPECT_DOUBLE_EQ(g.compute, 1.0);
        EXPECT_DOUBLE_EQ(g.bubble, 1.0);
        EXPECT_DOUBLE_EQ(g.bubbleFraction, 0.5);
    }
}

/** |categories - stepTime| for one executed trace. */
double
sumError(const TraceRecorder &trace)
{
    StepAttribution a = attributeStep(trace);
    EXPECT_GT(a.spanCount, 0u);
    EXPECT_FALSE(a.path.empty());
    return std::fabs(a.critical.total() - a.stepTime);
}

TEST(AttributionExecutors, MobiusSumsToStepTime)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt3b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    RunContext ctx(server);
    MobiusExecutor exec(ctx, work.cost(), plan.partition,
                        plan.mapping);
    exec.run();
    EXPECT_LE(sumError(ctx.trace()), 1e-9);
}

TEST(AttributionExecutors, ZeroSumsToStepTime)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt3b(), server);
    RunContext ctx(server);
    ZeroHeteroExecutor exec(ctx, work.cost());
    exec.run();
    EXPECT_LE(sumError(ctx.trace()), 1e-9);
}

TEST(AttributionExecutors, OneFOneBSumsToStepTime)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt3b(), server);
    Partition p = balancedComputePartition(work.cost(),
                                           server.topo.numGpus());
    Mapping m =
        sequentialMapping(server.topo, server.topo.numGpus());
    RunContext ctx(server);
    PipelineExecutor exec(ctx, work.cost(), p, m,
                          PipelineSchedule::OneFOneB);
    exec.run();
    EXPECT_LE(sumError(ctx.trace()), 1e-9);
}

TEST(AttributionExecutors, TensorParallelSumsToStepTime)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt3b(), server);
    RunContext ctx(server);
    TensorParallelExecutor exec(ctx, work.cost());
    exec.run();
    EXPECT_LE(sumError(ctx.trace()), 1e-9);
}

TEST(AttributionExecutors, CrossMappingReducesQueueWait)
{
    // Eq. 12-13 stated causally: on the same partition, cross
    // mapping spreads adjacent stages across root complexes and
    // total contention-queue wait drops.
    Server server = makeCommodityServer({4, 4});
    Workload work(gpt3b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    auto queueWait = [&](const Mapping &m) {
        RunContext ctx(server);
        MobiusExecutor exec(ctx, work.cost(), plan.partition, m);
        exec.run();
        return attributeStep(ctx.trace()).totalQueueWait;
    };
    double seq = queueWait(
        sequentialMapping(server.topo, plan.stageCount()));
    double cross = queueWait(
        crossMapping(server.topo, plan.stageCount()).mapping);
    EXPECT_LT(cross, seq);
}

TEST(AttributionExport, JsonParsesAndMatchesBreakdown)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt3b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    RunContext ctx(server);
    MobiusExecutor exec(ctx, work.cost(), plan.partition,
                        plan.mapping);
    exec.run();
    StepAttribution a = attributeStep(ctx.trace());

    testjson::JsonValue v;
    ASSERT_NO_THROW(v = testjson::parseJson(
                        attributionToJson(a, 5)));
    EXPECT_DOUBLE_EQ(v.at("stepTime").number, a.stepTime);
    const auto &crit = v.at("critical");
    double sum = crit.at("compute").number +
        crit.at("transfer").number + crit.at("queue").number +
        crit.at("optimizer").number + crit.at("bubble").number +
        crit.at("other").number;
    EXPECT_NEAR(sum, a.stepTime, 1e-9);
    EXPECT_EQ(v.at("gpus").array.size(), a.gpus.size());
    EXPECT_LE(v.at("path").array.size(), 5u);
    // Path entries carry their causal bookkeeping.
    ASSERT_FALSE(v.at("path").array.empty());
    const auto &e = v.at("path")[0];
    EXPECT_TRUE(e.has("queueWait"));
    EXPECT_TRUE(e.has("stretch"));
    EXPECT_TRUE(e.has("category"));
}

TEST(AttributionExport, TableNamesEveryCategory)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt3b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    RunContext ctx(server);
    MobiusExecutor exec(ctx, work.cost(), plan.partition,
                        plan.mapping);
    exec.run();
    std::string t = attributionTable(attributeStep(ctx.trace()));
    for (const char *word :
         {"compute", "transfer", "queue", "bubble", "critical"}) {
        EXPECT_NE(t.find(word), std::string::npos) << word;
    }
}

TEST(AttributionMetrics, RegistryGetsCriticalCounters)
{
    Server server = makeCommodityServer({2, 2});
    Workload work(gpt3b(), server);
    MobiusPlan plan = planMobius(server, work.cost());
    MetricsRegistry reg;
    RunContext ctx(server, {}, 0.0, &reg);
    MobiusExecutor exec(ctx, work.cost(), plan.partition,
                        plan.mapping);
    StepStats stats = exec.run();

    double sum = 0.0;
    for (const char *name :
         {"attrib.critical.compute.seconds",
          "attrib.critical.transfer.seconds",
          "attrib.critical.queue.seconds",
          "attrib.critical.optimizer.seconds",
          "attrib.critical.bubble.seconds"}) {
        const Counter *c = reg.findCounter(name);
        ASSERT_NE(c, nullptr) << name;
        sum += c->value();
    }
    // "other" is not exported as a counter; tolerate it.
    EXPECT_NEAR(sum, stats.stepTime, 1e-6);
    ASSERT_NE(reg.findCounter("attrib.queue.total.seconds"),
              nullptr);
    ASSERT_NE(reg.findGauge("gpu0.bubble.fraction"), nullptr);
}

} // namespace
} // namespace mobius
