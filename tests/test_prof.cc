/**
 * @file
 * Host self-profiler tests (obs/prof.hh): exact nested self-time
 * accounting under deterministic clocks, byte-identical merged
 * output across JobPump thread widths, allocation-free zones when
 * disabled (and in the enabled steady state), and the prof.* metrics
 * export.
 */

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "obs/prof.hh"
#include "simcore/job_pump.hh"

// Global allocation counter for the allocation-free-zone tests.
// Counting is the only side effect; allocation still goes through
// malloc, so every other test in this binary is unaffected.
// GCC flags free() on new-ed pointers without seeing that the
// matching operator new below is malloc-backed.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
static std::atomic<std::size_t> g_new_calls{0};

void *
operator new(std::size_t n)
{
    g_new_calls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace
{

using namespace mobius;

// Deterministic clocks: each read advances a thread-local counter by
// an exactly-representable step, so zone durations are fixed deltas
// that do not depend on thread start offsets or scheduling.
thread_local double t_wall = 0.0;
thread_local double t_cpu = 0.0;

double
fakeWall()
{
    t_wall += 1.0;
    return t_wall;
}

double
fakeCpu()
{
    t_cpu += 0.25;
    return t_cpu;
}

/** Reset the profiler, install fake clocks, enable; undo on exit. */
class ProfSandbox
{
  public:
    ProfSandbox()
    {
        prof::reset();
        prof::setClocksForTest(fakeWall, fakeCpu);
        prof::setEnabled(true);
    }

    ~ProfSandbox()
    {
        prof::setEnabled(false);
        prof::setClocksForTest(nullptr, nullptr);
        prof::reset();
    }
};

TEST(Prof, NestedSelfTimesSumExactly)
{
    ProfSandbox sandbox;
    {
        MOBIUS_PROF_ZONE("t.a");
        {
            MOBIUS_PROF_ZONE("t.b");
        }
        {
            MOBIUS_PROF_ZONE("t.b");
        }
        {
            MOBIUS_PROF_ZONE("t.c");
        }
    }
    prof::setEnabled(false);
    prof::Snapshot snap = prof::snapshot();

    // Depth-first, siblings name-sorted: t.a, t.a;t.b, t.a;t.c.
    ASSERT_EQ(snap.zones.size(), 3u);
    const prof::ZoneStats &a = snap.zones[0];
    const prof::ZoneStats &b = snap.zones[1];
    const prof::ZoneStats &c = snap.zones[2];
    EXPECT_EQ(a.path, "t.a");
    EXPECT_EQ(b.path, "t.a;t.b");
    EXPECT_EQ(c.path, "t.a;t.c");
    EXPECT_EQ(a.depth, 0);
    EXPECT_EQ(b.depth, 1);
    EXPECT_EQ(c.depth, 1);
    EXPECT_EQ(a.count, 1u);
    EXPECT_EQ(b.count, 2u);
    EXPECT_EQ(c.count, 1u);

    // Wall reads advance by exactly 1.0: the three inner zones last
    // 1.0 each (enter + leave read), t.a spans reads 1..8 = 7.0.
    EXPECT_EQ(a.wallTotal, 7.0);
    EXPECT_EQ(b.wallTotal, 2.0);
    EXPECT_EQ(c.wallTotal, 1.0);
    EXPECT_EQ(a.wallSelf, 7.0 - 3.0);
    EXPECT_EQ(b.wallSelf, b.wallTotal); // leaves: self == total
    EXPECT_EQ(c.wallSelf, c.wallTotal);
    EXPECT_EQ(a.wallMax, 7.0);
    EXPECT_EQ(b.wallMax, 1.0);

    // CPU reads advance by exactly 0.25.
    EXPECT_EQ(a.cpuTotal, 1.75);
    EXPECT_EQ(b.cpuTotal, 0.5);
    EXPECT_EQ(c.cpuTotal, 0.25);
    EXPECT_EQ(a.cpuSelf, 1.0);

    // The headline invariant: self times sum exactly to the root
    // total (identical floating-point order, zero drift here).
    EXPECT_EQ(snap.wallTotalRoots(), 7.0);
    EXPECT_EQ(snap.wallSelfSum(), 7.0);
    EXPECT_EQ(snap.selfSumDrift(), 0.0);
    EXPECT_EQ(snap.threads, 1);
}

/**
 * Run a profiled job batch through a JobPump at @p threads and
 * @return the rendered table plus folded stacks.
 */
std::string
pumpProfile(int threads)
{
    ProfSandbox sandbox;
    constexpr std::size_t kJobs = 12;
    {
        JobPump pump(
            kJobs,
            [](std::size_t i) {
                MOBIUS_PROF_ZONE("t.job");
                if (i % 2) {
                    MOBIUS_PROF_ZONE("t.odd");
                } else {
                    MOBIUS_PROF_ZONE("t.even");
                }
            },
            threads);
        for (std::size_t i = 0; i < kJobs; ++i)
            pump.enqueue(i);
        pump.drain();
    } // joins the workers; no zone is open past this point
    prof::setEnabled(false);
    prof::Snapshot snap = prof::snapshot();
    return prof::table(snap) + folded(snap);
}

TEST(Prof, MergedOutputByteIdenticalAcrossPumpWidths)
{
    // Same jobs, same deterministic per-thread clocks: the merged
    // table and folded stacks must not depend on how the pump
    // spreads jobs over workers. threads: 1 = inline on the consumer
    // thread, 4 = fixed pool, 0 = hardware concurrency.
    std::string one = pumpProfile(1);
    EXPECT_EQ(one, pumpProfile(4));
    EXPECT_EQ(one, pumpProfile(0));
    // Sanity: the pump's own zone wraps the job bodies.
    EXPECT_NE(one.find("simcore.pump_job"), std::string::npos);
    EXPECT_NE(one.find("t.job"), std::string::npos);
}

TEST(Prof, DisabledZoneAllocatesNothing)
{
    prof::setEnabled(false);
    auto zoneOnce = [] { MOBIUS_PROF_ZONE("t.disabled"); };
    zoneOnce(); // first execution registers the static Site
    std::size_t before = g_new_calls.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i)
        zoneOnce();
    EXPECT_EQ(g_new_calls.load(std::memory_order_relaxed), before);
}

TEST(Prof, EnabledSteadyStateAllocatesNothing)
{
    ProfSandbox sandbox;
    auto zoneOnce = [] {
        MOBIUS_PROF_ZONE("t.steady");
        MOBIUS_PROF_ZONE("t.steady.inner");
    };
    // First pass pays the one-time costs: site registration, thread
    // registration, node creation, stack growth.
    zoneOnce();
    std::size_t before = g_new_calls.load(std::memory_order_relaxed);
    for (int i = 0; i < 1000; ++i)
        zoneOnce();
    EXPECT_EQ(g_new_calls.load(std::memory_order_relaxed), before);
}

TEST(Prof, MetricsExportCarriesZonesAndRollups)
{
    ProfSandbox sandbox;
    {
        MOBIUS_PROF_ZONE("t.export");
        {
            MOBIUS_PROF_ZONE("t.child");
        }
    }
    prof::setEnabled(false);
    prof::Snapshot snap = prof::snapshot();

    MetricsRegistry registry;
    exportProfSnapshot(snap, registry);
    // Path separator ';' becomes '.' in metric names.
    EXPECT_EQ(registry.counter("prof.t.export.calls").value(), 1.0);
    EXPECT_EQ(registry.counter("prof.t.export.t.child.calls").value(),
              1.0);
    EXPECT_EQ(registry.gauge("prof.t.export.wall_seconds").value(),
              3.0);
    EXPECT_EQ(registry.gauge("prof.t.export.self_seconds").value(),
              2.0);
    EXPECT_EQ(registry.gauge("prof.threads").value(), 1.0);
    EXPECT_EQ(registry.gauge("prof.wall_total_seconds").value(), 3.0);
}

} // namespace
