/**
 * @file
 * Tests for the fleet simulator stack: the single-flight plan
 * cache (hit vs miss span-for-span identity, deterministic
 * counters), the canonical job keys, scheduler edge cases (empty
 * fleet, simultaneous-arrival tie-breaks, head-of-line blocking vs
 * backfill, priority preemption), and the fleet determinism
 * contract — metrics bit-identical across thread widths and with
 * the plan cache on or off.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "fleet/fleet_sim.hh"
#include "fleet/job.hh"
#include "fleet/plan_cache.hh"
#include "fleet/scheduler.hh"
#include "obs/metrics.hh"

namespace mobius
{
namespace
{

/** Small Mobius job used throughout: gpt3b on a 2+2 commodity box. */
JobSpec
smallJob()
{
    JobSpec spec;
    spec.model = gpt3b();
    spec.groups = {2, 2};
    spec.steps = 1;
    return spec;
}

TEST(SingleFlightCache, SolvesOncePerKeyAndCountsDeterministically)
{
    SingleFlightCache<int> cache;
    std::atomic<int> solves{0};
    auto solve = [&] {
        ++solves;
        return 42;
    };
    bool hit = true;
    EXPECT_EQ(cache.get("k", solve, &hit), 42);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.get("k", solve, &hit), 42);
    EXPECT_TRUE(hit);
    EXPECT_EQ(cache.get("other", solve, &hit), 42);
    EXPECT_FALSE(hit);
    EXPECT_EQ(solves, 2);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(SingleFlightCache, ConcurrentGetsShareOneSolve)
{
    SingleFlightCache<int> cache;
    std::atomic<int> solves{0};
    const int n = 8;
    std::vector<std::thread> threads;
    std::vector<int> got(n, 0);
    for (int t = 0; t < n; ++t)
        threads.emplace_back([&, t] {
            got[static_cast<std::size_t>(t)] = cache.get("key", [&] {
                ++solves;
                return 7;
            });
        });
    for (auto &th : threads)
        th.join();
    // Single-flight: every caller saw the one solved value, and
    // misses equal distinct keys no matter the interleaving.
    EXPECT_EQ(solves, 1);
    for (int v : got)
        EXPECT_EQ(v, 7);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, static_cast<std::uint64_t>(n - 1));
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(),
                     static_cast<double>(n - 1) / n);
}

TEST(JobKeys, PlanKeyCoversPlannerInputsOnly)
{
    JobSpec a = smallJob();
    JobSpec b = a;
    // Fleet metadata the planner never reads must not split keys.
    b.id = 99;
    b.name = "other";
    b.arrival = 17.0;
    b.priority = 3;
    b.steps = 12;
    b.faultSeed = 1234;
    EXPECT_EQ(jobPlanKey(a), jobPlanKey(b));

    // Every planner-relevant input must split the key.
    JobSpec c = a;
    c.groups = {4};
    EXPECT_NE(jobPlanKey(a), jobPlanKey(c));
    JobSpec d = a;
    d.model = gpt8b();
    EXPECT_NE(jobPlanKey(a), jobPlanKey(d));
    JobSpec e = a;
    e.microbatchSize = 2 * a.model.microbatchSize; // != Table 3 default
    EXPECT_NE(jobPlanKey(a), jobPlanKey(e));
    JobSpec f = a;
    f.mapping = MappingAlgo::Sequential;
    EXPECT_NE(jobPlanKey(a), jobPlanKey(f));
    JobSpec g = a;
    g.dataCenter = true;
    g.groups = {4};
    EXPECT_NE(jobPlanKey(a), jobPlanKey(g));

    // The sim key adds what only the simulation reads.
    JobSpec h = a;
    h.system = JobSystem::DeepSpeed;
    EXPECT_EQ(jobPlanKey(a), jobPlanKey(h));
    EXPECT_NE(jobSimKey(a), jobSimKey(h));
    JobSpec i = a;
    i.faultSeed = 77;
    EXPECT_NE(jobSimKey(a), jobSimKey(i));
}

/**
 * The PlanCache correctness contract: a simulation driven by a
 * cached plan is span-for-span identical to one driven by a fresh
 * solve — same trace digest, same step time, bit for bit.
 */
TEST(PlanCacheContract, HitIsSpanForSpanIdenticalToFreshSolve)
{
    JobSpec spec = smallJob();
    PlanCache cache;
    JobStepResult miss = simulateJobStep(spec, &cache);
    EXPECT_FALSE(miss.planCacheHit);
    JobStepResult hit = simulateJobStep(spec, &cache);
    EXPECT_TRUE(hit.planCacheHit);
    EXPECT_EQ(hit.planSeconds, 0.0);
    JobStepResult fresh = simulateJobStep(spec, nullptr);

    ASSERT_GT(miss.spanCount, 0u);
    EXPECT_EQ(hit.spanCount, miss.spanCount);
    EXPECT_EQ(hit.spanHash, miss.spanHash);
    EXPECT_EQ(fresh.spanHash, miss.spanHash);
    EXPECT_EQ(hit.stats.stepTime, miss.stats.stepTime);
    EXPECT_EQ(fresh.stats.stepTime, miss.stats.stepTime);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(FleetSim, EmptyFleetReducesToZeroMetrics)
{
    FleetSim fleet;
    FleetMetrics m = fleet.run();
    EXPECT_EQ(m.jobs, 0u);
    EXPECT_EQ(m.completed, 0u);
    EXPECT_EQ(m.makespan, 0.0);
    EXPECT_EQ(m.jctP50, 0.0);
    EXPECT_EQ(m.utilization, 0.0);
    EXPECT_EQ(m.goodput, 0.0);
    EXPECT_EQ(m.planHits, 0u);
    EXPECT_EQ(m.planMisses, 0u);
    EXPECT_TRUE(fleet.records().empty());
    // The empty fingerprint is still defined (digest of zero jobs).
    FleetSim again;
    EXPECT_EQ(again.run().fingerprint, m.fingerprint);
}

TEST(FleetSim, UnknownServerClassIsFatalAtSubmit)
{
    FleetSim fleet;
    JobSpec spec = smallJob();
    spec.serverClass = "no-such-class";
    EXPECT_THROW(fleet.submit(spec), FatalError);
}

TEST(FleetSim, SimultaneousArrivalsAreTieBrokenByJobId)
{
    // One server, three jobs arriving at the same instant: they must
    // serialize in job-id order, each starting when the previous
    // finishes.
    FleetOptions opts;
    opts.threads = 1;
    FleetSim fleet(opts);
    JobSpec proto = smallJob();
    proto.arrival = 1.0;
    for (int i = 0; i < 3; ++i)
        fleet.submit(proto);
    FleetMetrics m = fleet.run();
    EXPECT_EQ(m.completed, 3u);
    const auto &recs = fleet.records();
    ASSERT_EQ(recs.size(), 3u);
    double step = recs[0].stepTime;
    ASSERT_GT(step, 0.0);
    EXPECT_DOUBLE_EQ(recs[0].start, 1.0);
    EXPECT_DOUBLE_EQ(recs[1].start, 1.0 + step);
    EXPECT_NEAR(recs[2].start, 1.0 + 2 * step, 1e-9);
    EXPECT_NEAR(recs[2].queueDelay, 2 * step, 1e-9);
    // One server busy end to end: utilization is the occupied
    // fraction of the span from t=0 to the last finish.
    EXPECT_NEAR(m.makespan, 1.0 + 3 * step, 1e-9);
    EXPECT_NEAR(m.utilization, 3 * step / m.makespan, 1e-9);
}

TEST(FleetSim, BlockedHeadBlocksOtherClassesOnlyWithoutBackfill)
{
    // Two classes, one server each. Job 0 occupies "commodity";
    // job 1 (same class) is blocked at the head of the queue; job 2
    // wants the idle "dc" server.
    struct Outcome
    {
        FleetMetrics m;
        std::vector<FleetJobRecord> recs;
    };
    auto run = [](bool backfill) {
        FleetOptions opts;
        opts.threads = 1;
        opts.backfill = backfill;
        opts.servers.push_back({"commodity", {2, 2}, false, 1});
        opts.servers.push_back({"dc", {4}, true, 1});
        FleetSim fleet(opts);
        JobSpec a = smallJob();
        fleet.submit(a); // job 0: starts at 0
        a.arrival = 0.5;
        fleet.submit(a); // job 1: blocked behind job 0
        JobSpec b = smallJob();
        b.serverClass = "dc";
        b.arrival = 0.6;
        fleet.submit(b); // job 2: idle dc server available
        Outcome out;
        out.m = fleet.run();
        out.recs = fleet.records();
        return out;
    };

    Outcome fifo = run(false);
    double step0 = fifo.recs[0].stepTime;
    ASSERT_GT(step0, 0.6);
    // Strict FIFO: the blocked head holds job 2 back too.
    EXPECT_DOUBLE_EQ(fifo.recs[2].start, step0);
    EXPECT_EQ(fifo.m.sched.backfills, 0u);

    Outcome easy = run(true);
    // EASY-lite: job 2 jumps the blocked commodity head and starts
    // at its own arrival on the idle dc machine.
    EXPECT_DOUBLE_EQ(easy.recs[2].start, 0.6);
    EXPECT_EQ(easy.m.sched.backfills, 1u);
    // Within the blocked class, FIFO order is preserved.
    EXPECT_DOUBLE_EQ(easy.recs[1].start, step0);
}

TEST(FleetSim, PreemptionEvictsLowerPriorityAndDocksWholeSteps)
{
    FleetOptions opts;
    opts.threads = 1;
    opts.preemption = true;
    FleetSim fleet(opts);
    JobSpec low = smallJob();
    low.steps = 3;
    low.priority = 5;
    fleet.submit(low);
    JobSpec high = smallJob();
    high.steps = 1;
    high.priority = 0;
    high.arrival = 0.25;
    fleet.submit(high);
    FleetMetrics m = fleet.run();
    EXPECT_EQ(m.completed, 2u);
    EXPECT_EQ(m.sched.preemptions, 1u);
    const auto &recs = fleet.records();
    EXPECT_EQ(recs[0].preemptions, 1);
    EXPECT_EQ(recs[1].preemptions, 0);
    // The high-priority job starts at its arrival, on the server it
    // just evicted the victim from.
    EXPECT_DOUBLE_EQ(recs[1].start, 0.25);
    double step = recs[0].stepTime;
    ASSERT_GT(step, 0.25);
    // The victim had finished 0 whole steps at t=0.25, so it
    // restarts from scratch after the high job's single step and
    // still runs all 3 steps; occupancy counts both stints.
    EXPECT_DOUBLE_EQ(recs[0].finish, 0.25 + step + 3 * step);
    EXPECT_NEAR(recs[0].occupiedSeconds, 0.25 + 3 * step, 1e-9);
    EXPECT_GT(recs[0].finish, recs[1].finish);
}

/** Run one mixed fleet and return its metrics. */
FleetMetrics
mixedFleet(int threads, bool plan_cache, std::uint64_t *fp_jobs = nullptr)
{
    FleetOptions opts;
    opts.threads = threads;
    opts.planCache = plan_cache;
    opts.preemption = true;
    opts.backfill = true;
    opts.servers.push_back({"commodity", {2, 2}, false, 2});
    FleetSim fleet(opts);
    JobSpec proto = smallJob();
    proto.steps = 2;
    fleet.submitPoisson(proto, 8, 2.0, 42);
    // A couple of high-priority latecomers to exercise eviction.
    JobSpec vip = smallJob();
    vip.priority = -1;
    vip.arrival = 1.0;
    fleet.submit(vip);
    vip.arrival = 1.0; // simultaneous VIPs: id tie-break
    fleet.submit(vip);
    FleetMetrics m = fleet.run();
    if (fp_jobs)
        *fp_jobs = m.jobs;
    return m;
}

TEST(FleetSim, MetricsBitIdenticalAcrossThreadWidths)
{
    FleetMetrics serial = mixedFleet(1, true);
    FleetMetrics wide = mixedFleet(4, true);
    EXPECT_EQ(serial.fingerprint, wide.fingerprint);
    EXPECT_EQ(serial.jctP50, wide.jctP50);
    EXPECT_EQ(serial.jctP99, wide.jctP99);
    EXPECT_EQ(serial.waitP99, wide.waitP99);
    EXPECT_EQ(serial.makespan, wide.makespan);
    EXPECT_EQ(serial.utilization, wide.utilization);
    EXPECT_EQ(serial.sched.preemptions, wide.sched.preemptions);
    EXPECT_GT(serial.sched.preemptions, 0u);
    // The single-flight cache keeps hit/miss counts deterministic
    // too: misses always equal distinct plan keys.
    EXPECT_EQ(serial.planMisses, wide.planMisses);
    EXPECT_EQ(serial.planHits, wide.planHits);
}

TEST(FleetSim, MetricsBitIdenticalWithPlanCacheOnOrOff)
{
    FleetMetrics cached = mixedFleet(2, true);
    FleetMetrics uncached = mixedFleet(2, false);
    EXPECT_EQ(cached.fingerprint, uncached.fingerprint);
    EXPECT_EQ(cached.makespan, uncached.makespan);
    EXPECT_GT(cached.planHits, 0u);
    EXPECT_EQ(cached.planMisses, 1u); // one distinct plan key
    EXPECT_EQ(uncached.planHits, 0u);
    EXPECT_EQ(uncached.planMisses, 0u);
}

TEST(FleetSim, PoissonSubmissionIsDeterministicPerSeed)
{
    auto arrivals = [](std::uint64_t seed) {
        FleetOptions opts;
        opts.threads = 1;
        FleetSim fleet(opts);
        JobSpec proto = smallJob();
        fleet.submitPoisson(proto, 6, 3.0, seed);
        fleet.run();
        std::vector<double> out;
        for (const auto &r : fleet.records())
            out.push_back(r.arrival);
        return out;
    };
    std::vector<double> a = arrivals(7);
    EXPECT_EQ(a, arrivals(7));
    EXPECT_NE(a, arrivals(8));
    // Arrivals are sorted (gaps are appended) and strictly positive.
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GT(a[i], a[i - 1]);
}

TEST(FleetSim, CleanFleetHasUnitGoodputAndFaultedFleetLess)
{
    FleetOptions opts;
    opts.threads = 1;
    FleetSim clean(opts);
    JobSpec proto = smallJob();
    proto.steps = 2;
    for (int i = 0; i < 3; ++i)
        clean.submit(proto);
    FleetMetrics mc = clean.run();
    // Without faults every occupied second is useful work (up to
    // event-time rounding).
    EXPECT_NEAR(mc.goodput, 1.0, 1e-9);

    FleetOptions fopts;
    fopts.threads = 1;
    fopts.faults.xfailProb = 0.05;
    fopts.faults.retryBudget = 10;
    fopts.faults.retryBackoff = 1e-4;
    FleetSim faulted(fopts);
    for (int i = 0; i < 3; ++i) {
        proto.faultSeed = 100 + static_cast<std::uint64_t>(i);
        faulted.submit(proto);
    }
    FleetMetrics mfault = faulted.run();
    EXPECT_GT(mfault.goodput, 0.0);
    EXPECT_LT(mfault.goodput, 1.0);
    // Faulted steps are slower than their clean baseline.
    for (const auto &r : faulted.records())
        EXPECT_GT(r.stepTime, r.cleanStepTime);
}

TEST(FleetSim, PopulatesMetricsRegistry)
{
    MetricsRegistry reg;
    FleetOptions opts;
    opts.threads = 1;
    opts.metrics = &reg;
    FleetSim fleet(opts);
    JobSpec proto = smallJob();
    for (int i = 0; i < 2; ++i)
        fleet.submit(proto);
    FleetMetrics m = fleet.run();
    EXPECT_EQ(reg.counter("fleet.jobs").value(),
              static_cast<double>(m.jobs));
    EXPECT_EQ(reg.counter("fleet.completed").value(),
              static_cast<double>(m.completed));
    EXPECT_EQ(reg.counter("fleet.plan.hits").value(),
              static_cast<double>(m.planHits));
    EXPECT_EQ(reg.histogram("fleet.jct").count(), m.completed);
    EXPECT_EQ(reg.histogram("fleet.wait").count(), m.completed);
    EXPECT_EQ(reg.gauge("fleet.makespan").value(), m.makespan);
    EXPECT_EQ(reg.gauge("fleet.goodput").value(), m.goodput);
}

TEST(ExactQuantile, InterpolatesAndHandlesEdges)
{
    EXPECT_EQ(exactQuantile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(exactQuantile({3.0}, 0.0), 3.0);
    EXPECT_DOUBLE_EQ(exactQuantile({3.0}, 1.0), 3.0);
    std::vector<double> v{4.0, 1.0, 3.0, 2.0}; // unsorted on purpose
    EXPECT_DOUBLE_EQ(exactQuantile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(exactQuantile(v, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(exactQuantile(v, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(exactQuantile(v, 1.0 / 3.0), 2.0);
    EXPECT_DOUBLE_EQ(exactQuantile(v, 0.99), 3.97);
}

} // namespace
} // namespace mobius
