/**
 * @file
 * Unit and property tests for the max-min fair rate allocator.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "xfer/fair_share.hh"

namespace mobius
{
namespace
{

TEST(FairShare, SingleFlowGetsFullLink)
{
    std::vector<FairShareFlow> flows{{{0}, 0.0}};
    auto rates = maxMinFairRates(flows, {10.0});
    ASSERT_EQ(rates.size(), 1u);
    EXPECT_NEAR(rates[0], 10.0, 1e-6);
}

TEST(FairShare, TwoFlowsSplitSharedLink)
{
    // The paper's root-complex contention: two GPUs sharing one root
    // complex each see half the bandwidth (§2.2, Fig. 2).
    std::vector<FairShareFlow> flows{{{0}, 0.0}, {{0}, 0.0}};
    auto rates = maxMinFairRates(flows, {13.1});
    EXPECT_NEAR(rates[0], 6.55, 1e-6);
    EXPECT_NEAR(rates[1], 6.55, 1e-6);
}

TEST(FairShare, BottleneckOnSharedMiddleLink)
{
    // flows: A uses pools {0, 2}; B uses pools {1, 2}; pool 2 shared.
    std::vector<FairShareFlow> flows{{{0, 2}, 0.0}, {{1, 2}, 0.0}};
    auto rates = maxMinFairRates(flows, {10.0, 10.0, 8.0});
    EXPECT_NEAR(rates[0], 4.0, 1e-6);
    EXPECT_NEAR(rates[1], 4.0, 1e-6);
}

TEST(FairShare, MaxMinRedistributesResidual)
{
    // Classic max-min example: flow 0 capped by its private narrow
    // link; flows 1 and 2 share the residual of the big link.
    // pools: 0 (cap 2), 1 (cap 12). Flow0: {0,1}; Flow1: {1}; Flow2: {1}.
    std::vector<FairShareFlow> flows{
        {{0, 1}, 0.0}, {{1}, 0.0}, {{1}, 0.0}};
    auto rates = maxMinFairRates(flows, {2.0, 12.0});
    EXPECT_NEAR(rates[0], 2.0, 1e-6);
    EXPECT_NEAR(rates[1], 5.0, 1e-6);
    EXPECT_NEAR(rates[2], 5.0, 1e-6);
}

TEST(FairShare, RateCapHonored)
{
    std::vector<FairShareFlow> flows{{{0}, 3.0}, {{0}, 0.0}};
    auto rates = maxMinFairRates(flows, {10.0});
    EXPECT_NEAR(rates[0], 3.0, 1e-6);
    EXPECT_NEAR(rates[1], 7.0, 1e-6);
}

TEST(FairShare, AsymmetricPathsFourFlows)
{
    // Two flows on each of two disjoint links: independent halves.
    std::vector<FairShareFlow> flows{
        {{0}, 0.0}, {{0}, 0.0}, {{1}, 0.0}, {{1}, 0.0}};
    auto rates = maxMinFairRates(flows, {10.0, 4.0});
    EXPECT_NEAR(rates[0], 5.0, 1e-6);
    EXPECT_NEAR(rates[1], 5.0, 1e-6);
    EXPECT_NEAR(rates[2], 2.0, 1e-6);
    EXPECT_NEAR(rates[3], 2.0, 1e-6);
}

/** Property: allocations never violate pool capacities. */
class FairShareRandom : public ::testing::TestWithParam<int>
{
};

TEST_P(FairShareRandom, CapacityAndEfficiencyInvariants)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const int npools = 2 + static_cast<int>(rng.below(6));
    std::vector<double> cap;
    for (int p = 0; p < npools; ++p)
        cap.push_back(rng.uniform(1.0, 20.0));

    const int nflows = 1 + static_cast<int>(rng.below(10));
    std::vector<FairShareFlow> flows;
    for (int f = 0; f < nflows; ++f) {
        FairShareFlow fl;
        int hops = 1 + static_cast<int>(rng.below(3));
        for (int h = 0; h < hops; ++h) {
            int p = static_cast<int>(rng.below(npools));
            bool dup = false;
            for (int q : fl.pools)
                dup |= (q == p);
            if (!dup)
                fl.pools.push_back(p);
        }
        if (rng.below(4) == 0)
            fl.rateCap = rng.uniform(0.5, 10.0);
        flows.push_back(fl);
    }

    auto rates = maxMinFairRates(flows, cap);
    ASSERT_EQ(rates.size(), flows.size());

    // 1. No pool over capacity.
    std::vector<double> used(cap.size(), 0.0);
    for (std::size_t f = 0; f < flows.size(); ++f) {
        for (int p : flows[f].pools)
            used[p] += rates[f];
    }
    for (std::size_t p = 0; p < cap.size(); ++p)
        EXPECT_LE(used[p], cap[p] + 1e-5);

    // 2. No cap violated; every rate positive.
    for (std::size_t f = 0; f < flows.size(); ++f) {
        EXPECT_GT(rates[f], 0.0);
        if (flows[f].rateCap > 0) {
            EXPECT_LE(rates[f], flows[f].rateCap + 1e-6);
        }
    }

    // 3. Pareto efficiency: every flow is blocked by a saturated
    // pool or its own cap (no free capacity left on its whole path).
    for (std::size_t f = 0; f < flows.size(); ++f) {
        bool blocked = flows[f].rateCap > 0 &&
            rates[f] >= flows[f].rateCap - 1e-5;
        for (int p : flows[f].pools) {
            if (used[p] >= cap[p] - std::max(1e-5, 1e-5 * cap[p]))
                blocked = true;
        }
        EXPECT_TRUE(blocked) << "flow " << f << " not bottlenecked";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FairShareRandom,
                         ::testing::Range(0, 25));

TEST(FairShare, ReportsComponentCount)
{
    // Two disjoint links, two flows each -> two components; a flow
    // bridging both links merges them into one.
    std::vector<FairShareFlow> flows{
        {{0}, 0.0}, {{0}, 0.0}, {{1}, 0.0}, {{1}, 0.0}};
    FairShareStats stats;
    maxMinFairRates(flows, {10.0, 4.0}, &stats);
    EXPECT_EQ(stats.components, 2);

    flows.push_back({{0, 1}, 0.0});
    maxMinFairRates(flows, {10.0, 4.0}, &stats);
    EXPECT_EQ(stats.components, 1);
}

/**
 * The decomposition invariant the incremental transfer engine builds
 * on: a component's rates depend only on its own flows — solving the
 * whole problem and solving one component in isolation must agree
 * *exactly* (==), not merely within a tolerance.
 */
TEST_P(FairShareRandom, ComponentSolvesMatchFullSolveExactly)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
    const int npools = 4 + static_cast<int>(rng.below(6));
    std::vector<double> cap;
    for (int p = 0; p < npools; ++p)
        cap.push_back(rng.uniform(1.0, 20.0));

    const int nflows = 2 + static_cast<int>(rng.below(12));
    std::vector<FairShareFlow> flows;
    for (int f = 0; f < nflows; ++f) {
        FairShareFlow fl;
        int hops = 1 + static_cast<int>(rng.below(3));
        for (int h = 0; h < hops; ++h) {
            int p = static_cast<int>(rng.below(npools));
            bool dup = false;
            for (int q : fl.pools)
                dup |= (q == p);
            if (!dup)
                fl.pools.push_back(p);
        }
        if (rng.below(4) == 0)
            fl.rateCap = rng.uniform(0.5, 10.0);
        flows.push_back(fl);
    }
    auto full = maxMinFairRates(flows, cap);

    // Discover components the same way the transfer engine does:
    // BFS over "shares a pool".
    std::vector<int> comp(flows.size(), -1);
    int ncomp = 0;
    for (std::size_t f = 0; f < flows.size(); ++f) {
        if (comp[f] >= 0)
            continue;
        int c = ncomp++;
        std::vector<std::size_t> work{f};
        comp[f] = c;
        while (!work.empty()) {
            std::size_t cur = work.back();
            work.pop_back();
            for (std::size_t g = 0; g < flows.size(); ++g) {
                if (comp[g] >= 0)
                    continue;
                bool shares = false;
                for (int p : flows[cur].pools)
                    for (int q : flows[g].pools)
                        shares |= (p == q);
                if (shares) {
                    comp[g] = c;
                    work.push_back(g);
                }
            }
        }
    }

    // Re-solve each component alone (same flow order, same pool ids)
    // and demand bitwise agreement with the full solve.
    for (int c = 0; c < ncomp; ++c) {
        std::vector<FairShareFlow> sub;
        std::vector<std::size_t> idx;
        for (std::size_t f = 0; f < flows.size(); ++f) {
            if (comp[f] == c) {
                sub.push_back(flows[f]);
                idx.push_back(f);
            }
        }
        auto part = maxMinFairRates(sub, cap);
        for (std::size_t i = 0; i < idx.size(); ++i)
            EXPECT_EQ(part[i], full[idx[i]])
                << "flow " << idx[i] << " component " << c;
    }
}

/**
 * Randomized add/remove churn on a flow set, re-solved after every
 * change. Simulating the engine's incremental update — re-solving
 * only the changed flow's component and keeping every other rate —
 * must exactly match a from-scratch solve of the whole set at every
 * step.
 */
TEST_P(FairShareRandom, IncrementalChurnMatchesFullRecompute)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
    const int npools = 3 + static_cast<int>(rng.below(5));
    std::vector<double> cap;
    for (int p = 0; p < npools; ++p)
        cap.push_back(rng.uniform(1.0, 20.0));

    std::vector<FairShareFlow> active;
    std::vector<double> rates; // maintained incrementally
    for (int step = 0; step < 40; ++step) {
        std::vector<int> changed_pools;
        if (active.empty() || rng.below(2) == 0) {
            FairShareFlow fl;
            int hops = 1 + static_cast<int>(rng.below(3));
            for (int h = 0; h < hops; ++h) {
                int p = static_cast<int>(rng.below(npools));
                bool dup = false;
                for (int q : fl.pools)
                    dup |= (q == p);
                if (!dup)
                    fl.pools.push_back(p);
            }
            if (rng.below(5) == 0)
                fl.rateCap = rng.uniform(0.5, 10.0);
            changed_pools = fl.pools;
            active.push_back(fl);
            rates.push_back(0.0);
        } else {
            std::size_t victim = rng.below(active.size());
            changed_pools = active[victim].pools;
            active.erase(active.begin() +
                         static_cast<std::ptrdiff_t>(victim));
            rates.erase(rates.begin() +
                        static_cast<std::ptrdiff_t>(victim));
        }

        // Incremental update: BFS the affected component from the
        // changed pools, re-solve those flows alone, splice their
        // rates in; everything else keeps its stored rate.
        std::vector<bool> touched(active.size(), false);
        std::vector<int> pool_seen(npools, 0);
        for (int p : changed_pools)
            pool_seen[static_cast<std::size_t>(p)] = 1;
        bool grew = true;
        while (grew) {
            grew = false;
            for (std::size_t f = 0; f < active.size(); ++f) {
                if (touched[f])
                    continue;
                bool hit = false;
                for (int p : active[f].pools)
                    hit |= pool_seen[static_cast<std::size_t>(p)] != 0;
                if (hit) {
                    touched[f] = true;
                    grew = true;
                    for (int p : active[f].pools)
                        pool_seen[static_cast<std::size_t>(p)] = 1;
                }
            }
        }
        std::vector<FairShareFlow> sub;
        std::vector<std::size_t> idx;
        for (std::size_t f = 0; f < active.size(); ++f) {
            if (touched[f]) {
                sub.push_back(active[f]);
                idx.push_back(f);
            }
        }
        auto part = maxMinFairRates(sub, cap);
        for (std::size_t i = 0; i < idx.size(); ++i)
            rates[idx[i]] = part[i];

        auto full = maxMinFairRates(active, cap);
        ASSERT_EQ(full.size(), rates.size());
        for (std::size_t f = 0; f < full.size(); ++f)
            EXPECT_EQ(rates[f], full[f])
                << "step " << step << " flow " << f;
    }
}

} // namespace
} // namespace mobius
