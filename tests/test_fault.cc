/**
 * @file
 * Fault-injection subsystem tests: plan parsing (inline grammar and
 * JSON files), seeded RNG stream independence, bit-identical replay
 * under a fixed --fault-seed, degradation/straggler effects, retry
 * semantics (budget exhaustion is fatal), crash/checkpoint recovery
 * costs, the exact-sum "fault" attribution category, and the paper's
 * pipeline-order constraints (Eq. 8-11) holding under faults.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "base/logging.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan.hh"
#include "runtime/api.hh"

namespace mobius
{
namespace
{

Server
testServer()
{
    return makeCommodityServer({2, 2});
}

// ---------------------------------------------------------------
// Plan parsing
// ---------------------------------------------------------------

TEST(FaultPlanParse, InlineSpecRoundTrip)
{
    Server server = testServer();
    FaultPlan p = parseFaultSpec(
        "degrade:rc0=0.25@0.1+0.3;flaky:gpu2=0.5~0.2+0.05;"
        "xfail=0.01;crash:gpu1@1.5;ckpt=0.5+0.02;restart=0.1;"
        "retry=6+0.0002",
        server);
    ASSERT_EQ(p.windows.size(), 1u);
    EXPECT_EQ(p.windows[0].target.kind, ResourceKind::RootComplex);
    EXPECT_EQ(p.windows[0].target.index, 0);
    EXPECT_DOUBLE_EQ(p.windows[0].factor, 0.25);
    EXPECT_DOUBLE_EQ(p.windows[0].start, 0.1);
    EXPECT_DOUBLE_EQ(p.windows[0].duration, 0.3);
    ASSERT_EQ(p.flaps.size(), 1u);
    EXPECT_EQ(p.flaps[0].target.kind, ResourceKind::GpuCompute);
    EXPECT_EQ(p.flaps[0].target.index, 2);
    EXPECT_DOUBLE_EQ(p.flaps[0].meanGap, 0.2);
    EXPECT_DOUBLE_EQ(p.flaps[0].duration, 0.05);
    EXPECT_DOUBLE_EQ(p.xfailProb, 0.01);
    ASSERT_EQ(p.crashes.size(), 1u);
    EXPECT_EQ(p.crashes[0].gpu, 1);
    EXPECT_DOUBLE_EQ(p.crashes[0].time, 1.5);
    EXPECT_DOUBLE_EQ(p.checkpointInterval, 0.5);
    EXPECT_DOUBLE_EQ(p.checkpointCost, 0.02);
    EXPECT_DOUBLE_EQ(p.restartCost, 0.1);
    EXPECT_EQ(p.retryBudget, 6);
    EXPECT_DOUBLE_EQ(p.retryBackoff, 0.0002);
    EXPECT_FALSE(p.empty());
}

TEST(FaultPlanParse, RejectsMalformedEvents)
{
    Server server = testServer();
    EXPECT_THROW(parseFaultSpec("", server), FatalError);
    EXPECT_THROW(parseFaultSpec("nonsense", server), FatalError);
    EXPECT_THROW(parseFaultSpec("degrade:rc0=0.5", server),
                 FatalError);
    EXPECT_THROW(parseFaultSpec("degrade:rc0=-1@0+1", server),
                 FatalError);
    EXPECT_THROW(parseFaultSpec("xfail=1.5", server), FatalError);
    EXPECT_THROW(parseFaultSpec("crash:rc0@1", server), FatalError);
    EXPECT_THROW(parseFaultSpec("retry=2.5+1e-4", server),
                 FatalError);
}

TEST(FaultPlanParse, RejectsUnknownResources)
{
    // Same pre-simulation validation as --whatif (shared
    // hw/resource.hh grammar): a 4-GPU server has no gpu9, and
    // categories other than "transfer" make no sense as targets.
    Server server = testServer();
    EXPECT_THROW(parseFaultSpec("degrade:gpu9=0.5@0+1", server),
                 FatalError);
    EXPECT_THROW(parseFaultSpec("degrade:rc7=0.5@0+1", server),
                 FatalError);
    EXPECT_THROW(parseFaultSpec("degrade:widget0=0.5@0+1", server),
                 FatalError);
    EXPECT_THROW(parseFaultSpec("degrade:compute=0.5@0+1", server),
                 FatalError);
    EXPECT_NO_THROW(
        parseFaultSpec("degrade:transfer=0.5@0+1", server));
    EXPECT_THROW(parseFaultSpec("crash:gpu4@1", server), FatalError);
}

TEST(FaultPlanParse, JsonFileForm)
{
    Server server = testServer();
    std::string path =
        testing::TempDir() + "mobius_fault_plan_test.json";
    {
        std::ofstream os(path);
        os << R"({
            "windows": [{"resource": "rc1", "factor": 0.5,
                         "start": 0.2, "duration": 0.4}],
            "flaps": [{"resource": "transfer", "factor": 0.8,
                       "mean_gap": 0.3, "duration": 0.1}],
            "crashes": [{"gpu": 3, "time": 2.0}],
            "xfail": 0.02,
            "retry": {"budget": 9, "backoff": 0.0005},
            "checkpoint": {"interval": 0.5, "cost": 0.01},
            "restart": 0.25
        })";
    }
    FaultPlan p = loadFaultPlan(path, server);
    ASSERT_EQ(p.windows.size(), 1u);
    EXPECT_EQ(p.windows[0].target.kind, ResourceKind::RootComplex);
    EXPECT_EQ(p.windows[0].target.index, 1);
    ASSERT_EQ(p.flaps.size(), 1u);
    EXPECT_EQ(p.flaps[0].target.kind, ResourceKind::Category);
    ASSERT_EQ(p.crashes.size(), 1u);
    EXPECT_EQ(p.crashes[0].gpu, 3);
    EXPECT_DOUBLE_EQ(p.xfailProb, 0.02);
    EXPECT_EQ(p.retryBudget, 9);
    EXPECT_DOUBLE_EQ(p.retryBackoff, 0.0005);
    EXPECT_DOUBLE_EQ(p.checkpointInterval, 0.5);
    EXPECT_DOUBLE_EQ(p.restartCost, 0.25);
}

TEST(FaultPlanParse, BadJsonIsFatal)
{
    Server server = testServer();
    std::string path =
        testing::TempDir() + "mobius_fault_bad_plan.json";
    {
        std::ofstream os(path);
        os << R"({"windows": [{"resource": "gpu9", "factor": 0.5,
                  "start": 0, "duration": 1}]})";
    }
    EXPECT_THROW(parseFaultFile(path, server), FatalError);
    EXPECT_THROW(parseFaultFile("/no/such/file.json", server),
                 FatalError);
}

TEST(FaultPlanParse, SummaryMentionsEveryMechanism)
{
    Server server = testServer();
    FaultPlan p = parseFaultSpec(
        "degrade:rc0=0.25@0.1+0.3;xfail=0.01;crash:gpu1@1.5;"
        "ckpt=0.5+0.02;restart=0.1",
        server);
    std::string s = faultPlanSummary(p);
    EXPECT_NE(s.find("degrade window"), std::string::npos);
    EXPECT_NE(s.find("xfail"), std::string::npos);
    EXPECT_NE(s.find("crash"), std::string::npos);
    EXPECT_NE(s.find("ckpt"), std::string::npos);
    EXPECT_NE(s.find("restart"), std::string::npos);
    EXPECT_EQ(faultPlanSummary(FaultPlan{}), "none");
}

// ---------------------------------------------------------------
// Seeded RNG streams
// ---------------------------------------------------------------

TEST(FaultRngStreams, SameSeedSameStreamBitIdentical)
{
    Rng a(faultStreamSeed(42, 0));
    Rng b(faultStreamSeed(42, 0));
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next()) << "draw " << i;
}

TEST(FaultRngStreams, StreamsAreIndependent)
{
    // The three mechanism streams (0 = failure sampling, 1 = backoff
    // jitter, 2 = flap gaps) are derived from one user seed via
    // SplitMix64; each must be its own sequence so adding flaps
    // never perturbs the failure pattern.
    Rng s0(faultStreamSeed(42, 0));
    Rng s1(faultStreamSeed(42, 1));
    Rng s2(faultStreamSeed(42, 2));
    int same01 = 0, same02 = 0;
    for (int i = 0; i < 64; ++i) {
        std::uint64_t a = s0.next(), b = s1.next(), c = s2.next();
        same01 += a == b;
        same02 += a == c;
    }
    EXPECT_EQ(same01, 0);
    EXPECT_EQ(same02, 0);
}

TEST(FaultRngStreams, DifferentSeedsDifferentSequences)
{
    Rng a(faultStreamSeed(1, 0));
    Rng b(faultStreamSeed(2, 0));
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_EQ(same, 0);
}

// ---------------------------------------------------------------
// End-to-end faulted runs
// ---------------------------------------------------------------

/** One faulted Mobius step, keeping the context for inspection. */
struct FaultedRun
{
    std::unique_ptr<Server> server;
    std::unique_ptr<Workload> work;
    MobiusPlan plan;
    std::unique_ptr<RunContext> ctx;
    StepStats stats;
};

FaultedRun
runMobius(const std::string &spec, std::uint64_t seed)
{
    FaultedRun r;
    r.server = std::make_unique<Server>(testServer());
    r.work = std::make_unique<Workload>(gpt8b(), *r.server);
    r.plan = planMobius(*r.server, r.work->cost());
    FaultPlan fp;
    const FaultPlan *fpp = nullptr;
    if (!spec.empty()) {
        fp = parseFaultSpec(spec, *r.server);
        fpp = &fp;
    }
    r.ctx = std::make_unique<RunContext>(
        *r.server, TransferEngineConfig{}, 0.0, nullptr,
        RunPerturbation{}, fpp, seed);
    MobiusExecutor exec(*r.ctx, r.work->cost(), r.plan.partition,
                        r.plan.mapping);
    r.stats = exec.run();
    return r;
}

TEST(FaultDeterminism, SameSeedBitIdenticalRun)
{
    const std::string spec =
        "xfail=0.02;retry=10+0.0001;flaky:rc1=0.5~0.4+0.05";
    FaultedRun a = runMobius(spec, 7);
    FaultedRun b = runMobius(spec, 7);
    // Bit-identical: exact step time, identical counters, and an
    // identical span-for-span trace.
    EXPECT_EQ(a.stats.stepTime, b.stats.stepTime);
    EXPECT_EQ(a.stats.faultFailures, b.stats.faultFailures);
    EXPECT_EQ(a.stats.faultRetries, b.stats.faultRetries);
    EXPECT_EQ(a.stats.faultSeconds, b.stats.faultSeconds);
    ASSERT_EQ(a.ctx->trace().spanCount(),
              b.ctx->trace().spanCount());
    for (std::size_t i = 0; i < a.ctx->trace().spanCount(); ++i) {
        TraceSpan sa = a.ctx->trace().span(i);
        TraceSpan sb = b.ctx->trace().span(i);
        ASSERT_EQ(sa.name, sb.name) << "span " << i;
        ASSERT_EQ(sa.start, sb.start) << "span " << i;
        ASSERT_EQ(sa.end, sb.end) << "span " << i;
    }
}

TEST(FaultDeterminism, DifferentSeedDifferentFailures)
{
    const std::string spec = "xfail=0.03;retry=20+0.0001";
    FaultedRun a = runMobius(spec, 1);
    FaultedRun b = runMobius(spec, 2);
    // Both runs sample the same number of attempts from their
    // failure streams, but the doomed set must differ (the streams
    // are independent sequences; a full collision over dozens of
    // Bernoulli draws would mean the derivation is broken).
    EXPECT_GT(a.stats.faultFailures, 0u);
    EXPECT_GT(b.stats.faultFailures, 0u);
    bool differs =
        a.stats.faultFailures != b.stats.faultFailures ||
        a.stats.stepTime != b.stats.stepTime;
    EXPECT_TRUE(differs);
}

TEST(FaultEffects, DegradeWindowSlowsTheStep)
{
    FaultedRun clean = runMobius("", 1);
    FaultedRun degraded =
        runMobius("degrade:transfer=0.25@0+10", 1);
    EXPECT_GT(degraded.stats.stepTime,
              clean.stats.stepTime + 1e-6);
    // Restored capacity: a window that ends before the step does
    // costs less than one that covers it entirely.
    FaultedRun brief = runMobius("degrade:transfer=0.25@0+0.2", 1);
    EXPECT_GT(brief.stats.stepTime, clean.stats.stepTime + 1e-6);
    EXPECT_LT(brief.stats.stepTime, degraded.stats.stepTime);
}

TEST(FaultEffects, StragglerThrottleSlowsTheStep)
{
    FaultedRun clean = runMobius("", 1);
    FaultedRun straggler = runMobius("degrade:gpu1=0.5@0+10", 1);
    EXPECT_GT(straggler.stats.stepTime,
              clean.stats.stepTime + 1e-6);
}

TEST(FaultEffects, FailedTransfersAreRetriedAndTraced)
{
    FaultedRun r = runMobius("xfail=0.02;retry=10+0.0001", 3);
    ASSERT_GT(r.stats.faultFailures, 0u);
    EXPECT_EQ(r.stats.faultRetries, r.stats.faultFailures);
    EXPECT_GT(r.stats.faultSeconds, 0.0);
    // Every doomed attempt lands as a category-"fault" span with a
    // "!fail" suffix; every retry leaves a backoff span.
    std::size_t failSpans = 0, backoffSpans = 0;
    for (const TraceSpan &s : r.ctx->trace().spans()) {
        if (s.category != "fault")
            continue;
        if (s.name.find("!fail") != std::string::npos)
            ++failSpans;
        if (s.track == "fault.retry")
            ++backoffSpans;
    }
    EXPECT_EQ(failSpans, r.stats.faultFailures);
    EXPECT_EQ(backoffSpans, r.stats.faultRetries);
}

TEST(FaultEffects, RetryBudgetExhaustionIsFatal)
{
    // With a 90% failure probability and no retries allowed, the
    // first doomed transfer kills the simulated job.
    EXPECT_THROW(runMobius("xfail=0.9;retry=0+0.0001", 1),
                 FatalError);
}

TEST(FaultEffects, CrashRecoveryCostsRestartPlusLostWork)
{
    // Checkpoints at 0.8s; crash at 1.1s: 0.3s of work is lost, so
    // recovery = restart (0.05) + 0.3.
    FaultedRun r = runMobius(
        "ckpt=0.8+0.01;crash:gpu1@1.1;restart=0.05", 1);
    EXPECT_EQ(r.stats.faultCrashes, 1u);
    const FaultCounters &fc = r.ctx->faults()->counters();
    EXPECT_NEAR(fc.recoverySeconds, 0.05 + 0.3, 1e-9);
    EXPECT_GE(fc.checkpoints, 1u);
    // Tighter checkpointing loses less work on the same crash.
    FaultedRun tight = runMobius(
        "ckpt=0.2+0.01;crash:gpu1@1.1;restart=0.05", 1);
    EXPECT_LT(tight.ctx->faults()->counters().recoverySeconds,
              fc.recoverySeconds);
}

TEST(FaultAttribution, FaultCategorySumsExactly)
{
    FaultedRun r = runMobius(
        "xfail=0.02;retry=10+0.0001;ckpt=0.8+0.02", 3);
    StepAttribution a = attributeStep(r.ctx->trace());
    EXPECT_GT(a.critical.fault, 0.0);
    // The exact-sum invariant: categories partition [0, stepTime].
    EXPECT_NEAR(a.critical.total(), a.stepTime,
                1e-9 * std::max(1.0, a.stepTime));
    EXPECT_EQ(a.stepTime, r.stats.stepTime);
}

// ---------------------------------------------------------------
// Pipeline-order constraints under faults (Eq. 8-11)
// ---------------------------------------------------------------

class FaultedMobiusTrace : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        run_ = runMobius(
            "xfail=0.02;retry=10+0.0001;degrade:rc0=0.5@0.2+0.4",
            42);
        S_ = run_.plan.stageCount();
        M_ = run_.work->cost().cfg().numMicrobatches;
    }

    TraceSpan
    span(const std::string &name)
    {
        auto v = run_.ctx->trace().named(name);
        EXPECT_EQ(v.size(), 1u) << name;
        return v.empty() ? TraceSpan{} : v[0];
    }

    FaultedRun run_;
    int S_ = 0;
    int M_ = 0;
};

TEST_F(FaultedMobiusTrace, Eq8ActivationOrderHoldsUnderFaults)
{
    for (int j = 1; j < S_; ++j) {
        for (int m = 0; m < M_; ++m) {
            EXPECT_GE(span(strfmt("F%d,%d", j, m)).start,
                      span(strfmt("F%d,%d", j - 1, m)).end - 1e-9);
            EXPECT_GE(span(strfmt("B%d,%d", j - 1, m)).start,
                      span(strfmt("B%d,%d", j, m)).end - 1e-9);
        }
    }
}

TEST_F(FaultedMobiusTrace, Eq10MicrobatchOrderHoldsUnderFaults)
{
    for (int j = 0; j < S_; ++j) {
        for (int m = 1; m < M_; ++m) {
            EXPECT_GE(span(strfmt("F%d,%d", j, m)).start,
                      span(strfmt("F%d,%d", j, m - 1)).end - 1e-9);
            EXPECT_GE(span(strfmt("B%d,%d", j, m)).start,
                      span(strfmt("B%d,%d", j, m - 1)).end - 1e-9);
        }
    }
}

TEST_F(FaultedMobiusTrace, Eq11BackwardAfterForwardHoldsUnderFaults)
{
    EXPECT_GE(span(strfmt("B%d,0", S_ - 1)).start,
              span(strfmt("F%d,%d", S_ - 1, M_ - 1)).end - 1e-9);
}

TEST_F(FaultedMobiusTrace, EveryMicrobatchStillExecutesOnce)
{
    // Retries must never duplicate or drop compute: every (stage,
    // microbatch) forward and backward runs exactly once.
    for (int j = 0; j < S_; ++j) {
        for (int m = 0; m < M_; ++m) {
            EXPECT_EQ(run_.ctx->trace()
                          .named(strfmt("F%d,%d", j, m))
                          .size(),
                      1u);
            EXPECT_EQ(run_.ctx->trace()
                          .named(strfmt("B%d,%d", j, m))
                          .size(),
                      1u);
        }
    }
}

} // namespace
} // namespace mobius
