/**
 * @file
 * Unit tests for the transfer engine: copy-engine serialisation,
 * priorities, staging through DRAM, contention, and stats/usage
 * tracking.
 */

#include <gtest/gtest.h>

#include "hw/server.hh"
#include "xfer/compute_engine.hh"
#include "xfer/transfer_engine.hh"

namespace mobius
{
namespace
{

/** Test fixture with a Topo 2+2 commodity box. */
class TransferEngineTest : public ::testing::Test
{
  protected:
    TransferEngineTest()
        : server_(makeCommodityServer({2, 2})),
          usage_(queue_, server_.topo.numGpus()),
          engine_(queue_, server_.topo, &usage_, cfg())
    {}

    static TransferEngineConfig
    cfg()
    {
        TransferEngineConfig c;
        c.setupLatency = 0.0; // exact arithmetic in most tests
        return c;
    }

    EventQueue queue_;
    Server server_;
    UsageTracker usage_;
    TransferEngine engine_;
};

TEST_F(TransferEngineTest, SingleUploadRunsAtLinkBandwidth)
{
    const Bytes bytes = 131 * 100 * MiB / 100; // ~131 MiB
    double done_at = -1.0;
    TransferRequest req;
    req.src = Endpoint::dram();
    req.dst = Endpoint::gpuAt(0);
    req.bytes = bytes;
    req.kind = TrafficKind::Parameter;
    req.onComplete = [&] { done_at = queue_.now(); };
    engine_.submit(req);
    queue_.run();

    double expect = static_cast<double>(bytes) / kPcie3x16Bw;
    EXPECT_NEAR(done_at, expect, expect * 1e-6);
    EXPECT_EQ(engine_.stats().bytesOf(TrafficKind::Parameter), bytes);

    ASSERT_EQ(engine_.stats().samples().size(), 1u);
    EXPECT_NEAR(engine_.stats().samples()[0].bandwidth, kPcie3x16Bw,
                1e3);
}

TEST_F(TransferEngineTest, SameRootComplexContendsHalfBandwidth)
{
    // GPUs 0 and 1 share rc0: simultaneous uploads halve each rate.
    const Bytes bytes = 1 * GiB;
    int done = 0;
    double finish = 0.0;
    for (int g = 0; g < 2; ++g) {
        TransferRequest req;
        req.src = Endpoint::dram();
        req.dst = Endpoint::gpuAt(g);
        req.bytes = bytes;
        req.onComplete = [&] {
            ++done;
            finish = queue_.now();
        };
        engine_.submit(req);
    }
    queue_.run();
    EXPECT_EQ(done, 2);
    double expect = static_cast<double>(bytes) / (kPcie3x16Bw / 2.0);
    EXPECT_NEAR(finish, expect, expect * 1e-6);
}

TEST_F(TransferEngineTest, DifferentRootComplexesNoContention)
{
    // GPUs 0 and 2 are under different RCs: full bandwidth each —
    // the mechanism behind cross mapping (§3.3).
    const Bytes bytes = 1 * GiB;
    double finish = 0.0;
    for (int g : {0, 2}) {
        TransferRequest req;
        req.src = Endpoint::dram();
        req.dst = Endpoint::gpuAt(g);
        req.bytes = bytes;
        req.onComplete = [&] { finish = queue_.now(); };
        engine_.submit(req);
    }
    queue_.run();
    double expect = static_cast<double>(bytes) / kPcie3x16Bw;
    EXPECT_NEAR(finish, expect, expect * 1e-6);
}

TEST_F(TransferEngineTest, OppositeDirectionsDoNotContend)
{
    // Full-duplex: an upload to GPU0 and a download from GPU1 (same
    // RC) both run at full rate.
    const Bytes bytes = 1 * GiB;
    double f0 = 0, f1 = 0;
    TransferRequest up;
    up.src = Endpoint::dram();
    up.dst = Endpoint::gpuAt(0);
    up.bytes = bytes;
    up.onComplete = [&] { f0 = queue_.now(); };
    engine_.submit(up);

    TransferRequest down;
    down.src = Endpoint::gpuAt(1);
    down.dst = Endpoint::dram();
    down.bytes = bytes;
    down.onComplete = [&] { f1 = queue_.now(); };
    engine_.submit(down);

    queue_.run();
    double expect = static_cast<double>(bytes) / kPcie3x16Bw;
    EXPECT_NEAR(f0, expect, expect * 1e-6);
    EXPECT_NEAR(f1, expect, expect * 1e-6);
}

TEST_F(TransferEngineTest, CopyEngineSerialisesSameDirection)
{
    // Two uploads to the SAME GPU share its single H2D engine: they
    // run back-to-back, not concurrently.
    const Bytes bytes = 1 * GiB;
    std::vector<double> finishes;
    for (int i = 0; i < 2; ++i) {
        TransferRequest req;
        req.src = Endpoint::dram();
        req.dst = Endpoint::gpuAt(0);
        req.bytes = bytes;
        req.onComplete = [&] { finishes.push_back(queue_.now()); };
        engine_.submit(req);
    }
    queue_.run();
    double one = static_cast<double>(bytes) / kPcie3x16Bw;
    ASSERT_EQ(finishes.size(), 2u);
    EXPECT_NEAR(finishes[0], one, one * 1e-6);
    EXPECT_NEAR(finishes[1], 2 * one, one * 1e-6);
}

TEST_F(TransferEngineTest, PriorityReordersWaitingTransfers)
{
    // Three queued uploads to GPU0; the last-submitted has the most
    // urgent priority and must run before the earlier low-priority
    // one (cudaStreamCreateWithPriority behaviour, §3.3).
    const Bytes bytes = 100 * MiB;
    std::vector<int> order;
    auto submit = [&](int id, int prio) {
        TransferRequest req;
        req.src = Endpoint::dram();
        req.dst = Endpoint::gpuAt(0);
        req.bytes = bytes;
        req.priority = prio;
        req.onComplete = [&, id] { order.push_back(id); };
        engine_.submit(req);
    };
    submit(0, 5);  // starts immediately (engine idle)
    submit(1, 5);
    submit(2, 1);  // urgent: jumps ahead of 1
    queue_.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST_F(TransferEngineTest, GpuToGpuStagedThroughDram)
{
    // No P2P on the commodity box: GPU0 -> GPU1 is a cut-through
    // staged flow; both GPUs are under rc0 so the up and down legs
    // use opposite directions and the flow runs at link rate.
    const Bytes bytes = 1 * GiB;
    double finish = 0.0;
    TransferRequest req;
    req.src = Endpoint::gpuAt(0);
    req.dst = Endpoint::gpuAt(1);
    req.bytes = bytes;
    req.kind = TrafficKind::Activation;
    req.onComplete = [&] { finish = queue_.now(); };
    engine_.submit(req);
    queue_.run();
    double expect = static_cast<double>(bytes) / kPcie3x16Bw;
    EXPECT_NEAR(finish, expect, expect * 1e-6);
    EXPECT_EQ(engine_.stats().bytesOf(TrafficKind::Activation),
              bytes);
}

TEST_F(TransferEngineTest, StagedTransferContendsWithUpload)
{
    // GPU2 -> GPU3 staging (down-leg into rc1) vs DRAM -> GPU3
    // upload: both use rc1's down direction, halving rates.
    const Bytes bytes = 1 * GiB;
    double f_staged = 0, f_up = 0;
    TransferRequest staged;
    staged.src = Endpoint::gpuAt(2);
    staged.dst = Endpoint::gpuAt(3);
    staged.bytes = bytes;
    staged.onComplete = [&] { f_staged = queue_.now(); };
    engine_.submit(staged);

    TransferRequest up;
    up.src = Endpoint::dram();
    // GPU2's H2D engine is free (staged flow holds GPU2-D2H and
    // GPU3-H2D), so route the upload to GPU2.
    up.dst = Endpoint::gpuAt(2);
    up.bytes = bytes;
    up.onComplete = [&] { f_up = queue_.now(); };
    engine_.submit(up);

    queue_.run();
    // Both cross the rc1 "down" pool concurrently.
    double expect = static_cast<double>(bytes) / (kPcie3x16Bw / 2);
    EXPECT_NEAR(f_staged, expect, expect * 1e-5);
    EXPECT_NEAR(f_up, expect, expect * 1e-5);
}

TEST_F(TransferEngineTest, SetupLatencyDelaysCompletion)
{
    TransferEngineConfig cfg;
    cfg.setupLatency = 1e-3;
    EventQueue q;
    TransferEngine eng(q, server_.topo, nullptr, cfg);
    const Bytes bytes = 131 * MiB;
    double finish = 0.0;
    TransferRequest req;
    req.src = Endpoint::dram();
    req.dst = Endpoint::gpuAt(0);
    req.bytes = bytes;
    req.onComplete = [&] { finish = q.now(); };
    eng.submit(req);
    q.run();
    double data = static_cast<double>(bytes) / kPcie3x16Bw;
    EXPECT_NEAR(finish, data + 1e-3, data * 1e-6);
}

TEST_F(TransferEngineTest, ZeroByteTransferCompletes)
{
    bool done = false;
    TransferRequest req;
    req.src = Endpoint::dram();
    req.dst = Endpoint::gpuAt(0);
    req.bytes = 0;
    req.onComplete = [&] { done = true; };
    engine_.submit(req);
    queue_.run();
    EXPECT_TRUE(done);
    EXPECT_TRUE(engine_.idle());
}

TEST_F(TransferEngineTest, UsageTrackerSeparatesOverlap)
{
    // GPU0: 1 s of compute starting at t=0; a 1 GiB upload also at
    // t=0 (~0.082 s). The upload is fully overlapped.
    ComputeEngine compute(queue_, &usage_, 0);
    compute.submit(1.0, nullptr);

    TransferRequest req;
    req.src = Endpoint::dram();
    req.dst = Endpoint::gpuAt(0);
    req.bytes = 1 * GiB;
    engine_.submit(req);
    queue_.run();

    double xfer = static_cast<double>(1 * GiB) / kPcie3x16Bw;
    EXPECT_NEAR(usage_.computeTime(0), 1.0, 1e-9);
    EXPECT_NEAR(usage_.overlappedCommTime(0), xfer, 1e-6);
    EXPECT_NEAR(usage_.exposedCommTime(0), 0.0, 1e-9);
}

TEST_F(TransferEngineTest, UsageTrackerExposedWhenIdle)
{
    TransferRequest req;
    req.src = Endpoint::dram();
    req.dst = Endpoint::gpuAt(1);
    req.bytes = 1 * GiB;
    engine_.submit(req);
    queue_.run();
    double xfer = static_cast<double>(1 * GiB) / kPcie3x16Bw;
    EXPECT_NEAR(usage_.exposedCommTime(1), xfer, 1e-6);
    EXPECT_NEAR(usage_.overlappedCommTime(1), 0.0, 1e-9);
}

TEST_F(TransferEngineTest, NvlinkPeerTransferFast)
{
    Server dc = makeDataCenterServer(4);
    EventQueue q;
    TransferEngine eng(q, dc.topo, nullptr, cfg());
    const Bytes bytes = 1 * GiB;
    double finish = 0.0;
    TransferRequest req;
    req.src = Endpoint::gpuAt(0);
    req.dst = Endpoint::gpuAt(1);
    req.bytes = bytes;
    req.onComplete = [&] { finish = q.now(); };
    eng.submit(req);
    q.run();
    double expect = static_cast<double>(bytes) / kNvlinkPairBw;
    EXPECT_NEAR(finish, expect, expect * 1e-6);
}

TEST_F(TransferEngineTest, IncrementalSkipsDisjointFlows)
{
    // GPUs 0 (rc0) and 2 (rc1) share no pools: starting/finishing
    // one must re-solve only its own component and skip the other.
    int done = 0;
    for (int g : {0, 2}) {
        TransferRequest req;
        req.src = Endpoint::dram();
        req.dst = Endpoint::gpuAt(g);
        req.bytes = 1 * GiB;
        req.onComplete = [&] { ++done; };
        engine_.submit(req);
    }
    queue_.run();
    EXPECT_EQ(done, 2);
    const FairShareActivity &a = engine_.fairShareActivity();
    EXPECT_GE(a.solves, 2u);
    EXPECT_GT(a.flowsSkipped, 0u);
    EXPECT_EQ(a.crossChecks, 0u); // mode off by default
}

/**
 * A contended mix — shared root complex, opposite directions, a
 * staged GPU-to-GPU flow, staggered submissions, and a mid-flight
 * link-capacity change — on one engine. @return every completion
 * time, in order, plus the engine's fair-share telemetry.
 */
std::pair<std::vector<double>, FairShareActivity>
runContendedMix(bool cross_check)
{
    EventQueue q;
    Server server = makeCommodityServer({2, 2});
    UsageTracker usage(q, server.topo.numGpus());
    TransferEngineConfig c;
    c.setupLatency = 0.0;
    c.fairShareCrossCheck = cross_check;
    TransferEngine eng(q, server.topo, &usage, c);

    std::vector<double> done;
    auto submitAt = [&](double at, Endpoint src, Endpoint dst,
                        Bytes bytes) {
        q.schedule(at, [&eng, &q, &done, src, dst, bytes] {
            TransferRequest req;
            req.src = src;
            req.dst = dst;
            req.bytes = bytes;
            req.onComplete = [&] { done.push_back(q.now()); };
            eng.submit(req);
        });
    };
    submitAt(0.0, Endpoint::dram(), Endpoint::gpuAt(0), 2 * GiB);
    submitAt(0.01, Endpoint::dram(), Endpoint::gpuAt(1), 1 * GiB);
    submitAt(0.02, Endpoint::gpuAt(0), Endpoint::dram(), 1 * GiB);
    submitAt(0.03, Endpoint::dram(), Endpoint::gpuAt(2), 2 * GiB);
    submitAt(0.04, Endpoint::gpuAt(1), Endpoint::gpuAt(3),
             1 * GiB / 2);
    // A fault-style bandwidth degradation and its recovery, while
    // flows are in flight.
    q.schedule(0.05, [&eng] { eng.setLinkCapacityFactor(0, 0.5); });
    q.schedule(0.10, [&eng] { eng.setLinkCapacityFactor(0, 1.0); });
    q.run();
    return {done, eng.fairShareActivity()};
}

TEST(TransferEngineCrossCheck, ContendedMixSurvivesAndMatches)
{
    // The cross-checked run re-solves everything from scratch after
    // every incremental update and panics on any divergence — so
    // completing at all is the invariant check. Completion times
    // must also be bit-identical with the unchecked engine.
    auto plain = runContendedMix(false);
    auto checked = runContendedMix(true);
    ASSERT_EQ(plain.first.size(), 5u);
    ASSERT_EQ(checked.first.size(), plain.first.size());
    for (std::size_t i = 0; i < plain.first.size(); ++i)
        EXPECT_EQ(checked.first[i], plain.first[i]) << "flow " << i;
    EXPECT_GT(checked.second.crossChecks, 0u);
    EXPECT_EQ(plain.second.crossChecks, 0u);
    EXPECT_EQ(checked.second.solves, plain.second.solves);
    EXPECT_EQ(checked.second.flowsTouched,
              plain.second.flowsTouched);
}

TEST_F(TransferEngineTest, ComputeEngineFifoAndBusyTime)
{
    ComputeEngine compute(queue_, nullptr, 0);
    std::vector<int> order;
    compute.submit(0.5, [&] { order.push_back(0); });
    compute.submit(0.25, [&] { order.push_back(1); });
    queue_.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_DOUBLE_EQ(compute.busyTime(), 0.75);
    EXPECT_DOUBLE_EQ(queue_.now(), 0.75);
    EXPECT_TRUE(compute.idle());
}

} // namespace
} // namespace mobius
