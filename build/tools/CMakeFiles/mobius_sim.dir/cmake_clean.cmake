file(REMOVE_RECURSE
  "CMakeFiles/mobius_sim.dir/mobius_sim.cc.o"
  "CMakeFiles/mobius_sim.dir/mobius_sim.cc.o.d"
  "mobius_sim"
  "mobius_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
