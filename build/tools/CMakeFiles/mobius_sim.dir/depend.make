# Empty dependencies file for mobius_sim.
# This may be replaced when dependencies are built.
