# Empty compiler generated dependencies file for schedule_gantt.
# This may be replaced when dependencies are built.
