# Empty dependencies file for tiny_finetune.
# This may be replaced when dependencies are built.
