file(REMOVE_RECURSE
  "CMakeFiles/tiny_finetune.dir/tiny_finetune.cpp.o"
  "CMakeFiles/tiny_finetune.dir/tiny_finetune.cpp.o.d"
  "tiny_finetune"
  "tiny_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiny_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
