# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_simcore[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_fair_share[1]_include.cmake")
include("/root/repo/build/tests/test_transfer_engine[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_plan[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_train[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_tp[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
