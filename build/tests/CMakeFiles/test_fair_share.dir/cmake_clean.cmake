file(REMOVE_RECURSE
  "CMakeFiles/test_fair_share.dir/test_fair_share.cc.o"
  "CMakeFiles/test_fair_share.dir/test_fair_share.cc.o.d"
  "test_fair_share"
  "test_fair_share.pdb"
  "test_fair_share[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fair_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
