# Empty compiler generated dependencies file for test_fair_share.
# This may be replaced when dependencies are built.
