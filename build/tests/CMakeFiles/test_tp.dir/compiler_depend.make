# Empty compiler generated dependencies file for test_tp.
# This may be replaced when dependencies are built.
