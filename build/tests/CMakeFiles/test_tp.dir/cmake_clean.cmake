file(REMOVE_RECURSE
  "CMakeFiles/test_tp.dir/test_tp.cc.o"
  "CMakeFiles/test_tp.dir/test_tp.cc.o.d"
  "test_tp"
  "test_tp.pdb"
  "test_tp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
