file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_traffic.dir/bench/bench_fig6_traffic.cc.o"
  "CMakeFiles/bench_fig6_traffic.dir/bench/bench_fig6_traffic.cc.o.d"
  "bench/bench_fig6_traffic"
  "bench/bench_fig6_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
