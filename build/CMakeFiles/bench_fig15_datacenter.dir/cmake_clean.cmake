file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_datacenter.dir/bench/bench_fig15_datacenter.cc.o"
  "CMakeFiles/bench_fig15_datacenter.dir/bench/bench_fig15_datacenter.cc.o.d"
  "bench/bench_fig15_datacenter"
  "bench/bench_fig15_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
