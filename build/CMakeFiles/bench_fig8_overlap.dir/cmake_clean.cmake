file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_overlap.dir/bench/bench_fig8_overlap.cc.o"
  "CMakeFiles/bench_fig8_overlap.dir/bench/bench_fig8_overlap.cc.o.d"
  "bench/bench_fig8_overlap"
  "bench/bench_fig8_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
