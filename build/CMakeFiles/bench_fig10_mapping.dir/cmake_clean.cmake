file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_mapping.dir/bench/bench_fig10_mapping.cc.o"
  "CMakeFiles/bench_fig10_mapping.dir/bench/bench_fig10_mapping.cc.o.d"
  "bench/bench_fig10_mapping"
  "bench/bench_fig10_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
