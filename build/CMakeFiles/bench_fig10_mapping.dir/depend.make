# Empty dependencies file for bench_fig10_mapping.
# This may be replaced when dependencies are built.
