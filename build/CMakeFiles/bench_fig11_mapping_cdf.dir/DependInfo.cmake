
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_mapping_cdf.cc" "CMakeFiles/bench_fig11_mapping_cdf.dir/bench/bench_fig11_mapping_cdf.cc.o" "gcc" "CMakeFiles/bench_fig11_mapping_cdf.dir/bench/bench_fig11_mapping_cdf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/mobius_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/mobius_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/mobius_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/mobius_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mobius_model.dir/DependInfo.cmake"
  "/root/repo/build/src/xfer/CMakeFiles/mobius_xfer.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mobius_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/mobius_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mobius_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
