# Empty dependencies file for bench_fig11_mapping_cdf.
# This may be replaced when dependencies are built.
