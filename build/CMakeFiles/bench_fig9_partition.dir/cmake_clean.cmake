file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_partition.dir/bench/bench_fig9_partition.cc.o"
  "CMakeFiles/bench_fig9_partition.dir/bench/bench_fig9_partition.cc.o.d"
  "bench/bench_fig9_partition"
  "bench/bench_fig9_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
