# Empty dependencies file for bench_fig16_dc_cdf.
# This may be replaced when dependencies are built.
