file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_dc_cdf.dir/bench/bench_fig16_dc_cdf.cc.o"
  "CMakeFiles/bench_fig16_dc_cdf.dir/bench/bench_fig16_dc_cdf.cc.o.d"
  "bench/bench_fig16_dc_cdf"
  "bench/bench_fig16_dc_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_dc_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
