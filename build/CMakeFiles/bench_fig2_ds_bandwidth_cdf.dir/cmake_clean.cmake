file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ds_bandwidth_cdf.dir/bench/bench_fig2_ds_bandwidth_cdf.cc.o"
  "CMakeFiles/bench_fig2_ds_bandwidth_cdf.dir/bench/bench_fig2_ds_bandwidth_cdf.cc.o.d"
  "bench/bench_fig2_ds_bandwidth_cdf"
  "bench/bench_fig2_ds_bandwidth_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ds_bandwidth_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
