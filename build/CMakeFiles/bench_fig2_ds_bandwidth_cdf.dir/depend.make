# Empty dependencies file for bench_fig2_ds_bandwidth_cdf.
# This may be replaced when dependencies are built.
