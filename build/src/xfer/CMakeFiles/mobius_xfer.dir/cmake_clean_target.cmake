file(REMOVE_RECURSE
  "libmobius_xfer.a"
)
