# Empty dependencies file for mobius_xfer.
# This may be replaced when dependencies are built.
