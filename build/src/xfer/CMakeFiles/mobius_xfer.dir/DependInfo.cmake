
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xfer/fair_share.cc" "src/xfer/CMakeFiles/mobius_xfer.dir/fair_share.cc.o" "gcc" "src/xfer/CMakeFiles/mobius_xfer.dir/fair_share.cc.o.d"
  "/root/repo/src/xfer/stats.cc" "src/xfer/CMakeFiles/mobius_xfer.dir/stats.cc.o" "gcc" "src/xfer/CMakeFiles/mobius_xfer.dir/stats.cc.o.d"
  "/root/repo/src/xfer/transfer_engine.cc" "src/xfer/CMakeFiles/mobius_xfer.dir/transfer_engine.cc.o" "gcc" "src/xfer/CMakeFiles/mobius_xfer.dir/transfer_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/mobius_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/mobius_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mobius_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
