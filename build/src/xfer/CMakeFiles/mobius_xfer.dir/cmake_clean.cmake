file(REMOVE_RECURSE
  "CMakeFiles/mobius_xfer.dir/fair_share.cc.o"
  "CMakeFiles/mobius_xfer.dir/fair_share.cc.o.d"
  "CMakeFiles/mobius_xfer.dir/stats.cc.o"
  "CMakeFiles/mobius_xfer.dir/stats.cc.o.d"
  "CMakeFiles/mobius_xfer.dir/transfer_engine.cc.o"
  "CMakeFiles/mobius_xfer.dir/transfer_engine.cc.o.d"
  "libmobius_xfer.a"
  "libmobius_xfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_xfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
