# Empty compiler generated dependencies file for mobius_train.
# This may be replaced when dependencies are built.
