file(REMOVE_RECURSE
  "CMakeFiles/mobius_train.dir/trainer.cc.o"
  "CMakeFiles/mobius_train.dir/trainer.cc.o.d"
  "libmobius_train.a"
  "libmobius_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
