file(REMOVE_RECURSE
  "libmobius_train.a"
)
