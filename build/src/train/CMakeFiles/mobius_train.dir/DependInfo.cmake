
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/trainer.cc" "src/train/CMakeFiles/mobius_train.dir/trainer.cc.o" "gcc" "src/train/CMakeFiles/mobius_train.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/mobius_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mobius_data.dir/DependInfo.cmake"
  "/root/repo/build/src/plan/CMakeFiles/mobius_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mobius_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mobius_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mobius_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/mobius_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mobius_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
