file(REMOVE_RECURSE
  "CMakeFiles/mobius_base.dir/args.cc.o"
  "CMakeFiles/mobius_base.dir/args.cc.o.d"
  "CMakeFiles/mobius_base.dir/logging.cc.o"
  "CMakeFiles/mobius_base.dir/logging.cc.o.d"
  "CMakeFiles/mobius_base.dir/rng.cc.o"
  "CMakeFiles/mobius_base.dir/rng.cc.o.d"
  "CMakeFiles/mobius_base.dir/units.cc.o"
  "CMakeFiles/mobius_base.dir/units.cc.o.d"
  "libmobius_base.a"
  "libmobius_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
