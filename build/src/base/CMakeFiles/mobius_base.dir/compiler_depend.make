# Empty compiler generated dependencies file for mobius_base.
# This may be replaced when dependencies are built.
