file(REMOVE_RECURSE
  "libmobius_base.a"
)
