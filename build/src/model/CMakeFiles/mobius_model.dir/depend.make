# Empty dependencies file for mobius_model.
# This may be replaced when dependencies are built.
