file(REMOVE_RECURSE
  "CMakeFiles/mobius_model.dir/cost_model.cc.o"
  "CMakeFiles/mobius_model.dir/cost_model.cc.o.d"
  "CMakeFiles/mobius_model.dir/model.cc.o"
  "CMakeFiles/mobius_model.dir/model.cc.o.d"
  "libmobius_model.a"
  "libmobius_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
