file(REMOVE_RECURSE
  "libmobius_model.a"
)
