# Empty compiler generated dependencies file for mobius_hw.
# This may be replaced when dependencies are built.
