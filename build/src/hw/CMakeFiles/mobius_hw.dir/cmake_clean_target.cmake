file(REMOVE_RECURSE
  "libmobius_hw.a"
)
