file(REMOVE_RECURSE
  "CMakeFiles/mobius_hw.dir/gpu_spec.cc.o"
  "CMakeFiles/mobius_hw.dir/gpu_spec.cc.o.d"
  "CMakeFiles/mobius_hw.dir/server.cc.o"
  "CMakeFiles/mobius_hw.dir/server.cc.o.d"
  "CMakeFiles/mobius_hw.dir/topology.cc.o"
  "CMakeFiles/mobius_hw.dir/topology.cc.o.d"
  "libmobius_hw.a"
  "libmobius_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
