file(REMOVE_RECURSE
  "libmobius_solver.a"
)
