file(REMOVE_RECURSE
  "CMakeFiles/mobius_solver.dir/lp.cc.o"
  "CMakeFiles/mobius_solver.dir/lp.cc.o.d"
  "CMakeFiles/mobius_solver.dir/mip.cc.o"
  "CMakeFiles/mobius_solver.dir/mip.cc.o.d"
  "libmobius_solver.a"
  "libmobius_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
