# Empty dependencies file for mobius_solver.
# This may be replaced when dependencies are built.
