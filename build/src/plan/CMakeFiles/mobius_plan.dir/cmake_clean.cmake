file(REMOVE_RECURSE
  "CMakeFiles/mobius_plan.dir/mapping.cc.o"
  "CMakeFiles/mobius_plan.dir/mapping.cc.o.d"
  "CMakeFiles/mobius_plan.dir/partition.cc.o"
  "CMakeFiles/mobius_plan.dir/partition.cc.o.d"
  "CMakeFiles/mobius_plan.dir/partition_algos.cc.o"
  "CMakeFiles/mobius_plan.dir/partition_algos.cc.o.d"
  "CMakeFiles/mobius_plan.dir/partition_mip.cc.o"
  "CMakeFiles/mobius_plan.dir/partition_mip.cc.o.d"
  "CMakeFiles/mobius_plan.dir/pipeline_cost.cc.o"
  "CMakeFiles/mobius_plan.dir/pipeline_cost.cc.o.d"
  "libmobius_plan.a"
  "libmobius_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
