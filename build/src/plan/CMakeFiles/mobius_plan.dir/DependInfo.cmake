
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plan/mapping.cc" "src/plan/CMakeFiles/mobius_plan.dir/mapping.cc.o" "gcc" "src/plan/CMakeFiles/mobius_plan.dir/mapping.cc.o.d"
  "/root/repo/src/plan/partition.cc" "src/plan/CMakeFiles/mobius_plan.dir/partition.cc.o" "gcc" "src/plan/CMakeFiles/mobius_plan.dir/partition.cc.o.d"
  "/root/repo/src/plan/partition_algos.cc" "src/plan/CMakeFiles/mobius_plan.dir/partition_algos.cc.o" "gcc" "src/plan/CMakeFiles/mobius_plan.dir/partition_algos.cc.o.d"
  "/root/repo/src/plan/partition_mip.cc" "src/plan/CMakeFiles/mobius_plan.dir/partition_mip.cc.o" "gcc" "src/plan/CMakeFiles/mobius_plan.dir/partition_mip.cc.o.d"
  "/root/repo/src/plan/pipeline_cost.cc" "src/plan/CMakeFiles/mobius_plan.dir/pipeline_cost.cc.o" "gcc" "src/plan/CMakeFiles/mobius_plan.dir/pipeline_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mobius_model.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/mobius_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mobius_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mobius_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
