# Empty dependencies file for mobius_plan.
# This may be replaced when dependencies are built.
