file(REMOVE_RECURSE
  "libmobius_plan.a"
)
