file(REMOVE_RECURSE
  "CMakeFiles/mobius_profile.dir/profiler.cc.o"
  "CMakeFiles/mobius_profile.dir/profiler.cc.o.d"
  "libmobius_profile.a"
  "libmobius_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
