# Empty dependencies file for mobius_profile.
# This may be replaced when dependencies are built.
