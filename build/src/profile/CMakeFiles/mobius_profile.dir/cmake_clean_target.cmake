file(REMOVE_RECURSE
  "libmobius_profile.a"
)
