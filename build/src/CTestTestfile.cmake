# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("simcore")
subdirs("hw")
subdirs("xfer")
subdirs("model")
subdirs("profile")
subdirs("solver")
subdirs("plan")
subdirs("runtime")
subdirs("tensor")
subdirs("nn")
subdirs("data")
subdirs("train")
