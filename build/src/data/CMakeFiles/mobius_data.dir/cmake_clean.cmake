file(REMOVE_RECURSE
  "CMakeFiles/mobius_data.dir/corpus.cc.o"
  "CMakeFiles/mobius_data.dir/corpus.cc.o.d"
  "libmobius_data.a"
  "libmobius_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
