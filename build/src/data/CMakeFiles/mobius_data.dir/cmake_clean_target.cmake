file(REMOVE_RECURSE
  "libmobius_data.a"
)
