# Empty dependencies file for mobius_data.
# This may be replaced when dependencies are built.
