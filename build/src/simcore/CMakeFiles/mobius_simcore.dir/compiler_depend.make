# Empty compiler generated dependencies file for mobius_simcore.
# This may be replaced when dependencies are built.
