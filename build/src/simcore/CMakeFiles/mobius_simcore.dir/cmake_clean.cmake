file(REMOVE_RECURSE
  "CMakeFiles/mobius_simcore.dir/event_queue.cc.o"
  "CMakeFiles/mobius_simcore.dir/event_queue.cc.o.d"
  "CMakeFiles/mobius_simcore.dir/trace.cc.o"
  "CMakeFiles/mobius_simcore.dir/trace.cc.o.d"
  "libmobius_simcore.a"
  "libmobius_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
