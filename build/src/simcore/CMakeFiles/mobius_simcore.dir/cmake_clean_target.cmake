file(REMOVE_RECURSE
  "libmobius_simcore.a"
)
