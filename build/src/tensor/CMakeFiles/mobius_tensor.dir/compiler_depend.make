# Empty compiler generated dependencies file for mobius_tensor.
# This may be replaced when dependencies are built.
