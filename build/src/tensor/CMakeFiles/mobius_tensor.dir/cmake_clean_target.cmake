file(REMOVE_RECURSE
  "libmobius_tensor.a"
)
