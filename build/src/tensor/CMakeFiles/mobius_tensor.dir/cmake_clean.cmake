file(REMOVE_RECURSE
  "CMakeFiles/mobius_tensor.dir/tensor.cc.o"
  "CMakeFiles/mobius_tensor.dir/tensor.cc.o.d"
  "libmobius_tensor.a"
  "libmobius_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
