file(REMOVE_RECURSE
  "libmobius_runtime.a"
)
