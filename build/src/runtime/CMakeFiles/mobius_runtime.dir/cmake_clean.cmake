file(REMOVE_RECURSE
  "CMakeFiles/mobius_runtime.dir/api.cc.o"
  "CMakeFiles/mobius_runtime.dir/api.cc.o.d"
  "CMakeFiles/mobius_runtime.dir/mobius_executor.cc.o"
  "CMakeFiles/mobius_runtime.dir/mobius_executor.cc.o.d"
  "CMakeFiles/mobius_runtime.dir/pipeline_executor.cc.o"
  "CMakeFiles/mobius_runtime.dir/pipeline_executor.cc.o.d"
  "CMakeFiles/mobius_runtime.dir/report.cc.o"
  "CMakeFiles/mobius_runtime.dir/report.cc.o.d"
  "CMakeFiles/mobius_runtime.dir/tp_executor.cc.o"
  "CMakeFiles/mobius_runtime.dir/tp_executor.cc.o.d"
  "CMakeFiles/mobius_runtime.dir/zero_executor.cc.o"
  "CMakeFiles/mobius_runtime.dir/zero_executor.cc.o.d"
  "libmobius_runtime.a"
  "libmobius_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
