
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/api.cc" "src/runtime/CMakeFiles/mobius_runtime.dir/api.cc.o" "gcc" "src/runtime/CMakeFiles/mobius_runtime.dir/api.cc.o.d"
  "/root/repo/src/runtime/mobius_executor.cc" "src/runtime/CMakeFiles/mobius_runtime.dir/mobius_executor.cc.o" "gcc" "src/runtime/CMakeFiles/mobius_runtime.dir/mobius_executor.cc.o.d"
  "/root/repo/src/runtime/pipeline_executor.cc" "src/runtime/CMakeFiles/mobius_runtime.dir/pipeline_executor.cc.o" "gcc" "src/runtime/CMakeFiles/mobius_runtime.dir/pipeline_executor.cc.o.d"
  "/root/repo/src/runtime/report.cc" "src/runtime/CMakeFiles/mobius_runtime.dir/report.cc.o" "gcc" "src/runtime/CMakeFiles/mobius_runtime.dir/report.cc.o.d"
  "/root/repo/src/runtime/tp_executor.cc" "src/runtime/CMakeFiles/mobius_runtime.dir/tp_executor.cc.o" "gcc" "src/runtime/CMakeFiles/mobius_runtime.dir/tp_executor.cc.o.d"
  "/root/repo/src/runtime/zero_executor.cc" "src/runtime/CMakeFiles/mobius_runtime.dir/zero_executor.cc.o" "gcc" "src/runtime/CMakeFiles/mobius_runtime.dir/zero_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plan/CMakeFiles/mobius_plan.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/mobius_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/xfer/CMakeFiles/mobius_xfer.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/mobius_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mobius_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mobius_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/mobius_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mobius_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
