# Empty dependencies file for mobius_runtime.
# This may be replaced when dependencies are built.
