# Empty dependencies file for mobius_nn.
# This may be replaced when dependencies are built.
