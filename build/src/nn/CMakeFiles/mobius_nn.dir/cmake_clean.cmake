file(REMOVE_RECURSE
  "CMakeFiles/mobius_nn.dir/adam.cc.o"
  "CMakeFiles/mobius_nn.dir/adam.cc.o.d"
  "CMakeFiles/mobius_nn.dir/module.cc.o"
  "CMakeFiles/mobius_nn.dir/module.cc.o.d"
  "libmobius_nn.a"
  "libmobius_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobius_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
