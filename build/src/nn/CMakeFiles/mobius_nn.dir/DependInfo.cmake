
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/adam.cc" "src/nn/CMakeFiles/mobius_nn.dir/adam.cc.o" "gcc" "src/nn/CMakeFiles/mobius_nn.dir/adam.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/mobius_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/mobius_nn.dir/module.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/mobius_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/mobius_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
