file(REMOVE_RECURSE
  "libmobius_nn.a"
)
