/**
 * @file
 * The unit of serving work: one inference request, its latency
 * decomposition, and the per-request record the simulator fills in.
 *
 * A request arrives at `arrival` (open-loop: arrivals do not wait for
 * completions), queues until the continuous batcher admits it at an
 * iteration boundary, runs one prefill iteration over its prompt, and
 * then one decode iteration per generated token until `maxNewTokens`
 * have been produced. End-to-end latency decomposes exactly into
 *
 *     e2e = queue + prefill + decode + swapStall
 *
 * where queue is time waiting for admission, prefill/decode are the
 * compute shares of its iterations, and swapStall is the non-compute
 * share — time the batch spent blocked on weight swaps, KV streaming,
 * activation handoffs, or fault retries. The serving bench gates the
 * identity at 1e-9 for every request.
 */

#ifndef MOBIUS_SERVE_REQUEST_HH
#define MOBIUS_SERVE_REQUEST_HH

#include <string>

namespace mobius
{

/** One inference request as submitted by a client. */
struct ServeRequest
{
    int id = -1;            //!< assigned by ServeSim::submit()
    std::string name;       //!< printable; "req<id>" when empty
    double arrival = 0.0;   //!< submission time (simulated seconds)
    int promptTokens = 128; //!< context length at admission
    int maxNewTokens = 32;  //!< tokens to generate before finishing
    /** Per-request end-to-end deadline; 0 = the sim-wide default. */
    double sloSeconds = 0.0;
};

/** Exact decomposition of one request's end-to-end latency. */
struct ServeLatency
{
    double queue = 0.0;     //!< arrival -> admission into a batch
    double prefill = 0.0;   //!< compute share of the first iteration
    double decode = 0.0;    //!< compute share of decode iterations
    double swapStall = 0.0; //!< weight/KV/activation/fault stalls

    /** @return the sum of the four categories. */
    double
    total() const
    {
        return queue + prefill + decode + swapStall;
    }
};

/** What the simulator learned about one completed request. */
struct RequestRecord
{
    ServeRequest spec;        //!< the request as submitted
    double admit = -1.0;      //!< admission time (-1 = never ran)
    double firstToken = -1.0; //!< end of the prefill iteration
    double finish = -1.0;     //!< end of the last decode iteration
    int generated = 0;        //!< tokens produced
    int iterations = 0;       //!< batch iterations participated in
    int gpu = -1;             //!< ZeRO-gather home GPU; -1 = pipelined
    bool sloMet = false;      //!< finished within its deadline
    ServeLatency lat;         //!< exact latency decomposition

    /** @return end-to-end seconds (finish - arrival). */
    double e2e() const { return finish - spec.arrival; }

    /** @return time to first token (prefill completion). */
    double ttft() const { return firstToken - spec.arrival; }

    /** KV slots reserved at admission (prompt + full generation). */
    int
    reservedTokens() const
    {
        return spec.promptTokens + spec.maxNewTokens;
    }

    /** @return tokens processed so far (context length). */
    int totalTokens() const { return spec.promptTokens + generated; }
};

} // namespace mobius

#endif // MOBIUS_SERVE_REQUEST_HH
