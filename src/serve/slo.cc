#include "serve/slo.hh"

#include <cmath>
#include <cstring>

#include "obs/metrics.hh"
#include "obs/prof.hh"

namespace mobius
{

namespace
{

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fnv64(std::uint64_t &h, std::uint64_t v)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xff;
        h *= kFnvPrime;
    }
}

void
fnvDouble(std::uint64_t &h, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    fnv64(h, bits);
}

} // namespace

double
effectiveSlo(const ServeRequest &spec, const SloConfig &slo)
{
    return spec.sloSeconds > 0.0 ? spec.sloSeconds : slo.e2eSeconds;
}

std::uint64_t
serveFingerprint(const std::vector<RequestRecord> &records)
{
    std::uint64_t h = kFnvOffset;
    fnv64(h, records.size());
    for (const RequestRecord &r : records) {
        fnv64(h, static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(r.spec.id)));
        fnvDouble(h, r.spec.arrival);
        fnv64(h, static_cast<std::uint64_t>(r.spec.promptTokens));
        fnvDouble(h, r.admit);
        fnvDouble(h, r.firstToken);
        fnvDouble(h, r.finish);
        fnv64(h, static_cast<std::uint64_t>(r.generated));
        fnv64(h, static_cast<std::uint64_t>(r.iterations));
        fnv64(h, static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(r.gpu)));
        fnv64(h, r.sloMet ? 1 : 0);
        fnvDouble(h, r.lat.queue);
        fnvDouble(h, r.lat.prefill);
        fnvDouble(h, r.lat.decode);
        fnvDouble(h, r.lat.swapStall);
    }
    return h;
}

ServeMetrics
reduceServeMetrics(const std::vector<RequestRecord> &records,
                   double makespan)
{
    MOBIUS_PROF_ZONE("serve.reduce");
    ServeMetrics m;
    m.requests = records.size();
    m.makespan = makespan;

    std::vector<double> e2e;
    std::vector<double> ttft;
    e2e.reserve(records.size());
    ttft.reserve(records.size());
    double tokens = 0.0;
    double sloTokens = 0.0;
    for (const RequestRecord &r : records) {
        if (r.finish < 0.0)
            continue;
        ++m.completed;
        const double lat = r.e2e();
        e2e.push_back(lat);
        ttft.push_back(r.ttft());
        m.e2eMean += lat;
        if (lat > m.e2eMax)
            m.e2eMax = lat;
        m.queueSeconds += r.lat.queue;
        m.prefillSeconds += r.lat.prefill;
        m.decodeSeconds += r.lat.decode;
        m.stallSeconds += r.lat.swapStall;
        const double drift = std::fabs(r.lat.total() - lat);
        if (drift > m.worstSumDrift)
            m.worstSumDrift = drift;
        const double tok = static_cast<double>(r.totalTokens());
        tokens += tok;
        if (r.sloMet) {
            ++m.sloMet;
            sloTokens += tok;
        }
    }
    if (m.completed > 0) {
        m.e2eMean /= static_cast<double>(m.completed);
        m.e2eP50 = exactQuantile(e2e, 0.50);
        m.e2eP99 = exactQuantile(e2e, 0.99);
        m.ttftP50 = exactQuantile(ttft, 0.50);
        m.ttftP99 = exactQuantile(ttft, 0.99);
        m.sloAttainment = static_cast<double>(m.sloMet) /
                          static_cast<double>(m.completed);
    }
    if (makespan > 0.0) {
        m.tokensPerSec = tokens / makespan;
        m.requestsPerSec =
            static_cast<double>(m.completed) / makespan;
        m.sloGoodputTokensPerSec = sloTokens / makespan;
    }
    m.fingerprint = serveFingerprint(records);
    return m;
}

} // namespace mobius
