#include "serve/placement.hh"

#include <algorithm>

#include "base/logging.hh"
#include "plan/mapping.hh"

namespace mobius
{

const char *
servePlacementName(ServePlacement p)
{
    switch (p) {
    case ServePlacement::MobiusSwap:
        return "mobius-swap";
    case ServePlacement::AllInGpu:
        return "all-in-gpu";
    case ServePlacement::ZeroGather:
        return "zero-gather";
    case ServePlacement::Adaptive:
        return "adaptive";
    }
    return "?";
}

ServePlacement
parseServePlacement(const std::string &name)
{
    if (name == "mobius-swap" || name == "mobius")
        return ServePlacement::MobiusSwap;
    if (name == "all-in-gpu" || name == "allin")
        return ServePlacement::AllInGpu;
    if (name == "zero-gather" || name == "zero")
        return ServePlacement::ZeroGather;
    if (name == "adaptive")
        return ServePlacement::Adaptive;
    fatal("unknown serve placement '%s'", name.c_str());
}

Bytes
ServePlan::ownedBytes(int gpu) const
{
    Bytes total = 0;
    for (int s : owned[static_cast<std::size_t>(gpu)])
        total += stages[static_cast<std::size_t>(s)].weightBytes;
    return total;
}

Bytes
ServePlan::maxOwnedStageBytes(int gpu) const
{
    Bytes best = 0;
    for (int s : owned[static_cast<std::size_t>(gpu)])
        best = std::max(
            best, stages[static_cast<std::size_t>(s)].weightBytes);
    return best;
}

Bytes
ServePlan::maxStageBytes() const
{
    Bytes best = 0;
    for (const ServeStage &s : stages)
        best = std::max(best, s.weightBytes);
    return best;
}

Bytes
ServePlan::totalWeightBytes() const
{
    Bytes total = 0;
    for (const ServeStage &s : stages)
        total += s.weightBytes;
    return total;
}

ServePlan
buildServePlan(const CostModel &cost, const Topology &topo,
               const PlacementConfig &cfg)
{
    const ModelDesc &model = cost.model();
    const int gpus = topo.numGpus();
    const int layers = model.numLayers();
    if (cfg.stagesPerGpu <= 0)
        fatal("stagesPerGpu must be positive (got %d)",
              cfg.stagesPerGpu);
    if (cfg.residentStages <= 0)
        fatal("residentStages must be positive (got %d)",
              cfg.residentStages);
    const int num_stages =
        std::min(layers, cfg.stagesPerGpu * gpus);
    if (num_stages <= 0)
        fatal("model has no layers to place");

    const Mapping mapping =
        cfg.crossOrder ? crossMapping(topo, num_stages).mapping
                       : sequentialMapping(topo, num_stages);

    // Inference compute is costed per token: the training cost model
    // prices one microbatch of (microbatchSize x seqLen) tokens.
    const double tokens_per_mb =
        static_cast<double>(cost.cfg().microbatchSize) *
        static_cast<double>(model.seqLen);

    // KV-cache: K and V, FP16, per token per transformer block.
    const Bytes kv_per_block =
        4 * static_cast<Bytes>(model.hidden);

    ServePlan plan;
    plan.gpuOrder = mapping.gpuOrder;
    plan.owned.assign(static_cast<std::size_t>(gpus), {});
    plan.actBytesPerToken = 2 * static_cast<Bytes>(model.hidden);
    plan.stages.reserve(static_cast<std::size_t>(num_stages));
    plan.kvPerTokenGpu.assign(static_cast<std::size_t>(gpus), 0);
    for (int s = 0; s < num_stages; ++s) {
        ServeStage st;
        st.lo = static_cast<int>(
            (static_cast<long long>(layers) * s) / num_stages);
        st.hi = static_cast<int>(
            (static_cast<long long>(layers) * (s + 1)) / num_stages);
        st.gpu = mapping.gpuOf(s);
        st.weightBytes = cost.rangeParamBytes(st.lo, st.hi);
        st.secondsPerToken =
            cost.rangeFwdTime(st.lo, st.hi) / tokens_per_mb;
        st.floorSeconds =
            static_cast<double>(st.hi - st.lo) *
            cost.cfg().kernelLatency;
        for (int l = st.lo; l < st.hi; ++l) {
            if (model.layers[static_cast<std::size_t>(l)].type ==
                LayerType::TransformerBlock)
                st.kvBytesPerToken += kv_per_block;
        }
        plan.kvBytesPerToken += st.kvBytesPerToken;
        plan.kvPerTokenGpu[static_cast<std::size_t>(st.gpu)] +=
            st.kvBytesPerToken;
        plan.owned[static_cast<std::size_t>(st.gpu)].push_back(s);
        plan.stages.push_back(st);
    }
    return plan;
}

} // namespace mobius
