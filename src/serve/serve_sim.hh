/**
 * @file
 * Request-driven serving simulator on the discrete-event core.
 *
 * ServeSim wires a Workload (analytic cost model), a ServePlan
 * (placement.hh), a ContinuousBatcher, and a RunContext (event queue,
 * transfer engine, per-GPU compute engines and memory ledgers, fault
 * injector) into one open-loop serving run:
 *
 *   arrivals --> FIFO queue --> continuous batch --> iterations
 *
 * Each iteration runs every running request one step — prompt tokens
 * for a request in prefill, one token in decode — over the pipeline
 * stages (or, for ZeroGather, over lockstep all-gathered layer
 * chunks). Weights and (optionally) KV-cache move DRAM <-> GPU
 * through the TransferEngine with the same priority/prefetch
 * machinery the training executors use, so swap stalls, PCIe
 * contention, and injected faults shape tail latency exactly like
 * they shape step time in training.
 *
 * Latency bookkeeping is exact by construction: a request's
 * end-to-end time is its queue wait plus the durations of the
 * iterations it rode (it is resident continuously from admission to
 * finish). Each iteration's duration splits into the ideal compute
 * chain (prefill/decode) and the remainder (swap-stall), so the four
 * categories sum to e2e within floating-point dust — gated at 1e-9.
 *
 * Determinism: the simulator consumes no randomness beyond the
 * seeded arrival generator and runs single-threaded inside one event
 * queue, so a fixed configuration is byte-identical on every run;
 * sweeps parallelise whole sims via runReplicas()/JobPump and reduce
 * in index order.
 */

#ifndef MOBIUS_SERVE_SERVE_SIM_HH
#define MOBIUS_SERVE_SERVE_SIM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault_plan.hh"
#include "runtime/api.hh"
#include "runtime/run_context.hh"
#include "serve/batcher.hh"
#include "serve/placement.hh"
#include "serve/request.hh"
#include "serve/slo.hh"
#include "simcore/arrival.hh"

namespace mobius
{

/** Everything one serving run needs. */
struct ServeOptions
{
    /** GPUs per root complex (makeCommodityServer groups). */
    std::vector<int> groups = {2, 2};
    GptConfig model = gpt8b(); //!< the served model
    PlacementConfig placement; //!< weight placement policy
    BatchConfig batch;         //!< continuous-batching knobs
    SloConfig slo;             //!< end-to-end deadline policy
    FaultPlan faults;          //!< empty = fault-free
    std::uint64_t faultSeed = 1;
    MetricsRegistry *metrics = nullptr; //!< serve.* sink, optional
    /**
     * Record engine + iteration spans (off by default: span storage
     * grows with traffic, and serving runs are long).
     */
    bool recordSpans = false;
    TransferEngineConfig xferCfg; //!< interconnect knobs
};

/** One serving simulation; submit requests, then run() once. */
class ServeSim
{
  public:
    explicit ServeSim(ServeOptions opts);
    ~ServeSim();

    /**
     * Submit one request (before run()).
     * @return the assigned request id.
     */
    int submit(ServeRequest req);

    /**
     * Submit @p count copies of @p prototype with arrival times drawn
     * from a seeded phased Poisson process starting at the
     * prototype's arrival time (simcore/arrival.hh).
     * @return the first assigned id.
     */
    int submitOpenLoop(const ServeRequest &prototype, int count,
                       const std::vector<ArrivalPhase> &phases,
                       std::uint64_t seed);

    /** Run to completion (once) and reduce the metrics. */
    ServeMetrics run();

    /** Per-request records (valid after run()). */
    const std::vector<RequestRecord> &records() const;

    /** The inference stage plan in force. */
    const ServePlan &plan() const;

    /** The underlying run context (tests poke memory/trace). */
    RunContext &ctx();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace mobius

#endif // MOBIUS_SERVE_SERVE_SIM_HH
