/**
 * @file
 * Serving placement policies and the inference stage plan.
 *
 * Three ways to place FP16 weights for request-driven inference on a
 * commodity multi-GPU box, plus a load-adaptive hybrid:
 *
 *  - MobiusSwap: the paper's mechanism applied to inference. Layers
 *    are cut into S = stagesPerGpu x N uniform pipeline stages,
 *    cross-mapped over the GPUs (§3.3) so consecutive stages live
 *    under different root complexes; each GPU keeps only
 *    `residentStages` of its stages resident and ring-prefetches the
 *    next stage H2D while earlier stages compute. GPU footprint is a
 *    small carve-out, so most of DRAM-sized models fit and most of
 *    GPU memory is available for KV-cache.
 *
 *  - AllInGpu: the same pipeline with every owned stage resident for
 *    the whole run — fastest iterations, but the model must fit in
 *    aggregate GPU memory and the weight carve-out squeezes KV room.
 *
 *  - ZeroGather: the ZeRO-Infinity-style baseline. Requests are
 *    data-parallel over GPUs (each request's KV lives whole on its
 *    home GPU); every iteration each layer chunk is re-gathered on
 *    every GPU — a 1/N shard H2D from DRAM plus pairwise peer
 *    exchange — in lockstep, so each GPU receives the full model per
 *    iteration (N x Mobius's traffic).
 *
 *  - Adaptive: the MOEBIUS move — runtime placement switching on
 *    pending-queue watermarks. Light load runs MobiusSwap (minimal
 *    residency); when backlog crosses `switchHigh` and the full model
 *    fits beside the live KV, it switches to AllInGpu for throughput,
 *    and switches back when the queue drains below `switchLow`.
 */

#ifndef MOBIUS_SERVE_PLACEMENT_HH
#define MOBIUS_SERVE_PLACEMENT_HH

#include <string>
#include <vector>

#include "base/units.hh"
#include "hw/topology.hh"
#include "model/cost_model.hh"

namespace mobius
{

/** Weight placement policy for serving. */
enum class ServePlacement
{
    MobiusSwap, //!< ring-prefetched stage swapping (the paper)
    AllInGpu,   //!< fully resident pipeline (must fit)
    ZeroGather, //!< per-iteration all-gather baseline
    Adaptive,   //!< MobiusSwap <-> AllInGpu on load watermarks
};

/** @return printable policy name ("mobius-swap", ...). */
const char *servePlacementName(ServePlacement p);

/** Parse a policy name; fatal() on unknown. */
ServePlacement parseServePlacement(const std::string &name);

/** Placement knobs. */
struct PlacementConfig
{
    ServePlacement policy = ServePlacement::MobiusSwap;
    int stagesPerGpu = 4;   //!< pipeline stages per GPU
    int residentStages = 2; //!< swap carve-out per GPU, in stages
    int lookahead = 1;      //!< gather-mode chunk prefetch depth
    bool crossOrder = true; //!< cross mapping vs sequential
    /**
     * Stream KV-cache from DRAM each iteration instead of pinning it
     * in GPU memory (FlexGen-style). Removes the GPU-side KV
     * capacity limit at the cost of per-iteration KV traffic that
     * shows up as swap-stall. Pipelined placements only.
     */
    bool kvDram = false;
    int switchHigh = 8; //!< adaptive: backlog to go all-in-GPU
    int switchLow = 1;  //!< adaptive: backlog to fall back to swap
    int switchCooldownIters = 2; //!< min iterations between switches
};

/** One contiguous layer range bound to a GPU. */
struct ServeStage
{
    int lo = 0;  //!< first layer (inclusive)
    int hi = 0;  //!< last layer (exclusive)
    int gpu = 0; //!< executing GPU
    Bytes weightBytes = 0;        //!< FP16 weights of the range
    Bytes kvBytesPerToken = 0;    //!< KV bytes/token for the range
    double secondsPerToken = 0.0; //!< forward compute per token
    double floorSeconds = 0.0;    //!< kernel-launch floor

    /** Forward seconds for a batch totalling @p tokens tokens. */
    double
    time(int tokens) const
    {
        if (tokens <= 0)
            return 0.0;
        const double t = secondsPerToken * tokens;
        return t > floorSeconds ? t : floorSeconds;
    }
};

/** The full inference stage plan for one (model, server, config). */
struct ServePlan
{
    std::vector<ServeStage> stages; //!< in execution order
    std::vector<int> gpuOrder;      //!< the mapping permutation used
    /** Per GPU: its stage ids, in execution order. */
    std::vector<std::vector<int>> owned;
    Bytes kvBytesPerToken = 0;  //!< whole-model KV bytes per token
    /** Per GPU: KV bytes/token of the layers it executes. */
    std::vector<Bytes> kvPerTokenGpu;
    Bytes actBytesPerToken = 0; //!< boundary activation per token

    int
    numStages() const
    {
        return static_cast<int>(stages.size());
    }

    /** Total FP16 weight bytes of the stages GPU @p gpu owns. */
    Bytes ownedBytes(int gpu) const;

    /** Largest single stage GPU @p gpu owns (carve-out unit). */
    Bytes maxOwnedStageBytes(int gpu) const;

    /** Largest stage overall (gather-mode chunk scratch unit). */
    Bytes maxStageBytes() const;

    /** Whole-model FP16 bytes. */
    Bytes totalWeightBytes() const;
};

/**
 * Cut @p cost's model into stagesPerGpu x N uniform stages and map
 * them over @p topo (cross or sequential order per @p cfg).
 */
ServePlan buildServePlan(const CostModel &cost, const Topology &topo,
                         const PlacementConfig &cfg);

} // namespace mobius

#endif // MOBIUS_SERVE_PLACEMENT_HH
