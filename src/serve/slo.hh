/**
 * @file
 * SLO accounting and the serving metrics roll-up.
 *
 * A request meets its SLO when it finishes within its end-to-end
 * deadline (per-request override, else the sim-wide default; no
 * deadline = always met). The headline number is SLO goodput: tokens
 * of SLO-meeting requests per second of makespan — the quantity that
 * collapses when a placement policy cannot keep up with offered load,
 * which is exactly what the Mobius-swap vs ZeRO-gather comparison
 * gates on.
 *
 * reduceServeMetrics() folds the per-request records into one
 * ServeMetrics: latency quantiles via obs' exactQuantile, SLO
 * attainment/goodput, throughput, and a stable FNV-1a fingerprint
 * over every record — the equality gate the bench uses to prove a
 * fixed seed is byte-identical at any --threads width.
 */

#ifndef MOBIUS_SERVE_SLO_HH
#define MOBIUS_SERVE_SLO_HH

#include <cstdint>
#include <vector>

#include "base/units.hh"
#include "serve/request.hh"

namespace mobius
{

/** Sim-wide SLO policy. */
struct SloConfig
{
    /** Default end-to-end deadline seconds; 0 = no SLO (always met). */
    double e2eSeconds = 0.0;
};

/** @return the effective deadline for @p spec (0 = none). */
double effectiveSlo(const ServeRequest &spec, const SloConfig &slo);

/** One serving run, reduced. */
struct ServeMetrics
{
    std::uint64_t requests = 0;  //!< submitted
    std::uint64_t completed = 0; //!< finished generation
    std::uint64_t sloMet = 0;    //!< finished within deadline
    double makespan = 0.0;       //!< last finish time (seconds)

    double e2eP50 = 0.0;  //!< median end-to-end latency
    double e2eP99 = 0.0;  //!< tail end-to-end latency
    double e2eMean = 0.0; //!< mean end-to-end latency
    double e2eMax = 0.0;  //!< worst end-to-end latency
    double ttftP50 = 0.0; //!< median time to first token
    double ttftP99 = 0.0; //!< tail time to first token

    /** Totals of the per-request latency categories (seconds). */
    double queueSeconds = 0.0;
    double prefillSeconds = 0.0;
    double decodeSeconds = 0.0;
    double stallSeconds = 0.0;
    /** max over requests of |sum(categories) - e2e| — gated 1e-9. */
    double worstSumDrift = 0.0;

    double tokensPerSec = 0.0;   //!< all processed tokens / makespan
    double requestsPerSec = 0.0; //!< completed / makespan
    double sloAttainment = 0.0;  //!< sloMet / completed
    /** Tokens of SLO-meeting requests / makespan — the headline. */
    double sloGoodputTokensPerSec = 0.0;

    double avgOccupancy = 0.0;     //!< mean running batch size
    int maxOccupancy = 0;          //!< peak running batch size
    std::uint64_t iterations = 0;  //!< batch iterations executed
    std::uint64_t swapLoads = 0;   //!< weight stage loads issued
    Bytes swapBytes = 0;           //!< weight bytes moved H2D
    std::uint64_t switches = 0;    //!< adaptive placement switches
    std::uint64_t admissions = 0;  //!< requests admitted to batches

    std::uint64_t faultFailures = 0; //!< injected transfer failures
    std::uint64_t faultRetries = 0;  //!< retries issued
    std::uint64_t faultCrashes = 0;  //!< GPU crash events

    /** FNV-1a digest of every per-request record, in id order. */
    std::uint64_t fingerprint = 0;
};

/**
 * Reduce @p records (all of them completed) into the request-derived
 * fields of ServeMetrics; the simulator fills the batch/swap/fault
 * fields afterwards. @p makespan is the last finish time.
 */
ServeMetrics reduceServeMetrics(
    const std::vector<RequestRecord> &records, double makespan);

/** The fingerprint alone (also folded by reduceServeMetrics). */
std::uint64_t
serveFingerprint(const std::vector<RequestRecord> &records);

} // namespace mobius

#endif // MOBIUS_SERVE_SLO_HH
