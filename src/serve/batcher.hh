/**
 * @file
 * Orca-style continuous batching at iteration granularity.
 *
 * Requests join the running batch only at iteration boundaries and
 * leave individually the moment their generation completes; the batch
 * composition therefore changes continuously instead of draining in
 * static waves. Admission is strictly FIFO with head-of-line
 * blocking: the batcher admits from the queue head while (a) the
 * running set is below the current capacity and (b) the caller can
 * reserve the head request's KV-cache; it never skips past a request
 * that does not fit, so no request can starve behind later arrivals.
 *
 * Capacity is either a fixed cap or load-adaptive: under backlog the
 * cap doubles toward `maxBatch` (throughput mode), and when the queue
 * empties it halves toward `minBatch` (latency mode — smaller batches
 * mean fewer riders per iteration). The serving bench gates that
 * occupancy never exceeds the cap that was in force at admission.
 */

#ifndef MOBIUS_SERVE_BATCHER_HH
#define MOBIUS_SERVE_BATCHER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace mobius
{

/** Continuous-batching knobs. */
struct BatchConfig
{
    int maxBatch = 32;     //!< hard cap on concurrent requests
    bool adaptive = false; //!< load-adaptive capacity when true
    int minBatch = 4;      //!< adaptive floor (latency mode)
};

/** FIFO admission queue + capacity controller. */
class ContinuousBatcher
{
  public:
    explicit ContinuousBatcher(BatchConfig cfg);

    /** Queue request @p id (arrival order = admission order). */
    void enqueue(int id);

    /** @return queued (not yet admitted) request count. */
    int
    pendingDepth() const
    {
        return static_cast<int>(pending_.size());
    }

    /** @return the capacity currently in force. */
    int capacity() const { return cap_; }

    /**
     * Admit from the queue head while the batch has room and
     * @p try_reserve (the KV-cache reservation) succeeds; stops at
     * the first request that cannot be seated (FIFO, no skipping).
     * @param running current running-batch size
     * @return admitted request ids, in queue order
     */
    std::vector<int>
    admit(int running, const std::function<bool(int)> &try_reserve);

    /**
     * Iteration-boundary hook for the adaptive controller:
     * backlog grows the cap, an empty queue shrinks it.
     */
    void onIterationEnd();

    /** Lifetime counters. */
    struct Stats
    {
        std::uint64_t admissions = 0; //!< requests admitted
        std::uint64_t capRaises = 0;  //!< adaptive cap doublings
        std::uint64_t capDrops = 0;   //!< adaptive cap halvings
        int maxCapacity = 0;          //!< largest cap in force
    };

    const Stats &stats() const { return stats_; }

  private:
    BatchConfig cfg_;
    std::deque<int> pending_;
    int cap_;
    Stats stats_;
};

} // namespace mobius

#endif // MOBIUS_SERVE_BATCHER_HH
