#include "serve/serve_sim.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "base/logging.hh"
#include "obs/prof.hh"

namespace mobius
{

namespace
{

/** Weight loads sit behind activations, like the training executor. */
constexpr int kPrioActivation = 1;
constexpr int kPrioKvStream = 2;
constexpr int kPrioWeightBase = 10;

} // namespace

/** All runtime state of one serving simulation. */
struct ServeSim::Impl
{
    /** Residency state of one pipeline stage's weights. */
    struct StageRt
    {
        bool resident = false;
        bool loading = false;
    };

    /** Per-GPU weight carve-out and swap ring. */
    struct GpuRt
    {
        Bytes fullBytes = 0;   //!< all owned stages, FP16
        Bytes swapBytes = 0;   //!< residentStages-sized carve-out
        Bytes budget = 0;      //!< carve-out currently allocated
        Bytes weightUsed = 0;  //!< resident + in-flight stage bytes
        bool swapping = false; //!< budget < fullBytes: ring active
        std::size_t nextLoad = 0; //!< ring cursor into owned order
    };

    explicit Impl(ServeOptions o)
        : opts(std::move(o)),
          server(makeCommodityServer(opts.groups)),
          work(opts.model, server),
          plan(buildServePlan(work.cost(), server.topo,
                              opts.placement)),
          ctx(server, opts.xferCfg, 0.0, opts.metrics, {},
              &opts.faults, opts.faultSeed),
          batcher(opts.batch),
          gather(opts.placement.policy == ServePlacement::ZeroGather)
    {
        const int gpus = ctx.numGpus();
        stageRt.assign(plan.stages.size(), {});
        gpuRt.assign(static_cast<std::size_t>(gpus), {});
        kvAllocated.assign(static_cast<std::size_t>(gpus), 0);
        ctx.trace().setEnabled(opts.recordSpans);
        ctx.setExtraBusy([this] { return completed < records.size(); });
    }

    // ---- configuration & engines -------------------------------
    ServeOptions opts;
    Server server;
    Workload work;
    ServePlan plan;
    RunContext ctx;
    ContinuousBatcher batcher;
    const bool gather;

    // ---- request state -----------------------------------------
    std::vector<RequestRecord> records;
    std::vector<int> running;       //!< admitted, not yet finished
    std::size_t completed = 0;
    double lastFinish = 0.0;
    /** Per request: KV bytes reserved per GPU (freed at finish). */
    std::vector<std::vector<Bytes>> kvHeld;
    std::vector<Bytes> kvAllocated; //!< per GPU, live KV bytes

    // ---- placement state ---------------------------------------
    std::vector<StageRt> stageRt;
    std::vector<GpuRt> gpuRt;
    bool modeFull = false;     //!< pipeline: all stages resident
    int loadsInFlight = 0;
    std::uint64_t switches = 0;
    std::uint64_t lastSwitchIter = 0;
    Bytes gatherScratchBudget = 0;

    // ---- per-iteration state -----------------------------------
    bool iterActive = false;
    double iterStart = 0.0;
    double iterIdeal = 0.0; //!< ideal compute chain, seconds
    int iterTokens = 0;     //!< total tokens this iteration
    std::vector<char> actReady;  //!< per stage
    std::vector<char> kvReady;   //!< per stage
    std::vector<char> started;   //!< per stage
    std::vector<int> gpuTokens;  //!< gather: tokens per home GPU
    // gather lockstep chunk state
    std::vector<char> gIssued, gGathered, gStarted, gDone;
    std::vector<int> gLanded;       //!< pieces landed, of gpus^2
    std::vector<int> gComputeLeft;  //!< computes outstanding
    Bytes gScratchUsed = 0;

    // ---- counters ----------------------------------------------
    std::uint64_t iterations = 0;
    std::uint64_t swapLoads = 0;
    Bytes swapBytes = 0;
    double occupancySum = 0.0;
    int maxOccupancy = 0;
    bool ran = false;

    // ============================================================
    // Setup
    // ============================================================

    int
    numStages() const
    {
        return plan.numStages();
    }

    RequestRecord &
    rec(int id)
    {
        return records[static_cast<std::size_t>(id)];
    }

    const ServeStage &
    stage(int s) const
    {
        return plan.stages[static_cast<std::size_t>(s)];
    }

    /** Reserve weight carve-outs and warm-start residency. */
    void
    initPlacement()
    {
        const int gpus = ctx.numGpus();
        if (gather) {
            // Scratch for (1 + lookahead) gathered chunks per GPU.
            const Bytes chunk = plan.maxStageBytes();
            const int depth = std::min(
                numStages(), 1 + opts.placement.lookahead);
            gatherScratchBudget =
                chunk * static_cast<Bytes>(depth);
            for (int g = 0; g < gpus; ++g)
                ctx.memory(g).alloc(gatherScratchBudget);
            return;
        }
        modeFull =
            opts.placement.policy == ServePlacement::AllInGpu;
        for (int g = 0; g < gpus; ++g) {
            GpuRt &grt = gpuRt[static_cast<std::size_t>(g)];
            grt.fullBytes = plan.ownedBytes(g);
            grt.swapBytes = std::min(
                grt.fullBytes,
                plan.maxOwnedStageBytes(g) *
                    static_cast<Bytes>(
                        opts.placement.residentStages));
            // AllInGpu must seat the whole model: alloc() is fatal
            // on OOM, which the bench reports as the policy's
            // infeasibility marker for DRAM-sized models.
            grt.budget = modeFull ? grt.fullBytes : grt.swapBytes;
            ctx.memory(g).alloc(grt.budget);
            grt.swapping = grt.budget < grt.fullBytes;

            // Warm start: whatever fits the carve-out is resident at
            // t=0 (the steady-state ring reloads it each iteration).
            const auto &owned =
                plan.owned[static_cast<std::size_t>(g)];
            Bytes used = 0;
            std::size_t i = 0;
            for (; i < owned.size(); ++i) {
                const Bytes b =
                    stage(owned[i]).weightBytes;
                if (used + b > grt.budget)
                    break;
                used += b;
                stageRt[static_cast<std::size_t>(owned[i])]
                    .resident = true;
            }
            grt.weightUsed = used;
            grt.nextLoad = i;
        }
    }

    // ============================================================
    // Admission
    // ============================================================

    void
    onArrival(int id)
    {
        batcher.enqueue(id);
        maybeStartIteration();
    }

    /** Try to reserve request @p id's KV-cache; all-or-nothing. */
    bool
    reserveKv(int id)
    {
        RequestRecord &r = rec(id);
        const Bytes tokens =
            static_cast<Bytes>(r.reservedTokens());
        std::vector<Bytes> &held =
            kvHeld[static_cast<std::size_t>(id)];
        if (gather) {
            // Whole-depth KV on the least-loaded GPU (deterministic
            // argmin by index).
            int best = 0;
            for (int g = 1; g < ctx.numGpus(); ++g) {
                if (kvAllocated[static_cast<std::size_t>(g)] <
                    kvAllocated[static_cast<std::size_t>(best)])
                    best = g;
            }
            const Bytes need = plan.kvBytesPerToken * tokens;
            if (!ctx.memory(best).tryAlloc(need))
                return false;
            held[static_cast<std::size_t>(best)] = need;
            kvAllocated[static_cast<std::size_t>(best)] += need;
            r.gpu = best;
            return true;
        }
        if (opts.placement.kvDram)
            return true; // KV lives in DRAM, streamed per iteration
        for (int g = 0; g < ctx.numGpus(); ++g) {
            const Bytes need =
                plan.kvPerTokenGpu[static_cast<std::size_t>(g)] *
                tokens;
            if (need == 0)
                continue;
            if (!ctx.memory(g).tryAlloc(need)) {
                // Roll back the GPUs already charged.
                for (int h = 0; h < g; ++h) {
                    const Bytes got =
                        held[static_cast<std::size_t>(h)];
                    if (got > 0) {
                        ctx.memory(h).free(got);
                        kvAllocated[static_cast<std::size_t>(h)] -=
                            got;
                        held[static_cast<std::size_t>(h)] = 0;
                    }
                }
                return false;
            }
            held[static_cast<std::size_t>(g)] = need;
            kvAllocated[static_cast<std::size_t>(g)] += need;
        }
        return true;
    }

    void
    freeKv(int id)
    {
        std::vector<Bytes> &held =
            kvHeld[static_cast<std::size_t>(id)];
        for (int g = 0; g < ctx.numGpus(); ++g) {
            const Bytes got = held[static_cast<std::size_t>(g)];
            if (got > 0) {
                ctx.memory(g).free(got);
                kvAllocated[static_cast<std::size_t>(g)] -= got;
                held[static_cast<std::size_t>(g)] = 0;
            }
        }
    }

    void
    maybeStartIteration()
    {
        if (iterActive)
            return;
        adaptPlacement();
        MOBIUS_PROF_ZONE("serve.batcher.cycle");
        const double now = ctx.queue().now();
        std::vector<int> admitted = batcher.admit(
            static_cast<int>(running.size()),
            [this](int id) { return reserveKv(id); });
        for (int id : admitted) {
            RequestRecord &r = rec(id);
            r.admit = now;
            r.lat.queue = now - r.spec.arrival;
            running.push_back(id);
        }
        if (running.empty())
            return;
        startIteration();
    }

    // ============================================================
    // Iterations
    // ============================================================

    void
    startIteration()
    {
        iterActive = true;
        iterStart = ctx.queue().now();
        iterIdeal = 0.0;
        ++iterations;
        occupancySum += static_cast<double>(running.size());
        maxOccupancy = std::max(
            maxOccupancy, static_cast<int>(running.size()));

        iterTokens = 0;
        gpuTokens.assign(static_cast<std::size_t>(ctx.numGpus()),
                         0);
        for (int id : running) {
            const RequestRecord &r = rec(id);
            const int t =
                r.generated == 0 ? r.spec.promptTokens : 1;
            iterTokens += t;
            if (gather)
                gpuTokens[static_cast<std::size_t>(r.gpu)] += t;
        }

        if (gather) {
            startGatherIteration();
            return;
        }

        const std::size_t S =
            static_cast<std::size_t>(numStages());
        actReady.assign(S, 0);
        started.assign(S, 0);
        actReady[0] = 1;
        kvReady.assign(S, opts.placement.kvDram ? 0 : 1);
        if (opts.placement.kvDram)
            streamKv();
        for (int s = 0; s < numStages(); ++s)
            tryRunStage(s);
    }

    /** kvDram mode: stream each stage's KV pages in, write-back out. */
    void
    streamKv()
    {
        int ctxTokens = 0;
        for (int id : running)
            ctxTokens += rec(id).totalTokens();
        for (int s = 0; s < numStages(); ++s) {
            const ServeStage &st = stage(s);
            const Bytes in = st.kvBytesPerToken *
                             static_cast<Bytes>(ctxTokens);
            if (in == 0) {
                kvReady[static_cast<std::size_t>(s)] = 1;
                continue;
            }
            TransferRequest req;
            req.src = Endpoint::dram();
            req.dst = Endpoint::gpuAt(st.gpu);
            req.bytes = in;
            req.kind = TrafficKind::Activation;
            req.priority = kPrioKvStream;
            req.label = "kv s" + std::to_string(s);
            req.stage = s;
            req.onComplete = [this, s] {
                kvReady[static_cast<std::size_t>(s)] = 1;
                tryRunStage(s);
            };
            ctx.submitXfer(std::move(req));
            // Write-back of this iteration's new KV entries; small,
            // fire-and-forget (does not gate the next stage).
            const Bytes out = st.kvBytesPerToken *
                              static_cast<Bytes>(iterTokens);
            TransferRequest wb;
            wb.src = Endpoint::gpuAt(st.gpu);
            wb.dst = Endpoint::dram();
            wb.bytes = out;
            wb.kind = TrafficKind::Activation;
            wb.priority = kPrioKvStream + 1;
            wb.label = "kvwb s" + std::to_string(s);
            wb.stage = s;
            ctx.submitXfer(std::move(wb));
        }
    }

    /** Start stage @p s's compute once weights, KV, and input are in. */
    void
    tryRunStage(int s)
    {
        if (!iterActive)
            return;
        const std::size_t i = static_cast<std::size_t>(s);
        if (started[i] || !actReady[i] || !kvReady[i] ||
            !stageRt[i].resident)
            return;
        started[i] = 1;
        const ServeStage &st = stage(s);
        const double dur = st.time(iterTokens);
        iterIdeal += dur;
        ctx.compute(st.gpu).submit(
            dur, [this, s] { onStageDone(s); },
            "serve s" + std::to_string(s), {}, s);
    }

    void
    onStageDone(int s)
    {
        const ServeStage &st = stage(s);
        GpuRt &grt = gpuRt[static_cast<std::size_t>(st.gpu)];
        // Swap ring: this stage is not needed again until the next
        // iteration — evict it and pull the ring forward.
        if (grt.swapping) {
            StageRt &srt = stageRt[static_cast<std::size_t>(s)];
            srt.resident = false;
            grt.weightUsed -= st.weightBytes;
            pumpLoads(st.gpu);
        }
        if (s + 1 == numStages()) {
            endIteration();
            return;
        }
        // Hand the boundary activation to the next stage's GPU.
        const ServeStage &nx = stage(s + 1);
        if (nx.gpu == st.gpu) {
            actReady[static_cast<std::size_t>(s + 1)] = 1;
            tryRunStage(s + 1);
            return;
        }
        TransferRequest req;
        req.src = Endpoint::gpuAt(st.gpu);
        req.dst = Endpoint::gpuAt(nx.gpu);
        req.bytes = std::max<Bytes>(
            1, plan.actBytesPerToken *
                   static_cast<Bytes>(iterTokens));
        req.kind = TrafficKind::Activation;
        req.priority = kPrioActivation;
        req.label = "act s" + std::to_string(s);
        req.stage = s + 1;
        req.onComplete = [this, s] {
            actReady[static_cast<std::size_t>(s + 1)] = 1;
            tryRunStage(s + 1);
        };
        ctx.submitXfer(std::move(req));
    }

    /**
     * Issue ring-order weight loads while the carve-out has room.
     * Loads always follow execution order, so the stage needed
     * soonest is always the one in flight — the serving analogue of
     * the training executor's priority prefetch.
     */
    void
    pumpLoads(int g)
    {
        MOBIUS_PROF_ZONE("serve.swap.pump");
        GpuRt &grt = gpuRt[static_cast<std::size_t>(g)];
        const auto &owned =
            plan.owned[static_cast<std::size_t>(g)];
        if (owned.empty())
            return;
        for (;;) {
            const std::size_t idx = grt.nextLoad % owned.size();
            const int s = owned[idx];
            StageRt &srt = stageRt[static_cast<std::size_t>(s)];
            if (srt.resident || srt.loading)
                break; // ring caught up with residency
            const Bytes b = stage(s).weightBytes;
            if (grt.weightUsed + b > grt.budget)
                break; // wait for the next eviction
            srt.loading = true;
            grt.weightUsed += b;
            ++grt.nextLoad;
            issueLoad(s);
        }
    }

    void
    issueLoad(int s)
    {
        const ServeStage &st = stage(s);
        ++loadsInFlight;
        TransferRequest req;
        req.src = Endpoint::dram();
        req.dst = Endpoint::gpuAt(st.gpu);
        req.bytes = st.weightBytes;
        req.kind = TrafficKind::Parameter;
        req.priority = kPrioWeightBase + s;
        req.label = "load s" + std::to_string(s);
        req.stage = s;
        req.onComplete = [this, s] {
            StageRt &srt = stageRt[static_cast<std::size_t>(s)];
            srt.loading = false;
            srt.resident = true;
            --loadsInFlight;
            ++swapLoads;
            swapBytes += stage(s).weightBytes;
            tryRunStage(s);
        };
        ctx.submitXfer(std::move(req));
    }

    void
    endIteration()
    {
        MOBIUS_PROF_ZONE("serve.iter.end");
        const double now = ctx.queue().now();
        const double dur = now - iterStart;
        // The iteration's compute part is its ideal serial compute
        // chain; everything beyond that was spent blocked on weight
        // swaps, KV streaming, activation hops, gather barriers, or
        // fault retries — the swap-stall category.
        double stall = dur - iterIdeal;
        if (stall < 0.0)
            stall = 0.0;
        const double computePart = dur - stall;

        std::vector<int> still;
        still.reserve(running.size());
        for (int id : running) {
            RequestRecord &r = rec(id);
            ++r.iterations;
            if (r.generated == 0) {
                r.lat.prefill += computePart;
                r.firstToken = now;
                r.generated = 1;
            } else {
                r.lat.decode += computePart;
                ++r.generated;
            }
            r.lat.swapStall += stall;
            if (r.generated >= r.spec.maxNewTokens) {
                finishRequest(id, now);
            } else {
                still.push_back(id);
            }
        }
        running.swap(still);

        if (opts.recordSpans) {
            TraceSpan span;
            span.track = "serve.batcher";
            span.name = "iter" + std::to_string(iterations);
            span.category = "serve";
            span.start = iterStart;
            span.end = now;
            span.work = iterIdeal;
            ctx.trace().record(std::move(span));
        }

        iterActive = false;
        batcher.onIterationEnd();
        maybeStartIteration();
    }

    void
    finishRequest(int id, double now)
    {
        RequestRecord &r = rec(id);
        r.finish = now;
        const double deadline = effectiveSlo(r.spec, opts.slo);
        r.sloMet = deadline <= 0.0 || r.e2e() <= deadline;
        freeKv(id);
        ++completed;
        lastFinish = std::max(lastFinish, now);
    }

    // ============================================================
    // ZeRO-gather iteration (lockstep all-gathered layer chunks)
    // ============================================================

    void
    startGatherIteration()
    {
        const std::size_t S =
            static_cast<std::size_t>(numStages());
        gIssued.assign(S, 0);
        gGathered.assign(S, 0);
        gStarted.assign(S, 0);
        gDone.assign(S, 0);
        gLanded.assign(S, 0);
        gComputeLeft.assign(S, 0);
        gScratchUsed = 0;
        pumpGather();
    }

    void
    pumpGather()
    {
        MOBIUS_PROF_ZONE("serve.gather.pump");
        int frontier = 0;
        while (frontier < numStages() &&
               gDone[static_cast<std::size_t>(frontier)])
            ++frontier;
        const int horizon =
            std::min(numStages(),
                     frontier + 1 + opts.placement.lookahead);
        for (int k = frontier; k < horizon; ++k) {
            const std::size_t ki = static_cast<std::size_t>(k);
            if (gIssued[ki])
                continue;
            const Bytes chunk = stage(k).weightBytes;
            if (gScratchUsed + chunk > gatherScratchBudget)
                break;
            gScratchUsed += chunk;
            gIssued[ki] = 1;
            issueGatherChunk(k);
        }
    }

    /**
     * Gather chunk @p k on every GPU: each GPU fetches a 1/N shard
     * from DRAM, then sends its shard to every peer (staged through
     * the root complexes). A chunk is gathered when all N GPUs hold
     * all N pieces — N^2 landings.
     */
    void
    issueGatherChunk(int k)
    {
        const int gpus = ctx.numGpus();
        const Bytes chunk = stage(k).weightBytes;
        const Bytes piece =
            std::max<Bytes>(1, chunk / static_cast<Bytes>(gpus));
        for (int g = 0; g < gpus; ++g) {
            TransferRequest req;
            req.src = Endpoint::dram();
            req.dst = Endpoint::gpuAt(g);
            req.bytes = piece;
            req.kind = TrafficKind::Parameter;
            req.priority = kPrioWeightBase + k;
            req.label = "shard s" + std::to_string(k);
            req.stage = k;
            req.onComplete = [this, k, g, piece, gpus] {
                onGatherPiece(k);
                for (int p = 0; p < gpus; ++p) {
                    if (p == g)
                        continue;
                    TransferRequest peer;
                    peer.src = Endpoint::gpuAt(g);
                    peer.dst = Endpoint::gpuAt(p);
                    peer.bytes = piece;
                    peer.kind = TrafficKind::Parameter;
                    peer.priority = kPrioWeightBase + k;
                    peer.label = "peer s" + std::to_string(k);
                    peer.stage = k;
                    peer.onComplete = [this, k] {
                        onGatherPiece(k);
                    };
                    ctx.submitXfer(std::move(peer));
                }
            };
            ctx.submitXfer(std::move(req));
        }
    }

    void
    onGatherPiece(int k)
    {
        const int gpus = ctx.numGpus();
        const std::size_t ki = static_cast<std::size_t>(k);
        if (++gLanded[ki] < gpus * gpus)
            return;
        gGathered[ki] = 1;
        tryComputeChunk(k);
    }

    void
    tryComputeChunk(int k)
    {
        const std::size_t ki = static_cast<std::size_t>(k);
        if (gStarted[ki] || !gGathered[ki])
            return;
        if (k > 0 && !gDone[static_cast<std::size_t>(k - 1)])
            return; // lockstep: chunk k-1 must finish everywhere
        gStarted[ki] = 1;
        const int gpus = ctx.numGpus();
        gComputeLeft[ki] = gpus;
        double worst = 0.0;
        for (int g = 0; g < gpus; ++g) {
            const double dur = stage(k).time(
                gpuTokens[static_cast<std::size_t>(g)]);
            worst = std::max(worst, dur);
            ctx.compute(g).submit(
                dur, [this, k] { onChunkComputeDone(k); },
                "serve g" + std::to_string(k), {}, k);
        }
        // The lockstep ideal chain advances by the slowest GPU.
        iterIdeal += worst;
    }

    void
    onChunkComputeDone(int k)
    {
        const std::size_t ki = static_cast<std::size_t>(k);
        if (--gComputeLeft[ki] > 0)
            return;
        gDone[ki] = 1;
        gScratchUsed -= stage(k).weightBytes;
        swapBytes += stage(k).weightBytes *
                     static_cast<Bytes>(ctx.numGpus());
        ++swapLoads;
        if (k + 1 == numStages()) {
            endIteration();
            return;
        }
        pumpGather();
        tryComputeChunk(k + 1);
    }

    // ============================================================
    // Adaptive placement (the MOEBIUS move)
    // ============================================================

    bool
    switchCooledDown() const
    {
        return iterations - lastSwitchIter >=
               static_cast<std::uint64_t>(
                   opts.placement.switchCooldownIters);
    }

    void
    adaptPlacement()
    {
        if (opts.placement.policy != ServePlacement::Adaptive ||
            iterActive)
            return;
        MOBIUS_PROF_ZONE("serve.adapt");
        const int pending = batcher.pendingDepth();
        if (!modeFull && pending >= opts.placement.switchHigh &&
            switchCooledDown()) {
            if (trySwitchToFull()) {
                ++switches;
                lastSwitchIter = iterations;
            }
        } else if (modeFull &&
                   pending <= opts.placement.switchLow &&
                   static_cast<int>(running.size()) * 4 <=
                       opts.batch.maxBatch &&
                   loadsInFlight == 0 && switchCooledDown()) {
            switchToSwap();
            ++switches;
            lastSwitchIter = iterations;
        }
    }

    /** Grow every carve-out to the full model; all-or-nothing. */
    bool
    trySwitchToFull()
    {
        const int gpus = ctx.numGpus();
        std::vector<Bytes> grown(
            static_cast<std::size_t>(gpus), 0);
        for (int g = 0; g < gpus; ++g) {
            GpuRt &grt = gpuRt[static_cast<std::size_t>(g)];
            const Bytes delta = grt.fullBytes - grt.budget;
            if (delta == 0)
                continue;
            if (!ctx.memory(g).tryAlloc(delta)) {
                for (int h = 0; h < g; ++h) {
                    if (grown[static_cast<std::size_t>(h)] > 0)
                        ctx.memory(h).free(
                            grown[static_cast<std::size_t>(h)]);
                }
                return false; // live KV leaves no room; stay in swap
            }
            grown[static_cast<std::size_t>(g)] = delta;
        }
        for (int g = 0; g < gpus; ++g) {
            GpuRt &grt = gpuRt[static_cast<std::size_t>(g)];
            grt.budget = grt.fullBytes;
            grt.swapping = false;
            // Backfill every absent stage now; the loads overlap
            // serving and their cost lands in swap-stall.
            for (int s : plan.owned[static_cast<std::size_t>(g)]) {
                StageRt &srt =
                    stageRt[static_cast<std::size_t>(s)];
                if (srt.resident || srt.loading)
                    continue;
                srt.loading = true;
                grt.weightUsed += stage(s).weightBytes;
                issueLoad(s);
            }
        }
        modeFull = true;
        return true;
    }

    /** Shrink back to the swap carve-out (light load). */
    void
    switchToSwap()
    {
        const int gpus = ctx.numGpus();
        for (int g = 0; g < gpus; ++g) {
            GpuRt &grt = gpuRt[static_cast<std::size_t>(g)];
            if (grt.fullBytes == grt.swapBytes) {
                continue;
            }
            const auto &owned =
                plan.owned[static_cast<std::size_t>(g)];
            // Keep the stages the next iteration needs first.
            const std::size_t keep = std::min(
                owned.size(),
                static_cast<std::size_t>(
                    opts.placement.residentStages));
            for (std::size_t i = keep; i < owned.size(); ++i) {
                StageRt &srt = stageRt[static_cast<std::size_t>(
                    owned[i])];
                if (srt.resident) {
                    srt.resident = false;
                    grt.weightUsed -=
                        stage(owned[i]).weightBytes;
                }
            }
            ctx.memory(g).free(grt.budget - grt.swapBytes);
            grt.budget = grt.swapBytes;
            grt.swapping = true;
            grt.nextLoad = keep;
        }
        modeFull = false;
    }

    // ============================================================
    // Run + reduce
    // ============================================================

    ServeMetrics
    runAll()
    {
        if (ran)
            fatal("ServeSim::run() may only be called once");
        ran = true;
        initPlacement();
        for (std::size_t i = 0; i < records.size(); ++i) {
            const int id = static_cast<int>(i);
            ctx.queue().schedule(records[i].spec.arrival,
                                 [this, id] { onArrival(id); });
        }
        ctx.queue().run();
        if (completed != records.size())
            panic("serving deadlock: %zu of %zu requests finished",
                  completed, records.size());

        ServeMetrics m = reduceServeMetrics(records, lastFinish);
        m.iterations = iterations;
        m.swapLoads = swapLoads;
        m.swapBytes = swapBytes;
        m.switches = switches;
        m.admissions = batcher.stats().admissions;
        m.maxOccupancy = maxOccupancy;
        if (iterations > 0)
            m.avgOccupancy =
                occupancySum / static_cast<double>(iterations);
        if (ctx.faults()) {
            const FaultCounters &fc = ctx.faults()->counters();
            m.faultFailures = fc.failures;
            m.faultRetries = fc.retries;
            m.faultCrashes = fc.crashes;
        }
        exportMetrics(m);
        return m;
    }

    void
    exportMetrics(const ServeMetrics &m)
    {
        MetricsRegistry *reg =
            opts.metrics && opts.metrics->enabled() ? opts.metrics
                                                    : nullptr;
        if (!reg)
            return;
        reg->counter("serve.requests")
            .add(static_cast<double>(m.requests));
        reg->counter("serve.completed")
            .add(static_cast<double>(m.completed));
        reg->counter("serve.slo.met")
            .add(static_cast<double>(m.sloMet));
        reg->counter("serve.iterations")
            .add(static_cast<double>(m.iterations));
        reg->counter("serve.admissions")
            .add(static_cast<double>(m.admissions));
        reg->counter("serve.swap.loads")
            .add(static_cast<double>(m.swapLoads));
        reg->counter("serve.swap.bytes")
            .add(static_cast<double>(m.swapBytes));
        reg->counter("serve.switches")
            .add(static_cast<double>(m.switches));
        reg->gauge("serve.slo.attainment").set(m.sloAttainment);
        reg->gauge("serve.goodput.tokens_per_sec")
            .set(m.sloGoodputTokensPerSec);
        reg->gauge("serve.latency.e2e.p50").set(m.e2eP50);
        reg->gauge("serve.latency.e2e.p99").set(m.e2eP99);
        reg->gauge("serve.latency.ttft.p50").set(m.ttftP50);
        reg->gauge("serve.latency.ttft.p99").set(m.ttftP99);
        reg->gauge("serve.batch.occupancy.max")
            .set(static_cast<double>(m.maxOccupancy));
        reg->gauge("serve.batch.occupancy.avg")
            .set(m.avgOccupancy);
        for (const RequestRecord &r : records) {
            if (r.finish >= 0.0)
                reg->histogram("serve.e2e.seconds").record(r.e2e());
        }
    }
};

ServeSim::ServeSim(ServeOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts)))
{
}

ServeSim::~ServeSim() = default;

int
ServeSim::submit(ServeRequest req)
{
    if (impl_->ran)
        fatal("ServeSim: submit() after run()");
    if (req.arrival < 0.0)
        fatal("request arrival must be >= 0 (got %g)", req.arrival);
    if (req.promptTokens <= 0 || req.maxNewTokens <= 0)
        fatal("request needs positive prompt (%d) and generation "
              "(%d) lengths",
              req.promptTokens, req.maxNewTokens);
    const int id = static_cast<int>(impl_->records.size());
    req.id = id;
    if (req.name.empty())
        req.name = "req" + std::to_string(id);
    RequestRecord r;
    r.spec = std::move(req);
    impl_->records.push_back(std::move(r));
    impl_->kvHeld.emplace_back(
        static_cast<std::size_t>(impl_->ctx.numGpus()), 0);
    return id;
}

int
ServeSim::submitOpenLoop(const ServeRequest &prototype, int count,
                         const std::vector<ArrivalPhase> &phases,
                         std::uint64_t seed)
{
    if (count <= 0)
        return static_cast<int>(impl_->records.size());
    ArrivalProcess proc(phases, seed, prototype.arrival);
    int first = -1;
    for (int i = 0; i < count; ++i) {
        ServeRequest req = prototype;
        req.arrival = proc.next();
        req.name.clear();
        const int id = submit(std::move(req));
        if (first < 0)
            first = id;
    }
    return first;
}

ServeMetrics
ServeSim::run()
{
    return impl_->runAll();
}

const std::vector<RequestRecord> &
ServeSim::records() const
{
    return impl_->records;
}

const ServePlan &
ServeSim::plan() const
{
    return impl_->plan;
}

RunContext &
ServeSim::ctx()
{
    return impl_->ctx;
}

} // namespace mobius
