#include "serve/batcher.hh"

#include <algorithm>

#include "base/logging.hh"
#include "obs/prof.hh"

namespace mobius
{

ContinuousBatcher::ContinuousBatcher(BatchConfig cfg) : cfg_(cfg)
{
    if (cfg_.maxBatch <= 0)
        fatal("batch capacity must be positive (got %d)",
              cfg_.maxBatch);
    if (cfg_.minBatch <= 0 || cfg_.minBatch > cfg_.maxBatch)
        fatal("adaptive batch floor must be in [1, %d] (got %d)",
              cfg_.maxBatch, cfg_.minBatch);
    cap_ = cfg_.adaptive ? cfg_.minBatch : cfg_.maxBatch;
    stats_.maxCapacity = cap_;
}

void
ContinuousBatcher::enqueue(int id)
{
    pending_.push_back(id);
}

std::vector<int>
ContinuousBatcher::admit(
    int running, const std::function<bool(int)> &try_reserve)
{
    MOBIUS_PROF_ZONE("serve.batcher.admit");
    std::vector<int> admitted;
    while (!pending_.empty() &&
           running + static_cast<int>(admitted.size()) < cap_) {
        const int id = pending_.front();
        if (try_reserve && !try_reserve(id))
            break; // head-of-line blocking: FIFO, never skip
        pending_.pop_front();
        admitted.push_back(id);
        ++stats_.admissions;
    }
    return admitted;
}

void
ContinuousBatcher::onIterationEnd()
{
    if (!cfg_.adaptive)
        return;
    if (!pending_.empty() && cap_ < cfg_.maxBatch) {
        cap_ = std::min(cfg_.maxBatch, cap_ * 2);
        ++stats_.capRaises;
        stats_.maxCapacity = std::max(stats_.maxCapacity, cap_);
    } else if (pending_.empty() && cap_ > cfg_.minBatch) {
        cap_ = std::max(cfg_.minBatch, cap_ / 2);
        ++stats_.capDrops;
    }
}

} // namespace mobius
