/**
 * @file
 * Synthetic WikiText-like corpus for the convergence experiment
 * (Fig. 13 substitutes WikiText-2, which we cannot ship).
 *
 * Tokens are drawn from a Zipfian unigram distribution blended with a
 * deterministic bigram rule (with probability ~0.5 the next token is
 * a fixed function of the previous one). The bigram structure is
 * learnable, so a language model's loss drops well below the unigram
 * entropy as training progresses — giving Fig. 13 a meaningful
 * decreasing curve.
 */

#ifndef MOBIUS_DATA_CORPUS_HH
#define MOBIUS_DATA_CORPUS_HH

#include <vector>

#include "base/rng.hh"

namespace mobius
{

/** Corpus generation knobs. */
struct CorpusConfig
{
    int vocab = 96;             //!< token alphabet size
    int numTokens = 100000;     //!< stream length
    double bigramProb = 0.5;    //!< P(next = rule(prev))
    double zipfExponent = 1.1;  //!< unigram skew
    std::uint64_t seed = 7;     //!< generator seed
};

/** A deterministic synthetic token stream. */
class SyntheticCorpus
{
  public:
    /** Generate the stream for @p cfg. */
    explicit SyntheticCorpus(const CorpusConfig &cfg = {});

    /** The full token stream. */
    const std::vector<int> &tokens() const { return tokens_; }
    /** @return token alphabet size. */
    int vocab() const { return cfg_.vocab; }

    /** One LM training sample: inputs and shifted targets. */
    struct LmSample
    {
        std::vector<int> input;  //!< tokens [t, t+seq)
        std::vector<int> target; //!< tokens [t+1, t+seq+1)
    };

    /** Sample a random contiguous window of @p seq_len tokens. */
    LmSample sample(int seq_len, Rng &rng) const;

    /** Empirical unigram entropy in nats (loss floor reference). */
    double unigramEntropy() const;

  private:
    CorpusConfig cfg_;
    std::vector<int> tokens_;
};

} // namespace mobius

#endif // MOBIUS_DATA_CORPUS_HH
