#include "data/corpus.hh"

#include <cmath>
#include <vector>

#include "base/logging.hh"

namespace mobius
{

SyntheticCorpus::SyntheticCorpus(const CorpusConfig &cfg) : cfg_(cfg)
{
    if (cfg_.vocab < 2 || cfg_.numTokens < 2)
        fatal("corpus needs vocab >= 2 and at least 2 tokens");

    // Zipfian cumulative distribution over the vocabulary.
    std::vector<double> cdf(static_cast<std::size_t>(cfg_.vocab));
    double total = 0.0;
    for (int i = 0; i < cfg_.vocab; ++i) {
        total += 1.0 / std::pow(i + 1.0, cfg_.zipfExponent);
        cdf[i] = total;
    }
    for (auto &v : cdf)
        v /= total;

    Rng rng(cfg_.seed);
    auto draw_zipf = [&] {
        double u = rng.uniform();
        int lo = 0, hi = cfg_.vocab - 1;
        while (lo < hi) {
            int mid = (lo + hi) / 2;
            if (cdf[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    };
    // Fixed "grammar": a pseudo-random but deterministic successor
    // function.
    auto rule = [&](int prev) {
        return static_cast<int>(
            (static_cast<std::uint64_t>(prev) * 2654435761ULL + 17) %
            static_cast<std::uint64_t>(cfg_.vocab));
    };

    tokens_.reserve(static_cast<std::size_t>(cfg_.numTokens));
    int prev = draw_zipf();
    tokens_.push_back(prev);
    for (int i = 1; i < cfg_.numTokens; ++i) {
        int next = rng.uniform() < cfg_.bigramProb ? rule(prev)
                                                   : draw_zipf();
        tokens_.push_back(next);
        prev = next;
    }
}

SyntheticCorpus::LmSample
SyntheticCorpus::sample(int seq_len, Rng &rng) const
{
    if (seq_len + 1 > static_cast<int>(tokens_.size()))
        fatal("corpus too small for sequence length %d", seq_len);
    std::uint64_t max_start = tokens_.size() -
        static_cast<std::size_t>(seq_len) - 1;
    std::size_t start = rng.below(max_start + 1);
    LmSample s;
    s.input.assign(tokens_.begin() + start,
                   tokens_.begin() + start + seq_len);
    s.target.assign(tokens_.begin() + start + 1,
                    tokens_.begin() + start + seq_len + 1);
    return s;
}

double
SyntheticCorpus::unigramEntropy() const
{
    std::vector<double> counts(static_cast<std::size_t>(cfg_.vocab),
                               0.0);
    for (int t : tokens_)
        counts[t] += 1.0;
    double h = 0.0;
    for (double c : counts) {
        if (c > 0) {
            double p = c / tokens_.size();
            h -= p * std::log(p);
        }
    }
    return h;
}

} // namespace mobius
