#include "model/cost_model.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mobius
{

CostModel::CostModel(const ModelDesc &model, const GpuSpec &gpu,
                     TrainConfig cfg)
    : model_(&model), gpu_(&gpu), cfg_(cfg)
{
    if (cfg_.microbatchSize < 1 || cfg_.numMicrobatches < 1)
        fatal("train config needs positive microbatch size/count");
    if (cfg_.mfu <= 0 || cfg_.mfu > 1)
        fatal("mfu must be in (0, 1]");
}

void
CostModel::checkRange(int lo, int hi) const
{
    if (lo < 0 || hi > numLayers() || lo >= hi)
        panic("bad layer range [%d, %d)", lo, hi);
}

double
CostModel::fwdTime(int i) const
{
    const LayerDesc &l = model_->layers[i];
    double flops = l.fwdFlopsPerSample * cfg_.microbatchSize;
    return flops / (gpu_->fp16Flops * cfg_.mfu) + cfg_.kernelLatency;
}

double
CostModel::bwdTime(int i) const
{
    // Backward is ~2x forward FLOPs; checkpointing recomputes the
    // forward on top of that (§3.1 assumes checkpointing).
    double factor = cfg_.activationCheckpointing ? 3.0 : 2.0;
    const LayerDesc &l = model_->layers[i];
    double flops = factor * l.fwdFlopsPerSample * cfg_.microbatchSize;
    return flops / (gpu_->fp16Flops * cfg_.mfu) + cfg_.kernelLatency;
}

Bytes
CostModel::paramBytes(int i) const
{
    return model_->layers[i].paramBytesFp16();
}

Bytes
CostModel::gradBytes(int i) const
{
    return model_->layers[i].gradBytesFp16();
}

Bytes
CostModel::actBytes(int i) const
{
    return model_->layers[i].actBytesPerSample *
        static_cast<Bytes>(cfg_.microbatchSize);
}

Bytes
CostModel::inActBytes(int i) const
{
    if (i == 0) {
        // Token ids: 4 bytes per position.
        return static_cast<Bytes>(model_->seqLen) * 4 *
            static_cast<Bytes>(cfg_.microbatchSize);
    }
    return actBytes(i - 1);
}

Bytes
CostModel::workBytes(int i) const
{
    return model_->layers[i].workBytesPerSample *
        static_cast<Bytes>(cfg_.microbatchSize);
}

Bytes
CostModel::rangeParamBytes(int lo, int hi) const
{
    checkRange(lo, hi);
    Bytes total = 0;
    for (int i = lo; i < hi; ++i)
        total += paramBytes(i);
    return total;
}

Bytes
CostModel::rangeGradBytes(int lo, int hi) const
{
    checkRange(lo, hi);
    Bytes total = 0;
    for (int i = lo; i < hi; ++i)
        total += gradBytes(i);
    return total;
}

double
CostModel::rangeFwdTime(int lo, int hi) const
{
    checkRange(lo, hi);
    double total = 0;
    for (int i = lo; i < hi; ++i)
        total += fwdTime(i);
    return total;
}

double
CostModel::rangeBwdTime(int lo, int hi) const
{
    checkRange(lo, hi);
    double total = 0;
    for (int i = lo; i < hi; ++i)
        total += bwdTime(i);
    return total;
}

Bytes
CostModel::stageMemFwd(int lo, int hi) const
{
    checkRange(lo, hi);
    // Weights of every layer in the stage, plus the live tensors of
    // the busiest layer: its input, its output, and its workspace.
    // (With checkpointing, earlier boundary activations are offloaded
    // to DRAM as soon as the next layer consumed them.)
    Bytes peak_live = 0;
    for (int i = lo; i < hi; ++i) {
        Bytes live = inActBytes(i) + actBytes(i) + workBytes(i);
        peak_live = std::max(peak_live, live);
    }
    return rangeParamBytes(lo, hi) + peak_live;
}

Bytes
CostModel::optimizerBytes(int i) const
{
    // FP32 master copy + Adam first and second moments.
    return 12 * model_->layers[i].paramCount;
}

Bytes
CostModel::stageMemResident(int lo, int hi,
                            int num_microbatches) const
{
    checkRange(lo, hi);
    Bytes opt = 0;
    Bytes checkpoints = 0;
    for (int i = lo; i < hi; ++i)
        opt += optimizerBytes(i);
    // One boundary input activation per microbatch survives until
    // the backward pass reaches this stage.
    checkpoints = inActBytes(lo) * static_cast<Bytes>(num_microbatches);
    return stageMemBwd(lo, hi) + opt + checkpoints;
}

Bytes
CostModel::stageMemBwd(int lo, int hi) const
{
    checkRange(lo, hi);
    // Backward additionally holds gradient buffers for the stage's
    // weights, the incoming activation gradient, and recomputation
    // scratch (about the forward's live set again).
    Bytes peak_live = 0;
    for (int i = lo; i < hi; ++i) {
        Bytes live = 2 * (inActBytes(i) + actBytes(i)) + workBytes(i);
        peak_live = std::max(peak_live, live);
    }
    return rangeParamBytes(lo, hi) + rangeGradBytes(lo, hi) +
        peak_live;
}

} // namespace mobius
