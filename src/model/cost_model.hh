/**
 * @file
 * Shared cost model: layer execution times and memory footprints on a
 * given GPU, for a given training configuration.
 *
 * Both the executors (src/runtime) and the partition planner
 * (src/plan) consume this model, mirroring the paper's flow where the
 * profiler measures per-layer time/memory and the MIP uses those
 * numbers (§3.2). In this reproduction the "measurement" is analytic:
 * FLOPs / (peak FP16 throughput x efficiency) + a fixed kernel
 * launch latency.
 */

#ifndef MOBIUS_MODEL_COST_MODEL_HH
#define MOBIUS_MODEL_COST_MODEL_HH

#include "hw/gpu_spec.hh"
#include "model/model.hh"

namespace mobius
{

/** Knobs of one fine-tuning run. */
struct TrainConfig
{
    int microbatchSize = 1; //!< samples per microbatch
    /** Microbatches per step, M; Mobius sets M = #GPUs (§3.1). */
    int numMicrobatches = 4;
    /** Gradient checkpointing (§3.1 assumes it; backward recomputes). */
    bool activationCheckpointing = true;
    /** Fraction of peak FP16 throughput actually achieved. */
    double mfu = 0.30;
    /** Fixed per-layer kernel launch/dispatch latency (seconds). */
    double kernelLatency = 30e-6;
};

/** Per-layer time and memory estimates for one (model, GPU, config). */
class CostModel
{
  public:
    /** Bind a model description to a GPU spec and training knobs. */
    CostModel(const ModelDesc &model, const GpuSpec &gpu,
              TrainConfig cfg);

    /** The model being costed. */
    const ModelDesc &model() const { return *model_; }
    /** The GPU the estimates assume. */
    const GpuSpec &gpu() const { return *gpu_; }
    /** The training configuration the estimates assume. */
    const TrainConfig &cfg() const { return cfg_; }

    /** @return number of layers in the model. */
    int numLayers() const { return model_->numLayers(); }

    /** Forward time of layer @p i for one microbatch (seconds). */
    double fwdTime(int i) const;

    /**
     * Backward time of layer @p i for one microbatch. With
     * checkpointing this includes recomputing the forward.
     */
    double bwdTime(int i) const;

    /** FP16 weight bytes of layer @p i. */
    Bytes paramBytes(int i) const;

    /** FP16 gradient bytes of layer @p i. */
    Bytes gradBytes(int i) const;

    /** Output boundary activation of layer @p i, one microbatch. */
    Bytes actBytes(int i) const;

    /** Input boundary activation of layer @p i, one microbatch. */
    Bytes inActBytes(int i) const;

    /** Transient workspace of layer @p i, one microbatch. */
    Bytes workBytes(int i) const;

    /** @name Aggregates over the layer range [lo, hi). */
    /** @{ */
    Bytes rangeParamBytes(int lo, int hi) const;
    Bytes rangeGradBytes(int lo, int hi) const;
    double rangeFwdTime(int lo, int hi) const;
    double rangeBwdTime(int lo, int hi) const;
    /** @} */

    /**
     * GPU bytes needed while the stage [lo, hi) runs its forward on
     * one microbatch: weights + live boundary activations + peak
     * workspace (the paper's S_j^f, Eq. 4).
     */
    Bytes stageMemFwd(int lo, int hi) const;

    /** Same for backward (adds gradient buffers), S_j^b. */
    Bytes stageMemBwd(int lo, int hi) const;

    /**
     * FP32 master weights plus Adam moments for layer @p i
     * (12 B/param). Mobius and DeepSpeed keep these in DRAM and
     * update on the CPU; all-in-GPU-memory pipelines (GPipe,
     * DeepSpeed pipeline mode) must hold them on the GPU, which is
     * why they OOM first in Fig. 5.
     */
    Bytes optimizerBytes(int i) const;

    /**
     * Resident GPU bytes for a stage [lo, hi) of an all-in-GPU-memory
     * pipeline executing @p num_microbatches microbatches per step:
     * FP16 weights + FP16 gradients + optimizer states + one
     * checkpointed boundary input per microbatch + peak live set.
     */
    Bytes stageMemResident(int lo, int hi,
                           int num_microbatches) const;

  private:
    void checkRange(int lo, int hi) const;

    const ModelDesc *model_;
    const GpuSpec *gpu_;
    TrainConfig cfg_;
};

} // namespace mobius

#endif // MOBIUS_MODEL_COST_MODEL_HH
