#include "model/model.hh"

#include <set>

namespace mobius
{

std::uint64_t
ModelDesc::totalParams() const
{
    std::uint64_t total = 0;
    for (const auto &l : layers)
        total += l.paramCount;
    return total;
}

Bytes
ModelDesc::totalParamBytesFp32() const
{
    return 4 * totalParams();
}

Bytes
ModelDesc::totalParamBytesFp16() const
{
    return 2 * totalParams();
}

int
ModelDesc::numSimilarityClasses() const
{
    std::set<int> classes;
    for (const auto &l : layers)
        classes.insert(l.similarityClass);
    return static_cast<int>(classes.size());
}

GptConfig
gpt3b()
{
    return GptConfig{"GPT-3B", 32, 2048, 64, 2};
}

GptConfig
gpt8b()
{
    return GptConfig{"GPT-8B", 32, 4096, 40, 2};
}

GptConfig
gpt15b()
{
    return GptConfig{"GPT-15B", 64, 5120, 40, 1};
}

GptConfig
gpt51b()
{
    return GptConfig{"GPT-51B", 80, 9216, 50, 1};
}

std::vector<GptConfig>
table3Models()
{
    return {gpt3b(), gpt8b(), gpt15b(), gpt51b()};
}

ModelDesc
makeGptModel(const GptConfig &cfg)
{
    ModelDesc m;
    m.name = cfg.name;
    m.seqLen = cfg.seqLen;
    m.hidden = cfg.hidden;
    m.heads = cfg.heads;
    m.defaultMicrobatch = cfg.microbatchSize;

    const auto h = static_cast<std::uint64_t>(cfg.hidden);
    const auto s = static_cast<std::uint64_t>(cfg.seqLen);
    const auto v = static_cast<std::uint64_t>(cfg.vocab);
    const Bytes act = 2 * s * h;  // FP16 [seq, hidden] boundary tensor

    // Embedding (token + position), output [s, h].
    {
        LayerDesc l;
        l.name = "embedding";
        l.type = LayerType::Embedding;
        l.paramCount = v * h + s * h;
        // A gather plus an add: bandwidth-bound; approximate with a
        // small FLOP count so it never dominates.
        l.fwdFlopsPerSample = 2.0 * static_cast<double>(s * h);
        l.actBytesPerSample = act;
        l.workBytesPerSample = act;
        l.similarityClass = 0;
        m.layers.push_back(l);
    }

    // Transformer blocks: attention (QKV + proj = 4h^2) and MLP
    // (8h^2) weights, plus layer norms. Forward FLOPs per token:
    // 2 FLOPs per weight MAC (24h^2) plus attention score/value
    // matmuls (4sh).
    for (int b = 0; b < cfg.numBlocks; ++b) {
        LayerDesc l;
        l.name = "block" + std::to_string(b);
        l.type = LayerType::TransformerBlock;
        l.paramCount = 12 * h * h + 13 * h;
        l.fwdFlopsPerSample =
            static_cast<double>(s) *
            (24.0 * static_cast<double>(h) * static_cast<double>(h) +
             4.0 * static_cast<double>(s) * static_cast<double>(h));
        l.actBytesPerSample = act;
        // With activation checkpointing the live transient state is a
        // few residual-width tensors plus the attention score matrix.
        l.workBytesPerSample =
            8 * act + 2 * 2 * static_cast<Bytes>(cfg.heads) * s * s;
        l.similarityClass = 1;
        m.layers.push_back(l);
    }

    // Final layer norm.
    {
        LayerDesc l;
        l.name = "final_norm";
        l.type = LayerType::FinalNorm;
        l.paramCount = 2 * h;
        l.fwdFlopsPerSample = 8.0 * static_cast<double>(s * h);
        l.actBytesPerSample = act;
        l.workBytesPerSample = act;
        l.similarityClass = 2;
        m.layers.push_back(l);
    }

    // LM head: [h, v] projection; logits are large but consumed
    // in-place by the loss, so the boundary activation we account is
    // the FP16 logits for loss computation.
    {
        LayerDesc l;
        l.name = "lm_head";
        l.type = LayerType::LmHead;
        l.paramCount = v * h;
        l.fwdFlopsPerSample =
            2.0 * static_cast<double>(s) * static_cast<double>(h) *
            static_cast<double>(v);
        l.actBytesPerSample = 2 * s * v;
        l.workBytesPerSample = 2 * 2 * s * v;
        l.similarityClass = 3;
        m.layers.push_back(l);
    }

    return m;
}

} // namespace mobius
