/**
 * @file
 * Analytical descriptions of the models being fine-tuned.
 *
 * A model is an ordered list of layers; each layer carries its
 * parameter count, the FLOPs of its forward pass, the size of its
 * boundary (output) activation, and its transient workspace needs.
 * These are the quantities the paper's partition algorithm consumes
 * (after profiling, §3.2), and what the executors move across the
 * simulated interconnect.
 *
 * Mixed-precision convention (§3.1): FP16 weights (2 B/param) are what
 * gets transferred and held in GPU memory; "total parameter size" in
 * the paper's equations is the FP32 master copy (4 B/param); FP16
 * gradients are half of that.
 */

#ifndef MOBIUS_MODEL_MODEL_HH
#define MOBIUS_MODEL_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/units.hh"

namespace mobius
{

/** Broad layer categories (used for reporting only). */
enum class LayerType { Embedding, TransformerBlock, FinalNorm, LmHead };

/** Analytical description of a single model layer. */
struct LayerDesc
{
    std::string name;             //!< printable layer name
    LayerType type = LayerType::TransformerBlock; //!< category
    std::uint64_t paramCount = 0; //!< trainable parameter count
    /** Forward FLOPs for ONE sample (sequence) through this layer. */
    double fwdFlopsPerSample = 0.0;
    /** Output (boundary) activation bytes for one sample, FP16. */
    Bytes actBytesPerSample = 0;
    /** Peak transient workspace bytes for one sample during compute. */
    Bytes workBytesPerSample = 0;
    /**
     * Layers with equal similarity class are identical (same shape and
     * weights layout); the profiler only measures one per class
     * (§3.2 "layer similarity").
     */
    int similarityClass = 0;

    /** FP16 working-weight bytes. */
    Bytes paramBytesFp16() const { return 2 * paramCount; }
    /** FP32 master-weight bytes. */
    Bytes paramBytesFp32() const { return 4 * paramCount; }
    /** FP16 gradient bytes. */
    Bytes gradBytesFp16() const { return 2 * paramCount; }
};

/** An ordered stack of layers. */
struct ModelDesc
{
    std::string name;              //!< printable model name
    std::vector<LayerDesc> layers; //!< layers in execution order
    int seqLen = 0;                //!< training sequence length
    int hidden = 0;                //!< hidden (embedding) width
    int heads = 0;                 //!< attention head count
    /** Default microbatch size from Table 3. */
    int defaultMicrobatch = 1;

    /** @return number of layers in the stack. */
    int numLayers() const { return static_cast<int>(layers.size()); }

    /** Total trainable parameters across all layers. */
    std::uint64_t totalParams() const;
    /** FP32 master parameter bytes (the paper's model size). */
    Bytes totalParamBytesFp32() const;
    /** FP16 working parameter bytes. */
    Bytes totalParamBytesFp16() const;
    /** Number of distinct similarity classes. */
    int numSimilarityClasses() const;
};

/** GPT-like transformer configuration (Table 3 rows). */
struct GptConfig
{
    std::string name;       //!< printable name ("GPT-15B", ...)
    int heads = 0;          //!< attention head count
    int hidden = 0;         //!< hidden width
    int numBlocks = 0;      //!< transformer block count
    int microbatchSize = 1; //!< Table 3 default microbatch size
    int vocab = 50257;      //!< vocabulary size (GPT-2 BPE)
    int seqLen = 512;       //!< training sequence length
};

/** Table 3: 3B model (32 heads, hidden 2048, 64 layers, mbs 2). */
GptConfig gpt3b();
/** Table 3: 8B model (32 heads, hidden 4096, 40 layers, mbs 2). */
GptConfig gpt8b();
/** Table 3: 15B model (64 heads, hidden 5120, 40 layers, mbs 1). */
GptConfig gpt15b();
/** Table 3: 51B model (80 heads, hidden 9216, 50 layers, mbs 1). */
GptConfig gpt51b();

/** All four Table 3 configs in paper order. */
std::vector<GptConfig> table3Models();

/** Build the layer stack for a GPT-like config. */
ModelDesc makeGptModel(const GptConfig &cfg);

} // namespace mobius

#endif // MOBIUS_MODEL_MODEL_HH
