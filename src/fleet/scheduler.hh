/**
 * @file
 * Cluster scheduler for the fleet simulator: gang placement of jobs
 * onto whole servers, FIFO admission with optional backfill and
 * priority preemption — with indexed state so a 10k-job fleet
 * schedules in O(n log n), not O(n^2).
 *
 * The model (deliberately simple — this reproduces the paper's
 * Fig. 15/16 datacenter framing, not SLURM):
 *
 *  - the cluster is a set of *server classes* (e.g. "commodity"
 *    2+2, "dc" 4-GPU), each with `count` identical machines;
 *  - a job requests one whole server of a named class (gang
 *    scheduling: all GPUs of the machine, or nothing);
 *  - pending jobs are kept in a binary min-heap keyed by
 *    (arrival, id) — FIFO order with job id as the deterministic
 *    tie-break for simultaneous arrivals;
 *  - free servers are kept per class in an ordered set, so "is a
 *    machine free / which one" is O(log n) instead of a scan;
 *  - admission is head-of-line FIFO; with `backfill` enabled, jobs
 *    behind a blocked head may start on *other* classes' idle
 *    servers (EASY-lite: a blocked head only blocks its own class,
 *    and within a class strict arrival order is preserved — a
 *    backfilled job can never delay the head since gang slots are
 *    indivisible and within-class order is FIFO);
 *  - with `preemption` enabled, an arriving job of strictly higher
 *    priority (smaller number) evicts the lowest-priority running
 *    victim on its class (ties: latest-started, then largest id —
 *    all deterministic); the victim re-enters the pending heap.
 *
 * The scheduler is pure bookkeeping over (jobId, time) pairs: it
 * never touches simulation state. FleetSim drives it from the fleet
 * event loop and translates its admit/evict callbacks into job
 * starts and cancellations.
 */

#ifndef MOBIUS_FLEET_SCHEDULER_HH
#define MOBIUS_FLEET_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mobius
{

/** One server class in the fleet. */
struct FleetServerDesc
{
    std::string klass = "commodity"; //!< class name jobs request
    std::vector<int> groups = {2, 2}; //!< PCIe groups (shape only)
    bool dataCenter = false;          //!< NVLink node vs commodity
    int count = 1;                    //!< identical machines
};

/** What a job asks the scheduler for. */
struct FleetJobReq
{
    std::string klass = "commodity"; //!< server class wanted
    int priority = 0;                //!< smaller = more important
};

/** FleetScheduler policy knobs. */
struct FleetSchedOptions
{
    bool backfill = false;   //!< EASY-lite backfill
    bool preemption = false; //!< priority eviction
};

/** Scheduling activity totals. */
struct FleetSchedStats
{
    std::uint64_t admissions = 0;  //!< jobs started (incl. restarts)
    std::uint64_t backfills = 0;   //!< admissions that jumped a
                                   //!< blocked head-of-line
    std::uint64_t preemptions = 0; //!< evictions performed
};

/**
 * One scheduler decision, with the inputs the scheduler saw when it
 * made it. Emitted through FleetScheduler::setDecisionHook strictly
 * in decision order on the fleet event loop (the scheduler is
 * single-threaded), so any log built from these is deterministic at
 * every `--threads` width. Class fields are dense class indices —
 * resolve names with klassName().
 */
struct SchedDecision
{
    /** What was decided. */
    enum class Kind : std::uint8_t
    {
        Admit,    //!< head-of-line FIFO admission
        Backfill, //!< admission that jumped >= 1 blocked job
        Preempt,  //!< eviction to make room for the acting job
    };

    Kind kind = Kind::Admit;
    double time = 0.0; //!< scheduling instant (fleet seconds)
    int job = -1;      //!< admitted job, or the preemptor
    int priority = 0;  //!< the acting job's priority
    int server = -1;   //!< server granted (admit) / vacated (preempt)
    int klass = -1;    //!< dense class index the acting job wants
    int freeInClass = 0;  //!< free machines in klass before the act
    int blockedHead = -1; //!< earliest blocked job jumped, or -1
    int blockedHeadKlass = -1; //!< its dense class index, or -1
    int victim = -1;           //!< evicted job (Preempt), or -1
    int victimPriority = 0;    //!< the victim's priority
    double victimStart = 0.0;  //!< when the victim started running
    std::uint64_t pending = 0; //!< jobs still waiting placement
};

/**
 * Gang scheduler over whole-server slots (see file header).
 * Single-threaded: driven only from the fleet event loop.
 */
class FleetScheduler
{
  public:
    using Options = FleetSchedOptions;

    /** Observer of every admit/backfill/preempt (see SchedDecision). */
    using DecisionHook = std::function<void(const SchedDecision &)>;

    /** @param servers cluster inventory; must be non-empty with
     *  unique class names and positive counts (fatal otherwise). */
    explicit FleetScheduler(
        const std::vector<FleetServerDesc> &servers,
        Options opts = {});

    /** @return true when class @p klass exists in the cluster —
     *  a job requesting an unknown class could never start. */
    bool fits(const std::string &klass) const;

    /** Queue job @p id (arrived at @p arrival) for placement. */
    void enqueue(int id, double arrival, const FleetJobReq &req);

    /** Job @p id finished (or was cancelled): free its server. */
    void release(int id);

    /**
     * Place as many pending jobs as possible at time @p now.
     * @p evict is called for each preemption victim (its server is
     * immediately reused); @p admit is called for each start with
     * the chosen global server index. Victims are NOT re-queued
     * automatically — the fleet re-enqueues them after docking
     * progress, so their requeue arrival time is its decision.
     */
    void schedule(double now,
                  const std::function<void(int victim)> &evict,
                  const std::function<void(int id, int server)>
                      &admit);

    /** @return jobs queued but not yet placed. */
    std::size_t pendingCount() const { return pending_.size(); }

    /** @return jobs currently occupying a server. */
    std::size_t runningCount() const { return running_.size(); }

    /** @return class name of global server index @p server. */
    const std::string &serverClass(int server) const;

    /** @return machines in class @p klass (0 when unknown). */
    int classCount(const std::string &klass) const;

    /** @return number of server classes in the cluster. */
    int klassCount() const
    {
        return static_cast<int>(klasses_.size());
    }

    /** @return name of dense class index @p klass (fatal when out
     *  of range). */
    const std::string &klassName(int klass) const;

    /** @return free machines per dense class index, a snapshot of
     *  the scheduler's gauges for counter sampling. */
    std::vector<int> freeCounts() const;

    /**
     * Install @p hook, invoked synchronously for every admit,
     * backfill, and preempt decision — before the corresponding
     * admit/evict callback fires, so observers see the decision's
     * inputs ahead of its effects. Pass an empty function to
     * uninstall.
     */
    void setDecisionHook(DecisionHook hook);

    /** @return total machines in the cluster. */
    int serverCount() const
    {
        return static_cast<int>(serverKlass_.size());
    }

    /** Activity totals so far. */
    const FleetSchedStats &stats() const { return stats_; }

  private:
    /** A queued job: heap-keyed by (arrival, id). */
    struct Pending
    {
        double arrival = 0.0;
        int id = -1;
        int priority = 0;
        int klass = -1; //!< dense class index

        /** std::push_heap keeps the *largest* element first, so
         *  "greater" ordering yields a min-heap on (arrival, id). */
        bool
        operator<(const Pending &other) const
        {
            if (arrival != other.arrival)
                return arrival > other.arrival;
            return id > other.id;
        }
    };

    /** A placed job. */
    struct Running
    {
        int server = -1;
        int priority = 0;
        double start = 0.0;
    };

    /** Per-class state. */
    struct Klass
    {
        std::string name;
        /** Free machines (global indices), ordered — the smallest
         *  index is always chosen, deterministically. */
        std::set<int> freeServers;
    };

    int klassIndex(const std::string &name) const;
    /** Pop the pending heap's minimum. */
    Pending popPending();

    /**
     * Try to place @p job at @p now; returns the server or -1.
     * @p pending_seen is the queue depth to stamp on a preemption
     * decision (heap + temporarily-held blocked jobs).
     */
    int tryPlace(double now, const Pending &job,
                 std::uint64_t pending_seen,
                 const std::function<void(int victim)> &evict);

    Options opts_;
    DecisionHook decisionHook_;
    std::vector<Klass> klasses_;
    std::map<std::string, int> klassIndex_;
    std::vector<int> serverKlass_; //!< global server -> class
    std::vector<Pending> pending_; //!< binary heap (see Pending)
    std::map<int, Running> running_; //!< job id -> placement
    FleetSchedStats stats_;
};

} // namespace mobius

#endif // MOBIUS_FLEET_SCHEDULER_HH
