/**
 * @file
 * FleetSim: the datacenter-scale multi-job simulator.
 *
 * Drives a job-arrival process (explicit submissions and/or a
 * Poisson generator) through the gang scheduler (scheduler.hh) and
 * runs each admitted job's training step on the single-server
 * simulator (fleet/job.hh), all on one shared fleet EventQueue —
 * the same deterministic clock the per-step simulator uses, one
 * level up.
 *
 * Three perf layers make a 10k-job fleet tractable:
 *
 *  1. PlanCache (plan_cache.hh) — the MIP + cross-mapping solve
 *     runs once per distinct (model, topology, options) key, not
 *     once per job. In a homogeneous mix this removes the dominant
 *     cost entirely (hit rate -> 1).
 *  2. JobPump (simcore/job_pump.hh) — step simulations are pure in
 *     the JobSpec, so they start *speculatively at arrival* on the
 *     pump's worker threads; the fleet loop blocks at admission
 *     only if the result is not ready yet. All fleet bookkeeping
 *     stays on the event-loop thread, results live in per-job
 *     slots, and reductions run in job-id order after the loop —
 *     fleet metrics are bit-identical at any --threads width.
 *  3. Indexed scheduler state (scheduler.hh) — binary-heap pending
 *     queue, per-class free-server sets: O(n log n) end to end.
 *
 * Determinism contract (gated by tests and bench_fleet --quick):
 * FleetMetrics::fingerprint — an FNV-1a digest over every job's
 * timing bit patterns and trace digest, in job-id order — is
 * bit-identical across thread widths and with the plan cache on or
 * off.
 *
 * Time model: one simulated step per job is *simulated in detail*
 * (fleet/job.hh); a job occupying a server for `steps` training
 * steps then takes steps * stepTime fleet-seconds. Preemption docks
 * whole completed steps (partial-step progress is lost) and
 * requeues the victim at the eviction instant.
 */

#ifndef MOBIUS_FLEET_FLEET_SIM_HH
#define MOBIUS_FLEET_FLEET_SIM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "fleet/job.hh"
#include "fleet/scheduler.hh"
#include "obs/critical_path.hh"
#include "obs/fleet_trace.hh"
#include "obs/metrics.hh"

namespace mobius
{

/** Fleet-wide configuration. */
struct FleetOptions
{
    /** Cluster inventory; empty = one commodity 2+2 server. */
    std::vector<FleetServerDesc> servers;
    int threads = 0;       //!< job pump width; 0 = hardware, 1 = serial
    bool planCache = true; //!< memoize planMobius per distinct key
    bool backfill = false;   //!< scheduler EASY-lite backfill
    bool preemption = false; //!< scheduler priority eviction
    /** Faults injected into every job's step simulation (per-job
     *  stream selected by JobSpec::faultSeed). Empty = clean. */
    FaultPlan faults;
    /** Optional registry for fleet.* metrics; null = none. */
    MetricsRegistry *metrics = nullptr;
    /**
     * Fleet timeline tracing (obs/fleet_trace.hh): off by default —
     * zero recording work, zero overhead. When trace.enabled, the
     * run additionally keeps typed per-job events (ring-bounded by
     * trace.maxEventsPerJob), the scheduler decision log, server
     * occupancy stints, queue/free-server counters, and per-job
     * attribution roll-ups, exposed via fleetTrace() /
     * attribution() / timelineJson() / reportJsonl().
     */
    FleetTraceConfig trace;
};

/** Everything the fleet learned about one job. */
struct FleetJobRecord
{
    JobSpec spec;
    double arrival = 0.0;  //!< submission time
    double start = -1.0;   //!< first admission time
    double finish = -1.0;  //!< completion time
    double queueDelay = 0.0;  //!< start - arrival
    double stepTime = 0.0;    //!< simulated seconds per step
    double cleanStepTime = 0.0; //!< step time with no faults
    double occupiedSeconds = 0.0; //!< total server occupancy
    int server = -1;       //!< last server occupied
    int preemptions = 0;   //!< times evicted
    bool planCacheHit = false;
    std::uint64_t spanCount = 0;
    std::uint64_t spanHash = 0; //!< trace digest of the step sim

    /** @return job completion time (finish - arrival). */
    double jct() const { return finish - arrival; }
};

/** Fleet-level reductions over a completed run. */
struct FleetMetrics
{
    std::uint64_t jobs = 0;      //!< submitted
    std::uint64_t completed = 0; //!< ran to their last step
    FleetSchedStats sched;       //!< admissions/backfills/preemptions

    double makespan = 0.0; //!< last finish time
    double jctP50 = 0.0, jctP99 = 0.0, jctMean = 0.0, jctMax = 0.0;
    double waitP50 = 0.0, waitP99 = 0.0, waitMean = 0.0;

    /** Occupied server-seconds / (servers * makespan). */
    double utilization = 0.0;
    /** Same, per server class. */
    std::map<std::string, double> classUtilization;
    /** Useful clean step-seconds / occupied server-seconds: the
     *  fraction of occupancy doing clean-run-equivalent work
     *  (1.0 without faults; ZeRO-Infinity-style accounting). */
    double goodput = 0.0;

    std::uint64_t planHits = 0, planMisses = 0;
    double planHitRate = 0.0;

    /**
     * FNV-1a digest of the scheduler decision stream (kind, time,
     * job, server, priorities, victim, blocked head, queue gauges
     * of every admit/backfill/preempt, in decision order). Always
     * computed — tracing on or off — so scheduler-order regressions
     * trip the cross-width identity gates even without a log.
     */
    std::uint64_t decisionFingerprint = 0;

    /** FNV-1a digest of every job record (timings, trace hashes)
     *  in job-id order, folded with decisionFingerprint — the
     *  cross-width bit-identity token. */
    std::uint64_t fingerprint = 0;

    /** Fleet trace events recorded / dropped by ring budgets
     *  (0 / 0 when tracing is off). */
    std::uint64_t traceEvents = 0;
    std::uint64_t traceTruncated = 0;
};

/** The fleet simulator (see file header). */
class FleetSim
{
  public:
    explicit FleetSim(FleetOptions opts = {});

    /**
     * Submit one job. Its id is assigned densely from 0 (any id
     * already set on @p spec is overwritten); name defaults to
     * "job<id>". fatal() when the requested server class does not
     * exist — that job could never start.
     * @return the assigned job id.
     */
    int submit(JobSpec spec);

    /**
     * Submit @p count Poisson arrivals: copies of @p prototype
     * with exponential(rate) inter-arrival gaps appended after the
     * prototype's own arrival offset, deterministically from
     * @p seed. @return the first assigned id.
     */
    int submitPoisson(const JobSpec &prototype, int count,
                      double jobs_per_second, std::uint64_t seed);

    /** Run the fleet to completion and reduce the metrics. */
    FleetMetrics run();

    /** Per-job outcomes, in job-id order (valid after run()). */
    const std::vector<FleetJobRecord> &records() const
    {
        return records_;
    }

    /** The plan memo (shared across all jobs of this fleet). */
    PlanCache &planCache() { return planCache_; }

    /**
     * The fleet timeline recorder (valid after run(); fatal when
     * FleetOptions::trace.enabled was false — there is nothing to
     * inspect).
     */
    const FleetTrace &fleetTrace() const;

    /** Per-job attribution roll-ups (valid after run() with tracing
     *  on; fatal otherwise). Every job's categories sum to its JCT
     *  within ~1e-13 relative drift. */
    const FleetAttribution &attribution() const;

    /**
     * The fleet timeline as Chrome tracing JSON: one track per
     * server with job-occupancy spans, preemption->resume flow
     * arrows, and pending/running/free-server counter tracks.
     * Valid after run() with tracing on; fatal otherwise.
     */
    std::string timelineJson() const;

    /**
     * The full observability report as JSONL: every scheduler
     * decision (inputs + one-line explanation) in event order, one
     * attribution record per job, and a trailing summary line —
     * the input tools/fleet_report consumes. Byte-identical at any
     * --threads width and with the plan cache on or off. Valid
     * after run() with tracing on; fatal otherwise.
     */
    std::string reportJsonl() const;

  private:
    /** fatal() unless run() completed with tracing enabled. */
    void requireTrace(const char *what) const;

    FleetOptions opts_;
    FleetScheduler scheduler_;
    std::vector<JobSpec> jobs_;
    std::vector<FleetJobRecord> records_;
    PlanCache planCache_;
    /** Clean-run step time per jobSimKey, for goodput accounting
     *  when faults are active (solved once per distinct job). */
    SingleFlightCache<double> cleanCache_;
    /** Timeline recorder; non-null iff opts_.trace.enabled. */
    std::unique_ptr<FleetTrace> trace_;
    /** One-step attribution per jobSimKey: step results are
     *  bit-identical per key, so a homogeneous fleet pays one
     *  critical-path walk, not one per job. */
    SingleFlightCache<AttributionBreakdown> attribCache_;
    /** Roll-ups built during run() when tracing. */
    FleetAttribution attribution_;
    /** Copy of run()'s reductions, for reportJsonl(). */
    FleetMetrics metrics_;
    bool ran_ = false;
};

} // namespace mobius

#endif // MOBIUS_FLEET_FLEET_SIM_HH
