#include "fleet/job.hh"

#include <chrono>
#include <numeric>

#include "base/logging.hh"
#include "obs/prof.hh"

namespace mobius
{

const char *
jobSystemName(JobSystem system)
{
    switch (system) {
      case JobSystem::Mobius:    return "mobius";
      case JobSystem::DeepSpeed: return "deepspeed";
    }
    return "?";
}

int
jobGpus(const JobSpec &spec)
{
    return std::accumulate(spec.groups.begin(), spec.groups.end(),
                           0);
}

Server
buildJobServer(const JobSpec &spec)
{
    if (spec.dataCenter)
        return makeDataCenterServer(jobGpus(spec));
    return makeCommodityServer(spec.groups);
}

namespace
{

/** Resolved (never -1) microbatch size. */
int
resolvedMbs(const JobSpec &spec)
{
    return spec.microbatchSize > 0 ? spec.microbatchSize
                                   : spec.model.microbatchSize;
}

/** Resolved (never -1) microbatch count: M = N by default (§3.1). */
int
resolvedNmb(const JobSpec &spec)
{
    return spec.numMicrobatches > 0 ? spec.numMicrobatches
                                    : jobGpus(spec);
}

} // namespace

std::string
jobPlanKey(const JobSpec &spec)
{
    // Every input planMobius() reads, in a fixed order. The model's
    // display name is deliberately excluded (it does not shape the
    // layer stack); everything dimensional is included.
    std::string groups;
    for (int g : spec.groups)
        groups += strfmt("%d,", g);
    return strfmt(
        "model:h%d w%d b%d v%d s%d|topo:%s[%s]|train:mbs%d nmb%d|"
        "plan:p%d m%d",
        spec.model.heads, spec.model.hidden, spec.model.numBlocks,
        spec.model.vocab, spec.model.seqLen,
        spec.dataCenter ? "dc" : "commodity", groups.c_str(),
        resolvedMbs(spec), resolvedNmb(spec),
        static_cast<int>(spec.partition),
        static_cast<int>(spec.mapping));
}

std::string
jobSimKey(const JobSpec &spec)
{
    return strfmt("%s|sys:%s|seed:%llu", jobPlanKey(spec).c_str(),
                  jobSystemName(spec.system),
                  static_cast<unsigned long long>(spec.faultSeed));
}

JobStepResult
simulateJobStep(const JobSpec &spec, PlanCache *cache,
                const FaultPlan *faults, TraceRecorder *trace_out)
{
    using clock = std::chrono::steady_clock;

    Server server = buildJobServer(spec);
    Workload work(spec.model, server, spec.microbatchSize,
                  spec.numMicrobatches);

    JobStepResult res;
    StepRunOptions run;
    run.faults = faults;
    run.faultSeed = spec.faultSeed;
    run.traceOut = trace_out;

    if (spec.system == JobSystem::DeepSpeed) {
        StepRunResult step =
            runZeroStepEx(server, work.cost(), run);
        res.stats = std::move(step.stats);
        res.spanCount = step.spanCount;
        res.spanHash = step.spanHash;
        return res;
    }

    PlanOptions popts;
    popts.partition = spec.partition;
    popts.mapping = spec.mapping;
    double solve_seconds = 0.0;
    auto solve = [&] {
        MOBIUS_PROF_ZONE("fleet.plan_miss");
        auto t0 = clock::now();
        MobiusPlan plan = planMobius(server, work.cost(), popts);
        solve_seconds =
            std::chrono::duration<double>(clock::now() - t0)
                .count();
        return plan;
    };
    if (cache) {
        bool hit = false;
        res.plan = cache->get(jobPlanKey(spec), solve, &hit);
        res.planCacheHit = hit;
    } else {
        res.plan = solve();
    }
    // solve_seconds stays 0 on a hit (or when another in-flight
    // get() solved first) — exactly the wall this job did not pay.
    res.planSeconds = solve_seconds;

    StepRunResult step =
        runMobiusStepEx(server, work.cost(), res.plan, run);
    res.stats = std::move(step.stats);
    res.spanCount = step.spanCount;
    res.spanHash = step.spanHash;
    return res;
}

} // namespace mobius
