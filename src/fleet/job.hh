/**
 * @file
 * Fleet job descriptions: what one fine-tuning job is, and how to
 * plan and simulate a single step of it.
 *
 * A JobSpec is the complete, self-contained recipe for one job: the
 * model, the target server shape (its own topology — fleet servers
 * are whole machines, jobs gang-schedule onto all of a server's
 * GPUs), the system under test (Mobius or the ZeRO-style baseline),
 * planner knobs, and arrival-process metadata. Both the fleet
 * simulator (fleet_sim.hh) and the paper's Fig. 15/16 benches build
 * jobs from this one struct, so the figure harnesses and the fleet
 * bench cannot drift apart.
 *
 * Two canonical keys derive from a spec:
 *
 *  - jobPlanKey()  — every input planMobius() reads, serialised in a
 *    fixed order. Equal keys guarantee equal plans (planning is
 *    deterministic), which is what makes the PlanCache sound.
 *  - jobSimKey()   — the plan key plus everything else a step
 *    simulation reads (system, fault seed). Equal keys guarantee
 *    bit-identical StepRunResults, which is what lets the fleet
 *    memoize whole simulations for goodput accounting.
 *
 * simulateJobStep() is the pure function the fleet's job pump runs:
 * JobSpec in, plan + step measurements + trace digest out. It
 * depends only on the spec (never on admission time or scheduler
 * state), which is why the fleet can start simulations speculatively
 * at arrival and why results are bit-identical at any thread width.
 */

#ifndef MOBIUS_FLEET_JOB_HH
#define MOBIUS_FLEET_JOB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/plan_cache.hh"
#include "runtime/api.hh"

namespace mobius
{

/** Which training system a fleet job runs. */
enum class JobSystem
{
    Mobius,    //!< planned pipeline with cross mapping
    DeepSpeed, //!< ZeRO-3 + heterogeneous memory baseline
};

/** @return "mobius" or "deepspeed". */
const char *jobSystemName(JobSystem system);

/** One fine-tuning job in the fleet. */
struct JobSpec
{
    int id = -1;       //!< fleet-assigned, dense from 0
    std::string name;  //!< printable ("job42"), defaults from id

    GptConfig model;   //!< what to fine-tune (Table 3 config)
    JobSystem system = JobSystem::Mobius;

    /** Server shape the job wants: a data-center node or a
     *  commodity machine with these PCIe groups. The fleet places
     *  the job on a whole server of matching class. */
    bool dataCenter = false;
    std::vector<int> groups = {2, 2};
    /** Scheduler server class this job requests (scheduler.hh). */
    std::string serverClass = "commodity";

    int microbatchSize = -1;  //!< -1 = model's Table 3 default
    int numMicrobatches = -1; //!< -1 = one per GPU (M = N, §3.1)
    PartitionAlgo partition = PartitionAlgo::Mip;
    MappingAlgo mapping = MappingAlgo::Cross;

    int steps = 1;          //!< training steps the job runs
    double arrival = 0.0;   //!< submission time (fleet seconds)
    /** Smaller = more important; preemption evicts larger first. */
    int priority = 0;
    std::uint64_t faultSeed = 1; //!< per-job fault stream seed
};

/** @return GPUs the job occupies (its whole server shape). */
int jobGpus(const JobSpec &spec);

/** Build the server the job's simulation runs on. */
Server buildJobServer(const JobSpec &spec);

/**
 * Canonical planner-input key: model fields, topology shape, and
 * resolved planner options in a fixed textual order. Two specs with
 * equal keys get identical plans from planMobius().
 */
std::string jobPlanKey(const JobSpec &spec);

/**
 * Canonical simulation key: jobPlanKey() plus the system and fault
 * seed. Two specs with equal keys get bit-identical step results.
 */
std::string jobSimKey(const JobSpec &spec);

/** Everything one simulated step of a job produced. */
struct JobStepResult
{
    StepStats stats;      //!< step measurements
    MobiusPlan plan;      //!< the plan used (Mobius jobs only)
    bool planCacheHit = false; //!< plan came from the cache
    double planSeconds = 0.0;  //!< wall spent planning (0 on hit)
    std::uint64_t spanCount = 0; //!< trace spans recorded
    std::uint64_t spanHash = 0;  //!< spanFingerprint() of the trace
};

/**
 * Plan (through @p cache when non-null) and simulate one training
 * step of @p spec. Pure in the spec: equal jobSimKey() (with equal
 * @p faults) gives bit-identical results, cached or fresh plan,
 * any thread. @p faults may be null for a clean run. When
 * @p trace_out is non-null the step's span trace is retained into
 * it (moved wholesale, see StepRunOptions::traceOut) so callers can
 * run critical-path attribution on it.
 */
JobStepResult simulateJobStep(const JobSpec &spec,
                              PlanCache *cache = nullptr,
                              const FaultPlan *faults = nullptr,
                              TraceRecorder *trace_out = nullptr);

} // namespace mobius

#endif // MOBIUS_FLEET_JOB_HH
