#include "fleet/scheduler.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mobius
{

FleetScheduler::FleetScheduler(
    const std::vector<FleetServerDesc> &servers, Options opts)
    : opts_(opts)
{
    if (servers.empty())
        fatal("fleet scheduler needs at least one server class");
    for (const auto &desc : servers) {
        if (desc.count <= 0)
            fatal("server class '%s' has count %d",
                  desc.klass.c_str(), desc.count);
        if (klassIndex_.count(desc.klass))
            fatal("duplicate server class '%s'",
                  desc.klass.c_str());
        int k = static_cast<int>(klasses_.size());
        klassIndex_.emplace(desc.klass, k);
        Klass klass;
        klass.name = desc.klass;
        for (int i = 0; i < desc.count; ++i) {
            int server = static_cast<int>(serverKlass_.size());
            serverKlass_.push_back(k);
            klass.freeServers.insert(server);
        }
        klasses_.push_back(std::move(klass));
    }
}

bool
FleetScheduler::fits(const std::string &klass) const
{
    return klassIndex_.count(klass) > 0;
}

int
FleetScheduler::klassIndex(const std::string &name) const
{
    auto it = klassIndex_.find(name);
    if (it == klassIndex_.end())
        fatal("unknown server class '%s'", name.c_str());
    return it->second;
}

const std::string &
FleetScheduler::serverClass(int server) const
{
    if (server < 0 ||
        server >= static_cast<int>(serverKlass_.size()))
        fatal("server index %d out of range", server);
    return klasses_[static_cast<std::size_t>(serverKlass_
                        [static_cast<std::size_t>(server)])]
        .name;
}

int
FleetScheduler::classCount(const std::string &klass) const
{
    auto it = klassIndex_.find(klass);
    if (it == klassIndex_.end())
        return 0;
    int n = 0;
    for (int k : serverKlass_)
        if (k == it->second)
            ++n;
    return n;
}

const std::string &
FleetScheduler::klassName(int klass) const
{
    if (klass < 0 || klass >= static_cast<int>(klasses_.size()))
        fatal("class index %d out of range", klass);
    return klasses_[static_cast<std::size_t>(klass)].name;
}

std::vector<int>
FleetScheduler::freeCounts() const
{
    std::vector<int> free(klasses_.size(), 0);
    for (std::size_t k = 0; k < klasses_.size(); ++k)
        free[k] = static_cast<int>(klasses_[k].freeServers.size());
    return free;
}

void
FleetScheduler::setDecisionHook(DecisionHook hook)
{
    decisionHook_ = std::move(hook);
}

void
FleetScheduler::enqueue(int id, double arrival,
                        const FleetJobReq &req)
{
    Pending p;
    p.arrival = arrival;
    p.id = id;
    p.priority = req.priority;
    p.klass = klassIndex(req.klass);
    pending_.push_back(p);
    std::push_heap(pending_.begin(), pending_.end());
}

FleetScheduler::Pending
FleetScheduler::popPending()
{
    std::pop_heap(pending_.begin(), pending_.end());
    Pending p = pending_.back();
    pending_.pop_back();
    return p;
}

void
FleetScheduler::release(int id)
{
    auto it = running_.find(id);
    if (it == running_.end())
        panic("release of job %d which is not running", id);
    int server = it->second.server;
    klasses_[static_cast<std::size_t>(
                 serverKlass_[static_cast<std::size_t>(server)])]
        .freeServers.insert(server);
    running_.erase(it);
}

int
FleetScheduler::tryPlace(
    double now, const Pending &job, std::uint64_t pending_seen,
    const std::function<void(int victim)> &evict)
{
    Klass &klass = klasses_[static_cast<std::size_t>(job.klass)];
    if (!klass.freeServers.empty()) {
        int server = *klass.freeServers.begin();
        klass.freeServers.erase(klass.freeServers.begin());
        return server;
    }
    if (!opts_.preemption)
        return -1;
    // Deterministic victim choice: the strictly-lower-priority
    // running job on this class that is least worth keeping —
    // largest priority number, then latest start, then largest id.
    int victim = -1;
    const Running *worst = nullptr;
    for (const auto &[id, run] : running_) {
        if (serverKlass_[static_cast<std::size_t>(run.server)] !=
            job.klass)
            continue;
        if (run.priority <= job.priority)
            continue; // equal or higher priority: not evictable
        bool worse = worst == nullptr ||
            run.priority > worst->priority ||
            (run.priority == worst->priority &&
             (run.start > worst->start ||
              (run.start == worst->start && id > victim)));
        if (worse) {
            victim = id;
            worst = &run;
        }
    }
    if (victim < 0)
        return -1;
    int server = worst->server;
    if (decisionHook_) {
        SchedDecision d;
        d.kind = SchedDecision::Kind::Preempt;
        d.time = now;
        d.job = job.id;
        d.priority = job.priority;
        d.server = server;
        d.klass = job.klass;
        d.freeInClass = 0; // by construction: no free server
        d.victim = victim;
        d.victimPriority = worst->priority;
        d.victimStart = worst->start;
        d.pending = pending_seen;
        decisionHook_(d);
    }
    evict(victim);
    running_.erase(victim);
    ++stats_.preemptions;
    return server; // reused immediately, never enters freeServers
}

void
FleetScheduler::schedule(
    double now, const std::function<void(int victim)> &evict,
    const std::function<void(int id, int server)> &admit)
{
    // Pop pending jobs in (arrival, id) order. Without backfill the
    // first unplaceable job blocks everything behind it (strict
    // FIFO); with backfill it blocks only its own class.
    std::vector<Pending> blocked;
    std::vector<bool> blockedKlass(klasses_.size(), false);
    while (!pending_.empty()) {
        if (blockedKlass[static_cast<std::size_t>(
                pending_.front().klass)]) {
            if (!opts_.backfill)
                break;
            blocked.push_back(popPending());
            continue;
        }
        Pending job = popPending();
        std::uint64_t pendingSeen =
            pending_.size() + blocked.size();
        int freeBefore = static_cast<int>(
            klasses_[static_cast<std::size_t>(job.klass)]
                .freeServers.size());
        int server = tryPlace(now, job, pendingSeen, evict);
        if (server < 0) {
            blockedKlass[static_cast<std::size_t>(job.klass)] =
                true;
            blocked.push_back(job);
            if (!opts_.backfill)
                break;
            continue;
        }
        Running run;
        run.server = server;
        run.priority = job.priority;
        run.start = now;
        running_.emplace(job.id, run);
        ++stats_.admissions;
        if (!blocked.empty())
            ++stats_.backfills; // jumped at least one blocked job
        if (decisionHook_) {
            SchedDecision d;
            d.kind = blocked.empty()
                         ? SchedDecision::Kind::Admit
                         : SchedDecision::Kind::Backfill;
            d.time = now;
            d.job = job.id;
            d.priority = job.priority;
            d.server = server;
            d.klass = job.klass;
            d.freeInClass = freeBefore;
            if (!blocked.empty()) {
                // blocked[] fills in pop = (arrival, id) order, so
                // its first entry is the earliest blocked head.
                d.blockedHead = blocked.front().id;
                d.blockedHeadKlass = blocked.front().klass;
            }
            d.pending = pendingSeen;
            decisionHook_(d);
        }
        admit(job.id, server);
    }
    for (const Pending &job : blocked) {
        pending_.push_back(job);
        std::push_heap(pending_.begin(), pending_.end());
    }
}

} // namespace mobius
