#include "fleet/fleet_sim.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include <sstream>

#include "base/logging.hh"
#include "base/rng.hh"
#include "simcore/arrival.hh"
#include "simcore/event_queue.hh"
#include "simcore/job_pump.hh"
#include "simcore/trace.hh"

namespace mobius
{

namespace
{

/** An empty inventory means one default commodity machine. */
std::vector<FleetServerDesc>
orDefaultServers(std::vector<FleetServerDesc> servers)
{
    if (servers.empty())
        servers.push_back(FleetServerDesc{});
    return servers;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fnv64(std::uint64_t &h, std::uint64_t v)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xff;
        h *= kFnvPrime;
    }
}

void
fnvDouble(std::uint64_t &h, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    fnv64(h, bits);
}

} // namespace

FleetSim::FleetSim(FleetOptions opts)
    : opts_([&opts] {
          opts.servers = orDefaultServers(std::move(opts.servers));
          return std::move(opts);
      }()),
      scheduler_(opts_.servers,
                 FleetScheduler::Options{opts_.backfill,
                                         opts_.preemption})
{}

int
FleetSim::submit(JobSpec spec)
{
    if (ran_)
        fatal("FleetSim: submit after run()");
    if (spec.steps < 1)
        fatal("job needs at least one step (got %d)", spec.steps);
    if (spec.arrival < 0.0)
        fatal("job arrival must be >= 0 (got %g)", spec.arrival);
    if (!scheduler_.fits(spec.serverClass))
        fatal("job requests unknown server class '%s'",
              spec.serverClass.c_str());
    // The server class is the single source of truth for machine
    // shape: the job simulates on exactly the machine it will be
    // placed on, so the spec's own shape fields are overwritten.
    for (const auto &desc : opts_.servers) {
        if (desc.klass == spec.serverClass) {
            spec.groups = desc.groups;
            spec.dataCenter = desc.dataCenter;
            break;
        }
    }
    spec.id = static_cast<int>(jobs_.size());
    if (spec.name.empty())
        spec.name = strfmt("job%d", spec.id);
    jobs_.push_back(std::move(spec));
    return jobs_.back().id;
}

int
FleetSim::submitPoisson(const JobSpec &prototype, int count,
                        double jobs_per_second, std::uint64_t seed)
{
    if (count <= 0)
        return static_cast<int>(jobs_.size());
    if (jobs_per_second <= 0.0)
        fatal("Poisson arrival rate must be positive (got %g)",
              jobs_per_second);
    // Shared seeded generator (simcore/arrival.hh): same recurrence,
    // same RNG stream — fingerprints are unchanged by the extraction.
    std::vector<double> times = poissonArrivalTimes(
        count, jobs_per_second, seed, prototype.arrival);
    int first = -1;
    for (int i = 0; i < count; ++i) {
        JobSpec spec = prototype;
        spec.arrival = times[static_cast<std::size_t>(i)];
        spec.name.clear(); // re-derive from the assigned id
        int id = submit(std::move(spec));
        if (first < 0)
            first = id;
    }
    return first;
}

FleetMetrics
FleetSim::run()
{
    if (ran_)
        fatal("FleetSim::run() may only be called once");
    ran_ = true;

    const std::size_t n = jobs_.size();
    records_.assign(n, FleetJobRecord{});
    std::vector<JobStepResult> results(n);
    const FaultPlan *faults =
        opts_.faults.empty() ? nullptr : &opts_.faults;
    PlanCache *cache = opts_.planCache ? &planCache_ : nullptr;

    const bool tracing = opts_.trace.enabled;
    if (tracing) {
        std::vector<std::string> tracks;
        tracks.reserve(
            static_cast<std::size_t>(scheduler_.serverCount()));
        for (int s = 0; s < scheduler_.serverCount(); ++s)
            tracks.push_back(strfmt(
                "server%d.%s", s,
                scheduler_.serverClass(s).c_str()));
        std::vector<std::string> classNames;
        for (int k = 0; k < scheduler_.klassCount(); ++k)
            classNames.push_back(scheduler_.klassName(k));
        trace_ = std::make_unique<FleetTrace>(
            opts_.trace, n, std::move(tracks),
            std::move(classNames));
    }

    // Step simulations are pure in the JobSpec, so they start
    // speculatively at arrival; the event loop only blocks at
    // admission, and only if the result is not ready yet. When
    // tracing, the step's spans are retained just long enough to
    // run critical-path attribution — memoized per jobSimKey (step
    // results are bit-identical per key), so a homogeneous fleet
    // pays one walk. Attribution runs on pump workers but only
    // key-identical values ever race, so the reduction below stays
    // bit-identical at any thread width.
    std::vector<AttributionBreakdown> stepAttrib(tracing ? n : 0);
    JobPump pump(
        n,
        [&](std::size_t i) {
            if (!tracing) {
                results[i] =
                    simulateJobStep(jobs_[i], cache, faults);
                return;
            }
            TraceRecorder tr;
            results[i] =
                simulateJobStep(jobs_[i], cache, faults, &tr);
            stepAttrib[i] = attribCache_.get(
                jobSimKey(jobs_[i]),
                [&] { return attributeStep(tr).critical; });
        },
        opts_.threads);

    EventQueue queue;
    std::vector<EventId> completion(n, kNoEvent);
    std::vector<int> stepsDone(n, 0);
    std::vector<double> occupiedAt(n, -1.0);
    std::uint64_t completedCount = 0;

    // Every scheduler decision is digested into decisionFp — always,
    // tracing on or off, so the fingerprint catches scheduler-order
    // regressions in every configuration and tracing perturbs
    // nothing. The hook runs on the fleet event loop (the scheduler
    // is single-threaded), never on pump workers: the decision log
    // is emitted strictly in event order.
    std::uint64_t decisionFp = kFnvOffset;
    scheduler_.setDecisionHook([&](const SchedDecision &d) {
        fnv64(decisionFp, static_cast<std::uint64_t>(d.kind));
        fnvDouble(decisionFp, d.time);
        fnv64(decisionFp, static_cast<std::uint64_t>(d.job));
        fnv64(decisionFp, static_cast<std::uint64_t>(d.priority));
        fnv64(decisionFp, static_cast<std::uint64_t>(d.server));
        fnv64(decisionFp, static_cast<std::uint64_t>(d.klass));
        fnv64(decisionFp,
              static_cast<std::uint64_t>(d.freeInClass));
        fnv64(decisionFp,
              static_cast<std::uint64_t>(d.blockedHead));
        fnv64(decisionFp, static_cast<std::uint64_t>(d.victim));
        fnv64(decisionFp,
              static_cast<std::uint64_t>(d.victimPriority));
        fnvDouble(decisionFp, d.victimStart);
        fnv64(decisionFp, d.pending);
        if (!trace_)
            return;

        const std::string &klass = scheduler_.klassName(d.klass);
        FleetDecision fd;
        fd.time = d.time;
        fd.job = d.job;
        fd.server = d.server;
        fd.priority = d.priority;
        fd.klass = klass;
        fd.freeInClass = d.freeInClass;
        fd.blockedHead = d.blockedHead;
        if (d.blockedHeadKlass >= 0)
            fd.blockedHeadKlass =
                scheduler_.klassName(d.blockedHeadKlass);
        fd.victim = d.victim;
        fd.victimPriority = d.victimPriority;
        fd.victimStart = d.victimStart;
        fd.pending = d.pending;

        FleetEvent ev;
        ev.time = d.time;
        if (d.kind == SchedDecision::Kind::Preempt) {
            fd.kind = FleetDecision::Kind::Preempt;
            fd.why = strfmt(
                "preempted job %d (prio %d, started %.9gs) on "
                "server %d (%s) for job %d (prio %d): 0 free",
                d.victim, d.victimPriority, d.victimStart,
                d.server, klass.c_str(), d.job, d.priority);
            ev.type = FleetEventType::Preempt;
            ev.job = d.victim;
            ev.server = d.server;
            ev.other = d.job;
            ev.value = d.victimPriority;
        } else {
            if (d.kind == SchedDecision::Kind::Backfill) {
                fd.kind = FleetDecision::Kind::Backfill;
                fd.why = strfmt(
                    "backfilled job %d onto server %d (%s) past "
                    "blocked head %d: head needs 1x%s, 0 free",
                    d.job, d.server, klass.c_str(), d.blockedHead,
                    fd.blockedHeadKlass.c_str());
            } else {
                fd.kind = FleetDecision::Kind::Admit;
                fd.why = strfmt(
                    "admitted job %d on server %d (%s): %d free",
                    d.job, d.server, klass.c_str(),
                    d.freeInClass);
            }
            // The hook fires before the admit callback stamps
            // start, so a non-negative start means this placement
            // is a post-preemption restart.
            bool restart =
                records_[static_cast<std::size_t>(d.job)].start >=
                0.0;
            ev.type = restart ? FleetEventType::Resume
                      : d.kind == SchedDecision::Kind::Backfill
                          ? FleetEventType::Backfill
                          : FleetEventType::Admit;
            ev.job = d.job;
            ev.server = d.server;
            ev.other = d.blockedHead;
            ev.value = d.priority;
        }
        trace_->recordDecision(std::move(fd));
        trace_->recordEvent(ev);
    });

    std::function<void(double)> reschedule;
    std::function<void(int)> onComplete;

    reschedule = [&](double now) {
        // Victims are collected and re-queued *between* scheduler
        // passes: their requeue time is the eviction instant, and
        // an evictee of priority p can itself only evict jobs of
        // strictly lower priority, so the pass chain terminates.
        for (;;) {
            std::vector<int> victims;
            scheduler_.schedule(
                now,
                [&](int victim) {
                    auto &rec =
                        records_[static_cast<std::size_t>(victim)];
                    queue.cancel(completion[static_cast<std::size_t>(
                        victim)]);
                    completion[static_cast<std::size_t>(victim)] =
                        kNoEvent;
                    double step =
                        results[static_cast<std::size_t>(victim)]
                            .stats.stepTime;
                    double ran =
                        now -
                        occupiedAt[static_cast<std::size_t>(victim)];
                    // Dock whole completed steps; partial-step
                    // progress is lost. A victim always keeps at
                    // least one step to run — eviction at the exact
                    // completion instant still requeues it.
                    int whole = step > 0.0
                        ? static_cast<int>(
                              std::floor(ran / step + 1e-9))
                        : 0;
                    auto &done =
                        stepsDone[static_cast<std::size_t>(victim)];
                    done = std::min(
                        done + whole,
                        jobs_[static_cast<std::size_t>(victim)]
                                .steps -
                            1);
                    rec.occupiedSeconds += ran;
                    occupiedAt[static_cast<std::size_t>(victim)] =
                        -1.0;
                    ++rec.preemptions;
                    if (trace_) {
                        FleetEvent ev;
                        ev.type = FleetEventType::Dock;
                        ev.time = now;
                        ev.job = victim;
                        ev.server = rec.server;
                        ev.other = done; // whole steps kept
                        // Lost partial-step progress, seconds.
                        ev.value = step > 0.0
                            ? ran - whole * step
                            : 0.0;
                        trace_->recordEvent(ev);
                    }
                    victims.push_back(victim);
                },
                [&](int id, int server) {
                    auto i = static_cast<std::size_t>(id);
                    pump.wait(i);
                    if (std::exception_ptr e = pump.error(i))
                        std::rethrow_exception(e);
                    auto &rec = records_[i];
                    if (rec.start < 0.0)
                        rec.start = now;
                    rec.server = server;
                    occupiedAt[i] = now;
                    double step = results[i].stats.stepTime;
                    if (step <= 0.0)
                        fatal("job %d simulated a non-positive step "
                              "time (%g s)",
                              id, step);
                    int remaining = jobs_[i].steps - stepsDone[i];
                    completion[i] = queue.schedule(
                        now + remaining * step,
                        [&onComplete, id] { onComplete(id); });
                });
            if (victims.empty())
                break;
            for (int v : victims) {
                const JobSpec &spec =
                    jobs_[static_cast<std::size_t>(v)];
                FleetJobReq req;
                req.klass = spec.serverClass;
                req.priority = spec.priority;
                scheduler_.enqueue(v, now, req);
            }
        }
        // Sample the scheduler gauges once per settled pass (every
        // arrival and completion funnels through here).
        if (trace_)
            trace_->sampleCounters(now, scheduler_.pendingCount(),
                                   scheduler_.runningCount(),
                                   scheduler_.freeCounts());
    };

    onComplete = [&](int id) {
        auto i = static_cast<std::size_t>(id);
        double now = queue.now();
        auto &rec = records_[i];
        rec.finish = now;
        rec.occupiedSeconds += now - occupiedAt[i];
        occupiedAt[i] = -1.0;
        stepsDone[i] = jobs_[i].steps;
        completion[i] = kNoEvent;
        if (trace_) {
            trace_->recordEvent({FleetEventType::Finish, now, id,
                                 rec.server, -1, 0.0});
            trace_->recordEvent({FleetEventType::ServerFree, now,
                                 id, rec.server, -1, 0.0});
        }
        scheduler_.release(id);
        ++completedCount;
        reschedule(now);
    };

    // Arrival events; equal arrival times fire in submit (= id)
    // order, matching the scheduler's (arrival, id) tie-break.
    for (std::size_t i = 0; i < n; ++i) {
        queue.schedule(jobs_[i].arrival, [&, i] {
            pump.enqueue(i);
            FleetJobReq req;
            req.klass = jobs_[i].serverClass;
            req.priority = jobs_[i].priority;
            if (trace_)
                trace_->recordEvent({FleetEventType::Submit,
                                     queue.now(),
                                     static_cast<int>(i), -1, -1,
                                     0.0});
            scheduler_.enqueue(static_cast<int>(i), queue.now(),
                               req);
            reschedule(queue.now());
        });
    }
    queue.run();
    pump.drain();

    if (completedCount != n)
        panic("fleet deadlock: %llu of %zu jobs completed",
              static_cast<unsigned long long>(completedCount), n);

    // Reduce in job-id order — the same arithmetic in the same
    // order at any thread width.
    FleetMetrics m;
    m.jobs = n;
    m.completed = completedCount;
    m.sched = scheduler_.stats();
    PlanCache::Stats ps = planCache_.stats();
    m.planHits = ps.hits;
    m.planMisses = ps.misses;
    m.planHitRate = ps.hitRate();

    std::vector<double> jcts, waits;
    jcts.reserve(n);
    waits.reserve(n);
    std::map<std::string, double> classOccupied;
    double totalOccupied = 0.0;
    double usefulSeconds = 0.0;
    std::uint64_t fp = kFnvOffset;
    fnv64(fp, n);
    for (std::size_t i = 0; i < n; ++i) {
        FleetJobRecord &rec = records_[i];
        const JobSpec &spec = jobs_[i];
        rec.spec = spec;
        rec.arrival = spec.arrival;
        rec.queueDelay = rec.start - rec.arrival;
        rec.stepTime = results[i].stats.stepTime;
        rec.planCacheHit = results[i].planCacheHit;
        rec.spanCount = results[i].spanCount;
        rec.spanHash = results[i].spanHash;
        if (faults) {
            // Goodput needs the fault-free step time; solve it once
            // per distinct job shape (the fault seed is irrelevant
            // to a clean run, so key on plan key + system).
            std::string key =
                strfmt("%s|sys:%s", jobPlanKey(spec).c_str(),
                       jobSystemName(spec.system));
            rec.cleanStepTime = cleanCache_.get(key, [&] {
                return simulateJobStep(spec, cache, nullptr)
                    .stats.stepTime;
            });
        } else {
            rec.cleanStepTime = rec.stepTime;
        }

        jcts.push_back(rec.jct());
        waits.push_back(rec.queueDelay);
        m.makespan = std::max(m.makespan, rec.finish);
        classOccupied[spec.serverClass] += rec.occupiedSeconds;
        totalOccupied += rec.occupiedSeconds;
        usefulSeconds += spec.steps * rec.cleanStepTime;

        fnv64(fp, static_cast<std::uint64_t>(rec.spec.id));
        fnvDouble(fp, rec.arrival);
        fnvDouble(fp, rec.start);
        fnvDouble(fp, rec.finish);
        fnvDouble(fp, rec.stepTime);
        fnvDouble(fp, rec.occupiedSeconds);
        fnv64(fp, static_cast<std::uint64_t>(rec.preemptions));
        fnv64(fp, rec.spanCount);
        fnv64(fp, rec.spanHash);

        if (trace_) {
            // Roll the job's residence time up into the fleet
            // attribution. The identity (gated at 1e-9 by tests
            // and bench_fleet):
            //   jct = queueWait + preemptionLost + steps*stepTime
            // with the in-step categories rescaled from one
            // attributed step so they sum to steps*stepTime
            // exactly (the critical-path walk's own step time is
            // the span makespan, which can differ from the
            // measured stepTime in the last ulp).
            FleetJobAttribution ja;
            ja.job = rec.spec.id;
            ja.name = rec.spec.name;
            ja.klass = rec.spec.serverClass;
            ja.priority = rec.spec.priority;
            ja.jct = rec.jct();
            ja.preemptions = rec.preemptions;
            ja.t.jobs = 1;
            double stepsSeconds = rec.spec.steps * rec.stepTime;
            ja.t.queueWait = ja.jct - rec.occupiedSeconds;
            ja.t.preemptionLost =
                rec.occupiedSeconds - stepsSeconds;
            const AttributionBreakdown &c = stepAttrib[i];
            double ctotal = c.total();
            if (ctotal > 0.0) {
                double scale = stepsSeconds / ctotal;
                ja.t.compute = scale * c.compute;
                ja.t.transfer = scale * c.transfer;
                ja.t.contention = scale * c.queue;
                ja.t.optimizer = scale * c.optimizer;
                ja.t.fault = scale * c.fault;
                ja.t.bubble = scale * c.bubble;
                ja.t.other = scale * c.other;
            } else {
                ja.t.other = stepsSeconds;
            }
            attribution_.add(std::move(ja));
        }
    }
    // Scheduler-order regressions change the decision stream even
    // when per-job timings happen to collide, so the decision
    // digest folds into the cross-width identity token.
    m.decisionFingerprint = decisionFp;
    fnv64(fp, decisionFp);
    m.fingerprint = fp;
    if (trace_) {
        m.traceEvents = trace_->eventCount();
        m.traceTruncated = trace_->truncated();
    }
    m.jctP50 = exactQuantile(jcts, 0.50);
    m.jctP99 = exactQuantile(jcts, 0.99);
    m.jctMax = jcts.empty()
        ? 0.0
        : *std::max_element(jcts.begin(), jcts.end());
    m.waitP50 = exactQuantile(waits, 0.50);
    m.waitP99 = exactQuantile(waits, 0.99);
    if (n > 0) {
        double jsum = 0.0, wsum = 0.0;
        for (double j : jcts)
            jsum += j;
        for (double w : waits)
            wsum += w;
        m.jctMean = jsum / static_cast<double>(n);
        m.waitMean = wsum / static_cast<double>(n);
    }
    if (m.makespan > 0.0) {
        m.utilization = totalOccupied /
            (static_cast<double>(scheduler_.serverCount()) *
             m.makespan);
        for (const auto &[klass, occupied] : classOccupied) {
            int count = scheduler_.classCount(klass);
            if (count > 0)
                m.classUtilization[klass] = occupied /
                    (static_cast<double>(count) * m.makespan);
        }
    }
    if (totalOccupied > 0.0)
        m.goodput = usefulSeconds / totalOccupied;

    if (opts_.metrics && opts_.metrics->enabled()) {
        MetricsRegistry &reg = *opts_.metrics;
        reg.counter("fleet.jobs").add(static_cast<double>(m.jobs));
        reg.counter("fleet.completed")
            .add(static_cast<double>(m.completed));
        reg.counter("fleet.sched.admissions")
            .add(static_cast<double>(m.sched.admissions));
        reg.counter("fleet.sched.backfills")
            .add(static_cast<double>(m.sched.backfills));
        reg.counter("fleet.sched.preemptions")
            .add(static_cast<double>(m.sched.preemptions));
        reg.counter("fleet.plan.hits")
            .add(static_cast<double>(m.planHits));
        reg.counter("fleet.plan.misses")
            .add(static_cast<double>(m.planMisses));
        Histogram &jct = reg.histogram("fleet.jct");
        for (double j : jcts)
            jct.record(j);
        Histogram &wait = reg.histogram("fleet.wait");
        for (double w : waits)
            wait.record(w);
        reg.gauge("fleet.makespan").set(m.makespan);
        reg.gauge("fleet.utilization").set(m.utilization);
        reg.gauge("fleet.goodput").set(m.goodput);
        if (trace_) {
            reg.counter("fleet.trace.events")
                .add(static_cast<double>(m.traceEvents));
            reg.counter("fleet.trace.truncated")
                .add(static_cast<double>(m.traceTruncated));
        }
    }
    metrics_ = m;
    return m;
}

void
FleetSim::requireTrace(const char *what) const
{
    if (!ran_)
        fatal("FleetSim::%s requires a completed run()", what);
    if (!trace_)
        fatal("FleetSim::%s requires FleetOptions::trace.enabled",
              what);
}

const FleetTrace &
FleetSim::fleetTrace() const
{
    requireTrace("fleetTrace()");
    return *trace_;
}

const FleetAttribution &
FleetSim::attribution() const
{
    requireTrace("attribution()");
    return attribution_;
}

std::string
FleetSim::timelineJson() const
{
    requireTrace("timelineJson()");
    std::string metadata = strfmt(
        "{\"kind\":\"fleet-timeline\",\"jobs\":%zu,"
        "\"servers\":%d,\"events\":%llu,\"truncated\":%llu}",
        jobs_.size(), scheduler_.serverCount(),
        static_cast<unsigned long long>(trace_->eventCount()),
        static_cast<unsigned long long>(trace_->truncated()));
    return trace_->toChromeJson(metadata);
}

std::string
FleetSim::reportJsonl() const
{
    requireTrace("reportJsonl()");
    std::ostringstream os;
    os << trace_->decisionLogJsonl();
    for (const FleetJobAttribution &ja : attribution_.jobs)
        os << fleetJobJson(ja) << "\n";
    os << strfmt(
        "{\"kind\":\"summary\",\"jobs\":%llu,\"completed\":%llu,"
        "\"makespan\":%.17g,\"events\":%llu,\"truncated\":%llu,"
        "\"admissions\":%llu,\"backfills\":%llu,"
        "\"preemptions\":%llu,"
        "\"decision_fingerprint\":\"%016llx\"}\n",
        static_cast<unsigned long long>(metrics_.jobs),
        static_cast<unsigned long long>(metrics_.completed),
        metrics_.makespan,
        static_cast<unsigned long long>(metrics_.traceEvents),
        static_cast<unsigned long long>(metrics_.traceTruncated),
        static_cast<unsigned long long>(
            metrics_.sched.admissions),
        static_cast<unsigned long long>(metrics_.sched.backfills),
        static_cast<unsigned long long>(
            metrics_.sched.preemptions),
        static_cast<unsigned long long>(
            metrics_.decisionFingerprint));
    return os.str();
}

} // namespace mobius
