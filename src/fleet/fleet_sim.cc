#include "fleet/fleet_sim.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "base/logging.hh"
#include "base/rng.hh"
#include "simcore/event_queue.hh"
#include "simcore/job_pump.hh"

namespace mobius
{

namespace
{

/** An empty inventory means one default commodity machine. */
std::vector<FleetServerDesc>
orDefaultServers(std::vector<FleetServerDesc> servers)
{
    if (servers.empty())
        servers.push_back(FleetServerDesc{});
    return servers;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fnv64(std::uint64_t &h, std::uint64_t v)
{
    for (int b = 0; b < 8; ++b) {
        h ^= (v >> (8 * b)) & 0xff;
        h *= kFnvPrime;
    }
}

void
fnvDouble(std::uint64_t &h, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    fnv64(h, bits);
}

} // namespace

FleetSim::FleetSim(FleetOptions opts)
    : opts_([&opts] {
          opts.servers = orDefaultServers(std::move(opts.servers));
          return std::move(opts);
      }()),
      scheduler_(opts_.servers,
                 FleetScheduler::Options{opts_.backfill,
                                         opts_.preemption})
{}

int
FleetSim::submit(JobSpec spec)
{
    if (ran_)
        fatal("FleetSim: submit after run()");
    if (spec.steps < 1)
        fatal("job needs at least one step (got %d)", spec.steps);
    if (spec.arrival < 0.0)
        fatal("job arrival must be >= 0 (got %g)", spec.arrival);
    if (!scheduler_.fits(spec.serverClass))
        fatal("job requests unknown server class '%s'",
              spec.serverClass.c_str());
    // The server class is the single source of truth for machine
    // shape: the job simulates on exactly the machine it will be
    // placed on, so the spec's own shape fields are overwritten.
    for (const auto &desc : opts_.servers) {
        if (desc.klass == spec.serverClass) {
            spec.groups = desc.groups;
            spec.dataCenter = desc.dataCenter;
            break;
        }
    }
    spec.id = static_cast<int>(jobs_.size());
    if (spec.name.empty())
        spec.name = strfmt("job%d", spec.id);
    jobs_.push_back(std::move(spec));
    return jobs_.back().id;
}

int
FleetSim::submitPoisson(const JobSpec &prototype, int count,
                        double jobs_per_second, std::uint64_t seed)
{
    if (count <= 0)
        return static_cast<int>(jobs_.size());
    if (jobs_per_second <= 0.0)
        fatal("Poisson arrival rate must be positive (got %g)",
              jobs_per_second);
    Rng rng(seed);
    double t = prototype.arrival;
    int first = -1;
    for (int i = 0; i < count; ++i) {
        // Exponential inter-arrival gap: -ln(1 - U) / rate.
        t += -std::log1p(-rng.uniform()) / jobs_per_second;
        JobSpec spec = prototype;
        spec.arrival = t;
        spec.name.clear(); // re-derive from the assigned id
        int id = submit(std::move(spec));
        if (first < 0)
            first = id;
    }
    return first;
}

FleetMetrics
FleetSim::run()
{
    if (ran_)
        fatal("FleetSim::run() may only be called once");
    ran_ = true;

    const std::size_t n = jobs_.size();
    records_.assign(n, FleetJobRecord{});
    std::vector<JobStepResult> results(n);
    const FaultPlan *faults =
        opts_.faults.empty() ? nullptr : &opts_.faults;
    PlanCache *cache = opts_.planCache ? &planCache_ : nullptr;

    // Step simulations are pure in the JobSpec, so they start
    // speculatively at arrival; the event loop only blocks at
    // admission, and only if the result is not ready yet.
    JobPump pump(
        n,
        [&](std::size_t i) {
            results[i] = simulateJobStep(jobs_[i], cache, faults);
        },
        opts_.threads);

    EventQueue queue;
    std::vector<EventId> completion(n, kNoEvent);
    std::vector<int> stepsDone(n, 0);
    std::vector<double> occupiedAt(n, -1.0);
    std::uint64_t completedCount = 0;

    std::function<void(double)> reschedule;
    std::function<void(int)> onComplete;

    reschedule = [&](double now) {
        // Victims are collected and re-queued *between* scheduler
        // passes: their requeue time is the eviction instant, and
        // an evictee of priority p can itself only evict jobs of
        // strictly lower priority, so the pass chain terminates.
        for (;;) {
            std::vector<int> victims;
            scheduler_.schedule(
                now,
                [&](int victim) {
                    auto &rec =
                        records_[static_cast<std::size_t>(victim)];
                    queue.cancel(completion[static_cast<std::size_t>(
                        victim)]);
                    completion[static_cast<std::size_t>(victim)] =
                        kNoEvent;
                    double step =
                        results[static_cast<std::size_t>(victim)]
                            .stats.stepTime;
                    double ran =
                        now -
                        occupiedAt[static_cast<std::size_t>(victim)];
                    // Dock whole completed steps; partial-step
                    // progress is lost. A victim always keeps at
                    // least one step to run — eviction at the exact
                    // completion instant still requeues it.
                    int whole = step > 0.0
                        ? static_cast<int>(
                              std::floor(ran / step + 1e-9))
                        : 0;
                    auto &done =
                        stepsDone[static_cast<std::size_t>(victim)];
                    done = std::min(
                        done + whole,
                        jobs_[static_cast<std::size_t>(victim)]
                                .steps -
                            1);
                    rec.occupiedSeconds += ran;
                    occupiedAt[static_cast<std::size_t>(victim)] =
                        -1.0;
                    ++rec.preemptions;
                    victims.push_back(victim);
                },
                [&](int id, int server) {
                    auto i = static_cast<std::size_t>(id);
                    pump.wait(i);
                    if (std::exception_ptr e = pump.error(i))
                        std::rethrow_exception(e);
                    auto &rec = records_[i];
                    if (rec.start < 0.0)
                        rec.start = now;
                    rec.server = server;
                    occupiedAt[i] = now;
                    double step = results[i].stats.stepTime;
                    if (step <= 0.0)
                        fatal("job %d simulated a non-positive step "
                              "time (%g s)",
                              id, step);
                    int remaining = jobs_[i].steps - stepsDone[i];
                    completion[i] = queue.schedule(
                        now + remaining * step,
                        [&onComplete, id] { onComplete(id); });
                });
            if (victims.empty())
                break;
            for (int v : victims) {
                const JobSpec &spec =
                    jobs_[static_cast<std::size_t>(v)];
                FleetJobReq req;
                req.klass = spec.serverClass;
                req.priority = spec.priority;
                scheduler_.enqueue(v, now, req);
            }
        }
    };

    onComplete = [&](int id) {
        auto i = static_cast<std::size_t>(id);
        double now = queue.now();
        auto &rec = records_[i];
        rec.finish = now;
        rec.occupiedSeconds += now - occupiedAt[i];
        occupiedAt[i] = -1.0;
        stepsDone[i] = jobs_[i].steps;
        completion[i] = kNoEvent;
        scheduler_.release(id);
        ++completedCount;
        reschedule(now);
    };

    // Arrival events; equal arrival times fire in submit (= id)
    // order, matching the scheduler's (arrival, id) tie-break.
    for (std::size_t i = 0; i < n; ++i) {
        queue.schedule(jobs_[i].arrival, [&, i] {
            pump.enqueue(i);
            FleetJobReq req;
            req.klass = jobs_[i].serverClass;
            req.priority = jobs_[i].priority;
            scheduler_.enqueue(static_cast<int>(i), queue.now(),
                               req);
            reschedule(queue.now());
        });
    }
    queue.run();
    pump.drain();

    if (completedCount != n)
        panic("fleet deadlock: %llu of %zu jobs completed",
              static_cast<unsigned long long>(completedCount), n);

    // Reduce in job-id order — the same arithmetic in the same
    // order at any thread width.
    FleetMetrics m;
    m.jobs = n;
    m.completed = completedCount;
    m.sched = scheduler_.stats();
    PlanCache::Stats ps = planCache_.stats();
    m.planHits = ps.hits;
    m.planMisses = ps.misses;
    m.planHitRate = ps.hitRate();

    std::vector<double> jcts, waits;
    jcts.reserve(n);
    waits.reserve(n);
    std::map<std::string, double> classOccupied;
    double totalOccupied = 0.0;
    double usefulSeconds = 0.0;
    std::uint64_t fp = kFnvOffset;
    fnv64(fp, n);
    for (std::size_t i = 0; i < n; ++i) {
        FleetJobRecord &rec = records_[i];
        const JobSpec &spec = jobs_[i];
        rec.spec = spec;
        rec.arrival = spec.arrival;
        rec.queueDelay = rec.start - rec.arrival;
        rec.stepTime = results[i].stats.stepTime;
        rec.planCacheHit = results[i].planCacheHit;
        rec.spanCount = results[i].spanCount;
        rec.spanHash = results[i].spanHash;
        if (faults) {
            // Goodput needs the fault-free step time; solve it once
            // per distinct job shape (the fault seed is irrelevant
            // to a clean run, so key on plan key + system).
            std::string key =
                strfmt("%s|sys:%s", jobPlanKey(spec).c_str(),
                       jobSystemName(spec.system));
            rec.cleanStepTime = cleanCache_.get(key, [&] {
                return simulateJobStep(spec, cache, nullptr)
                    .stats.stepTime;
            });
        } else {
            rec.cleanStepTime = rec.stepTime;
        }

        jcts.push_back(rec.jct());
        waits.push_back(rec.queueDelay);
        m.makespan = std::max(m.makespan, rec.finish);
        classOccupied[spec.serverClass] += rec.occupiedSeconds;
        totalOccupied += rec.occupiedSeconds;
        usefulSeconds += spec.steps * rec.cleanStepTime;

        fnv64(fp, static_cast<std::uint64_t>(rec.spec.id));
        fnvDouble(fp, rec.arrival);
        fnvDouble(fp, rec.start);
        fnvDouble(fp, rec.finish);
        fnvDouble(fp, rec.stepTime);
        fnvDouble(fp, rec.occupiedSeconds);
        fnv64(fp, static_cast<std::uint64_t>(rec.preemptions));
        fnv64(fp, rec.spanCount);
        fnv64(fp, rec.spanHash);
    }
    m.fingerprint = fp;
    m.jctP50 = exactQuantile(jcts, 0.50);
    m.jctP99 = exactQuantile(jcts, 0.99);
    m.jctMax = jcts.empty()
        ? 0.0
        : *std::max_element(jcts.begin(), jcts.end());
    m.waitP50 = exactQuantile(waits, 0.50);
    m.waitP99 = exactQuantile(waits, 0.99);
    if (n > 0) {
        double jsum = 0.0, wsum = 0.0;
        for (double j : jcts)
            jsum += j;
        for (double w : waits)
            wsum += w;
        m.jctMean = jsum / static_cast<double>(n);
        m.waitMean = wsum / static_cast<double>(n);
    }
    if (m.makespan > 0.0) {
        m.utilization = totalOccupied /
            (static_cast<double>(scheduler_.serverCount()) *
             m.makespan);
        for (const auto &[klass, occupied] : classOccupied) {
            int count = scheduler_.classCount(klass);
            if (count > 0)
                m.classUtilization[klass] = occupied /
                    (static_cast<double>(count) * m.makespan);
        }
    }
    if (totalOccupied > 0.0)
        m.goodput = usefulSeconds / totalOccupied;

    if (opts_.metrics && opts_.metrics->enabled()) {
        MetricsRegistry &reg = *opts_.metrics;
        reg.counter("fleet.jobs").add(static_cast<double>(m.jobs));
        reg.counter("fleet.completed")
            .add(static_cast<double>(m.completed));
        reg.counter("fleet.sched.admissions")
            .add(static_cast<double>(m.sched.admissions));
        reg.counter("fleet.sched.backfills")
            .add(static_cast<double>(m.sched.backfills));
        reg.counter("fleet.sched.preemptions")
            .add(static_cast<double>(m.sched.preemptions));
        reg.counter("fleet.plan.hits")
            .add(static_cast<double>(m.planHits));
        reg.counter("fleet.plan.misses")
            .add(static_cast<double>(m.planMisses));
        Histogram &jct = reg.histogram("fleet.jct");
        for (double j : jcts)
            jct.record(j);
        Histogram &wait = reg.histogram("fleet.wait");
        for (double w : waits)
            wait.record(w);
        reg.gauge("fleet.makespan").set(m.makespan);
        reg.gauge("fleet.utilization").set(m.utilization);
        reg.gauge("fleet.goodput").set(m.goodput);
    }
    return m;
}

} // namespace mobius
