/**
 * @file
 * Single-flight memoization of planning results for fleet runs.
 *
 * At fleet scale the dominant per-job cost is *planning*: the MIP
 * partition search plus the cross-mapping permutation sweep take
 * 10-100ms wall per (model, topology) pair, an order of magnitude
 * more than simulating the step itself (PR 6 made the simulator that
 * fast). A homogeneous fleet of 200 jobs would re-solve the same
 * plan 200 times. planMobius() is a pure function of its inputs, so
 * the fleet memoizes it: jobs are keyed by a canonical string of
 * every planner-relevant input (fleet/job.hh jobPlanKey()) and the
 * solve runs once per distinct key.
 *
 * The cache is *single-flight*: concurrent get()s for the same key
 * (parallel job pump workers simulating identical jobs) block on one
 * std::once_flag while the first caller solves, instead of solving
 * redundantly or — worse — racing on the map. That also makes the
 * hit/miss counters deterministic at any thread width: misses always
 * equal the number of distinct keys, regardless of which worker got
 * there first.
 *
 * Correctness contract (cross-checked in tests/test_fleet.cc): a
 * cache hit returns the exact object a fresh solve would have
 * produced — the simulation driven by a cached plan is span-for-span
 * identical to one driven by an uncached solve.
 */

#ifndef MOBIUS_FLEET_PLAN_CACHE_HH
#define MOBIUS_FLEET_PLAN_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "runtime/api.hh"

namespace mobius
{

/**
 * A thread-safe, single-flight memo table from canonical key
 * strings to values of type @p V. The value is computed by the
 * first get() for a key and shared by reference thereafter; @p V
 * must be immutable after construction (callers copy what they
 * need to mutate).
 */
template <typename V>
class SingleFlightCache
{
  public:
    /** Hit/miss totals since construction (or clear()). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;

        /** @return hits / lookups, 0 when no lookups happened. */
        double
        hitRate() const
        {
            std::uint64_t total = hits + misses;
            return total ? static_cast<double>(hits) /
                    static_cast<double>(total)
                         : 0.0;
        }
    };

    /**
     * Return the value for @p key, computing it with @p solve on
     * the first call (subsequent and concurrent callers wait for
     * that one solve). @p hit, when non-null, reports whether this
     * call found the entry already solved — deterministic per key:
     * exactly one get() per key reports a miss.
     */
    V
    get(const std::string &key, const std::function<V()> &solve,
        bool *hit = nullptr)
    {
        Entry *entry = nullptr;
        bool fresh = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto [it, inserted] = entries_.try_emplace(key);
            if (inserted)
                it->second = std::make_unique<Entry>();
            entry = it->second.get();
            fresh = inserted;
            if (fresh)
                ++stats_.misses;
            else
                ++stats_.hits;
        }
        if (hit)
            *hit = !fresh;
        // Solve outside the map lock: a 100ms MIP solve must not
        // serialize lookups for unrelated keys.
        std::call_once(entry->once, [&] { entry->value = solve(); });
        return entry->value;
    }

    /** @return hit/miss totals (consistent snapshot). */
    Stats
    stats() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return stats_;
    }

    /** @return number of distinct keys ever solved or in flight. */
    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return entries_.size();
    }

    /** Drop every entry and zero the stats. */
    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mu_);
        entries_.clear();
        stats_ = Stats{};
    }

  private:
    struct Entry
    {
        std::once_flag once;
        V value{};
    };

    mutable std::mutex mu_;
    std::unordered_map<std::string, std::unique_ptr<Entry>> entries_;
    Stats stats_;
};

/** The fleet's plan memo: canonical job plan key -> MobiusPlan. */
using PlanCache = SingleFlightCache<MobiusPlan>;

} // namespace mobius

#endif // MOBIUS_FLEET_PLAN_CACHE_HH
