#include "profile/profiler.hh"

#include <map>

namespace mobius
{

ProfileResult
profileModel(const CostModel &cost, const ProfilerConfig &cfg)
{
    ProfileResult result;
    result.layers.resize(static_cast<std::size_t>(cost.numLayers()));

    Rng rng(cfg.seed);
    // similarity class -> profiled representative (layer index)
    std::map<int, int> seen;

    for (int i = 0; i < cost.numLayers(); ++i) {
        const LayerDesc &desc = cost.model().layers[i];

        if (cfg.useLayerSimilarity) {
            auto it = seen.find(desc.similarityClass);
            if (it != seen.end()) {
                result.layers[i] = result.layers[it->second];
                // Sizes are exact per layer even when timing is
                // shared (same shapes imply same sizes anyway).
                continue;
            }
            seen.emplace(desc.similarityClass, i);
        }

        double noise_f = 1.0;
        double noise_b = 1.0;
        if (cfg.measurementNoise > 0.0) {
            noise_f += cfg.measurementNoise * rng.gaussian();
            noise_b += cfg.measurementNoise * rng.gaussian();
            noise_f = std::max(noise_f, 0.5);
            noise_b = std::max(noise_b, 0.5);
        }

        LayerProfile p;
        p.fwdTime = cost.fwdTime(i) * noise_f;
        p.bwdTime = cost.bwdTime(i) * noise_b;
        p.paramBytes = cost.paramBytes(i);
        p.gradBytes = cost.gradBytes(i);
        p.actBytes = cost.actBytes(i);
        p.memFwd = cost.stageMemFwd(i, i + 1);
        p.memBwd = cost.stageMemBwd(i, i + 1);
        result.layers[i] = p;

        // Cost of measuring this layer: upload its weights once at
        // PCIe speed (prefetch disabled), then time a few fwd+bwd
        // iterations.
        double upload = static_cast<double>(p.paramBytes) /
            cfg.uploadBandwidth;
        result.profilingTime += upload +
            cfg.iterations * (p.fwdTime + p.bwdTime);
        ++result.profiledLayers;
    }
    return result;
}

} // namespace mobius
