/**
 * @file
 * Layer profiler (§3.2 "Profiling").
 *
 * The MIP partition algorithm needs per-layer compute time and memory
 * footprint. The paper measures these by running each layer with
 * prefetching disabled; because large models are stacks of identical
 * transformer blocks, Mobius compresses the model via *layer
 * similarity* and profiles one representative per similarity class,
 * which is what keeps profiling time flat across model sizes
 * (Fig. 12, observation 2).
 *
 * In this reproduction the "hardware measurement" of a layer is a
 * draw from the analytic cost model plus optional deterministic noise;
 * the *cost* of profiling (what Fig. 12 reports) is modelled as a few
 * timed iterations plus the weight upload at PCIe bandwidth.
 */

#ifndef MOBIUS_PROFILE_PROFILER_HH
#define MOBIUS_PROFILE_PROFILER_HH

#include <vector>

#include "base/rng.hh"
#include "model/cost_model.hh"

namespace mobius
{

/** Measured statistics for one layer. */
struct LayerProfile
{
    double fwdTime = 0.0;    //!< seconds per microbatch
    double bwdTime = 0.0;    //!< seconds per microbatch (backward)
    Bytes paramBytes = 0;    //!< FP16 weights
    Bytes gradBytes = 0;     //!< FP16 gradients
    Bytes actBytes = 0;      //!< boundary activation per microbatch
    Bytes memFwd = 0;        //!< forward footprint (weights + live)
    Bytes memBwd = 0;        //!< backward footprint
};

/** Result of a profiling pass. */
struct ProfileResult
{
    std::vector<LayerProfile> layers;  //!< one entry per model layer
    int profiledLayers = 0;            //!< layers actually measured
    double profilingTime = 0.0;        //!< simulated wall time (s)
};

/** Profiler configuration. */
struct ProfilerConfig
{
    bool useLayerSimilarity = true;    //!< measure one per class
    int iterations = 3;                //!< timed runs per layer
    double uploadBandwidth = 13.1e9;   //!< weights upload rate (B/s)
    double measurementNoise = 0.0;     //!< relative sigma, 0 = exact
    std::uint64_t seed = 1;            //!< noise generator seed
};

/**
 * Run a (simulated) profiling pass for @p cost.
 *
 * Every layer of the model receives a LayerProfile; when layer
 * similarity is enabled only one representative per similarity class
 * is "measured" and the result is shared across the class.
 */
ProfileResult profileModel(const CostModel &cost,
                           const ProfilerConfig &cfg = {});

} // namespace mobius

#endif // MOBIUS_PROFILE_PROFILER_HH
