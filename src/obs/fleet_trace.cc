#include "obs/fleet_trace.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "base/json.hh"
#include "base/logging.hh"
#include "simcore/trace.hh"

namespace mobius
{

const char *
fleetEventName(FleetEventType type)
{
    switch (type) {
      case FleetEventType::Submit: return "submit";
      case FleetEventType::Admit: return "admit";
      case FleetEventType::Backfill: return "backfill";
      case FleetEventType::Preempt: return "preempt";
      case FleetEventType::Dock: return "dock";
      case FleetEventType::Resume: return "resume";
      case FleetEventType::Finish: return "finish";
      case FleetEventType::ServerFree: return "server-free";
    }
    return "unknown";
}

const char *
fleetDecisionName(FleetDecision::Kind kind)
{
    switch (kind) {
      case FleetDecision::Kind::Admit: return "admit";
      case FleetDecision::Kind::Backfill: return "backfill";
      case FleetDecision::Kind::Preempt: return "preempt";
    }
    return "unknown";
}

namespace
{

/** %.17g round-trips doubles exactly and deterministically — the
 *  byte-identity contract of the decision log. */
std::string
num(double v)
{
    return strfmt("%.17g", v);
}

} // namespace

std::string
fleetDecisionJson(const FleetDecision &d)
{
    std::ostringstream os;
    os << "{\"kind\":\"decision\",\"type\":\""
       << fleetDecisionName(d.kind) << "\",\"time\":" << num(d.time)
       << ",\"job\":" << d.job << ",\"server\":" << d.server
       << ",\"priority\":" << d.priority << ",\"class\":\""
       << json::escape(d.klass)
       << "\",\"free_in_class\":" << d.freeInClass
       << ",\"pending\":" << d.pending
       << ",\"blocked_head\":" << d.blockedHead
       << ",\"blocked_head_class\":\""
       << json::escape(d.blockedHeadKlass) << "\",\"victim\":"
       << d.victim << ",\"victim_priority\":" << d.victimPriority
       << ",\"victim_start\":" << num(d.victimStart)
       << ",\"why\":\"" << json::escape(d.why) << "\"}";
    return os.str();
}

double
FleetTimeBreakdown::total() const
{
    return queueWait + compute + transfer + contention + optimizer +
           fault + bubble + other + preemptionLost;
}

void
FleetTimeBreakdown::add(const FleetTimeBreakdown &o)
{
    queueWait += o.queueWait;
    compute += o.compute;
    transfer += o.transfer;
    contention += o.contention;
    optimizer += o.optimizer;
    fault += o.fault;
    bubble += o.bubble;
    other += o.other;
    preemptionLost += o.preemptionLost;
    jobs += o.jobs;
}

const char *
FleetTimeBreakdown::dominant() const
{
    struct Entry
    {
        const char *name;
        double value;
    };
    const Entry entries[] = {
        {"queue-wait", queueWait}, {"compute", compute},
        {"transfer", transfer},    {"contention", contention},
        {"optimizer", optimizer},  {"fault", fault},
        {"bubble", bubble},        {"other", other},
        {"preemption-lost", preemptionLost},
    };
    const char *best = "none";
    double bestValue = 0.0;
    for (const Entry &e : entries) {
        if (e.value > bestValue) {
            best = e.name;
            bestValue = e.value;
        }
    }
    return best;
}

namespace
{

/** Serialise one breakdown cell as a JSON object. */
std::string
breakdownJson(const FleetTimeBreakdown &t)
{
    std::ostringstream os;
    os << "{\"jobs\":" << t.jobs << ",\"total\":" << num(t.total())
       << ",\"queue_wait\":" << num(t.queueWait)
       << ",\"compute\":" << num(t.compute)
       << ",\"transfer\":" << num(t.transfer)
       << ",\"contention\":" << num(t.contention)
       << ",\"optimizer\":" << num(t.optimizer)
       << ",\"fault\":" << num(t.fault)
       << ",\"bubble\":" << num(t.bubble)
       << ",\"other\":" << num(t.other)
       << ",\"preemption_lost\":" << num(t.preemptionLost) << "}";
    return os.str();
}

} // namespace

std::string
fleetJobJson(const FleetJobAttribution &ja)
{
    std::ostringstream os;
    os << "{\"kind\":\"job\",\"job\":" << ja.job << ",\"name\":\""
       << json::escape(ja.name) << "\",\"class\":\""
       << json::escape(ja.klass) << "\",\"priority\":" << ja.priority
       << ",\"jct\":" << num(ja.jct)
       << ",\"preemptions\":" << ja.preemptions << ",\"dominant\":\""
       << ja.t.dominant() << "\",\"breakdown\":"
       << breakdownJson(ja.t) << "}";
    return os.str();
}

void
FleetAttribution::add(FleetJobAttribution ja)
{
    total.add(ja.t);
    byClass[ja.klass].add(ja.t);
    byPriority[ja.priority].add(ja.t);
    jobs.push_back(std::move(ja));
}

std::vector<std::size_t>
FleetAttribution::worstJobs(int k) const
{
    std::vector<std::size_t> order(jobs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  if (jobs[a].jct != jobs[b].jct)
                      return jobs[a].jct > jobs[b].jct;
                  return jobs[a].job < jobs[b].job;
              });
    if (k >= 0 && order.size() > static_cast<std::size_t>(k))
        order.resize(static_cast<std::size_t>(k));
    return order;
}

namespace
{

/** One table row of the fleet attribution breakdown. */
std::string
tableRow(const std::string &label, const FleetTimeBreakdown &t)
{
    return strfmt("%-16s %6llu %10.3f %9.3f %9.3f %9.3f %9.3f %9.3f "
                  "%9.3f %9.3f %9.3f %9.3f\n",
                  label.c_str(),
                  static_cast<unsigned long long>(t.jobs), t.total(),
                  t.queueWait, t.compute, t.transfer, t.contention,
                  t.optimizer, t.fault, t.bubble, t.other,
                  t.preemptionLost);
}

} // namespace

std::string
fleetAttributionTable(const FleetAttribution &a, int top_k)
{
    std::ostringstream os;
    os << "where did fleet time go (seconds)\n";
    os << strfmt("%-16s %6s %10s %9s %9s %9s %9s %9s %9s %9s %9s "
                 "%9s\n",
                 "cell", "jobs", "total", "queue", "compute", "xfer",
                 "contend", "optim", "fault", "bubble", "other",
                 "preempt");
    for (const auto &[klass, t] : a.byClass)
        os << tableRow("class " + klass, t);
    for (const auto &[prio, t] : a.byPriority)
        os << tableRow(strfmt("prio %d", prio), t);
    os << tableRow("TOTAL", a.total);
    if (top_k > 0 && !a.jobs.empty()) {
        os << strfmt("\nworst %d JCTs\n",
                     static_cast<int>(std::min<std::size_t>(
                         top_k, a.jobs.size())));
        for (std::size_t idx : a.worstJobs(top_k)) {
            const FleetJobAttribution &ja = a.jobs[idx];
            os << strfmt("  %-8s jct %10.3fs  dominant %-15s "
                         "(class %s, prio %d, %d preemption%s)\n",
                         ja.name.c_str(), ja.jct, ja.t.dominant(),
                         ja.klass.c_str(), ja.priority,
                         ja.preemptions,
                         ja.preemptions == 1 ? "" : "s");
        }
    }
    return os.str();
}

std::string
fleetAttributionJson(const FleetAttribution &a, int top_k)
{
    std::ostringstream os;
    os << "{\"total\":" << breakdownJson(a.total)
       << ",\"by_class\":{";
    bool first = true;
    for (const auto &[klass, t] : a.byClass) {
        os << (first ? "" : ",") << "\"" << json::escape(klass)
           << "\":" << breakdownJson(t);
        first = false;
    }
    os << "},\"by_priority\":{";
    first = true;
    for (const auto &[prio, t] : a.byPriority) {
        os << (first ? "" : ",") << "\"" << prio
           << "\":" << breakdownJson(t);
        first = false;
    }
    os << "},\"worst\":[";
    first = true;
    if (top_k > 0) {
        for (std::size_t idx : a.worstJobs(top_k)) {
            os << (first ? "" : ",") << fleetJobJson(a.jobs[idx]);
            first = false;
        }
    }
    os << "],\"jobs\":" << a.jobs.size() << "}";
    return os.str();
}

FleetTrace::FleetTrace(const FleetTraceConfig &cfg, std::size_t jobs,
                       std::vector<std::string> serverTracks,
                       std::vector<std::string> classNames)
    : cfg_(cfg), serverTracks_(std::move(serverTracks)),
      classNames_(std::move(classNames)), rings_(jobs),
      openStint_(jobs, -1), lastStint_(jobs, -1)
{
}

void
FleetTrace::recordEvent(const FleetEvent &ev)
{
    if (ev.job < 0 || static_cast<std::size_t>(ev.job) >=
                          rings_.size())
        fatal("fleet trace: event for unknown job %d", ev.job);
    ++eventCount_;
    JobRing &ring = rings_[ev.job];
    std::size_t cap = cfg_.maxEventsPerJob > 0
                          ? static_cast<std::size_t>(
                                cfg_.maxEventsPerJob)
                          : 0;
    if (cap == 0 || ring.events.size() < cap) {
        ring.events.push_back(ev);
    } else {
        // Ring full: overwrite the oldest entry, count the drop —
        // truncation is reported, never silent.
        ring.events[ring.next] = ev;
        ring.next = (ring.next + 1) % cap;
        ++ring.dropped;
        ++truncated_;
    }

    switch (ev.type) {
      case FleetEventType::Admit:
      case FleetEventType::Backfill:
        openStint(ev, false);
        break;
      case FleetEventType::Resume:
        openStint(ev, true);
        break;
      case FleetEventType::Preempt:
        closeStint(ev, true);
        break;
      case FleetEventType::Finish:
        closeStint(ev, false);
        break;
      default:
        break;
    }
}

void
FleetTrace::openStint(const FleetEvent &ev, bool resumed)
{
    Stint stint;
    stint.job = ev.job;
    stint.server = ev.server;
    stint.start = ev.time;
    stint.resumedFrom = resumed ? lastStint_[ev.job] : -1;
    int idx = static_cast<int>(stints_.size());
    stints_.push_back(stint);
    openStint_[ev.job] = idx;
    lastStint_[ev.job] = idx;
}

void
FleetTrace::closeStint(const FleetEvent &ev, bool preempted)
{
    int idx = openStint_[ev.job];
    if (idx < 0)
        return; // preempted before placement — nothing open
    stints_[idx].end = ev.time;
    stints_[idx].preempted = preempted;
    openStint_[ev.job] = -1;
}

void
FleetTrace::recordDecision(FleetDecision d)
{
    decisions_.push_back(std::move(d));
}

void
FleetTrace::sampleCounters(double time, std::size_t pending,
                           std::size_t running,
                           const std::vector<int> &freePerClass)
{
    if (!samples_.empty()) {
        const CounterSample &last = samples_.back();
        if (last.pending == pending && last.running == running &&
            last.freePerClass == freePerClass)
            return; // nothing moved — collapse the sample
    }
    CounterSample sample;
    sample.time = time;
    sample.pending = pending;
    sample.running = running;
    sample.freePerClass = freePerClass;
    samples_.push_back(std::move(sample));
}

std::vector<FleetEvent>
FleetTrace::events(int job) const
{
    if (job < 0 || static_cast<std::size_t>(job) >= rings_.size())
        return {};
    const JobRing &ring = rings_[job];
    std::vector<FleetEvent> out;
    out.reserve(ring.events.size());
    // Oldest-first: the ring write index is the oldest retained
    // entry once the ring has wrapped.
    for (std::size_t i = 0; i < ring.events.size(); ++i)
        out.push_back(
            ring.events[(ring.next + i) % ring.events.size()]);
    return out;
}

std::uint64_t
FleetTrace::truncated(int job) const
{
    if (job < 0 || static_cast<std::size_t>(job) >= rings_.size())
        return 0;
    return rings_[job].dropped;
}

std::string
FleetTrace::decisionLogJsonl() const
{
    std::ostringstream os;
    for (const FleetDecision &d : decisions_)
        os << fleetDecisionJson(d) << "\n";
    return os.str();
}

std::string
FleetTrace::toChromeJson(const std::string &metadata_json) const
{
    TraceRecorder tr;
    double maxTime = 0.0;
    for (const Stint &s : stints_)
        maxTime = std::max(maxTime, std::max(s.start, s.end));
    for (const CounterSample &s : samples_)
        maxTime = std::max(maxTime, s.time);

    // One occupancy span per stint, on its server's track. Resume
    // stints depend on the stint they resumed from, which
    // TraceRecorder exports as a "s"/"f" flow-arrow pair.
    std::vector<SpanId> spanIds(stints_.size(), kNoSpan);
    for (std::size_t i = 0; i < stints_.size(); ++i) {
        const Stint &s = stints_[i];
        TraceSpan span;
        span.track = s.server >= 0 &&
                             static_cast<std::size_t>(s.server) <
                                 serverTracks_.size()
                         ? serverTracks_[s.server]
                         : strfmt("server%d", s.server);
        span.name = strfmt("job%d", s.job);
        span.category = s.preempted ? "occupancy.preempted"
                                    : "occupancy";
        span.start = s.start;
        span.end = s.end >= 0.0 ? s.end
                                : std::max(maxTime, s.start);
        span.stage = s.job;
        if (s.resumedFrom >= 0)
            span.deps.push_back(spanIds[s.resumedFrom]);
        spanIds[i] = tr.record(std::move(span));
    }

    for (const CounterSample &s : samples_) {
        tr.recordCounter({"fleet.pending.depth", s.time,
                          static_cast<double>(s.pending)});
        tr.recordCounter({"fleet.running.jobs", s.time,
                          static_cast<double>(s.running)});
        for (std::size_t k = 0; k < s.freePerClass.size(); ++k) {
            std::string name =
                k < classNames_.size()
                    ? "fleet.free." + classNames_[k]
                    : strfmt("fleet.free.class%zu", k);
            tr.recordCounter(
                {std::move(name), s.time,
                 static_cast<double>(s.freePerClass[k])});
        }
    }

    return tr.toChromeJson(metadata_json);
}

} // namespace mobius
