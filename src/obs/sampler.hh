/**
 * @file
 * Periodic metrics sampling on simulated time.
 *
 * A MetricsSampler walks the registry at a fixed simulated-time
 * interval and snapshots every counter and gauge — into the trace
 * recorder as Chrome-tracing counter events (Perfetto graphs them
 * as live counter tracks), and into an in-memory sample table for
 * CSV export. The sampler only reschedules itself while other
 * events are pending, so EventQueue::run() still terminates.
 */

#ifndef MOBIUS_SIMCORE_SAMPLER_HH
#define MOBIUS_SIMCORE_SAMPLER_HH

#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "simcore/event_queue.hh"
#include "simcore/trace.hh"

namespace mobius
{

/** One time-series sample captured by the MetricsSampler. */
struct MetricSample
{
    SimTime time = 0.0;  //!< sample time (simulated seconds)
    std::string name;    //!< metric name
    double value = 0.0;  //!< counter/gauge value at @a time
};

/** Samples registry counters and gauges on a simulated-time grid. */
class MetricsSampler
{
  public:
    /**
     * @param queue    drives sampling ticks
     * @param registry the metrics to snapshot
     * @param trace    optional sink for Chrome counter events
     * @param interval sampling period in simulated seconds (> 0)
     */
    MetricsSampler(EventQueue &queue, MetricsRegistry &registry,
                   TraceRecorder *trace, double interval);

    /**
     * Take a sample now and begin periodic ticks. Ticks re-arm only
     * while other events are pending, so the queue still drains.
     */
    void start();

    /** All captured samples in time order. */
    const std::vector<MetricSample> &
    samples() const
    {
        return samples_;
    }

    /** @return number of sampling ticks taken. */
    std::uint64_t ticks() const { return ticks_; }

  private:
    void tick();
    void sampleNow();

    EventQueue &queue_;
    MetricsRegistry &registry_;
    TraceRecorder *trace_;
    double interval_;
    std::uint64_t ticks_ = 0;
    std::vector<MetricSample> samples_;
};

} // namespace mobius

#endif // MOBIUS_SIMCORE_SAMPLER_HH
