#include "obs/prof.hh"

#include <algorithm>
#include <cmath>
#include <ctime>
#include <map>
#include <memory>
#include <mutex>

#include "base/logging.hh"

namespace mobius::prof
{

namespace
{

double
realWallNow()
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return double(ts.tv_sec) + 1e-9 * double(ts.tv_nsec);
}

double
realCpuNow()
{
    timespec ts;
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return double(ts.tv_sec) + 1e-9 * double(ts.tv_nsec);
}

// Test-injectable clocks; nullptr means "real clock". Plain pointers
// behind the registry mutex for writes, read on the hot path without
// synchronisation — tests only swap them while no zone is running.
ClockFn g_wall_fn = nullptr;
ClockFn g_cpu_fn = nullptr;

double
wallClock()
{
    ClockFn fn = g_wall_fn;
    return fn ? fn() : realWallNow();
}

double
cpuClock()
{
    ClockFn fn = g_cpu_fn;
    return fn ? fn() : realCpuNow();
}

} // namespace

double
wallNow()
{
    return realWallNow();
}

double
cpuNow()
{
    return realCpuNow();
}

namespace detail
{

std::atomic<bool> g_enabled{false};

// One calling-context-tree node. Children form a singly linked list
// (firstChild/nextSibling); trees are tiny (tens of nodes), so the
// linear sibling scan on entry is cheaper than any map.
struct Node
{
    int site;
    int parent;            // index into nodes, -1 for roots
    int firstChild = -1;
    int nextSibling = -1;
    std::uint64_t count = 0;
    double wall = 0.0;
    double cpu = 0.0;
    double wallMax = 0.0;
};

struct Frame
{
    int node;
    double wall0;
    double cpu0;
};

struct ThreadState
{
    std::vector<Node> nodes;
    std::vector<Frame> stack;
    int current = -1; // innermost open node, -1 at top level
    int roots = -1;   // head of the root sibling list
};

namespace
{

// Global registry: site names interned once, thread states owned
// here (in registration order) so snapshot() can merge trees after
// their threads have exited.
struct Registry
{
    std::mutex mu;
    std::vector<std::string> sites;
    std::vector<std::unique_ptr<ThreadState>> threads;
};

Registry &
registry()
{
    static Registry *r = new Registry; // leaked: outlives TLS dtors
    return *r;
}

} // namespace

int
registerSite(const char *name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.sites.emplace_back(name);
    return int(r.sites.size()) - 1;
}

ThreadState &
threadState()
{
    thread_local ThreadState *ts = [] {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mu);
        r.threads.push_back(std::make_unique<ThreadState>());
        return r.threads.back().get();
    }();
    return *ts;
}

void
enter(ThreadState &ts, int site_id)
{
    // Find (or create) the child of the current node for this site.
    int node = -1;
    int *head = ts.current < 0 ? &ts.roots
                               : &ts.nodes[ts.current].firstChild;
    for (int i = *head; i >= 0; i = ts.nodes[i].nextSibling) {
        if (ts.nodes[i].site == site_id) {
            node = i;
            break;
        }
    }
    if (node < 0) {
        node = int(ts.nodes.size());
        Node n;
        n.site = site_id;
        n.parent = ts.current;
        n.nextSibling = *head;
        ts.nodes.push_back(n);
        // nodes.push_back may reallocate; re-derive the head slot.
        if (ts.current < 0)
            ts.roots = node;
        else
            ts.nodes[ts.current].firstChild = node;
    }
    ts.current = node;
    // Stamp clocks last so bookkeeping above is excluded from the
    // zone's own measured time.
    ts.stack.push_back({node, 0.0, 0.0});
    Frame &f = ts.stack.back();
    f.cpu0 = cpuClock();
    f.wall0 = wallClock();
}

void
leave(ThreadState &ts)
{
    // Stamp clocks first: everything below is merge bookkeeping.
    const double wall1 = wallClock();
    const double cpu1 = cpuClock();
    const Frame f = ts.stack.back();
    ts.stack.pop_back();
    Node &n = ts.nodes[f.node];
    const double dw = wall1 - f.wall0;
    n.count += 1;
    n.wall += dw;
    n.cpu += cpu1 - f.cpu0;
    n.wallMax = std::max(n.wallMax, dw);
    ts.current = n.parent;
}

} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

void
reset()
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (auto &ts : r.threads) {
        if (!ts->stack.empty())
            panic("prof::reset() with a zone still open");
        ts->nodes.clear();
        ts->current = -1;
        ts->roots = -1;
    }
}

int
threadCount()
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    int n = 0;
    for (const auto &ts : r.threads)
        if (!ts->nodes.empty())
            n++;
    return n;
}

void
setClocksForTest(ClockFn wall, ClockFn cpu)
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    g_wall_fn = wall;
    g_cpu_fn = cpu;
}

namespace
{

// Merge tree: zone trees from all threads aggregated by site name.
// std::map keys give the name-sorted sibling order that makes the
// rendered output independent of site registration or thread order.
struct MergeNode
{
    std::uint64_t count = 0;
    double wall = 0.0;
    double cpu = 0.0;
    double wallMax = 0.0;
    std::map<std::string, MergeNode> children;
};

void
mergeThreadNodes(const detail::ThreadState &ts,
                 const std::vector<std::string> &sites, int head,
                 std::map<std::string, MergeNode> &out)
{
    // The sibling list is push-front ordered; aggregation by name
    // into the map makes the traversal order irrelevant.
    for (int i = head; i >= 0; i = ts.nodes[i].nextSibling) {
        const detail::Node &n = ts.nodes[i];
        MergeNode &m = out[sites[size_t(n.site)]];
        m.count += n.count;
        m.wall += n.wall;
        m.cpu += n.cpu;
        m.wallMax = std::max(m.wallMax, n.wallMax);
        mergeThreadNodes(ts, sites, n.firstChild, m.children);
    }
}

void
flatten(const std::map<std::string, MergeNode> &level,
        const std::string &prefix, int depth,
        std::vector<ZoneStats> &out)
{
    for (const auto &[name, m] : level) {
        ZoneStats z;
        z.path = prefix.empty() ? name : prefix + ";" + name;
        z.name = name;
        z.depth = depth;
        z.count = m.count;
        z.wallTotal = m.wall;
        z.cpuTotal = m.cpu;
        z.wallMax = m.wallMax;
        double child_wall = 0.0;
        double child_cpu = 0.0;
        for (const auto &[cn, cm] : m.children) {
            (void)cn;
            child_wall += cm.wall;
            child_cpu += cm.cpu;
        }
        z.wallSelf = m.wall - child_wall;
        z.cpuSelf = m.cpu - child_cpu;
        // Keep a copy: the recursion grows `out`, which would leave
        // a reference into the vector dangling on reallocation.
        std::string child_prefix = z.path;
        out.push_back(std::move(z));
        flatten(m.children, child_prefix, depth + 1, out);
    }
}

} // namespace

Snapshot
snapshot()
{
    detail::Registry &r = detail::registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::map<std::string, MergeNode> roots;
    Snapshot snap;
    for (const auto &ts : r.threads) {
        if (ts->nodes.empty())
            continue;
        if (!ts->stack.empty())
            panic("prof::snapshot() with a zone still open");
        snap.threads++;
        mergeThreadNodes(*ts, r.sites, ts->roots, roots);
    }
    flatten(roots, "", 0, snap.zones);
    return snap;
}

double
Snapshot::wallTotalRoots() const
{
    double t = 0.0;
    for (const ZoneStats &z : zones)
        if (z.depth == 0)
            t += z.wallTotal;
    return t;
}

double
Snapshot::wallSelfSum() const
{
    double t = 0.0;
    for (const ZoneStats &z : zones)
        t += z.wallSelf;
    return t;
}

double
Snapshot::selfSumDrift() const
{
    return std::abs(wallSelfSum() - wallTotalRoots());
}

std::string
table(const Snapshot &snap)
{
    std::string out;
    if (snap.zones.empty())
        return "prof: no zones recorded (run with profiling "
               "enabled?)\n";
    out += strfmt("%-34s %10s %12s %12s %12s %12s\n", "zone",
                  "calls", "wall ms", "self ms", "cpu-self ms",
                  "max us");
    for (const ZoneStats &z : snap.zones) {
        std::string label(size_t(2 * z.depth), ' ');
        label += z.name;
        out += strfmt("%-34s %10llu %12.3f %12.3f %12.3f %12.1f\n",
                      label.c_str(),
                      (unsigned long long)z.count,
                      z.wallTotal * 1e3, z.wallSelf * 1e3,
                      z.cpuSelf * 1e3, z.wallMax * 1e6);
    }
    // No thread count here: the merged table stays byte-identical
    // across JobPump widths (prof.threads carries the count).
    out += strfmt("total (roots) %.6f ms, self-sum drift %.3g s\n",
                  snap.wallTotalRoots() * 1e3, snap.selfSumDrift());
    return out;
}

std::string
folded(const Snapshot &snap)
{
    std::string out;
    for (const ZoneStats &z : snap.zones) {
        const long long us = llround(z.wallSelf * 1e6);
        if (us <= 0)
            continue;
        out += strfmt("%s %lld\n", z.path.c_str(), us);
    }
    return out;
}

} // namespace mobius::prof
