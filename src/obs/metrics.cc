/**
 * @file
 * MetricsRegistry implementation: histogram bucketing math and the
 * JSON/CSV exporters.
 */

#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mobius
{

namespace
{

/** Format a double compactly and losslessly enough for export. */
std::string
fmtNumber(double v)
{
    if (std::isfinite(v) && v == std::floor(v) &&
        std::fabs(v) < 1e15)
    {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.0f",v);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

/** Escape a metric name for embedding in a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s)
    {
        switch (c)
        {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20)
            {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            }
            else
                out += c;
        }
    }
    return out;
}

/** Escape a CSV field (quote when it contains a delimiter). */
std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s)
    {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

constexpr double kQuantiles[] = {0.50, 0.90, 0.95, 0.99};
constexpr const char *kQuantileNames[] = {"p50", "p90", "p95",
                                          "p99"};

} // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int
Histogram::bucketIndex(double value)
{
    // frexp: value = m * 2^e with m in [0.5, 1).
    int e = 0;
    double m = std::frexp(value, &e);
    if (e < kMinExp)
        return 0;
    if (e >= kMaxExp)
        return kNumBuckets - 1;
    // Map mantissa [0.5, 1) onto [0, kSubBuckets).
    int sub = static_cast<int>((m - 0.5) * 2.0 * kSubBuckets);
    sub = std::clamp(sub, 0, kSubBuckets - 1);
    return (e - kMinExp) * kSubBuckets + sub;
}

double
Histogram::bucketMid(int index)
{
    int e = index / kSubBuckets + kMinExp;
    int sub = index % kSubBuckets;
    // Midpoint of the mantissa range covered by this sub-bucket.
    double m = 0.5 + (sub + 0.5) / (2.0 * kSubBuckets);
    return std::ldexp(m, e);
}

void
Histogram::record(double value)
{
    if (!std::isfinite(value))
        return;
    if (count_ == 0 || value < min_)
        min_ = value;
    if (count_ == 0 || value > max_)
        max_ = value;
    ++count_;
    sum_ += value;
    if (value <= 0.0)
    {
        ++zeroCount_;
        return;
    }
    ++buckets_[static_cast<std::size_t>(bucketIndex(value))];
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th sample, 1-based; the underflow bucket
    // (zero and negative samples) sorts before every positive one.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (rank < 1)
        rank = 1;
    if (rank <= zeroCount_)
        return min_;
    std::uint64_t seen = zeroCount_;
    for (int i = 0; i < kNumBuckets; ++i)
    {
        seen += buckets_[static_cast<std::size_t>(i)];
        if (seen >= rank)
            return std::clamp(bucketMid(i), min_, max_);
    }
    return max_;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    auto &slot = counters_[name];
    if (!slot)
    {
        slot = std::make_unique<Counter>();
        slot->name_ = name;
    }
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    auto &slot = gauges_[name];
    if (!slot)
    {
        slot = std::make_unique<Gauge>();
        slot->name_ = name;
    }
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    auto &slot = histograms_[name];
    if (!slot)
    {
        slot = std::make_unique<Histogram>();
        slot->name_ = name;
    }
    return *slot;
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

void
MetricsRegistry::visitCounters(
    const std::function<void(const Counter &)> &fn) const
{
    for (const auto &[name, c] : counters_)
        fn(*c);
}

void
MetricsRegistry::visitGauges(
    const std::function<void(const Gauge &)> &fn) const
{
    for (const auto &[name, g] : gauges_)
        fn(*g);
}

void
MetricsRegistry::visitHistograms(
    const std::function<void(const Histogram &)> &fn) const
{
    for (const auto &[name, h] : histograms_)
        fn(*h);
}

void
MetricsRegistry::clear()
{
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

std::size_t
MetricsRegistry::size() const
{
    return counters_.size() + gauges_.size() + histograms_.size();
}

std::string
MetricsRegistry::toJson() const
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_)
    {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(name) +
            "\": " + fmtNumber(c->value());
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_)
    {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(name) +
            "\": {\"value\": " + fmtNumber(g->value()) +
            ", \"min\": " + fmtNumber(g->min()) +
            ", \"max\": " + fmtNumber(g->max()) + "}";
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_)
    {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + jsonEscape(name) +
            "\": {\"count\": " +
            fmtNumber(static_cast<double>(h->count())) +
            ", \"min\": " + fmtNumber(h->min()) +
            ", \"max\": " + fmtNumber(h->max()) +
            ", \"sum\": " + fmtNumber(h->sum()) +
            ", \"mean\": " + fmtNumber(h->mean());
        for (std::size_t i = 0; i < std::size(kQuantiles); ++i)
            out += std::string(", \"") + kQuantileNames[i] +
                "\": " + fmtNumber(h->quantile(kQuantiles[i]));
        out += "}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

std::string
MetricsRegistry::toCsv() const
{
    std::string out =
        "type,name,value,count,min,max,mean,p50,p90,p95,p99\n";
    for (const auto &[name, c] : counters_)
        out += "counter," + csvEscape(name) + "," +
            fmtNumber(c->value()) + ",,,,,,,,\n";
    for (const auto &[name, g] : gauges_)
        out += "gauge," + csvEscape(name) + "," +
            fmtNumber(g->value()) + ",," + fmtNumber(g->min()) +
            "," + fmtNumber(g->max()) + ",,,,,\n";
    for (const auto &[name, h] : histograms_)
    {
        out += "histogram," + csvEscape(name) + ",," +
            fmtNumber(static_cast<double>(h->count())) + "," +
            fmtNumber(h->min()) + "," + fmtNumber(h->max()) + "," +
            fmtNumber(h->mean());
        for (double q : kQuantiles)
            out += "," + fmtNumber(h->quantile(q));
        out += "\n";
    }
    return out;
}

double
exactQuantile(std::vector<double> values, double q)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    if (q <= 0.0)
        return values.front();
    if (q >= 1.0)
        return values.back();
    double pos = q * static_cast<double>(values.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    double frac = pos - static_cast<double>(lo);
    if (lo + 1 >= values.size())
        return values.back();
    return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

void
exportProfSnapshot(const prof::Snapshot &snap,
                   MetricsRegistry &registry)
{
    for (const prof::ZoneStats &z : snap.zones) {
        std::string key = "prof." + z.path;
        std::replace(key.begin(), key.end(), ';', '.');
        registry.counter(key + ".calls")
            .add(static_cast<double>(z.count));
        registry.gauge(key + ".wall_seconds").set(z.wallTotal);
        registry.gauge(key + ".self_seconds").set(z.wallSelf);
        registry.gauge(key + ".cpu_seconds").set(z.cpuTotal);
    }
    registry.gauge("prof.threads")
        .set(static_cast<double>(snap.threads));
    registry.gauge("prof.wall_total_seconds")
        .set(snap.wallTotalRoots());
}

} // namespace mobius
