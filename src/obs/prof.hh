/**
 * @file
 * Host self-profiler: scoped wall/CPU-time zones over the
 * *simulator's own* hot paths.
 *
 * Everything else in src/obs observes the simulated workload; this
 * profiler observes the process running the simulation, answering
 * "where does the host CPU time of a run actually go" — the Fig. 12
 * question (Mobius's own machinery overhead) asked of this
 * reproduction itself. It is the data source behind
 * `mobius_sim --prof`, the shared bench `--prof` flag, and the
 * `prof_*` scalars that tools/perf_gate trends across runs.
 *
 * Model: a **zone** is a lexical scope opened with
 * MOBIUS_PROF_ZONE("name"). Zones nest, forming a per-thread calling
 * -context tree; each tree node accumulates call count, total wall
 * seconds, total thread-CPU seconds, and the maximum wall seconds of
 * any single call. *Self* time (total minus the totals of nested
 * child zones) is derived at snapshot time, so for every snapshot
 * the self times of all zones sum exactly (same-order floating-point
 * arithmetic, drift ~1e-15 relative) to the total of the root zones
 * — the invariant bench_simcore's prof smoke gates at 1e-9.
 *
 * Threading: each thread owns a private tree (no locks or atomics on
 * the zone path beyond one relaxed flag load). Thread trees are kept
 * alive after the thread exits and merged by snapshot() in thread
 * *registration order*, aggregating by zone path with name-sorted
 * siblings — so the merged output is deterministic for a
 * deterministic workload, and byte-identical across JobPump widths
 * when durations are (tests install a deterministic clock via
 * setClocksForTest()).
 *
 * Cost: when disabled (the default), a zone entry is one relaxed
 * atomic load and no allocation — cheap enough to leave compiled
 * into the EventQueue drain, the fair-share solver, the span arena,
 * and the LP/MIP solvers permanently. When enabled, a zone pair
 * costs two wall + two thread-CPU clock reads (~0.5us on commodity
 * hosts); instrumentation sites are chosen so a fully profiled
 * simulation stays within the <= 5% CPU overhead budget gated by
 * bench_simcore (per-pivot and per-event granularity is deliberately
 * avoided; those counts are already in solver.lp.* / queue metrics).
 *
 * Renderers: table() (self-time table), folded() (flamegraph.pl
 * folded-stack lines), and exportProfSnapshot() in obs/metrics.hh
 * (folds a snapshot into a MetricsRegistry as prof.* gauges and
 * counters, so --metrics JSON carries the host profile).
 *
 * Library note: this header and prof.cc build as `mobius_prof`,
 * which depends only on mobius_base — so mobius_simcore and
 * mobius_solver (which mobius_obs itself depends on) can be
 * instrumented without a dependency cycle.
 */

#ifndef MOBIUS_OBS_PROF_HH
#define MOBIUS_OBS_PROF_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mobius::prof
{

/** @return monotonic wall-clock seconds (CLOCK_MONOTONIC). */
double wallNow();

/** @return this thread's CPU seconds (CLOCK_THREAD_CPUTIME_ID). */
double cpuNow();

/** Enable or disable zone collection process-wide. */
void setEnabled(bool on);

/** @return true when zones are being collected. */
bool enabled();

/**
 * Zero every thread's accumulated zone data (registered threads and
 * sites are kept). No zone may be open on any thread.
 */
void reset();

/** @return number of threads that ever recorded an enabled zone. */
int threadCount();

/** One zone path's merged statistics. */
struct ZoneStats
{
    std::string path;  //!< "root;child;leaf" (unique per row)
    std::string name;  //!< leaf zone name
    int depth = 0;     //!< 0 for root zones
    std::uint64_t count = 0; //!< completed calls
    double wallTotal = 0.0;  //!< inclusive wall seconds
    double wallSelf = 0.0;   //!< wallTotal minus children's totals
    double cpuTotal = 0.0;   //!< inclusive thread-CPU seconds
    double cpuSelf = 0.0;    //!< cpuTotal minus children's totals
    double wallMax = 0.0;    //!< slowest single call, wall seconds
};

/** A merged, deterministic view of every thread's zone tree. */
struct Snapshot
{
    /** Depth-first, siblings in name order. */
    std::vector<ZoneStats> zones;
    /** Threads merged (registration order). */
    int threads = 0;

    /** @return sum of root zones' inclusive wall seconds. */
    double wallTotalRoots() const;

    /** @return sum of every zone's self wall seconds. */
    double wallSelfSum() const;

    /**
     * @return |wallSelfSum() - wallTotalRoots()| — pure floating
     *         point noise by construction; gated at 1e-9.
     */
    double selfSumDrift() const;
};

/**
 * Merge every registered thread's tree (registration order,
 * aggregated by zone path, siblings name-sorted). Call only while
 * no zone is open on any other thread — e.g. after a run completes
 * and worker pools have drained.
 */
Snapshot snapshot();

/**
 * Render the self-time table: one row per zone path (tree-indented),
 * columns calls / total / self / cpu / cpu-self / max, sorted
 * depth-first with name-sorted siblings, footer with the root total
 * and the self-sum drift. Deterministic for deterministic inputs.
 */
std::string table(const Snapshot &snap);

/**
 * Render flamegraph-compatible folded stacks: one line per zone
 * path, "root;child;leaf <self-microseconds>\n", rows whose
 * rounded self time is zero skipped. Feed to flamegraph.pl.
 */
std::string folded(const Snapshot &snap);

/** Clock override used by determinism tests. */
using ClockFn = double (*)();

/**
 * Replace the wall and CPU clocks (nullptr restores the real
 * clocks). Tests install deterministic thread-local counters so
 * zone durations — and therefore the whole merged table — are
 * byte-identical at any thread width.
 */
void setClocksForTest(ClockFn wall, ClockFn cpu);

namespace detail
{

/** The hot-path flag: one relaxed load per zone entry. */
extern std::atomic<bool> g_enabled;

struct ThreadState;

/** @return this thread's state, registering it on first use. */
ThreadState &threadState();

/** Open a zone for @p site_id on @p ts (clocks stamped last). */
void enter(ThreadState &ts, int site_id);

/** Close the innermost zone on @p ts (clocks stamped first). */
void leave(ThreadState &ts);

/** Intern @p name into the global site table. */
int registerSite(const char *name);

} // namespace detail

/**
 * A static per-call-site zone identity. Function-local
 * `static Site` registration is thread-safe (magic statics) and
 * happens once, even while profiling is disabled.
 */
class Site
{
  public:
    /** Register the site named @p name. */
    explicit Site(const char *name)
        : id(detail::registerSite(name))
    {}

    /** Global site index. */
    const int id;
};

/**
 * RAII zone: opens on construction when profiling is enabled,
 * closes on destruction. Disabled cost: one relaxed atomic load.
 */
class Zone
{
  public:
    /** Open a zone for @p site if profiling is enabled. */
    explicit Zone(const Site &site)
    {
        if (!detail::g_enabled.load(std::memory_order_relaxed))
            return;
        ts_ = &detail::threadState();
        detail::enter(*ts_, site.id);
    }

    /** Close the zone (no-op when it never opened). */
    ~Zone()
    {
        if (ts_)
            detail::leave(*ts_);
    }

    Zone(const Zone &) = delete;
    Zone &operator=(const Zone &) = delete;

  private:
    detail::ThreadState *ts_ = nullptr;
};

} // namespace mobius::prof

#define MOBIUS_PROF_CONCAT2(a, b) a##b
#define MOBIUS_PROF_CONCAT(a, b) MOBIUS_PROF_CONCAT2(a, b)

/**
 * Open a profiler zone named @p name for the rest of the enclosing
 * scope. @p name must be a string literal (or have static storage).
 */
#define MOBIUS_PROF_ZONE(name)                                        \
    static ::mobius::prof::Site MOBIUS_PROF_CONCAT(                   \
        mobius_prof_site_, __LINE__){name};                           \
    ::mobius::prof::Zone MOBIUS_PROF_CONCAT(mobius_prof_zone_,        \
                                            __LINE__){                \
        MOBIUS_PROF_CONCAT(mobius_prof_site_, __LINE__)}

#endif // MOBIUS_OBS_PROF_HH
