/**
 * @file
 * What-if sensitivity profiling: counterfactual ("virtual speedup")
 * evaluation over the completed-span DAG.
 *
 * Critical-path attribution (obs/critical_path.hh) answers *where* a
 * step's time went; this layer answers *what would change it*. A
 * WhatIfSpec names a resource class — a PCIe link, a root complex's
 * uplink, one GPU's compute, the CPU optimizer, or a whole trace
 * category — and a virtual speedup factor. evaluateWhatIf() rescales
 * the matching spans' intrinsic work and contention stretch, then
 * re-schedules the DAG (dependencies + one-at-a-time engine
 * occupancy, original per-engine order) and reports the predicted
 * step time with error bars.
 *
 * Scheduling-model assumptions (stated in DESIGN.md §6):
 *
 *  - spans on one track serialise in their original order; cross-
 *    engine fair-share coupling is carried by each span's recorded
 *    contention stretch, not re-derived;
 *  - a bandwidth speedup f on a *shared* pool (link / root complex)
 *    scales a matching span's stretch by 1/f but cannot push its
 *    intrinsic work below the private-bottleneck floor (PCIe links
 *    are capacity-uniform, so the floor is the recorded work); a
 *    slowdown (f < 1) makes the pool the route bottleneck and scales
 *    work by 1/f as well; additionally, the sum of matched work
 *    through each direction of a perturbed pool, divided by its
 *    factor, is a hard lower bound on any counterfactual makespan
 *    (pool saturation) — the re-schedule cannot invent contention a
 *    slower pool creates between spans that did not overlap in the
 *    baseline, so predictions are floored there;
 *  - predictions are calibrated multiplicatively so the factor-1.0
 *    re-schedule reproduces the measured step time exactly; the
 *    error bar spans the "stretch scales with bandwidth" and
 *    "stretch is invariant" variants, and the point estimate is
 *    their midpoint (the truth lies between the two contention
 *    hypotheses — overlap windows shift when rates change).
 *
 * Every prediction can be validated against ground truth: the
 * simulator is cheap, so perturbServer() / RunPerturbation feed the
 * same factors into a real re-simulation (mobius_sim --whatif-exact,
 * bench_whatif) and the reported drift audits the model.
 */

#ifndef MOBIUS_OBS_WHATIF_HH
#define MOBIUS_OBS_WHATIF_HH

#include <string>
#include <vector>

#include "hw/resource.hh"
#include "hw/server.hh"
#include "simcore/trace.hh"

namespace mobius
{

/**
 * Resource classes a virtual speedup can target. The taxonomy (and
 * the parser) is shared with the fault plan's degradation targets —
 * see hw/resource.hh.
 */
using WhatIfKind = ResourceKind;

/** One parsed virtual speedup: RESOURCE=FACTOR. */
struct WhatIfSpec
{
    WhatIfKind kind = WhatIfKind::Category;
    /** GPU index, root-complex ordinal, or link id (kind-typed). */
    int index = -1;
    /** The resource text as given, e.g. "rc0" or "link:dram<->rc1". */
    std::string resource;
    /** Rate multiplier: 2 = twice as fast, 0.5 = half speed (> 0). */
    double factor = 1.0;
};

/**
 * Parse "rcN=F", "gpuN=F", "cpu=F", "compute|transfer|optimizer=F",
 * or "link:NAME=F" against @p server (so unknown GPUs, root
 * complexes, and links are rejected). fatal() with a usage message
 * on malformed input, unknown resources, or factor <= 0.
 */
WhatIfSpec parseWhatIfSpec(const std::string &text,
                           const Server &server);

/** A sensitivity sweep request: RESOURCE=LO:HI:STEPS. */
struct WhatIfSweepSpec
{
    std::string resource; //!< resource text (parsed per point)
    double lo = 0.0;      //!< first factor
    double hi = 0.0;      //!< last factor
    int steps = 0;        //!< number of points (>= 2), inclusive

    /** @return the linearly spaced factor grid [lo, hi]. */
    std::vector<double> factors() const;
};

/** Parse "RESOURCE=LO:HI:STEPS"; fatal() on malformed input. */
WhatIfSweepSpec parseWhatIfSweepSpec(const std::string &text);

/**
 * Per-run engine-rate perturbation for ground-truth re-simulation:
 * the factors that cannot be expressed as topology link capacities.
 * RunContext applies them when constructing its engines.
 */
struct RunPerturbation
{
    /** Per-GPU compute speed factor; empty = all 1.0. */
    std::vector<double> gpuComputeFactor;
    /** CPU optimizer throughput multiplier. */
    double cpuOptimizerFactor = 1.0;

    /** @return the compute factor for GPU @p gpu (default 1.0). */
    double
    computeFactor(int gpu) const
    {
        if (gpu < 0 ||
            gpu >= static_cast<int>(gpuComputeFactor.size()))
            return 1.0;
        return gpuComputeFactor[static_cast<std::size_t>(gpu)];
    }

    /** @return true when every factor is exactly 1.0. */
    bool identity() const;
};

/**
 * Build a copy of @p server with every link capacity a spec names
 * rescaled (RootComplex scales the DRAM uplink; Category "transfer"
 * scales every link). Compute/optimizer specs do not affect it.
 */
Server perturbServer(const Server &server,
                     const std::vector<WhatIfSpec> &specs);

/** Extract the engine-rate side of @p specs for @p num_gpus GPUs. */
RunPerturbation runPerturbation(const std::vector<WhatIfSpec> &specs,
                                int num_gpus);

/** One counterfactual evaluation. */
struct WhatIfResult
{
    std::vector<WhatIfSpec> specs; //!< the applied speedups
    double baseStepTime = 0.0;  //!< measured trace makespan
    double modelBase = 0.0;     //!< factor-free re-schedule makespan
    double predicted = 0.0;     //!< calibrated prediction (seconds)
    double predictedLow = 0.0;  //!< optimistic error-bar edge
    double predictedHigh = 0.0; //!< pessimistic error-bar edge
    /** Ground-truth re-simulated step time; < 0 = not validated. */
    double exact = -1.0;
    std::size_t matchedSpans = 0; //!< spans any spec rescaled

    /** @return baseStepTime / predicted (0 when degenerate). */
    double
    speedup() const
    {
        return predicted > 0.0 ? baseStepTime / predicted : 0.0;
    }

    /** @return |predicted - exact| / exact, or -1 without exact. */
    double
    drift() const
    {
        if (exact <= 0.0)
            return -1.0;
        double d = predicted - exact;
        return (d < 0 ? -d : d) / exact;
    }
};

/**
 * Apply @p specs virtually and re-schedule @p dag. @p server
 * resolves which GPUs sit behind each named link or root complex.
 * Robust to empty DAGs (all-zero result).
 */
WhatIfResult evaluateWhatIf(const SpanDag &dag, const Server &server,
                            const std::vector<WhatIfSpec> &specs);

/** Convenience overload: extracts the DAG from @p trace first. */
WhatIfResult evaluateWhatIf(const TraceRecorder &trace,
                            const Server &server,
                            const std::vector<WhatIfSpec> &specs);

/** A full sensitivity curve over one resource. */
struct WhatIfSweep
{
    WhatIfSweepSpec spec;
    std::vector<WhatIfResult> points; //!< one per factor, lo -> hi

    /**
     * Normalised sensitivity: (max - min predicted step time over
     * the sweep) / step time at factor closest to 1. Steeper curves
     * mean the schedule is more bandwidth- (or compute-) bound.
     * Uses exact times when every point carries them.
     */
    double sensitivity() const;
};

/** Evaluate @p spec's whole factor grid against @p dag. */
WhatIfSweep sweepWhatIf(const SpanDag &dag, const Server &server,
                        const WhatIfSweepSpec &spec);

/** Serialise one result as a JSON object (stable field names; see
 *  EXPERIMENTS.md "What-if analysis"). */
std::string whatIfResultJson(const WhatIfResult &r);

/** Serialise a sweep (spec + points array + sensitivity). */
std::string whatIfSweepJson(const WhatIfSweep &s);

/** Render a sweep as an ASCII sensitivity curve, @p width columns. */
std::string whatIfSweepAscii(const WhatIfSweep &s, int width = 56);

/** Render results as the human-readable `--whatif` report table. */
std::string whatIfReport(const std::vector<WhatIfResult> &results);

} // namespace mobius

#endif // MOBIUS_OBS_WHATIF_HH
