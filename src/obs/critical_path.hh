/**
 * @file
 * Critical-path extraction and per-category time attribution over a
 * completed-span DAG (see simcore/trace.hh for the edge model).
 *
 * The paper's performance claims are causal: Mobius wins because
 * prefetch overlaps transfer with compute (§3.1, Fig. 8) and because
 * cross mapping reduces root-complex contention (§3.3, Eq. 12-13,
 * Fig. 10-11). attributeStep() turns one simulated step's trace into
 * an audited blame table that measures those claims directly:
 *
 *  - walk backward from the span that ends the step, at each span
 *    jumping to its latest-ending dependency — the *critical path*;
 *  - partition [0, stepTime] into disjoint intervals attributed to
 *    compute / transfer / optimizer work on the path, queue
 *    (contention: time a ready piece of work waited for its engine or
 *    was stretched below its bottleneck bandwidth by fair sharing),
 *    and bubble (idle gaps with no recorded cause).
 *
 * The categories sum to the step time *exactly* (each attributed
 * interval is disjoint and they cover [0, stepTime]), which is the
 * invariant bench_attribution enforces. Aggregate (off-path) queue
 * waits are also summed, since a schedule can hide contention off the
 * critical path.
 */

#ifndef MOBIUS_OBS_CRITICAL_PATH_HH
#define MOBIUS_OBS_CRITICAL_PATH_HH

#include <map>
#include <string>
#include <vector>

#include "simcore/trace.hh"

namespace mobius
{

/** Seconds attributed to each cause; total() covers [0, stepTime]. */
struct AttributionBreakdown
{
    double compute = 0.0;   //!< kernel work on the path
    double transfer = 0.0;  //!< uncontended data movement on the path
    double queue = 0.0;     //!< contention: queue wait + stretch
    double optimizer = 0.0; //!< CPU optimizer work on the path
    double fault = 0.0;     //!< fault/retry/recovery work on the path
    double bubble = 0.0;    //!< idle gaps with no recorded cause
    double other = 0.0;     //!< spans of any unrecognised category

    /** @return the sum of every category. */
    double
    total() const
    {
        return compute + transfer + queue + optimizer + fault +
            bubble + other;
    }
};

/** One span on the extracted critical path. */
struct CriticalPathEntry
{
    SpanId id = kNoSpan;
    std::string track;    //!< e.g. "gpu2.h2d"
    std::string name;     //!< e.g. "F3,1" or "S5.fwd"
    std::string category; //!< "compute" | "transfer" | ...
    int gpu = -1;
    int stage = -1;
    double start = 0.0;
    double end = 0.0;
    double queueWait = 0.0; //!< seconds [ready, start) — contention
    double stretch = 0.0;   //!< in-span fair-share stretch seconds

    /** @return seconds this entry puts on the critical path. */
    double
    pathSeconds() const
    {
        return (end - start) + queueWait;
    }
};

/** Per-GPU occupancy split of [0, stepTime]. */
struct GpuAttribution
{
    int gpu = -1;
    double compute = 0.0;  //!< kernel seconds (spans never overlap)
    double exposed = 0.0;  //!< transfer seconds not hidden by compute
    double bubble = 0.0;   //!< stepTime - compute - exposed

    /** @return bubble / stepTime (0 when the step is empty). */
    double bubbleFraction = 0.0;
};

/** Everything attributeStep() derives from one step's trace. */
struct StepAttribution
{
    double stepTime = 0.0; //!< max span end (simulated seconds)

    /** Blame table along the critical path; sums to stepTime. */
    AttributionBreakdown critical;

    /** The critical path, ordered step-end -> step-start. */
    std::vector<CriticalPathEntry> path;

    /** Critical-path seconds grouped by span stage (-1 = none). */
    std::map<int, AttributionBreakdown> stages;

    /** Per-GPU occupancy; index is dense over seen GPU ids. */
    std::vector<GpuAttribution> gpus;

    /** Sum of queue wait + stretch over *all* spans, on- or
     *  off-path — total contention in the schedule. */
    double totalQueueWait = 0.0;

    /** Spans considered (recorded spans with a positive interval). */
    std::size_t spanCount = 0;
};

/**
 * Walk @p trace's completed-span DAG and attribute the step's time.
 * Robust to empty traces (returns all-zero attribution).
 */
StepAttribution attributeStep(const TraceRecorder &trace);

/** Serialise @p a as a JSON object (stable field names, see
 *  EXPERIMENTS.md "BENCH_attribution.json"). @p top_k caps the
 *  emitted path entries (<= 0 = all). */
std::string attributionToJson(const StepAttribution &a,
                              int top_k = 0);

/**
 * Render the human-readable `--explain` report: the blame table, the
 * top-@p top_k critical-path spans by pathSeconds(), and the per-GPU
 * bubble fractions.
 */
std::string attributionTable(const StepAttribution &a,
                             int top_k = 10);

} // namespace mobius

#endif // MOBIUS_OBS_CRITICAL_PATH_HH
