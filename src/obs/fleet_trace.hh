/**
 * @file
 * Fleet-wide observability: timeline tracing, the scheduler
 * decision log, and per-job attribution roll-ups.
 *
 * PR 7's fleet simulator reduced each job to timing scalars plus a
 * trace digest, and scheduler activity to three counters — enough
 * to gate determinism, but a black box when a 10k-job fleet needs
 * to answer *why* job 42 waited 400 seconds or lost its server.
 * This module promotes the fleet to a fully explainable timeline:
 *
 *  - **FleetTrace** records typed per-job events (submit, admit,
 *    backfill, preempt, dock, resume, finish, server-free) stamped
 *    by the fleet event loop, plus server-occupancy stints and
 *    counter samples (pending-queue depth, running jobs, free
 *    servers per class). It exports a Chrome trace — one track per
 *    server, occupancy spans named after their job, flow arrows
 *    from each preempted stint to its resume, and "ph":"C" counter
 *    tracks — by reusing the PR 1/3 TraceRecorder plumbing.
 *
 *  - **FleetDecision** is one structured scheduler decision (admit
 *    / backfill / preempt) with the inputs the scheduler saw and a
 *    one-line human explanation. The decision log serialises as
 *    JSONL, one object per line, emitted strictly in event order
 *    on the fleet event loop — never from pump workers — so the
 *    bytes are identical at any `--threads` width and with the
 *    plan cache on or off.
 *
 *  - **FleetAttribution** aggregates per-job time breakdowns
 *    (queue-wait / compute / transfer / contention / optimizer /
 *    fault / bubble / preemption-lost seconds, from
 *    obs/critical_path run on each job's retained step spans) into
 *    a fleet-wide "where did fleet time go" table, grouped by
 *    server class and by priority, with a Top-K worst-JCT
 *    drill-down that names each straggler's dominant category.
 *    Every job's categories sum to its JCT to ~1e-13; the fleet
 *    bench gates the invariant at 1e-9.
 *
 * Retention is bounded: each job keeps at most
 * FleetTraceConfig::maxEventsPerJob events in a ring (oldest
 * dropped first); drops are counted, never silent. Occupancy
 * stints and decisions are O(admissions), which the scheduler
 * already bounds.
 */

#ifndef MOBIUS_OBS_FLEET_TRACE_HH
#define MOBIUS_OBS_FLEET_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mobius
{

/** Fleet tracing knobs (FleetOptions::trace). */
struct FleetTraceConfig
{
    /** Master switch; off = zero recording work in the fleet. */
    bool enabled = false;
    /** Ring budget: events retained per job (oldest dropped first,
     *  drops counted); <= 0 = unbounded. */
    int maxEventsPerJob = 64;
};

/** What happened to a job at one instant of fleet time. */
enum class FleetEventType : std::uint8_t
{
    Submit,     //!< job entered the pending queue
    Admit,      //!< first placement, in FIFO order
    Backfill,   //!< first placement that jumped a blocked head
    Preempt,    //!< evicted by a higher-priority arrival
    Dock,       //!< progress docked to whole steps after eviction
    Resume,     //!< re-placement after a preemption
    Finish,     //!< ran its last step
    ServerFree, //!< its server returned to the free pool
};

/** @return the lowercase wire name of @p type (e.g. "backfill"). */
const char *fleetEventName(FleetEventType type);

/** One typed, timestamped fleet event. */
struct FleetEvent
{
    FleetEventType type = FleetEventType::Submit;
    double time = 0.0; //!< fleet seconds
    int job = -1;      //!< subject job
    int server = -1;   //!< server involved, -1 = none (Submit)
    /** Companion id: preemptor (Preempt), blocked head jumped
     *  (Backfill), whole steps kept (Dock); -1/0 otherwise. */
    int other = -1;
    /** Extra scalar: seconds of lost progress (Dock), the job's
     *  priority (Admit/Backfill/Resume), the victim's priority
     *  (Preempt); 0 otherwise. */
    double value = 0.0;
};

/** One scheduler decision with its inputs and explanation. */
struct FleetDecision
{
    /** The decision taxonomy mirrors SchedDecision::Kind. */
    enum class Kind : std::uint8_t
    {
        Admit,    //!< head-of-line FIFO admission
        Backfill, //!< admission that jumped a blocked head
        Preempt,  //!< priority eviction to make room
    };

    Kind kind = Kind::Admit;
    double time = 0.0;  //!< fleet seconds
    int job = -1;       //!< admitted job, or the preemptor
    int server = -1;    //!< server granted / being vacated
    int priority = 0;   //!< the acting job's priority
    std::string klass;  //!< server class requested
    int freeInClass = 0;   //!< free machines in klass before the act
    int blockedHead = -1;  //!< earliest blocked job jumped, or -1
    std::string blockedHeadKlass; //!< its class ("" when none)
    int victim = -1;          //!< evicted job (Preempt), or -1
    int victimPriority = 0;   //!< its priority
    double victimStart = 0.0; //!< when the victim's stint began
    std::uint64_t pending = 0; //!< jobs still waiting behind this one
    std::string why; //!< one-line human explanation
};

/** @return the lowercase wire name of @p kind (e.g. "preempt"). */
const char *fleetDecisionName(FleetDecision::Kind kind);

/** Render @p d as one JSONL decision record (no trailing \n). */
std::string fleetDecisionJson(const FleetDecision &d);

/**
 * Seconds of one grouping cell (a job, a server class, a priority
 * band, or the whole fleet) attributed to each cause. For a single
 * job the categories sum to its JCT (see FleetAttribution).
 */
struct FleetTimeBreakdown
{
    double queueWait = 0.0; //!< waiting for a server (incl. requeues)
    double compute = 0.0;   //!< kernel work on the step critical path
    double transfer = 0.0;  //!< uncontended data movement on the path
    double contention = 0.0; //!< in-step queue wait + fair-share stretch
    double optimizer = 0.0;  //!< CPU optimizer work on the path
    double fault = 0.0;      //!< fault/retry/recovery work on the path
    double bubble = 0.0;     //!< in-step idle gaps with no cause
    double other = 0.0;      //!< unrecognised step span categories
    double preemptionLost = 0.0; //!< partial-step progress docked away
    std::uint64_t jobs = 0;      //!< jobs aggregated into this cell

    /** @return the sum of every category. */
    double total() const;

    /** Accumulate @p o into this cell (categories and job count). */
    void add(const FleetTimeBreakdown &o);

    /** @return the name of the largest category (e.g. "compute"),
     *  "none" when every category is zero. */
    const char *dominant() const;
};

/** One job's attributed time, ready for roll-up and JSONL export. */
struct FleetJobAttribution
{
    int job = -1;      //!< fleet job id
    std::string name;  //!< printable name ("job42")
    std::string klass; //!< server class it ran on
    int priority = 0;  //!< scheduler priority
    double jct = 0.0;  //!< residence seconds (finish - arrival)
    int preemptions = 0;    //!< times evicted
    FleetTimeBreakdown t;   //!< breakdown; t.total() == jct (~1e-13)
};

/** Render @p ja as one JSONL job record (no trailing \n). */
std::string fleetJobJson(const FleetJobAttribution &ja);

/** Fleet-wide attribution roll-up: where did fleet time go. */
struct FleetAttribution
{
    FleetTimeBreakdown total; //!< every job, summed
    std::map<std::string, FleetTimeBreakdown> byClass; //!< per class
    std::map<int, FleetTimeBreakdown> byPriority; //!< per priority
    std::vector<FleetJobAttribution> jobs; //!< job-id order

    /** Fold one job into the roll-up (appends to jobs). */
    void add(FleetJobAttribution ja);

    /** @return indices into jobs of the @p k worst JCTs, worst
     *  first (ties broken by smaller job id). */
    std::vector<std::size_t> worstJobs(int k) const;
};

/**
 * Render the "where did fleet time go" table: one row per server
 * class, per priority band, and a TOTAL row, plus a worst-@p top_k
 * JCT drill-down naming each straggler's dominant category.
 */
std::string fleetAttributionTable(const FleetAttribution &a,
                                  int top_k = 5);

/** Serialise the roll-up as a JSON object (stable field names; see
 *  EXPERIMENTS.md "fleet_report"). @p top_k caps the worst-JCT
 *  array (<= 0 = none). */
std::string fleetAttributionJson(const FleetAttribution &a,
                                 int top_k = 5);

/**
 * The fleet timeline recorder (see file header). Driven only from
 * the fleet event loop; events must arrive in nondecreasing time
 * order per server so occupancy stints nest correctly.
 */
class FleetTrace
{
  public:
    /**
     * @param cfg           retention knobs (cfg.enabled is the
     *                      caller's concern; the recorder records
     *                      whatever it is handed)
     * @param jobs          dense job-id space [0, jobs)
     * @param serverTracks  Chrome track name per global server
     *                      index (e.g. "server3.commodity")
     * @param classNames    server class names, dense class index
     *                      order (counter-track naming)
     */
    FleetTrace(const FleetTraceConfig &cfg, std::size_t jobs,
               std::vector<std::string> serverTracks,
               std::vector<std::string> classNames);

    /**
     * Record one typed event into @p ev.job's ring (oldest entry
     * dropped and counted once the ring is full). Admit / Backfill
     * / Resume open an occupancy stint on ev.server; Preempt and
     * Finish close it (a Resume stint links back to the preempted
     * stint, which Chrome export renders as a flow arrow).
     */
    void recordEvent(const FleetEvent &ev);

    /** Append one decision to the log (event order = call order). */
    void recordDecision(FleetDecision d);

    /**
     * Sample the scheduler gauges after an event-loop action.
     * Consecutive identical samples collapse into one.
     * @param time         fleet seconds
     * @param pending      jobs queued but not placed
     * @param running      jobs occupying a server
     * @param freePerClass free machines per dense class index
     */
    void sampleCounters(double time, std::size_t pending,
                        std::size_t running,
                        const std::vector<int> &freePerClass);

    /** Events retained for @p job, oldest first. */
    std::vector<FleetEvent> events(int job) const;

    /** Total events recorded (including later-dropped ones). */
    std::uint64_t eventCount() const { return eventCount_; }

    /** Events dropped by ring budgets, across all jobs. */
    std::uint64_t truncated() const { return truncated_; }

    /** Events dropped from @p job's ring. */
    std::uint64_t truncated(int job) const;

    /** The decision log, in event order. */
    const std::vector<FleetDecision> &
    decisions() const
    {
        return decisions_;
    }

    /** Completed server-occupancy stints recorded so far. */
    std::size_t stintCount() const { return stints_.size(); }

    /** The decision log as JSONL (one object per line). */
    std::string decisionLogJsonl() const;

    /**
     * Export the fleet timeline as Chrome tracing JSON: one track
     * per server with job-occupancy spans (category "occupancy",
     * stage = job id), a flow arrow from each preempted stint to
     * its resume, and "ph":"C" counter tracks for pending depth,
     * running jobs, and per-class free servers.
     * @param metadata_json optional top-level "metadata" object.
     */
    std::string
    toChromeJson(const std::string &metadata_json = "") const;

  private:
    /** One contiguous occupancy of a server by a job. */
    struct Stint
    {
        int job = -1;
        int server = -1;
        double start = 0.0;
        double end = -1.0;      //!< -1 while open
        int resumedFrom = -1;   //!< index of the preempted stint
        bool preempted = false; //!< closed by eviction, not finish
    };

    /** Ring of one job's retained events. */
    struct JobRing
    {
        std::vector<FleetEvent> events; //!< ring storage
        std::size_t next = 0;           //!< write index once full
        std::uint64_t dropped = 0;      //!< evicted entries
    };

    /** One counter sample (a row of every gauge at one instant). */
    struct CounterSample
    {
        double time = 0.0;
        std::uint64_t pending = 0;
        std::uint64_t running = 0;
        std::vector<int> freePerClass;
    };

    void openStint(const FleetEvent &ev, bool resumed);
    void closeStint(const FleetEvent &ev, bool preempted);

    FleetTraceConfig cfg_;
    std::vector<std::string> serverTracks_;
    std::vector<std::string> classNames_;
    std::vector<JobRing> rings_;   //!< per-job retained events
    std::vector<FleetDecision> decisions_;
    std::vector<Stint> stints_;    //!< completed + open stints
    std::vector<int> openStint_;   //!< job -> open stint index or -1
    std::vector<int> lastStint_;   //!< job -> latest stint index
    std::vector<CounterSample> samples_;
    std::uint64_t eventCount_ = 0;
    std::uint64_t truncated_ = 0;
};

} // namespace mobius

#endif // MOBIUS_OBS_FLEET_TRACE_HH
