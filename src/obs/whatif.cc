#include "obs/whatif.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <utility>

#include "base/logging.hh"
#include "base/units.hh"

namespace mobius
{

namespace
{

/** Parse a strictly positive finite double; fatal() otherwise. */
double
parseFactor(const std::string &text, const std::string &where)
{
    char *end = nullptr;
    double f = std::strtod(text.c_str(), &end);
    if (end == nullptr || end == text.c_str() || *end != '\0' ||
        !std::isfinite(f) || f <= 0.0) {
        fatal("what-if factor in '%s' must be a positive number, "
              "got '%s'",
              where.c_str(), text.c_str());
    }
    return f;
}

/** Dense GPU indices whose DRAM route crosses @p link_id. */
std::vector<int>
gpusThroughLink(const Topology &topo, int link_id)
{
    std::vector<int> out;
    for (int g = 0; g < topo.numGpus(); ++g) {
        auto hops = topo.route(Endpoint::dram(), Endpoint::gpuAt(g));
        for (const Hop &h : hops) {
            if (h.link == link_id) {
                out.push_back(g);
                break;
            }
        }
    }
    return out;
}

/** One spec compiled against a server for span matching. */
struct Matcher
{
    WhatIfSpec spec;
    /** GPUs behind the perturbed link (Link/RootComplex kinds). */
    std::vector<int> gpus;
    /** NVLink tracks matched when the named link is a peer link. */
    std::vector<std::string> peerTracks;

    bool
    matches(const TraceSpan &s) const
    {
        switch (spec.kind) {
          case WhatIfKind::GpuCompute:
            return s.category == "compute" && s.gpu == spec.index;
          case WhatIfKind::CpuOptimizer:
            return s.category == "optimizer";
          case WhatIfKind::Category:
            return s.category == spec.resource;
          case WhatIfKind::RootComplex:
          case WhatIfKind::Link:
            if (s.category != "transfer")
                return false;
            if (!peerTracks.empty()) {
                for (const auto &t : peerTracks) {
                    if (s.track == t)
                        return true;
                }
                return false;
            }
            // Tree links never carry NVLink traffic.
            if (s.track.size() >= 7 &&
                s.track.compare(s.track.size() - 7, 7, ".nvlink") ==
                    0) {
                return false;
            }
            return std::find(gpus.begin(), gpus.end(), s.gpu) !=
                gpus.end();
        }
        return false;
    }
};

Matcher
compileSpec(const WhatIfSpec &spec, const Server &server)
{
    Matcher m;
    m.spec = spec;
    const Topology &topo = server.topo;
    if (spec.kind == WhatIfKind::RootComplex) {
        int rc = topo.rootComplexes()[static_cast<std::size_t>(
            spec.index)];
        m.gpus = gpusThroughLink(topo, topo.node(rc).upLink);
    } else if (spec.kind == WhatIfKind::Link) {
        const Link &l = topo.link(spec.index);
        if (l.peer) {
            int a = topo.node(l.nodeA).gpuIndex;
            int b = topo.node(l.nodeB).gpuIndex;
            m.peerTracks = {"gpu" + std::to_string(a) + ".nvlink",
                            "gpu" + std::to_string(b) + ".nvlink"};
        } else {
            m.gpus = gpusThroughLink(topo, spec.index);
        }
    }
    return m;
}

/**
 * List-schedule @p dag with per-span durations @p dur: a span starts
 * at max(latest dependency finish, its engine's free time), engines
 * run one span at a time in original start order.
 * @return the makespan.
 */
double
reschedule(const SpanDag &dag, const std::vector<double> &dur)
{
    std::vector<double> engineFree(dag.engineNames.size(), 0.0);
    std::vector<double> end(dag.spans.size(), 0.0);
    double makespan = 0.0;
    for (std::size_t i = 0; i < dag.spans.size(); ++i) {
        double ready = 0.0;
        for (std::size_t p : dag.preds[i])
            ready = std::max(ready, end[p]);
        double start = std::max(ready, engineFree[dag.engine[i]]);
        end[i] = start + dur[i];
        engineFree[dag.engine[i]] = end[i];
        makespan = std::max(makespan, end[i]);
    }
    return makespan;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

std::string
specsLabel(const std::vector<WhatIfSpec> &specs)
{
    std::string out;
    for (const WhatIfSpec &s : specs) {
        if (!out.empty())
            out += ",";
        out += strfmt("%s=%.4g", s.resource.c_str(), s.factor);
    }
    return out;
}

} // namespace

WhatIfSpec
parseWhatIfSpec(const std::string &text, const Server &server)
{
    auto eq = text.rfind('=');
    if (eq == std::string::npos || eq == 0 ||
        eq + 1 >= text.size()) {
        fatal("malformed what-if spec '%s'; expected "
              "RESOURCE=FACTOR",
              text.c_str());
    }
    WhatIfSpec spec;
    spec.factor = parseFactor(text.substr(eq + 1), text);
    ResourceRef ref =
        parseResourceRef(text.substr(0, eq), server, text);
    spec.kind = ref.kind;
    spec.index = ref.index;
    spec.resource = std::move(ref.resource);
    return spec;
}

std::vector<double>
WhatIfSweepSpec::factors() const
{
    std::vector<double> out;
    out.reserve(static_cast<std::size_t>(steps));
    for (int i = 0; i < steps; ++i) {
        double t = steps > 1
            ? static_cast<double>(i) / (steps - 1)
            : 0.0;
        out.push_back(lo + (hi - lo) * t);
    }
    return out;
}

WhatIfSweepSpec
parseWhatIfSweepSpec(const std::string &text)
{
    auto eq = text.rfind('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= text.size())
        fatal("malformed what-if sweep '%s'; expected "
              "RESOURCE=LO:HI:STEPS",
              text.c_str());
    WhatIfSweepSpec spec;
    spec.resource = text.substr(0, eq);
    std::string grid = text.substr(eq + 1);
    auto c1 = grid.find(':');
    auto c2 = c1 == std::string::npos ? std::string::npos
                                      : grid.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos ||
        grid.find(':', c2 + 1) != std::string::npos) {
        fatal("malformed what-if sweep '%s'; expected "
              "RESOURCE=LO:HI:STEPS",
              text.c_str());
    }
    spec.lo = parseFactor(grid.substr(0, c1), text);
    spec.hi = parseFactor(grid.substr(c1 + 1, c2 - c1 - 1), text);
    char *end = nullptr;
    const std::string steps_text = grid.substr(c2 + 1);
    long steps = std::strtol(steps_text.c_str(), &end, 10);
    if (end == nullptr || end == steps_text.c_str() ||
        *end != '\0' || steps < 2 || steps > 10000) {
        fatal("what-if sweep '%s': STEPS must be an integer in "
              "[2, 10000]",
              text.c_str());
    }
    spec.steps = static_cast<int>(steps);
    if (spec.lo > spec.hi)
        fatal("what-if sweep '%s': LO must be <= HI", text.c_str());
    return spec;
}

bool
RunPerturbation::identity() const
{
    if (cpuOptimizerFactor != 1.0)
        return false;
    for (double f : gpuComputeFactor) {
        if (f != 1.0)
            return false;
    }
    return true;
}

Server
perturbServer(const Server &server,
              const std::vector<WhatIfSpec> &specs)
{
    Server out = server;
    Topology &topo = out.topo;
    for (const WhatIfSpec &spec : specs) {
        // GpuCompute / CpuOptimizer resolve to no links: they are
        // the engine-rate side, see runPerturbation().
        ResourceRef ref{spec.kind, spec.index, spec.resource};
        for (int l : resourceLinks(ref, topo)) {
            topo.setLinkCapacity(l, topo.link(l).capacity *
                                        spec.factor);
        }
    }
    return out;
}

RunPerturbation
runPerturbation(const std::vector<WhatIfSpec> &specs, int num_gpus)
{
    RunPerturbation p;
    p.gpuComputeFactor.assign(static_cast<std::size_t>(num_gpus),
                              1.0);
    for (const WhatIfSpec &spec : specs) {
        switch (spec.kind) {
          case WhatIfKind::GpuCompute:
            p.gpuComputeFactor[static_cast<std::size_t>(
                spec.index)] *= spec.factor;
            break;
          case WhatIfKind::CpuOptimizer:
            p.cpuOptimizerFactor *= spec.factor;
            break;
          case WhatIfKind::Category:
            if (spec.resource == "compute") {
                for (double &f : p.gpuComputeFactor)
                    f *= spec.factor;
            } else if (spec.resource == "optimizer") {
                p.cpuOptimizerFactor *= spec.factor;
            }
            break;
          case WhatIfKind::Link:
          case WhatIfKind::RootComplex:
            break; // topology side, see perturbServer()
        }
    }
    return p;
}

WhatIfResult
evaluateWhatIf(const SpanDag &dag, const Server &server,
               const std::vector<WhatIfSpec> &specs)
{
    WhatIfResult r;
    r.specs = specs;
    if (dag.spans.empty())
        return r;
    r.baseStepTime = dag.stepTime();

    std::vector<Matcher> matchers;
    matchers.reserve(specs.size());
    for (const WhatIfSpec &s : specs)
        matchers.push_back(compileSpec(s, server));

    // Three duration vectors: the unperturbed re-schedule (model
    // calibration), the coupled model (contention drains at the new
    // bandwidth), and the invariant model (contention is caused
    // elsewhere and does not react). The spread between the last
    // two is the reported error bar.
    std::size_t n = dag.spans.size();
    std::vector<double> base(n), coupled(n), invariant(n);
    // Pool-saturation accounting per shared-pool spec: every byte a
    // matched span carries must cross that pool, one direction at a
    // time, so sum-of-work / factor lower-bounds any counterfactual
    // makespan (the list-scheduler alone can under-predict a
    // slowdown: it cannot invent the contention a slower pool
    // creates between spans that did not overlap in the baseline).
    std::map<std::pair<std::size_t, std::string>, double> poolWork;
    for (std::size_t i = 0; i < n; ++i) {
        const TraceSpan &s = dag.spans[i];
        double work = s.workSeconds();
        double stretch = s.stretch();
        base[i] = s.duration();

        double workMul = 1.0;
        double stretchMul = 1.0;
        bool matched = false;
        for (std::size_t mi = 0; mi < matchers.size(); ++mi) {
            const Matcher &m = matchers[mi];
            if (!m.matches(s))
                continue;
            matched = true;
            double f = m.spec.factor;
            stretchMul /= f;
            bool shared = m.spec.kind == WhatIfKind::Link ||
                m.spec.kind == WhatIfKind::RootComplex;
            // A shared pool's speedup cannot push a flow past its
            // private per-link bottleneck (capacities are uniform,
            // so the floor is the recorded work); its slowdown
            // makes the pool the route bottleneck.
            workMul /= shared ? std::min(1.0, f) : f;
            if (shared) {
                // Direction = track suffix (h2d / d2h / nvlink):
                // each direction of the pool drains independently.
                auto dot = s.track.find_last_of('.');
                poolWork[{mi, s.track.substr(dot + 1)}] += work;
            }
        }
        if (matched)
            ++r.matchedSpans;
        coupled[i] = work * workMul + stretch * stretchMul;
        invariant[i] = work * workMul + stretch;
    }
    double poolBound = 0.0;
    for (const auto &[key, work_sum] : poolWork) {
        poolBound = std::max(
            poolBound, work_sum / matchers[key.first].spec.factor);
    }

    r.modelBase = reschedule(dag, base);
    double msA = reschedule(dag, coupled);
    double msB = reschedule(dag, invariant);
    double cal =
        r.modelBase > 0.0 ? r.baseStepTime / r.modelBase : 1.0;
    // The truth lies between the two contention hypotheses; the
    // midpoint is the point estimate, the variants are the bar. The
    // pool-saturation bound is a hard floor on all three.
    r.predicted = std::max(0.5 * (msA + msB) * cal, poolBound);
    r.predictedLow =
        std::max(std::min(msA, msB) * cal, poolBound);
    r.predictedHigh =
        std::max(std::max(msA, msB) * cal, r.predicted);
    return r;
}

WhatIfResult
evaluateWhatIf(const TraceRecorder &trace, const Server &server,
               const std::vector<WhatIfSpec> &specs)
{
    return evaluateWhatIf(buildSpanDag(trace), server, specs);
}

double
WhatIfSweep::sensitivity() const
{
    if (points.empty())
        return 0.0;
    bool all_exact = true;
    for (const WhatIfResult &p : points)
        all_exact = all_exact && p.exact > 0.0;
    auto value = [&](const WhatIfResult &p) {
        return all_exact ? p.exact : p.predicted;
    };
    double lo = value(points.front());
    double hi = lo;
    const WhatIfResult *unit = &points.front();
    double unit_dist = 1e300;
    for (const WhatIfResult &p : points) {
        lo = std::min(lo, value(p));
        hi = std::max(hi, value(p));
        double factor =
            p.specs.empty() ? 1.0 : p.specs.front().factor;
        double d = std::fabs(factor - 1.0);
        if (d < unit_dist) {
            unit_dist = d;
            unit = &p;
        }
    }
    double ref = value(*unit);
    return ref > 0.0 ? (hi - lo) / ref : 0.0;
}

WhatIfSweep
sweepWhatIf(const SpanDag &dag, const Server &server,
            const WhatIfSweepSpec &spec)
{
    WhatIfSweep sweep;
    sweep.spec = spec;
    for (double f : spec.factors()) {
        WhatIfSpec point = parseWhatIfSpec(
            strfmt("%s=%.17g", spec.resource.c_str(), f), server);
        sweep.points.push_back(
            evaluateWhatIf(dag, server, {point}));
    }
    return sweep;
}

std::string
whatIfResultJson(const WhatIfResult &r)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\"specs\":[";
    for (std::size_t i = 0; i < r.specs.size(); ++i) {
        const WhatIfSpec &s = r.specs[i];
        if (i > 0)
            os << ",";
        os << "{\"resource\":\"" << jsonEscape(s.resource)
           << "\",\"kind\":\"" << resourceKindName(s.kind)
           << "\",\"factor\":" << s.factor << "}";
    }
    os << "],\"base_step_time\":" << r.baseStepTime
       << ",\"model_base\":" << r.modelBase
       << ",\"predicted\":" << r.predicted
       << ",\"predicted_low\":" << r.predictedLow
       << ",\"predicted_high\":" << r.predictedHigh
       << ",\"speedup\":" << r.speedup()
       << ",\"matched_spans\":" << r.matchedSpans;
    if (r.exact > 0.0) {
        os << ",\"exact\":" << r.exact
           << ",\"drift\":" << r.drift();
    }
    os << "}";
    return os.str();
}

std::string
whatIfSweepJson(const WhatIfSweep &s)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\"resource\":\"" << jsonEscape(s.spec.resource)
       << "\",\"lo\":" << s.spec.lo << ",\"hi\":" << s.spec.hi
       << ",\"steps\":" << s.spec.steps
       << ",\"sensitivity\":" << s.sensitivity() << ",\"points\":[";
    for (std::size_t i = 0; i < s.points.size(); ++i) {
        if (i > 0)
            os << ",";
        os << whatIfResultJson(s.points[i]);
    }
    os << "]}";
    return os.str();
}

std::string
whatIfSweepAscii(const WhatIfSweep &s, int width)
{
    std::ostringstream os;
    os << strfmt("what-if sweep: %s x%.3g .. x%.3g (%d points), "
                 "sensitivity %.3f\n",
                 s.spec.resource.c_str(), s.spec.lo, s.spec.hi,
                 s.spec.steps, s.sensitivity());
    double maxv = 0.0;
    for (const WhatIfResult &p : s.points)
        maxv = std::max(maxv, p.predictedHigh);
    if (maxv <= 0.0)
        maxv = 1.0;
    os << strfmt("  %7s %-*s %12s %12s\n", "factor", width, "",
                 "predicted", "exact");
    for (const WhatIfResult &p : s.points) {
        double f = p.specs.empty() ? 0.0 : p.specs.front().factor;
        int bar = static_cast<int>(p.predicted / maxv * width);
        int hi = static_cast<int>(p.predictedHigh / maxv * width);
        std::string row(static_cast<std::size_t>(width), ' ');
        for (int i = 0; i < bar && i < width; ++i)
            row[static_cast<std::size_t>(i)] = '#';
        for (int i = bar; i < hi && i < width; ++i)
            row[static_cast<std::size_t>(i)] = '-';
        std::string exact = p.exact > 0.0
            ? formatSeconds(p.exact)
            : std::string("-");
        os << strfmt("  %7.3f %-*s %12s %12s\n", f, width,
                     row.c_str(),
                     formatSeconds(p.predicted).c_str(),
                     exact.c_str());
    }
    os << "  ('#' = predicted, '-' = error bar to the invariant-"
          "contention model)\n";
    return os.str();
}

std::string
whatIfReport(const std::vector<WhatIfResult> &results)
{
    std::ostringstream os;
    os << strfmt("  %-24s %12s %12s %8s %12s %8s\n", "what-if",
                 "predicted", "range", "speedup", "exact", "drift");
    for (const WhatIfResult &r : results) {
        std::string range =
            strfmt("%+.1f%%", r.predicted > 0.0
                       ? 100.0 *
                           (r.predictedHigh - r.predictedLow) /
                           r.predicted
                       : 0.0);
        std::string exact = r.exact > 0.0 ? formatSeconds(r.exact)
                                          : std::string("-");
        std::string drift = r.exact > 0.0
            ? strfmt("%.2f%%", 100.0 * r.drift())
            : std::string("-");
        os << strfmt("  %-24s %12s %12s %7.2fx %12s %8s\n",
                     specsLabel(r.specs).c_str(),
                     formatSeconds(r.predicted).c_str(),
                     range.c_str(), r.speedup(), exact.c_str(),
                     drift.c_str());
    }
    return os.str();
}

} // namespace mobius
