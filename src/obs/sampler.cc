#include "obs/sampler.hh"

#include "base/logging.hh"

namespace mobius
{

MetricsSampler::MetricsSampler(EventQueue &queue,
                               MetricsRegistry &registry,
                               TraceRecorder *trace,
                               double interval)
    : queue_(queue), registry_(registry), trace_(trace),
      interval_(interval)
{
    if (interval_ <= 0.0)
        panic("metrics sampling interval must be > 0, got %g",
              interval_);
}

void
MetricsSampler::start()
{
    sampleNow();
    // The first tick is armed unconditionally so a sampler started
    // before the executor seeds the queue still runs during the
    // simulation.
    queue_.scheduleAfter(interval_, [this] { tick(); });
}

void
MetricsSampler::tick()
{
    sampleNow();
    // Reschedule only while the simulation still has work queued;
    // a self-perpetuating tick would keep EventQueue::run() alive
    // forever.
    if (!queue_.empty())
        queue_.scheduleAfter(interval_, [this] { tick(); });
}

void
MetricsSampler::sampleNow()
{
    ++ticks_;
    SimTime now = queue_.now();
    auto capture = [&](const std::string &name, double value) {
        samples_.push_back({now, name, value});
        if (trace_)
            trace_->recordCounter({name, now, value});
    };
    registry_.visitCounters([&](const Counter &c) {
        capture(c.name(), c.value());
    });
    registry_.visitGauges([&](const Gauge &g) {
        capture(g.name(), g.value());
    });
}

} // namespace mobius
