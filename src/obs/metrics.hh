/**
 * @file
 * Metrics primitives and the process-wide registry behind the
 * simulator's observability layer.
 *
 * Three metric kinds cover everything the evaluation figures need:
 *
 *  - Counter   — monotonically accumulating totals (bytes per link,
 *                prefetch hits, solver nodes);
 *  - Gauge     — last-written instantaneous values with min/max
 *                tracking (queue depth, active flows, peak memory);
 *  - Histogram — streaming value distributions with percentile
 *                queries (step time, transfer bandwidth, kernel
 *                duration). Log-linear bucketing keeps memory fixed
 *                (no reservoir, no sample retention) with a bounded
 *                relative quantile error of ~1%.
 *
 * A MetricsRegistry owns metrics by dotted name (the naming
 * convention is documented in DESIGN.md §Observability, e.g.
 * "link.dram<->rc0.bytes", "gpu0.prefetch.miss"). Components cache
 * the returned handles at construction time so the hot paths never
 * touch the name map; when a registry is absent or disabled,
 * components skip handle creation entirely and instrumentation
 * costs one null-pointer test.
 */

#ifndef MOBIUS_OBS_METRICS_HH
#define MOBIUS_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/prof.hh"

namespace mobius
{

/** A monotonically accumulating total. */
class Counter
{
  public:
    /** Accumulate @p delta (default 1). */
    void add(double delta = 1.0) { value_ += delta; }

    /** @return the accumulated total. */
    double value() const { return value_; }

    /** @return the registry name. */
    const std::string &name() const { return name_; }

  private:
    friend class MetricsRegistry;
    std::string name_;
    double value_ = 0.0;
};

/** An instantaneous value with min/max-over-time tracking. */
class Gauge
{
  public:
    /** Record a new current value. */
    void
    set(double value)
    {
        value_ = value;
        if (!seen_ || value < min_)
            min_ = value;
        if (!seen_ || value > max_)
            max_ = value;
        seen_ = true;
    }

    /** Adjust the current value by @p delta. */
    void add(double delta) { set(value_ + delta); }

    /** @return the most recently set value. */
    double value() const { return value_; }

    /** @return the smallest value ever set (0 before any set()). */
    double min() const { return seen_ ? min_ : 0.0; }

    /** @return the largest value ever set (0 before any set()). */
    double max() const { return seen_ ? max_ : 0.0; }

    /** @return the registry name. */
    const std::string &name() const { return name_; }

  private:
    friend class MetricsRegistry;
    std::string name_;
    double value_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    bool seen_ = false;
};

/**
 * A fixed-memory streaming histogram with percentile queries.
 *
 * Values are bucketed log-linearly: one bucket group per power of
 * two, each split into kSubBuckets linear sub-buckets, so the
 * relative width of any bucket is 1/kSubBuckets and quantile
 * estimates carry at most ~1/(2 kSubBuckets) relative error.
 * Exact min/max/sum/count are tracked alongside, and quantiles are
 * clamped to the observed [min, max]. Zero and negative values are
 * counted in a dedicated underflow bucket that sorts before all
 * positive buckets.
 */
class Histogram
{
  public:
    /** An empty histogram. */
    Histogram();

    /** Record one sample. */
    void record(double value);

    /** @return number of recorded samples. */
    std::uint64_t count() const { return count_; }

    /** @return smallest recorded value (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** @return largest recorded value (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** @return sum of recorded values. */
    double sum() const { return sum_; }

    /** @return arithmetic mean (0 when empty). */
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /**
     * @return an estimate of the @p q quantile, q in [0, 1]
     *         (0.5 = median). 0 when empty.
     */
    double quantile(double q) const;

    /** @return the registry name. */
    const std::string &name() const { return name_; }

  private:
    friend class MetricsRegistry;

    /** Linear sub-buckets per power of two. */
    static constexpr int kSubBuckets = 32;
    /** Smallest representable exponent (frexp convention). */
    static constexpr int kMinExp = -64;
    /** Largest representable exponent. */
    static constexpr int kMaxExp = 64;
    static constexpr int kNumBuckets =
        (kMaxExp - kMinExp) * kSubBuckets;

    static int bucketIndex(double value);
    static double bucketMid(int index);

    std::string name_;
    std::uint64_t count_ = 0;
    std::uint64_t zeroCount_ = 0; //!< samples <= 0
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
    std::vector<std::uint32_t> buckets_; //!< size kNumBuckets
};

/**
 * Owner and name-keyed index of every metric in a run.
 *
 * counter()/gauge()/histogram() create on first use and return a
 * stable reference afterwards; callers cache the reference. A
 * disabled registry (enabled() == false) tells components not to
 * instrument at all — by convention they treat it like a null
 * registry and skip handle creation, so a run pays nothing for
 * metrics it does not want.
 */
class MetricsRegistry
{
  public:
    /** @param enabled initial collection state. */
    explicit MetricsRegistry(bool enabled = true)
        : enabled_(enabled)
    {}

    /** @return true when components should collect metrics. */
    bool enabled() const { return enabled_; }

    /** Enable or disable collection (checked at handle creation). */
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /** @return the counter named @p name, created on first use. */
    Counter &counter(const std::string &name);

    /** @return the gauge named @p name, created on first use. */
    Gauge &gauge(const std::string &name);

    /** @return the histogram named @p name, created on first use. */
    Histogram &histogram(const std::string &name);

    /** @return the counter named @p name, or nullptr. */
    const Counter *findCounter(const std::string &name) const;

    /** @return the gauge named @p name, or nullptr. */
    const Gauge *findGauge(const std::string &name) const;

    /** @return the histogram named @p name, or nullptr. */
    const Histogram *findHistogram(const std::string &name) const;

    /** Visit every counter in name order. */
    void visitCounters(
        const std::function<void(const Counter &)> &fn) const;

    /** Visit every gauge in name order. */
    void visitGauges(
        const std::function<void(const Gauge &)> &fn) const;

    /** Visit every histogram in name order. */
    void visitHistograms(
        const std::function<void(const Histogram &)> &fn) const;

    /** Remove every metric. */
    void clear();

    /** @return total number of registered metrics. */
    std::size_t size() const;

    /**
     * Serialise every metric as one JSON object:
     * {"counters":{name:value,...},
     *  "gauges":{name:{"value":v,"min":m,"max":M},...},
     *  "histograms":{name:{"count":n,"min":m,"max":M,"mean":u,
     *                      "p50":...,"p90":...,"p95":...,"p99":...}}}
     */
    std::string toJson() const;

    /**
     * Serialise every metric as CSV with header
     * "type,name,value,count,min,max,mean,p50,p90,p95,p99"
     * (unused columns empty).
     */
    std::string toCsv() const;

  private:
    bool enabled_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/**
 * Exact @p q quantile (q in [0, 1]) of @p values with linear
 * interpolation between order statistics, computed from a sorted
 * copy. 0 when empty. The streaming Histogram trades ~1% relative
 * error for fixed memory; fleet-level reductions (JCT p50/p99 over
 * a completed job list) retain every sample anyway, so they report
 * the exact value — and the exact value is what the bit-identity
 * determinism gates compare across thread widths.
 */
double exactQuantile(std::vector<double> values, double q);

/**
 * Fold a host-profiler snapshot into @p registry so the `--metrics`
 * JSON/CSV export carries the self-profile alongside the simulated
 * metrics. Per zone path (';' replaced by '.'):
 *
 *  - counter `prof.<path>.calls`
 *  - gauge   `prof.<path>.wall_seconds`  (inclusive)
 *  - gauge   `prof.<path>.self_seconds`  (exclusive wall)
 *  - gauge   `prof.<path>.cpu_seconds`   (inclusive thread CPU)
 *
 * plus `prof.threads` and `prof.wall_total_seconds` roll-ups.
 */
void exportProfSnapshot(const prof::Snapshot &snap,
                        MetricsRegistry &registry);

} // namespace mobius

#endif // MOBIUS_OBS_METRICS_HH
