#include "obs/critical_path.hh"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "base/logging.hh"
#include "base/units.hh"
#include "obs/prof.hh"

namespace mobius
{

namespace
{

/** Add @p seconds of on-path span body to @p b under the span's
 *  category; contention stretch always lands on queue. */
void
addBody(AttributionBreakdown &b, const TraceSpan &s, double body)
{
    double w = std::min(s.workSeconds(), body);
    if (w < 0.0)
        w = 0.0;
    double stretch = body - w;
    if (s.category == "compute")
        b.compute += w;
    else if (s.category == "transfer")
        b.transfer += w;
    else if (s.category == "optimizer")
        b.optimizer += w;
    else if (s.category == "fault")
        b.fault += w;
    else
        b.other += w;
    b.queue += stretch;
}

/** Merge intervals and return total covered seconds. */
double
unionSeconds(std::vector<std::pair<double, double>> &iv)
{
    if (iv.empty())
        return 0.0;
    std::sort(iv.begin(), iv.end());
    double total = 0.0;
    double lo = iv.front().first;
    double hi = iv.front().second;
    for (std::size_t i = 1; i < iv.size(); ++i) {
        if (iv[i].first > hi) {
            total += hi - lo;
            lo = iv[i].first;
            hi = iv[i].second;
        } else {
            hi = std::max(hi, iv[i].second);
        }
    }
    total += hi - lo;
    return total;
}

/** Seconds of @p iv not covered by @p mask (both get sorted). */
double
exposedSeconds(std::vector<std::pair<double, double>> &iv,
               std::vector<std::pair<double, double>> &mask)
{
    if (iv.empty())
        return 0.0;
    double joint = unionSeconds(iv);
    if (mask.empty())
        return joint;
    // |iv \ mask| = |iv ∪ mask| - |mask|
    std::vector<std::pair<double, double>> both = iv;
    both.insert(both.end(), mask.begin(), mask.end());
    return unionSeconds(both) - unionSeconds(mask);
}

} // namespace

StepAttribution
attributeStep(const TraceRecorder &trace)
{
    MOBIUS_PROF_ZONE("obs.critical_path");
    StepAttribution out;
    std::vector<TraceSpan> spans = trace.spans();
    if (spans.empty())
        return out;
    out.spanCount = spans.size();

    std::unordered_map<SpanId, const TraceSpan *> byId;
    byId.reserve(spans.size());
    const TraceSpan *last = nullptr;
    for (const auto &s : spans) {
        byId.emplace(s.id, &s);
        out.totalQueueWait += s.queueWait() + s.stretch();
        if (last == nullptr || s.end > last->end)
            last = &s;
    }
    out.stepTime = last->end;

    // Backward walk from the step-ending span. `cursor` is the upper
    // edge of the not-yet-attributed prefix [0, cursor]; every
    // iteration peels disjoint intervals off it, so the categories
    // partition [0, stepTime] and sum to it exactly.
    double cursor = out.stepTime;
    const TraceSpan *cur = last;
    std::unordered_set<SpanId> visited;
    while (cur != nullptr && cursor > 0.0) {
        if (!visited.insert(cur->id).second)
            break; // defensive: a cycle would mean a broken trace
        // Gap between this span's end and the span it enables.
        if (cursor > cur->end) {
            out.critical.bubble += cursor - cur->end;
            out.stages[-1].bubble += cursor - cur->end;
            cursor = cur->end;
        }
        // Span body [start, cursor]: intrinsic work by category,
        // fair-share stretch as queue.
        double body = std::max(0.0, cursor - std::max(0.0,
                                                      cur->start));
        addBody(out.critical, *cur, body);
        addBody(out.stages[cur->stage], *cur, body);
        // Wait [ready, start]: the work was runnable but its engine
        // or link was busy — contention.
        double ready = cur->readyTime();
        double wait = std::min(cur->start, cursor) -
            std::min(ready, cursor);
        if (wait > 0.0) {
            out.critical.queue += wait;
            out.stages[cur->stage].queue += wait;
        }
        cursor = std::min(cursor, ready);

        CriticalPathEntry e;
        e.id = cur->id;
        e.track = cur->track;
        e.name = cur->name;
        e.category = cur->category;
        e.gpu = cur->gpu;
        e.stage = cur->stage;
        e.start = cur->start;
        e.end = cur->end;
        e.queueWait = wait > 0.0 ? wait : 0.0;
        e.stretch = body - std::min(cur->workSeconds(), body);
        out.path.push_back(std::move(e));

        // Follow the binding dependency: the predecessor that
        // finished last is the one this span actually waited for.
        const TraceSpan *binding = nullptr;
        for (SpanId d : cur->deps) {
            auto it = byId.find(d);
            if (it == byId.end())
                continue;
            if (binding == nullptr ||
                it->second->end > binding->end) {
                binding = it->second;
            }
        }
        cur = binding;
    }
    if (cursor > 0.0) {
        // Head of the step before the first caused span: warm-up
        // idle with no recorded predecessor.
        out.critical.bubble += cursor;
        out.stages[-1].bubble += cursor;
    }

    // Per-GPU occupancy: compute spans never overlap on a GPU, so a
    // plain sum is exact; transfers can overlap each other and
    // compute, so take interval unions.
    std::map<int, std::vector<std::pair<double, double>>> computeIv;
    std::map<int, std::vector<std::pair<double, double>>> xferIv;
    for (const auto &s : spans) {
        if (s.gpu < 0 || s.duration() <= 0.0)
            continue;
        if (s.category == "compute")
            computeIv[s.gpu].emplace_back(s.start, s.end);
        else if (s.category == "transfer")
            xferIv[s.gpu].emplace_back(s.start, s.end);
    }
    std::unordered_set<int> gpuIds;
    for (const auto &[g, _] : computeIv)
        gpuIds.insert(g);
    for (const auto &[g, _] : xferIv)
        gpuIds.insert(g);
    std::vector<int> order(gpuIds.begin(), gpuIds.end());
    std::sort(order.begin(), order.end());
    for (int g : order) {
        GpuAttribution ga;
        ga.gpu = g;
        auto ci = computeIv.find(g);
        auto xi = xferIv.find(g);
        static std::vector<std::pair<double, double>> none;
        auto &cv = ci == computeIv.end() ? none : ci->second;
        auto &xv = xi == xferIv.end() ? none : xi->second;
        ga.compute = unionSeconds(cv);
        if (cv.empty())
            ga.compute = 0.0;
        ga.exposed = exposedSeconds(xv, cv);
        ga.bubble = std::max(0.0, out.stepTime - ga.compute -
                                      ga.exposed);
        ga.bubbleFraction = out.stepTime > 0.0
            ? ga.bubble / out.stepTime
            : 0.0;
        out.gpus.push_back(ga);
    }
    return out;
}

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

void
breakdownJson(std::ostringstream &os, const AttributionBreakdown &b)
{
    os << "{\"compute\":" << b.compute
       << ",\"transfer\":" << b.transfer
       << ",\"queue\":" << b.queue
       << ",\"optimizer\":" << b.optimizer
       << ",\"fault\":" << b.fault
       << ",\"bubble\":" << b.bubble
       << ",\"other\":" << b.other
       << ",\"total\":" << b.total() << "}";
}

} // namespace

std::string
attributionToJson(const StepAttribution &a, int top_k)
{
    std::ostringstream os;
    os.precision(17);
    os << "{\"stepTime\":" << a.stepTime
       << ",\"spanCount\":" << a.spanCount
       << ",\"totalQueueWait\":" << a.totalQueueWait
       << ",\"critical\":";
    breakdownJson(os, a.critical);
    os << ",\"stages\":{";
    bool first = true;
    for (const auto &[stage, b] : a.stages) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << stage << "\":";
        breakdownJson(os, b);
    }
    os << "},\"gpus\":[";
    first = true;
    for (const auto &g : a.gpus) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"gpu\":" << g.gpu << ",\"compute\":" << g.compute
           << ",\"exposedTransfer\":" << g.exposed
           << ",\"bubble\":" << g.bubble
           << ",\"bubbleFraction\":" << g.bubbleFraction << "}";
    }
    os << "],\"path\":[";
    std::size_t limit = top_k > 0
        ? std::min(a.path.size(), static_cast<std::size_t>(top_k))
        : a.path.size();
    for (std::size_t i = 0; i < limit; ++i) {
        const auto &e = a.path[i];
        if (i > 0)
            os << ",";
        os << "{\"id\":" << e.id << ",\"track\":\""
           << jsonEscape(e.track) << "\",\"name\":\""
           << jsonEscape(e.name) << "\",\"category\":\""
           << jsonEscape(e.category) << "\",\"gpu\":" << e.gpu
           << ",\"stage\":" << e.stage << ",\"start\":" << e.start
           << ",\"end\":" << e.end
           << ",\"queueWait\":" << e.queueWait
           << ",\"stretch\":" << e.stretch << "}";
    }
    os << "]}";
    return os.str();
}

std::string
attributionTable(const StepAttribution &a, int top_k)
{
    std::ostringstream os;
    double t = a.stepTime > 0.0 ? a.stepTime : 1.0;
    os << strfmt("step time: %s  (%zu spans, critical path %zu "
                 "spans)\n",
                 formatSeconds(a.stepTime).c_str(), a.spanCount,
                 a.path.size());
    os << "where the time goes (critical path):\n";
    auto row = [&](const char *label, double v) {
        os << strfmt("  %-10s %12s  %5.1f%%\n", label,
                     formatSeconds(v).c_str(), 100.0 * v / t);
    };
    row("compute", a.critical.compute);
    row("transfer", a.critical.transfer);
    row("queue", a.critical.queue);
    row("optimizer", a.critical.optimizer);
    if (a.critical.fault > 0.0)
        row("fault", a.critical.fault);
    row("bubble", a.critical.bubble);
    if (a.critical.other > 0.0)
        row("other", a.critical.other);
    os << strfmt("  %-10s %12s  %5.1f%%\n", "total",
                 formatSeconds(a.critical.total()).c_str(),
                 100.0 * a.critical.total() / t);
    os << strfmt("aggregate queue wait (all spans): %s\n",
                 formatSeconds(a.totalQueueWait).c_str());

    // Heaviest critical-path spans: the spans a perf PR should
    // attack first.
    std::vector<const CriticalPathEntry *> heavy;
    heavy.reserve(a.path.size());
    for (const auto &e : a.path)
        heavy.push_back(&e);
    std::sort(heavy.begin(), heavy.end(),
              [](const CriticalPathEntry *x,
                 const CriticalPathEntry *y) {
                  return x->pathSeconds() > y->pathSeconds();
              });
    std::size_t limit = top_k > 0
        ? std::min(heavy.size(), static_cast<std::size_t>(top_k))
        : heavy.size();
    if (limit > 0) {
        os << strfmt("top %zu critical spans:\n", limit);
        os << strfmt("  %-14s %-10s %-10s %5s %12s %12s\n", "track",
                     "name", "category", "stage", "on-path",
                     "queued");
        for (std::size_t i = 0; i < limit; ++i) {
            const auto &e = *heavy[i];
            os << strfmt("  %-14s %-10s %-10s %5d %12s %12s\n",
                         e.track.c_str(), e.name.c_str(),
                         e.category.c_str(), e.stage,
                         formatSeconds(e.pathSeconds()).c_str(),
                         formatSeconds(e.queueWait).c_str());
        }
    }
    if (!a.stages.empty()) {
        os << "per-stage critical seconds:\n";
        os << strfmt("  %5s %12s %12s %12s %12s\n", "stage",
                     "compute", "transfer", "queue", "bubble");
        for (const auto &[stage, b] : a.stages) {
            os << strfmt("  %5d %12s %12s %12s %12s\n", stage,
                         formatSeconds(b.compute).c_str(),
                         formatSeconds(b.transfer).c_str(),
                         formatSeconds(b.queue).c_str(),
                         formatSeconds(b.bubble).c_str());
        }
    }
    if (!a.gpus.empty()) {
        os << "per-GPU occupancy:\n";
        os << strfmt("  %5s %12s %12s %12s %8s\n", "gpu", "compute",
                     "exposed-xfer", "bubble", "bubble%");
        for (const auto &g : a.gpus) {
            os << strfmt("  %5d %12s %12s %12s %7.1f%%\n", g.gpu,
                         formatSeconds(g.compute).c_str(),
                         formatSeconds(g.exposed).c_str(),
                         formatSeconds(g.bubble).c_str(),
                         100.0 * g.bubbleFraction);
        }
    }
    return os.str();
}

} // namespace mobius
