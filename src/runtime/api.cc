#include "runtime/api.hh"

#include <algorithm>
#include <chrono>

#include "base/logging.hh"
#include "simcore/trace.hh"

namespace mobius
{

Workload::Workload(const GptConfig &cfg, const Server &server,
                   int microbatch_size, int num_microbatches)
{
    model_ = std::make_unique<ModelDesc>(makeGptModel(cfg));
    train_.microbatchSize = microbatch_size > 0
        ? microbatch_size
        : cfg.microbatchSize;
    train_.numMicrobatches = num_microbatches > 0
        ? num_microbatches
        : server.topo.numGpus();
    if (server.topo.numGpus() < 1)
        fatal("workload needs a server with at least one GPU");
    cost_ = std::make_unique<CostModel>(
        *model_, server.topo.gpuSpec(0), train_);
}

MobiusPlan
planMobius(const Server &server, const CostModel &cost,
           const PlanOptions &opts)
{
    MobiusPlan plan;
    const int n = server.topo.numGpus();

    // 1. Profile (layer similarity keeps this flat across depths).
    ProfileResult prof = profileModel(cost, opts.profiler);
    plan.profilingSeconds = prof.profilingTime;
    plan.profiledLayers = prof.profiledLayers;

    // 2. Partition via the chosen algorithm under the Eq. 3-11
    //    objective.
    PipelineEnv env;
    env.numGpus = n;
    env.gpuMemBytes = server.topo.gpuSpec(0).memBytes;
    env.avgBandwidth =
        opts.avgBandwidth > 0 ? opts.avgBandwidth : kPcie3x16Bw;
    PipelineCostEvaluator eval(cost, env);

    PartitionResult part;
    switch (opts.partition) {
      case PartitionAlgo::Mip:
        part = mipPartition(eval);
        break;
      case PartitionAlgo::ExactMip: {
        const int max_stages =
            opts.maxStages > 0 ? opts.maxStages : cost.numLayers();
        ExactMipResult exact = exactMipPartition(
            eval, max_stages, opts.mip, opts.metrics);
        if (!exact.solved) {
            fatal("exact MIP partition found no feasible partition "
                  "within its node/time budget");
        }
        part.partition = std::move(exact.partition);
        part.estimate = eval.evaluate(part.partition);
        part.solveSeconds = exact.wallSeconds;
        part.evaluated = static_cast<int>(
            std::min<std::uint64_t>(exact.nodes, 1000000000ULL));
        break;
      }
      case PartitionAlgo::MinStage:
        part = minStagePartition(eval);
        break;
      case PartitionAlgo::MaxStage:
        part = maxStagePartition(eval);
        break;
    }
    if (!part.estimate.feasible) {
        const char *name = "MIP";
        switch (opts.partition) {
          case PartitionAlgo::Mip:      name = "MIP"; break;
          case PartitionAlgo::ExactMip: name = "exact-MIP"; break;
          case PartitionAlgo::MinStage: name = "minimum-stage"; break;
          case PartitionAlgo::MaxStage: name = "maximum-stage"; break;
        }
        fatal("%s partition infeasible: %s", name,
              part.estimate.infeasibleReason.c_str());
    }
    plan.partition = std::move(part.partition);
    plan.estimate = std::move(part.estimate);
    plan.solveSeconds = part.solveSeconds;

    // 3. Map stages to GPUs.
    if (opts.mapping == MappingAlgo::Cross) {
        MappingResult cross =
            crossMapping(server.topo, plan.stageCount());
        plan.mapping = std::move(cross.mapping);
        plan.mappingSeconds = cross.searchSeconds;
    } else {
        plan.mapping =
            sequentialMapping(server.topo, plan.stageCount());
        plan.mappingSeconds = 0.0;
    }
    return plan;
}

StepStats
runMobiusStep(const Server &server, const CostModel &cost,
              const MobiusPlan &plan, MobiusExecutorConfig exec_cfg,
              TransferEngineConfig xfer_cfg,
              double cpu_adam_throughput)
{
    StepRunOptions opts;
    opts.xfer = xfer_cfg;
    opts.mobius = exec_cfg;
    opts.cpuAdamThroughput = cpu_adam_throughput;
    return runMobiusStepEx(server, cost, plan, opts).stats;
}

StepRunResult
runMobiusStepEx(const Server &server, const CostModel &cost,
                const MobiusPlan &plan, const StepRunOptions &opts)
{
    RunContext ctx(server, opts.xfer, opts.cpuAdamThroughput,
                   opts.metrics, {}, opts.faults, opts.faultSeed);
    MobiusExecutor exec(ctx, cost, plan.partition, plan.mapping,
                        opts.mobius);
    StepRunResult res;
    res.stats = exec.run();
    res.spanCount = ctx.trace().spanCount();
    res.spanHash = spanFingerprint(ctx.trace());
    if (opts.traceOut)
        ctx.trace().moveInto(*opts.traceOut);
    return res;
}

StepStats
runZeroStep(const Server &server, const CostModel &cost,
            ZeroExecutorConfig cfg, TransferEngineConfig xfer_cfg,
            double cpu_adam_throughput)
{
    StepRunOptions opts;
    opts.xfer = xfer_cfg;
    opts.zero = cfg;
    opts.cpuAdamThroughput = cpu_adam_throughput;
    return runZeroStepEx(server, cost, opts).stats;
}

StepRunResult
runZeroStepEx(const Server &server, const CostModel &cost,
              const StepRunOptions &opts)
{
    RunContext ctx(server, opts.xfer, opts.cpuAdamThroughput,
                   opts.metrics, {}, opts.faults, opts.faultSeed);
    ZeroHeteroExecutor exec(ctx, cost, opts.zero);
    StepRunResult res;
    res.stats = exec.run();
    res.spanCount = ctx.trace().spanCount();
    res.spanHash = spanFingerprint(ctx.trace());
    if (opts.traceOut)
        ctx.trace().moveInto(*opts.traceOut);
    return res;
}

StepStats
runTensorParallelStep(const Server &server, const CostModel &cost,
                      TpExecutorConfig cfg,
                      TransferEngineConfig xfer_cfg)
{
    RunContext ctx(server, xfer_cfg);
    TensorParallelExecutor exec(ctx, cost, cfg);
    return exec.run();
}

StepStats
runPipelineStep(const Server &server, const CostModel &cost,
                PipelineSchedule schedule,
                TransferEngineConfig xfer_cfg)
{
    const int n = server.topo.numGpus();
    Partition partition = balancedComputePartition(cost, n);
    Mapping mapping = sequentialMapping(server.topo,
                                        static_cast<int>(n));
    RunContext ctx(server, xfer_cfg);
    PipelineExecutor exec(ctx, cost, std::move(partition),
                          std::move(mapping), schedule);
    return exec.run();
}

} // namespace mobius
