/**
 * @file
 * Simulated CPU-side optimizer (ZeRO-Offload-style delayed Adam).
 *
 * Mobius and DeepSpeed both keep FP32 master weights and Adam
 * moments in DRAM and run the update on the CPU against the FP16
 * gradients the GPUs flush out (§3.1). This models that stage: apply
 * requests are serialised on the host and each takes
 * params / throughput seconds. Updates overlap the remaining GPU
 * work of the step (gradients arrive stage by stage), but a slow CPU
 * lengthens the step tail — the `cpu-optimizer` ablation quantifies
 * it.
 *
 * Disabled by default (throughput 0) so the communication-focused
 * experiments match the paper's setup, where the optimizer cost is
 * outside the measured window.
 */

#ifndef MOBIUS_RUNTIME_CPU_OPTIMIZER_HH
#define MOBIUS_RUNTIME_CPU_OPTIMIZER_HH

#include <cstdint>
#include <deque>
#include <functional>

#include "base/logging.hh"
#include "simcore/event_queue.hh"
#include "simcore/trace.hh"

namespace mobius
{

/** Serialised CPU Adam applier. */
class CpuOptimizer
{
  public:
    /**
     * @param throughput parameters updated per second; 0 disables
     *                   the model (apply() completes immediately).
     */
    CpuOptimizer(EventQueue &queue, double throughput,
                 TraceRecorder *trace = nullptr)
        : queue_(queue), throughput_(throughput), trace_(trace)
    {}

    /** @return true when a CPU-update cost model is configured. */
    bool enabled() const { return throughput_ > 0.0; }

    /**
     * Queue an update of @p params parameters. @p deps names the
     * spans (typically the gradient flushes) that made this update
     * runnable; @p stage is the pipeline stage being updated.
     */
    void
    apply(std::uint64_t params, std::string label = "adam",
          std::vector<SpanId> deps = {}, int stage = -1)
    {
        if (!enabled())
            return;
        tasks_.push_back(
            Task{static_cast<double>(params) / throughput_,
                 std::move(label), std::move(deps), stage,
                 queue_.now()});
        if (!busy_)
            startNext();
    }

    /**
     * Set the fault-injection throttle: updates *started* from now
     * on run for duration / @p factor seconds (CPU jitter windows,
     * fault/fault_injector.hh).
     */
    void
    setThrottle(double factor)
    {
        if (!(factor > 0.0))
            panic("optimizer throttle must be > 0, got %g", factor);
        throttle_ = factor;
    }

    /** Total seconds the (simulated) CPU spent applying updates. */
    double busyTime() const { return busyTime_; }
    bool idle() const { return !busy_ && tasks_.empty(); }

  private:
    struct Task
    {
        double duration;
        std::string label;
        std::vector<SpanId> deps;
        int stage = -1;
        SimTime queuedAt = -1.0;
    };

    void
    startNext()
    {
        if (busy_ || tasks_.empty())
            return;
        busy_ = true;
        Task task = std::move(tasks_.front());
        tasks_.pop_front();
        double effective = task.duration / throttle_;
        busyTime_ += effective;
        double start = queue_.now();
        queue_.scheduleAfter(
            effective,
            [this, start, label = std::move(task.label),
             deps = std::move(task.deps), stage = task.stage,
             queuedAt = task.queuedAt, work = task.duration] {
                if (trace_) {
                    TraceSpan s;
                    s.track = "cpu.optim";
                    s.name = label;
                    s.category = "optimizer";
                    s.start = start;
                    s.end = queue_.now();
                    s.deps = deps;
                    s.queuedAt = queuedAt;
                    // Jitter-stretched updates keep intrinsic work
                    // so the slowdown reads as contention.
                    if (queue_.now() - start > work)
                        s.work = work;
                    s.stage = stage;
                    trace_->record(std::move(s));
                }
                busy_ = false;
                startNext();
            });
    }

    EventQueue &queue_;
    double throughput_;
    TraceRecorder *trace_;
    double throttle_ = 1.0;
    bool busy_ = false;
    double busyTime_ = 0.0;
    std::deque<Task> tasks_;
};

} // namespace mobius

#endif // MOBIUS_RUNTIME_CPU_OPTIMIZER_HH
