#include "runtime/tp_executor.hh"

#include "base/logging.hh"

namespace mobius
{

TensorParallelExecutor::TensorParallelExecutor(RunContext &ctx,
                                               const CostModel &cost,
                                               TpExecutorConfig cfg)
    : ctx_(ctx), cost_(cost), cfg_(cfg),
      numLayers_(cost.numLayers())
{
    const int n = ctx_.numGpus();
    const int m = cost_.cfg().numMicrobatches;
    slots_ = 2 * numLayers_ * m;
    gpus_.resize(static_cast<std::size_t>(n));
    sent_.assign(static_cast<std::size_t>(slots_),
                 std::vector<bool>(static_cast<std::size_t>(n) *
                                       static_cast<std::size_t>(n),
                                   false));

    if (MetricsRegistry *reg = ctx_.activeMetrics()) {
        mAllReducePieces_ = &reg->counter("tp.allreduce.pieces");
        mGradFlushes_ = &reg->counter("tp.grad.flushes");
    }

    // Residency check: weight + gradient shards, one microbatch's
    // checkpoints, and the largest live set must fit per GPU.
    Bytes shard = (cost_.model().totalParamBytesFp16() * 2) /
        static_cast<Bytes>(n);
    Bytes checkpoints = 0;
    Bytes live = 0;
    for (int l = 0; l < numLayers_; ++l) {
        checkpoints += cost_.inActBytes(l);
        live = std::max(live, cost_.stageMemBwd(l, l + 1) -
                            cost_.paramBytes(l) -
                            cost_.gradBytes(l));
    }
    Bytes need = shard + checkpoints + live;
    for (int g = 0; g < n; ++g) {
        Bytes cap = ctx_.memory(g).capacity();
        if (need > cap) {
            fatal("tensor parallelism out of memory: shard needs %s "
                  "per GPU (plus %s activations), GPU %d has %s",
                  formatBytes(shard).c_str(),
                  formatBytes(checkpoints + live).c_str(), g,
                  formatBytes(cap).c_str());
        }
        ctx_.memory(g).alloc(need);
    }
}

int
TensorParallelExecutor::slotLayer(int slot) const
{
    int k = slot % (2 * numLayers_);
    return k < numLayers_ ? k : 2 * numLayers_ - 1 - k;
}

bool
TensorParallelExecutor::slotIsBwd(int slot) const
{
    return slot % (2 * numLayers_) >= numLayers_;
}

Bytes
TensorParallelExecutor::collectiveBytes(int layer) const
{
    // Transformer blocks pay allReducesPerBlock full-activation
    // all-reduces; the thin layers (embedding/norm/head) pay one.
    const LayerDesc &l = cost_.model().layers[layer];
    int count = l.type == LayerType::TransformerBlock
        ? cfg_.allReducesPerBlock
        : 1;
    return cost_.actBytes(layer) * static_cast<Bytes>(count);
}

void
TensorParallelExecutor::startCompute(int gpu)
{
    GpuState &g = gpus_[gpu];
    if (g.computing || g.slot >= slots_)
        return;
    g.computing = true;
    g.computeDone = false;
    int slot = g.slot;
    int layer = slotLayer(slot);
    double base = slotIsBwd(slot) ? cost_.bwdTime(layer)
                                  : cost_.fwdTime(layer);
    double t = base /
        (ctx_.numGpus() * cfg_.shardEfficiency);
    // Gated by the previous slot's collective pieces and this GPU's
    // previous compute.
    std::vector<SpanId> deps = std::move(g.nextDeps);
    g.nextDeps.clear();
    deps.push_back(g.computeSpan);
    ctx_.compute(gpu).submit(
        t, [this, gpu, slot] { onCompute(gpu, slot); },
        strfmt("%c%d.%d", slotIsBwd(slot) ? 'b' : 'f', layer,
               slot / (2 * numLayers_)),
        std::move(deps), layer);
}

void
TensorParallelExecutor::onCompute(int gpu, int slot)
{
    const int n = ctx_.numGpus();
    GpuState &g = gpus_[gpu];
    g.computing = false;
    g.computeDone = true;
    g.computeSpan = ctx_.compute(gpu).lastSpanId();

    if (n == 1) {
        onPiece(gpu, slot); // degenerate collective
        return;
    }

    // All-reduce: exchange 1/N-sized pieces with every peer whose
    // compute for this slot also finished; peers that finish later
    // trigger the exchange from their side.
    int layer = slotLayer(slot);
    Bytes piece = collectiveBytes(layer) / static_cast<Bytes>(n);
    g.piecesLeft += n - 1;
    for (int other = 0; other < n; ++other) {
        if (other == gpu)
            continue;
        const GpuState &og = gpus_[other];
        bool other_ready = og.slot == slot && og.computeDone;
        bool other_passed = og.slot > slot;
        if (!other_ready && !other_passed)
            continue;
        for (auto [src, dst] : {std::pair{gpu, other},
                                std::pair{other, gpu}}) {
            std::size_t idx = static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(n) +
                static_cast<std::size_t>(dst);
            if (sent_[slot][idx])
                continue;
            sent_[slot][idx] = true;
            if (mAllReducePieces_)
                mAllReducePieces_->add();
            TransferRequest req;
            req.src = Endpoint::gpuAt(src);
            req.dst = Endpoint::gpuAt(dst);
            req.bytes = piece;
            req.kind = slotIsBwd(slot)
                ? TrafficKind::ActivationGrad
                : TrafficKind::Activation;
            req.priority = cfg_.prioCollective;
            req.label = strfmt("ar%d", slot);
            req.deps = {gpus_[src].computeSpan};
            req.stage = layer;
            int d = dst;
            req.onComplete = [this, d, slot] {
                gpus_[d].nextDeps.push_back(
                    ctx_.xfer().lastSpanId());
                onPiece(d, slot);
            };
            ctx_.submitXfer(req);
        }
    }
}

void
TensorParallelExecutor::onPiece(int gpu, int slot)
{
    GpuState &g = gpus_[gpu];
    if (ctx_.numGpus() > 1) {
        if (g.slot != slot)
            panic("TP collective piece for slot %d arrived at slot "
                  "%d", slot, g.slot);
        if (--g.piecesLeft > 0)
            return;
    }

    // Slot complete: flush gradient shards at the end of each
    // microbatch's backward sweep through a layer.
    if (slotIsBwd(slot)) {
        int layer = slotLayer(slot);
        bool last_mb =
            slot / (2 * numLayers_) ==
            cost_.cfg().numMicrobatches - 1;
        if (last_mb) {
            Bytes shard = cost_.gradBytes(layer) /
                static_cast<Bytes>(ctx_.numGpus());
            TransferRequest flush;
            flush.src = Endpoint::gpuAt(gpu);
            flush.dst = Endpoint::dram();
            flush.bytes = shard;
            flush.kind = TrafficKind::Gradient;
            flush.priority = cfg_.prioGradient;
            flush.label = strfmt("flush l%d", layer);
            flush.deps = {g.computeSpan};
            flush.stage = layer;
            int lyr = layer;
            flush.onComplete = [this, lyr, gpu] {
                if (gpu == 0) {
                    ctx_.cpuOptimizer().apply(
                        cost_.model().layers[lyr].paramCount,
                        strfmt("adam l%d", lyr),
                        {ctx_.xfer().lastSpanId()}, lyr);
                }
            };
            ctx_.submitXfer(flush);
            if (mGradFlushes_)
                mGradFlushes_->add();
        }
    }

    ++g.slot;
    g.computeDone = false;
    startCompute(gpu);
}

StepStats
TensorParallelExecutor::run()
{
    for (int g = 0; g < ctx_.numGpus(); ++g)
        startCompute(g);
    StepStats stats = ctx_.finish("TensorParallel");
    for (int g = 0; g < ctx_.numGpus(); ++g) {
        if (gpus_[g].slot != slots_)
            panic("TP step deadlocked on GPU %d (%d/%d slots)", g,
                  gpus_[g].slot, slots_);
        ctx_.memory(g).free(ctx_.memory(g).used());
    }
    return stats;
}

} // namespace mobius
