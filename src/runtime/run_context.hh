/**
 * @file
 * Everything one simulated training step runs on: the event queue,
 * the transfer engine over the server's topology, one compute engine
 * and one memory ledger per GPU, and the usage tracker feeding Fig. 8.
 *
 * A RunContext optionally carries a MetricsRegistry; when present,
 * the engines it constructs instrument themselves and finish()
 * records the per-GPU phase breakdown (compute / exposed comm /
 * overlapped comm / idle) plus simulator health metrics.
 */

#ifndef MOBIUS_RUNTIME_RUN_CONTEXT_HH
#define MOBIUS_RUNTIME_RUN_CONTEXT_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.hh"
#include "hw/server.hh"
#include "obs/critical_path.hh"
#include "obs/metrics.hh"
#include "obs/whatif.hh"
#include "runtime/cpu_optimizer.hh"
#include "runtime/gpu_memory.hh"
#include "runtime/step_stats.hh"
#include "xfer/compute_engine.hh"
#include "xfer/transfer_engine.hh"

namespace mobius
{

/** Simulation context for one step on one server. */
class RunContext
{
  public:
    /**
     * Wire up queue, engines, memory pools, and telemetry for
     * @p server. When @p metrics is non-null and enabled, every
     * engine registers its counters there at construction.
     * @p perturb carries the engine-rate side of a what-if
     * counterfactual (obs/whatif.hh): per-GPU compute speed factors
     * and a CPU optimizer throughput multiplier; the default is the
     * identity (a faithful run).
     *
     * When @p faults is non-null and non-empty, a FaultInjector is
     * constructed over the engines and armed; executors must then
     * route transfers through submitXfer() so transient failures and
     * retries apply.
     */
    explicit RunContext(const Server &server,
                        TransferEngineConfig xfer_cfg = {},
                        double cpu_adam_throughput = 0.0,
                        MetricsRegistry *metrics = nullptr,
                        RunPerturbation perturb = {},
                        const FaultPlan *faults = nullptr,
                        std::uint64_t fault_seed = 1)
        : server_(&server),
          metrics_(metrics),
          usage_(queue_, server.topo.numGpus()),
          xfer_(queue_, server.topo, &usage_, xfer_cfg, &trace_,
                metrics),
          cpuOptimizer_(queue_,
                        cpu_adam_throughput *
                            perturb.cpuOptimizerFactor,
                        &trace_)
    {
        for (int g = 0; g < server.topo.numGpus(); ++g) {
            compute_.push_back(std::make_unique<ComputeEngine>(
                queue_, &usage_, g, &trace_, metrics,
                perturb.computeFactor(g)));
            memory_.push_back(std::make_unique<GpuMemory>(
                server.topo.gpuSpec(g).memBytes));
        }
        if (faults && !faults->empty()) {
            std::vector<ComputeEngine *> engines;
            for (auto &ce : compute_)
                engines.push_back(ce.get());
            faults_ = std::make_unique<FaultInjector>(
                queue_, server.topo, xfer_, std::move(engines),
                *faults, fault_seed,
                [this](double f) { cpuOptimizer_.setThrottle(f); },
                [this] { return workloadIdle(); }, &trace_,
                metrics);
            faults_->arm();
        }
    }

    const Server &server() const { return *server_; } //!< the machine
    /** @return number of GPUs on the server. */
    int numGpus() const { return server_->topo.numGpus(); }

    EventQueue &queue() { return queue_; }   //!< the simulation clock
    UsageTracker &usage() { return usage_; } //!< per-GPU phase times
    TraceRecorder &trace() { return trace_; } //!< span/counter sink
    TransferEngine &xfer() { return xfer_; } //!< the interconnect
    CpuOptimizer &cpuOptimizer() { return cpuOptimizer_; } //!< CPU Adam
    ComputeEngine &compute(int gpu) { return *compute_[gpu]; } //!< per-GPU kernels
    GpuMemory &memory(int gpu) { return *memory_[gpu]; } //!< per-GPU pool

    /** The registry engines report into, or nullptr. */
    MetricsRegistry *metrics() { return metrics_; }

    /** The fault injector, or nullptr for fault-free runs. */
    FaultInjector *faults() { return faults_.get(); }

    /**
     * Submit a transfer through the fault model when one is active
     * (transient failures + retries), or straight to the engine.
     * Executors route every transfer here instead of xfer().submit.
     */
    FlowId
    submitXfer(TransferRequest req)
    {
        if (faults_)
            return faults_->submit(std::move(req));
        return xfer_.submit(std::move(req));
    }

    /**
     * Register an additional "still busy" predicate consulted by
     * workloadIdle(). Request-driven workloads (the serving
     * simulator) have engine-idle gaps between arrivals that are not
     * the end of the run; without this hook the fault injector would
     * disarm itself at the first such gap.
     */
    void
    setExtraBusy(std::function<bool()> fn)
    {
        extraBusy_ = std::move(fn);
    }

    /**
     * @return true when every engine has drained: the fault
     * injector's signal that the step is over and its remaining
     * timed events should be cancelled rather than run.
     */
    bool
    workloadIdle() const
    {
        if (extraBusy_ && extraBusy_())
            return false;
        if (!xfer_.idle() || !cpuOptimizer_.idle())
            return false;
        for (const auto &ce : compute_)
            if (!ce->idle())
                return false;
        return true;
    }

    /**
     * @return the enabled registry, or nullptr when metrics are off —
     *         executors gate their handle creation on this.
     */
    MetricsRegistry *
    activeMetrics()
    {
        return metrics_ && metrics_->enabled() ? metrics_ : nullptr;
    }

    /**
     * Drain the event queue and collect the step's statistics.
     * @param system label recorded in the stats.
     */
    StepStats
    finish(const std::string &system)
    {
        queue_.run();
        StepStats stats;
        stats.system = system;
        stats.stepTime = queue_.now();
        stats.numGpus = numGpus();
        stats.traffic = xfer_.stats();
        if (faults_) {
            // A fault event can fire after the workload drains (the
            // injector cancels it, but the queue clock has already
            // advanced); the step ends when its last span does.
            if (trace_.spanCount() > 0)
                stats.stepTime = trace_.maxEnd();
            const FaultCounters &fc = faults_->counters();
            stats.faultFailures = fc.failures;
            stats.faultRetries = fc.retries;
            stats.faultCrashes = fc.crashes;
            stats.faultSeconds = fc.seconds();
        }
        for (int g = 0; g < numGpus(); ++g) {
            stats.computeTime += usage_.computeTime(g);
            stats.exposedCommTime += usage_.exposedCommTime(g);
            stats.overlappedCommTime += usage_.overlappedCommTime(g);
        }
        if (MetricsRegistry *m = activeMetrics()) {
            m->histogram("step.time").record(stats.stepTime);
            for (int g = 0; g < numGpus(); ++g) {
                std::string p = "gpu" + std::to_string(g);
                double compute = usage_.computeTime(g);
                double exposed = usage_.exposedCommTime(g);
                m->counter(p + ".compute.seconds").add(compute);
                m->counter(p + ".exposed_comm.seconds").add(exposed);
                m->counter(p + ".overlapped_comm.seconds")
                    .add(usage_.overlappedCommTime(g));
                // Idle: step wall time not spent computing or
                // blocked on exposed communication.
                double idle = stats.stepTime - compute - exposed;
                m->counter(p + ".idle.seconds")
                    .add(idle > 0.0 ? idle : 0.0);
                m->gauge(p + ".mem.peak_bytes")
                    .set(static_cast<double>(memory_[static_cast<
                        std::size_t>(g)]->peak()));
            }
            m->counter("sim.events.executed")
                .add(static_cast<double>(queue_.executed()));
            m->counter("sim.events.clamped")
                .add(static_cast<double>(queue_.clamped()));
            m->gauge("sim.drift.max_seconds").set(queue_.maxDrift());
            m->counter("cpu.optimizer.busy_seconds")
                .add(cpuOptimizer_.busyTime());
            // Critical-path blame table over the completed-span DAG
            // (obs/critical_path.hh); the categories sum to the
            // step time by construction.
            if (trace_.spanCount() > 0) {
                StepAttribution a = attributeStep(trace_);
                m->counter("attrib.critical.compute.seconds")
                    .add(a.critical.compute);
                m->counter("attrib.critical.transfer.seconds")
                    .add(a.critical.transfer);
                m->counter("attrib.critical.queue.seconds")
                    .add(a.critical.queue);
                m->counter("attrib.critical.optimizer.seconds")
                    .add(a.critical.optimizer);
                m->counter("attrib.critical.fault.seconds")
                    .add(a.critical.fault);
                m->counter("attrib.critical.bubble.seconds")
                    .add(a.critical.bubble);
                m->counter("attrib.queue.total.seconds")
                    .add(a.totalQueueWait);
                for (const auto &g : a.gpus) {
                    m->gauge("gpu" + std::to_string(g.gpu) +
                             ".bubble.fraction")
                        .set(g.bubbleFraction);
                }
            }
        }
        return stats;
    }

  private:
    const Server *server_;
    MetricsRegistry *metrics_ = nullptr;
    EventQueue queue_;
    TraceRecorder trace_;
    UsageTracker usage_;
    TransferEngine xfer_;
    CpuOptimizer cpuOptimizer_;
    std::vector<std::unique_ptr<ComputeEngine>> compute_;
    std::vector<std::unique_ptr<GpuMemory>> memory_;
    std::unique_ptr<FaultInjector> faults_;
    std::function<bool()> extraBusy_;
};

} // namespace mobius

#endif // MOBIUS_RUNTIME_RUN_CONTEXT_HH
