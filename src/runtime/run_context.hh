/**
 * @file
 * Everything one simulated training step runs on: the event queue,
 * the transfer engine over the server's topology, one compute engine
 * and one memory ledger per GPU, and the usage tracker feeding Fig. 8.
 */

#ifndef MOBIUS_RUNTIME_RUN_CONTEXT_HH
#define MOBIUS_RUNTIME_RUN_CONTEXT_HH

#include <memory>
#include <vector>

#include "hw/server.hh"
#include "runtime/cpu_optimizer.hh"
#include "runtime/gpu_memory.hh"
#include "runtime/step_stats.hh"
#include "xfer/compute_engine.hh"
#include "xfer/transfer_engine.hh"

namespace mobius
{

/** Simulation context for one step on one server. */
class RunContext
{
  public:
    explicit RunContext(const Server &server,
                        TransferEngineConfig xfer_cfg = {},
                        double cpu_adam_throughput = 0.0)
        : server_(&server),
          usage_(queue_, server.topo.numGpus()),
          xfer_(queue_, server.topo, &usage_, xfer_cfg, &trace_),
          cpuOptimizer_(queue_, cpu_adam_throughput, &trace_)
    {
        for (int g = 0; g < server.topo.numGpus(); ++g) {
            compute_.push_back(std::make_unique<ComputeEngine>(
                queue_, &usage_, g, &trace_));
            memory_.push_back(std::make_unique<GpuMemory>(
                server.topo.gpuSpec(g).memBytes));
        }
    }

    const Server &server() const { return *server_; }
    int numGpus() const { return server_->topo.numGpus(); }

    EventQueue &queue() { return queue_; }
    UsageTracker &usage() { return usage_; }
    TraceRecorder &trace() { return trace_; }
    TransferEngine &xfer() { return xfer_; }
    CpuOptimizer &cpuOptimizer() { return cpuOptimizer_; }
    ComputeEngine &compute(int gpu) { return *compute_[gpu]; }
    GpuMemory &memory(int gpu) { return *memory_[gpu]; }

    /**
     * Drain the event queue and collect the step's statistics.
     * @param system label recorded in the stats.
     */
    StepStats
    finish(const std::string &system)
    {
        queue_.run();
        StepStats stats;
        stats.system = system;
        stats.stepTime = queue_.now();
        stats.numGpus = numGpus();
        stats.traffic = xfer_.stats();
        for (int g = 0; g < numGpus(); ++g) {
            stats.computeTime += usage_.computeTime(g);
            stats.exposedCommTime += usage_.exposedCommTime(g);
            stats.overlappedCommTime += usage_.overlappedCommTime(g);
        }
        return stats;
    }

  private:
    const Server *server_;
    EventQueue queue_;
    TraceRecorder trace_;
    UsageTracker usage_;
    TransferEngine xfer_;
    CpuOptimizer cpuOptimizer_;
    std::vector<std::unique_ptr<ComputeEngine>> compute_;
    std::vector<std::unique_ptr<GpuMemory>> memory_;
};

} // namespace mobius

#endif // MOBIUS_RUNTIME_RUN_CONTEXT_HH
