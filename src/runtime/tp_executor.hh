/**
 * @file
 * Megatron-style tensor (model) parallelism baseline — the "model
 * parallelism" alternative of the paper's related-work discussion
 * (§5), provided as an extra comparator beyond the paper's own
 * baselines.
 *
 * Every layer is sharded across all GPUs (weights and gradients
 * resident, 1/N each; the optimizer state lives in DRAM as in the
 * other systems). Each microbatch runs forward and then backward
 * through the whole model in lockstep; a transformer block costs two
 * activation all-reduces in the forward and two in the backward
 * pass. On commodity servers those collectives are staged through
 * the CPU root complexes; and the per-GPU weight shard must fit in
 * device memory, which bounds the trainable scale (the 51B model
 * OOMs on 24 GB GPUs).
 */

#ifndef MOBIUS_RUNTIME_TP_EXECUTOR_HH
#define MOBIUS_RUNTIME_TP_EXECUTOR_HH

#include <vector>

#include "model/cost_model.hh"
#include "runtime/run_context.hh"

namespace mobius
{

/** Tensor-parallel executor tunables. */
struct TpExecutorConfig
{
    /**
     * Relative compute efficiency of N-way sharded GEMMs (narrow
     * matrices waste tensor-core tiles).
     */
    double shardEfficiency = 0.8;
    /** All-reduces per transformer block, forward (Megatron: 2). */
    int allReducesPerBlock = 2;
    int prioCollective = 1; //!< all-reduce pieces
    int prioGradient = 20;  //!< gradient flushes
};

/** Runs one tensor-parallel training step. */
class TensorParallelExecutor
{
  public:
    /** Bind the executor to a run context and tunables. */
    TensorParallelExecutor(RunContext &ctx, const CostModel &cost,
                           TpExecutorConfig cfg = {});

    /** Execute one step and return its measurements. */
    StepStats run();

  private:
    /**
     * Slot sequence per microbatch: forward layers 0..L-1 then
     * backward layers L-1..0; microbatches run back to back.
     * slot = m * 2L + (k in [0, 2L)).
     */
    int slotLayer(int slot) const;
    bool slotIsBwd(int slot) const;

    Bytes collectiveBytes(int layer) const;
    void startCompute(int gpu);
    void onCompute(int gpu, int slot);
    void onPiece(int gpu, int slot);

    RunContext &ctx_;
    const CostModel &cost_;
    TpExecutorConfig cfg_;
    int numLayers_ = 0;
    int slots_ = 0;

    struct GpuState
    {
        int slot = 0;              //!< next/current slot
        bool computing = false;
        bool computeDone = false;  //!< this slot's compute finished
        int piecesLeft = 0;        //!< collective pieces outstanding

        /** Span of this GPU's most recent compute. */
        SpanId computeSpan = kNoSpan;
        /** Collective-piece spans gating the next slot's compute. */
        std::vector<SpanId> nextDeps;
    };

    std::vector<GpuState> gpus_;
    /** sent_[slot][src * N + dst] piece submitted. */
    std::vector<std::vector<bool>> sent_;

    Counter *mAllReducePieces_ = nullptr;
    Counter *mGradFlushes_ = nullptr;
};

} // namespace mobius

#endif // MOBIUS_RUNTIME_TP_EXECUTOR_HH
