#include "runtime/pipeline_executor.hh"

#include "base/logging.hh"

namespace mobius
{

const char *
pipelineScheduleName(PipelineSchedule schedule)
{
    switch (schedule) {
      case PipelineSchedule::GPipe:    return "GPipe";
      case PipelineSchedule::OneFOneB: return "DeepSpeed-pipeline";
    }
    return "?";
}

PipelineExecutor::PipelineExecutor(RunContext &ctx,
                                   const CostModel &cost,
                                   Partition partition,
                                   Mapping mapping,
                                   PipelineSchedule schedule)
    : ctx_(ctx), cost_(cost), partition_(std::move(partition)),
      mapping_(std::move(mapping)), schedule_(schedule)
{
    checkPartition(partition_, cost_.numLayers());
    S_ = static_cast<int>(partition_.size());
    M_ = cost_.cfg().numMicrobatches;
    const int N = ctx_.numGpus();
    if (S_ != N) {
        fatal("%s maps one stage per GPU: %d stages vs %d GPUs",
              pipelineScheduleName(schedule_), S_, N);
    }

    stages_.resize(static_cast<std::size_t>(S_));
    gpuBusy_.assign(static_cast<std::size_t>(N), false);
    stageOfGpu_.assign(static_cast<std::size_t>(N), -1);

    if (MetricsRegistry *m = ctx_.activeMetrics()) {
        mFwdMicrobatches_ = &m->counter("pipe.fwd.microbatches");
        mBwdMicrobatches_ = &m->counter("pipe.bwd.microbatches");
    }

    for (int j = 0; j < S_; ++j) {
        const StageRange &r = partition_[j];
        StageState &s = stages_[j];
        s.tFwd = cost_.rangeFwdTime(r.lo, r.hi);
        s.tBwd = cost_.rangeBwdTime(r.lo, r.hi);
        s.aOutBytes = cost_.actBytes(r.hi - 1);
        s.gpu = mapping_.gpuOf(j);
        if (stageOfGpu_[s.gpu] >= 0)
            fatal("two stages mapped to GPU %d", s.gpu);
        stageOfGpu_[s.gpu] = j;
        s.actReady.assign(static_cast<std::size_t>(M_), j == 0);
        s.gradReady.assign(static_cast<std::size_t>(M_), false);
        s.actReadySpan.assign(static_cast<std::size_t>(M_), kNoSpan);
        s.gradReadySpan.assign(static_cast<std::size_t>(M_),
                               kNoSpan);
        s.fwdSpan.assign(static_cast<std::size_t>(M_), kNoSpan);

        // Memory check: everything resident (OOM rows of Fig. 5).
        // 1F1B caps in-flight microbatches at pipeline-depth-minus-
        // rank; GPipe keeps all M.
        int in_flight = schedule_ == PipelineSchedule::GPipe
            ? M_
            : std::min(M_, S_ - j);
        Bytes need = cost_.stageMemResident(r.lo, r.hi, in_flight);
        Bytes cap = ctx_.memory(s.gpu).capacity();
        if (need > cap) {
            fatal("%s out of memory: stage %d needs %s, GPU %d has "
                  "%s",
                  pipelineScheduleName(schedule_), j,
                  formatBytes(need).c_str(), s.gpu,
                  formatBytes(cap).c_str());
        }
        ctx_.memory(s.gpu).alloc(need);
    }
}

bool
PipelineExecutor::fwdReady(int stage) const
{
    const StageState &s = stages_[stage];
    return s.nextFwdMb < M_ && s.actReady[s.nextFwdMb];
}

bool
PipelineExecutor::bwdReady(int stage) const
{
    const StageState &s = stages_[stage];
    if (s.nextBwdMb >= M_)
        return false;
    if (stage == S_ - 1) {
        if (schedule_ == PipelineSchedule::GPipe)
            return s.fwdDone == M_ && s.nextBwdMb < s.fwdDone;
        return s.nextBwdMb < s.fwdDone; // 1F1B: own fwd suffices
    }
    return s.gradReady[s.nextBwdMb];
}

void
PipelineExecutor::schedule(int gpu)
{
    if (gpuBusy_[gpu])
        return;
    int stage = stageOfGpu_[gpu];
    StageState &s = stages_[stage];

    // 1F1B prefers backward work when both are ready; GPipe has no
    // choice (backward only unblocks after every forward is done).
    bool do_bwd;
    if (bwdReady(stage) && fwdReady(stage))
        do_bwd = schedule_ == PipelineSchedule::OneFOneB;
    else if (bwdReady(stage))
        do_bwd = true;
    else if (fwdReady(stage))
        do_bwd = false;
    else
        return;

    gpuBusy_[gpu] = true;
    if (do_bwd) {
        int mb = s.nextBwdMb++;
        // Gated by the gradient from downstream (or, on the last
        // stage, its own forward — Eq. 11) and the previous compute
        // on this GPU (Eq. 9).
        SpanId gate = stage == S_ - 1
            ? s.fwdSpan[static_cast<std::size_t>(mb)]
            : s.gradReadySpan[static_cast<std::size_t>(mb)];
        ctx_.compute(gpu).submit(
            s.tBwd, [this, stage, mb] { onBwdCompute(stage, mb); },
            strfmt("B%d,%d", stage, mb), {gate, s.lastSpan}, stage);
    } else {
        int mb = s.nextFwdMb++;
        ctx_.compute(gpu).submit(
            s.tFwd, [this, stage, mb] { onFwdCompute(stage, mb); },
            strfmt("F%d,%d", stage, mb),
            {s.actReadySpan[static_cast<std::size_t>(mb)],
             s.lastSpan},
            stage);
    }
}

void
PipelineExecutor::onFwdCompute(int stage, int mb)
{
    StageState &s = stages_[stage];
    gpuBusy_[s.gpu] = false;
    ++s.fwdDone;
    s.lastSpan = ctx_.compute(s.gpu).lastSpanId();
    s.fwdSpan[static_cast<std::size_t>(mb)] = s.lastSpan;
    if (mFwdMicrobatches_)
        mFwdMicrobatches_->add();

    if (stage + 1 < S_) {
        StageState &next = stages_[stage + 1];
        TransferRequest act;
        act.src = Endpoint::gpuAt(s.gpu);
        act.dst = Endpoint::gpuAt(next.gpu);
        act.bytes = s.aOutBytes;
        act.kind = TrafficKind::Activation;
        act.priority = 1;
        act.label = strfmt("a%d,%d", stage, mb);
        act.deps = {s.lastSpan};
        act.stage = stage + 1;
        int nstage = stage + 1;
        act.onComplete = [this, nstage, mb] {
            stages_[nstage].actReady[mb] = true;
            stages_[nstage]
                .actReadySpan[static_cast<std::size_t>(mb)] =
                ctx_.xfer().lastSpanId();
            schedule(stages_[nstage].gpu);
        };
        ctx_.submitXfer(act);
    }
    schedule(s.gpu);
}

void
PipelineExecutor::onBwdCompute(int stage, int mb)
{
    StageState &s = stages_[stage];
    gpuBusy_[s.gpu] = false;
    ++s.bwdDone;
    s.lastSpan = ctx_.compute(s.gpu).lastSpanId();
    if (mBwdMicrobatches_)
        mBwdMicrobatches_->add();

    if (stage > 0) {
        StageState &prev = stages_[stage - 1];
        TransferRequest g;
        g.src = Endpoint::gpuAt(s.gpu);
        g.dst = Endpoint::gpuAt(prev.gpu);
        g.bytes = prev.aOutBytes;
        g.kind = TrafficKind::ActivationGrad;
        g.priority = 1;
        g.label = strfmt("g%d,%d", stage, mb);
        g.deps = {s.lastSpan};
        g.stage = stage - 1;
        int pstage = stage - 1;
        g.onComplete = [this, pstage, mb] {
            stages_[pstage].gradReady[mb] = true;
            stages_[pstage]
                .gradReadySpan[static_cast<std::size_t>(mb)] =
                ctx_.xfer().lastSpanId();
            schedule(stages_[pstage].gpu);
        };
        ctx_.submitXfer(g);
    }
    schedule(s.gpu);
}

StepStats
PipelineExecutor::run()
{
    for (int g = 0; g < ctx_.numGpus(); ++g)
        schedule(g);
    StepStats stats = ctx_.finish(pipelineScheduleName(schedule_));
    for (int j = 0; j < S_; ++j) {
        if (stages_[j].bwdDone != M_)
            panic("%s deadlocked: stage %d at %d/%d bwd",
                  pipelineScheduleName(schedule_), j,
                  stages_[j].bwdDone, M_);
    }
    return stats;
}

} // namespace mobius
