#include "runtime/report.hh"

#include <sstream>

namespace mobius
{

std::string
stepStatsToJson(const StepStats &stats, Bytes model_bytes_fp32)
{
    std::ostringstream os;
    os.precision(9);
    os << "{\"system\":\"" << stats.system << "\""
       << ",\"step_seconds\":" << stats.stepTime
       << ",\"num_gpus\":" << stats.numGpus
       << ",\"traffic_bytes\":" << stats.traffic.totalBytes()
       << ",\"compute_seconds\":" << stats.computeTime
       << ",\"exposed_comm_seconds\":" << stats.exposedCommTime
       << ",\"overlapped_comm_seconds\":"
       << stats.overlappedCommTime
       << ",\"exposed_comm_fraction\":"
       << stats.exposedCommFraction();
    if (model_bytes_fp32 > 0) {
        os << ",\"model_bytes_fp32\":" << model_bytes_fp32
           << ",\"traffic_ratio\":"
           << stats.trafficRatio(model_bytes_fp32);
    }
    os << ",\"traffic\":{";
    bool first = true;
    for (auto kind :
         {TrafficKind::Parameter, TrafficKind::Activation,
          TrafficKind::ActivationGrad, TrafficKind::Gradient}) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << trafficKindName(kind)
           << "\":" << stats.traffic.bytesOf(kind);
    }
    os << "}";
    if (stats.faultFailures > 0 || stats.faultRetries > 0 ||
        stats.faultCrashes > 0 || stats.faultSeconds > 0.0) {
        os << ",\"fault\":{\"failures\":" << stats.faultFailures
           << ",\"retries\":" << stats.faultRetries
           << ",\"crashes\":" << stats.faultCrashes
           << ",\"seconds\":" << stats.faultSeconds << "}";
    }
    os << "}";
    return os.str();
}

std::string
planToJson(const MobiusPlan &plan)
{
    std::ostringstream os;
    os.precision(9);
    os << "{\"stages\":[";
    for (std::size_t j = 0; j < plan.partition.size(); ++j) {
        if (j)
            os << ",";
        os << "{\"lo\":" << plan.partition[j].lo
           << ",\"hi\":" << plan.partition[j].hi
           << ",\"gpu\":" << plan.mapping.gpuOf(static_cast<int>(j))
           << "}";
    }
    os << "],\"gpu_order\":[";
    for (std::size_t g = 0; g < plan.mapping.gpuOrder.size(); ++g) {
        if (g)
            os << ",";
        os << plan.mapping.gpuOrder[g];
    }
    os << "],\"contention_degree\":" << plan.mapping.contention
       << ",\"estimate_seconds\":" << plan.estimate.stepTime
       << ",\"profiling_seconds\":" << plan.profilingSeconds
       << ",\"solve_seconds\":" << plan.solveSeconds
       << ",\"mapping_seconds\":" << plan.mappingSeconds << "}";
    return os.str();
}

std::string
manifestToJson(const RunManifest &m)
{
    std::ostringstream os;
    os << "{\"model\":\"" << m.model << "\""
       << ",\"topo\":\"" << m.topo << "\""
       << ",\"system\":\"" << m.system << "\""
       << ",\"partition\":\"" << m.partition << "\""
       << ",\"mapping\":\"" << m.mapping << "\""
       << ",\"microbatch_size\":" << m.microbatchSize
       << ",\"num_microbatches\":" << m.numMicrobatches
       << ",\"steps\":" << m.steps
       << ",\"trace_file\":\"" << m.traceFile << "\""
       << ",\"metrics_file\":\"" << m.metricsFile << "\"}";
    return os.str();
}

FineTuneEstimate
estimateFineTune(const Server &server, double step_seconds,
                 int steps)
{
    FineTuneEstimate est;
    est.hours = step_seconds * steps / 3600.0;
    est.dollars = est.hours * server.dollarsPerHour;
    return est;
}

} // namespace mobius
