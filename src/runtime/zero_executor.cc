#include "runtime/zero_executor.hh"

#include "base/logging.hh"

namespace mobius
{

ZeroHeteroExecutor::ZeroHeteroExecutor(RunContext &ctx,
                                       const CostModel &cost,
                                       ZeroExecutorConfig cfg)
    : ctx_(ctx), cost_(cost), cfg_(cfg),
      numLayers_(cost.numLayers())
{
    const int slots = 2 * numLayers_;
    const int n = ctx_.numGpus();
    gpus_.resize(static_cast<std::size_t>(n));
    for (auto &g : gpus_) {
        g.gathered.assign(static_cast<std::size_t>(slots), false);
        g.shardDone.assign(static_cast<std::size_t>(slots), false);
        g.gatherRemaining.assign(static_cast<std::size_t>(slots), 0);
        g.held.assign(static_cast<std::size_t>(slots), 0);
        g.gatherSpans.assign(static_cast<std::size_t>(slots), {});
    }
    gatherCount_.assign(static_cast<std::size_t>(slots), 0);
    slotBarrierSpan_.assign(static_cast<std::size_t>(slots),
                            kNoSpan);
    gradLanded_.assign(static_cast<std::size_t>(numLayers_), 0);
    peerSent_.assign(static_cast<std::size_t>(slots),
                     std::vector<bool>(static_cast<std::size_t>(n) *
                                           static_cast<std::size_t>(n),
                                       false));

    if (MetricsRegistry *m = ctx_.activeMetrics()) {
        mAllocStalls_.resize(static_cast<std::size_t>(n));
        for (int g = 0; g < n; ++g) {
            mAllocStalls_[static_cast<std::size_t>(g)] =
                &m->counter("gpu" + std::to_string(g) +
                            ".alloc.stalls");
        }
        mShardFetches_ = &m->counter("zero.shard.fetches");
        mGathersDone_ = &m->counter("zero.gathers.completed");
    }

    // The largest single layer (weights + live set + gradients) must
    // fit; otherwise even ZeRO cannot train the model.
    for (int l = 0; l < numLayers_; ++l) {
        Bytes need = cost_.stageMemBwd(l, l + 1);
        for (int g = 0; g < n; ++g) {
            if (need > ctx_.memory(g).capacity()) {
                fatal("ZeRO: layer %d needs %s but GPU %d has %s", l,
                      formatBytes(need).c_str(), g,
                      formatBytes(ctx_.memory(g).capacity()).c_str());
            }
        }
    }
}

int
ZeroHeteroExecutor::slotLayer(int k) const
{
    return k < numLayers_ ? k : 2 * numLayers_ - 1 - k;
}

void
ZeroHeteroExecutor::pump(int gpu)
{
    GpuState &g = gpus_[gpu];
    const int slots = 2 * numLayers_;
    const int n = ctx_.numGpus();

    while (g.nextFetch < slots &&
           g.nextFetch <= g.nextCompute + cfg_.lookahead) {
        int k = g.nextFetch;
        int layer = slotLayer(k);
        Bytes need = slotIsBwd(k)
            ? cost_.stageMemBwd(layer, layer + 1)
            : cost_.stageMemFwd(layer, layer + 1);
        if (!ctx_.memory(gpu).tryAlloc(need)) {
            if (!mAllocStalls_.empty())
                mAllocStalls_[static_cast<std::size_t>(gpu)]->add();
            break;
        }
        g.held[k] = need;
        ++g.nextFetch;
        g.gatherRemaining[k] = n; // own shard + (n-1) peer pieces
        if (mShardFetches_)
            mShardFetches_->add();

        // ZeRO-3 + offload all-gather, step 1: fetch this rank's
        // 1/N parameter shard from DRAM.
        Bytes shard = cost_.paramBytes(layer) /
            static_cast<Bytes>(n);
        TransferRequest req;
        req.src = Endpoint::dram();
        req.dst = Endpoint::gpuAt(gpu);
        req.bytes = shard;
        req.kind = TrafficKind::Parameter;
        req.priority = cfg_.prioWeights + k;
        req.label = strfmt("%c%d.shard", slotIsBwd(k) ? 'b' : 'f',
                           layer);
        req.deps = {g.memFreedBy};
        req.stage = layer;
        req.onComplete = [this, gpu, k] {
            gpus_[gpu].gatherSpans[static_cast<std::size_t>(k)]
                .push_back(ctx_.xfer().lastSpanId());
            onShard(gpu, k);
        };
        ctx_.submitXfer(req);

        // Backward additionally uploads the layer's checkpointed
        // input activation (A_DeepSpeed).
        if (slotIsBwd(k) && cost_.inActBytes(layer) > 0) {
            TransferRequest up;
            up.src = Endpoint::dram();
            up.dst = Endpoint::gpuAt(gpu);
            up.bytes = cost_.inActBytes(layer);
            up.kind = TrafficKind::Activation;
            up.priority = cfg_.prioCheckpoint;
            up.label = strfmt("c%d", layer);
            up.deps = {g.memFreedBy};
            up.stage = layer;
            ctx_.submitXfer(up);
        }
    }
}

void
ZeroHeteroExecutor::sendPeerPiece(int src, int dst, int k)
{
    const int n = ctx_.numGpus();
    auto &sent = peerSent_[k];
    std::size_t idx = static_cast<std::size_t>(src) *
            static_cast<std::size_t>(n) +
        static_cast<std::size_t>(dst);
    if (sent[idx])
        return;
    sent[idx] = true;

    int layer = slotLayer(k);
    Bytes piece = cost_.paramBytes(layer) / static_cast<Bytes>(n);
    TransferRequest req;
    req.src = Endpoint::gpuAt(src);
    req.dst = Endpoint::gpuAt(dst);
    req.bytes = piece;
    req.kind = TrafficKind::Parameter;
    req.priority = cfg_.prioWeights + k;
    req.label = strfmt("ag%d:%d>%d", layer, src, dst);
    // The sender could not forward a shard it did not have yet.
    auto &spans =
        gpus_[src].gatherSpans[static_cast<std::size_t>(k)];
    req.deps = {spans.empty() ? kNoSpan : spans.front()};
    req.stage = layer;
    req.onComplete = [this, dst, k] {
        gpus_[dst].gatherSpans[static_cast<std::size_t>(k)]
            .push_back(ctx_.xfer().lastSpanId());
        onPiece(dst, k);
    };
    ctx_.submitXfer(req);
}

void
ZeroHeteroExecutor::onShard(int gpu, int k)
{
    GpuState &g = gpus_[gpu];
    g.shardDone[k] = true;

    // All-gather, step 2: exchange shards with every rank that also
    // has its shard resident (both directions per pair). Without
    // GPUDirect P2P each piece is staged through the CPU root
    // complexes, which is where DeepSpeed's contention comes from
    // (§2.3); with NVLink it flows over the mesh.
    for (int other = 0; other < ctx_.numGpus(); ++other) {
        if (other == gpu || !gpus_[other].shardDone[k])
            continue;
        sendPeerPiece(gpu, other, k);
        sendPeerPiece(other, gpu, k);
    }
    onPiece(gpu, k); // own shard counts towards the gather
}

void
ZeroHeteroExecutor::onPiece(int gpu, int k)
{
    GpuState &g = gpus_[gpu];
    if (--g.gatherRemaining[k] > 0)
        return;
    g.gathered[k] = true;
    ++gatherCount_[k];
    if (mGathersDone_)
        mGathersDone_->add();
    if (cfg_.layerSync && gatherCount_[k] == ctx_.numGpus()) {
        // Collective completed everywhere: all ranks may proceed.
        // The transfer that just landed is the barrier release.
        slotBarrierSpan_[static_cast<std::size_t>(k)] =
            ctx_.xfer().lastSpanId();
        for (int other = 0; other < ctx_.numGpus(); ++other)
            tryCompute(other);
    } else {
        tryCompute(gpu);
    }
}

void
ZeroHeteroExecutor::tryCompute(int gpu)
{
    GpuState &g = gpus_[gpu];
    const int slots = 2 * numLayers_;
    if (g.busy || g.nextCompute >= slots)
        return;
    int k = g.nextCompute;
    if (!g.gathered[k])
        return;
    if (cfg_.layerSync && gatherCount_[k] < ctx_.numGpus())
        return;

    g.busy = true;
    int layer = slotLayer(k);
    double t = slotIsBwd(k) ? cost_.bwdTime(layer)
                            : cost_.fwdTime(layer);
    // Gated by this rank's gathered pieces, the collective barrier
    // (layerSync), and the previous compute on this GPU.
    std::vector<SpanId> deps =
        g.gatherSpans[static_cast<std::size_t>(k)];
    if (cfg_.layerSync)
        deps.push_back(slotBarrierSpan_[static_cast<std::size_t>(k)]);
    deps.push_back(g.lastComputeSpan);
    ctx_.compute(gpu).submit(
        t, [this, gpu, k] { onCompute(gpu, k); },
        strfmt("%c%d", slotIsBwd(k) ? 'b' : 'f', layer),
        std::move(deps), layer);
}

void
ZeroHeteroExecutor::onCompute(int gpu, int k)
{
    GpuState &g = gpus_[gpu];
    g.busy = false;
    ++g.nextCompute;
    g.lastComputeSpan = ctx_.compute(gpu).lastSpanId();
    int layer = slotLayer(k);

    if (!slotIsBwd(k)) {
        // Offload the input checkpoint for the backward pass.
        if (cost_.inActBytes(layer) > 0) {
            TransferRequest off;
            off.src = Endpoint::gpuAt(gpu);
            off.dst = Endpoint::dram();
            off.bytes = cost_.inActBytes(layer);
            off.kind = TrafficKind::Activation;
            off.priority = cfg_.prioCheckpoint;
            off.label = strfmt("ckpt%d", layer);
            off.deps = {g.lastComputeSpan};
            off.stage = layer;
            ctx_.submitXfer(off);
        }
    } else {
        // Reduce-scatter this rank's FP16 layer gradients: (N-1)/N
        // goes to the peers that own those shards (staged through
        // the host on commodity boxes, NVLink on data-center ones),
        // then the rank's own reduced 1/N shard is offloaded to DRAM
        // for the CPU optimizer. Aggregate wire traffic is
        // G_DeepSpeed = N x gradient size on commodity servers
        // (Eq. 2).
        const int n = ctx_.numGpus();
        Bytes piece = cost_.gradBytes(layer) /
            static_cast<Bytes>(n);
        for (int other = 0; other < n; ++other) {
            if (other == gpu)
                continue;
            TransferRequest rs;
            rs.src = Endpoint::gpuAt(gpu);
            rs.dst = Endpoint::gpuAt(other);
            rs.bytes = piece;
            rs.kind = TrafficKind::Gradient;
            rs.priority = cfg_.prioGradient;
            rs.label = strfmt("rs%d:%d>%d", layer, gpu, other);
            rs.deps = {g.lastComputeSpan};
            rs.stage = layer;
            ctx_.submitXfer(rs);
        }
        TransferRequest grad;
        grad.src = Endpoint::gpuAt(gpu);
        grad.dst = Endpoint::dram();
        grad.bytes = piece;
        grad.kind = TrafficKind::Gradient;
        grad.priority = cfg_.prioGradient;
        grad.label = strfmt("flush l%d", layer);
        grad.deps = {g.lastComputeSpan};
        grad.stage = layer;
        int lyr = layer;
        grad.onComplete = [this, lyr] {
            if (++gradLanded_[lyr] == ctx_.numGpus()) {
                ctx_.cpuOptimizer().apply(
                    cost_.model().layers[lyr].paramCount,
                    strfmt("adam l%d", lyr),
                    {ctx_.xfer().lastSpanId()}, lyr);
            }
        };
        ctx_.submitXfer(grad);
    }

    // Release the slot's memory and refill the prefetch window.
    ctx_.memory(gpu).free(g.held[k]);
    g.held[k] = 0;
    g.memFreedBy = g.lastComputeSpan;
    pump(gpu);
    tryCompute(gpu);
}

StepStats
ZeroHeteroExecutor::run()
{
    for (int g = 0; g < ctx_.numGpus(); ++g)
        pump(g);
    StepStats stats = ctx_.finish("DeepSpeed");
    for (int g = 0; g < ctx_.numGpus(); ++g) {
        if (gpus_[g].nextCompute != 2 * numLayers_)
            panic("ZeRO step deadlocked on GPU %d (%d/%d slots)", g,
                  gpus_[g].nextCompute, 2 * numLayers_);
    }
    return stats;
}

} // namespace mobius
