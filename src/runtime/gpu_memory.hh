/**
 * @file
 * Per-GPU memory ledger. Executors account every byte they place on a
 * device; exceeding the capacity is a hard failure (the "OOM" rows of
 * Fig. 5 come from PipelineExecutor hitting exactly this).
 */

#ifndef MOBIUS_RUNTIME_GPU_MEMORY_HH
#define MOBIUS_RUNTIME_GPU_MEMORY_HH

#include "base/logging.hh"
#include "base/units.hh"

namespace mobius
{

/** Byte ledger for one GPU. */
class GpuMemory
{
  public:
    /** A pool of @p capacity bytes, all free. */
    explicit GpuMemory(Bytes capacity) : capacity_(capacity) {}

    Bytes capacity() const { return capacity_; }         //!< total
    Bytes used() const { return used_; }                 //!< in use
    Bytes available() const { return capacity_ - used_; } //!< free
    Bytes peak() const { return peak_; }  //!< high-water mark

    /** @return true and allocate when @p bytes fit, false otherwise. */
    bool
    tryAlloc(Bytes bytes)
    {
        if (bytes > available())
            return false;
        used_ += bytes;
        peak_ = std::max(peak_, used_);
        return true;
    }

    /** Allocate or die: callers must have validated fit. */
    void
    alloc(Bytes bytes)
    {
        if (!tryAlloc(bytes)) {
            fatal("GPU out of memory: requested %s with %s free of %s",
                  formatBytes(bytes).c_str(),
                  formatBytes(available()).c_str(),
                  formatBytes(capacity_).c_str());
        }
    }

    /** Return @p bytes to the pool; panics on over-free. */
    void
    free(Bytes bytes)
    {
        if (bytes > used_)
            panic("freeing %llu bytes but only %llu allocated",
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(used_));
        used_ -= bytes;
    }

  private:
    Bytes capacity_;
    Bytes used_ = 0;
    Bytes peak_ = 0;
};

} // namespace mobius

#endif // MOBIUS_RUNTIME_GPU_MEMORY_HH
