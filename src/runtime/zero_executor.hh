/**
 * @file
 * DeepSpeed baseline: ZeRO-3 data parallelism with heterogeneous
 * memory (§2.3), the paper's primary comparison system.
 *
 * Parameters live sharded in DRAM. For every layer, every GPU gathers
 * the full FP16 layer weights (the all-gather; on a commodity server
 * every byte of it crosses the CPU root complexes, so all GPUs fetch
 * concurrently and contend — the Fig. 2 CDF). Each GPU computes the
 * layer on its own microbatch (data parallel), forward then backward;
 * the backward re-gathers weights and pushes every GPU's FP16 layer
 * gradients back to DRAM where the CPU optimizer reduces and applies
 * them. Per-step traffic is therefore
 *     2N x (P/2) + N x (P/4) = 1.5N x P      (Eq. 2)
 * for FP32 model size P, ~7.3x the model size at N = 4 with
 * activation checkpoints included, matching §2.3.
 */

#ifndef MOBIUS_RUNTIME_ZERO_EXECUTOR_HH
#define MOBIUS_RUNTIME_ZERO_EXECUTOR_HH

#include <vector>

#include "model/cost_model.hh"
#include "runtime/run_context.hh"

namespace mobius
{

/** ZeRO executor tunables. */
struct ZeroExecutorConfig
{
    /** Layers of weight prefetch lookahead (DeepSpeed prefetches). */
    int lookahead = 1;
    /**
     * Collective semantics: a layer's compute may start only once
     * every GPU finished gathering it (all-gather is a barrier).
     */
    bool layerSync = true;
    int prioWeights = 10;    //!< weight-shard all-gathers
    int prioCheckpoint = 30; //!< checkpoint offload/reload
    int prioGradient = 20;   //!< gradient reduce-scatter
};

/** Runs one DeepSpeed-style (ZeRO-3 + offload) training step. */
class ZeroHeteroExecutor
{
  public:
    /** Bind the executor to a run context and tunables. */
    ZeroHeteroExecutor(RunContext &ctx, const CostModel &cost,
                       ZeroExecutorConfig cfg = {});

    /** Execute one step and return its measurements. */
    StepStats run();

  private:
    /**
     * Execution slots: k in [0, L) is the forward of layer k;
     * k in [L, 2L) is the backward of layer 2L-1-k.
     */
    int slotLayer(int k) const;
    bool slotIsBwd(int k) const { return k >= numLayers_; }

    void pump(int gpu);
    void sendPeerPiece(int src, int dst, int k);
    void onShard(int gpu, int k);
    void onPiece(int gpu, int k);
    void tryCompute(int gpu);
    void onCompute(int gpu, int k);

    RunContext &ctx_;
    const CostModel &cost_;
    ZeroExecutorConfig cfg_;
    int numLayers_ = 0;

    struct GpuState
    {
        int nextFetch = 0;    //!< next slot to gather weights for
        int nextCompute = 0;  //!< next slot to run
        bool busy = false;
        std::vector<bool> gathered;   //!< per slot: all pieces in
        std::vector<bool> shardDone;  //!< per slot: own shard in
        std::vector<int> gatherRemaining; //!< pieces still missing
        std::vector<Bytes> held;      //!< bytes resident per slot

        /** Per slot: spans of the shard/piece transfers gathered
         *  here — the causal inputs of the slot's compute. */
        std::vector<std::vector<SpanId>> gatherSpans;
        /** Last compute on this GPU (serialisation edge). */
        SpanId lastComputeSpan = kNoSpan;
        /** Compute whose completion last freed memory here. */
        SpanId memFreedBy = kNoSpan;
    };

    std::vector<GpuState> gpus_;
    std::vector<int> gatherCount_;   //!< per slot: #GPUs gathered
    /** Per slot: span that completed the collective on the last
     *  rank — the layerSync barrier edge. */
    std::vector<SpanId> slotBarrierSpan_;
    std::vector<int> gradLanded_;    //!< per layer: grad shards in
    /** peerSent_[k][src * N + dst]: piece transfer submitted. */
    std::vector<std::vector<bool>> peerSent_;

    /** Per-GPU allocation-stall counters (empty when metrics off). */
    std::vector<Counter *> mAllocStalls_;
    Counter *mShardFetches_ = nullptr;
    Counter *mGathersDone_ = nullptr;
};

} // namespace mobius

#endif // MOBIUS_RUNTIME_ZERO_EXECUTOR_HH
