/**
 * @file
 * Machine-readable reporting: StepStats and plans serialised as JSON
 * for downstream analysis (plotting, CI regression checks).
 */

#ifndef MOBIUS_RUNTIME_REPORT_HH
#define MOBIUS_RUNTIME_REPORT_HH

#include <string>

#include "runtime/api.hh"

namespace mobius
{

/** Serialise one step's measurements as a JSON object. */
std::string stepStatsToJson(const StepStats &stats,
                            Bytes model_bytes_fp32 = 0);

/** Serialise a Mobius plan (partition, mapping, overheads). */
std::string planToJson(const MobiusPlan &plan);

/**
 * Fine-tuning cost estimate: wall-clock and dollars for @p steps
 * training steps at @p step_seconds per step on @p server.
 */
struct FineTuneEstimate
{
    double hours = 0.0;   //!< wall-clock hours
    double dollars = 0.0; //!< rental cost at the server's rate
};

/** Cost out @p steps training steps on @p server. */
FineTuneEstimate estimateFineTune(const Server &server,
                                  double step_seconds, int steps);

} // namespace mobius

#endif // MOBIUS_RUNTIME_REPORT_HH
