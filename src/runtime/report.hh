/**
 * @file
 * Machine-readable reporting: StepStats and plans serialised as JSON
 * for downstream analysis (plotting, CI regression checks).
 */

#ifndef MOBIUS_RUNTIME_REPORT_HH
#define MOBIUS_RUNTIME_REPORT_HH

#include <string>

#include "runtime/api.hh"

namespace mobius
{

/** Serialise one step's measurements as a JSON object. */
std::string stepStatsToJson(const StepStats &stats,
                            Bytes model_bytes_fp32 = 0);

/** Serialise a Mobius plan (partition, mapping, overheads). */
std::string planToJson(const MobiusPlan &plan);

/**
 * Identity of one simulated run: the configuration that produced a
 * trace or metrics export. Embedded in `--json` output and in trace
 * files (TraceRecorder::toChromeJson metadata) so offline tools can
 * refuse to diff incompatible runs (tools/trace_diff compares
 * model/topo/system and warns on the rest).
 */
struct RunManifest
{
    std::string model;     //!< model name, e.g. "gpt8b"
    std::string topo;      //!< topology groups, e.g. "2+2"
    std::string system;    //!< "mobius" | "zero" | ...
    std::string partition; //!< partition algorithm
    std::string mapping;   //!< mapping algorithm
    int microbatchSize = 0;    //!< samples per microbatch
    int numMicrobatches = 0;   //!< microbatches per step
    int steps = 1;             //!< simulated steps
    std::string traceFile;     //!< --trace path ("" = none)
    std::string metricsFile;   //!< --metrics path ("" = none)
};

/** Serialise @p m as a JSON object with stable field names. */
std::string manifestToJson(const RunManifest &m);

/**
 * Fine-tuning cost estimate: wall-clock and dollars for @p steps
 * training steps at @p step_seconds per step on @p server.
 */
struct FineTuneEstimate
{
    double hours = 0.0;   //!< wall-clock hours
    double dollars = 0.0; //!< rental cost at the server's rate
};

/** Cost out @p steps training steps on @p server. */
FineTuneEstimate estimateFineTune(const Server &server,
                                  double step_seconds, int steps);

} // namespace mobius

#endif // MOBIUS_RUNTIME_REPORT_HH
