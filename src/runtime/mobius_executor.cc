#include "runtime/mobius_executor.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mobius
{

MobiusExecutor::MobiusExecutor(RunContext &ctx, const CostModel &cost,
                               Partition partition, Mapping mapping,
                               MobiusExecutorConfig cfg)
    : ctx_(ctx), cost_(cost), partition_(std::move(partition)),
      mapping_(std::move(mapping)), cfg_(cfg)
{
    checkPartition(partition_, cost_.numLayers());
    if (mapping_.numGpus() != ctx_.numGpus())
        fatal("mapping covers %d GPUs but server has %d",
              mapping_.numGpus(), ctx_.numGpus());

    S_ = static_cast<int>(partition_.size());
    M_ = cost_.cfg().numMicrobatches;
    const int N = ctx_.numGpus();

    stages_.resize(static_cast<std::size_t>(S_));
    for (int j = 0; j < S_; ++j) {
        const StageRange &r = partition_[j];
        StageState &s = stages_[j];
        s.wBytes = cost_.rangeParamBytes(r.lo, r.hi);
        s.gradBytes = cost_.rangeGradBytes(r.lo, r.hi);
        s.aInBytes = cost_.inActBytes(r.lo);
        s.aOutBytes = cost_.actBytes(r.hi - 1);
        s.memFwd = cost_.stageMemFwd(r.lo, r.hi);
        s.memBwd = cost_.stageMemBwd(r.lo, r.hi);
        s.tFwd = cost_.rangeFwdTime(r.lo, r.hi);
        s.tBwd = cost_.rangeBwdTime(r.lo, r.hi);
        s.gpu = mapping_.gpuOf(j);
        s.resident = cfg_.keepResidentTail && j >= S_ - N;
        s.actReady.assign(static_cast<std::size_t>(M_), j == 0);
        s.gradReady.assign(static_cast<std::size_t>(M_), false);
        s.checkpointReady.assign(static_cast<std::size_t>(M_), false);
        s.checkpointAsked.assign(static_cast<std::size_t>(M_), false);
        s.actReadySpan.assign(static_cast<std::size_t>(M_), kNoSpan);
        s.gradReadySpan.assign(static_cast<std::size_t>(M_), kNoSpan);
        s.checkpointReadySpan.assign(static_cast<std::size_t>(M_),
                                     kNoSpan);

        Bytes cap = ctx_.memory(s.gpu).capacity();
        if (s.memFwd > cap || s.memBwd > cap) {
            fatal("Mobius: stage %d (%s) needs %s fwd / %s bwd but "
                  "GPU %d has %s",
                  j, partitionToString(partition_).c_str(),
                  formatBytes(s.memFwd).c_str(),
                  formatBytes(s.memBwd).c_str(), s.gpu,
                  formatBytes(cap).c_str());
        }
    }

    buildLoadQueues();
    memFreedBy_.assign(static_cast<std::size_t>(N), kNoSpan);

    if (MetricsRegistry *m = ctx_.activeMetrics()) {
        gpuMetrics_.resize(static_cast<std::size_t>(N));
        for (int g = 0; g < N; ++g) {
            std::string p = "gpu" + std::to_string(g);
            GpuMetrics &gm = gpuMetrics_[static_cast<std::size_t>(g)];
            gm.prefetchHit = &m->counter(p + ".prefetch.hit");
            gm.prefetchMiss = &m->counter(p + ".prefetch.miss");
            gm.prefetchWait =
                &m->counter(p + ".prefetch.wait_seconds");
            gm.swapLoads = &m->counter(p + ".swap.loads");
            gm.swapEvictions = &m->counter(p + ".swap.evictions");
        }
    }
}

/**
 * Compute wants this load but it has not landed: note when the wait
 * began so the prefetch-miss latency can be attributed.
 */
void
MobiusExecutor::markBlocked(LoadEntry *entry)
{
    if (gpuMetrics_.empty() || entry->readyRecorded)
        return;
    if (entry->blockedAt < 0)
        entry->blockedAt = ctx_.queue().now();
}

/**
 * A load finished: classify it as a prefetch hit (landed before any
 * compute waited on it) or miss (compute stalled), once per entry.
 */
void
MobiusExecutor::recordEntryReady(LoadEntry *entry)
{
    if (gpuMetrics_.empty() || entry->readyRecorded)
        return;
    entry->readyRecorded = true;
    GpuMetrics &gm = gpuMetrics_[static_cast<std::size_t>(
        stages_[entry->stage].gpu)];
    if (entry->blockedAt >= 0) {
        gm.prefetchMiss->add();
        gm.prefetchWait->add(ctx_.queue().now() - entry->blockedAt);
    } else {
        gm.prefetchHit->add();
    }
    if (entry->transferBytes > 0)
        gm.swapLoads->add();
}

void
MobiusExecutor::buildLoadQueues()
{
    const int N = ctx_.numGpus();
    loads_.assign(static_cast<std::size_t>(N), {});

    // Reserve so LoadEntry pointers stay stable.
    std::vector<int> counts(static_cast<std::size_t>(N), 0);
    for (int j = 0; j < S_; ++j)
        counts[stages_[j].gpu] += 2;
    for (int g = 0; g < N; ++g)
        loads_[g].reserve(static_cast<std::size_t>(counts[g]));

    // Forward loads in ascending stage order.
    for (int j = 0; j < S_; ++j) {
        StageState &s = stages_[j];
        LoadEntry e;
        e.stage = j;
        e.phase = Phase::Fwd;
        e.footprint = s.memFwd;
        e.transferBytes = s.wBytes;
        e.order = j;
        loads_[s.gpu].push_back(e);
        s.fwdEntry = &loads_[s.gpu].back();
    }
    // Backward loads in descending stage order.
    for (int j = S_ - 1; j >= 0; --j) {
        StageState &s = stages_[j];
        LoadEntry e;
        e.stage = j;
        e.phase = Phase::Bwd;
        e.order = S_ + (S_ - 1 - j);
        if (s.resident) {
            // Ownership of the forward footprint transfers at the
            // fwd->bwd transition; only the delta is new.
            e.footprint = s.memBwd > s.memFwd
                ? s.memBwd - s.memFwd
                : 0;
            e.transferBytes = 0;
        } else {
            e.footprint = s.memBwd;
            e.transferBytes = s.wBytes;
        }
        loads_[s.gpu].push_back(e);
        s.bwdEntry = &loads_[s.gpu].back();
    }
}

void
MobiusExecutor::pump(int gpu)
{
    auto &queue = loads_[gpu];
    GpuMemory &mem = ctx_.memory(gpu);

    // Find the first entry that is not retired; pump it and, when it
    // is already complete (its stage is executing), also pump up to
    // prefetchLookahead more — the next-stage prefetch of §3.1.
    std::size_t first = 0;
    while (first < queue.size() && queue[first].done)
        ++first;

    std::size_t last = first +
        static_cast<std::size_t>(std::max(cfg_.prefetchLookahead, 0));
    for (std::size_t idx = first;
         idx < queue.size() && idx <= last; ++idx) {
        LoadEntry &e = queue[idx];
        if (e.done)
            continue;
        // Allocate what fits.
        if (e.allocated < e.footprint) {
            Bytes chunk =
                std::min(e.footprint - e.allocated, mem.available());
            if (chunk > 0) {
                mem.alloc(chunk);
                e.allocated += chunk;
                // This allocation was enabled by whatever eviction
                // last freed memory here: the load was blocked on it.
                SpanId freed = memFreedBy_[gpu];
                if (freed != kNoSpan &&
                    (e.depSpans.empty() ||
                     e.depSpans.back() != freed)) {
                    e.depSpans.push_back(freed);
                }
            }
        }
        // Issue the transfer for the weight portion now reserved.
        Bytes covered = std::min(e.allocated, e.transferBytes);
        if (covered > e.requested) {
            Bytes bytes = covered - e.requested;
            e.requested = covered;
            TransferRequest req;
            req.src = Endpoint::dram();
            req.dst = Endpoint::gpuAt(gpu);
            req.bytes = bytes;
            req.kind = TrafficKind::Parameter;
            req.priority = cfg_.prioWeightBase + e.order;
            // Straggler-aware prefetch (fault injection): a
            // throttled GPU computes slowly, so its stage loads are
            // not the bottleneck — demote them and let healthy GPUs'
            // prefetches win the shared links.
            if (cfg_.stragglerAwarePrefetch && ctx_.faults() &&
                ctx_.faults()->computeThrottle(gpu) < 1.0)
                req.priority += cfg_.stragglerPrioPenalty;
            req.rateCap = cfg_.weightSourceRateCap;
            req.label = strfmt("S%d.%s", e.stage,
                               e.phase == Phase::Fwd ? "fwd"
                                                     : "bwd");
            req.deps = e.depSpans;
            req.stage = e.stage;
            LoadEntry *ep = &e;
            req.onComplete = [this, gpu, ep, bytes] {
                onWeightChunk(gpu, ep, bytes);
            };
            ctx_.submitXfer(req);
        }
        if (e.transferBytes == 0 && e.ready())
            onEntryReady(&e);
        // Only look one entry ahead, and only when this entry has
        // everything it needs in flight.
        if (e.allocated < e.footprint)
            break;
    }
}

void
MobiusExecutor::onWeightChunk(int gpu, LoadEntry *entry, Bytes bytes)
{
    entry->landed += bytes;
    SpanId chunk = ctx_.xfer().lastSpanId();
    if (chunk != kNoSpan)
        entry->depSpans.push_back(chunk);
    if (entry->ready())
        onEntryReady(entry);
    pump(gpu);
}

void
MobiusExecutor::onEntryReady(LoadEntry *entry)
{
    StageState &s = stages_[entry->stage];
    recordEntryReady(entry);
    if (entry->phase == Phase::Fwd) {
        tryScheduleFwd(entry->stage);
    } else {
        // Start uploading the first checkpoint as soon as the stage's
        // weights are back (overlapped with the predecessor).
        askCheckpoint(entry->stage, 0,
                      entry->depSpans.empty() ? kNoSpan
                                              : entry->depSpans.back());
        tryScheduleBwd(entry->stage);
    }
    (void)s;
}

void
MobiusExecutor::tryScheduleFwd(int stage)
{
    StageState &s = stages_[stage];
    if (s.fwdInFlight || s.nextFwdMb >= M_)
        return;
    if (!s.fwdEntry->ready()) {
        if (s.actReady[s.nextFwdMb])
            markBlocked(s.fwdEntry);
        return;
    }
    int mb = s.nextFwdMb;
    if (!s.actReady[mb])
        return;

    s.fwdInFlight = true;
    // Why this compute starts now: the stage's weight load (chunk
    // transfers + any eviction that made room), the input activation
    // (Eq. 8), and the previous microbatch on this stage (Eq. 9).
    std::vector<SpanId> deps = s.fwdEntry->depSpans;
    deps.push_back(s.actReadySpan[static_cast<std::size_t>(mb)]);
    deps.push_back(s.lastFwdSpan);
    ctx_.compute(s.gpu).submit(
        s.tFwd, [this, stage, mb] { onFwdCompute(stage, mb); },
        strfmt("F%d,%d", stage, mb), std::move(deps), stage);
}

void
MobiusExecutor::onFwdCompute(int stage, int mb)
{
    StageState &s = stages_[stage];
    s.fwdInFlight = false;
    ++s.fwdDone;
    ++s.nextFwdMb;
    s.lastFwdSpan = ctx_.compute(s.gpu).lastSpanId();

    // Offload the input checkpoint for the backward pass (§3.1's
    // A_Mobius; fire-and-forget, low priority).
    if (s.aInBytes > 0) {
        TransferRequest off;
        off.src = Endpoint::gpuAt(s.gpu);
        off.dst = Endpoint::dram();
        off.bytes = s.aInBytes;
        off.kind = TrafficKind::Activation;
        off.priority = cfg_.prioCheckpointOffload;
        off.label = strfmt("ckpt%d,%d", stage, mb);
        off.deps = {s.lastFwdSpan};
        off.stage = stage;
        ctx_.submitXfer(off);
    }

    // Hand the boundary activation to the next stage.
    if (stage + 1 < S_) {
        StageState &next = stages_[stage + 1];
        if (next.gpu == s.gpu) {
            next.actReady[mb] = true;
            next.actReadySpan[static_cast<std::size_t>(mb)] =
                s.lastFwdSpan;
            tryScheduleFwd(stage + 1);
        } else {
            TransferRequest act;
            act.src = Endpoint::gpuAt(s.gpu);
            act.dst = Endpoint::gpuAt(next.gpu);
            act.bytes = s.aOutBytes;
            act.kind = TrafficKind::Activation;
            act.priority = cfg_.prioActivation;
            act.label = strfmt("a%d,%d", stage, mb);
            act.deps = {s.lastFwdSpan};
            act.stage = stage + 1;
            int nstage = stage + 1;
            act.onComplete = [this, nstage, mb] {
                stages_[nstage].actReady[mb] = true;
                stages_[nstage]
                    .actReadySpan[static_cast<std::size_t>(mb)] =
                    ctx_.xfer().lastSpanId();
                tryScheduleFwd(nstage);
            };
            ctx_.submitXfer(act);
        }
    } else if (s.fwdDone == M_) {
        // Loss computed; the last stage's backward may begin on all
        // microbatches (Eq. 11) — each gated by the final forward.
        for (int m = 0; m < M_; ++m) {
            s.gradReady[m] = true;
            s.gradReadySpan[static_cast<std::size_t>(m)] =
                s.lastFwdSpan;
        }
    }

    if (s.fwdDone == M_)
        finishFwdStage(stage);
    else
        tryScheduleFwd(stage);
    if (s.fwdDone == M_ && stage == S_ - 1)
        tryScheduleBwd(stage);
}

void
MobiusExecutor::finishFwdStage(int stage)
{
    StageState &s = stages_[stage];
    GpuMemory &mem = ctx_.memory(s.gpu);
    if (s.resident) {
        // Hand the forward footprint over to the backward entry;
        // causally, the final forward compute enables it.
        s.fwdEntry->done = true;
        s.bwdEntry->depSpans.push_back(s.lastFwdSpan);
        s.bwdEntry->allocated += s.fwdEntry->allocated;
        if (s.bwdEntry->allocated > s.memBwd) {
            mem.free(s.bwdEntry->allocated - s.memBwd);
            s.bwdEntry->allocated = s.memBwd;
        }
        s.bwdEntry->footprint = s.memBwd;
        if (s.bwdEntry->ready())
            onEntryReady(s.bwdEntry);
    } else {
        mem.free(s.fwdEntry->allocated);
        s.fwdEntry->allocated = 0;
        s.fwdEntry->done = true;
        // The next load on this GPU was blocked on this eviction.
        memFreedBy_[static_cast<std::size_t>(s.gpu)] = s.lastFwdSpan;
        if (!gpuMetrics_.empty())
            gpuMetrics_[static_cast<std::size_t>(s.gpu)]
                .swapEvictions->add();
    }
    pump(s.gpu);
}

void
MobiusExecutor::askCheckpoint(int stage, int mb, SpanId trigger)
{
    if (mb >= M_)
        return;
    StageState &s = stages_[stage];
    if (s.checkpointAsked[mb])
        return;
    s.checkpointAsked[mb] = true;
    if (s.aInBytes == 0) {
        s.checkpointReady[mb] = true;
        s.checkpointReadySpan[static_cast<std::size_t>(mb)] =
            trigger;
        tryScheduleBwd(stage);
        return;
    }
    TransferRequest up;
    up.src = Endpoint::dram();
    up.dst = Endpoint::gpuAt(s.gpu);
    up.bytes = s.aInBytes;
    up.kind = TrafficKind::Activation;
    up.priority = cfg_.prioCheckpointUpload;
    up.label = strfmt("c%d,%d", stage, mb);
    up.deps = {trigger};
    up.stage = stage;
    up.onComplete = [this, stage, mb] {
        stages_[stage].checkpointReady[mb] = true;
        stages_[stage]
            .checkpointReadySpan[static_cast<std::size_t>(mb)] =
            ctx_.xfer().lastSpanId();
        tryScheduleBwd(stage);
    };
    ctx_.submitXfer(up);
}

void
MobiusExecutor::tryScheduleBwd(int stage)
{
    StageState &s = stages_[stage];
    if (s.bwdInFlight || s.nextBwdMb >= M_)
        return;
    if (!s.bwdEntry->ready()) {
        if (s.gradReady[s.nextBwdMb])
            markBlocked(s.bwdEntry);
        return;
    }
    if (stage == S_ - 1 && s.fwdDone < M_)
        return;
    int mb = s.nextBwdMb;
    askCheckpoint(stage, mb,
                  s.gradReadySpan[static_cast<std::size_t>(mb)]);
    if (!s.gradReady[mb] || !s.checkpointReady[mb])
        return;

    s.bwdInFlight = true;
    // Overlap the next checkpoint upload with this compute.
    askCheckpoint(stage, mb + 1, s.lastBwdSpan);
    // Why this compute starts now: the weight reload, the output
    // gradient from the next stage (Eq. 10 via the loss at Eq. 11),
    // the reloaded input checkpoint, and the previous microbatch.
    std::vector<SpanId> deps = s.bwdEntry->depSpans;
    deps.push_back(s.gradReadySpan[static_cast<std::size_t>(mb)]);
    deps.push_back(
        s.checkpointReadySpan[static_cast<std::size_t>(mb)]);
    deps.push_back(s.lastBwdSpan);
    ctx_.compute(s.gpu).submit(
        s.tBwd, [this, stage, mb] { onBwdCompute(stage, mb); },
        strfmt("B%d,%d", stage, mb), std::move(deps), stage);
}

void
MobiusExecutor::onBwdCompute(int stage, int mb)
{
    StageState &s = stages_[stage];
    s.bwdInFlight = false;
    ++s.bwdDone;
    ++s.nextBwdMb;
    s.lastBwdSpan = ctx_.compute(s.gpu).lastSpanId();

    // Send the activation gradient to the previous stage.
    if (stage > 0) {
        StageState &prev = stages_[stage - 1];
        if (prev.gpu == s.gpu) {
            prev.gradReady[mb] = true;
            prev.gradReadySpan[static_cast<std::size_t>(mb)] =
                s.lastBwdSpan;
            tryScheduleBwd(stage - 1);
        } else {
            TransferRequest g;
            g.src = Endpoint::gpuAt(s.gpu);
            g.dst = Endpoint::gpuAt(prev.gpu);
            g.bytes = prev.aOutBytes; // gradient of prev's output
            g.kind = TrafficKind::ActivationGrad;
            g.priority = cfg_.prioActivation;
            g.label = strfmt("g%d,%d", stage, mb);
            g.deps = {s.lastBwdSpan};
            g.stage = stage - 1;
            int pstage = stage - 1;
            g.onComplete = [this, pstage, mb] {
                stages_[pstage].gradReady[mb] = true;
                stages_[pstage]
                    .gradReadySpan[static_cast<std::size_t>(mb)] =
                    ctx_.xfer().lastSpanId();
                tryScheduleBwd(pstage);
            };
            ctx_.submitXfer(g);
        }
    }

    if (s.bwdDone == M_)
        finishBwdStage(stage);
    else
        tryScheduleBwd(stage);
}

void
MobiusExecutor::finishBwdStage(int stage)
{
    StageState &s = stages_[stage];
    GpuMemory &mem = ctx_.memory(s.gpu);

    // Flush this stage's gradients to DRAM for the CPU optimizer;
    // everything else is freed immediately.
    Bytes keep = std::min(s.gradBytes, s.bwdEntry->allocated);
    mem.free(s.bwdEntry->allocated - keep);
    s.bwdEntry->allocated = keep;
    s.bwdEntry->done = true;
    memFreedBy_[static_cast<std::size_t>(s.gpu)] = s.lastBwdSpan;
    if (!gpuMetrics_.empty())
        gpuMetrics_[static_cast<std::size_t>(s.gpu)]
            .swapEvictions->add();

    int gpu = s.gpu;
    if (keep > 0) {
        TransferRequest flush;
        flush.src = Endpoint::gpuAt(gpu);
        flush.dst = Endpoint::dram();
        flush.bytes = s.gradBytes;
        flush.kind = TrafficKind::Gradient;
        flush.priority = cfg_.prioGradFlush;
        flush.label = strfmt("flush S%d", stage);
        flush.deps = {s.lastBwdSpan};
        flush.stage = stage;
        int stage_idx = stage;
        flush.onComplete = [this, gpu, keep, stage_idx] {
            ctx_.memory(gpu).free(keep);
            const StageRange &r = partition_[stage_idx];
            std::uint64_t params = 0;
            for (int i = r.lo; i < r.hi; ++i)
                params += cost_.model().layers[i].paramCount;
            ctx_.cpuOptimizer().apply(
                params, strfmt("adam S%d", stage_idx),
                {ctx_.xfer().lastSpanId()}, stage_idx);
            pump(gpu);
        };
        ctx_.submitXfer(flush);
    }
    pump(gpu);
}

StepStats
MobiusExecutor::run()
{
    for (int g = 0; g < ctx_.numGpus(); ++g)
        pump(g);
    StepStats stats = ctx_.finish("Mobius");

    for (int j = 0; j < S_; ++j) {
        if (stages_[j].fwdDone != M_ || stages_[j].bwdDone != M_) {
            panic("Mobius step deadlocked: stage %d finished %d/%d "
                  "fwd, %d/%d bwd microbatches",
                  j, stages_[j].fwdDone, M_, stages_[j].bwdDone, M_);
        }
    }
    return stats;
}

} // namespace mobius
