/**
 * @file
 * High-level fine-tuning API — the library's front door.
 *
 * Typical use:
 * @code
 *     Server server = makeCommodityServer({2, 2});
 *     Workload work(gpt15b(), server);
 *     MobiusPlan plan = planMobius(server, work.cost());
 *     StepStats stats = runMobiusStep(server, work.cost(), plan);
 * @endcode
 *
 * planMobius() runs the full §3 flow: profile with layer similarity,
 * solve the MIP partition, search the cross mapping; its timing
 * fields are what Fig. 12 reports. run*Step() execute one training
 * step of Mobius or a baseline on the event-driven simulator and
 * return the measurements behind Figs. 2 and 5-16.
 */

#ifndef MOBIUS_RUNTIME_API_HH
#define MOBIUS_RUNTIME_API_HH

#include <memory>

#include "hw/server.hh"
#include "plan/mapping.hh"
#include "plan/partition_algos.hh"
#include "plan/partition_mip.hh"
#include "profile/profiler.hh"
#include "runtime/mobius_executor.hh"
#include "runtime/pipeline_executor.hh"
#include "runtime/tp_executor.hh"
#include "runtime/zero_executor.hh"

namespace mobius
{

/**
 * A fine-tuning workload: owns the model description and the cost
 * model bound to a server's GPU type.
 */
class Workload
{
  public:
    /**
     * @param cfg               model configuration (Table 3)
     * @param server            target server (GPU type, count)
     * @param microbatch_size   -1 = the config's Table 3 default
     * @param num_microbatches  -1 = one per GPU (M = N, §3.1)
     */
    Workload(const GptConfig &cfg, const Server &server,
             int microbatch_size = -1, int num_microbatches = -1);

    /** The built model description. */
    const ModelDesc &model() const { return *model_; }
    /** The per-layer cost model. */
    const CostModel &cost() const { return *cost_; }
    /** The resolved training configuration. */
    const TrainConfig &train() const { return train_; }

  private:
    std::unique_ptr<ModelDesc> model_;
    TrainConfig train_;
    std::unique_ptr<CostModel> cost_;
};

/** Partition algorithm selector (§4.3 ablation). */
enum class PartitionAlgo
{
    Mip,       //!< scalable heuristic search (default)
    ExactMip,  //!< faithful Eq. 3-11 branch-and-bound
    MinStage,  //!< one transformer block per stage
    MaxStage,  //!< as many layers per stage as memory allows
};

/** Stage mapping selector (§4.4 ablation). */
enum class MappingAlgo { Cross, Sequential };

/** Planning knobs. */
struct PlanOptions
{
    PartitionAlgo partition = PartitionAlgo::Mip;
    MappingAlgo mapping = MappingAlgo::Cross;
    ProfilerConfig profiler;
    /** Average bandwidth for the MIP's B constant; 0 = PCIe x16. */
    double avgBandwidth = 0.0;
    /** Branch-and-bound budget and stage-sweep thread count, used
     * when partition == PartitionAlgo::ExactMip. */
    MipOptions mip;
    /** Largest stage count the exact MIP sweeps; 0 = layer count.
     * Ignored by the other partition algorithms. */
    int maxStages = 0;
    /** Optional registry for plan.mip.* / solver.lp.* metrics from
     * the exact MIP solve; null or disabled = no recording. */
    MetricsRegistry *metrics = nullptr;
};

/** Output of the planning phase (§3.2/§3.3 + Fig. 12 overheads). */
struct MobiusPlan
{
    Partition partition;
    Mapping mapping;
    PipelineEstimate estimate;       //!< analytic schedule estimate
    double profilingSeconds = 0.0;   //!< Fig. 12 "MIP profiling"
    double solveSeconds = 0.0;       //!< Fig. 12 "MIP solving"
    double mappingSeconds = 0.0;     //!< Fig. 12 "cross mapping"
    int profiledLayers = 0;
    int stageCount() const
    {
        return static_cast<int>(partition.size());
    }
};

/** Run the full planning flow for @p cost on @p server. */
MobiusPlan planMobius(const Server &server, const CostModel &cost,
                      const PlanOptions &opts = {});

/**
 * Everything a single-step run can be configured with, in one
 * struct. The positional run*Step() signatures predate the fleet
 * simulator; fleet jobs need metrics and fault injection per run,
 * and threading five defaulted positionals through every call site
 * does not scale. The legacy entry points delegate here.
 */
struct StepRunOptions
{
    TransferEngineConfig xfer;
    MobiusExecutorConfig mobius; //!< used by runMobiusStepEx only
    ZeroExecutorConfig zero;     //!< used by runZeroStepEx only
    /** CPU optimizer params/s; 0 disables the CPU-update model. */
    double cpuAdamThroughput = 0.0;
    /** Optional registry for engine counters; null = no recording. */
    MetricsRegistry *metrics = nullptr;
    /** Optional fault plan; null or empty = clean run. */
    const FaultPlan *faults = nullptr;
    std::uint64_t faultSeed = 1; //!< FaultInjector stream seed
    /**
     * Optional span-retention sink. When non-null, the run's trace
     * is moved here wholesale (arenas and all, replacing previous
     * contents) after the digest fields are computed — the cheap
     * hook fleet attribution uses to keep step spans alive past the
     * run without copying them. Null = the trace dies with the run.
     */
    TraceRecorder *traceOut = nullptr;
};

/** A step's measurements plus its trace digest. */
struct StepRunResult
{
    StepStats stats;
    std::uint64_t spanCount = 0; //!< spans the run recorded
    /** spanFingerprint() of the run's trace — the bit-identity
     *  token fleet determinism gates compare (cache hit vs fresh
     *  solve, any --threads width). */
    std::uint64_t spanHash = 0;
};

/**
 * Execute one Mobius step (event-driven) and return measurements.
 * @param cpu_adam_throughput CPU optimizer params/s; 0 disables the
 *        CPU-update model (the paper's measurement window).
 */
StepStats runMobiusStep(const Server &server, const CostModel &cost,
                        const MobiusPlan &plan,
                        MobiusExecutorConfig exec_cfg = {},
                        TransferEngineConfig xfer_cfg = {},
                        double cpu_adam_throughput = 0.0);

/** runMobiusStep() with the full option set and trace digest. */
StepRunResult runMobiusStepEx(const Server &server,
                              const CostModel &cost,
                              const MobiusPlan &plan,
                              const StepRunOptions &opts = {});

/** Execute one DeepSpeed-style (ZeRO-3 + hetero memory) step. */
StepStats runZeroStep(const Server &server, const CostModel &cost,
                      ZeroExecutorConfig cfg = {},
                      TransferEngineConfig xfer_cfg = {},
                      double cpu_adam_throughput = 0.0);

/** runZeroStep() with the full option set and trace digest. */
StepRunResult runZeroStepEx(const Server &server,
                            const CostModel &cost,
                            const StepRunOptions &opts = {});

/**
 * Execute one Megatron-style tensor-parallel step (the related-work
 * comparator, §5). Throws FatalError when the per-GPU weight shard
 * does not fit.
 */
StepStats runTensorParallelStep(const Server &server,
                                const CostModel &cost,
                                TpExecutorConfig cfg = {},
                                TransferEngineConfig xfer_cfg = {});

/**
 * Execute one all-in-GPU-memory pipeline step (GPipe or DeepSpeed
 * pipeline mode). Throws FatalError when the model does not fit —
 * the Fig. 5 OOM entries.
 */
StepStats runPipelineStep(const Server &server, const CostModel &cost,
                          PipelineSchedule schedule,
                          TransferEngineConfig xfer_cfg = {});

} // namespace mobius

#endif // MOBIUS_RUNTIME_API_HH
