/**
 * @file
 * The Mobius pipeline executor (§3.1/§3.3): event-driven execution of
 * one training step on the simulated server.
 *
 * The model is partitioned into S >= N stages held in DRAM; stages
 * are assigned round-robin over the mapping's GPU order. Each GPU
 * keeps a load queue (its forward stages in ascending order, then its
 * backward stages in descending order) and pumps at most one lookahead
 * load — the prefetch of §3.1 — into whatever memory is free
 * (Eq. 5/6). Weight-load transfers carry priorities ordered by stage
 * start (§3.3's cudaStreamCreateWithPriority); activations and
 * activation gradients travel between adjacent stages' GPUs (staged
 * through DRAM on commodity boxes); input checkpoints are offloaded
 * after forward and uploaded before backward; gradients are flushed
 * to DRAM when a stage's backward completes.
 */

#ifndef MOBIUS_RUNTIME_MOBIUS_EXECUTOR_HH
#define MOBIUS_RUNTIME_MOBIUS_EXECUTOR_HH

#include <vector>

#include "plan/mapping.hh"
#include "plan/partition.hh"
#include "runtime/run_context.hh"

namespace mobius
{

/** Executor tunables (transfer priorities; smaller = more urgent). */
struct MobiusExecutorConfig
{
    bool keepResidentTail = true; //!< pin the last stages on-GPU
    /**
     * How many stage loads per GPU may be in flight beyond the
     * current one. 1 = the paper's next-stage prefetch (§3.1);
     * 0 disables prefetching (ablation).
     */
    int prefetchLookahead = 1;
    /**
     * Rate cap for weight loads in bytes/second (0 = none). Setting
     * this to NVMe speeds models the SSD tier the paper rejects in
     * §3.1 ("the limited bandwidth of SSDs is a performance
     * bottleneck") — see the ablation bench.
     */
    double weightSourceRateCap = 0.0;
    int prioActivation = 1;       //!< inter-stage activations
    int prioCheckpointUpload = 2; //!< checkpoint reloads
    int prioWeightBase = 10;      //!< + stage execution order
    int prioGradFlush = 2000;     //!< gradient flushes to DRAM
    int prioCheckpointOffload = 3000; //!< checkpoint offloads
    /**
     * Recovery policy under fault injection: demote weight prefetch
     * for GPUs the fault injector is currently throttling (a
     * straggler's compute, not its loads, is the bottleneck), so
     * healthy GPUs' prefetches win the shared links. No effect in
     * fault-free runs.
     */
    bool stragglerAwarePrefetch = true;
    int stragglerPrioPenalty = 500; //!< added to demoted prefetches
};

/** Runs one Mobius training step. */
class MobiusExecutor
{
  public:
    /** Bind the executor to a run context, plan, and tunables. */
    MobiusExecutor(RunContext &ctx, const CostModel &cost,
                   Partition partition, Mapping mapping,
                   MobiusExecutorConfig cfg = {});

    /** Execute the step to completion and return its statistics. */
    StepStats run();

  private:
    enum class Phase { Fwd, Bwd };

    /** One pending stage load on a GPU's queue. */
    struct LoadEntry
    {
        int stage = -1;
        Phase phase = Phase::Fwd;
        Bytes footprint = 0;       //!< total bytes to reserve
        Bytes transferBytes = 0;   //!< portion that moves over PCIe
        Bytes allocated = 0;
        Bytes requested = 0;       //!< transfer bytes requested
        Bytes landed = 0;          //!< transfer bytes arrived
        bool done = false;         //!< freed / retired
        int order = 0;             //!< global execution order index
        /**
         * When compute first found itself waiting on this load
         * (-1 = never): set by the scheduler when the stage's input
         * is ready but the load is not — a prefetch miss.
         */
        SimTime blockedAt = -1.0;
        bool readyRecorded = false; //!< hit/miss metric emitted
        /**
         * Spans that made this load possible: the eviction (final
         * compute) that freed GPU memory for it, plus each landed
         * weight-chunk transfer. Computes gated by the load inherit
         * these as causal deps.
         */
        std::vector<SpanId> depSpans;

        bool
        ready() const
        {
            return !done && allocated >= footprint &&
                landed >= transferBytes;
        }
    };

    /** Dynamic state of one stage. */
    struct StageState
    {
        Bytes wBytes = 0, gradBytes = 0, aInBytes = 0, aOutBytes = 0;
        Bytes memFwd = 0, memBwd = 0;
        double tFwd = 0.0, tBwd = 0.0;
        int gpu = -1;
        bool resident = false;    //!< tail stage kept for backward

        int nextFwdMb = 0;        //!< next microbatch to compute
        int nextBwdMb = 0;
        bool fwdInFlight = false; //!< a compute task is submitted
        bool bwdInFlight = false;
        int fwdDone = 0;          //!< completed microbatches
        int bwdDone = 0;
        std::vector<bool> actReady;        //!< fwd input act per mb
        std::vector<bool> gradReady;       //!< bwd act-grad per mb
        std::vector<bool> checkpointReady; //!< bwd checkpoint per mb
        std::vector<bool> checkpointAsked;
        LoadEntry *fwdEntry = nullptr;
        LoadEntry *bwdEntry = nullptr;

        /** Producing span per ready flag (kNoSpan = free input). */
        std::vector<SpanId> actReadySpan;
        std::vector<SpanId> gradReadySpan;
        std::vector<SpanId> checkpointReadySpan;
        /** Last fwd/bwd compute span: the Eq. 9 microbatch-order
         *  edge on the same stage. */
        SpanId lastFwdSpan = kNoSpan;
        SpanId lastBwdSpan = kNoSpan;
    };

    void buildLoadQueues();
    void pump(int gpu);
    void onWeightChunk(int gpu, LoadEntry *entry, Bytes bytes);
    void onEntryReady(LoadEntry *entry);

    void tryScheduleFwd(int stage);
    void onFwdCompute(int stage, int mb);
    void finishFwdStage(int stage);

    void tryScheduleBwd(int stage);
    void onBwdCompute(int stage, int mb);
    void finishBwdStage(int stage);
    void askCheckpoint(int stage, int mb,
                       SpanId trigger = kNoSpan);

    RunContext &ctx_;
    const CostModel &cost_;
    Partition partition_;
    Mapping mapping_;
    MobiusExecutorConfig cfg_;

    int S_ = 0; //!< number of stages
    int M_ = 0; //!< microbatches per step

    std::vector<StageState> stages_;
    /** Load queues: loads_[gpu] in execution order. */
    std::vector<std::vector<LoadEntry>> loads_;
    /** Per GPU: span of the compute whose completion last freed
     *  memory — the "stage evict blocked load" causal edge. */
    std::vector<SpanId> memFreedBy_;

    /** Cached per-GPU metric handles (empty when metrics are off). */
    struct GpuMetrics
    {
        Counter *prefetchHit = nullptr;
        Counter *prefetchMiss = nullptr;
        Counter *prefetchWait = nullptr; //!< seconds blocked
        Counter *swapLoads = nullptr;
        Counter *swapEvictions = nullptr;
    };
    std::vector<GpuMetrics> gpuMetrics_;

    void recordEntryReady(LoadEntry *entry);
    void markBlocked(LoadEntry *entry);
};

} // namespace mobius

#endif // MOBIUS_RUNTIME_MOBIUS_EXECUTOR_HH
