/**
 * @file
 * All-in-GPU-memory pipeline parallelism: the GPipe baseline and the
 * 1F1B schedule used by DeepSpeed's pipeline mode (§4 baselines).
 *
 * One stage per GPU, weights + optimizer states resident (16 B per
 * parameter), activation checkpoints kept on-device. Models that do
 * not fit raise FatalError — the OOM entries of Fig. 5. Only boundary
 * activations and their gradients cross the interconnect.
 */

#ifndef MOBIUS_RUNTIME_PIPELINE_EXECUTOR_HH
#define MOBIUS_RUNTIME_PIPELINE_EXECUTOR_HH

#include <deque>
#include <vector>

#include "plan/mapping.hh"
#include "plan/partition.hh"
#include "runtime/run_context.hh"

namespace mobius
{

/** Microbatch schedule flavour. */
enum class PipelineSchedule
{
    GPipe,     //!< all forwards, then all backwards
    OneFOneB,  //!< 1F1B steady state (DeepSpeed pipeline mode)
};

/** Runs one all-in-GPU-memory pipeline step. */
class PipelineExecutor
{
  public:
    /** Bind the executor to a run context, plan, and schedule. */
    PipelineExecutor(RunContext &ctx, const CostModel &cost,
                     Partition partition, Mapping mapping,
                     PipelineSchedule schedule);

    /** Execute one step and return its measurements. */
    StepStats run();

  private:
    struct StageState
    {
        double tFwd = 0.0, tBwd = 0.0;
        Bytes aOutBytes = 0;
        int gpu = -1;
        int nextFwdMb = 0;
        int nextBwdMb = 0;
        int fwdDone = 0;
        int bwdDone = 0;
        std::vector<bool> actReady;
        std::vector<bool> gradReady;

        /** Producing span per ready flag (kNoSpan = free input). */
        std::vector<SpanId> actReadySpan;
        std::vector<SpanId> gradReadySpan;
        /** Own forward span per mb: the 1F1B last-stage backward
         *  depends on its own forward (Eq. 11). */
        std::vector<SpanId> fwdSpan;
        /** Last compute on this stage (Eq. 9 serialisation edge). */
        SpanId lastSpan = kNoSpan;
    };

    bool fwdReady(int stage) const;
    bool bwdReady(int stage) const;
    void schedule(int gpu);
    void onFwdCompute(int stage, int mb);
    void onBwdCompute(int stage, int mb);

    RunContext &ctx_;
    const CostModel &cost_;
    Partition partition_;
    Mapping mapping_;
    PipelineSchedule schedule_;
    int S_ = 0;
    int M_ = 0;

    std::vector<StageState> stages_;
    std::vector<bool> gpuBusy_;
    /** stageOfGpu_[g] = stage index resident on GPU g. */
    std::vector<int> stageOfGpu_;

    Counter *mFwdMicrobatches_ = nullptr;
    Counter *mBwdMicrobatches_ = nullptr;
};

/** @return printable label ("GPipe" / "DeepSpeed-pipeline"). */
const char *pipelineScheduleName(PipelineSchedule schedule);

} // namespace mobius

#endif // MOBIUS_RUNTIME_PIPELINE_EXECUTOR_HH
