/**
 * @file
 * Per-step measurement record produced by every executor; the raw
 * material of the paper's evaluation figures (per-step time, traffic,
 * bandwidth CDFs, non-overlapped communication).
 */

#ifndef MOBIUS_RUNTIME_STEP_STATS_HH
#define MOBIUS_RUNTIME_STEP_STATS_HH

#include <cstdint>
#include <string>

#include "xfer/stats.hh"

namespace mobius
{

/** What one simulated training step measured. */
struct StepStats
{
    std::string system;       //!< "Mobius", "DeepSpeed", "GPipe", ...
    double stepTime = 0.0;    //!< seconds per training step
    int numGpus = 0;          //!< GPUs that participated

    TrafficStats traffic;     //!< volumes + bandwidth samples

    double computeTime = 0.0;       //!< sum over GPUs, seconds
    double exposedCommTime = 0.0;   //!< comm not overlapped (Fig. 8)
    double overlappedCommTime = 0.0; //!< comm hidden under compute

    /** Fault-injection activity (zero without a fault plan;
     *  fault/fault_injector.hh). */
    std::uint64_t faultFailures = 0; //!< failed transfer attempts
    std::uint64_t faultRetries = 0;  //!< retries issued
    std::uint64_t faultCrashes = 0;  //!< GPU crashes
    double faultSeconds = 0.0;       //!< injected fault/recovery secs

    /**
     * Fraction of aggregate GPU time that is communication not
     * overlapped by computation (the Fig. 8 metric).
     */
    double
    exposedCommFraction() const
    {
        double denom = stepTime * numGpus;
        return denom > 0 ? exposedCommTime / denom : 0.0;
    }

    /** Traffic relative to the FP32 model size (Fig. 6 metric). */
    double
    trafficRatio(Bytes model_bytes_fp32) const
    {
        return model_bytes_fp32 > 0
            ? static_cast<double>(traffic.totalBytes()) /
                static_cast<double>(model_bytes_fp32)
            : 0.0;
    }
};

} // namespace mobius

#endif // MOBIUS_RUNTIME_STEP_STATS_HH
