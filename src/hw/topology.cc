#include "hw/topology.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mobius
{

Topology::Topology(const std::string &name)
{
    Node dram;
    dram.id = 0;
    dram.kind = NodeKind::Dram;
    dram.name = name;
    nodes_.push_back(dram);
}

int
Topology::addNode(NodeKind kind, const std::string &name, int parent,
                  double link_capacity)
{
    if (parent < 0 || parent >= numNodes())
        panic("addNode: bad parent id %d", parent);
    if (link_capacity <= 0)
        panic("addNode: non-positive link capacity");

    Node n;
    n.id = numNodes();
    n.kind = kind;
    n.name = name;
    n.parent = parent;

    Link l;
    l.id = numLinks();
    l.nodeA = parent;
    l.nodeB = n.id;
    l.capacity = link_capacity;
    l.name = nodes_[parent].name + "<->" + name;
    n.upLink = l.id;

    links_.push_back(l);
    nodes_.push_back(n);
    return n.id;
}

int
Topology::addRootComplex(const std::string &name, double link_capacity)
{
    return addNode(NodeKind::RootComplex, name, 0, link_capacity);
}

int
Topology::addSwitch(int parent, const std::string &name,
                    double link_capacity)
{
    return addNode(NodeKind::Switch, name, parent, link_capacity);
}

int
Topology::addGpu(int parent, const std::string &name,
                 double link_capacity, const GpuSpec &spec)
{
    int id = addNode(NodeKind::Gpu, name, parent, link_capacity);
    int gpu = numGpus();
    nodes_[id].gpuIndex = gpu;
    gpuNodes_.push_back(id);
    gpuSpecs_.push_back(&spec);
    for (auto &row : peerLink_)
        row.push_back(-1);
    peerLink_.emplace_back(gpuNodes_.size(), -1);
    return gpu;
}

int
Topology::addPeerLink(int gpu_a, int gpu_b, double capacity)
{
    if (gpu_a < 0 || gpu_a >= numGpus() || gpu_b < 0 ||
        gpu_b >= numGpus() || gpu_a == gpu_b) {
        panic("addPeerLink: bad GPU pair (%d, %d)", gpu_a, gpu_b);
    }
    Link l;
    l.id = numLinks();
    l.nodeA = gpuNodes_[gpu_a];
    l.nodeB = gpuNodes_[gpu_b];
    l.capacity = capacity;
    l.peer = true;
    l.name = strfmt("nvlink[%d-%d]", gpu_a, gpu_b);
    links_.push_back(l);
    peerLink_[gpu_a][gpu_b] = l.id;
    peerLink_[gpu_b][gpu_a] = l.id;
    return l.id;
}

void
Topology::setLinkCapacity(int link, double capacity)
{
    if (link < 0 || link >= numLinks())
        fatal("setLinkCapacity: no link %d (topology has %d)", link,
              numLinks());
    if (capacity <= 0.0)
        fatal("setLinkCapacity: capacity must be > 0, got %g",
              capacity);
    links_[static_cast<std::size_t>(link)].capacity = capacity;
}

int
Topology::findLinkByName(const std::string &name) const
{
    for (const Link &l : links_) {
        if (l.name == name)
            return l.id;
    }
    return -1;
}

int
Topology::rootComplexOf(int gpu) const
{
    if (gpu < 0 || gpu >= numGpus())
        panic("rootComplexOf: bad gpu %d", gpu);
    int n = gpuNodes_[gpu];
    while (n >= 0 && nodes_[n].kind != NodeKind::RootComplex)
        n = nodes_[n].parent;
    if (n < 0)
        panic("GPU %d has no root complex above it", gpu);
    return n;
}

std::vector<int>
Topology::gpusUnderRootComplex(int rc) const
{
    std::vector<int> out;
    for (int g = 0; g < numGpus(); ++g) {
        if (rootComplexOf(g) == rc)
            out.push_back(g);
    }
    return out;
}

std::vector<int>
Topology::rootComplexes() const
{
    std::vector<int> out;
    for (const auto &n : nodes_) {
        if (n.kind == NodeKind::RootComplex)
            out.push_back(n.id);
    }
    return out;
}

int
Topology::sharedRootComplexDegree(int gpu_a, int gpu_b) const
{
    int rc_a = rootComplexOf(gpu_a);
    if (rc_a != rootComplexOf(gpu_b))
        return 0;
    return static_cast<int>(gpusUnderRootComplex(rc_a).size());
}

std::vector<Hop>
Topology::hopsToRoot(int from) const
{
    std::vector<Hop> hops;
    int n = from;
    while (nodes_[n].parent >= 0) {
        // Walking child -> parent traverses the link in the
        // nodeB -> nodeA direction, i.e. not forward.
        hops.push_back(Hop{nodes_[n].upLink, false});
        n = nodes_[n].parent;
    }
    return hops;
}

bool
Topology::routable(Endpoint src, Endpoint dst) const
{
    if (src == dst)
        return false;
    if (src.isDram || dst.isDram)
        return true;
    return gpudirectP2p_;
}

std::vector<Hop>
Topology::route(Endpoint src, Endpoint dst) const
{
    if (src == dst)
        panic("route: src == dst");

    if (src.isDram && !dst.isDram) {
        // DRAM -> GPU: reverse of the GPU's walk to the root, with
        // every hop flipped to the parent -> child direction.
        auto up = hopsToRoot(gpuNodes_[dst.gpu]);
        std::vector<Hop> hops;
        for (auto it = up.rbegin(); it != up.rend(); ++it)
            hops.push_back(Hop{it->link, true});
        return hops;
    }
    if (!src.isDram && dst.isDram)
        return hopsToRoot(gpuNodes_[src.gpu]);

    // GPU -> GPU.
    if (!gpudirectP2p_) {
        fatal("GPU%d -> GPU%d transfer requested but GPUDirect P2P is "
              "not supported on this server; the transfer must be "
              "staged through DRAM", src.gpu, dst.gpu);
    }
    int direct = peerLink_[src.gpu][dst.gpu];
    if (direct >= 0) {
        const Link &l = links_[direct];
        bool forward = l.nodeA == gpuNodes_[src.gpu];
        return {Hop{direct, forward}};
    }

    // P2P over the PCIe fabric: up to the lowest common ancestor,
    // then down.
    auto up_src = hopsToRoot(gpuNodes_[src.gpu]);
    auto up_dst = hopsToRoot(gpuNodes_[dst.gpu]);
    // Chains of node ids from each GPU to the root.
    std::vector<int> chain_src{gpuNodes_[src.gpu]};
    for (const auto &h : up_src)
        chain_src.push_back(links_[h.link].nodeA);
    std::vector<int> chain_dst{gpuNodes_[dst.gpu]};
    for (const auto &h : up_dst)
        chain_dst.push_back(links_[h.link].nodeA);

    // Find the first node of chain_src that appears in chain_dst.
    int lca = -1;
    std::size_t src_steps = 0;
    std::size_t dst_steps = 0;
    for (std::size_t i = 0; i < chain_src.size() && lca < 0; ++i) {
        for (std::size_t j = 0; j < chain_dst.size(); ++j) {
            if (chain_src[i] == chain_dst[j]) {
                lca = chain_src[i];
                src_steps = i;
                dst_steps = j;
                break;
            }
        }
    }
    if (lca < 0)
        panic("no common ancestor for GPU%d and GPU%d", src.gpu,
              dst.gpu);

    std::vector<Hop> hops(up_src.begin(),
                          up_src.begin() +
                              static_cast<std::ptrdiff_t>(src_steps));
    for (std::size_t j = dst_steps; j-- > 0;)
        hops.push_back(Hop{up_dst[j].link, true});
    return hops;
}

} // namespace mobius
