/**
 * @file
 * GPU device specifications (Table 1 of the paper plus the V100 used by
 * the data-center experiments in §4.8).
 *
 * Throughput numbers are peak; the compute-time model in src/model
 * applies an efficiency factor on top. Prices are the paper's.
 */

#ifndef MOBIUS_HW_GPU_SPEC_HH
#define MOBIUS_HW_GPU_SPEC_HH

#include <string>

#include "base/units.hh"

namespace mobius
{

/** Static description of a GPU device type. */
struct GpuSpec
{
    std::string name;       //!< marketing name ("RTX 3090-Ti", ...)
    double fp32Flops;       //!< peak FP32 FLOP/s
    double fp16Flops;       //!< peak FP16 tensor-core FLOP/s
    int tensorCores;        //!< tensor core count (Table 1)
    Bytes memBytes;         //!< device memory capacity
    double priceUsd;        //!< unit price (Table 1 / §2.2)
    bool gpudirectP2p;      //!< GPUDirect peer-to-peer support
    bool nvlink;            //!< high-bandwidth connectivity support
};

/** NVIDIA GeForce RTX 3090-Ti (the paper's commodity GPU). */
const GpuSpec &rtx3090Ti();

/** NVIDIA A100 (Table 1 comparison column). */
const GpuSpec &a100();

/** NVIDIA V100 16 GB (EC2 p3.8xlarge, §4.8). */
const GpuSpec &v100();

} // namespace mobius

#endif // MOBIUS_HW_GPU_SPEC_HH
