#include "hw/resource.hh"

#include <cstdlib>

#include "base/logging.hh"

namespace mobius
{

namespace
{

/** Parse the integer suffix of e.g. "gpu3"; -1 when malformed. */
int
parseIndexSuffix(const std::string &resource, std::size_t prefix)
{
    if (resource.size() <= prefix)
        return -1;
    char *end = nullptr;
    long v = std::strtol(resource.c_str() + prefix, &end, 10);
    if (end == nullptr || *end != '\0' || v < 0)
        return -1;
    return static_cast<int>(v);
}

[[noreturn]] void
badResource(const std::string &context)
{
    fatal("cannot parse resource in '%s'; expected rcN, gpuN, cpu, "
          "compute|transfer|optimizer, or link:NAME",
          context.c_str());
}

} // namespace

ResourceRef
parseResourceRef(const std::string &resource, const Server &server,
                 const std::string &context)
{
    const Topology &topo = server.topo;
    ResourceRef ref;
    ref.resource = resource;
    const std::string &r = resource;
    if (r == "cpu") {
        ref.kind = ResourceKind::CpuOptimizer;
    } else if (r == "compute" || r == "transfer" ||
               r == "optimizer") {
        ref.kind = ResourceKind::Category;
    } else if (r.rfind("gpu", 0) == 0) {
        ref.kind = ResourceKind::GpuCompute;
        ref.index = parseIndexSuffix(r, 3);
        if (ref.index < 0)
            badResource(context);
        if (ref.index >= topo.numGpus())
            fatal("resource '%s': server has %d GPUs", r.c_str(),
                  topo.numGpus());
    } else if (r.rfind("rc", 0) == 0) {
        ref.kind = ResourceKind::RootComplex;
        ref.index = parseIndexSuffix(r, 2);
        if (ref.index < 0)
            badResource(context);
        int count = static_cast<int>(topo.rootComplexes().size());
        if (ref.index >= count)
            fatal("resource '%s': server has %d root complexes",
                  r.c_str(), count);
    } else if (r.rfind("link:", 0) == 0) {
        ref.kind = ResourceKind::Link;
        ref.index = topo.findLinkByName(r.substr(5));
        if (ref.index < 0)
            fatal("resource '%s': no such link (see topology link "
                  "names, e.g. dram<->rc0)",
                  r.c_str());
    } else {
        badResource(context);
    }
    return ref;
}

std::vector<int>
resourceLinks(const ResourceRef &ref, const Topology &topo)
{
    switch (ref.kind) {
      case ResourceKind::Link:
        return {ref.index};
      case ResourceKind::RootComplex: {
        int rc = topo.rootComplexes()[static_cast<std::size_t>(
            ref.index)];
        return {topo.node(rc).upLink};
      }
      case ResourceKind::Category:
        if (ref.resource == "transfer") {
            std::vector<int> all;
            for (int l = 0; l < topo.numLinks(); ++l)
                all.push_back(l);
            return all;
        }
        return {};
      case ResourceKind::GpuCompute:
      case ResourceKind::CpuOptimizer:
        return {};
    }
    return {};
}

const char *
resourceKindName(ResourceKind kind)
{
    switch (kind) {
      case ResourceKind::Link: return "link";
      case ResourceKind::RootComplex: return "rootComplex";
      case ResourceKind::GpuCompute: return "gpuCompute";
      case ResourceKind::CpuOptimizer: return "cpuOptimizer";
      case ResourceKind::Category: return "category";
    }
    return "?";
}

} // namespace mobius
