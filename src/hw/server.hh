/**
 * @file
 * Prebuilt server configurations matching the paper's evaluation (§4).
 *
 * Commodity server: 3090-Ti GPUs on PCIe 3.0, no P2P, DRAM 1.5 TB.
 * GPU topologies are described as root-complex groups: Topo 4 = {4},
 * Topo 2+2 = {2, 2}, Topo 1+3 = {1, 3}, the 8-GPU box = {4, 4}.
 *
 * Data-center server: EC2 p3.8xlarge lookalike, 4x V100 with NVLink
 * full mesh and GPUDirect P2P.
 */

#ifndef MOBIUS_HW_SERVER_HH
#define MOBIUS_HW_SERVER_HH

#include <string>
#include <vector>

#include "hw/topology.hh"

namespace mobius
{

/** A complete server: interconnect + DRAM + hourly price. */
struct Server
{
    std::string name;            //!< printable configuration name
    Topology topo;               //!< interconnect + GPUs
    Bytes dramBytes = 0;         //!< host DRAM capacity
    double dollarsPerHour = 0.0; //!< rental price (Table 2)
};

/**
 * Measured effective PCIe 3.0 x16 bandwidth. The paper measures a
 * 13.1 GB/s maximum on its 3090-Ti box (§4.2), below the 16 GB/s
 * theoretical rate.
 */
constexpr double kPcie3x16Bw = 13.1 * GB;

/** Effective per-pair NVLink bandwidth on the 4x V100 hybrid mesh. */
constexpr double kNvlinkPairBw = 75.0 * GB;

/**
 * Build a commodity GPU server.
 *
 * @param groups GPUs per CPU root complex, e.g. {2, 2} for Topo 2+2.
 * @param spec   GPU device type (default 3090-Ti).
 */
Server makeCommodityServer(const std::vector<int> &groups,
                           const GpuSpec &spec = rtx3090Ti());

/** Parse "4", "2+2", "1+3", "4+4" into root-complex groups. */
std::vector<int> parseTopoGroups(const std::string &topo);

/** Build the data-center server of §4.8 (4x V100, NVLink, P2P). */
Server makeDataCenterServer(int num_gpus = 4);

} // namespace mobius

#endif // MOBIUS_HW_SERVER_HH
