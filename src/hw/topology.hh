/**
 * @file
 * PCIe/NVLink interconnect topology of a GPU server.
 *
 * The topology is a tree rooted at host DRAM: DRAM -> CPU root
 * complexes -> PCIe switches -> GPUs, optionally augmented with
 * GPU-to-GPU peer links (NVLink) on data-center servers. Every link is
 * full duplex; each direction of each link is an independent capacity
 * pool that concurrent flows share (this is where root-complex
 * contention, §2.2 of the paper, comes from).
 *
 * Transfers between two GPUs without GPUDirect P2P cannot use a single
 * path; the transfer engine stages them through DRAM (two flows), which
 * matches how commodity servers behave.
 */

#ifndef MOBIUS_HW_TOPOLOGY_HH
#define MOBIUS_HW_TOPOLOGY_HH

#include <string>
#include <vector>

#include "base/units.hh"
#include "hw/gpu_spec.hh"

namespace mobius
{

/** Kinds of node in the interconnect tree. */
enum class NodeKind { Dram, RootComplex, Switch, Gpu };

/** One vertex of the interconnect tree. */
struct Node
{
    int id = -1;         //!< node id within the topology
    NodeKind kind = NodeKind::Dram; //!< node role
    std::string name;    //!< printable name ("gpu0", "rc1", ...)
    int parent = -1;     //!< parent node id (-1 for DRAM)
    int upLink = -1;     //!< link id towards the parent (-1 for DRAM)
    int gpuIndex = -1;   //!< dense GPU index for Gpu nodes, else -1
};

/** One full-duplex link; each direction has capacity @a capacity B/s. */
struct Link
{
    int id = -1;         //!< link id within the topology
    int nodeA = -1;      //!< parent side (or first peer for NVLink)
    int nodeB = -1;      //!< child side (or second peer)
    double capacity = 0; //!< bytes/second per direction
    bool peer = false;   //!< true for GPU-GPU (NVLink) links
    std::string name;    //!< printable name ("rc0<->sw0", ...)
};

/**
 * One hop of a route: a link plus the direction it is traversed in.
 * poolId() names the capacity pool (a link direction) used for
 * max-min fair bandwidth sharing.
 */
struct Hop
{
    int link = -1;       //!< the link traversed
    bool forward = true; //!< true: nodeA -> nodeB direction

    /** Capacity-pool id of this (link, direction) pair. */
    int poolId() const { return link * 2 + (forward ? 0 : 1); }
};

/** A flow endpoint: host DRAM or a GPU (by dense index). */
struct Endpoint
{
    bool isDram = true;  //!< true when the endpoint is host DRAM
    int gpu = -1;        //!< dense GPU index when !isDram, else -1

    /** @return the host-DRAM endpoint. */
    static Endpoint dram() { return Endpoint{true, -1}; }

    /** @return the endpoint for GPU @p g. */
    static Endpoint gpuAt(int g) { return Endpoint{false, g}; }

    /** Structural equality. */
    bool
    operator==(const Endpoint &o) const
    {
        return isDram == o.isDram && gpu == o.gpu;
    }
};

/** The interconnect tree plus peer links. */
class Topology
{
  public:
    /** Create a topology with a single DRAM root named @p name. */
    explicit Topology(const std::string &name = "dram");

    /** Add a root complex attached to DRAM. */
    int addRootComplex(const std::string &name, double link_capacity);

    /** Add a PCIe switch below @p parent. */
    int addSwitch(int parent, const std::string &name,
                  double link_capacity);

    /**
     * Add a GPU below @p parent.
     * @return the dense GPU index of the new device.
     */
    int addGpu(int parent, const std::string &name,
               double link_capacity, const GpuSpec &spec);

    /** Add an NVLink-style GPU-GPU peer link. */
    int addPeerLink(int gpu_a, int gpu_b, double capacity);

    /** Enable direct GPU-to-GPU routing (GPUDirect P2P). */
    void setGpudirectP2p(bool enabled) { gpudirectP2p_ = enabled; }

    /** @return true when GPU-GPU flows bypass DRAM staging. */
    bool gpudirectP2p() const { return gpudirectP2p_; }

    int numGpus() const { return static_cast<int>(gpuNodes_.size()); }
    int numLinks() const { return static_cast<int>(links_.size()); }
    int numNodes() const { return static_cast<int>(nodes_.size()); }

    const Node &node(int id) const { return nodes_[id]; }
    const Link &link(int id) const { return links_[id]; }

    /**
     * Overwrite a link's per-direction capacity. This is the what-if
     * perturbation hook: counterfactual re-simulation builds a copy
     * of the server and rescales the links a virtual speedup names
     * (obs/whatif.hh). fatal() on an unknown link or capacity <= 0.
     */
    void setLinkCapacity(int link, double capacity);

    /** @return id of the link named @p name, or -1 when absent. */
    int findLinkByName(const std::string &name) const;

    /** @return the tree node id of GPU @p gpu. */
    int gpuNode(int gpu) const { return gpuNodes_[gpu]; }

    /** @return the device spec of GPU @p gpu. */
    const GpuSpec &gpuSpec(int gpu) const { return *gpuSpecs_[gpu]; }

    /** @return node id of the root complex above GPU @p gpu. */
    int rootComplexOf(int gpu) const;

    /** @return dense indices of all GPUs under root complex @p rc. */
    std::vector<int> gpusUnderRootComplex(int rc) const;

    /** @return ids of all root-complex nodes. */
    std::vector<int> rootComplexes() const;

    /**
     * Number of GPUs sharing the root complex of @p gpu_a when
     * @p gpu_a and @p gpu_b live under the same root complex; zero
     * otherwise. This is shared(i, j) of Eq. 12.
     */
    int sharedRootComplexDegree(int gpu_a, int gpu_b) const;

    /**
     * Compute the hop list for a transfer from @p src to @p dst.
     *
     * Valid routes: DRAM<->GPU (tree walk), and GPU<->GPU when P2P is
     * enabled (peer link when present, else through the tree fabric).
     * GPU<->GPU without P2P must be staged by the caller; requesting
     * such a path is fatal().
     */
    std::vector<Hop> route(Endpoint src, Endpoint dst) const;

    /** @return true if a single-path route exists for src -> dst. */
    bool routable(Endpoint src, Endpoint dst) const;

  private:
    int addNode(NodeKind kind, const std::string &name, int parent,
                double link_capacity);

    /** Hops walking from node @p from up to the DRAM root. */
    std::vector<Hop> hopsToRoot(int from) const;

    std::vector<Node> nodes_;
    std::vector<Link> links_;
    std::vector<int> gpuNodes_;
    std::vector<const GpuSpec *> gpuSpecs_;
    /** peerLink_[a][b] = link id of the NVLink between a and b, or -1 */
    std::vector<std::vector<int>> peerLink_;
    bool gpudirectP2p_ = false;
};

} // namespace mobius

#endif // MOBIUS_HW_TOPOLOGY_HH
