#include "hw/gpu_spec.hh"

namespace mobius
{

const GpuSpec &
rtx3090Ti()
{
    static const GpuSpec spec{
        "RTX 3090-Ti",
        40.0 * TFLOPS,       // Table 1: 40 TFlops FP32
        160.0 * TFLOPS,      // FP16 tensor-core peak
        336,                 // Table 1
        24 * GiB,
        2000.0,              // Table 1
        false,               // no GPUDirect P2P
        false,               // no NVLink
    };
    return spec;
}

const GpuSpec &
a100()
{
    static const GpuSpec spec{
        "A100",
        19.0 * TFLOPS,       // Table 1: 19 TFlops FP32
        312.0 * TFLOPS,
        432,                 // Table 1
        40 * GiB,
        14000.0,             // Table 1
        true,
        true,
    };
    return spec;
}

const GpuSpec &
v100()
{
    static const GpuSpec spec{
        "V100-16GB",
        15.7 * TFLOPS,
        125.0 * TFLOPS,
        640,
        16 * GiB,            // §4 setup: 16 GB memory
        10000.0,
        true,
        true,
    };
    return spec;
}

} // namespace mobius
