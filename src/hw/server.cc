#include "hw/server.hh"

#include "base/logging.hh"

namespace mobius
{

Server
makeCommodityServer(const std::vector<int> &groups, const GpuSpec &spec)
{
    Server s;
    s.topo = Topology("dram");
    s.dramBytes = 1536 * GiB; // §4 setup: 1.5 TB DRAM

    std::string topo_name;
    int gpu = 0;
    int rc_index = 0;
    for (int count : groups) {
        if (count <= 0)
            fatal("commodity server: group with %d GPUs", count);
        if (!topo_name.empty())
            topo_name += "+";
        topo_name += std::to_string(count);

        int rc = s.topo.addRootComplex(strfmt("rc%d", rc_index),
                                       kPcie3x16Bw);
        int sw = s.topo.addSwitch(rc, strfmt("sw%d", rc_index),
                                  kPcie3x16Bw);
        for (int i = 0; i < count; ++i) {
            s.topo.addGpu(sw, strfmt("gpu%d", gpu), kPcie3x16Bw, spec);
            ++gpu;
        }
        ++rc_index;
    }
    s.topo.setGpudirectP2p(spec.gpudirectP2p);
    // Cloud rental pricing for commodity GPUs (the paper's Fig. 15b
    // uses GPU-cloud rates, its reference [8]): ~$1.55 per 3090-Ti
    // per hour.
    s.dollarsPerHour = 1.55 * gpu;
    s.name = strfmt("%dx %s (Topo %s)", gpu, spec.name.c_str(),
                    topo_name.c_str());
    return s;
}

std::vector<int>
parseTopoGroups(const std::string &topo)
{
    std::vector<int> groups;
    std::string cur;
    for (char c : topo) {
        if (c == '+') {
            groups.push_back(std::stoi(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        groups.push_back(std::stoi(cur));
    if (groups.empty())
        fatal("cannot parse GPU topology '%s'", topo.c_str());
    return groups;
}

Server
makeDataCenterServer(int num_gpus)
{
    Server s;
    s.topo = Topology("dram");
    s.dramBytes = 244 * GiB;      // p3.8xlarge DRAM
    s.dollarsPerHour = 12.24;     // EC2 p3.8xlarge on-demand

    // Host attachment: two root complexes, half the GPUs each, PCIe
    // 3.0 x16 per GPU (used for DRAM offload traffic).
    int made = 0;
    for (int rc_i = 0; rc_i < 2 && made < num_gpus; ++rc_i) {
        int rc = s.topo.addRootComplex(strfmt("rc%d", rc_i),
                                       kPcie3x16Bw);
        int sw = s.topo.addSwitch(rc, strfmt("sw%d", rc_i),
                                  kPcie3x16Bw);
        int in_group = (num_gpus + 1) / 2;
        for (int i = 0; i < in_group && made < num_gpus; ++i) {
            s.topo.addGpu(sw, strfmt("gpu%d", made), kPcie3x16Bw,
                          v100());
            ++made;
        }
    }

    // NVLink full mesh between all GPUs.
    for (int a = 0; a < num_gpus; ++a) {
        for (int b = a + 1; b < num_gpus; ++b)
            s.topo.addPeerLink(a, b, kNvlinkPairBw);
    }
    s.topo.setGpudirectP2p(true);
    s.name = strfmt("%dx V100 (NVLink)", num_gpus);
    return s;
}

} // namespace mobius
