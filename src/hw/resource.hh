/**
 * @file
 * Named hardware-resource references, shared by every CLI surface
 * that targets "a piece of the machine" — the what-if profiler's
 * `--whatif RESOURCE=FACTOR` specs (obs/whatif.hh) and the fault
 * plan's degradation targets (fault/fault_plan.hh). One parser means
 * one grammar and one set of error messages, and both flags validate
 * their resource names against the server *before* any simulation
 * runs.
 */

#ifndef MOBIUS_HW_RESOURCE_HH
#define MOBIUS_HW_RESOURCE_HH

#include <string>
#include <vector>

#include "hw/server.hh"

namespace mobius
{

/** Resource classes a spec can target. */
enum class ResourceKind
{
    Link,         //!< one interconnect link, by topology name
    RootComplex,  //!< a root complex's DRAM uplink
    GpuCompute,   //!< one GPU's kernel throughput
    CpuOptimizer, //!< the CPU-side optimizer
    Category,     //!< a whole trace category (compute/transfer/...)
};

/** One validated resource reference. */
struct ResourceRef
{
    ResourceKind kind = ResourceKind::Category;
    /** GPU index, root-complex ordinal, or link id (kind-typed). */
    int index = -1;
    /** The resource text as given, e.g. "rc0" or "link:dram<->rc1". */
    std::string resource;
};

/**
 * Parse "rcN", "gpuN", "cpu", "compute|transfer|optimizer", or
 * "link:NAME" against @p server (so unknown GPUs, root complexes,
 * and links are rejected). fatal() with a usage message naming
 * @p context (the full flag text) on malformed or unknown input.
 */
ResourceRef parseResourceRef(const std::string &resource,
                             const Server &server,
                             const std::string &context);

/**
 * @return the topology link ids whose capacity @p ref governs: the
 *         link itself, a root complex's uplink, or every link for
 *         the "transfer" category. Empty for compute / CPU / other
 *         category kinds.
 */
std::vector<int> resourceLinks(const ResourceRef &ref,
                               const Topology &topo);

/** @return a short name for @p kind ("link", "gpuCompute", ...). */
const char *resourceKindName(ResourceKind kind);

} // namespace mobius

#endif // MOBIUS_HW_RESOURCE_HH
