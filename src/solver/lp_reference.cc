#include "solver/lp_reference.hh"

#include <cmath>

#include "base/logging.hh"

namespace mobius
{

namespace
{

constexpr double kEps = 1e-9;

/**
 * Dense tableau simplex over the standard form
 *     min c^T y  s.t.  T y = rhs,  y >= 0
 * built by the driver below. Uses Bland's rule, so it terminates.
 */
class RefTableau
{
  public:
    RefTableau(int rows, int cols, std::uint64_t budget)
        : m_(rows), n_(cols), budget_(budget),
          a_(static_cast<std::size_t>(rows),
             std::vector<double>(static_cast<std::size_t>(cols) + 1,
                                 0.0)),
          basis_(static_cast<std::size_t>(rows), -1)
    {}

    double &at(int r, int c) { return a_[r][c]; }
    double &rhs(int r) { return a_[r][n_]; }
    int basis(int r) const { return basis_[r]; }
    void setBasis(int r, int var) { basis_[r] = var; }

    /**
     * Run simplex iterations for objective @p c (size n_).
     * @return false if the LP is unbounded below.
     */
    bool
    optimize(const std::vector<double> &c)
    {
        // Reduced costs: z_j = c_j - c_B^T B^{-1} A_j, computed
        // directly on the (already basis-reduced) tableau.
        std::vector<double> red(static_cast<std::size_t>(n_));
        while (true) {
            if (exhausted())
                return true; // caller must check exhausted()
            for (int j = 0; j < n_; ++j) {
                double v = c[j];
                for (int r = 0; r < m_; ++r)
                    v -= c[basis_[r]] * a_[r][j];
                red[j] = v;
            }
            // Bland: first improving column.
            int enter = -1;
            for (int j = 0; j < n_; ++j) {
                if (red[j] < -kEps) {
                    enter = j;
                    break;
                }
            }
            if (enter < 0)
                return true; // optimal

            // Ratio test, Bland tie-break by basis variable index.
            int leave = -1;
            double best = 0.0;
            for (int r = 0; r < m_; ++r) {
                if (a_[r][enter] > kEps) {
                    double ratio = a_[r][n_] / a_[r][enter];
                    if (leave < 0 || ratio < best - kEps ||
                        (std::fabs(ratio - best) <= kEps &&
                         basis_[r] < basis_[leave])) {
                        leave = r;
                        best = ratio;
                    }
                }
            }
            if (leave < 0)
                return false; // unbounded
            pivot(leave, enter);
        }
    }

    std::uint64_t pivots() const { return pivots_; }

    /** @return true when the optional pivot budget is spent. */
    bool
    exhausted() const
    {
        return budget_ != 0 && pivots_ >= budget_;
    }

    void
    pivot(int r, int c)
    {
        ++pivots_;
        double p = a_[r][c];
        for (int j = 0; j <= n_; ++j)
            a_[r][j] /= p;
        for (int i = 0; i < m_; ++i) {
            if (i == r)
                continue;
            double f = a_[i][c];
            if (std::fabs(f) < kEps)
                continue;
            for (int j = 0; j <= n_; ++j)
                a_[i][j] -= f * a_[r][j];
        }
        basis_[r] = c;
    }

    int m() const { return m_; }
    int n() const { return n_; }

  private:
    int m_, n_;
    std::uint64_t budget_ = 0;
    std::uint64_t pivots_ = 0;
    std::vector<std::vector<double>> a_;
    std::vector<int> basis_;
};

} // namespace

LpSolution
solveLpReference(const LpProblem &problem, std::uint64_t maxPivots)
{
    LpSolution sol;
    const int nv = problem.numVars;
    if (static_cast<int>(problem.objective.size()) != nv ||
        static_cast<int>(problem.lower.size()) != nv ||
        static_cast<int>(problem.upper.size()) != nv) {
        panic("LP problem arrays inconsistent with numVars");
    }

    // Quick bound sanity: empty box -> infeasible.
    for (int j = 0; j < nv; ++j) {
        if (problem.lower[j] > problem.upper[j] + kEps) {
            sol.status = LpSolution::Status::Infeasible;
            return sol;
        }
    }

    // --- Variable substitution into y >= 0 -------------------------
    // x_j = lb_j + y_j            when lb_j finite
    // x_j = y_j^+ - y_j^-         when lb_j = -inf (free below)
    // Finite upper bounds become extra Le rows on y.
    struct VarMap
    {
        int plus = -1;   //!< y index for +part
        int minus = -1;  //!< y index for -part (free vars only)
        double shift = 0.0;
    };
    std::vector<VarMap> vmap(static_cast<std::size_t>(nv));
    int ny = 0;
    for (int j = 0; j < nv; ++j) {
        if (std::isinf(problem.lower[j])) {
            vmap[j].plus = ny++;
            vmap[j].minus = ny++;
        } else {
            vmap[j].plus = ny++;
            vmap[j].shift = problem.lower[j];
        }
    }

    // Assemble rows in y-space: coeffs dense for simplicity.
    struct StdRow
    {
        std::vector<double> a;
        Sense sense;
        double rhs;
    };
    std::vector<StdRow> rows;
    auto convert_row = [&](const std::vector<std::pair<int, double>>
                               &coeffs,
                           Sense sense, double rhs) {
        StdRow r;
        r.a.assign(static_cast<std::size_t>(ny), 0.0);
        r.sense = sense;
        r.rhs = rhs;
        for (const auto &[j, v] : coeffs) {
            if (j < 0 || j >= nv)
                panic("LP row references variable %d", j);
            r.a[vmap[j].plus] += v;
            if (vmap[j].minus >= 0)
                r.a[vmap[j].minus] -= v;
            r.rhs -= v * vmap[j].shift;
        }
        rows.push_back(std::move(r));
    };

    for (const auto &row : problem.rows)
        convert_row(row.coeffs, row.sense, row.rhs);
    for (int j = 0; j < nv; ++j) {
        if (!std::isinf(problem.upper[j]))
            convert_row({{j, 1.0}}, Sense::Le, problem.upper[j]);
    }

    // Normalise rhs >= 0.
    for (auto &r : rows) {
        if (r.rhs < 0) {
            for (auto &v : r.a)
                v = -v;
            r.rhs = -r.rhs;
            if (r.sense == Sense::Le)
                r.sense = Sense::Ge;
            else if (r.sense == Sense::Ge)
                r.sense = Sense::Le;
        }
    }

    // Column layout: y (ny) | slacks/surplus (ns) | artificials (na).
    const int m = static_cast<int>(rows.size());
    int ns = 0, na = 0;
    for (const auto &r : rows) {
        if (r.sense != Sense::Eq)
            ++ns;
        if (r.sense != Sense::Le)
            ++na;
    }
    const int ncols = ny + ns + na;
    RefTableau tab(m, ncols, maxPivots);

    int slack = ny;
    int artificial = ny + ns;
    std::vector<int> artificial_cols;
    for (int i = 0; i < m; ++i) {
        for (int j = 0; j < ny; ++j)
            tab.at(i, j) = rows[i].a[j];
        tab.rhs(i) = rows[i].rhs;
        switch (rows[i].sense) {
          case Sense::Le:
            tab.at(i, slack) = 1.0;
            tab.setBasis(i, slack);
            ++slack;
            break;
          case Sense::Ge:
            tab.at(i, slack) = -1.0;
            ++slack;
            tab.at(i, artificial) = 1.0;
            tab.setBasis(i, artificial);
            artificial_cols.push_back(artificial);
            ++artificial;
            break;
          case Sense::Eq:
            tab.at(i, artificial) = 1.0;
            tab.setBasis(i, artificial);
            artificial_cols.push_back(artificial);
            ++artificial;
            break;
        }
    }

    // --- Phase 1 ----------------------------------------------------
    if (na > 0) {
        std::vector<double> c1(static_cast<std::size_t>(ncols), 0.0);
        for (int col : artificial_cols)
            c1[col] = 1.0;
        if (!tab.optimize(c1))
            panic("phase-1 LP unbounded (impossible)");
        if (tab.exhausted()) {
            sol.status = LpSolution::Status::Infeasible;
            sol.pivots = tab.pivots();
            return sol;
        }
        double infeas = 0.0;
        for (int i = 0; i < m; ++i) {
            for (int col : artificial_cols) {
                if (tab.basis(i) == col)
                    infeas += tab.rhs(i);
            }
        }
        if (infeas > 1e-6) {
            sol.status = LpSolution::Status::Infeasible;
            sol.pivots = tab.pivots();
            return sol;
        }
        // Pivot remaining (degenerate) artificials out of the basis.
        for (int i = 0; i < m; ++i) {
            bool is_art = tab.basis(i) >= ny + ns;
            if (!is_art)
                continue;
            int enter = -1;
            for (int j = 0; j < ny + ns; ++j) {
                if (std::fabs(tab.at(i, j)) > kEps) {
                    enter = j;
                    break;
                }
            }
            if (enter >= 0)
                tab.pivot(i, enter);
            // else: the row is all-zero (redundant); leave it.
        }
    }

    // --- Phase 2 ----------------------------------------------------
    std::vector<double> c2(static_cast<std::size_t>(ncols), 0.0);
    double obj_shift = 0.0;
    for (int j = 0; j < nv; ++j) {
        c2[vmap[j].plus] += problem.objective[j];
        if (vmap[j].minus >= 0)
            c2[vmap[j].minus] -= problem.objective[j];
        obj_shift += problem.objective[j] * vmap[j].shift;
    }
    // Forbid artificials from re-entering (the historical big-M
    // penalty the production solver replaced with column exclusion).
    for (int col : artificial_cols)
        c2[col] = 1e18;

    if (!tab.optimize(c2)) {
        sol.status = LpSolution::Status::Unbounded;
        sol.pivots = tab.pivots();
        return sol;
    }
    if (tab.exhausted()) {
        sol.status = LpSolution::Status::Infeasible;
        sol.pivots = tab.pivots();
        return sol;
    }

    // --- Extract ----------------------------------------------------
    std::vector<double> y(static_cast<std::size_t>(ncols), 0.0);
    for (int i = 0; i < m; ++i) {
        if (tab.basis(i) >= 0)
            y[tab.basis(i)] = tab.rhs(i);
    }
    sol.x.resize(static_cast<std::size_t>(nv));
    for (int j = 0; j < nv; ++j) {
        double v = y[vmap[j].plus];
        if (vmap[j].minus >= 0)
            v -= y[vmap[j].minus];
        sol.x[j] = v + vmap[j].shift;
    }
    sol.objective = obj_shift;
    for (int j = 0; j < nv; ++j)
        sol.objective += problem.objective[j] *
            (sol.x[j] - vmap[j].shift);
    sol.pivots = tab.pivots();
    sol.status = LpSolution::Status::Optimal;
    return sol;
}

} // namespace mobius
