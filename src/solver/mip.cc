#include "solver/mip.hh"

#include <cmath>
#include <vector>

#include "base/logging.hh"

namespace mobius
{

namespace
{

/** One branch-and-bound node: bound overrides for the LP. */
struct Node
{
    std::vector<double> lower;
    std::vector<double> upper;
};

} // namespace

MipSolution
solveMip(const MipProblem &problem, const MipOptions &options)
{
    MipSolution best;
    if (static_cast<int>(problem.integer.size()) !=
        problem.lp.numVars) {
        panic("MIP integrality marks inconsistent with numVars");
    }

    std::vector<Node> stack;
    stack.push_back(Node{problem.lp.lower, problem.lp.upper});

    bool have_incumbent = false;
    bool exhausted = true;

    while (!stack.empty()) {
        if (best.nodesExplored >= options.maxNodes) {
            exhausted = false;
            break;
        }
        Node node = std::move(stack.back());
        stack.pop_back();
        ++best.nodesExplored;

        LpProblem relax = problem.lp;
        relax.lower = node.lower;
        relax.upper = node.upper;
        LpSolution lp = solveLp(relax);
        best.lpPivots += lp.pivots;

        if (lp.status == LpSolution::Status::Infeasible)
            continue;
        if (lp.status == LpSolution::Status::Unbounded) {
            // An unbounded relaxation at the root means the MIP is
            // unbounded (or needs bounds we don't have).
            best.status = MipSolution::Status::Unbounded;
            return best;
        }
        if (have_incumbent &&
            lp.objective >= best.objective - options.gapTol) {
            continue; // bound: cannot beat the incumbent
        }

        // Find the most fractional integer variable.
        int branch_var = -1;
        double branch_frac = 0.0;
        for (int j = 0; j < problem.lp.numVars; ++j) {
            if (!problem.integer[j])
                continue;
            double v = lp.x[j];
            double frac = v - std::floor(v);
            double dist = std::min(frac, 1.0 - frac);
            if (dist > options.integralityTol && dist > branch_frac) {
                branch_var = j;
                branch_frac = dist;
            }
        }

        if (branch_var < 0) {
            // Integral: candidate incumbent.
            if (!have_incumbent ||
                lp.objective < best.objective - options.gapTol) {
                have_incumbent = true;
                best.objective = lp.objective;
                best.x = lp.x;
                // Snap integer variables exactly.
                for (int j = 0; j < problem.lp.numVars; ++j) {
                    if (problem.integer[j])
                        best.x[j] = std::round(best.x[j]);
                }
            }
            continue;
        }

        double v = lp.x[branch_var];
        double fl = std::floor(v);

        // Push the "up" branch first so the "down" branch (often the
        // cheaper one for minimisation) is explored first (LIFO).
        Node up = node;
        up.lower[branch_var] = fl + 1.0;
        if (up.lower[branch_var] <= up.upper[branch_var] + 1e-12)
            stack.push_back(std::move(up));

        Node down = std::move(node);
        down.upper[branch_var] = fl;
        if (down.lower[branch_var] <= down.upper[branch_var] + 1e-12)
            stack.push_back(std::move(down));
    }

    if (!have_incumbent) {
        best.status = exhausted ? MipSolution::Status::Infeasible
                                : MipSolution::Status::Infeasible;
        return best;
    }
    best.status = exhausted ? MipSolution::Status::Optimal
                            : MipSolution::Status::Feasible;
    return best;
}

} // namespace mobius
