#include "solver/mip.hh"

#include <chrono>
#include <cmath>
#include <vector>

#include "base/logging.hh"
#include "obs/prof.hh"

namespace mobius
{

namespace
{

/** One branch-and-bound node: bound overrides for the LP. */
struct Node
{
    std::vector<double> lower;
    std::vector<double> upper;
};

} // namespace

std::string
mipStatusName(MipSolution::Status status)
{
    switch (status) {
      case MipSolution::Status::Optimal:    return "optimal";
      case MipSolution::Status::Feasible:   return "feasible";
      case MipSolution::Status::Infeasible: return "infeasible";
      case MipSolution::Status::Unbounded:  return "unbounded";
      case MipSolution::Status::NodeLimit:  return "node_limit";
    }
    return "?";
}

MipSolution
solveMip(const MipProblem &problem, const MipOptions &options)
{
    MipSolution best;
    const int nv = problem.lp.numVars;
    if (static_cast<int>(problem.integer.size()) != nv)
        panic("MIP integrality marks inconsistent with numVars");

    const auto t0 = std::chrono::steady_clock::now();
    auto out_of_time = [&] {
        if (options.timeLimitSeconds <= 0.0)
            return false;
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        return dt.count() >= options.timeLimitSeconds;
    };

    BoundedSimplex simplex(problem.lp);
    bool have_incumbent = false;
    bool exhausted = true;

    auto accept = [&](const LpSolution &lp) {
        if (have_incumbent &&
            lp.objective >= best.objective - options.gapTol) {
            return;
        }
        have_incumbent = true;
        best.objective = lp.objective;
        best.x = lp.x;
        for (int j = 0; j < nv; ++j) {
            if (problem.integer[j])
                best.x[j] = std::round(best.x[j]);
        }
    };

    // Incumbent seeding: fix the integer variables to the caller's
    // start point and let an LP fill in the continuous ones. If that
    // LP is feasible we have an incumbent before the first node, so
    // the bound test prunes from the start. The solve also leaves an
    // optimal basis behind for the root node to warm-start from.
    if (!options.start.empty()) {
        if (static_cast<int>(options.start.size()) != nv)
            panic("MIP start point inconsistent with numVars");
        std::vector<double> lo = problem.lp.lower;
        std::vector<double> up = problem.lp.upper;
        bool in_box = true;
        for (int j = 0; j < nv; ++j) {
            if (!problem.integer[j])
                continue;
            const double v = std::round(options.start[j]);
            if (v < lo[j] - options.integralityTol ||
                v > up[j] + options.integralityTol) {
                in_box = false;
                break;
            }
            lo[j] = v;
            up[j] = v;
        }
        if (in_box) {
            simplex.setBounds(lo, up);
            LpSolution seed = simplex.solveCold();
            best.lpPivots += seed.pivots;
            ++best.lpColdSolves;
            if (seed.ok())
                accept(seed);
        }
    }

    std::vector<Node> stack;
    stack.push_back(Node{problem.lp.lower, problem.lp.upper});

    while (!stack.empty()) {
        MOBIUS_PROF_ZONE("solver.mip_node");
        if (best.nodesExplored >= options.maxNodes || out_of_time()) {
            exhausted = false;
            break;
        }
        Node node = std::move(stack.back());
        stack.pop_back();
        ++best.nodesExplored;

        simplex.setBounds(node.lower, node.upper);
        LpSolution lp;
        if (options.warmStart && simplex.hasBasis()) {
            const std::uint64_t before = simplex.coldFallbacks();
            lp = simplex.solveWarm();
            if (simplex.coldFallbacks() > before)
                ++best.lpColdSolves;
            else
                ++best.lpWarmSolves;
        } else {
            lp = simplex.solveCold();
            ++best.lpColdSolves;
        }
        best.lpPivots += lp.pivots;

        if (lp.status == LpSolution::Status::Infeasible)
            continue;
        if (lp.status == LpSolution::Status::Unbounded) {
            // An unbounded relaxation at the root means the MIP is
            // unbounded (or needs bounds we don't have).
            best.status = MipSolution::Status::Unbounded;
            return best;
        }
        if (have_incumbent &&
            lp.objective >= best.objective - options.gapTol) {
            continue; // bound: cannot beat the incumbent
        }

        // Find the most fractional integer variable.
        int branch_var = -1;
        double branch_frac = 0.0;
        for (int j = 0; j < nv; ++j) {
            if (!problem.integer[j])
                continue;
            double v = lp.x[j];
            double frac = v - std::floor(v);
            double dist = std::min(frac, 1.0 - frac);
            if (dist > options.integralityTol && dist > branch_frac) {
                branch_var = j;
                branch_frac = dist;
            }
        }

        if (branch_var < 0) {
            // Integral: candidate incumbent.
            accept(lp);
            continue;
        }

        double v = lp.x[branch_var];
        double fl = std::floor(v);

        // Push the "up" branch first so the "down" branch (often the
        // cheaper one for minimisation) is explored first (LIFO).
        Node up = node;
        up.lower[branch_var] = fl + 1.0;
        if (up.lower[branch_var] <= up.upper[branch_var] + 1e-12)
            stack.push_back(std::move(up));

        Node down = std::move(node);
        down.upper[branch_var] = fl;
        if (down.lower[branch_var] <= down.upper[branch_var] + 1e-12)
            stack.push_back(std::move(down));
    }

    if (!have_incumbent) {
        best.status = exhausted ? MipSolution::Status::Infeasible
                                : MipSolution::Status::NodeLimit;
        return best;
    }
    best.status = exhausted ? MipSolution::Status::Optimal
                            : MipSolution::Status::Feasible;
    return best;
}

} // namespace mobius
