/**
 * @file
 * The original dense two-phase tableau simplex, kept as a slow
 * reference oracle.
 *
 * This is the pre-optimisation LP solver: Bland's rule throughout,
 * every finite upper bound lowered into an explicit Le row, free
 * variables split into positive/negative parts, and artificial
 * columns suppressed after phase 1 with a big-M objective penalty.
 * The production solver (lp.hh) replaced all of that with a
 * bounded-variable simplex; this copy exists so that
 *
 *  - randomized tests can cross-check the new solver's objectives
 *    against an independent implementation, and
 *  - bench_solver can measure the pivot/wall-clock gap between the
 *    pre-change and current solvers on the same instances.
 *
 * Do not use it on a hot path, and do not "fix" its known slowness
 * (that is the point of keeping it).
 */

#ifndef MOBIUS_SOLVER_LP_REFERENCE_HH
#define MOBIUS_SOLVER_LP_REFERENCE_HH

#include "solver/lp.hh"

namespace mobius
{

/**
 * Solve @p problem with the historical two-phase Bland simplex.
 *
 * @param maxPivots optional pivot budget, 0 = unlimited (the
 *     historical behaviour). Bland's rule on large degenerate
 *     instances can need hours, so bench_solver bounds its legacy
 *     runs; an exhausted budget aborts the solve with
 *     Status::Infeasible (i.e. !ok()) and pivots >= maxPivots, which
 *     is how a budgeted caller tells "unresolved" from a genuine
 *     infeasibility proof.
 */
LpSolution solveLpReference(const LpProblem &problem,
                            std::uint64_t maxPivots = 0);

} // namespace mobius

#endif // MOBIUS_SOLVER_LP_REFERENCE_HH
