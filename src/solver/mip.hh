/**
 * @file
 * Branch-and-bound mixed-integer programming on top of the simplex LP
 * solver — the in-tree replacement for the Gurobi dependency of the
 * paper's §3.2.
 *
 * Any subset of variables can be marked integer; branching is on the
 * most fractional integer variable; nodes are explored depth-first
 * (smaller branch first) and pruned against the incumbent.
 */

#ifndef MOBIUS_SOLVER_MIP_HH
#define MOBIUS_SOLVER_MIP_HH

#include <cstdint>
#include <vector>

#include "solver/lp.hh"

namespace mobius
{

/** A MIP: an LP plus integrality marks. */
struct MipProblem
{
    LpProblem lp;               //!< the relaxation
    std::vector<bool> integer;  //!< size lp.numVars

    /** @return index of a fresh integer variable. */
    int
    addIntVar(double coeff, double lb, double ub)
    {
        int idx = lp.addVar(coeff, lb, ub);
        integer.resize(static_cast<std::size_t>(lp.numVars), false);
        integer[idx] = true;
        return idx;
    }

    /** @return index of a fresh binary variable. */
    int addBoolVar(double coeff) { return addIntVar(coeff, 0.0, 1.0); }

    /** @return index of a fresh continuous variable. */
    int
    addVar(double coeff, double lb = 0.0, double ub = kLpInf)
    {
        int idx = lp.addVar(coeff, lb, ub);
        integer.resize(static_cast<std::size_t>(lp.numVars), false);
        return idx;
    }
};

/** Branch-and-bound options. */
struct MipOptions
{
    std::uint64_t maxNodes = 200000;  //!< search budget
    double integralityTol = 1e-6;     //!< "is integer" tolerance
    double gapTol = 1e-9;             //!< absolute pruning slack
};

/** Outcome of a MIP solve. */
struct MipSolution
{
    enum class Status
    {
        Optimal,      //!< proven optimal
        Feasible,     //!< node budget hit; best incumbent returned
        Infeasible,   //!< no integral point exists
        Unbounded,    //!< relaxation unbounded at the root
    };

    Status status = Status::Infeasible; //!< solve outcome
    double objective = 0.0;          //!< incumbent objective
    std::vector<double> x;           //!< incumbent point
    std::uint64_t nodesExplored = 0; //!< B&B nodes expanded
    std::uint64_t lpPivots = 0;  //!< simplex pivots over all nodes

    /** @return true when a feasible integral point was found. */
    bool
    ok() const
    {
        return status == Status::Optimal ||
            status == Status::Feasible;
    }
};

/** Solve @p problem by branch and bound. */
MipSolution solveMip(const MipProblem &problem,
                     const MipOptions &options = {});

} // namespace mobius

#endif // MOBIUS_SOLVER_MIP_HH
