/**
 * @file
 * Branch-and-bound mixed-integer programming on top of the simplex LP
 * solver — the in-tree replacement for the Gurobi dependency of the
 * paper's §3.2.
 *
 * Any subset of variables can be marked integer; branching is on the
 * most fractional integer variable; nodes are explored depth-first
 * (smaller branch first) and pruned against the incumbent.
 *
 * The search keeps one BoundedSimplex alive across all nodes: a child
 * node differs from its parent only in variable bounds, so each node
 * re-enters the solver warm from the previous basis (dual-simplex
 * repair) instead of re-running phase 1 with artificial variables.
 * Callers may also seed the incumbent from a known-good integer point
 * (see MipOptions::start) so pruning bites from the first node.
 */

#ifndef MOBIUS_SOLVER_MIP_HH
#define MOBIUS_SOLVER_MIP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "solver/lp.hh"

namespace mobius
{

/** A MIP: an LP plus integrality marks. */
struct MipProblem
{
    LpProblem lp;               //!< the relaxation
    std::vector<bool> integer;  //!< size lp.numVars

    /** @return index of a fresh integer variable. */
    int
    addIntVar(double coeff, double lb, double ub)
    {
        int idx = lp.addVar(coeff, lb, ub);
        integer.resize(static_cast<std::size_t>(lp.numVars), false);
        integer[idx] = true;
        return idx;
    }

    /** @return index of a fresh binary variable. */
    int addBoolVar(double coeff) { return addIntVar(coeff, 0.0, 1.0); }

    /** @return index of a fresh continuous variable. */
    int
    addVar(double coeff, double lb = 0.0, double ub = kLpInf)
    {
        int idx = lp.addVar(coeff, lb, ub);
        integer.resize(static_cast<std::size_t>(lp.numVars), false);
        return idx;
    }
};

/** Branch-and-bound options. */
struct MipOptions
{
    std::uint64_t maxNodes = 200000;  //!< search budget
    double integralityTol = 1e-6;     //!< "is integer" tolerance
    double gapTol = 1e-9;             //!< absolute pruning slack
    /** Wall-clock budget in seconds; 0 = unlimited. When it expires
     * the best incumbent so far is returned (Status::Feasible), or
     * Status::NodeLimit if none was found. */
    double timeLimitSeconds = 0.0;
    /** Worker threads for callers that sweep independent solves
     * (e.g. exactMipPartition's stage-count loop); 0 = one per
     * hardware core. solveMip() itself is single-threaded. */
    int threads = 1;
    /** Re-enter each node's LP warm from the previous basis. Off is
     * only useful for A/B testing; results are identical. */
    bool warmStart = true;
    /** Optional incumbent seed: values for the *integer* variables
     * of a known feasible point (continuous entries are ignored and
     * recomputed by an LP). Empty = no seed. */
    std::vector<double> start;
};

/** Outcome of a MIP solve. */
struct MipSolution
{
    enum class Status
    {
        Optimal,      //!< proven optimal
        Feasible,     //!< budget hit; best incumbent returned
        Infeasible,   //!< no integral point exists
        Unbounded,    //!< relaxation unbounded at the root
        NodeLimit,    //!< budget exhausted before any incumbent
    };

    Status status = Status::Infeasible; //!< solve outcome
    double objective = 0.0;          //!< incumbent objective
    std::vector<double> x;           //!< incumbent point
    std::uint64_t nodesExplored = 0; //!< B&B nodes expanded
    std::uint64_t lpPivots = 0;  //!< simplex pivots over all nodes
    std::uint64_t lpWarmSolves = 0; //!< nodes solved warm
    std::uint64_t lpColdSolves = 0; //!< cold solves incl. fallbacks

    /** @return true when a feasible integral point was found. */
    bool
    ok() const
    {
        return status == Status::Optimal ||
            status == Status::Feasible;
    }
};

/** Solve @p problem by branch and bound. */
MipSolution solveMip(const MipProblem &problem,
                     const MipOptions &options = {});

/** @return printable name of a MIP solution status. */
std::string mipStatusName(MipSolution::Status status);

} // namespace mobius

#endif // MOBIUS_SOLVER_MIP_HH
