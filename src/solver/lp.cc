#include "solver/lp.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "obs/prof.hh"

namespace mobius
{

int
LpProblem::addVar(double coeff, double lb, double ub)
{
    objective.push_back(coeff);
    lower.push_back(lb);
    upper.push_back(ub);
    return numVars++;
}

void
LpProblem::addRow(std::vector<std::pair<int, double>> coeffs,
                  Sense sense, double rhs)
{
    rows.push_back(LpRow{std::move(coeffs), sense, rhs});
}

std::string
lpStatusName(LpSolution::Status status)
{
    switch (status) {
      case LpSolution::Status::Optimal:    return "optimal";
      case LpSolution::Status::Infeasible: return "infeasible";
      case LpSolution::Status::Unbounded:  return "unbounded";
    }
    return "?";
}

namespace
{

constexpr double kEps = 1e-9;      //!< pivot / eligibility tolerance
constexpr double kRatioEps = 1e-9; //!< ratio-test tie tolerance
constexpr double kFeasTol = 1e-7;  //!< primal bound-violation tolerance
constexpr double kDualTol = 1e-7;  //!< dual-feasibility check tolerance

/** Where a variable currently lives. */
enum class VStat : std::int8_t { AtLower, AtUpper, Free, Basic };

/** Internal iteration outcome. */
enum class Iter { Optimal, Unbounded, Infeasible, PivotLimit };

} // namespace

/**
 * The dense tableau state. Column layout:
 *     [0, nv)            structural variables
 *     [nv, nv+ns)        slack/surplus (one per Le/Ge row)
 *     [nv+ns, nv+ns+m)   artificial slots (row i owns column
 *                        nv+ns+i; bounds [0,0] outside phase 1)
 * plus a trailing B^{-1}b column at index ncols. Nonbasic variables
 * rest at a bound (VStat); basic values are tracked in xb_ and
 * updated incrementally, so bounds can change without rebuilding.
 */
struct BoundedSimplex::Impl
{
    int nv_ = 0, ns_ = 0, m_ = 0, ncols_ = 0;

    std::vector<double> orig_;     //!< m x nv pristine structural A
    std::vector<double> b_;        //!< pristine rhs
    std::vector<Sense> sense_;     //!< per-row sense
    std::vector<int> slackCol_;    //!< per-row slack column or -1
    std::vector<double> slackCoef_; //!< +1 (Le) or -1 (Ge)
    std::vector<double> c2_;       //!< phase-2 cost, size ncols

    std::vector<double> lo_, up_;  //!< bounds, size ncols
    std::vector<double> a_;        //!< tableau, m x (ncols+1)
    std::vector<int> basis_;       //!< row -> basic column
    std::vector<VStat> stat_;      //!< per-column status
    std::vector<double> xb_;       //!< basic values, size m
    std::vector<bool> artUsed_;    //!< artificial active this solve

    bool hasBasis_ = false;
    std::uint64_t pivots_ = 0;         //!< cumulative, incl. flips
    std::uint64_t pivotsThisSolve_ = 0;
    std::uint64_t coldFallbacks_ = 0;

    std::vector<std::pair<int, double>> nzrows_; //!< pricing scratch

    explicit Impl(const LpProblem &p);

    double *row(int i) { return &a_[static_cast<std::size_t>(i) *
                                    (ncols_ + 1)]; }
    bool isArt(int j) const { return j >= nv_ + ns_; }

    bool
    isFixed(int j) const
    {
        return std::isfinite(lo_[j]) && std::isfinite(up_[j]) &&
            up_[j] - lo_[j] <= kEps;
    }

    double
    nbValue(int j) const
    {
        switch (stat_[j]) {
          case VStat::AtLower: return lo_[j];
          case VStat::AtUpper: return up_[j];
          case VStat::Free:    return 0.0;
          case VStat::Basic:   break;
        }
        panic("nbValue on basic column");
        return 0.0;
    }

    bool
    boxEmpty() const
    {
        for (int j = 0; j < nv_; ++j) {
            if (lo_[j] > up_[j] + kEps)
                return true;
        }
        return false;
    }

    void normalizeSides();
    void computeBasicValues();
    bool dualFeasible();
    void negateRow(int i);
    void pivotRows(int r, int c);
    void exchange(int r, int c, double enter_val, VStat leave_stat);
    bool initBasis();
    Iter primal(const std::vector<double> &c, int stall_threshold,
                std::uint64_t cap);
    Iter dual(std::uint64_t cap);
    LpSolution extract();
    LpSolution coldInner(const LpOptions &opts);
    LpSolution warmInner(const LpOptions &opts);
};

BoundedSimplex::Impl::Impl(const LpProblem &p)
{
    nv_ = p.numVars;
    if (static_cast<int>(p.objective.size()) != nv_ ||
        static_cast<int>(p.lower.size()) != nv_ ||
        static_cast<int>(p.upper.size()) != nv_) {
        panic("LP problem arrays inconsistent with numVars");
    }
    m_ = static_cast<int>(p.rows.size());
    ns_ = 0;
    for (const auto &r : p.rows) {
        if (r.sense != Sense::Eq)
            ++ns_;
    }
    ncols_ = nv_ + ns_ + m_;

    orig_.assign(static_cast<std::size_t>(m_) * nv_, 0.0);
    b_.resize(static_cast<std::size_t>(m_));
    sense_.resize(static_cast<std::size_t>(m_));
    slackCol_.assign(static_cast<std::size_t>(m_), -1);
    slackCoef_.assign(static_cast<std::size_t>(m_), 0.0);
    int slack = nv_;
    for (int i = 0; i < m_; ++i) {
        const LpRow &r = p.rows[i];
        for (const auto &[j, v] : r.coeffs) {
            if (j < 0 || j >= nv_)
                panic("LP row references variable %d", j);
            orig_[static_cast<std::size_t>(i) * nv_ + j] += v;
        }
        b_[i] = r.rhs;
        sense_[i] = r.sense;
        if (r.sense != Sense::Eq) {
            slackCol_[i] = slack++;
            slackCoef_[i] = r.sense == Sense::Le ? 1.0 : -1.0;
        }
    }

    c2_.assign(static_cast<std::size_t>(ncols_), 0.0);
    lo_.assign(static_cast<std::size_t>(ncols_), 0.0);
    up_.assign(static_cast<std::size_t>(ncols_), 0.0);
    for (int j = 0; j < nv_; ++j) {
        c2_[j] = p.objective[j];
        lo_[j] = p.lower[j];
        up_[j] = p.upper[j];
    }
    for (int j = nv_; j < nv_ + ns_; ++j)
        up_[j] = kLpInf; // slacks in [0, inf)
    // Artificials stay pinned at [0, 0] outside phase 1.

    a_.assign(static_cast<std::size_t>(m_) * (ncols_ + 1), 0.0);
    basis_.assign(static_cast<std::size_t>(m_), -1);
    stat_.assign(static_cast<std::size_t>(ncols_), VStat::AtLower);
    xb_.assign(static_cast<std::size_t>(m_), 0.0);
    artUsed_.assign(static_cast<std::size_t>(m_), false);
}

void
BoundedSimplex::Impl::normalizeSides()
{
    // Keep each nonbasic structural on a side that still exists
    // after a bounds change (warm-start continuity elsewhere).
    for (int j = 0; j < nv_; ++j) {
        if (stat_[j] == VStat::Basic)
            continue;
        bool lf = std::isfinite(lo_[j]);
        bool uf = std::isfinite(up_[j]);
        if (!lf && !uf)
            stat_[j] = VStat::Free;
        else if (stat_[j] == VStat::AtUpper && uf)
            continue;
        else if (stat_[j] == VStat::AtLower && lf)
            continue;
        else
            stat_[j] = lf ? VStat::AtLower : VStat::AtUpper;
    }
}

void
BoundedSimplex::Impl::computeBasicValues()
{
    for (int i = 0; i < m_; ++i)
        xb_[i] = row(i)[ncols_];
    for (int j = 0; j < ncols_; ++j) {
        if (stat_[j] == VStat::Basic)
            continue;
        double v = nbValue(j);
        if (v == 0.0)
            continue;
        for (int i = 0; i < m_; ++i) {
            double aij = row(i)[j];
            if (aij != 0.0)
                xb_[i] -= aij * v;
        }
    }
}

bool
BoundedSimplex::Impl::dualFeasible()
{
    nzrows_.clear();
    for (int i = 0; i < m_; ++i) {
        double cb = c2_[basis_[i]];
        if (cb != 0.0)
            nzrows_.push_back({i, cb});
    }
    for (int j = 0; j < ncols_; ++j) {
        if (stat_[j] == VStat::Basic || isArt(j) || isFixed(j))
            continue;
        double d = c2_[j];
        for (const auto &[i, cb] : nzrows_)
            d -= cb * row(i)[j];
        switch (stat_[j]) {
          case VStat::AtLower:
            if (d < -kDualTol)
                return false;
            break;
          case VStat::AtUpper:
            if (d > kDualTol)
                return false;
            break;
          case VStat::Free:
            if (std::fabs(d) > kDualTol)
                return false;
            break;
          case VStat::Basic:
            break;
        }
    }
    return true;
}

void
BoundedSimplex::Impl::negateRow(int i)
{
    double *r = row(i);
    for (int j = 0; j <= ncols_; ++j)
        r[j] = -r[j];
}

void
BoundedSimplex::Impl::pivotRows(int r, int c)
{
    ++pivots_;
    ++pivotsThisSolve_;
    double *pr = row(r);
    const double inv = 1.0 / pr[c];
    for (int j = 0; j <= ncols_; ++j)
        pr[j] *= inv;
    pr[c] = 1.0;
    for (int i = 0; i < m_; ++i) {
        if (i == r)
            continue;
        double *ri = row(i);
        const double f = ri[c];
        if (std::fabs(f) < kEps) {
            ri[c] = 0.0;
            continue;
        }
        for (int j = 0; j <= ncols_; ++j)
            ri[j] -= f * pr[j];
        ri[c] = 0.0;
    }
}

void
BoundedSimplex::Impl::exchange(int r, int c, double enter_val,
                               VStat leave_stat)
{
    stat_[basis_[r]] = leave_stat;
    pivotRows(r, c);
    basis_[r] = c;
    stat_[c] = VStat::Basic;
    xb_[r] = enter_val;
}

bool
BoundedSimplex::Impl::initBasis()
{
    // Rebuild the tableau from the pristine matrix and pick a basis:
    // the row's slack when its start value is feasible, otherwise an
    // artificial oriented so it starts nonnegative.
    for (int j = nv_ + ns_; j < ncols_; ++j) {
        lo_[j] = 0.0;
        up_[j] = 0.0;
    }
    for (int j = 0; j < nv_; ++j) {
        if (std::isfinite(lo_[j]))
            stat_[j] = VStat::AtLower;
        else if (std::isfinite(up_[j]))
            stat_[j] = VStat::AtUpper;
        else
            stat_[j] = VStat::Free;
    }
    for (int j = nv_; j < ncols_; ++j)
        stat_[j] = VStat::AtLower;
    std::fill(artUsed_.begin(), artUsed_.end(), false);

    bool any_art = false;
    for (int i = 0; i < m_; ++i) {
        double *r = row(i);
        std::fill(r, r + ncols_ + 1, 0.0);
        for (int j = 0; j < nv_; ++j)
            r[j] = orig_[static_cast<std::size_t>(i) * nv_ + j];
        if (slackCol_[i] >= 0)
            r[slackCol_[i]] = slackCoef_[i];
        r[ncols_] = b_[i];

        double act = 0.0;
        for (int j = 0; j < nv_; ++j) {
            if (r[j] != 0.0)
                act += r[j] * nbValue(j);
        }
        const double resid = b_[i] - act;
        if (sense_[i] == Sense::Le && resid >= -kFeasTol) {
            basis_[i] = slackCol_[i];
            stat_[slackCol_[i]] = VStat::Basic;
            xb_[i] = std::max(resid, 0.0);
            continue;
        }
        if (sense_[i] == Sense::Ge && -resid >= -kFeasTol) {
            negateRow(i); // surplus coefficient becomes +1
            basis_[i] = slackCol_[i];
            stat_[slackCol_[i]] = VStat::Basic;
            xb_[i] = std::max(-resid, 0.0);
            continue;
        }
        if (resid < 0.0)
            negateRow(i);
        const int art = nv_ + ns_ + i;
        row(i)[art] = 1.0;
        up_[art] = kLpInf;
        basis_[i] = art;
        stat_[art] = VStat::Basic;
        xb_[i] = std::fabs(resid);
        artUsed_[i] = true;
        any_art = true;
    }
    return any_art;
}

Iter
BoundedSimplex::Impl::primal(const std::vector<double> &c,
                             int stall_threshold, std::uint64_t cap)
{
    bool bland = false;
    int stall = 0;
    while (true) {
        if (cap && pivotsThisSolve_ >= cap)
            return Iter::PivotLimit;

        // Rows whose basic variable is costed: the reduced-cost
        // inner product only runs over these (in the partition LP
        // that is typically a single row).
        nzrows_.clear();
        for (int i = 0; i < m_; ++i) {
            double cb = c[basis_[i]];
            if (cb != 0.0)
                nzrows_.push_back({i, cb});
        }

        int enter = -1, dir = 0;
        double enter_d = 0.0;
        double best = kEps;
        for (int j = 0; j < ncols_; ++j) {
            if (stat_[j] == VStat::Basic || isArt(j) || isFixed(j))
                continue;
            double d = c[j];
            for (const auto &[i, cb] : nzrows_)
                d -= cb * row(i)[j];
            int dd = 0;
            switch (stat_[j]) {
              case VStat::AtLower:
                if (d < -kEps)
                    dd = 1;
                break;
              case VStat::AtUpper:
                if (d > kEps)
                    dd = -1;
                break;
              case VStat::Free:
                if (std::fabs(d) > kEps)
                    dd = d < 0.0 ? 1 : -1;
                break;
              case VStat::Basic:
                break;
            }
            if (!dd)
                continue;
            if (bland) {
                enter = j;
                dir = dd;
                enter_d = d;
                break; // Bland: first eligible column
            }
            if (std::fabs(d) > best) { // Dantzig: steepest cost
                best = std::fabs(d);
                enter = j;
                dir = dd;
                enter_d = d;
            }
        }
        if (enter < 0)
            return Iter::Optimal;

        // Ratio test: smallest step among basic-variable bound hits
        // and the entering variable's own bound-to-bound flip.
        double t_best = kLpInf;
        if (std::isfinite(lo_[enter]) && std::isfinite(up_[enter]))
            t_best = up_[enter] - lo_[enter];
        int leave = -1;
        VStat leave_stat = VStat::AtLower;
        for (int i = 0; i < m_; ++i) {
            const double alpha = dir * row(i)[enter];
            const int bj = basis_[i];
            double t;
            VStat hs;
            if (alpha > kEps) {
                if (!std::isfinite(lo_[bj]))
                    continue;
                t = (xb_[i] - lo_[bj]) / alpha;
                hs = VStat::AtLower;
            } else if (alpha < -kEps) {
                if (!std::isfinite(up_[bj]))
                    continue;
                t = (up_[bj] - xb_[i]) / (-alpha);
                hs = VStat::AtUpper;
            } else {
                continue;
            }
            if (t < 0.0)
                t = 0.0; // tolerance noise
            bool better;
            if (t < t_best - kRatioEps) {
                better = true;
            } else if (t <= t_best + kRatioEps && leave >= 0) {
                // Tie between rows: Bland mode breaks by smallest
                // basic index (termination), Dantzig mode by larger
                // pivot magnitude (stability).
                better = bland
                    ? bj < basis_[leave]
                    : std::fabs(alpha) >
                          std::fabs(row(leave)[enter]);
            } else {
                better = false; // flip wins ties: no pivot needed
            }
            if (better) {
                t_best = t;
                leave = i;
                leave_stat = hs;
            }
        }
        if (!std::isfinite(t_best))
            return Iter::Unbounded;

        if (leave < 0) {
            // Bound flip: the entering variable crosses its box.
            ++pivots_;
            ++pivotsThisSolve_;
            for (int i = 0; i < m_; ++i) {
                double aie = row(i)[enter];
                if (aie != 0.0)
                    xb_[i] -= t_best * dir * aie;
            }
            stat_[enter] = stat_[enter] == VStat::AtLower
                ? VStat::AtUpper
                : VStat::AtLower;
        } else {
            const double enter_val = nbValue(enter) + dir * t_best;
            for (int i = 0; i < m_; ++i) {
                if (i == leave)
                    continue;
                double aie = row(i)[enter];
                if (aie != 0.0)
                    xb_[i] -= t_best * dir * aie;
            }
            exchange(leave, enter, enter_val, leave_stat);
        }

        if (std::fabs(enter_d) * t_best > 1e-12) {
            stall = 0;
            bland = false; // progress: back to Dantzig
        } else if (++stall >= stall_threshold) {
            bland = true; // degeneracy stall: termination first
        }
    }
}

Iter
BoundedSimplex::Impl::dual(std::uint64_t cap)
{
    // Dual simplex repair: the basis is dual feasible (reduced costs
    // have optimal signs) but some basic variable violates a bound.
    // Each pivot drives one violating basic variable exactly onto
    // its bound while keeping dual feasibility via the min-ratio
    // entering rule.
    while (true) {
        if (cap && pivotsThisSolve_ >= cap)
            return Iter::PivotLimit;

        int r = -1, vdir = 0;
        double viol = kFeasTol;
        for (int i = 0; i < m_; ++i) {
            const int bj = basis_[i];
            if (std::isfinite(lo_[bj]) && lo_[bj] - xb_[i] > viol) {
                viol = lo_[bj] - xb_[i];
                r = i;
                vdir = 1;
            }
            if (std::isfinite(up_[bj]) && xb_[i] - up_[bj] > viol) {
                viol = xb_[i] - up_[bj];
                r = i;
                vdir = -1;
            }
        }
        if (r < 0)
            return Iter::Optimal; // primal feasible again

        nzrows_.clear();
        for (int i = 0; i < m_; ++i) {
            double cb = c2_[basis_[i]];
            if (cb != 0.0)
                nzrows_.push_back({i, cb});
        }

        const double target = vdir > 0 ? lo_[basis_[r]]
                                       : up_[basis_[r]];
        const double *rr = row(r);
        int enter = -1;
        double best_ratio = 0.0, enter_alpha = 0.0;
        for (int j = 0; j < ncols_; ++j) {
            if (stat_[j] == VStat::Basic || isArt(j) || isFixed(j))
                continue;
            const double alpha = rr[j];
            if (std::fabs(alpha) <= kEps)
                continue;
            // The pivot moves x_j by delta = (xb_r - target)/alpha;
            // the move must respect x_j's resting side.
            bool ok;
            switch (stat_[j]) {
              case VStat::AtLower: // delta >= 0
                ok = vdir > 0 ? alpha < 0.0 : alpha > 0.0;
                break;
              case VStat::AtUpper: // delta <= 0
                ok = vdir > 0 ? alpha > 0.0 : alpha < 0.0;
                break;
              default:
                ok = true; // free: either direction
                break;
            }
            if (!ok)
                continue;
            double d = c2_[j];
            for (const auto &[i, cb] : nzrows_)
                d -= cb * row(i)[j];
            const double ratio = std::fabs(d) / std::fabs(alpha);
            if (enter < 0 || ratio < best_ratio - kRatioEps ||
                (ratio <= best_ratio + kRatioEps &&
                 std::fabs(alpha) > std::fabs(enter_alpha))) {
                enter = j;
                best_ratio = ratio;
                enter_alpha = alpha;
            }
        }
        if (enter < 0) {
            // Dual unbounded: no entering column can mend the
            // violated row => the primal problem is infeasible.
            return Iter::Infeasible;
        }

        const double delta = (xb_[r] - target) / enter_alpha;
        const double enter_val = nbValue(enter) + delta;
        for (int i = 0; i < m_; ++i) {
            if (i == r)
                continue;
            double aie = row(i)[enter];
            if (aie != 0.0)
                xb_[i] -= delta * aie;
        }
        exchange(r, enter, enter_val,
                 vdir > 0 ? VStat::AtLower : VStat::AtUpper);
    }
}

LpSolution
BoundedSimplex::Impl::extract()
{
    LpSolution sol;
    sol.x.assign(static_cast<std::size_t>(nv_), 0.0);
    for (int j = 0; j < nv_; ++j) {
        if (stat_[j] != VStat::Basic)
            sol.x[j] = nbValue(j);
    }
    for (int i = 0; i < m_; ++i) {
        const int bj = basis_[i];
        if (bj < nv_) {
            double v = xb_[i];
            if (std::isfinite(lo_[bj]))
                v = std::max(v, lo_[bj]);
            if (std::isfinite(up_[bj]))
                v = std::min(v, up_[bj]);
            sol.x[bj] = v;
        }
    }
    sol.objective = 0.0;
    for (int j = 0; j < nv_; ++j)
        sol.objective += c2_[j] * sol.x[j];
    sol.status = LpSolution::Status::Optimal;
    return sol;
}

LpSolution
BoundedSimplex::Impl::coldInner(const LpOptions &opts)
{
    LpSolution sol;
    if (boxEmpty()) {
        sol.status = LpSolution::Status::Infeasible;
        return sol;
    }

    const bool any_art = initBasis();
    if (any_art) {
        std::vector<double> c1(static_cast<std::size_t>(ncols_),
                               0.0);
        for (int i = 0; i < m_; ++i) {
            if (artUsed_[i])
                c1[nv_ + ns_ + i] = 1.0;
        }
        Iter r = primal(c1, opts.stallThreshold, 0);
        if (r != Iter::Optimal)
            panic("phase-1 LP unbounded (impossible)");
        double infeas = 0.0;
        for (int i = 0; i < m_; ++i) {
            if (isArt(basis_[i]))
                infeas += xb_[i];
        }
        // Pin artificials to zero for good: they are excluded from
        // pricing, and fixed bounds keep any basic leftovers at 0
        // through every later ratio test (no big-M needed).
        for (int j = nv_ + ns_; j < ncols_; ++j)
            up_[j] = 0.0;
        hasBasis_ = true;
        if (infeas > 1e-6) {
            sol.status = LpSolution::Status::Infeasible;
            return sol;
        }
        // Pivot degenerate artificials out where possible.
        for (int i = 0; i < m_; ++i) {
            if (!isArt(basis_[i]))
                continue;
            const double *ri = row(i);
            int enter = -1;
            for (int j = 0; j < nv_ + ns_; ++j) {
                if (stat_[j] != VStat::Basic &&
                    std::fabs(ri[j]) > kEps) {
                    enter = j;
                    break;
                }
            }
            if (enter >= 0)
                exchange(i, enter, nbValue(enter), VStat::AtLower);
            // else: redundant row; the artificial stays basic at 0.
        }
    }
    hasBasis_ = true;

    Iter r = primal(c2_, opts.stallThreshold, 0);
    if (r == Iter::Unbounded) {
        sol.status = LpSolution::Status::Unbounded;
        return sol;
    }
    return extract();
}

LpSolution
BoundedSimplex::Impl::warmInner(const LpOptions &opts)
{
    if (!hasBasis_) {
        ++coldFallbacks_;
        return coldInner(opts);
    }
    LpSolution sol;
    if (boxEmpty()) {
        sol.status = LpSolution::Status::Infeasible;
        return sol;
    }
    computeBasicValues();
    if (!dualFeasible()) {
        // A previous phase-1 abort or drift: costs no longer carry
        // the optimal signs, so the dual repair would be unsound.
        ++coldFallbacks_;
        return coldInner(opts);
    }
    const std::uint64_t cap = opts.maxPivots
        ? opts.maxPivots
        : 20ULL * static_cast<std::uint64_t>(m_ + ncols_);
    Iter r = dual(cap);
    if (r == Iter::PivotLimit) {
        ++coldFallbacks_;
        return coldInner(opts);
    }
    if (r == Iter::Infeasible) {
        sol.status = LpSolution::Status::Infeasible;
        return sol;
    }
    // Polish: usually 0 pivots, but bound flips of nonbasic columns
    // can leave a profitable move behind.
    r = primal(c2_, opts.stallThreshold, 0);
    if (r == Iter::Unbounded) {
        sol.status = LpSolution::Status::Unbounded;
        return sol;
    }
    return extract();
}

BoundedSimplex::BoundedSimplex(const LpProblem &problem)
    : impl_(new Impl(problem))
{}

BoundedSimplex::~BoundedSimplex() { delete impl_; }

void
BoundedSimplex::setBounds(const std::vector<double> &lower,
                          const std::vector<double> &upper)
{
    if (static_cast<int>(lower.size()) != impl_->nv_ ||
        static_cast<int>(upper.size()) != impl_->nv_) {
        panic("setBounds arrays inconsistent with numVars");
    }
    for (int j = 0; j < impl_->nv_; ++j) {
        impl_->lo_[j] = lower[j];
        impl_->up_[j] = upper[j];
    }
    impl_->normalizeSides();
}

LpSolution
BoundedSimplex::solveCold(const LpOptions &opts)
{
    // Per-solve, not per-pivot: a pivot is ~100ns and the zone pair
    // ~0.5us; pivot counts are already in solver.lp.* metrics.
    MOBIUS_PROF_ZONE("solver.lp_solve");
    const std::uint64_t before = impl_->pivots_;
    impl_->pivotsThisSolve_ = 0;
    LpSolution sol = impl_->coldInner(opts);
    sol.pivots = impl_->pivots_ - before;
    return sol;
}

LpSolution
BoundedSimplex::solveWarm(const LpOptions &opts)
{
    MOBIUS_PROF_ZONE("solver.lp_solve");
    const std::uint64_t before = impl_->pivots_;
    impl_->pivotsThisSolve_ = 0;
    LpSolution sol = impl_->warmInner(opts);
    sol.pivots = impl_->pivots_ - before;
    return sol;
}

bool
BoundedSimplex::hasBasis() const
{
    return impl_->hasBasis_;
}

std::uint64_t
BoundedSimplex::totalPivots() const
{
    return impl_->pivots_;
}

std::uint64_t
BoundedSimplex::coldFallbacks() const
{
    return impl_->coldFallbacks_;
}

LpSolution
solveLp(const LpProblem &problem, const LpOptions &opts)
{
    BoundedSimplex simplex(problem);
    return simplex.solveCold(opts);
}

} // namespace mobius
