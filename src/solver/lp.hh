/**
 * @file
 * A dense bounded-variable simplex LP solver.
 *
 * The paper solves its partition MIP with Gurobi (§3.2). This module
 * is the from-scratch replacement: an LP solver used as the
 * relaxation engine of the branch-and-bound MIP in solver/mip.hh.
 *
 * Problems are given in the general form
 *     minimize    c^T x
 *     subject to  a_i^T x (<= | = | >=) b_i      for each row i
 *                 lb_j <= x_j <= ub_j            for each variable j
 * with lb defaulting to 0 and ub to +infinity.
 *
 * Unlike the original two-phase implementation (kept as the oracle in
 * lp_reference.hh), variable bounds are handled natively: a nonbasic
 * variable rests at its lower or upper bound and may "flip" across
 * its box without a basis change, so finite upper bounds cost zero
 * extra rows. Pricing is Dantzig (most negative reduced cost) with an
 * automatic switch to Bland's rule after a degeneracy stall, which
 * keeps the common case fast and termination guaranteed. Artificial
 * columns are excluded from pricing after phase 1 (no big-M penalty).
 *
 * BoundedSimplex additionally supports warm re-solves after bound
 * changes — the branch-and-bound workhorse: the previous optimal
 * basis stays dual feasible when only bounds move, so a short dual
 * simplex repair reaches the new optimum in a handful of pivots
 * instead of a full phase-1/phase-2 solve.
 */

#ifndef MOBIUS_SOLVER_LP_HH
#define MOBIUS_SOLVER_LP_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mobius
{

/** Unbounded-variable sentinel for LP bounds. */
constexpr double kLpInf = std::numeric_limits<double>::infinity();

/** Constraint sense. */
enum class Sense { Le, Ge, Eq };

/** One linear constraint: sparse coefficients, sense, rhs. */
struct LpRow
{
    std::vector<std::pair<int, double>> coeffs; //!< (var, coeff) pairs
    Sense sense = Sense::Le; //!< constraint sense
    double rhs = 0.0;        //!< right-hand side
};

/** An LP in general form. */
struct LpProblem
{
    int numVars = 0;                //!< number of variables
    std::vector<double> objective;  //!< c, size numVars
    std::vector<LpRow> rows;        //!< the constraints
    std::vector<double> lower;      //!< size numVars (default 0)
    std::vector<double> upper;      //!< size numVars (default +inf)

    /** @return index of a fresh variable with bounds [lb, ub]. */
    int addVar(double coeff, double lb = 0.0, double ub = kLpInf);

    /** Append a constraint. */
    void addRow(std::vector<std::pair<int, double>> coeffs,
                Sense sense, double rhs);
};

/** Solver knobs (safe defaults; only the MIP tunes these). */
struct LpOptions
{
    /** Pivot budget for one solve; 0 = unlimited. A warm solve that
     * exhausts it falls back to a cold solve automatically. */
    std::uint64_t maxPivots = 0;
    /** Consecutive degenerate pivots before Dantzig pricing yields
     * to Bland's rule (reset on any strict improvement). */
    int stallThreshold = 64;
};

/** Outcome of an LP solve. */
struct LpSolution
{
    /** Solve outcome kinds. */
    enum class Status { Optimal, Infeasible, Unbounded };

    Status status = Status::Infeasible; //!< solve outcome
    double objective = 0.0;    //!< optimal objective when ok()
    std::vector<double> x;     //!< optimal point when ok()
    std::uint64_t pivots = 0;  //!< simplex pivots performed

    /** @return true when an optimal point was found. */
    bool ok() const { return status == Status::Optimal; }
};

/**
 * A reusable bounded-variable simplex over one constraint matrix.
 *
 * The matrix (rows + slack columns + artificial slots) is
 * standardised once at construction; variable bounds may then be
 * changed between solves. solveCold() runs phase 1 (artificials) +
 * phase 2 from scratch; solveWarm() re-enters from the previous
 * final basis with a dual-simplex repair, falling back to a cold
 * solve when the repair stalls. This is what makes branch-and-bound
 * cheap: a child node differs from its parent by one bound.
 */
class BoundedSimplex
{
  public:
    /** Standardise @p problem (coefficients and rhs are copied). */
    explicit BoundedSimplex(const LpProblem &problem);
    ~BoundedSimplex();

    BoundedSimplex(const BoundedSimplex &) = delete;
    BoundedSimplex &operator=(const BoundedSimplex &) = delete;

    /** Replace the structural variable bounds (size numVars). */
    void setBounds(const std::vector<double> &lower,
                   const std::vector<double> &upper);

    /** Solve from scratch (phase 1 + phase 2). */
    LpSolution solveCold(const LpOptions &opts = {});

    /**
     * Re-solve after a bounds change, starting from the last basis.
     * Falls back to solveCold() when no basis exists yet or the
     * dual repair exceeds its pivot budget.
     */
    LpSolution solveWarm(const LpOptions &opts = {});

    /** @return true once any solve has established a basis. */
    bool hasBasis() const;

    /** @return pivots performed across all solves so far. */
    std::uint64_t totalPivots() const;

    /** @return warm solves that had to restart cold. */
    std::uint64_t coldFallbacks() const;

  private:
    struct Impl;
    Impl *impl_;
};

/** Solve @p problem with the bounded-variable simplex. */
LpSolution solveLp(const LpProblem &problem,
                   const LpOptions &opts = {});

/** @return printable name of a solution status. */
std::string lpStatusName(LpSolution::Status status);

} // namespace mobius

#endif // MOBIUS_SOLVER_LP_HH
