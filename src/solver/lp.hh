/**
 * @file
 * A small dense linear-programming solver (two-phase simplex).
 *
 * The paper solves its partition MIP with Gurobi (§3.2). This module
 * is the from-scratch replacement: an LP solver used as the relaxation
 * engine of the branch-and-bound MIP in solver/mip.hh.
 *
 * Problems are given in the general form
 *     minimize    c^T x
 *     subject to  a_i^T x (<= | = | >=) b_i      for each row i
 *                 lb_j <= x_j <= ub_j            for each variable j
 * with lb defaulting to 0 and ub to +infinity.
 *
 * The implementation favours robustness over speed (Bland's rule to
 * prevent cycling); the MIPs solved here are small.
 */

#ifndef MOBIUS_SOLVER_LP_HH
#define MOBIUS_SOLVER_LP_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mobius
{

/** Unbounded-variable sentinel for LP bounds. */
constexpr double kLpInf = std::numeric_limits<double>::infinity();

/** Constraint sense. */
enum class Sense { Le, Ge, Eq };

/** One linear constraint: sparse coefficients, sense, rhs. */
struct LpRow
{
    std::vector<std::pair<int, double>> coeffs; //!< (var, coeff) pairs
    Sense sense = Sense::Le; //!< constraint sense
    double rhs = 0.0;        //!< right-hand side
};

/** An LP in general form. */
struct LpProblem
{
    int numVars = 0;                //!< number of variables
    std::vector<double> objective;  //!< c, size numVars
    std::vector<LpRow> rows;        //!< the constraints
    std::vector<double> lower;      //!< size numVars (default 0)
    std::vector<double> upper;      //!< size numVars (default +inf)

    /** @return index of a fresh variable with bounds [lb, ub]. */
    int addVar(double coeff, double lb = 0.0, double ub = kLpInf);

    /** Append a constraint. */
    void addRow(std::vector<std::pair<int, double>> coeffs,
                Sense sense, double rhs);
};

/** Outcome of an LP solve. */
struct LpSolution
{
    /** Solve outcome kinds. */
    enum class Status { Optimal, Infeasible, Unbounded };

    Status status = Status::Infeasible; //!< solve outcome
    double objective = 0.0;    //!< optimal objective when ok()
    std::vector<double> x;     //!< optimal point when ok()
    std::uint64_t pivots = 0;  //!< simplex pivots performed

    /** @return true when an optimal point was found. */
    bool ok() const { return status == Status::Optimal; }
};

/** Solve @p problem with two-phase simplex. */
LpSolution solveLp(const LpProblem &problem);

/** @return printable name of a solution status. */
std::string lpStatusName(LpSolution::Status status);

} // namespace mobius

#endif // MOBIUS_SOLVER_LP_HH
