#include "plan/pipeline_cost.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mobius
{

PipelineCostEvaluator::PipelineCostEvaluator(const CostModel &cost,
                                             PipelineEnv env)
    : cost_(&cost), env_(env)
{
    if (env_.numGpus < 1)
        fatal("pipeline needs at least one GPU");
    if (env_.gpuMemBytes == 0)
        fatal("pipeline env needs a GPU memory capacity");
}

PipelineEstimate
PipelineCostEvaluator::evaluate(const Partition &partition) const
{
    const CostModel &cm = *cost_;
    checkPartition(partition, cm.numLayers());

    const int S = static_cast<int>(partition.size());
    const int N = env_.numGpus;
    const int M = cm.cfg().numMicrobatches;
    const double B = env_.avgBandwidth;
    const Bytes G = env_.gpuMemBytes;

    PipelineEstimate est;
    est.stages.resize(static_cast<std::size_t>(S));

    // Per-stage constants.
    std::vector<Bytes> w(S), memF(S), memB(S), aOut(S), aIn(S),
        grad(S);
    std::vector<double> tf(S), tb(S);
    for (int j = 0; j < S; ++j) {
        const auto &st = partition[j];
        w[j] = cm.rangeParamBytes(st.lo, st.hi);
        grad[j] = cm.rangeGradBytes(st.lo, st.hi);
        memF[j] = cm.stageMemFwd(st.lo, st.hi);
        memB[j] = cm.stageMemBwd(st.lo, st.hi);
        aOut[j] = cm.actBytes(st.hi - 1);
        aIn[j] = cm.inActBytes(st.lo);
        tf[j] = cm.rangeFwdTime(st.lo, st.hi);
        tb[j] = cm.rangeBwdTime(st.lo, st.hi);

        // Eq. 4: S_j^e <= G.
        if (memF[j] > G || memB[j] > G) {
            est.feasible = false;
            est.infeasibleReason = strfmt(
                "stage %d needs %s fwd / %s bwd, GPU has %s", j,
                formatBytes(memF[j]).c_str(),
                formatBytes(memB[j]).c_str(),
                formatBytes(G).c_str());
            return est;
        }
    }

    auto &stages = est.stages;

    // ---------------- Forward ---------------------------------------
    // start[j][m] recurrences; only the previous microbatch row is
    // needed, kept per stage.
    std::vector<std::vector<double>> fstart(
        static_cast<std::size_t>(S),
        std::vector<double>(static_cast<std::size_t>(M), 0.0));

    for (int j = 0; j < S; ++j) {
        // Weight readiness (Eq. 9 with prefetch Eq. 5-6).
        double ready;
        if (j < N) {
            // First stage on this GPU: blocking initial upload.
            ready = static_cast<double>(w[j]) / B;
        } else {
            double window_start = fstart[j - N][0];
            double window_end =
                fstart[j - N][M - 1] + tf[j - N];
            double window = std::max(0.0, window_end - window_start);
            Bytes reserve = G - memF[j - N]; // Eq. 5 (memF <= G)
            Bytes by_time =
                static_cast<Bytes>(window * B); // Eq. 6
            Bytes prefetched =
                std::min({w[j], reserve, by_time});
            stages[j].prefetchedFwd = prefetched;
            ready = window_end +
                static_cast<double>(w[j] - prefetched) / B;
        }
        stages[j].fwdReady = ready;

        for (int m = 0; m < M; ++m) {
            double t = ready;
            if (m > 0) // Eq. 10
                t = std::max(t, fstart[j][m - 1] + tf[j]);
            if (j > 0) { // Eq. 8: activation arrival
                t = std::max(t, fstart[j - 1][m] + tf[j - 1] +
                                    static_cast<double>(aOut[j - 1]) /
                                        B);
            }
            fstart[j][m] = t;
        }
        stages[j].fwdStart = fstart[j][0];
        stages[j].fwdEnd = fstart[j][M - 1] + tf[j];
    }

    // ---------------- Backward --------------------------------------
    std::vector<std::vector<double>> bstart(
        static_cast<std::size_t>(S),
        std::vector<double>(static_cast<std::size_t>(M), 0.0));

    for (int j = S - 1; j >= 0; --j) {
        bool resident = env_.keepResidentTail && j >= S - N &&
            memB[j] <= G;
        stages[j].residentForBwd = resident;

        double ready;
        if (resident) {
            ready = stages[j].fwdEnd;
        } else if (j >= S - N) {
            // Last-round stage that cannot stay resident: blocking
            // reload right after its own forward.
            ready = stages[j].fwdEnd + static_cast<double>(w[j]) / B;
        } else {
            double window_start = bstart[j + N][0];
            double window_end = bstart[j + N][M - 1] + tb[j + N];
            double window = std::max(0.0, window_end - window_start);
            Bytes reserve = G - memB[j + N];
            Bytes by_time = static_cast<Bytes>(window * B);
            Bytes prefetched = std::min({w[j], reserve, by_time});
            stages[j].prefetchedBwd = prefetched;
            ready = window_end +
                static_cast<double>(w[j] - prefetched) / B;
        }
        stages[j].bwdReady = ready;

        for (int m = 0; m < M; ++m) {
            double t = ready;
            if (j == S - 1) {
                // Eq. 11: backward begins once forward is complete.
                t = std::max(t, stages[j].fwdEnd);
            }
            if (m > 0)
                t = std::max(t, bstart[j][m - 1] + tb[j]);
            if (j < S - 1) { // Eq. 8 backward direction
                t = std::max(t, bstart[j + 1][m] + tb[j + 1] +
                                    static_cast<double>(aOut[j]) / B);
            }
            bstart[j][m] = t;
        }
        stages[j].bwdStart = bstart[j][0];
        stages[j].bwdEnd = bstart[j][M - 1] + tb[j];
    }

    // Step ends when the last gradient flush lands in DRAM.
    double step = 0.0;
    for (int j = 0; j < S; ++j) {
        step = std::max(step, stages[j].bwdEnd +
                                  static_cast<double>(grad[j]) / B);
    }
    est.stepTime = step;
    est.feasible = true;

    // Implied traffic (Eq. 1): weights down (twice minus resident
    // tail), checkpoints both ways, boundary activations between
    // stages, gradients up.
    Bytes comm = 0;
    for (int j = 0; j < S; ++j) {
        comm += w[j];                     // forward upload
        if (!stages[j].residentForBwd)
            comm += w[j];                 // backward re-upload
        comm += grad[j];                  // gradient flush
        comm += 2 * aIn[j] * static_cast<Bytes>(M); // checkpoints
        if (j + 1 < S)
            comm += 2 * aOut[j] * static_cast<Bytes>(M); // act + grad
    }
    est.commBytes = comm;
    return est;
}

} // namespace mobius
