/**
 * @file
 * The paper's literal MIP formulation (§3.2, Eq. 3-11), expressed
 * over the in-tree branch-and-bound solver (solver/mip.hh) instead of
 * Gurobi.
 *
 * Boolean placement variables B_{i,j}, continuous start times
 * t^{f|b}_{j,m}, prefetch volumes P^{f|b}_j and a makespan variable
 * are assembled exactly as in the paper, for a *fixed* stage count S
 * with non-empty stages (the paper's "L logical stages, empties
 * allowed" is equivalent to trying every S; exactMipPartition does
 * that sweep).
 *
 * This formulation is exponential in practice, so it is intended for
 * small models: unit tests cross-validate the scalable search in
 * partition_algos.cc against it, and it documents the formulation
 * concretely. It assumes uniform boundary-activation size across
 * layers (true for transformer stacks), since the activation crossing
 * a stage boundary must be a constant for the constraint matrix to
 * stay linear.
 */

#ifndef MOBIUS_PLAN_PARTITION_MIP_HH
#define MOBIUS_PLAN_PARTITION_MIP_HH

#include "obs/metrics.hh"
#include "plan/pipeline_cost.hh"
#include "solver/mip.hh"

namespace mobius
{

/** Outcome of the faithful-MIP solve. */
struct ExactMipResult
{
    bool solved = false;          //!< a feasible partition was found
    Partition partition;          //!< the best partition
    double objective = 0.0;       //!< MIP makespan (seconds)
    std::uint64_t nodes = 0;      //!< B&B nodes explored
    std::uint64_t lpPivots = 0;   //!< simplex pivots over all solves
    std::uint64_t lpWarmSolves = 0; //!< node LPs solved warm
    std::uint64_t lpColdSolves = 0; //!< cold solves incl. fallbacks
    double wallSeconds = 0.0;     //!< host wall-clock spent solving
    int threadsUsed = 1;          //!< stage-sweep worker threads
};

/**
 * Build the Eq. 3-11 MIP for @p eval with exactly @p num_stages
 * non-empty stages. Exposed for testing/inspection.
 *
 * @param[out] b_var b_var[i][j] = variable index of B_{i,j}.
 */
MipProblem buildPartitionMip(const PipelineCostEvaluator &eval,
                             int num_stages,
                             std::vector<std::vector<int>> *b_var);

/**
 * Solve Eq. 3-11 for stage counts N..max_stages and return the best.
 *
 * Each stage count is an independent MIP, so the sweep fans out
 * across opts.threads workers (0 = one per hardware core). Every
 * solve seeds its incumbent from heuristicPartitionForStages() and
 * runs warm-started branch-and-bound; results are reduced
 * deterministically (lowest objective, ties to the smaller stage
 * count), so the chosen partition is bit-identical for any thread
 * count. Tractable up to medium instances (tens of layers); beyond
 * that use the scalable search in partition_algos.cc.
 *
 * When @p metrics is an enabled registry, the solve records
 * plan.mip.solves / plan.mip.nodes / plan.mip.lp_pivots /
 * solver.lp.warm_solves / solver.lp.cold_solves counters, a
 * plan.mip.solve_seconds histogram (one sample per stage count) and
 * a plan.mip.threads gauge — always from the calling thread, after
 * the workers have joined (MetricsRegistry is not thread-safe).
 */
ExactMipResult exactMipPartition(const PipelineCostEvaluator &eval,
                                 int max_stages,
                                 const MipOptions &opts = {},
                                 MetricsRegistry *metrics = nullptr);

} // namespace mobius

#endif // MOBIUS_PLAN_PARTITION_MIP_HH
