/**
 * @file
 * Model partition algorithms (§3.2 and the ablations of §4.3):
 *
 *  - MIP partition: searches the contiguous-partition space for the
 *    minimiser of the Eq. 3 objective evaluated by
 *    PipelineCostEvaluator. Candidate generation (near-uniform
 *    partitions for every stage count) plus boundary hill-climbing
 *    explores the same feasible set as the paper's Gurobi MIP for
 *    this structure; tests cross-check it against brute force.
 *  - Maximum-stage partition: greedily packs as many layers per
 *    stage as fit in GPU memory (no prefetch headroom).
 *  - Minimum-stage partition: one transformer block per stage.
 *  - Brute force: exact enumeration for small models (tests).
 */

#ifndef MOBIUS_PLAN_PARTITION_ALGOS_HH
#define MOBIUS_PLAN_PARTITION_ALGOS_HH

#include "plan/pipeline_cost.hh"

namespace mobius
{

/** A partition plus how it scored and what it cost to find. */
struct PartitionResult
{
    Partition partition;        //!< the chosen stages
    PipelineEstimate estimate;  //!< its analytic schedule
    double solveSeconds = 0.0;  //!< wall-clock spent searching
    int evaluated = 0;          //!< schedules evaluated
};

/** §3.2 MIP partition algorithm (search over contiguous partitions). */
PartitionResult mipPartition(const PipelineCostEvaluator &eval);

/**
 * Best heuristic partition with exactly @p num_stages stages: a
 * near-uniform split hill-climbed on stage boundaries. This is the
 * per-stage-count building block of mipPartition(), exposed so the
 * exact MIP (plan/partition_mip.hh) can seed its branch-and-bound
 * incumbent from it. The result may be memory-infeasible (the caller
 * is expected to check); it always has exactly @p num_stages stages.
 *
 * @param[in,out] evaluated incremented per schedule evaluation
 *                          (may be null).
 */
Partition heuristicPartitionForStages(const PipelineCostEvaluator &eval,
                                      int num_stages,
                                      int *evaluated = nullptr);

/** §4.3 baseline: as many layers per stage as memory allows. */
PartitionResult maxStagePartition(const PipelineCostEvaluator &eval);

/** §4.3 baseline: one transformer block per stage. */
PartitionResult minStagePartition(const PipelineCostEvaluator &eval);

/**
 * Exact optimum by enumerating every composition; only for models
 * with at most @p max_layers layers (exponential).
 */
PartitionResult bruteForcePartition(const PipelineCostEvaluator &eval,
                                    int max_layers = 20);

/**
 * Contiguous partition into exactly @p num_stages stages minimising
 * the maximum per-stage compute time (fwd + bwd) — the classic linear
 * partitioning DP used for all-in-GPU-memory pipelines like GPipe.
 */
Partition balancedComputePartition(const CostModel &cost,
                                   int num_stages);

} // namespace mobius

#endif // MOBIUS_PLAN_PARTITION_ALGOS_HH
