#include "plan/partition_mip.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <thread>

#include "base/logging.hh"
#include "plan/partition_algos.hh"

namespace mobius
{

MipProblem
buildPartitionMip(const PipelineCostEvaluator &eval, int num_stages,
                  std::vector<std::vector<int>> *b_var)
{
    const CostModel &cm = eval.cost();
    const PipelineEnv &env = eval.env();
    const int L = cm.numLayers();
    const int S = num_stages;
    const int N = env.numGpus;
    const int M = cm.cfg().numMicrobatches;
    // All byte quantities are expressed in GB (and bandwidth in
    // GB/s) so the constraint matrix stays well-conditioned for the
    // simplex tolerances; times remain in seconds.
    constexpr double kScale = 1e-9;
    const double Bw = env.avgBandwidth * kScale;
    const double G = static_cast<double>(env.gpuMemBytes) * kScale;

    // Uniform boundary activation and per-layer live sets (see file
    // comment): a stage's footprint is then Sum_i w_i B_ij + live,
    // exactly matching the evaluator's "weights + peak live" model.
    const double act = static_cast<double>(cm.actBytes(0)) * kScale;
    Bytes live_f = 0;
    Bytes live_b = 0;
    for (int i = 0; i < L; ++i) {
        live_f = std::max(live_f,
                          cm.stageMemFwd(i, i + 1) -
                              cm.paramBytes(i));
        live_b = std::max(live_b,
                          cm.stageMemBwd(i, i + 1) -
                              cm.paramBytes(i) - cm.gradBytes(i));
    }
    // Interior layers must be uniform; the first layer may only be
    // smaller (its input is token ids) — the max above then over-
    // approximates it harmlessly.
    for (int i = 2; i < L; ++i) {
        if (cm.actBytes(i) != cm.actBytes(1) ||
            cm.stageMemFwd(i, i + 1) - cm.paramBytes(i) !=
                cm.stageMemFwd(1, 2) - cm.paramBytes(1)) {
            fatal("faithful MIP requires uniform layer shapes "
                  "(layer %d differs)", i);
        }
    }

    MipProblem p;

    // B_{i,j} booleans.
    std::vector<std::vector<int>> b(
        static_cast<std::size_t>(L),
        std::vector<int>(static_cast<std::size_t>(S)));
    for (int i = 0; i < L; ++i) {
        for (int j = 0; j < S; ++j)
            b[i][j] = p.addBoolVar(0.0);
    }
    if (b_var)
        *b_var = b;

    // Start times t^e_{j,m} and prefetch volumes P^e_j.
    auto make_times = [&] {
        std::vector<std::vector<int>> t(
            static_cast<std::size_t>(S),
            std::vector<int>(static_cast<std::size_t>(M)));
        for (int j = 0; j < S; ++j) {
            for (int m = 0; m < M; ++m)
                t[j][m] = p.addVar(0.0);
        }
        return t;
    };
    auto tf = make_times();
    auto tb = make_times();
    std::vector<int> pf(static_cast<std::size_t>(S), -1);
    std::vector<int> pb(static_cast<std::size_t>(S), -1);
    for (int j = N; j < S; ++j)
        pf[j] = p.addVar(0.0);
    for (int j = 0; j < S - N; ++j)
        pb[j] = p.addVar(0.0);
    int z = p.addVar(1.0); // makespan: the only objective term

    // Helpers to splice stage-sum expressions Sum_i coeff_i * B_ij
    // into a row.
    auto add_stage_sum = [&](std::vector<std::pair<int, double>> &row,
                             int j, double scale,
                             auto per_layer) {
        for (int i = 0; i < L; ++i)
            row.push_back({b[i][j], scale * per_layer(i)});
    };
    auto fwd_t = [&](int i) { return cm.fwdTime(i); };
    auto bwd_t = [&](int i) { return cm.bwdTime(i); };
    auto w_bytes = [&](int i) {
        return static_cast<double>(cm.paramBytes(i)) * kScale;
    };
    auto grad_bytes = [&](int i) {
        return static_cast<double>(cm.gradBytes(i)) * kScale;
    };
    // Stage footprint = per-layer weight (+ gradient) bytes summed,
    // plus the uniform live-set constant folded into the rhs below.
    auto memf = [&](int i) { return w_bytes(i); };
    auto memb = [&](int i) { return w_bytes(i) + grad_bytes(i); };
    const double g_f = G - static_cast<double>(live_f) * kScale;
    const double g_b = G - static_cast<double>(live_b) * kScale;

    // --- Assignment ----------------------------------------------------
    for (int i = 0; i < L; ++i) {
        std::vector<std::pair<int, double>> row;
        for (int j = 0; j < S; ++j)
            row.push_back({b[i][j], 1.0});
        p.lp.addRow(row, Sense::Eq, 1.0);
    }
    // Non-empty stages.
    for (int j = 0; j < S; ++j) {
        std::vector<std::pair<int, double>> row;
        for (int i = 0; i < L; ++i)
            row.push_back({b[i][j], 1.0});
        p.lp.addRow(row, Sense::Ge, 1.0);
    }
    // Monotone stage index => contiguous stages.
    for (int i = 0; i + 1 < L; ++i) {
        std::vector<std::pair<int, double>> row;
        for (int j = 0; j < S; ++j) {
            row.push_back({b[i][j], static_cast<double>(j)});
            row.push_back({b[i + 1][j], -static_cast<double>(j)});
        }
        p.lp.addRow(row, Sense::Le, 0.0);
    }

    // --- Memory constraints (Eq. 4) ------------------------------------
    for (int j = 0; j < S; ++j) {
        std::vector<std::pair<int, double>> rf, rb;
        add_stage_sum(rf, j, 1.0, memf);
        add_stage_sum(rb, j, 1.0, memb);
        p.lp.addRow(rf, Sense::Le, g_f);
        p.lp.addRow(rb, Sense::Le, g_b);
    }

    // --- Prefetch constraints (Eq. 5-7), forward -----------------------
    for (int j = N; j < S; ++j) {
        // Eq. 5: P^f_j <= G - S^f_{j-N}.
        std::vector<std::pair<int, double>> r5{{pf[j], 1.0}};
        add_stage_sum(r5, j - N, 1.0, memf);
        p.lp.addRow(r5, Sense::Le, g_f);
        // Eq. 6 with Eq. 7: P^f_j <= B * (T^f_{j-N} + t_{j-N,M-1}
        //                                  - t_{j-N,0}).
        std::vector<std::pair<int, double>> r6{{pf[j], 1.0}};
        r6.push_back({tf[j - N][M - 1], -Bw});
        r6.push_back({tf[j - N][0], Bw});
        add_stage_sum(r6, j - N, -Bw, fwd_t);
        p.lp.addRow(r6, Sense::Le, 0.0);
        // P^f_j <= W_j (cannot prefetch more than the stage).
        std::vector<std::pair<int, double>> r7{{pf[j], 1.0}};
        add_stage_sum(r7, j, -1.0, w_bytes);
        p.lp.addRow(r7, Sense::Le, 0.0);
    }
    // Backward prefetch mirrors forward with window j+N.
    for (int j = 0; j < S - N; ++j) {
        std::vector<std::pair<int, double>> r5{{pb[j], 1.0}};
        add_stage_sum(r5, j + N, 1.0, memb);
        p.lp.addRow(r5, Sense::Le, g_b);
        std::vector<std::pair<int, double>> r6{{pb[j], 1.0}};
        r6.push_back({tb[j + N][M - 1], -Bw});
        r6.push_back({tb[j + N][0], Bw});
        add_stage_sum(r6, j + N, -Bw, bwd_t);
        p.lp.addRow(r6, Sense::Le, 0.0);
        std::vector<std::pair<int, double>> r7{{pb[j], 1.0}};
        add_stage_sum(r7, j, -1.0, w_bytes);
        p.lp.addRow(r7, Sense::Le, 0.0);
    }

    // --- Pipeline order (Eq. 8) ----------------------------------------
    for (int m = 0; m < M; ++m) {
        for (int j = 1; j < S; ++j) {
            // t^f_{j,m} >= t^f_{j-1,m} + T^f_{j-1} + a/B.
            std::vector<std::pair<int, double>> row{
                {tf[j][m], 1.0}, {tf[j - 1][m], -1.0}};
            add_stage_sum(row, j - 1, -1.0, fwd_t);
            p.lp.addRow(row, Sense::Ge, act / Bw);
        }
        for (int j = 0; j + 1 < S; ++j) {
            std::vector<std::pair<int, double>> row{
                {tb[j][m], 1.0}, {tb[j + 1][m], -1.0}};
            add_stage_sum(row, j + 1, -1.0, bwd_t);
            p.lp.addRow(row, Sense::Ge, act / Bw);
        }
    }

    // --- Weight availability (Eq. 9) -----------------------------------
    for (int j = 0; j < S; ++j) {
        if (j < N) {
            // Initial blocking upload: t^f_{j,0} >= W_j / B.
            std::vector<std::pair<int, double>> row{{tf[j][0], 1.0}};
            add_stage_sum(row, j, -1.0 / Bw, w_bytes);
            p.lp.addRow(row, Sense::Ge, 0.0);
        } else {
            // t^f_{j,0} >= t^f_{j-N,M-1} + T^f_{j-N}
            //              + (W_j - P^f_j)/B.
            std::vector<std::pair<int, double>> row{
                {tf[j][0], 1.0},
                {tf[j - N][M - 1], -1.0},
                {pf[j], 1.0 / Bw}};
            add_stage_sum(row, j - N, -1.0, fwd_t);
            add_stage_sum(row, j, -1.0 / Bw, w_bytes);
            p.lp.addRow(row, Sense::Ge, 0.0);
        }
    }
    for (int j = S - 1; j >= 0; --j) {
        if (j >= S - N) {
            // Blocking reload after the stage's own forward.
            std::vector<std::pair<int, double>> row{
                {tb[j][0], 1.0}, {tf[j][M - 1], -1.0}};
            add_stage_sum(row, j, -1.0, fwd_t);
            add_stage_sum(row, j, -1.0 / Bw, w_bytes);
            p.lp.addRow(row, Sense::Ge, 0.0);
        } else {
            std::vector<std::pair<int, double>> row{
                {tb[j][0], 1.0},
                {tb[j + N][M - 1], -1.0},
                {pb[j], 1.0 / Bw}};
            add_stage_sum(row, j + N, -1.0, bwd_t);
            add_stage_sum(row, j, -1.0 / Bw, w_bytes);
            p.lp.addRow(row, Sense::Ge, 0.0);
        }
    }

    // --- Serial microbatches (Eq. 10) ----------------------------------
    for (int j = 0; j < S; ++j) {
        for (int m = 1; m < M; ++m) {
            std::vector<std::pair<int, double>> rf{
                {tf[j][m], 1.0}, {tf[j][m - 1], -1.0}};
            add_stage_sum(rf, j, -1.0, fwd_t);
            p.lp.addRow(rf, Sense::Ge, 0.0);
            std::vector<std::pair<int, double>> rb{
                {tb[j][m], 1.0}, {tb[j][m - 1], -1.0}};
            add_stage_sum(rb, j, -1.0, bwd_t);
            p.lp.addRow(rb, Sense::Ge, 0.0);
        }
    }

    // --- Forward/backward barrier (Eq. 11) ------------------------------
    {
        std::vector<std::pair<int, double>> row{
            {tb[S - 1][0], 1.0}, {tf[S - 1][M - 1], -1.0}};
        add_stage_sum(row, S - 1, -1.0, fwd_t);
        p.lp.addRow(row, Sense::Ge, 0.0);
    }

    // --- Objective (Eq. 3 + gradient flush) ------------------------------
    for (int j = 0; j < S; ++j) {
        std::vector<std::pair<int, double>> row{
            {z, 1.0}, {tb[j][M - 1], -1.0}};
        add_stage_sum(row, j, -1.0, bwd_t);
        add_stage_sum(row, j, -1.0 / Bw, grad_bytes);
        p.lp.addRow(row, Sense::Ge, 0.0);
    }

    return p;
}

namespace
{

/** What one stage count's solve produced. */
struct StageSolve
{
    bool solved = false;
    double objective = 0.0;
    Partition partition;
    std::uint64_t nodes = 0, pivots = 0, warm = 0, cold = 0;
    double seconds = 0.0;
};

/** Build, seed, and solve the faithful MIP for one stage count. */
void
solveOneStageCount(const PipelineCostEvaluator &eval, int s,
                   const MipOptions &opts, StageSolve &out)
{
    const int L = eval.cost().numLayers();
    std::vector<std::vector<int>> b;
    MipProblem p = buildPartitionMip(eval, s, &b);

    // Incumbent seed: the heuristic partitioner's pick for this
    // stage count, encoded into the B_{i,j} booleans. If it is
    // memory-infeasible the seed LP simply fails and
    // branch-and-bound starts without an incumbent.
    MipOptions mo = opts;
    Partition seed = heuristicPartitionForStages(eval, s);
    mo.start.assign(static_cast<std::size_t>(p.lp.numVars), 0.0);
    for (int j = 0; j < s; ++j) {
        for (int i = seed[j].lo; i < seed[j].hi; ++i)
            mo.start[b[i][j]] = 1.0;
    }

    const auto t0 = std::chrono::steady_clock::now();
    MipSolution sol = solveMip(p, mo);
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    out.nodes = sol.nodesExplored;
    out.pivots = sol.lpPivots;
    out.warm = sol.lpWarmSolves;
    out.cold = sol.lpColdSolves;
    if (!sol.ok())
        return;
    out.solved = true;
    out.objective = sol.objective;
    // Decode B_{i,j} into stage sizes.
    std::vector<int> sizes(static_cast<std::size_t>(s), 0);
    for (int i = 0; i < L; ++i) {
        for (int j = 0; j < s; ++j) {
            if (sol.x[b[i][j]] > 0.5)
                ++sizes[j];
        }
    }
    out.partition = partitionFromSizes(sizes);
}

} // namespace

ExactMipResult
exactMipPartition(const PipelineCostEvaluator &eval, int max_stages,
                  const MipOptions &opts, MetricsRegistry *metrics)
{
    const CostModel &cm = eval.cost();
    const int L = cm.numLayers();
    const int N = eval.env().numGpus;
    if (metrics && !metrics->enabled())
        metrics = nullptr;

    ExactMipResult best;
    const int s_lo = std::min(N, L);
    const int s_hi = std::min(max_stages, L);
    if (s_hi < s_lo)
        return best;
    const int count = s_hi - s_lo + 1;

    std::vector<StageSolve> solves(static_cast<std::size_t>(count));

    int threads = opts.threads;
    if (threads <= 0) {
        threads =
            static_cast<int>(std::thread::hardware_concurrency());
        if (threads <= 0)
            threads = 1;
    }
    threads = std::min(threads, count);

    // Each stage count is an independent MIP, so workers just pull
    // the next s off a shared ticket. All output is per-slot and the
    // reduction below scans slots in stage-count order, which keeps
    // the chosen partition bit-identical for any thread count.
    // fatal() (e.g. a non-uniform layer stack) must reach the caller
    // as a FatalError, not std::terminate a worker thread, so each
    // slot captures its exception for a post-join rethrow.
    std::vector<std::exception_ptr> errors(
        static_cast<std::size_t>(count));
    std::atomic<int> next{0};
    auto run = [&] {
        while (true) {
            const int k = next.fetch_add(1);
            if (k >= count)
                break;
            const int s = s_lo + k;
            StageSolve &out = solves[static_cast<std::size_t>(k)];
            try {
                solveOneStageCount(eval, s, opts, out);
            } catch (...) {
                errors[static_cast<std::size_t>(k)] =
                    std::current_exception();
            }
        }
    };
    if (threads <= 1) {
        run();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(threads));
        for (int i = 0; i < threads; ++i)
            pool.emplace_back(run);
        for (auto &th : pool)
            th.join();
    }
    for (const std::exception_ptr &err : errors) {
        if (err)
            std::rethrow_exception(err);
    }

    // MetricsRegistry is not thread-safe: record everything here,
    // after the join, in stage-count order.
    best.threadsUsed = threads;
    for (const StageSolve &out : solves) {
        best.nodes += out.nodes;
        best.lpPivots += out.pivots;
        best.lpWarmSolves += out.warm;
        best.lpColdSolves += out.cold;
        best.wallSeconds += out.seconds;
        if (metrics) {
            metrics->counter("plan.mip.solves").add();
            metrics->counter("plan.mip.nodes")
                .add(static_cast<double>(out.nodes));
            metrics->counter("plan.mip.lp_pivots")
                .add(static_cast<double>(out.pivots));
            metrics->counter("solver.lp.warm_solves")
                .add(static_cast<double>(out.warm));
            metrics->counter("solver.lp.cold_solves")
                .add(static_cast<double>(out.cold));
            metrics->histogram("plan.mip.solve_seconds")
                .record(out.seconds);
        }
        if (out.solved &&
            (!best.solved || out.objective < best.objective)) {
            best.solved = true;
            best.objective = out.objective;
            best.partition = out.partition;
        }
    }
    if (metrics) {
        metrics->gauge("plan.mip.threads")
            .set(static_cast<double>(threads));
    }
    return best;
}

} // namespace mobius
