/**
 * @file
 * Analytical Mobius-pipeline schedule evaluator.
 *
 * Implements the constraint system of §3.2 (Eq. 4-11) as a forward
 * recurrence: given a partition it computes every stage's
 * forward/backward start times under the memory constraints (Eq. 4-5),
 * prefetch limits (Eq. 6), pipeline-order constraints (Eq. 8),
 * weight-availability constraints (Eq. 9), per-stage microbatch
 * serialisation (Eq. 10) and the forward/backward barrier (Eq. 11).
 * The returned step time is the objective of the paper's MIP (Eq. 3).
 *
 * Communication uses the *average* GPU bandwidth B, exactly like the
 * MIP's constant B in Table 2 — contention is deliberately not
 * modelled here (it is handled by cross mapping and observed in the
 * event-driven executor).
 */

#ifndef MOBIUS_PLAN_PIPELINE_COST_HH
#define MOBIUS_PLAN_PIPELINE_COST_HH

#include <string>
#include <vector>

#include "plan/partition.hh"

namespace mobius
{

/** Inputs the evaluator needs beyond the cost model. */
struct PipelineEnv
{
    int numGpus = 4;              //!< N
    Bytes gpuMemBytes = 0;        //!< G, per-GPU capacity
    double avgBandwidth = 13.1e9; //!< B, average GPU comm bandwidth
    /**
     * Keep the last round of forward stages resident for the
     * backward pass when memory allows (avoids a reload bubble at
     * the forward/backward boundary).
     */
    bool keepResidentTail = true;
};

/** Per-stage schedule detail of one evaluation. */
struct StageSchedule
{
    double fwdStart = 0.0;  //!< t^f_{j,1}
    double fwdEnd = 0.0;    //!< t^f_{j,M} + T^f_j
    double bwdStart = 0.0;  //!< t^b_{j,1}
    double bwdEnd = 0.0;    //!< t^b_{j,M} + T^b_j
    double fwdReady = 0.0;  //!< weights fully on GPU (forward)
    double bwdReady = 0.0;  //!< weights fully on GPU (backward)
    Bytes prefetchedFwd = 0; //!< P^f_j actually prefetched
    Bytes prefetchedBwd = 0; //!< P^b_j actually prefetched
    bool residentForBwd = false; //!< stage never left the GPU
};

/** Result of evaluating one partition. */
struct PipelineEstimate
{
    bool feasible = false;        //!< schedule fits in GPU memory
    std::string infeasibleReason; //!< human-readable cause if not
    double stepTime = 0.0;        //!< makespan (seconds)
    std::vector<StageSchedule> stages; //!< per-stage detail

    /** Communication the schedule implies (parameters both ways,
     * activations, gradients) in bytes. */
    Bytes commBytes = 0;
};

/** Evaluates partitions against one (model, GPU, config, server). */
class PipelineCostEvaluator
{
  public:
    PipelineCostEvaluator(const CostModel &cost, PipelineEnv env);

    /** Evaluate one partition (Eq. 3-11). */
    PipelineEstimate evaluate(const Partition &partition) const;

    const PipelineEnv &env() const { return env_; }
    const CostModel &cost() const { return *cost_; }

  private:
    const CostModel *cost_;
    PipelineEnv env_;
};

} // namespace mobius

#endif // MOBIUS_PLAN_PIPELINE_COST_HH
