/**
 * @file
 * Partition types: a model partition is an ordered list of stages,
 * each a contiguous range of layers (§3.1/§3.2). The paper's MIP uses
 * boolean layer->stage placement variables; pipeline-order constraints
 * force placements to be contiguous and monotone, so a partition is
 * exactly a composition of the layer count.
 */

#ifndef MOBIUS_PLAN_PARTITION_HH
#define MOBIUS_PLAN_PARTITION_HH

#include <string>
#include <vector>

#include "model/cost_model.hh"

namespace mobius
{

/** A stage: the layer range [lo, hi). */
struct StageRange
{
    int lo = 0; //!< first layer (inclusive)
    int hi = 0; //!< one past the last layer (exclusive)

    /** @return number of layers in the stage. */
    int size() const { return hi - lo; }

    /** Structural equality. */
    bool
    operator==(const StageRange &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
};

/** An ordered partition of the model into stages. */
using Partition = std::vector<StageRange>;

/** @return true if @p p covers [0, num_layers) contiguously. */
bool partitionValid(const Partition &p, int num_layers);

/** panic() unless partitionValid. */
void checkPartition(const Partition &p, int num_layers);

/** Build a partition from stage sizes (a composition). */
Partition partitionFromSizes(const std::vector<int> &sizes);

/** @return "8|8|8|8"-style description. */
std::string partitionToString(const Partition &p);

/**
 * A near-uniform partition of @p num_layers into @p num_stages
 * stages (sizes differ by at most one, larger stages first).
 */
Partition uniformPartition(int num_layers, int num_stages);

} // namespace mobius

#endif // MOBIUS_PLAN_PARTITION_HH
