#include "plan/mapping.hh"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "base/logging.hh"

namespace mobius
{

namespace
{

/** shared(g1, g2) table: common root-complex group size or 0. */
std::vector<std::vector<int>>
sharedTable(const Topology &topo)
{
    int n = topo.numGpus();
    std::vector<std::vector<int>> shared(
        static_cast<std::size_t>(n),
        std::vector<int>(static_cast<std::size_t>(n), 0));
    for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b)
            shared[a][b] = topo.sharedRootComplexDegree(a, b);
    }
    return shared;
}

double
degree(const std::vector<std::vector<int>> &shared,
       const std::vector<int> &order, int num_stages)
{
    const int n = static_cast<int>(order.size());
    double total = 0.0;
    for (int i = 0; i < num_stages; ++i) {
        int gi = order[i % n];
        for (int j = i + 1; j < num_stages; ++j) {
            int gj = order[j % n];
            int s = shared[gi][gj];
            if (s > 0)
                total += static_cast<double>(s) / (j - i);
        }
    }
    return total;
}

} // namespace

double
contentionDegree(const Topology &topo,
                 const std::vector<int> &gpu_order, int num_stages)
{
    if (gpu_order.empty())
        panic("contentionDegree: empty GPU order");
    return degree(sharedTable(topo), gpu_order, num_stages);
}

Mapping
sequentialMapping(const Topology &topo, int num_stages)
{
    Mapping m;
    m.gpuOrder.resize(static_cast<std::size_t>(topo.numGpus()));
    std::iota(m.gpuOrder.begin(), m.gpuOrder.end(), 0);
    m.contention = contentionDegree(topo, m.gpuOrder, num_stages);
    return m;
}

MappingResult
crossMapping(const Topology &topo, int num_stages)
{
    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();

    auto shared = sharedTable(topo);
    std::vector<int> order(static_cast<std::size_t>(topo.numGpus()));
    std::iota(order.begin(), order.end(), 0);

    MappingResult result;
    double best = std::numeric_limits<double>::infinity();
    // Permutations are generated in lexicographic order, so ties
    // resolve to the lexicographically smallest order: deterministic.
    do {
        ++result.evaluated;
        double d = degree(shared, order, num_stages);
        if (d < best - 1e-12) {
            best = d;
            result.mapping.gpuOrder = order;
        }
    } while (std::next_permutation(order.begin(), order.end()));

    result.mapping.contention = best;
    result.searchSeconds =
        std::chrono::duration<double>(clock::now() - t0).count();
    return result;
}

} // namespace mobius
