/**
 * @file
 * Stage-to-GPU mapping (§3.3).
 *
 * Stages are assigned round-robin over a GPU *order*; the order is
 * what distinguishes sequential mapping (identity) from cross mapping
 * (the order minimising the contention degree of Eq. 12/13, found by
 * exhaustive search over GPU permutations).
 */

#ifndef MOBIUS_PLAN_MAPPING_HH
#define MOBIUS_PLAN_MAPPING_HH

#include <vector>

#include "hw/topology.hh"

namespace mobius
{

/** A stage->GPU assignment via a GPU order. */
struct Mapping
{
    std::vector<int> gpuOrder;  //!< permutation of GPU indices
    double contention = 0.0;    //!< Eq. 13 score for this order

    /** GPU executing stage @p stage (round-robin over the order). */
    int
    gpuOf(int stage) const
    {
        return gpuOrder[static_cast<std::size_t>(stage) %
                        gpuOrder.size()];
    }

    /** @return number of GPUs in the order. */
    int numGpus() const { return static_cast<int>(gpuOrder.size()); }
};

/**
 * Contention degree of a GPU order (Eq. 12/13):
 * sum over stage pairs i < j of shared(i, j) / (j - i), where
 * shared(i, j) is the size of the common root-complex group of the
 * GPUs executing stages i and j (0 when they differ).
 */
double contentionDegree(const Topology &topo,
                        const std::vector<int> &gpu_order,
                        int num_stages);

/** The naive, topology-oblivious mapping of prior pipelines. */
Mapping sequentialMapping(const Topology &topo, int num_stages);

/** Search outcome for cross mapping. */
struct MappingResult
{
    Mapping mapping;            //!< the chosen order
    double searchSeconds = 0.0; //!< wall-clock spent searching
    int evaluated = 0;          //!< permutations scored
};

/** §3.3 cross mapping: the permutation with minimal Eq. 13 score. */
MappingResult crossMapping(const Topology &topo, int num_stages);

} // namespace mobius

#endif // MOBIUS_PLAN_MAPPING_HH
