#include "plan/partition_algos.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "base/logging.hh"

namespace mobius
{

namespace
{

double
wallSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** Score a partition: step time, +inf if infeasible. */
double
score(const PipelineCostEvaluator &eval, const Partition &p,
      PipelineEstimate *out, int *evaluated)
{
    ++*evaluated;
    PipelineEstimate est = eval.evaluate(p);
    double s = est.feasible ? est.stepTime
                            : std::numeric_limits<double>::infinity();
    if (out)
        *out = std::move(est);
    return s;
}

/**
 * Hill-climb on stage boundaries: repeatedly move each boundary by
 * one layer in either direction while it improves the step time.
 */
void
hillClimb(const PipelineCostEvaluator &eval, Partition &best,
          double &best_time, int *evaluated)
{
    bool improved = true;
    while (improved) {
        improved = false;
        for (std::size_t b = 0; b + 1 < best.size(); ++b) {
            for (int delta : {-1, +1}) {
                Partition cand = best;
                StageRange &left = cand[b];
                StageRange &right = cand[b + 1];
                int boundary = left.hi + delta;
                if (boundary <= left.lo || boundary >= right.hi)
                    continue;
                left.hi = boundary;
                right.lo = boundary;
                PipelineEstimate est;
                double t = score(eval, cand, &est, evaluated);
                if (t < best_time - 1e-12) {
                    best = std::move(cand);
                    best_time = t;
                    improved = true;
                }
            }
        }
    }
}

} // namespace

Partition
heuristicPartitionForStages(const PipelineCostEvaluator &eval,
                            int num_stages, int *evaluated)
{
    int scratch = 0;
    if (!evaluated)
        evaluated = &scratch;
    const int L = eval.cost().numLayers();
    Partition p = uniformPartition(L, num_stages);
    PipelineEstimate est;
    double t = score(eval, p, &est, evaluated);
    if (!std::isinf(t))
        hillClimb(eval, p, t, evaluated);
    return p;
}

PartitionResult
mipPartition(const PipelineCostEvaluator &eval)
{
    const double t0 = wallSeconds();
    const CostModel &cm = eval.cost();
    const int L = cm.numLayers();
    const int N = eval.env().numGpus;

    PartitionResult result;
    double best_time = std::numeric_limits<double>::infinity();

    // Seed candidates: a near-uniform partition for every feasible
    // stage count (the balanced shapes the MIP gravitates to thanks
    // to layer similarity), hill-climbed to repair edge effects from
    // the embedding / head layers.
    for (int s = std::min(N, L); s <= L; ++s) {
        Partition cand =
            heuristicPartitionForStages(eval, s, &result.evaluated);
        PipelineEstimate est;
        double t = score(eval, cand, &est, &result.evaluated);
        if (t < best_time) {
            best_time = t;
            result.partition = std::move(cand);
        }
    }

    if (std::isinf(best_time)) {
        fatal("MIP partition: no feasible partition of %s on %d GPUs "
              "with %s per GPU",
              cm.model().name.c_str(), N,
              formatBytes(eval.env().gpuMemBytes).c_str());
    }

    result.estimate = eval.evaluate(result.partition);
    result.solveSeconds = wallSeconds() - t0;
    return result;
}

PartitionResult
maxStagePartition(const PipelineCostEvaluator &eval)
{
    const double t0 = wallSeconds();
    const CostModel &cm = eval.cost();
    const Bytes g = eval.env().gpuMemBytes;
    const int L = cm.numLayers();

    Partition p;
    int lo = 0;
    while (lo < L) {
        int hi = lo + 1;
        if (cm.stageMemFwd(lo, hi) > g || cm.stageMemBwd(lo, hi) > g) {
            fatal("maximum-stage partition: layer %d alone exceeds "
                  "GPU memory", lo);
        }
        while (hi < L && cm.stageMemFwd(lo, hi + 1) <= g &&
               cm.stageMemBwd(lo, hi + 1) <= g) {
            ++hi;
        }
        p.push_back(StageRange{lo, hi});
        lo = hi;
    }

    PartitionResult result;
    result.partition = std::move(p);
    result.evaluated = 1;
    result.estimate = eval.evaluate(result.partition);
    result.solveSeconds = wallSeconds() - t0;
    return result;
}

PartitionResult
minStagePartition(const PipelineCostEvaluator &eval)
{
    const double t0 = wallSeconds();
    const CostModel &cm = eval.cost();
    const auto &layers = cm.model().layers;
    const int L = cm.numLayers();

    // One transformer block per stage; non-block layers attach to the
    // neighbouring block's stage (embedding joins the first block,
    // norm/head join the last).
    Partition p;
    int lo = 0;
    bool current_has_block = false;
    for (int i = 0; i < L; ++i) {
        bool is_block = layers[i].type == LayerType::TransformerBlock;
        if (is_block && current_has_block) {
            p.push_back(StageRange{lo, i});
            lo = i;
        }
        current_has_block = current_has_block || is_block;
    }
    p.push_back(StageRange{lo, L});

    PartitionResult result;
    result.partition = std::move(p);
    result.evaluated = 1;
    result.estimate = eval.evaluate(result.partition);
    result.solveSeconds = wallSeconds() - t0;
    return result;
}

PartitionResult
bruteForcePartition(const PipelineCostEvaluator &eval, int max_layers)
{
    const double t0 = wallSeconds();
    const int L = eval.cost().numLayers();
    if (L > max_layers)
        fatal("brute-force partition limited to %d layers (model has "
              "%d)", max_layers, L);

    PartitionResult result;
    double best_time = std::numeric_limits<double>::infinity();

    // Every composition of L corresponds to a subset of the L-1
    // possible boundaries.
    const std::uint64_t masks = 1ULL << (L - 1);
    for (std::uint64_t mask = 0; mask < masks; ++mask) {
        Partition p;
        int lo = 0;
        for (int b = 0; b < L - 1; ++b) {
            if (mask & (1ULL << b)) {
                p.push_back(StageRange{lo, b + 1});
                lo = b + 1;
            }
        }
        p.push_back(StageRange{lo, L});
        PipelineEstimate est;
        double t = score(eval, p, &est, &result.evaluated);
        if (t < best_time) {
            best_time = t;
            result.partition = std::move(p);
            result.estimate = std::move(est);
        }
    }

    if (std::isinf(best_time))
        fatal("brute force: no feasible partition");
    result.solveSeconds = wallSeconds() - t0;
    return result;
}

Partition
balancedComputePartition(const CostModel &cost, int num_stages)
{
    const int L = cost.numLayers();
    const int S = num_stages;
    if (S < 1 || S > L)
        fatal("cannot split %d layers into %d stages", L, S);

    // Prefix sums of per-layer compute time.
    std::vector<double> prefix(static_cast<std::size_t>(L) + 1, 0.0);
    for (int i = 0; i < L; ++i) {
        prefix[i + 1] =
            prefix[i] + cost.fwdTime(i) + cost.bwdTime(i);
    }
    auto range_time = [&](int lo, int hi) {
        return prefix[hi] - prefix[lo];
    };

    // dp[s][i]: minimal max-stage-time splitting the first i layers
    // into s stages; cut[s][i] records the final boundary.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> dp(
        static_cast<std::size_t>(S) + 1,
        std::vector<double>(static_cast<std::size_t>(L) + 1, kInf));
    std::vector<std::vector<int>> cut(
        static_cast<std::size_t>(S) + 1,
        std::vector<int>(static_cast<std::size_t>(L) + 1, -1));
    dp[0][0] = 0.0;
    for (int s = 1; s <= S; ++s) {
        for (int i = s; i <= L - (S - s); ++i) {
            for (int k = s - 1; k < i; ++k) {
                if (std::isinf(dp[s - 1][k]))
                    continue;
                double v =
                    std::max(dp[s - 1][k], range_time(k, i));
                if (v < dp[s][i]) {
                    dp[s][i] = v;
                    cut[s][i] = k;
                }
            }
        }
    }

    Partition p(static_cast<std::size_t>(S));
    int hi = L;
    for (int s = S; s >= 1; --s) {
        int lo = cut[s][hi];
        p[s - 1] = StageRange{lo, hi};
        hi = lo;
    }
    checkPartition(p, L);
    return p;
}

} // namespace mobius
