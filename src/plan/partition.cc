#include "plan/partition.hh"

#include "base/logging.hh"

namespace mobius
{

bool
partitionValid(const Partition &p, int num_layers)
{
    if (p.empty())
        return false;
    int pos = 0;
    for (const auto &s : p) {
        if (s.lo != pos || s.hi <= s.lo)
            return false;
        pos = s.hi;
    }
    return pos == num_layers;
}

void
checkPartition(const Partition &p, int num_layers)
{
    if (!partitionValid(p, num_layers)) {
        panic("invalid partition %s for %d layers",
              partitionToString(p).c_str(), num_layers);
    }
}

Partition
partitionFromSizes(const std::vector<int> &sizes)
{
    Partition p;
    int pos = 0;
    for (int s : sizes) {
        p.push_back(StageRange{pos, pos + s});
        pos += s;
    }
    return p;
}

std::string
partitionToString(const Partition &p)
{
    std::string out;
    for (const auto &s : p) {
        if (!out.empty())
            out += "|";
        out += std::to_string(s.size());
    }
    return out;
}

Partition
uniformPartition(int num_layers, int num_stages)
{
    if (num_stages < 1 || num_stages > num_layers)
        panic("cannot split %d layers into %d stages", num_layers,
              num_stages);
    std::vector<int> sizes;
    int base = num_layers / num_stages;
    int extra = num_layers % num_stages;
    for (int i = 0; i < num_stages; ++i)
        sizes.push_back(base + (i < extra ? 1 : 0));
    return partitionFromSizes(sizes);
}

} // namespace mobius
