#include "train/trainer.hh"

#include "base/logging.hh"

namespace mobius
{

MonolithicTrainer::MonolithicTrainer(MiniGpt &model, AdamConfig adam)
    : model_(model), optimizer_(model.parameters(), adam)
{
}

double
MonolithicTrainer::step(
    const std::vector<SyntheticCorpus::LmSample> &microbatches)
{
    if (microbatches.empty())
        fatal("training step needs at least one microbatch");
    optimizer_.zeroGrad();
    const float inv_m =
        1.0f / static_cast<float>(microbatches.size());
    double total = 0.0;
    for (const auto &mb : microbatches) {
        Tensor logits = model_.forward(mb.input);
        Tensor loss = crossEntropy(logits, mb.target);
        total += loss.data()[0];
        std::vector<float> seed{inv_m};
        loss.backward(&seed);
    }
    optimizer_.step();
    return total / microbatches.size();
}

PipelineTrainer::PipelineTrainer(MiniGpt &model, Partition partition,
                                 AdamConfig adam)
    : model_(model), partition_(std::move(partition)),
      optimizer_(model.parameters(), adam)
{
    checkPartition(partition_, model.numPipelineLayers());
}

double
PipelineTrainer::step(
    const std::vector<SyntheticCorpus::LmSample> &microbatches)
{
    if (microbatches.empty())
        fatal("training step needs at least one microbatch");
    optimizer_.zeroGrad();
    const int s_count = static_cast<int>(partition_.size());
    const int m_count = static_cast<int>(microbatches.size());
    const float inv_m = 1.0f / static_cast<float>(m_count);

    // inputLeaf[s][m]: detached input of stage s on microbatch m;
    // output[s][m]: that stage's output (graph attached to the leaf).
    std::vector<std::vector<Tensor>> input_leaf(
        static_cast<std::size_t>(s_count),
        std::vector<Tensor>(static_cast<std::size_t>(m_count)));
    std::vector<std::vector<Tensor>> output(
        static_cast<std::size_t>(s_count),
        std::vector<Tensor>(static_cast<std::size_t>(m_count)));

    // Forward, stage-major: a stage runs all its microbatches before
    // control moves on — exactly the Mobius order (Fig. 4).
    for (int s = 0; s < s_count; ++s) {
        for (int m = 0; m < m_count; ++m) {
            Tensor x;
            if (s > 0) {
                // The boundary "activation transfer": a fresh leaf
                // with the upstream values, no graph history.
                input_leaf[s][m] = output[s - 1][m].detachAsLeaf();
                x = input_leaf[s][m];
            }
            for (int layer = partition_[s].lo;
                 layer < partition_[s].hi; ++layer) {
                x = model_.forwardLayer(layer, x,
                                        microbatches[m].input);
            }
            output[s][m] = x;
        }
    }

    // Backward, reverse stage order; boundary gradients flow through
    // the detached leaves ("activation gradient transfers").
    double total = 0.0;
    for (int s = s_count - 1; s >= 0; --s) {
        for (int m = 0; m < m_count; ++m) {
            if (s == s_count - 1) {
                Tensor loss = crossEntropy(
                    output[s][m], microbatches[m].target);
                total += loss.data()[0];
                std::vector<float> seed{inv_m};
                loss.backward(&seed);
            } else {
                // Seed with the gradient accumulated on the next
                // stage's input leaf.
                output[s][m].backward(
                    &input_leaf[s + 1][m].grad());
            }
        }
    }

    optimizer_.step();
    return total / m_count;
}

LossCurve
runTraining(MiniGpt &model, const SyntheticCorpus &corpus,
            PipelineTrainer *pipeline, MonolithicTrainer *monolithic,
            int steps, int microbatches_per_step,
            std::uint64_t data_seed)
{
    if ((pipeline == nullptr) == (monolithic == nullptr))
        fatal("runTraining takes exactly one trainer");
    Rng rng(data_seed);
    LossCurve curve;
    for (int step = 0; step < steps; ++step) {
        std::vector<SyntheticCorpus::LmSample> mbs;
        for (int m = 0; m < microbatches_per_step; ++m)
            mbs.push_back(corpus.sample(model.cfg().seqLen, rng));
        double loss = pipeline ? pipeline->step(mbs)
                               : monolithic->step(mbs);
        curve.losses.push_back(loss);
    }
    return curve;
}

} // namespace mobius
