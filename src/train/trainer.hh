/**
 * @file
 * Training loops for the convergence experiment (Fig. 13).
 *
 * MonolithicTrainer runs plain microbatch gradient accumulation with
 * full-model autograd. PipelineTrainer partitions the model into
 * stages (exactly like Mobius/GPipe partition the big models), cuts
 * the autograd graph at stage boundaries, executes stages in
 * pipeline order, and back-propagates boundary gradients stage by
 * stage. Both perform *synchronous* updates, so — as §3.1 argues —
 * they produce bit-identical parameter trajectories, which is the
 * strongest form of the paper's "Mobius does not hurt convergence"
 * claim (Fig. 13).
 */

#ifndef MOBIUS_TRAIN_TRAINER_HH
#define MOBIUS_TRAIN_TRAINER_HH

#include <vector>

#include "data/corpus.hh"
#include "nn/adam.hh"
#include "nn/module.hh"
#include "plan/partition.hh"

namespace mobius
{

/** Plain full-model gradient accumulation. */
class MonolithicTrainer
{
  public:
    /** Attach an optimizer to @p model's parameters. */
    MonolithicTrainer(MiniGpt &model, AdamConfig adam = {});

    /**
     * One synchronous step over @p microbatches.
     * @return mean loss across microbatches.
     */
    double step(const std::vector<SyntheticCorpus::LmSample>
                    &microbatches);

  private:
    MiniGpt &model_;
    Adam optimizer_;
};

/** Stage-partitioned pipeline execution (GPipe/Mobius order). */
class PipelineTrainer
{
  public:
    /**
     * @param partition stage ranges over the model's pipeline layers
     *                  (see MiniGpt::numPipelineLayers()).
     */
    PipelineTrainer(MiniGpt &model, Partition partition,
                    AdamConfig adam = {});

    /** One synchronous pipeline step; returns mean loss. */
    double step(const std::vector<SyntheticCorpus::LmSample>
                    &microbatches);

    const Partition &partition() const { return partition_; }

  private:
    MiniGpt &model_;
    Partition partition_;
    Adam optimizer_;
};

/** A loss curve from a short fine-tuning run. */
struct LossCurve
{
    std::vector<double> losses; //!< one entry per step
};

/**
 * Run @p steps of training with @p microbatches_per_step
 * microbatches per step on a fresh corpus stream (seeded), using
 * either trainer.
 */
LossCurve runTraining(MiniGpt &model, const SyntheticCorpus &corpus,
                      PipelineTrainer *pipeline,
                      MonolithicTrainer *monolithic, int steps,
                      int microbatches_per_step,
                      std::uint64_t data_seed);

} // namespace mobius

#endif // MOBIUS_TRAIN_TRAINER_HH
