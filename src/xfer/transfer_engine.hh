/**
 * @file
 * The fluid-flow transfer engine.
 *
 * Models DMA transfers between DRAM and GPUs (and GPU-to-GPU) on top of
 * the event queue:
 *
 *  - every GPU has one H2D and one D2H copy engine; an engine runs one
 *    transfer at a time and picks the next by priority (lower value =
 *    more urgent, FIFO within a priority) — this models CUDA streams
 *    created with cudaStreamCreateWithPriority (§3.3);
 *  - an in-flight transfer is a fluid flow across the link-direction
 *    capacity pools on its route; rates are recomputed with max-min
 *    fairness whenever the active set changes, which is how
 *    root-complex contention arises;
 *  - GPU-to-GPU transfers on servers without GPUDirect P2P are routed
 *    through DRAM (chunked staging: a single cut-through flow whose
 *    route covers both legs), matching §2.2;
 *  - every transfer pays a fixed setup latency (driver/launch cost).
 */

#ifndef MOBIUS_XFER_TRANSFER_ENGINE_HH
#define MOBIUS_XFER_TRANSFER_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "hw/topology.hh"
#include "obs/metrics.hh"
#include "simcore/event_queue.hh"
#include "simcore/trace.hh"
#include "xfer/stats.hh"

namespace mobius
{

/** Identifies one submitted transfer. */
using FlowId = std::uint64_t;

/** A transfer submitted to the engine. */
struct TransferRequest
{
    Endpoint src;                 //!< source endpoint
    Endpoint dst;                 //!< destination endpoint
    Bytes bytes = 0;              //!< payload size
    TrafficKind kind = TrafficKind::Other; //!< traffic accounting
    int priority = 10;            //!< lower value = more urgent
    int statsGpu = -1;            //!< stats attribution; -1 = auto
    /**
     * Per-flow rate cap in bytes/second (0 = none). Models a slow
     * source such as an NVMe tier feeding stage loads.
     */
    double rateCap = 0.0;
    std::string label;            //!< trace span name
    std::function<void()> onComplete; //!< fires when the flow lands
    /**
     * Fault-injection hook (fault/fault_injector.hh): when set, this
     * attempt is doomed — it occupies its engines and links for the
     * full transfer, then surfaces as a failure (a CRC/timeout-style
     * transient error detected at completion). onFail fires instead
     * of onComplete and the span lands in category "fault".
     */
    bool willFail = false;
    std::function<void()> onFail; //!< fires when a doomed flow ends
    /** Spans that causally enabled this transfer (e.g. the compute
     *  that produced the activation, or the eviction that freed
     *  destination memory). */
    std::vector<SpanId> deps;
    int stage = -1;               //!< pipeline stage gated, -1 = none
};

/** Per-transfer engine configuration. */
struct TransferEngineConfig
{
    double setupLatency = 30e-6;  //!< seconds before data moves
};

/** Schedules transfers over a Topology on an EventQueue. */
class TransferEngine
{
  public:
    TransferEngine(EventQueue &queue, const Topology &topo,
                   UsageTracker *usage = nullptr,
                   TransferEngineConfig cfg = {},
                   TraceRecorder *trace = nullptr,
                   MetricsRegistry *metrics = nullptr);

    /** Submit a transfer; completes asynchronously. */
    FlowId submit(TransferRequest req);

    /**
     * Rescale link @p link's capacity (both directions) to
     * @p factor x its construction-time value and re-solve the
     * fair-share rates of every in-flight flow. The fault injector's
     * bandwidth-degradation hook: factors compose by overwriting
     * (pass the product of active degradations), and factor 1
     * restores the nominal capacity.
     */
    void setLinkCapacityFactor(int link, double factor);

    /** @return true when nothing is queued or in flight. */
    bool idle() const { return flows_.empty(); }

    /** @return number of flows currently moving data. */
    int dataActiveFlows() const;

    TrafficStats &stats() { return stats_; }
    const TrafficStats &stats() const { return stats_; }

    const Topology &topo() const { return topo_; }

    /**
     * Id of the most recently finished transfer's span (kNoSpan
     * before any finish, or without a recorder). Valid inside
     * onComplete callbacks: the span is recorded before they fire.
     */
    SpanId lastSpanId() const { return lastSpan_; }

  private:
    enum class FlowState { Waiting, Setup, Moving };

    struct Flow
    {
        FlowId id = 0;
        TransferRequest req;
        std::vector<int> pools;    //!< capacity pools on the route
        std::vector<int> engines;  //!< copy-engine ids required
        std::vector<int> commGpus; //!< GPUs for usage tracking
        bool peerOnly = false;     //!< pure-NVLink route
        FlowState state = FlowState::Waiting;
        Bytes remaining = 0;
        double rate = 0.0;
        SimTime submitTime = 0.0;
        SimTime dataStart = 0.0;
        SimTime lastUpdate = 0.0;
        EventId pendingEvent = kNoEvent;
        std::uint64_t seq = 0;
    };

    struct CopyEngine
    {
        FlowId current = 0;               //!< 0 = idle
        std::deque<FlowId> waiting;       //!< kept priority-sorted
    };

    /** Copy-engine id for a GPU and direction (false=H2D, true=D2H). */
    int
    engineId(int gpu, bool d2h) const
    {
        return gpu * 2 + (d2h ? 1 : 0);
    }

    /**
     * NVLink copy-engine id. Transfers whose whole route is peer
     * links use these, so NVLink traffic does not queue behind PCIe
     * DMA on the same device (matching dedicated NVLink engines on
     * real GPUs).
     */
    int
    nvlinkEngineId(int gpu, bool send) const
    {
        return topo_.numGpus() * 2 + gpu * 2 + (send ? 1 : 0);
    }

    void enqueueOnEngines(Flow &flow);
    void tryStartFlows();
    bool canStart(const Flow &flow) const;
    void beginSetup(Flow &flow);
    void beginData(FlowId id);
    void finish(FlowId id);
    void recomputeRates();

    EventQueue &queue_;
    const Topology &topo_;
    UsageTracker *usage_;
    TransferEngineConfig cfg_;
    TraceRecorder *trace_;
    TrafficStats stats_;

    std::map<FlowId, Flow> flows_;
    std::vector<CopyEngine> engines_;
    std::vector<double> poolCapacity_;
    std::vector<double> basePoolCapacity_; //!< nominal (factor 1)
    FlowId nextId_ = 1;
    std::uint64_t nextSeq_ = 1;
    SpanId lastSpan_ = kNoSpan;

    /**
     * Metric handles, cached at construction (all null when metrics
     * are off so the hot paths pay one pointer test). "Stalled"
     * means a flow finished below ~98% of its uncontended bottleneck
     * bandwidth, i.e. fair sharing throttled it.
     */
    std::vector<Counter *> mLinkBytes_;  //!< per link id
    Gauge *mQueueDepth_ = nullptr;
    Gauge *mActiveFlows_ = nullptr;
    Counter *mSubmitted_ = nullptr;
    Counter *mCompleted_ = nullptr;
    Counter *mFailed_ = nullptr;
    Counter *mStalled_ = nullptr;
    Counter *mRecomputes_ = nullptr;
    Histogram *mBandwidth_ = nullptr;
    Histogram *mFairShareRounds_ = nullptr;
    int waitingCount_ = 0;  //!< flows submitted but not yet started
    int activeCount_ = 0;   //!< flows in setup or moving
};

} // namespace mobius

#endif // MOBIUS_XFER_TRANSFER_ENGINE_HH
