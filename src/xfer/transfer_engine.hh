/**
 * @file
 * The fluid-flow transfer engine.
 *
 * Models DMA transfers between DRAM and GPUs (and GPU-to-GPU) on top of
 * the event queue:
 *
 *  - every GPU has one H2D and one D2H copy engine; an engine runs one
 *    transfer at a time and picks the next by priority (lower value =
 *    more urgent, FIFO within a priority) — this models CUDA streams
 *    created with cudaStreamCreateWithPriority (§3.3);
 *  - an in-flight transfer is a fluid flow across the link-direction
 *    capacity pools on its route; rates are recomputed with max-min
 *    fairness whenever the active set changes, which is how
 *    root-complex contention arises;
 *  - GPU-to-GPU transfers on servers without GPUDirect P2P are routed
 *    through DRAM (chunked staging: a single cut-through flow whose
 *    route covers both legs), matching §2.2;
 *  - every transfer pays a fixed setup latency (driver/launch cost).
 *
 * **Incremental fair-share recomputation.** A change to the active
 * flow set (a flow starts moving, finishes, or a link's capacity is
 * rescaled) can only move the rates of flows that share a pool with
 * the change — directly or transitively. The engine keeps a
 * pool -> moving-flows index, walks the connected component of the
 * change, and re-solves max-min fairness for *that component only*:
 * untouched flows keep their rate, their progress integral, and their
 * already-scheduled completion event. Because the solver itself
 * waterfills per connected component (fair_share.hh), the incremental
 * rates are bit-identical to what a full recomputation would produce;
 * TransferEngineConfig::fairShareCrossCheck re-runs the full solve
 * after every update and panics on any divergence.
 */

#ifndef MOBIUS_XFER_TRANSFER_ENGINE_HH
#define MOBIUS_XFER_TRANSFER_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "hw/topology.hh"
#include "obs/metrics.hh"
#include "simcore/event_queue.hh"
#include "simcore/trace.hh"
#include "xfer/stats.hh"

namespace mobius
{

/** Identifies one submitted transfer. */
using FlowId = std::uint64_t;

/** A transfer submitted to the engine. */
struct TransferRequest
{
    Endpoint src;                 //!< source endpoint
    Endpoint dst;                 //!< destination endpoint
    Bytes bytes = 0;              //!< payload size
    TrafficKind kind = TrafficKind::Other; //!< traffic accounting
    int priority = 10;            //!< lower value = more urgent
    int statsGpu = -1;            //!< stats attribution; -1 = auto
    /**
     * Per-flow rate cap in bytes/second (0 = none). Models a slow
     * source such as an NVMe tier feeding stage loads.
     */
    double rateCap = 0.0;
    std::string label;            //!< trace span name
    std::function<void()> onComplete; //!< fires when the flow lands
    /**
     * Fault-injection hook (fault/fault_injector.hh): when set, this
     * attempt is doomed — it occupies its engines and links for the
     * full transfer, then surfaces as a failure (a CRC/timeout-style
     * transient error detected at completion). onFail fires instead
     * of onComplete and the span lands in category "fault".
     */
    bool willFail = false;
    std::function<void()> onFail; //!< fires when a doomed flow ends
    /** Spans that causally enabled this transfer (e.g. the compute
     *  that produced the activation, or the eviction that freed
     *  destination memory). */
    std::vector<SpanId> deps;
    int stage = -1;               //!< pipeline stage gated, -1 = none
};

/** Per-transfer engine configuration. */
struct TransferEngineConfig
{
    double setupLatency = 30e-6;  //!< seconds before data moves
    /**
     * Verification mode: after every incremental fair-share update,
     * re-solve *all* moving flows from scratch and panic unless
     * every stored rate matches the full solution exactly (==, not
     * within a tolerance). Costs a full recompute per change; meant
     * for tests and the bench_simcore quick gate, not production.
     */
    bool fairShareCrossCheck = false;
};

/**
 * Always-on counters for the incremental fair-share machinery. A
 * "solve" is one reaction to an active-set change; each solve touches
 * the flows in the affected component and skips every other moving
 * flow (work a full recomputation would have redone).
 */
struct FairShareActivity
{
    std::uint64_t solves = 0;       //!< incremental updates performed
    std::uint64_t flowsTouched = 0; //!< component flows re-solved
    std::uint64_t flowsSkipped = 0; //!< moving flows left untouched
    std::uint64_t crossChecks = 0;  //!< full-solve verifications run
};

/** Schedules transfers over a Topology on an EventQueue. */
class TransferEngine
{
  public:
    TransferEngine(EventQueue &queue, const Topology &topo,
                   UsageTracker *usage = nullptr,
                   TransferEngineConfig cfg = {},
                   TraceRecorder *trace = nullptr,
                   MetricsRegistry *metrics = nullptr);

    /** Submit a transfer; completes asynchronously. */
    FlowId submit(TransferRequest req);

    /**
     * Rescale link @p link's capacity (both directions) to
     * @p factor x its construction-time value and re-solve the
     * fair-share rates of every in-flight flow sharing a pool with
     * it (transitively). The fault injector's bandwidth-degradation
     * hook: factors compose by overwriting (pass the product of
     * active degradations), and factor 1 restores the nominal
     * capacity.
     */
    void setLinkCapacityFactor(int link, double factor);

    /** @return true when nothing is queued or in flight. */
    bool idle() const { return flows_.empty(); }

    /** @return number of flows currently moving data. */
    int dataActiveFlows() const { return movingCount_; }

    TrafficStats &stats() { return stats_; }
    const TrafficStats &stats() const { return stats_; }

    const Topology &topo() const { return topo_; }

    /** Incremental fair-share work counters (always maintained). */
    const FairShareActivity &
    fairShareActivity() const
    {
        return fsActivity_;
    }

    /**
     * Id of the most recently finished transfer's span (kNoSpan
     * before any finish, or without a recorder). Valid inside
     * onComplete callbacks: the span is recorded before they fire.
     */
    SpanId lastSpanId() const { return lastSpan_; }

  private:
    enum class FlowState { Waiting, Setup, Moving };

    struct Flow
    {
        FlowId id = 0;
        TransferRequest req;
        std::vector<int> pools;    //!< capacity pools on the route
        std::vector<int> engines;  //!< copy-engine ids required
        std::vector<int> commGpus; //!< GPUs for usage tracking
        bool peerOnly = false;     //!< pure-NVLink route
        FlowState state = FlowState::Waiting;
        Bytes remaining = 0;
        double rate = 0.0;
        SimTime submitTime = 0.0;
        SimTime dataStart = 0.0;
        SimTime lastUpdate = 0.0;
        EventId pendingEvent = kNoEvent;
        std::uint64_t seq = 0;
        std::uint64_t mark = 0;    //!< component-walk epoch stamp
    };

    struct CopyEngine
    {
        FlowId current = 0;               //!< 0 = idle
        std::deque<FlowId> waiting;       //!< kept priority-sorted
    };

    /** Copy-engine id for a GPU and direction (false=H2D, true=D2H). */
    int
    engineId(int gpu, bool d2h) const
    {
        return gpu * 2 + (d2h ? 1 : 0);
    }

    /**
     * NVLink copy-engine id. Transfers whose whole route is peer
     * links use these, so NVLink traffic does not queue behind PCIe
     * DMA on the same device (matching dedicated NVLink engines on
     * real GPUs).
     */
    int
    nvlinkEngineId(int gpu, bool send) const
    {
        return topo_.numGpus() * 2 + gpu * 2 + (send ? 1 : 0);
    }

    void enqueueOnEngines(Flow &flow);
    void tryStartFlows();
    bool canStart(const Flow &flow) const;
    void beginSetup(Flow &flow);
    void beginData(FlowId id);
    void finish(FlowId id);

    /** Register @p flow as moving in the pool -> flows index. */
    void addToPools(const Flow &flow);
    /** Remove @p flow from the pool -> flows index. */
    void removeFromPools(const Flow &flow);

    /**
     * React to an active-set change: walk the connected component of
     * moving flows reachable from @p seed_pools (and @p seed_flow,
     * when nonzero), integrate their progress, re-solve their
     * max-min fair rates, and reschedule their completion events.
     * Every other moving flow is left untouched.
     */
    void updateRates(const std::vector<int> &seed_pools,
                     FlowId seed_flow);

    /** Full-solve verification of every stored rate (cross-check). */
    void crossCheckRates();

    EventQueue &queue_;
    const Topology &topo_;
    UsageTracker *usage_;
    TransferEngineConfig cfg_;
    TraceRecorder *trace_;
    TrafficStats stats_;

    std::unordered_map<FlowId, Flow> flows_;
    std::vector<CopyEngine> engines_;
    std::vector<double> poolCapacity_;
    std::vector<double> basePoolCapacity_; //!< nominal (factor 1)
    /** Moving flows per pool id (the component-walk adjacency). */
    std::vector<std::vector<FlowId>> poolUsers_;
    /** Per-pool epoch stamps for the component walk. */
    std::vector<std::uint64_t> poolMark_;
    std::uint64_t walkEpoch_ = 0;
    int movingCount_ = 0;
    FairShareActivity fsActivity_;
    /** Scratch for updateRates (kept to avoid re-allocation). */
    std::vector<FlowId> compFlows_;
    std::vector<int> compPools_;
    FlowId nextId_ = 1;
    std::uint64_t nextSeq_ = 1;
    SpanId lastSpan_ = kNoSpan;

    /**
     * Metric handles, cached at construction (all null when metrics
     * are off so the hot paths pay one pointer test). "Stalled"
     * means a flow finished below ~98% of its uncontended bottleneck
     * bandwidth, i.e. fair sharing throttled it.
     */
    std::vector<Counter *> mLinkBytes_;  //!< per link id
    Gauge *mQueueDepth_ = nullptr;
    Gauge *mActiveFlows_ = nullptr;
    Counter *mSubmitted_ = nullptr;
    Counter *mCompleted_ = nullptr;
    Counter *mFailed_ = nullptr;
    Counter *mStalled_ = nullptr;
    Counter *mRecomputes_ = nullptr;
    Counter *mFlowsTouched_ = nullptr;
    Counter *mFlowsSkipped_ = nullptr;
    Histogram *mBandwidth_ = nullptr;
    Histogram *mFairShareRounds_ = nullptr;
    int waitingCount_ = 0;  //!< flows submitted but not yet started
    int activeCount_ = 0;   //!< flows in setup or moving
};

} // namespace mobius

#endif // MOBIUS_XFER_TRANSFER_ENGINE_HH
