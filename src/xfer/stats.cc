#include "xfer/stats.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mobius
{

const char *
trafficKindName(TrafficKind kind)
{
    switch (kind) {
      case TrafficKind::Parameter:      return "parameter";
      case TrafficKind::Activation:     return "activation";
      case TrafficKind::ActivationGrad: return "activation-grad";
      case TrafficKind::Gradient:       return "gradient";
      case TrafficKind::OptimizerState: return "optimizer-state";
      case TrafficKind::Other:          return "other";
      default:                          return "?";
    }
}

BandwidthCdf::BandwidthCdf(const std::vector<BandwidthSample> &samples)
{
    std::vector<std::pair<double, double>> weighted;
    double total = 0.0;
    for (const auto &s : samples) {
        weighted.emplace_back(s.bandwidth,
                              static_cast<double>(s.bytes));
        total += static_cast<double>(s.bytes);
    }
    if (total <= 0.0)
        return;
    std::sort(weighted.begin(), weighted.end());
    double cum = 0.0;
    for (const auto &[bw, w] : weighted) {
        cum += w;
        if (!points_.empty() && points_.back().first == bw)
            points_.back().second = cum / total;
        else
            points_.emplace_back(bw, cum / total);
    }
}

double
BandwidthCdf::fractionAtOrBelow(double bw) const
{
    double frac = 0.0;
    for (const auto &[b, f] : points_) {
        if (b <= bw)
            frac = f;
        else
            break;
    }
    return frac;
}

double
BandwidthCdf::quantile(double q) const
{
    if (points_.empty())
        return 0.0;
    for (const auto &[b, f] : points_) {
        if (f >= q)
            return b;
    }
    return points_.back().first;
}

double
BandwidthCdf::maxBandwidth() const
{
    return points_.empty() ? 0.0 : points_.back().first;
}

void
TrafficStats::record(const BandwidthSample &sample)
{
    bytes_[static_cast<std::size_t>(sample.kind)] += sample.bytes;
    samples_.push_back(sample);
}

Bytes
TrafficStats::totalBytes() const
{
    Bytes total = 0;
    for (Bytes b : bytes_)
        total += b;
    return total;
}

Bytes
TrafficStats::bytesOf(TrafficKind kind) const
{
    return bytes_[static_cast<std::size_t>(kind)];
}

void
TrafficStats::clear()
{
    bytes_.fill(0);
    samples_.clear();
}

UsageTracker::UsageTracker(EventQueue &queue, int num_gpus)
    : queue_(queue), state_(static_cast<std::size_t>(num_gpus))
{
}

void
UsageTracker::advance(int gpu)
{
    auto &s = state_[gpu];
    double dt = queue_.now() - s.lastChange;
    if (dt > 0) {
        if (s.computeDepth > 0)
            s.computeTime += dt;
        if (s.commDepth > 0) {
            if (s.computeDepth > 0)
                s.overlappedComm += dt;
            else
                s.exposedComm += dt;
        }
    }
    s.lastChange = queue_.now();
}

void
UsageTracker::computeBegin(int gpu)
{
    advance(gpu);
    ++state_[gpu].computeDepth;
}

void
UsageTracker::computeEnd(int gpu)
{
    advance(gpu);
    if (--state_[gpu].computeDepth < 0)
        panic("computeEnd without computeBegin on GPU %d", gpu);
}

void
UsageTracker::commBegin(int gpu)
{
    if (gpu < 0)
        return; // transfers not attributed to any GPU
    advance(gpu);
    ++state_[gpu].commDepth;
}

void
UsageTracker::commEnd(int gpu)
{
    if (gpu < 0)
        return;
    advance(gpu);
    if (--state_[gpu].commDepth < 0)
        panic("commEnd without commBegin on GPU %d", gpu);
}

double
UsageTracker::computeTime(int gpu) const
{
    return state_[gpu].computeTime;
}

double
UsageTracker::exposedCommTime(int gpu) const
{
    return state_[gpu].exposedComm;
}

double
UsageTracker::overlappedCommTime(int gpu) const
{
    return state_[gpu].overlappedComm;
}

double
UsageTracker::totalExposedCommTime() const
{
    double total = 0.0;
    for (const auto &s : state_)
        total += s.exposedComm;
    return total;
}

double
UsageTracker::totalComputeTime() const
{
    double total = 0.0;
    for (const auto &s : state_)
        total += s.computeTime;
    return total;
}

void
UsageTracker::clear()
{
    for (auto &s : state_) {
        s.computeDepth = 0;
        s.commDepth = 0;
        s.lastChange = queue_.now();
        s.computeTime = 0.0;
        s.exposedComm = 0.0;
        s.overlappedComm = 0.0;
    }
}

} // namespace mobius
