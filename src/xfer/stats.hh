/**
 * @file
 * Communication statistics: traffic accounting by kind, per-transfer
 * bandwidth samples (for the CDF figures 2/7/11/16), and a per-GPU
 * usage tracker that measures communication time not overlapped by
 * computation (figure 8).
 */

#ifndef MOBIUS_XFER_STATS_HH
#define MOBIUS_XFER_STATS_HH

#include <array>
#include <string>
#include <vector>

#include "base/units.hh"
#include "simcore/event_queue.hh"

namespace mobius
{

/** What a transfer carries; used for traffic breakdowns. */
enum class TrafficKind
{
    Parameter,        //!< FP16 weights (stage upload / all-gather)
    Activation,       //!< activations between stages / offloaded
    ActivationGrad,   //!< activation gradients between stages
    Gradient,         //!< parameter gradients (flush / all-reduce)
    OptimizerState,   //!< optimizer state movement
    Other,
    NumKinds
};

/** @return short printable name of a traffic kind. */
const char *trafficKindName(TrafficKind kind);

/** One completed transfer, as observed by the stats collector. */
struct BandwidthSample
{
    Bytes bytes = 0;         //!< payload size
    double bandwidth = 0.0;  //!< achieved bytes/second (excl. setup)
    SimTime start = 0.0;     //!< submit time
    SimTime finish = 0.0;    //!< completion time
    int gpu = -1;            //!< GPU the transfer is attributed to
    TrafficKind kind = TrafficKind::Other; //!< traffic accounting
    /** True when the route used only GPU-GPU peer (NVLink) links. */
    bool peerOnly = false;
};

/** An empirical byte-weighted CDF over achieved bandwidths. */
class BandwidthCdf
{
  public:
    /** Build from samples; weight of a sample is its byte count. */
    explicit BandwidthCdf(const std::vector<BandwidthSample> &samples);

    /** @return fraction of bytes moved at bandwidth <= @p bw. */
    double fractionAtOrBelow(double bw) const;

    /** @return bandwidth at byte-weighted quantile @p q in [0,1]. */
    double quantile(double q) const;

    /** @return the maximum observed bandwidth. */
    double maxBandwidth() const;

    /** @return true when built from zero samples. */
    bool empty() const { return points_.empty(); }

    /** Sorted (bandwidth, cumulative fraction) points. */
    const std::vector<std::pair<double, double>> &
    points() const
    {
        return points_;
    }

  private:
    std::vector<std::pair<double, double>> points_;
};

/** Accumulates traffic volume and bandwidth samples during a run. */
class TrafficStats
{
  public:
    /** Account one completed transfer. */
    void record(const BandwidthSample &sample);

    /** Logical bytes moved, all kinds. */
    Bytes totalBytes() const;

    /** Logical bytes moved for one kind. */
    Bytes bytesOf(TrafficKind kind) const;

    /** All recorded samples, in completion order. */
    const std::vector<BandwidthSample> &
    samples() const
    {
        return samples_;
    }

    /** Reset all accumulated traffic. */
    void clear();

  private:
    std::array<Bytes, static_cast<std::size_t>(TrafficKind::NumKinds)>
        bytes_{};
    std::vector<BandwidthSample> samples_;
};

/**
 * Tracks, per GPU, the simulated time during which communication is in
 * flight while the compute engine is idle — the paper's
 * "non-overlapped communication time" (Fig. 8).
 *
 * The compute engine and the transfer engine notify this tracker on
 * every state change; it integrates the indicator
 * [comm active && !compute busy] over time.
 */
class UsageTracker
{
  public:
    /** Track @p num_gpus GPUs on @p queue's clock. */
    UsageTracker(EventQueue &queue, int num_gpus);

    void computeBegin(int gpu); //!< a kernel started on @p gpu
    void computeEnd(int gpu);   //!< a kernel finished on @p gpu
    void commBegin(int gpu);    //!< a transfer started on @p gpu
    void commEnd(int gpu);      //!< a transfer finished on @p gpu

    /** Seconds GPU @p gpu spent computing. */
    double computeTime(int gpu) const;

    /** Seconds of comm on GPU @p gpu not overlapped by compute. */
    double exposedCommTime(int gpu) const;

    /** Seconds of comm on GPU @p gpu overlapped by compute. */
    double overlappedCommTime(int gpu) const;

    /** Sum of exposedCommTime over all GPUs. */
    double totalExposedCommTime() const;

    /** Sum of computeTime over all GPUs. */
    double totalComputeTime() const;

    /** @return number of tracked GPUs. */
    int numGpus() const { return static_cast<int>(state_.size()); }

    /** Reset all accumulated times. */
    void clear();

  private:
    struct GpuState
    {
        int computeDepth = 0;
        int commDepth = 0;
        SimTime lastChange = 0.0;
        double computeTime = 0.0;
        double exposedComm = 0.0;
        double overlappedComm = 0.0;
    };

    void advance(int gpu);

    EventQueue &queue_;
    std::vector<GpuState> state_;
};

} // namespace mobius

#endif // MOBIUS_XFER_STATS_HH
