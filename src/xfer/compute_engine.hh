/**
 * @file
 * Per-GPU compute engine: kernels (layer forward/backward executions)
 * run one at a time, FIFO, each for a precomputed duration. Runs
 * concurrently with the GPU's copy engines, which is what lets Mobius
 * overlap stage prefetch with computation.
 */

#ifndef MOBIUS_XFER_COMPUTE_ENGINE_HH
#define MOBIUS_XFER_COMPUTE_ENGINE_HH

#include <deque>
#include <functional>

#include "base/logging.hh"
#include "obs/metrics.hh"
#include "simcore/event_queue.hh"
#include "simcore/trace.hh"
#include "xfer/stats.hh"

namespace mobius
{

/** Serial kernel executor for one GPU. */
class ComputeEngine
{
  public:
    /**
     * An idle engine for GPU @p gpu with optional telemetry sinks.
     * @p speed_factor is the what-if perturbation hook: every
     * submitted kernel runs for duration / speed_factor seconds, so
     * a counterfactual "this GPU computes k× faster" re-simulation
     * (obs/whatif.hh) reuses the executor's cost model unchanged.
     */
    ComputeEngine(EventQueue &queue, UsageTracker *usage, int gpu,
                  TraceRecorder *trace = nullptr,
                  MetricsRegistry *metrics = nullptr,
                  double speed_factor = 1.0)
        : queue_(queue), usage_(usage), gpu_(gpu), trace_(trace),
          speedFactor_(speed_factor)
    {
        if (!(speedFactor_ > 0.0))
            panic("compute speed factor must be > 0, got %g",
                  speedFactor_);
        if (metrics && metrics->enabled()) {
            mKernels_ = &metrics->counter(
                "gpu" + std::to_string(gpu) + ".kernels");
            mKernelSeconds_ = &metrics->histogram(
                "gpu" + std::to_string(gpu) + ".kernel.seconds");
        }
    }

    /**
     * Enqueue a kernel of @p duration seconds; @p on_complete fires
     * when it retires. @p label names the span in traces; @p deps
     * are the spans that causally enabled this kernel (the transfers
     * and computes it waited for) and @p stage is the pipeline stage
     * it advances. The kernel's span records submit time as
     * `queuedAt`, so time queued behind earlier kernels shows up as
     * contention in critical-path attribution.
     */
    void
    submit(double duration, std::function<void()> on_complete,
           std::string label = "", std::vector<SpanId> deps = {},
           int stage = -1)
    {
        tasks_.push_back(Task{duration / speedFactor_,
                              std::move(on_complete),
                              std::move(label), std::move(deps),
                              stage, queue_.now()});
        if (!busy_)
            startNext();
    }

    /**
     * Push a task to the *front* of the queue under an arbitrary
     * span category — the fault injector's hook for checkpoint and
     * crash-recovery work (category "fault"), which must run before
     * any queued kernels. The running kernel is not preempted. The
     * task's span seeds a causal edge into the next span this engine
     * records, so recovery time sits on the critical path.
     */
    void
    injectFront(double duration, std::string category,
                std::string label, std::vector<SpanId> deps = {})
    {
        tasks_.push_front(Task{duration / speedFactor_, nullptr,
                               std::move(label), std::move(deps), -1,
                               queue_.now(), std::move(category)});
        if (!busy_)
            startNext();
    }

    /**
     * Set the straggler throttle: every task *started* from now on
     * runs for duration / @p factor seconds (factor 0.5 = half
     * speed). Applied at start, not submit, so a throttle window
     * slows exactly the kernels that overlap it.
     */
    void
    setThrottle(double factor)
    {
        if (!(factor > 0.0))
            panic("compute throttle must be > 0, got %g", factor);
        throttle_ = factor;
    }

    /** @return the current straggler throttle (1 = nominal). */
    double throttle() const { return throttle_; }

    /** @return true when nothing is running or queued. */
    bool idle() const { return !busy_ && tasks_.empty(); }

    /**
     * Id of the most recently retired kernel's span (kNoSpan before
     * any retires, or without a recorder). Valid inside completion
     * callbacks: the span is recorded just before the callback runs.
     */
    SpanId lastSpanId() const { return lastSpan_; }

    /** The GPU index this engine models. */
    int gpu() const { return gpu_; }

    /** Total kernel-seconds retired. */
    double busyTime() const { return busyTime_; }

  private:
    struct Task
    {
        double duration;
        std::function<void()> onComplete;
        std::string label;
        std::vector<SpanId> deps;
        int stage = -1;
        SimTime queuedAt = -1.0;
        std::string category = "compute";
    };

    void
    startNext()
    {
        // Guard against re-entry: a completion callback may submit
        // new work (which starts it); the outer frame must not start
        // a second task concurrently.
        if (busy_ || tasks_.empty())
            return;
        busy_ = true;
        Task task = std::move(tasks_.front());
        tasks_.pop_front();
        // The straggler throttle applies at start time; task.duration
        // stays the intrinsic (nominal-speed) cost so the slowdown
        // shows up as contention stretch in attribution.
        const bool kernel = task.category == "compute";
        // An injected fault task ran when it did because this serial
        // engine was busy until now: chain it to the span that just
        // retired so the backward critical-path walk continues
        // through it instead of dead-ending at a depless span.
        if (!kernel && lastSpan_ != kNoSpan)
            task.deps.push_back(lastSpan_);
        double effective = task.duration / throttle_;
        if (kernel) {
            if (usage_)
                usage_->computeBegin(gpu_);
            if (mKernels_) {
                mKernels_->add();
                mKernelSeconds_->record(effective);
            }
            busyTime_ += effective;
        }
        double start = queue_.now();
        queue_.scheduleAfter(
            effective,
            [this, start, kernel, cb = std::move(task.onComplete),
             label = std::move(task.label),
             deps = std::move(task.deps), stage = task.stage,
             queuedAt = task.queuedAt,
             category = std::move(task.category),
             work = task.duration] {
                if (kernel && usage_)
                    usage_->computeEnd(gpu_);
                if (trace_) {
                    TraceSpan s;
                    s.track =
                        "gpu" + std::to_string(gpu_) + ".compute";
                    s.name = label;
                    s.category = category;
                    s.start = start;
                    s.end = queue_.now();
                    s.deps = deps;
                    if (pendingFaultDep_ != kNoSpan)
                        s.deps.push_back(pendingFaultDep_);
                    pendingFaultDep_ = kNoSpan;
                    s.queuedAt = queuedAt;
                    // Throttled kernels keep their intrinsic work so
                    // the straggler stretch reads as contention;
                    // fault tasks are all work by definition.
                    if (kernel)
                        s.work = queue_.now() - start > work
                            ? work
                            : -1.0;
                    s.gpu = gpu_;
                    s.stage = stage;
                    lastSpan_ = trace_->record(std::move(s));
                    if (!kernel)
                        pendingFaultDep_ = lastSpan_;
                }
                busy_ = false;
                if (cb)
                    cb();
                startNext();
            });
    }

    EventQueue &queue_;
    UsageTracker *usage_;
    int gpu_;
    TraceRecorder *trace_;
    double speedFactor_ = 1.0;
    double throttle_ = 1.0;
    Counter *mKernels_ = nullptr;
    Histogram *mKernelSeconds_ = nullptr;
    bool busy_ = false;
    double busyTime_ = 0.0;
    SpanId lastSpan_ = kNoSpan;
    /** Span of the last fault task; next span records it as a dep. */
    SpanId pendingFaultDep_ = kNoSpan;
    std::deque<Task> tasks_;
};

} // namespace mobius

#endif // MOBIUS_XFER_COMPUTE_ENGINE_HH
