#include "xfer/transfer_engine.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.hh"
#include "obs/prof.hh"
#include "xfer/fair_share.hh"

namespace mobius
{

TransferEngine::TransferEngine(EventQueue &queue, const Topology &topo,
                               UsageTracker *usage,
                               TransferEngineConfig cfg,
                               TraceRecorder *trace,
                               MetricsRegistry *metrics)
    : queue_(queue), topo_(topo), usage_(usage), cfg_(cfg),
      trace_(trace)
{
    // PCIe H2D/D2H engines plus dedicated NVLink send/receive
    // engines per GPU.
    engines_.resize(static_cast<std::size_t>(topo.numGpus()) * 4);
    poolCapacity_.resize(static_cast<std::size_t>(topo.numLinks()) * 2);
    for (int l = 0; l < topo.numLinks(); ++l) {
        poolCapacity_[static_cast<std::size_t>(l) * 2] =
            topo.link(l).capacity;
        poolCapacity_[static_cast<std::size_t>(l) * 2 + 1] =
            topo.link(l).capacity;
    }
    basePoolCapacity_ = poolCapacity_;
    poolUsers_.resize(poolCapacity_.size());
    poolMark_.resize(poolCapacity_.size(), 0);
    flows_.reserve(64);

    if (metrics && metrics->enabled()) {
        mLinkBytes_.resize(static_cast<std::size_t>(topo.numLinks()));
        for (int l = 0; l < topo.numLinks(); ++l) {
            mLinkBytes_[static_cast<std::size_t>(l)] =
                &metrics->counter("link." + topo.link(l).name +
                                  ".bytes");
        }
        mQueueDepth_ = &metrics->gauge("xfer.queue.depth");
        mActiveFlows_ = &metrics->gauge("xfer.flows.active");
        mSubmitted_ = &metrics->counter("xfer.flows.submitted");
        mCompleted_ = &metrics->counter("xfer.flows.completed");
        mFailed_ = &metrics->counter("xfer.flows.failed");
        mStalled_ = &metrics->counter("xfer.flows.stalled");
        mRecomputes_ = &metrics->counter("xfer.rate.recomputes");
        mFlowsTouched_ =
            &metrics->counter("xfer.rate.flows_touched");
        mFlowsSkipped_ =
            &metrics->counter("xfer.rate.flows_skipped");
        mBandwidth_ = &metrics->histogram("xfer.bandwidth");
        mFairShareRounds_ =
            &metrics->histogram("xfer.fair_share.rounds");
    }
}

void
TransferEngine::setLinkCapacityFactor(int link, double factor)
{
    if (link < 0 || link >= topo_.numLinks())
        panic("setLinkCapacityFactor: no link %d", link);
    if (!(factor > 0.0))
        panic("link capacity factor must be > 0, got %g", factor);
    std::vector<int> seeds;
    for (int d = 0; d < 2; ++d) {
        std::size_t pool = static_cast<std::size_t>(link) * 2 +
            static_cast<std::size_t>(d);
        poolCapacity_[pool] = basePoolCapacity_[pool] * factor;
        seeds.push_back(static_cast<int>(pool));
    }
    updateRates(seeds, 0);
}

FlowId
TransferEngine::submit(TransferRequest req)
{
    if (req.src == req.dst)
        panic("transfer with identical endpoints");

    Flow flow;
    flow.id = nextId_++;
    flow.seq = nextSeq_++;
    flow.req = std::move(req);
    flow.remaining = flow.req.bytes;
    flow.submitTime = queue_.now();

    // Route. GPU->GPU without P2P is staged through DRAM: model the
    // chunked staging as one cut-through flow across both legs.
    std::vector<Hop> hops;
    const Endpoint &src = flow.req.src;
    const Endpoint &dst = flow.req.dst;
    if (!src.isDram && !dst.isDram && !topo_.gpudirectP2p()) {
        auto up = topo_.route(src, Endpoint::dram());
        auto down = topo_.route(Endpoint::dram(), dst);
        hops = std::move(up);
        hops.insert(hops.end(), down.begin(), down.end());
    } else {
        hops = topo_.route(src, dst);
    }
    bool all_peer = !hops.empty();
    for (const auto &h : hops) {
        flow.pools.push_back(h.poolId());
        all_peer = all_peer && topo_.link(h.link).peer;
    }

    // Copy engines: sender's D2H and/or receiver's H2D. Pure-NVLink
    // routes use the dedicated NVLink engines instead.
    flow.peerOnly = all_peer;
    if (all_peer) {
        flow.engines.push_back(nvlinkEngineId(src.gpu, true));
        flow.engines.push_back(nvlinkEngineId(dst.gpu, false));
    } else {
        if (!src.isDram)
            flow.engines.push_back(engineId(src.gpu, true));
        if (!dst.isDram)
            flow.engines.push_back(engineId(dst.gpu, false));
    }

    // Usage tracking and stats attribution.
    if (!src.isDram)
        flow.commGpus.push_back(src.gpu);
    if (!dst.isDram)
        flow.commGpus.push_back(dst.gpu);
    if (flow.req.statsGpu < 0) {
        flow.req.statsGpu =
            !dst.isDram ? dst.gpu : (!src.isDram ? src.gpu : -1);
    }

    FlowId id = flow.id;
    flows_.emplace(id, std::move(flow));
    if (mSubmitted_) {
        mSubmitted_->add();
        ++waitingCount_;
        mQueueDepth_->set(waitingCount_);
    }
    enqueueOnEngines(flows_.at(id));
    tryStartFlows();
    return id;
}

void
TransferEngine::enqueueOnEngines(Flow &flow)
{
    for (int e : flow.engines) {
        auto &waiting = engines_[e].waiting;
        // Insert keeping (priority, seq) order.
        auto pos = waiting.end();
        for (auto it = waiting.begin(); it != waiting.end(); ++it) {
            const Flow &other = flows_.at(*it);
            if (other.req.priority > flow.req.priority ||
                (other.req.priority == flow.req.priority &&
                 other.seq > flow.seq)) {
                pos = it;
                break;
            }
        }
        waiting.insert(pos, flow.id);
    }
}

bool
TransferEngine::canStart(const Flow &flow) const
{
    for (int e : flow.engines) {
        const CopyEngine &eng = engines_[e];
        if (eng.current != 0)
            return false;
        if (eng.waiting.empty() || eng.waiting.front() != flow.id)
            return false;
    }
    return true;
}

void
TransferEngine::tryStartFlows()
{
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto &eng : engines_) {
            if (eng.current != 0 || eng.waiting.empty())
                continue;
            FlowId id = eng.waiting.front();
            Flow &flow = flows_.at(id);
            if (flow.state != FlowState::Waiting)
                continue;
            if (canStart(flow)) {
                beginSetup(flow);
                progress = true;
            }
        }
    }
}

void
TransferEngine::beginSetup(Flow &flow)
{
    flow.state = FlowState::Setup;
    if (mQueueDepth_) {
        --waitingCount_;
        mQueueDepth_->set(waitingCount_);
        ++activeCount_;
        mActiveFlows_->set(activeCount_);
    }
    for (int e : flow.engines) {
        auto &eng = engines_[e];
        eng.waiting.pop_front();
        eng.current = flow.id;
    }
    if (usage_) {
        for (int g : flow.commGpus)
            usage_->commBegin(g);
    }
    FlowId id = flow.id;
    flow.pendingEvent = queue_.scheduleAfter(
        cfg_.setupLatency, [this, id] { beginData(id); });
}

void
TransferEngine::addToPools(const Flow &flow)
{
    for (int pool : flow.pools)
        poolUsers_[static_cast<std::size_t>(pool)].push_back(
            flow.id);
    ++movingCount_;
}

void
TransferEngine::removeFromPools(const Flow &flow)
{
    for (int pool : flow.pools) {
        auto &users = poolUsers_[static_cast<std::size_t>(pool)];
        users.erase(std::find(users.begin(), users.end(), flow.id));
    }
    --movingCount_;
}

void
TransferEngine::beginData(FlowId id)
{
    Flow &flow = flows_.at(id);
    flow.state = FlowState::Moving;
    flow.pendingEvent = kNoEvent;
    flow.dataStart = queue_.now();
    flow.lastUpdate = queue_.now();
    addToPools(flow);
    if (flow.remaining == 0) {
        finish(id);
        return;
    }
    updateRates(flow.pools, id);
}

void
TransferEngine::updateRates(const std::vector<int> &seed_pools,
                            FlowId seed_flow)
{
    MOBIUS_PROF_ZONE("xfer.update_rates");
    // Walk the connected component of moving flows reachable from
    // the seeds through shared pools. Epoch stamps make the walk
    // allocation-free; the result is sorted so the solver sees flows
    // in submission order, exactly as a full recompute would.
    ++walkEpoch_;
    compFlows_.clear();
    compPools_.clear();
    auto visitPool = [this](int pool) {
        std::size_t p = static_cast<std::size_t>(pool);
        if (poolMark_[p] != walkEpoch_) {
            poolMark_[p] = walkEpoch_;
            compPools_.push_back(pool);
        }
    };
    auto visitFlow = [this, &visitPool](Flow &f) {
        if (f.mark != walkEpoch_) {
            f.mark = walkEpoch_;
            compFlows_.push_back(f.id);
            for (int pool : f.pools)
                visitPool(pool);
        }
    };
    if (seed_flow != 0)
        visitFlow(flows_.at(seed_flow));
    for (int pool : seed_pools)
        visitPool(pool);
    for (std::size_t i = 0; i < compPools_.size(); ++i) {
        auto &users =
            poolUsers_[static_cast<std::size_t>(compPools_[i])];
        for (FlowId fid : users)
            visitFlow(flows_.at(fid));
    }

    if (movingCount_ > 0 || !compFlows_.empty()) {
        ++fsActivity_.solves;
        fsActivity_.flowsTouched += compFlows_.size();
        fsActivity_.flowsSkipped +=
            static_cast<std::uint64_t>(movingCount_) -
            compFlows_.size();
        if (mFlowsTouched_) {
            mFlowsTouched_->add(
                static_cast<double>(compFlows_.size()));
            mFlowsSkipped_->add(static_cast<double>(
                static_cast<std::uint64_t>(movingCount_) -
                compFlows_.size()));
        }
    }
    if (compFlows_.empty())
        return;
    std::sort(compFlows_.begin(), compFlows_.end());

    // Integrate progress of every component flow since its last
    // update. Untouched flows keep integrating at their unchanged
    // rate; their scheduled completion stays exact.
    for (FlowId fid : compFlows_) {
        Flow &f = flows_.at(fid);
        double dt = queue_.now() - f.lastUpdate;
        if (dt > 0 && f.rate > 0) {
            double moved = f.rate * dt;
            if (moved >= static_cast<double>(f.remaining))
                f.remaining = 0;
            else
                f.remaining -= static_cast<Bytes>(moved);
        }
        f.lastUpdate = queue_.now();
    }

    std::vector<FairShareFlow> fs(compFlows_.size());
    for (std::size_t i = 0; i < compFlows_.size(); ++i) {
        const Flow &f = flows_.at(compFlows_[i]);
        fs[i].pools = f.pools;
        fs[i].rateCap = f.req.rateCap;
    }
    FairShareStats fsStats;
    auto rates = maxMinFairRates(fs, poolCapacity_,
                                 mRecomputes_ ? &fsStats : nullptr);
    if (mRecomputes_) {
        mRecomputes_->add();
        mFairShareRounds_->record(fsStats.rounds);
    }

    for (std::size_t i = 0; i < compFlows_.size(); ++i) {
        Flow &f = flows_.at(compFlows_[i]);
        f.rate = rates[i];
        if (f.pendingEvent != kNoEvent) {
            queue_.cancel(f.pendingEvent);
            f.pendingEvent = kNoEvent;
        }
        if (f.rate <= 0)
            panic("flow %llu got zero rate",
                  static_cast<unsigned long long>(f.id));
        double eta = static_cast<double>(f.remaining) / f.rate;
        FlowId id = f.id;
        f.pendingEvent =
            queue_.scheduleAfter(eta, [this, id] { finish(id); });
    }

    if (cfg_.fairShareCrossCheck)
        crossCheckRates();
}

void
TransferEngine::crossCheckRates()
{
    ++fsActivity_.crossChecks;
    std::vector<FlowId> moving;
    moving.reserve(static_cast<std::size_t>(movingCount_));
    for (const auto &[id, f] : flows_) {
        if (f.state == FlowState::Moving)
            moving.push_back(id);
    }
    std::sort(moving.begin(), moving.end());

    std::vector<FairShareFlow> fs(moving.size());
    for (std::size_t i = 0; i < moving.size(); ++i) {
        const Flow &f = flows_.at(moving[i]);
        fs[i].pools = f.pools;
        fs[i].rateCap = f.req.rateCap;
    }
    auto rates = maxMinFairRates(fs, poolCapacity_, nullptr);
    for (std::size_t i = 0; i < moving.size(); ++i) {
        const Flow &f = flows_.at(moving[i]);
        if (rates[i] != f.rate) {
            panic("fair-share cross-check: flow %llu has rate "
                  "%.17g, full recompute says %.17g",
                  static_cast<unsigned long long>(f.id), f.rate,
                  rates[i]);
        }
    }
}

void
TransferEngine::finish(FlowId id)
{
    Flow &flow = flows_.at(id);
    flow.pendingEvent = kNoEvent;
    flow.remaining = 0;

    // Record the achieved-bandwidth sample (setup latency excluded so
    // tiny transfers do not read as absurdly slow links).
    double duration = queue_.now() - flow.dataStart;
    BandwidthSample sample;
    sample.bytes = flow.req.bytes;
    sample.bandwidth = duration > 0
        ? static_cast<double>(flow.req.bytes) / duration
        : 0.0;
    sample.start = flow.dataStart;
    sample.finish = queue_.now();
    sample.gpu = flow.req.statsGpu;
    sample.kind = flow.req.kind;
    sample.peerOnly = flow.peerOnly;
    stats_.record(sample);

    // Uncontended bottleneck: the slowest link-direction on the
    // route (and the flow's own cap, if any). Finishing below it
    // means fair sharing stalled this flow; the shortfall is the
    // span's contention stretch in critical-path attribution.
    double bottleneck = flow.req.rateCap > 0.0
        ? flow.req.rateCap
        : std::numeric_limits<double>::infinity();
    for (int pool : flow.pools)
        bottleneck = std::min(
            bottleneck,
            poolCapacity_[static_cast<std::size_t>(pool)]);

    if (mCompleted_) {
        (flow.req.willFail ? mFailed_ : mCompleted_)->add();
        --activeCount_;
        mActiveFlows_->set(activeCount_);
        for (int pool : flow.pools) {
            mLinkBytes_[static_cast<std::size_t>(pool / 2)]->add(
                static_cast<double>(flow.req.bytes));
        }
        if (duration > 0 && flow.req.bytes > 0) {
            mBandwidth_->record(sample.bandwidth);
            if (std::isfinite(bottleneck) &&
                sample.bandwidth < 0.98 * bottleneck)
                mStalled_->add();
        }
    }

    if (trace_) {
        // Attribute the span to the GPU-side engine track.
        std::string track;
        const Endpoint &src = flow.req.src;
        const Endpoint &dst = flow.req.dst;
        if (flow.peerOnly) {
            track = "gpu" + std::to_string(src.gpu) + ".nvlink";
        } else if (!dst.isDram) {
            track = "gpu" + std::to_string(dst.gpu) + ".h2d";
        } else {
            track = "gpu" + std::to_string(src.gpu) + ".d2h";
        }
        TraceSpan s;
        s.track = std::move(track);
        s.name = flow.req.label.empty()
            ? trafficKindName(flow.req.kind)
            : flow.req.label;
        // A doomed attempt consumed the link for nothing: its whole
        // interval is fault time, and the retry records it as a
        // causal dependency (fault/fault_injector.hh).
        s.category = flow.req.willFail ? "fault" : "transfer";
        if (flow.req.willFail)
            s.name += "!fail";
        s.start = flow.dataStart;
        s.end = queue_.now();
        s.deps = std::move(flow.req.deps);
        // Ready once submitted and past the fixed setup cost; any
        // later start is queueing behind other DMA on the engines.
        s.queuedAt = flow.submitTime + cfg_.setupLatency;
        // Intrinsic seconds at the uncontended bottleneck rate.
        if (std::isfinite(bottleneck) && bottleneck > 0.0)
            s.work = static_cast<double>(flow.req.bytes) /
                bottleneck;
        s.gpu = flow.req.statsGpu;
        s.stage = flow.req.stage;
        lastSpan_ = trace_->record(std::move(s));
    }

    if (usage_) {
        for (int g : flow.commGpus)
            usage_->commEnd(g);
    }
    for (int e : flow.engines) {
        if (engines_[e].current != id)
            panic("copy engine %d does not own finishing flow", e);
        engines_[e].current = 0;
    }

    removeFromPools(flow);
    std::vector<int> freed_pools = std::move(flow.pools);
    auto on_complete = flow.req.willFail
        ? std::move(flow.req.onFail)
        : std::move(flow.req.onComplete);
    flows_.erase(id);

    updateRates(freed_pools, 0);
    tryStartFlows();

    if (on_complete)
        on_complete();
}

} // namespace mobius
