/**
 * @file
 * Max-min fair bandwidth allocation for fluid flows.
 *
 * Each flow traverses a set of capacity pools (link directions). When
 * several flows share a pool they split its capacity max-min fairly:
 * the most constrained pool is found, its flows are frozen at an equal
 * share, the residual capacity is redistributed, and the process
 * repeats. This reproduces the root-complex contention behaviour the
 * paper profiles in §2.2/§4.2 (e.g. two GPUs under one root complex
 * each observing half the root complex's bandwidth).
 *
 * **Component decomposition.** The solver first splits the flow–pool
 * bipartite graph into connected components (flows connected when
 * they share a pool, directly or transitively) and waterfills each
 * component independently. Max-min fairness is separable this way:
 * the waterfilling rounds of one component never read or write
 * another component's pools, so a component's rates depend *only* on
 * its own flows, caps, and pool capacities — bit-for-bit, not just
 * mathematically. That invariance is what the transfer engine's
 * incremental recomputation relies on: when the active-flow set
 * changes, re-solving just the affected component reproduces exactly
 * the rates a full recomputation would assign (see
 * transfer_engine.hh and DESIGN.md "Simulator performance model").
 *
 * Components are processed in order of their smallest flow index and
 * flows keep their caller-given order inside a component, so results
 * are deterministic and independent of how the caller discovered the
 * component.
 */

#ifndef MOBIUS_XFER_FAIR_SHARE_HH
#define MOBIUS_XFER_FAIR_SHARE_HH

#include <vector>

namespace mobius
{

/** A flow, for the purposes of rate allocation. */
struct FairShareFlow
{
    std::vector<int> pools;  //!< capacity pool ids traversed
    double rateCap = 0.0;    //!< optional per-flow cap (0 = none)
};

/** Telemetry from one max-min fair allocation. */
struct FairShareStats
{
    int rounds = 0;          //!< freeze iterations executed
    int cappedFlows = 0;     //!< flows frozen by their own rate cap
    int saturatedPools = 0;  //!< pools driven to saturation
    int components = 0;      //!< connected components waterfilled
};

/**
 * Compute max-min fair rates.
 *
 * @param flows          the active flows
 * @param pool_capacity  capacity of each pool id referenced by flows;
 *                       indexed by pool id (bytes/second)
 * @param stats          optional telemetry out-param (reset on entry)
 * @return per-flow rate in bytes/second, same order as @p flows
 */
std::vector<double>
maxMinFairRates(const std::vector<FairShareFlow> &flows,
                const std::vector<double> &pool_capacity,
                FairShareStats *stats);

/** Overload without telemetry. */
std::vector<double>
maxMinFairRates(const std::vector<FairShareFlow> &flows,
                const std::vector<double> &pool_capacity);

} // namespace mobius

#endif // MOBIUS_XFER_FAIR_SHARE_HH
