#include "xfer/fair_share.hh"

#include <algorithm>
#include <limits>

#include "base/logging.hh"
#include "obs/prof.hh"

namespace mobius
{

std::vector<double>
maxMinFairRates(const std::vector<FairShareFlow> &flows,
                const std::vector<double> &pool_capacity)
{
    return maxMinFairRates(flows, pool_capacity, nullptr);
}

std::vector<double>
maxMinFairRates(const std::vector<FairShareFlow> &flows,
                const std::vector<double> &pool_capacity,
                FairShareStats *stats)
{
    MOBIUS_PROF_ZONE("xfer.fair_share");
    const std::size_t nf = flows.size();
    const std::size_t np = pool_capacity.size();
    std::vector<double> rate(nf, 0.0);
    if (stats)
        *stats = {};
    if (nf == 0)
        return rate;

    // A flow with no pools (e.g. a pure-DRAM move) is only bounded by
    // its own cap; treat "no cap" as effectively infinite.
    constexpr double kInf = std::numeric_limits<double>::infinity();
    constexpr double kEps = 1e-6;

    // Pool -> flows adjacency, built once; drives both the component
    // search and the per-round bottleneck scan.
    std::vector<std::vector<std::uint32_t>> poolFlows(np);
    for (std::size_t f = 0; f < nf; ++f) {
        for (int pool : flows[f].pools)
            poolFlows[static_cast<std::size_t>(pool)].push_back(
                static_cast<std::uint32_t>(f));
    }

    std::vector<double> residual = pool_capacity;
    std::vector<int> users(np, 0);
    std::vector<bool> frozen(nf, false);
    std::vector<char> inComponent(nf, false);
    std::vector<char> poolSeen(np, false);
    std::vector<std::uint32_t> compFlows;
    std::vector<int> compPools;

    // Components in order of their smallest flow index; flows keep
    // ascending (caller) order inside each component, so the
    // waterfilling arithmetic is invariant to everything outside the
    // component (the incremental-recompute contract, see header).
    for (std::size_t seed = 0; seed < nf; ++seed) {
        if (inComponent[seed])
            continue;
        compFlows.clear();
        compPools.clear();
        compFlows.push_back(static_cast<std::uint32_t>(seed));
        inComponent[seed] = true;
        for (std::size_t i = 0; i < compFlows.size(); ++i) {
            for (int pool : flows[compFlows[i]].pools) {
                std::size_t p = static_cast<std::size_t>(pool);
                if (poolSeen[p])
                    continue;
                poolSeen[p] = true;
                compPools.push_back(pool);
                for (std::uint32_t g : poolFlows[p]) {
                    if (!inComponent[g]) {
                        inComponent[g] = true;
                        compFlows.push_back(g);
                    }
                }
            }
        }
        std::sort(compFlows.begin(), compFlows.end());
        std::sort(compPools.begin(), compPools.end());
        if (stats)
            ++stats->components;

        // Waterfill this component: find the smallest achievable
        // equal increment (pool residual / unfrozen users, or a
        // flow's distance to its own cap), raise every unfrozen flow
        // by it, freeze whoever hit a limit, repeat.
        for (int pool : compPools) {
            users[static_cast<std::size_t>(pool)] = static_cast<int>(
                poolFlows[static_cast<std::size_t>(pool)].size());
        }
        std::size_t remaining = compFlows.size();
        while (remaining > 0) {
            if (stats)
                ++stats->rounds;
            double best = kInf;
            for (int pool : compPools) {
                std::size_t p = static_cast<std::size_t>(pool);
                if (users[p] > 0)
                    best = std::min(best, residual[p] / users[p]);
            }
            for (std::uint32_t f : compFlows) {
                if (!frozen[f] && flows[f].rateCap > 0.0)
                    best = std::min(best,
                                    flows[f].rateCap - rate[f]);
            }

            if (best == kInf) {
                // Every unfrozen flow is unconstrained; that can
                // only happen for pool-less, cap-less flows, which
                // make no physical sense here.
                panic("max-min fairness: unconstrained flow");
            }
            if (best < 0)
                best = 0;

            for (std::uint32_t f : compFlows) {
                if (frozen[f])
                    continue;
                rate[f] += best;
                for (int pool : flows[f].pools)
                    residual[static_cast<std::size_t>(pool)] -= best;
            }

            for (std::uint32_t f : compFlows) {
                if (frozen[f])
                    continue;
                bool hit = false;
                bool byCap = false;
                if (flows[f].rateCap > 0.0 &&
                    rate[f] >= flows[f].rateCap - kEps) {
                    hit = true;
                    byCap = true;
                }
                for (int pool : flows[f].pools) {
                    std::size_t p = static_cast<std::size_t>(pool);
                    if (residual[p] <= kEps * pool_capacity[p]) {
                        hit = true;
                        break;
                    }
                }
                if (hit) {
                    frozen[f] = true;
                    --remaining;
                    for (int pool : flows[f].pools)
                        --users[static_cast<std::size_t>(pool)];
                    if (stats && byCap)
                        ++stats->cappedFlows;
                }
            }
        }
    }

    if (stats) {
        for (std::size_t p = 0; p < np; ++p) {
            if (pool_capacity[p] > 0.0 &&
                residual[p] <= kEps * pool_capacity[p])
                ++stats->saturatedPools;
        }
    }
    return rate;
}

} // namespace mobius
