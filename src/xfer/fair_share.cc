#include "xfer/fair_share.hh"

#include <limits>

#include "base/logging.hh"

namespace mobius
{

std::vector<double>
maxMinFairRates(const std::vector<FairShareFlow> &flows,
                const std::vector<double> &pool_capacity)
{
    return maxMinFairRates(flows, pool_capacity, nullptr);
}

std::vector<double>
maxMinFairRates(const std::vector<FairShareFlow> &flows,
                const std::vector<double> &pool_capacity,
                FairShareStats *stats)
{
    const std::size_t nf = flows.size();
    std::vector<double> rate(nf, 0.0);
    std::vector<bool> frozen(nf, false);

    std::vector<double> residual = pool_capacity;
    std::size_t remaining = nf;

    // A flow with no pools (e.g. a pure-DRAM move) is only bounded by
    // its own cap; treat "no cap" as effectively infinite.
    constexpr double kInf = std::numeric_limits<double>::infinity();

    while (remaining > 0) {
        if (stats)
            ++stats->rounds;
        // Find the bottleneck: the smallest achievable equal increment
        // over all unfrozen flows, considering both pool residuals and
        // per-flow caps.
        double best = kInf;
        for (std::size_t p = 0; p < residual.size(); ++p) {
            int users = 0;
            for (std::size_t f = 0; f < nf; ++f) {
                if (frozen[f])
                    continue;
                for (int pool : flows[f].pools) {
                    if (pool == static_cast<int>(p)) {
                        ++users;
                        break;
                    }
                }
            }
            if (users > 0)
                best = std::min(best, residual[p] / users);
        }
        for (std::size_t f = 0; f < nf; ++f) {
            if (!frozen[f] && flows[f].rateCap > 0.0)
                best = std::min(best, flows[f].rateCap - rate[f]);
        }

        if (best == kInf) {
            // Every unfrozen flow is unconstrained; that can only
            // happen for pool-less, cap-less flows, which make no
            // physical sense here.
            panic("max-min fairness: unconstrained flow");
        }
        if (best < 0)
            best = 0;

        // Raise all unfrozen flows by the increment, then freeze any
        // flow that hit a saturated pool or its own cap.
        for (std::size_t f = 0; f < nf; ++f) {
            if (frozen[f])
                continue;
            rate[f] += best;
            for (int pool : flows[f].pools)
                residual[pool] -= best;
        }

        constexpr double kEps = 1e-6;
        for (std::size_t f = 0; f < nf; ++f) {
            if (frozen[f])
                continue;
            bool hit = false;
            bool byCap = false;
            if (flows[f].rateCap > 0.0 &&
                rate[f] >= flows[f].rateCap - kEps) {
                hit = true;
                byCap = true;
            }
            for (int pool : flows[f].pools) {
                if (residual[pool] <= kEps * pool_capacity[pool]) {
                    hit = true;
                    break;
                }
            }
            if (hit) {
                frozen[f] = true;
                --remaining;
                if (stats && byCap)
                    ++stats->cappedFlows;
            }
        }
    }
    if (stats) {
        constexpr double kEps = 1e-6;
        for (std::size_t p = 0; p < residual.size(); ++p) {
            if (pool_capacity[p] > 0.0 &&
                residual[p] <= kEps * pool_capacity[p])
                ++stats->saturatedPools;
        }
    }
    return rate;
}

} // namespace mobius
