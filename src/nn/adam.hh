/**
 * @file
 * Adam optimizer (Kingma & Ba) with bias correction — the optimizer
 * the fine-tuning systems run on the CPU side against the gradients
 * flushed to DRAM.
 */

#ifndef MOBIUS_NN_ADAM_HH
#define MOBIUS_NN_ADAM_HH

#include <vector>

#include "tensor/tensor.hh"

namespace mobius
{

/** Adam hyperparameters. */
struct AdamConfig
{
    float lr = 1e-3f;     //!< learning rate
    float beta1 = 0.9f;   //!< first-moment decay
    float beta2 = 0.999f; //!< second-moment decay
    float eps = 1e-8f;    //!< denominator stabiliser
};

/** Adam over a fixed parameter list. */
class Adam
{
  public:
    /** Own the moment buffers for @p params. */
    explicit Adam(std::vector<Tensor> params, AdamConfig cfg = {});

    /** Apply one update from the parameters' .grad buffers. */
    void step();

    /** Zero all parameter gradients. */
    void zeroGrad();

    int stepsTaken() const { return t_; }

  private:
    std::vector<Tensor> params_;
    AdamConfig cfg_;
    std::vector<std::vector<float>> m_;
    std::vector<std::vector<float>> v_;
    int t_ = 0;
};

} // namespace mobius

#endif // MOBIUS_NN_ADAM_HH
