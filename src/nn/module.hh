/**
 * @file
 * Neural-network modules over the tensor library: Linear, LayerNorm,
 * causal self-attention blocks, and a mini GPT language model. Used
 * by the Fig. 13 convergence experiment and the training examples.
 *
 * The GPT is deliberately stage-friendly: it exposes its layer list
 * so the pipeline trainer can partition it exactly like the real
 * system partitions the big models.
 */

#ifndef MOBIUS_NN_MODULE_HH
#define MOBIUS_NN_MODULE_HH

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "tensor/tensor.hh"

namespace mobius
{

/** Base class: anything owning trainable parameters. */
class Module
{
  public:
    virtual ~Module() = default;

    /** All trainable parameters (for the optimizer). */
    virtual std::vector<Tensor> parameters() = 0;

    /** Total scalar parameter count. */
    std::int64_t
    parameterCount()
    {
        std::int64_t n = 0;
        for (auto &p : parameters())
            n += p.numel();
        return n;
    }

    /** Zero every parameter gradient. */
    void
    zeroGrad()
    {
        for (auto &p : parameters())
            p.zeroGrad();
    }
};

/** y = x W + b. */
class Linear : public Module
{
  public:
    /** Random-init weights [in, out] via @p rng. */
    Linear(int in, int out, Rng &rng);

    /** @return x W + b. */
    Tensor forward(const Tensor &x);
    std::vector<Tensor> parameters() override { return {w_, b_}; }

  private:
    Tensor w_; //!< [in, out]
    Tensor b_; //!< [out]
};

/** LayerNorm with affine parameters. */
class LayerNormModule : public Module
{
  public:
    /** Identity-initialised norm over the last axis. */
    explicit LayerNormModule(int width);

    /** @return normalised and affine-transformed @p x. */
    Tensor forward(const Tensor &x);
    std::vector<Tensor> parameters() override { return {g_, b_}; }

  private:
    Tensor g_;
    Tensor b_;
};

/** Pre-norm transformer block: x + Attn(LN(x)), x + MLP(LN(x)). */
class TransformerBlockModule : public Module
{
  public:
    TransformerBlockModule(int width, int heads, Rng &rng);

    Tensor forward(const Tensor &x);
    std::vector<Tensor> parameters() override;

  private:
    int heads_;
    LayerNormModule ln1_;
    Linear qkv_;   //!< [h, 3h]
    Linear proj_;  //!< [h, h]
    LayerNormModule ln2_;
    Linear fc1_;   //!< [h, 4h]
    Linear fc2_;   //!< [4h, h]
};

/** Mini GPT configuration. */
struct MiniGptConfig
{
    int vocab = 96;            //!< token alphabet size
    int width = 64;            //!< hidden width
    int heads = 4;             //!< attention heads
    int blocks = 4;            //!< transformer blocks
    int seqLen = 64;           //!< maximum sequence length
    std::uint64_t seed = 1234; //!< weight-init seed
};

/**
 * A tiny GPT language model exposing its layer stack, so it can be
 * trained monolithically or stage-partitioned (Fig. 13).
 */
class MiniGpt : public Module
{
  public:
    /** Build and random-init the model for @p cfg. */
    explicit MiniGpt(const MiniGptConfig &cfg);

    /** The configuration the model was built with. */
    const MiniGptConfig &cfg() const { return cfg_; }

    /**
     * Number of pipeline-partitionable layers: embedding, blocks,
     * final norm + head (folded into one last layer).
     */
    int numPipelineLayers() const
    {
        return cfg_.blocks + 2;
    }

    /**
     * Forward through pipeline layer @p layer.
     * Layer 0 consumes token ids (via @p ids) and ignores @p x;
     * the last layer returns logits [seq, vocab].
     */
    Tensor forwardLayer(int layer, const Tensor &x,
                        const std::vector<int> &ids);

    /** Full forward: ids -> logits. */
    Tensor forward(const std::vector<int> &ids);

    /** Parameters of one pipeline layer (for per-stage optimizers). */
    std::vector<Tensor> layerParameters(int layer);

    std::vector<Tensor> parameters() override;

  private:
    MiniGptConfig cfg_;
    Tensor tokEmb_; //!< [vocab, h]
    Tensor posEmb_; //!< [seq, h]
    std::vector<std::unique_ptr<TransformerBlockModule>> blocks_;
    LayerNormModule lnf_;
    Linear head_;
};

/** Uniform(-a, a) init with deterministic RNG. */
void initUniform(Tensor &t, float a, Rng &rng);

} // namespace mobius

#endif // MOBIUS_NN_MODULE_HH
