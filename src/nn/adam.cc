#include "nn/adam.hh"

#include <cmath>

namespace mobius
{

Adam::Adam(std::vector<Tensor> params, AdamConfig cfg)
    : params_(std::move(params)), cfg_(cfg)
{
    for (auto &p : params_) {
        m_.emplace_back(p.data().size(), 0.0f);
        v_.emplace_back(p.data().size(), 0.0f);
    }
}

void
Adam::step()
{
    ++t_;
    float bc1 = 1.0f -
        std::pow(cfg_.beta1, static_cast<float>(t_));
    float bc2 = 1.0f -
        std::pow(cfg_.beta2, static_cast<float>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        auto &p = params_[i].data();
        auto &g = params_[i].grad();
        auto &m = m_[i];
        auto &v = v_[i];
        for (std::size_t j = 0; j < p.size(); ++j) {
            m[j] = cfg_.beta1 * m[j] + (1.0f - cfg_.beta1) * g[j];
            v[j] = cfg_.beta2 * v[j] +
                (1.0f - cfg_.beta2) * g[j] * g[j];
            float mhat = m[j] / bc1;
            float vhat = v[j] / bc2;
            p[j] -= cfg_.lr * mhat /
                (std::sqrt(vhat) + cfg_.eps);
        }
    }
}

void
Adam::zeroGrad()
{
    for (auto &p : params_)
        p.zeroGrad();
}

} // namespace mobius
