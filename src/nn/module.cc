#include "nn/module.hh"

#include <cmath>

#include "base/logging.hh"

namespace mobius
{

void
initUniform(Tensor &t, float a, Rng &rng)
{
    for (auto &v : t.data())
        v = static_cast<float>(rng.uniform(-a, a));
}

Linear::Linear(int in, int out, Rng &rng)
    : w_(Shape{in, out}, true), b_(Shape{out}, true)
{
    float a = 1.0f / std::sqrt(static_cast<float>(in));
    initUniform(w_, a, rng);
    initUniform(b_, a, rng);
}

Tensor
Linear::forward(const Tensor &x)
{
    return addRowBroadcast(matmul(x, w_), b_);
}

LayerNormModule::LayerNormModule(int width)
    : g_(Shape{width}, std::vector<float>(width, 1.0f), true),
      b_(Shape{width}, true)
{
}

Tensor
LayerNormModule::forward(const Tensor &x)
{
    return layerNorm(x, g_, b_);
}

TransformerBlockModule::TransformerBlockModule(int width, int heads,
                                               Rng &rng)
    : heads_(heads), ln1_(width), qkv_(width, 3 * width, rng),
      proj_(width, width, rng), ln2_(width),
      fc1_(width, 4 * width, rng), fc2_(4 * width, width, rng)
{
    if (width % heads != 0)
        fatal("block width %d not divisible by %d heads", width,
              heads);
}

Tensor
TransformerBlockModule::forward(const Tensor &x)
{
    int s = x.dim(0);
    int h = x.dim(1);

    // Attention with a residual connection.
    Tensor normed = ln1_.forward(x);
    Tensor qkv = qkv_.forward(normed); // [s, 3h]
    // Split into q, k, v (copy-based slices with autograd).
    auto slice_cols = [&](const Tensor &t, int lo) {
        Tensor out(Shape{s, h});
        for (int i = 0; i < s; ++i) {
            for (int j = 0; j < h; ++j) {
                out.data()[static_cast<std::size_t>(i) * h + j] =
                    t.data()[static_cast<std::size_t>(i) * 3 * h +
                             lo + j];
            }
        }
        auto impl = out.impl();
        impl->parents = {t.impl()};
        impl->backwardFn = [s, h, lo](TensorImpl &self) {
            auto &gp = self.parents[0]->gradRef();
            for (int i = 0; i < s; ++i) {
                for (int j = 0; j < h; ++j) {
                    gp[static_cast<std::size_t>(i) * 3 * h + lo +
                       j] +=
                        self.grad[static_cast<std::size_t>(i) * h +
                                  j];
                }
            }
        };
        return out;
    };
    Tensor q = slice_cols(qkv, 0);
    Tensor k = slice_cols(qkv, h);
    Tensor v = slice_cols(qkv, 2 * h);
    Tensor att = causalSelfAttention(q, k, v, heads_);
    Tensor x1 = add(x, proj_.forward(att));

    // MLP with a residual connection.
    Tensor mlp = fc2_.forward(gelu(fc1_.forward(ln2_.forward(x1))));
    return add(x1, mlp);
}

std::vector<Tensor>
TransformerBlockModule::parameters()
{
    std::vector<Tensor> out;
    for (Module *m : std::initializer_list<Module *>{
             &ln1_, &qkv_, &proj_, &ln2_, &fc1_, &fc2_}) {
        auto ps = m->parameters();
        out.insert(out.end(), ps.begin(), ps.end());
    }
    return out;
}

MiniGpt::MiniGpt(const MiniGptConfig &cfg)
    : cfg_(cfg), tokEmb_(Shape{cfg.vocab, cfg.width}, true),
      posEmb_(Shape{cfg.seqLen, cfg.width}, true), lnf_(cfg.width),
      head_([&] {
          Rng head_rng(cfg.seed + 999);
          return Linear(cfg.width, cfg.vocab, head_rng);
      }())
{
    Rng rng(cfg.seed);
    initUniform(tokEmb_, 0.08f, rng);
    initUniform(posEmb_, 0.02f, rng);
    for (int b = 0; b < cfg.blocks; ++b) {
        blocks_.push_back(std::make_unique<TransformerBlockModule>(
            cfg.width, cfg.heads, rng));
    }
}

Tensor
MiniGpt::forwardLayer(int layer, const Tensor &x,
                      const std::vector<int> &ids)
{
    if (layer == 0) {
        if (static_cast<int>(ids.size()) != cfg_.seqLen)
            fatal("MiniGpt expects %d tokens, got %zu", cfg_.seqLen,
                  ids.size());
        std::vector<int> pos(ids.size());
        for (std::size_t i = 0; i < ids.size(); ++i)
            pos[i] = static_cast<int>(i);
        return add(embedding(tokEmb_, ids),
                   embedding(posEmb_, pos));
    }
    if (layer <= cfg_.blocks)
        return blocks_[layer - 1]->forward(x);
    if (layer == cfg_.blocks + 1)
        return head_.forward(lnf_.forward(x));
    panic("MiniGpt has no pipeline layer %d", layer);
}

Tensor
MiniGpt::forward(const std::vector<int> &ids)
{
    Tensor x = forwardLayer(0, Tensor(), ids);
    for (int l = 1; l < numPipelineLayers(); ++l)
        x = forwardLayer(l, x, ids);
    return x;
}

std::vector<Tensor>
MiniGpt::layerParameters(int layer)
{
    if (layer == 0)
        return {tokEmb_, posEmb_};
    if (layer <= cfg_.blocks)
        return blocks_[layer - 1]->parameters();
    if (layer == cfg_.blocks + 1) {
        auto out = lnf_.parameters();
        auto hp = head_.parameters();
        out.insert(out.end(), hp.begin(), hp.end());
        return out;
    }
    panic("MiniGpt has no pipeline layer %d", layer);
}

std::vector<Tensor>
MiniGpt::parameters()
{
    std::vector<Tensor> out;
    for (int l = 0; l < numPipelineLayers(); ++l) {
        auto ps = layerParameters(l);
        out.insert(out.end(), ps.begin(), ps.end());
    }
    return out;
}

} // namespace mobius
