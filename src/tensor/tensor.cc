#include "tensor/tensor.hh"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "base/logging.hh"

namespace mobius
{

std::int64_t
shapeNumel(const Shape &shape)
{
    std::int64_t n = 1;
    for (int d : shape)
        n *= d;
    return n;
}

std::string
shapeToString(const Shape &shape)
{
    std::string s = "[";
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i)
            s += ", ";
        s += std::to_string(shape[i]);
    }
    return s + "]";
}

std::vector<float> &
TensorImpl::gradRef()
{
    if (grad.size() != data.size())
        grad.assign(data.size(), 0.0f);
    return grad;
}

Tensor::Tensor(Shape shape, bool requires_grad)
{
    impl_ = std::make_shared<TensorImpl>();
    impl_->data.assign(static_cast<std::size_t>(shapeNumel(shape)),
                       0.0f);
    impl_->shape = std::move(shape);
    impl_->requiresGrad = requires_grad;
}

Tensor::Tensor(Shape shape, std::vector<float> data,
               bool requires_grad)
{
    if (shapeNumel(shape) != static_cast<std::int64_t>(data.size()))
        panic("tensor data size %zu does not match shape %s",
              data.size(), shapeToString(shape).c_str());
    impl_ = std::make_shared<TensorImpl>();
    impl_->shape = std::move(shape);
    impl_->data = std::move(data);
    impl_->requiresGrad = requires_grad;
}

void
Tensor::zeroGrad()
{
    auto &g = impl_->gradRef();
    std::fill(g.begin(), g.end(), 0.0f);
}

void
Tensor::backward(const std::vector<float> *seed) const
{
    // Topological order over the parent DAG.
    std::vector<TensorImpl *> topo;
    std::unordered_set<TensorImpl *> seen;
    std::vector<std::pair<TensorImpl *, std::size_t>> stack;
    stack.push_back({impl_.get(), 0});
    seen.insert(impl_.get());
    while (!stack.empty()) {
        auto &[node, idx] = stack.back();
        if (idx < node->parents.size()) {
            TensorImpl *p = node->parents[idx].get();
            ++idx;
            if (seen.insert(p).second)
                stack.push_back({p, 0});
        } else {
            topo.push_back(node);
            stack.pop_back();
        }
    }

    auto &g = impl_->gradRef();
    if (seed) {
        if (seed->size() != g.size())
            panic("backward seed size mismatch");
        for (std::size_t i = 0; i < g.size(); ++i)
            g[i] += (*seed)[i];
    } else {
        std::fill(g.begin(), g.end(), 1.0f);
    }

    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        if ((*it)->backwardFn)
            (*it)->backwardFn(**it);
    }
}

Tensor
Tensor::detachAsLeaf() const
{
    Tensor t(impl_->shape, impl_->data, true);
    return t;
}

namespace
{

/** Make the output impl of an op with given parents. */
std::shared_ptr<TensorImpl>
makeOut(Shape shape, std::vector<std::shared_ptr<TensorImpl>> parents)
{
    auto out = std::make_shared<TensorImpl>();
    out->data.assign(static_cast<std::size_t>(shapeNumel(shape)),
                     0.0f);
    out->shape = std::move(shape);
    out->parents = std::move(parents);
    return out;
}

void
checkSameShape(const Tensor &a, const Tensor &b, const char *op)
{
    if (a.shape() != b.shape())
        panic("%s: shape mismatch %s vs %s", op,
              shapeToString(a.shape()).c_str(),
              shapeToString(b.shape()).c_str());
}

} // namespace

Tensor
add(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "add");
    auto out = makeOut(a.shape(), {a.impl(), b.impl()});
    const auto &ad = a.data();
    const auto &bd = b.data();
    for (std::size_t i = 0; i < ad.size(); ++i)
        out->data[i] = ad[i] + bd[i];
    out->backwardFn = [](TensorImpl &self) {
        auto &ga = self.parents[0]->gradRef();
        auto &gb = self.parents[1]->gradRef();
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
            ga[i] += self.grad[i];
            gb[i] += self.grad[i];
        }
    };
    return Tensor::fromImpl(out);
}

Tensor
addRowBroadcast(const Tensor &a, const Tensor &bias)
{
    int n = bias.dim(0);
    if (a.numel() % n != 0)
        panic("addRowBroadcast: %lld elements not divisible by %d",
              static_cast<long long>(a.numel()), n);
    auto out = makeOut(a.shape(), {a.impl(), bias.impl()});
    const auto &ad = a.data();
    const auto &bd = bias.data();
    for (std::size_t i = 0; i < ad.size(); ++i)
        out->data[i] = ad[i] + bd[i % n];
    out->backwardFn = [n](TensorImpl &self) {
        auto &ga = self.parents[0]->gradRef();
        auto &gb = self.parents[1]->gradRef();
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
            ga[i] += self.grad[i];
            gb[i % n] += self.grad[i];
        }
    };
    return Tensor::fromImpl(out);
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "sub");
    auto out = makeOut(a.shape(), {a.impl(), b.impl()});
    for (std::size_t i = 0; i < a.data().size(); ++i)
        out->data[i] = a.data()[i] - b.data()[i];
    out->backwardFn = [](TensorImpl &self) {
        auto &ga = self.parents[0]->gradRef();
        auto &gb = self.parents[1]->gradRef();
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
            ga[i] += self.grad[i];
            gb[i] -= self.grad[i];
        }
    };
    return Tensor::fromImpl(out);
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "mul");
    auto out = makeOut(a.shape(), {a.impl(), b.impl()});
    for (std::size_t i = 0; i < a.data().size(); ++i)
        out->data[i] = a.data()[i] * b.data()[i];
    out->backwardFn = [](TensorImpl &self) {
        auto &pa = *self.parents[0];
        auto &pb = *self.parents[1];
        auto &ga = pa.gradRef();
        auto &gb = pb.gradRef();
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
            ga[i] += self.grad[i] * pb.data[i];
            gb[i] += self.grad[i] * pa.data[i];
        }
    };
    return Tensor::fromImpl(out);
}

Tensor
scale(const Tensor &a, float s)
{
    auto out = makeOut(a.shape(), {a.impl()});
    for (std::size_t i = 0; i < a.data().size(); ++i)
        out->data[i] = a.data()[i] * s;
    out->backwardFn = [s](TensorImpl &self) {
        auto &ga = self.parents[0]->gradRef();
        for (std::size_t i = 0; i < self.grad.size(); ++i)
            ga[i] += self.grad[i] * s;
    };
    return Tensor::fromImpl(out);
}

Tensor
gelu(const Tensor &a)
{
    auto out = makeOut(a.shape(), {a.impl()});
    constexpr float k = 0.7978845608028654f; // sqrt(2/pi)
    for (std::size_t i = 0; i < a.data().size(); ++i) {
        float x = a.data()[i];
        float t = std::tanh(k * (x + 0.044715f * x * x * x));
        out->data[i] = 0.5f * x * (1.0f + t);
    }
    out->backwardFn = [](TensorImpl &self) {
        constexpr float kk = 0.7978845608028654f;
        auto &pa = *self.parents[0];
        auto &ga = pa.gradRef();
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
            float x = pa.data[i];
            float u = kk * (x + 0.044715f * x * x * x);
            float t = std::tanh(u);
            float du = kk * (1.0f + 3.0f * 0.044715f * x * x);
            float d =
                0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
            ga[i] += self.grad[i] * d;
        }
    };
    return Tensor::fromImpl(out);
}

Tensor
relu(const Tensor &a)
{
    auto out = makeOut(a.shape(), {a.impl()});
    for (std::size_t i = 0; i < a.data().size(); ++i)
        out->data[i] = std::max(0.0f, a.data()[i]);
    out->backwardFn = [](TensorImpl &self) {
        auto &pa = *self.parents[0];
        auto &ga = pa.gradRef();
        for (std::size_t i = 0; i < self.grad.size(); ++i) {
            if (pa.data[i] > 0)
                ga[i] += self.grad[i];
        }
    };
    return Tensor::fromImpl(out);
}

Tensor
reshape(const Tensor &a, Shape shape)
{
    if (shapeNumel(shape) != a.numel())
        panic("reshape: %lld elements into shape %s",
              static_cast<long long>(a.numel()),
              shapeToString(shape).c_str());
    auto out = makeOut(std::move(shape), {a.impl()});
    out->data = a.data();
    out->backwardFn = [](TensorImpl &self) {
        auto &ga = self.parents[0]->gradRef();
        for (std::size_t i = 0; i < self.grad.size(); ++i)
            ga[i] += self.grad[i];
    };
    return Tensor::fromImpl(out);
}

Tensor
meanAll(const Tensor &a)
{
    auto out = makeOut(Shape{1}, {a.impl()});
    double sum = 0.0;
    for (float v : a.data())
        sum += v;
    std::size_t n = a.data().size();
    out->data[0] = static_cast<float>(sum / static_cast<double>(n));
    out->backwardFn = [n](TensorImpl &self) {
        auto &ga = self.parents[0]->gradRef();
        float g = self.grad[0] / static_cast<float>(n);
        for (auto &v : ga)
            v += g;
    };
    return Tensor::fromImpl(out);
}

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    if (b.rank() != 2)
        panic("matmul: rhs must be rank 2, got %s",
              shapeToString(b.shape()).c_str());
    int k = b.dim(0);
    int n = b.dim(1);
    if (a.dim(a.rank() - 1) != k)
        panic("matmul: inner dims %d vs %d",
              a.dim(a.rank() - 1), k);
    int m = static_cast<int>(a.numel() / k);

    Shape out_shape(a.shape().begin(), a.shape().end() - 1);
    out_shape.push_back(n);
    auto out = makeOut(std::move(out_shape), {a.impl(), b.impl()});

    const float *ad = a.data().data();
    const float *bd = b.data().data();
    float *od = out->data.data();
    for (int i = 0; i < m; ++i) {
        for (int kk = 0; kk < k; ++kk) {
            float av = ad[i * k + kk];
            if (av == 0.0f)
                continue;
            const float *brow = bd + kk * n;
            float *orow = od + i * n;
            for (int j = 0; j < n; ++j)
                orow[j] += av * brow[j];
        }
    }
    out->backwardFn = [m, k, n](TensorImpl &self) {
        auto &pa = *self.parents[0];
        auto &pb = *self.parents[1];
        auto &ga = pa.gradRef();
        auto &gb = pb.gradRef();
        const float *g = self.grad.data();
        const float *ad2 = pa.data.data();
        const float *bd2 = pb.data.data();
        // dA = g . B^T
        for (int i = 0; i < m; ++i) {
            for (int kk = 0; kk < k; ++kk) {
                float acc = 0.0f;
                const float *grow = g + i * n;
                const float *brow = bd2 + kk * n;
                for (int j = 0; j < n; ++j)
                    acc += grow[j] * brow[j];
                ga[i * k + kk] += acc;
            }
        }
        // dB = A^T . g
        for (int kk = 0; kk < k; ++kk) {
            for (int i = 0; i < m; ++i) {
                float av = ad2[i * k + kk];
                if (av == 0.0f)
                    continue;
                const float *grow = g + i * n;
                float *gbrow = gb.data() + kk * n;
                for (int j = 0; j < n; ++j)
                    gbrow[j] += av * grow[j];
            }
        }
    };
    return Tensor::fromImpl(out);
}

Tensor
embedding(const Tensor &table, const std::vector<int> &ids)
{
    if (table.rank() != 2)
        panic("embedding: table must be rank 2");
    int vocab = table.dim(0);
    int h = table.dim(1);
    for (int id : ids) {
        if (id < 0 || id >= vocab)
            panic("embedding: id %d out of range %d", id, vocab);
    }
    auto out = makeOut(Shape{static_cast<int>(ids.size()), h},
                       {table.impl()});
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const float *row = table.data().data() +
            static_cast<std::size_t>(ids[i]) * h;
        std::copy(row, row + h, out->data.begin() + i * h);
    }
    out->backwardFn = [ids, h](TensorImpl &self) {
        auto &gt = self.parents[0]->gradRef();
        for (std::size_t i = 0; i < ids.size(); ++i) {
            float *grow = gt.data() +
                static_cast<std::size_t>(ids[i]) * h;
            const float *g = self.grad.data() + i * h;
            for (int j = 0; j < h; ++j)
                grow[j] += g[j];
        }
    };
    return Tensor::fromImpl(out);
}

Tensor
layerNorm(const Tensor &x, const Tensor &g, const Tensor &b,
          float eps)
{
    int h = x.dim(x.rank() - 1);
    if (g.numel() != h || b.numel() != h)
        panic("layerNorm: affine params must have %d elements", h);
    int rows = static_cast<int>(x.numel() / h);

    auto out = makeOut(x.shape(), {x.impl(), g.impl(), b.impl()});
    // Cache per-row mean and inverse std for the backward pass.
    auto mean = std::make_shared<std::vector<float>>(rows);
    auto rstd = std::make_shared<std::vector<float>>(rows);

    const float *xd = x.data().data();
    const float *gd = g.data().data();
    const float *bd = b.data().data();
    for (int r = 0; r < rows; ++r) {
        const float *row = xd + static_cast<std::size_t>(r) * h;
        double mu = 0.0;
        for (int j = 0; j < h; ++j)
            mu += row[j];
        mu /= h;
        double var = 0.0;
        for (int j = 0; j < h; ++j)
            var += (row[j] - mu) * (row[j] - mu);
        var /= h;
        float rs = static_cast<float>(
            1.0 / std::sqrt(var + static_cast<double>(eps)));
        (*mean)[r] = static_cast<float>(mu);
        (*rstd)[r] = rs;
        float *orow = out->data.data() +
            static_cast<std::size_t>(r) * h;
        for (int j = 0; j < h; ++j) {
            float xhat = (row[j] - static_cast<float>(mu)) * rs;
            orow[j] = xhat * gd[j] + bd[j];
        }
    }
    out->backwardFn = [h, rows, mean, rstd](TensorImpl &self) {
        auto &px = *self.parents[0];
        auto &pg = *self.parents[1];
        auto &pb = *self.parents[2];
        auto &gx = px.gradRef();
        auto &gg = pg.gradRef();
        auto &gb = pb.gradRef();
        for (int r = 0; r < rows; ++r) {
            const float *xrow = px.data.data() +
                static_cast<std::size_t>(r) * h;
            const float *grow = self.grad.data() +
                static_cast<std::size_t>(r) * h;
            float mu = (*mean)[r];
            float rs = (*rstd)[r];
            // dxhat = g_out * gamma; then the standard layernorm
            // backward over the row.
            double sum_dxhat = 0.0;
            double sum_dxhat_xhat = 0.0;
            for (int j = 0; j < h; ++j) {
                float xhat = (xrow[j] - mu) * rs;
                float dxhat = grow[j] * pg.data[j];
                sum_dxhat += dxhat;
                sum_dxhat_xhat += dxhat * xhat;
                gg[j] += grow[j] * xhat;
                gb[j] += grow[j];
            }
            for (int j = 0; j < h; ++j) {
                float xhat = (xrow[j] - mu) * rs;
                float dxhat = grow[j] * pg.data[j];
                gx[static_cast<std::size_t>(r) * h + j] +=
                    rs * (dxhat -
                          static_cast<float>(sum_dxhat) / h -
                          xhat *
                              static_cast<float>(sum_dxhat_xhat) /
                              h);
            }
        }
    };
    return Tensor::fromImpl(out);
}

Tensor
causalSelfAttention(const Tensor &q, const Tensor &k,
                    const Tensor &v, int heads)
{
    if (q.rank() != 2)
        panic("attention expects [seq, h] inputs");
    checkSameShape(q, k, "attention");
    checkSameShape(q, v, "attention");
    int s = q.dim(0);
    int h = q.dim(1);
    if (h % heads != 0)
        panic("attention: %d heads do not divide width %d", heads, h);
    int d = h / heads;
    float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(d));

    auto out = makeOut(q.shape(), {q.impl(), k.impl(), v.impl()});
    // att[head][i][j] probabilities, cached for backward.
    auto att = std::make_shared<std::vector<float>>(
        static_cast<std::size_t>(heads) * s * s, 0.0f);

    const float *qd = q.data().data();
    const float *kd = k.data().data();
    const float *vd = v.data().data();
    for (int hd = 0; hd < heads; ++hd) {
        int off = hd * d;
        for (int i = 0; i < s; ++i) {
            float *arow = att->data() +
                (static_cast<std::size_t>(hd) * s + i) * s;
            float maxv = -1e30f;
            for (int j = 0; j <= i; ++j) {
                float dot = 0.0f;
                for (int c = 0; c < d; ++c)
                    dot += qd[i * h + off + c] * kd[j * h + off + c];
                arow[j] = dot * inv_sqrt_d;
                maxv = std::max(maxv, arow[j]);
            }
            float denom = 0.0f;
            for (int j = 0; j <= i; ++j) {
                arow[j] = std::exp(arow[j] - maxv);
                denom += arow[j];
            }
            for (int j = 0; j <= i; ++j)
                arow[j] /= denom;
            float *orow = out->data.data() + i * h + off;
            for (int j = 0; j <= i; ++j) {
                float p = arow[j];
                const float *vrow = vd + j * h + off;
                for (int c = 0; c < d; ++c)
                    orow[c] += p * vrow[c];
            }
        }
    }
    out->backwardFn = [s, h, d, heads, inv_sqrt_d,
                       att](TensorImpl &self) {
        auto &pq = *self.parents[0];
        auto &pk = *self.parents[1];
        auto &pv = *self.parents[2];
        auto &gq = pq.gradRef();
        auto &gk = pk.gradRef();
        auto &gv = pv.gradRef();
        const float *g = self.grad.data();
        std::vector<float> datt(static_cast<std::size_t>(s), 0.0f);
        for (int hd = 0; hd < heads; ++hd) {
            int off = hd * d;
            for (int i = 0; i < s; ++i) {
                const float *arow = att->data() +
                    (static_cast<std::size_t>(hd) * s + i) * s;
                const float *grow = g + i * h + off;
                // dV and dAtt.
                double dot_sum = 0.0;
                for (int j = 0; j <= i; ++j) {
                    float da = 0.0f;
                    const float *vrow = pv.data.data() + j * h + off;
                    float *gvrow = gv.data() + j * h + off;
                    for (int c = 0; c < d; ++c) {
                        da += grow[c] * vrow[c];
                        gvrow[c] += arow[j] * grow[c];
                    }
                    datt[j] = da;
                    dot_sum += static_cast<double>(da) * arow[j];
                }
                // Softmax backward -> dScores -> dQ, dK.
                for (int j = 0; j <= i; ++j) {
                    float ds = arow[j] *
                        (datt[j] - static_cast<float>(dot_sum)) *
                        inv_sqrt_d;
                    const float *krow = pk.data.data() + j * h + off;
                    const float *qrow = pq.data.data() + i * h + off;
                    float *gqrow = gq.data() + i * h + off;
                    float *gkrow = gk.data() + j * h + off;
                    for (int c = 0; c < d; ++c) {
                        gqrow[c] += ds * krow[c];
                        gkrow[c] += ds * qrow[c];
                    }
                }
            }
        }
    };
    return Tensor::fromImpl(out);
}

Tensor
crossEntropy(const Tensor &logits, const std::vector<int> &targets)
{
    if (logits.rank() != 2)
        panic("crossEntropy expects [n, vocab] logits");
    int n = logits.dim(0);
    int vocab = logits.dim(1);
    if (static_cast<int>(targets.size()) != n)
        panic("crossEntropy: %d rows vs %zu targets", n,
              targets.size());

    auto out = makeOut(Shape{1}, {logits.impl()});
    // Cache softmax probabilities for the backward pass.
    auto probs = std::make_shared<std::vector<float>>(
        logits.data().size());
    int valid = 0;
    double loss = 0.0;
    const float *ld = logits.data().data();
    for (int i = 0; i < n; ++i) {
        const float *row = ld + static_cast<std::size_t>(i) * vocab;
        float maxv = row[0];
        for (int j = 1; j < vocab; ++j)
            maxv = std::max(maxv, row[j]);
        double denom = 0.0;
        for (int j = 0; j < vocab; ++j)
            denom += std::exp(static_cast<double>(row[j] - maxv));
        float *prow = probs->data() +
            static_cast<std::size_t>(i) * vocab;
        for (int j = 0; j < vocab; ++j) {
            prow[j] = static_cast<float>(
                std::exp(static_cast<double>(row[j] - maxv)) /
                denom);
        }
        int t = targets[i];
        if (t >= 0) {
            if (t >= vocab)
                panic("crossEntropy: target %d out of range", t);
            loss -= std::log(
                std::max(static_cast<double>(prow[t]), 1e-12));
            ++valid;
        }
    }
    if (valid == 0)
        panic("crossEntropy: no valid targets");
    out->data[0] = static_cast<float>(loss / valid);
    out->backwardFn = [targets, vocab, valid,
                       probs](TensorImpl &self) {
        auto &gl = self.parents[0]->gradRef();
        float g = self.grad[0] / static_cast<float>(valid);
        for (std::size_t i = 0; i < targets.size(); ++i) {
            int t = targets[i];
            if (t < 0)
                continue;
            const float *prow = probs->data() + i * vocab;
            float *grow = gl.data() + i * vocab;
            for (int j = 0; j < vocab; ++j)
                grow[j] += g * prow[j];
            grow[t] -= g;
        }
    };
    return Tensor::fromImpl(out);
}

} // namespace mobius
