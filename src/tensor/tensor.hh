/**
 * @file
 * A small CPU tensor library with reverse-mode autograd.
 *
 * This is the substrate for the convergence experiment (Fig. 13): the
 * paper fine-tunes GPT-2 on WikiText-2 under GPipe and under Mobius
 * and shows identical loss curves, because both perform the same
 * synchronous microbatch gradient accumulation. We reproduce that
 * claim with real gradients: a mini GPT trained under a monolithic
 * autograd schedule and under a stage-partitioned pipeline schedule
 * must produce bit-identical updates.
 *
 * Design: a Tensor is a value-semantics handle onto shared storage;
 * operations record a backward closure and parent links; backward()
 * runs a topological sweep accumulating gradients into leaves.
 * Shapes are row-major; rank <= 3 is what the model needs.
 */

#ifndef MOBIUS_TENSOR_TENSOR_HH
#define MOBIUS_TENSOR_TENSOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mobius
{

/** Row-major shape. */
using Shape = std::vector<int>;

/** @return total element count of a shape. */
std::int64_t shapeNumel(const Shape &shape);

/** @return "[2, 3]"-style rendering. */
std::string shapeToString(const Shape &shape);

class Tensor;

/** Shared tensor storage plus autograd bookkeeping. */
struct TensorImpl
{
    Shape shape;                   //!< dimension sizes
    std::vector<float> data;       //!< row-major values
    std::vector<float> grad;       //!< lazily sized on first use
    bool requiresGrad = false;     //!< participates in autograd
    /** Accumulates parent gradients; set by the producing op. */
    std::function<void(TensorImpl &)> backwardFn;
    std::vector<std::shared_ptr<TensorImpl>> parents; //!< graph inputs

    /** Ensure grad buffer exists (zero-filled). */
    std::vector<float> &gradRef();
};

/** Value-semantics autograd tensor handle. */
class Tensor
{
  public:
    /** An undefined handle (defined() == false). */
    Tensor() = default;

    /** Fresh zero-filled tensor. */
    explicit Tensor(Shape shape, bool requires_grad = false);

    /** Tensor from explicit data. */
    Tensor(Shape shape, std::vector<float> data,
           bool requires_grad = false);

    /** @return true when the handle points at storage. */
    bool defined() const { return impl_ != nullptr; }
    /** Dimension sizes. */
    const Shape &shape() const { return impl_->shape; }
    /** Total element count. */
    std::int64_t numel() const { return shapeNumel(impl_->shape); }
    /** Size of dimension @p i. */
    int dim(int i) const { return impl_->shape[i]; }
    /** Number of dimensions. */
    int rank() const { return static_cast<int>(impl_->shape.size()); }

    /** Mutable element storage. */
    std::vector<float> &data() { return impl_->data; }
    /** Read-only element storage. */
    const std::vector<float> &data() const { return impl_->data; }
    /** Gradient buffer (created zero-filled on first use). */
    std::vector<float> &grad() { return impl_->gradRef(); }

    /** @return true when autograd tracks this tensor. */
    bool requiresGrad() const { return impl_->requiresGrad; }
    /** Toggle autograd tracking. */
    void setRequiresGrad(bool v) { impl_->requiresGrad = v; }

    /** Zero the gradient buffer (if any). */
    void zeroGrad();

    /**
     * Reverse-mode sweep from this tensor.
     * @param seed gradient of the output; defaults to ones (only
     *             sensible for scalars).
     */
    void backward(const std::vector<float> *seed = nullptr) const;

    /**
     * A new leaf sharing no graph history: same data, requires-grad,
     * empty parents. This is the stage boundary cut used by the
     * pipeline trainer.
     */
    Tensor detachAsLeaf() const;

    /** The shared storage handle. */
    std::shared_ptr<TensorImpl> impl() const { return impl_; }

    /** Wrap an existing impl. */
    static Tensor
    fromImpl(std::shared_ptr<TensorImpl> impl)
    {
        Tensor t;
        t.impl_ = std::move(impl);
        return t;
    }

  private:
    std::shared_ptr<TensorImpl> impl_;
};

/** @name Elementwise / structural ops (autograd-aware). */
/** @{ */
Tensor add(const Tensor &a, const Tensor &b);
/** Add a [n] vector to every row of a [..., n] tensor. */
Tensor addRowBroadcast(const Tensor &a, const Tensor &bias);
Tensor sub(const Tensor &a, const Tensor &b);
Tensor mul(const Tensor &a, const Tensor &b);
Tensor scale(const Tensor &a, float s);
Tensor gelu(const Tensor &a);
Tensor relu(const Tensor &a);
/** View with the same element count. */
Tensor reshape(const Tensor &a, Shape shape);
/** Mean of all elements -> scalar [1]. */
Tensor meanAll(const Tensor &a);
/** @} */

/** @name Linear algebra. */
/** @{ */
/** [m, k] x [k, n] -> [m, n]. Higher-rank lhs is flattened. */
Tensor matmul(const Tensor &a, const Tensor &b);
/** @} */

/** @name Neural-net primitives. */
/** @{ */
/** Row lookup: ids [n] into table [vocab, h] -> [n, h]. */
Tensor embedding(const Tensor &table, const std::vector<int> &ids);
/** LayerNorm over the last dimension with affine params g, b [h]. */
Tensor layerNorm(const Tensor &x, const Tensor &g, const Tensor &b,
                 float eps = 1e-5f);
/**
 * Fused causal multi-head self-attention.
 * q, k, v: [seq, h]; @p heads divides h. Returns [seq, h].
 */
Tensor causalSelfAttention(const Tensor &q, const Tensor &k,
                           const Tensor &v, int heads);
/**
 * Mean cross-entropy of logits [n, vocab] against integer targets.
 * Returns scalar [1]; positions with target < 0 are ignored.
 */
Tensor crossEntropy(const Tensor &logits,
                    const std::vector<int> &targets);
/** @} */

} // namespace mobius

#endif // MOBIUS_TENSOR_TENSOR_HH
