/**
 * @file
 * The FaultInjector turns a FaultPlan plus a seed into deterministic
 * mid-run events (DESIGN.md §7):
 *
 *  - degradation windows and stochastic flaps rescale link capacity
 *    (TransferEngine::setLinkCapacityFactor), GPU compute speed
 *    (ComputeEngine::setThrottle) or the CPU optimizer mid-run, with
 *    overlapping degradations composing multiplicatively;
 *  - every transfer the runtime routes through submit() is sampled
 *    against the plan's transient-failure probability; doomed
 *    attempts occupy their engines and links for the full transfer,
 *    then fail, and the injector retries them with exponential
 *    backoff (deterministic jitter) until the retry budget runs out
 *    (fatal — the simulated job dies);
 *  - periodic lightweight checkpoints inject a fixed-cost task at the
 *    *front* of every GPU's compute queue; a GPU crash injects a
 *    recovery task of restartCost + work-lost-since-last-checkpoint
 *    seconds (compute-side stall only — the documented
 *    simplification; memory state is assumed re-materialised by the
 *    normal prefetch path);
 *  - everything it does is traced: window/flap intervals on track
 *    "fault.events", retry backoff gaps on "fault.retry", checkpoint
 *    and recovery tasks on the GPU compute tracks — all category
 *    "fault", with causal edges into the work they delayed, so
 *    critical-path attribution (obs/critical_path.hh) carries an
 *    exact-sum "fault" column.
 *
 * Determinism: three independent RNG streams (failure sampling,
 * backoff jitter, flap gaps) are derived from the one --fault-seed
 * via SplitMix64, so the same seed gives a bit-identical run and
 * adding, say, more flaps never perturbs the failure pattern.
 *
 * Lifetime: the injector's own timed events (window edges, flap
 * starts, checkpoint ticks, crashes) would keep the event queue
 * spinning after the workload drains, so each fire first asks "is
 * the workload done?" (a callback the RunContext provides: all
 * engines idle and no retry pending) and, if so, cancels every
 * remaining injector event instead of running it. Retry-backoff
 * events are exempt from cancellation — a pending retry *is*
 * outstanding workload.
 */

#ifndef MOBIUS_FAULT_FAULT_INJECTOR_HH
#define MOBIUS_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "base/rng.hh"
#include "fault/fault_plan.hh"
#include "obs/metrics.hh"
#include "simcore/event_queue.hh"
#include "simcore/trace.hh"
#include "xfer/compute_engine.hh"
#include "xfer/transfer_engine.hh"

namespace mobius
{

/**
 * Derive the seed of independent RNG stream @p stream from the user
 * seed (SplitMix64 over the pair), so streams never overlap and each
 * fault mechanism consumes randomness independently of the others.
 */
std::uint64_t faultStreamSeed(std::uint64_t seed,
                              std::uint64_t stream);

/** Aggregate fault/recovery activity over one run. */
struct FaultCounters
{
    std::uint64_t failures = 0;    //!< doomed transfer attempts
    std::uint64_t retries = 0;     //!< resubmissions issued
    std::uint64_t crashes = 0;     //!< GPU crashes fired
    std::uint64_t checkpoints = 0; //!< checkpoint ticks fired
    std::uint64_t windows = 0;     //!< degrade windows opened
    std::uint64_t flaps = 0;       //!< flap windows opened

    double backoffSeconds = 0.0;    //!< summed retry backoff gaps
    double lostSeconds = 0.0;       //!< failed-attempt transfer time
    double recoverySeconds = 0.0;   //!< crash-recovery task time
    double checkpointSeconds = 0.0; //!< checkpoint task time

    /** Total seconds of injected fault/recovery activity. */
    double
    seconds() const
    {
        return backoffSeconds + lostSeconds + recoverySeconds +
            checkpointSeconds;
    }
};

/** Executes a FaultPlan against the live engines. */
class FaultInjector
{
  public:
    /**
     * @param cpu_throttle applies a throttle factor to the CPU
     *        optimizer (the injector cannot depend on runtime/).
     * @param workload_idle true when every engine has drained; the
     *        injector uses it to stop rescheduling its own events.
     */
    FaultInjector(EventQueue &queue, const Topology &topo,
                  TransferEngine &xfer,
                  std::vector<ComputeEngine *> compute,
                  FaultPlan plan, std::uint64_t seed,
                  std::function<void(double)> cpu_throttle,
                  std::function<bool()> workload_idle,
                  TraceRecorder *trace = nullptr,
                  MetricsRegistry *metrics = nullptr);

    /** Schedule the plan's timed events. Call once, before run(). */
    void arm();

    /**
     * Route a transfer through the fault model: samples the
     * transient-failure probability and, on failure, retries with
     * exponential backoff until the budget runs out (then fatal()).
     * The caller's onComplete fires exactly once, after the first
     * successful attempt.
     */
    FlowId submit(TransferRequest req);

    /** Current compute throttle of @p gpu (1 = nominal). */
    double computeThrottle(int gpu) const;

    const FaultCounters &counters() const { return counters_; }
    const FaultPlan &plan() const { return plan_; }

    /** @return true when a retry is scheduled but not yet resubmitted
     *  (the workload is not idle while this holds). */
    bool retryPending() const { return retryPending_ > 0; }

  private:
    /**
     * Schedule an injector-owned event: the callback first drops the
     * event from ownEvents_, then stops everything if the workload
     * has drained, then runs @p fn. The shared_ptr dance lets the
     * callback know its own id.
     */
    void scheduleFault(double when, std::function<void()> fn);

    /** Cancel remaining injector events when the workload is done.
     *  @return true when the caller should not proceed. */
    bool maybeStop();
    void stop();

    void applyFactor(const ResourceRef &target, double factor);
    void openSpan(std::string name, double factor);
    void closeSpan(const std::string &name, double end);

    void armWindow(const FaultWindow &w);
    void armFlap(const FaultFlap &f, double from);
    void armCheckpoint();
    void armCrash(const GpuCrash &c);

    FlowId submitAttempt(TransferRequest req, int attempt,
                         SpanId prev_fail);

    EventQueue &queue_;
    const Topology &topo_;
    TransferEngine &xfer_;
    std::vector<ComputeEngine *> compute_;
    FaultPlan plan_;
    std::function<void(double)> cpuThrottle_;
    std::function<bool()> workloadIdle_;
    TraceRecorder *trace_;

    Rng xfailRng_;   //!< stream 0: per-attempt failure sampling
    Rng backoffRng_; //!< stream 1: retry-backoff jitter
    Rng flapRng_;    //!< stream 2: flap gap sampling

    /** Multiplicative degradation stacks (product of active
     *  windows/flaps), per link and per GPU; 1 = nominal. */
    std::vector<double> linkFactor_;
    std::vector<double> computeFactor_;
    double cpuFactor_ = 1.0;

    /** Open window/flap spans, keyed by an opaque tag, closed when
     *  the window ends (or clamped at stop()). */
    struct OpenSpan
    {
        std::string name;
        double start = 0.0;
        double factor = 1.0;
    };
    std::vector<OpenSpan> openSpans_;

    /** Cancellable injector-owned events (window edges, flap and
     *  checkpoint ticks, crashes). Retry events are NOT here. */
    std::set<EventId> ownEvents_;
    int retryPending_ = 0;
    bool stopped_ = false;
    double lastCheckpoint_ = 0.0;

    FaultCounters counters_;

    Counter *mFailures_ = nullptr;
    Counter *mRetries_ = nullptr;
    Counter *mCrashes_ = nullptr;
    Counter *mCheckpoints_ = nullptr;
    Counter *mWindows_ = nullptr;
    Counter *mBackoffSeconds_ = nullptr;
    Counter *mLostSeconds_ = nullptr;
    Counter *mRecoverySeconds_ = nullptr;
    Counter *mCheckpointSeconds_ = nullptr;
};

} // namespace mobius

#endif // MOBIUS_FAULT_FAULT_INJECTOR_HH
